// Cross-backend detection parity: for EVERY (property, backend) pair that
// compiles, replaying the property's faulted scenario trace through the
// compiled monitor must find violations — and on the correct device, none.
// At scenario event rates (ms gaps) even slow-path mechanisms keep up, so
// detection parity with the on-switch reference is the expected outcome.
#include <gtest/gtest.h>

#include "backends/backend.hpp"
#include "properties/catalog.hpp"
#include "workload/property_scenarios.hpp"

namespace swmon {
namespace {

struct Case {
  std::string backend;
  std::string property;
};

std::vector<Case> AllCompilingCases() {
  std::vector<Case> cases;
  const auto catalog = BuildCatalog();
  for (const auto& b : AllBackends()) {
    for (const auto& e : catalog) {
      if (b->Compile(e.property, CostParams{}).ok())
        cases.push_back({b->info().name, e.property.name});
    }
  }
  return cases;
}

class BackendParityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BackendParityTest, CompiledMonitorAgreesWithReference) {
  const auto cases = AllCompilingCases();
  if (GetParam() >= cases.size()) GTEST_SKIP() << "fewer compiling cases";
  const Case& c = cases[GetParam()];
  SCOPED_TRACE(c.backend + " / " + c.property);

  const Property* prop = nullptr;
  static const auto catalog = BuildCatalog();
  for (const auto& e : catalog)
    if (e.property.name == c.property) prop = &e.property;
  ASSERT_NE(prop, nullptr);

  std::unique_ptr<Backend> backend;
  for (auto& b : AllBackends())
    if (b->info().name == c.backend) backend = std::move(b);
  ASSERT_NE(backend, nullptr);

  for (const bool faulted : {false, true}) {
    ScenarioOptions opts;
    opts.keep_trace = true;
    const auto out = RunScenarioForProperty(c.property, faulted, opts);
    ASSERT_NE(out.trace, nullptr);

    auto compiled = backend->Compile(*prop, CostParams{});
    ASSERT_TRUE(compiled.ok());
    out.trace->ReplayInto(*compiled.monitor);
    compiled.monitor->AdvanceTime(out.end_time);

    const std::size_t reference = out.ViolationsOf(c.property);
    const std::size_t mechanism = compiled.monitor->violations().size();
    if (faulted) {
      EXPECT_GT(reference, 0u);
      EXPECT_GT(mechanism, 0u) << "mechanism missed all violations";
      EXPECT_EQ(mechanism, reference);
    } else {
      EXPECT_EQ(reference, 0u);
      EXPECT_EQ(mechanism, 0u) << "mechanism false-alarmed";
    }
  }
}

// 61 compiling (backend, property) pairs at last count; a generous bound
// keeps new catalog entries covered (excess indices skip).
INSTANTIATE_TEST_SUITE_P(AllPairs, BackendParityTest,
                         ::testing::Range<std::size_t>(0, 80));

TEST(BackendParityMeta, CaseCountMatchesCompileMatrix) {
  // 0 + 6 + 6 + 14 + 10 + 21 + 20 per backend_compile_test.
  EXPECT_EQ(AllCompilingCases().size(), 77u);
}

}  // namespace
}  // namespace swmon
