// Hand-crafted semantic edge cases for the catalog properties — the subtle
// accept/reject decisions the scenario tests don't isolate.
#include <gtest/gtest.h>

#include "monitor/engine.hpp"
#include "properties/catalog.hpp"
#include "telemetry_helpers.hpp"

namespace swmon {
namespace {

constexpr std::uint64_t kDrop =
    static_cast<std::uint64_t>(EgressActionValue::kDrop);
constexpr std::uint64_t kForward =
    static_cast<std::uint64_t>(EgressActionValue::kForward);
constexpr std::uint64_t kFlood =
    static_cast<std::uint64_t>(EgressActionValue::kFlood);

/// Tiny fluent event helper.
class Ev {
 public:
  explicit Ev(DataplaneEventType type, std::int64_t ms = 0) {
    ev_.type = type;
    ev_.time = SimTime::Zero() + Duration::Millis(ms);
  }
  Ev& F(FieldId f, std::uint64_t v) {
    ev_.fields.Set(f, v);
    return *this;
  }
  operator DataplaneEvent() const { return ev_; }

 private:
  DataplaneEvent ev_;
};

// ------------------------------------------------------------- T1.1 / ARP

TEST(CatalogEdge, ArpKnownOtherAddressesUnaffected) {
  MonitorEngine eng(ArpKnownNotForwarded());
  // Learn A=42. A forwarded request for 43 is fine; for 42 it violates.
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 1)
                       .F(FieldId::kArpOp, 2)
                       .F(FieldId::kArpSenderIp, 42));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 2)
                       .F(FieldId::kArpOp, 1)
                       .F(FieldId::kArpTargetIp, 43)
                       .F(FieldId::kEgressAction, kFlood));
  EXPECT_TRUE(eng.violations().empty());
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 3)
                       .F(FieldId::kArpOp, 1)
                       .F(FieldId::kArpTargetIp, 42)
                       .F(FieldId::kEgressAction, kFlood));
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(CatalogEdge, ArpKnownRepliesPassingThroughAreNotRequests) {
  MonitorEngine eng(ArpKnownNotForwarded());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 1)
                       .F(FieldId::kArpOp, 2)
                       .F(FieldId::kArpSenderIp, 42));
  // A forwarded REPLY naming 42 must not count as a forwarded request.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 2)
                       .F(FieldId::kArpOp, 2)
                       .F(FieldId::kArpTargetIp, 42)
                       .F(FieldId::kEgressAction, kForward));
  EXPECT_TRUE(eng.violations().empty());
}

// ----------------------------------------------------- T1.3/T1.4 knocking

DataplaneEvent Knock(std::uint64_t host, std::uint16_t port, std::int64_t ms) {
  return Ev(DataplaneEventType::kArrival, ms)
      .F(FieldId::kInPort, 1)
      .F(FieldId::kIpProto, 17)
      .F(FieldId::kIpSrc, host)
      .F(FieldId::kL4DstPort, port);
}

DataplaneEvent Ssh(std::uint64_t host, std::uint64_t action, std::int64_t ms) {
  return Ev(DataplaneEventType::kEgress, ms)
      .F(FieldId::kIpProto, 6)
      .F(FieldId::kIpSrc, host)
      .F(FieldId::kL4DstPort, 22)
      .F(FieldId::kEgressAction, action);
}

TEST(CatalogEdge, KnockInvalidationCleanRestartDoesNotFalseAlarm) {
  // k1, wrong, k1 (clean restart), k2, k3, forwarded SSH: legitimate open.
  MonitorEngine eng(PortKnockInvalidation());
  eng.ProcessEvent(Knock(9, 7000, 1));
  eng.ProcessEvent(Knock(9, 7003, 2));  // intervening wrong guess
  eng.ProcessEvent(Knock(9, 7000, 3));  // restart discharges the attempt
  eng.ProcessEvent(Knock(9, 7001, 4));
  eng.ProcessEvent(Knock(9, 7002, 5));
  eng.ProcessEvent(Ssh(9, kForward, 6));
  EXPECT_TRUE(eng.violations().empty());
}

TEST(CatalogEdge, KnockInvalidationNonRegionUdpIsNotAGuess) {
  MonitorEngine eng(PortKnockInvalidation());
  eng.ProcessEvent(Knock(9, 7000, 1));
  eng.ProcessEvent(Knock(9, 53, 2));  // DNS, outside the knock region
  EXPECT_EQ(eng.live_instances(), 1u);
  // The instance is still waiting for a WRONG guess, not for k2.
  eng.ProcessEvent(Knock(9, 7001, 3));
  eng.ProcessEvent(Knock(9, 7002, 4));
  eng.ProcessEvent(Ssh(9, kForward, 5));
  EXPECT_TRUE(eng.violations().empty());
}

TEST(CatalogEdge, KnockRecognizeWrongGuessDischarges) {
  MonitorEngine eng(PortKnockRecognize());
  eng.ProcessEvent(Knock(9, 7000, 1));
  eng.ProcessEvent(Knock(9, 7003, 2));  // wrong: attempt dead
  eng.ProcessEvent(Knock(9, 7001, 3));
  eng.ProcessEvent(Knock(9, 7002, 4));
  // The (correctly) dropped SSH must not alarm: the sequence was invalid.
  eng.ProcessEvent(Ssh(9, kDrop, 5));
  EXPECT_TRUE(eng.violations().empty());
  EXPECT_EQ(EngineStat(eng, "instances_aborted"), 1u);
}

TEST(CatalogEdge, KnockPropertiesArePerHost) {
  MonitorEngine eng(PortKnockRecognize());
  eng.ProcessEvent(Knock(1, 7000, 1));
  eng.ProcessEvent(Knock(2, 7003, 2));  // host 2's noise
  eng.ProcessEvent(Knock(1, 7001, 3));
  eng.ProcessEvent(Knock(1, 7002, 4));
  eng.ProcessEvent(Ssh(1, kDrop, 5));  // host 1 completed cleanly
  EXPECT_EQ(eng.violations().size(), 1u);
}

// ---------------------------------------------------------- T1.5 / LB

TEST(CatalogEdge, LbHashedDropDischargesTheObligation) {
  MonitorEngine eng(LbHashedPort());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 1)
                       .F(FieldId::kInPort, 1)
                       .F(FieldId::kIpProto, 6)
                       .F(FieldId::kTcpFlags, kTcpSyn)
                       .F(FieldId::kIpSrc, 5)
                       .F(FieldId::kIpDst, 6)
                       .F(FieldId::kL4SrcPort, 7)
                       .F(FieldId::kL4DstPort, 80)
                       .F(FieldId::kPacketId, 77));
  EXPECT_EQ(eng.live_instances(), 1u);
  // The balancer dropped the SYN: no assignment to check.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 2)
                       .F(FieldId::kPacketId, 77)
                       .F(FieldId::kEgressAction, kDrop));
  EXPECT_TRUE(eng.violations().empty());
  EXPECT_EQ(eng.live_instances(), 0u);
}

TEST(CatalogEdge, LbHashedSynAckIsNotANewFlow) {
  MonitorEngine eng(LbHashedPort());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 1)
                       .F(FieldId::kInPort, 1)
                       .F(FieldId::kIpProto, 6)
                       .F(FieldId::kTcpFlags, kTcpSyn | kTcpAck)
                       .F(FieldId::kIpSrc, 5)
                       .F(FieldId::kIpDst, 6)
                       .F(FieldId::kL4SrcPort, 7)
                       .F(FieldId::kL4DstPort, 80)
                       .F(FieldId::kPacketId, 78));
  EXPECT_EQ(eng.live_instances(), 0u);
}

// -------------------------------------------------------- T1.8 / FTP

DataplaneEvent PortCmd(std::uint64_t c, std::uint64_t s, std::uint16_t port,
                       std::int64_t ms) {
  return Ev(DataplaneEventType::kArrival, ms)
      .F(FieldId::kFtpMsgKind, 1)
      .F(FieldId::kIpSrc, c)
      .F(FieldId::kIpDst, s)
      .F(FieldId::kFtpDataPort, port);
}

DataplaneEvent DataSyn(std::uint64_t s, std::uint64_t c, std::uint16_t dport,
                       std::int64_t ms) {
  return Ev(DataplaneEventType::kArrival, ms)
      .F(FieldId::kIpProto, 6)
      .F(FieldId::kIpSrc, s)
      .F(FieldId::kIpDst, c)
      .F(FieldId::kL4SrcPort, 20)
      .F(FieldId::kL4DstPort, dport)
      .F(FieldId::kTcpFlags, kTcpSyn);
}

TEST(CatalogEdge, FtpSupersededAnnouncementGoverns) {
  MonitorEngine eng(FtpDataPortMatchesControl());
  eng.ProcessEvent(PortCmd(1, 2, 5000, 1));
  eng.ProcessEvent(PortCmd(1, 2, 6000, 2));  // supersedes
  // Data to the OLD port now violates; to the new one is fine.
  eng.ProcessEvent(DataSyn(2, 1, 6000, 3));
  EXPECT_TRUE(eng.violations().empty());
  eng.ProcessEvent(PortCmd(1, 2, 7000, 4));
  eng.ProcessEvent(DataSyn(2, 1, 6000, 5));  // stale port
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(CatalogEdge, FtpDataFromNonDataPortIgnored) {
  MonitorEngine eng(FtpDataPortMatchesControl());
  eng.ProcessEvent(PortCmd(1, 2, 5000, 1));
  // A server connection NOT from port 20 is not the data channel.
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 2)
                       .F(FieldId::kIpProto, 6)
                       .F(FieldId::kIpSrc, 2)
                       .F(FieldId::kIpDst, 1)
                       .F(FieldId::kL4SrcPort, 443)
                       .F(FieldId::kL4DstPort, 9999)
                       .F(FieldId::kTcpFlags, kTcpSyn));
  EXPECT_TRUE(eng.violations().empty());
}

// ------------------------------------------------------- T1.9 / DHCP

TEST(CatalogEdge, DhcpNakAlsoDischargesTheDeadline) {
  MonitorEngine eng(DhcpReplyDeadline());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 1)
                       .F(FieldId::kDhcpMsgType, 3)  // REQUEST
                       .F(FieldId::kDhcpChaddr, 0xaa)
                       .F(FieldId::kDhcpXid, 7));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 100)
                       .F(FieldId::kDhcpMsgType, 6)  // NAK
                       .F(FieldId::kDhcpChaddr, 0xaa)
                       .F(FieldId::kDhcpXid, 7));
  eng.AdvanceTime(SimTime::Zero() + Duration::Seconds(10));
  EXPECT_TRUE(eng.violations().empty());
}

TEST(CatalogEdge, DhcpAckForDifferentXidDoesNotDischarge) {
  MonitorEngine eng(DhcpReplyDeadline());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 1)
                       .F(FieldId::kDhcpMsgType, 3)
                       .F(FieldId::kDhcpChaddr, 0xaa)
                       .F(FieldId::kDhcpXid, 7));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 100)
                       .F(FieldId::kDhcpMsgType, 5)
                       .F(FieldId::kDhcpChaddr, 0xaa)
                       .F(FieldId::kDhcpXid, 8));  // a different transaction
  eng.AdvanceTime(SimTime::Zero() + Duration::Seconds(10));
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(CatalogEdge, DhcpRenewalToSameClientIsQuietAndExtendsLease) {
  MonitorEngine eng(DhcpNoLeaseReuse());
  auto ack = [&](std::uint64_t a, std::uint64_t m, std::uint64_t lease,
                 std::int64_t ms) {
    eng.ProcessEvent(Ev(DataplaneEventType::kEgress, ms)
                         .F(FieldId::kDhcpMsgType, 5)
                         .F(FieldId::kDhcpYiaddr, a)
                         .F(FieldId::kDhcpChaddr, m)
                         .F(FieldId::kDhcpLeaseSecs, lease));
  };
  ack(100, 0xaa, 10, 0);      // 10s lease
  ack(100, 0xaa, 10, 8000);   // renewal at t=8s: extends to t=18s
  EXPECT_TRUE(eng.violations().empty());
  // Re-assignment to another client at t=15s: still inside the RENEWED
  // lease -> violation. (Without the refresh it would have expired at 10s.)
  ack(100, 0xbb, 10, 15000);
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(CatalogEdge, DhcpExpiredLeaseMayBeReassigned) {
  MonitorEngine eng(DhcpNoLeaseReuse());
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 0)
                       .F(FieldId::kDhcpMsgType, 5)
                       .F(FieldId::kDhcpYiaddr, 100)
                       .F(FieldId::kDhcpChaddr, 0xaa)
                       .F(FieldId::kDhcpLeaseSecs, 5));
  // 6 seconds later the lease is gone; reassignment is legitimate.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 6000)
                       .F(FieldId::kDhcpMsgType, 5)
                       .F(FieldId::kDhcpYiaddr, 100)
                       .F(FieldId::kDhcpChaddr, 0xbb)
                       .F(FieldId::kDhcpLeaseSecs, 5));
  EXPECT_TRUE(eng.violations().empty());
  EXPECT_EQ(EngineStat(eng, "instances_expired"), 1u);
}

TEST(CatalogEdge, DhcpOverlapSameServerRenewalQuiet) {
  MonitorEngine eng(DhcpNoLeaseOverlap());
  auto ack = [&](std::uint64_t a, std::uint64_t server, std::int64_t ms) {
    eng.ProcessEvent(Ev(DataplaneEventType::kEgress, ms)
                         .F(FieldId::kDhcpMsgType, 5)
                         .F(FieldId::kDhcpYiaddr, a)
                         .F(FieldId::kDhcpServerId, server)
                         .F(FieldId::kDhcpLeaseSecs, 60));
  };
  ack(100, 1, 0);
  ack(100, 1, 100);  // same server re-ACKs: fine
  EXPECT_TRUE(eng.violations().empty());
  ack(100, 2, 200);  // a different server: overlap
  EXPECT_EQ(eng.violations().size(), 1u);
}

// ------------------------------------------------ T1.12/T1.13 DHCP+ARP

TEST(CatalogEdge, PreloadWrongMacReplyDoesNotDischarge) {
  MonitorEngine eng(DhcpArpCachePreload());
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 0)
                       .F(FieldId::kDhcpMsgType, 5)
                       .F(FieldId::kDhcpYiaddr, 100)
                       .F(FieldId::kDhcpChaddr, 0xaa));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 100)
                       .F(FieldId::kArpOp, 1)
                       .F(FieldId::kArpTargetIp, 100));
  // A reply with the WRONG hardware address: the obligation stands...
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 200)
                       .F(FieldId::kArpOp, 2)
                       .F(FieldId::kArpSenderIp, 100)
                       .F(FieldId::kArpSenderMac, 0xbb));
  eng.AdvanceTime(SimTime::Zero() + Duration::Seconds(5));
  EXPECT_EQ(eng.violations().size(), 1u);  // ...and the deadline fires.
}

TEST(CatalogEdge, PreloadCorrectReplyDischarges) {
  MonitorEngine eng(DhcpArpCachePreload());
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 0)
                       .F(FieldId::kDhcpMsgType, 5)
                       .F(FieldId::kDhcpYiaddr, 100)
                       .F(FieldId::kDhcpChaddr, 0xaa));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 100)
                       .F(FieldId::kArpOp, 1)
                       .F(FieldId::kArpTargetIp, 100));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 200)
                       .F(FieldId::kArpOp, 2)
                       .F(FieldId::kArpSenderIp, 100)
                       .F(FieldId::kArpSenderMac, 0xaa));
  eng.AdvanceTime(SimTime::Zero() + Duration::Seconds(5));
  EXPECT_TRUE(eng.violations().empty());
}

TEST(CatalogEdge, NoDirectReplyDhcpPreloadSuppresses) {
  MonitorEngine eng(DhcpArpNoDirectReply());
  // A lease for 100 pre-loads the cache (wandering suppression key).
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 0)
                       .F(FieldId::kDhcpMsgType, 5)
                       .F(FieldId::kDhcpYiaddr, 100)
                       .F(FieldId::kDhcpChaddr, 0xaa));
  // The proxy's direct reply for 100 is legitimate.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 10)
                       .F(FieldId::kArpOp, 2)
                       .F(FieldId::kArpSenderIp, 100));
  EXPECT_TRUE(eng.violations().empty());
  // For 200 (never leased, never replied) it is a fabrication.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 20)
                       .F(FieldId::kArpOp, 2)
                       .F(FieldId::kArpSenderIp, 200));
  EXPECT_EQ(eng.violations().size(), 1u);
}

// ---------------------------------------------------------- NAT edges

TEST(CatalogEdge, NatAddressMistranslationCaught) {
  MonitorEngine eng(NatReverseTranslation());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 1)
                       .F(FieldId::kInPort, 1)
                       .F(FieldId::kIpSrc, 10)
                       .F(FieldId::kIpDst, 20)
                       .F(FieldId::kL4SrcPort, 1000)
                       .F(FieldId::kL4DstPort, 80)
                       .F(FieldId::kPacketId, 1));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1)
                       .F(FieldId::kPacketId, 1)
                       .F(FieldId::kEgressAction, kForward)
                       .F(FieldId::kIpSrc, 99)
                       .F(FieldId::kL4SrcPort, 50000)
                       .F(FieldId::kIpDst, 20)
                       .F(FieldId::kL4DstPort, 80));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 2)
                       .F(FieldId::kInPort, 2)
                       .F(FieldId::kIpSrc, 20)
                       .F(FieldId::kL4SrcPort, 80)
                       .F(FieldId::kIpDst, 99)
                       .F(FieldId::kL4DstPort, 50000)
                       .F(FieldId::kPacketId, 2));
  // Reverse translation restored the right port but the WRONG address.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 2)
                       .F(FieldId::kPacketId, 2)
                       .F(FieldId::kEgressAction, kForward)
                       .F(FieldId::kIpDst, 11)
                       .F(FieldId::kL4DstPort, 1000));
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(CatalogEdge, NatUnrelatedInboundIgnored) {
  MonitorEngine eng(NatReverseTranslation());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 1)
                       .F(FieldId::kInPort, 1)
                       .F(FieldId::kIpSrc, 10)
                       .F(FieldId::kIpDst, 20)
                       .F(FieldId::kL4SrcPort, 1000)
                       .F(FieldId::kL4DstPort, 80)
                       .F(FieldId::kPacketId, 1));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1)
                       .F(FieldId::kPacketId, 1)
                       .F(FieldId::kEgressAction, kForward)
                       .F(FieldId::kIpSrc, 99)
                       .F(FieldId::kL4SrcPort, 50000)
                       .F(FieldId::kIpDst, 20)
                       .F(FieldId::kL4DstPort, 80));
  // Inbound from a different remote endpoint: not observation (3).
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 2)
                       .F(FieldId::kInPort, 2)
                       .F(FieldId::kIpSrc, 21)
                       .F(FieldId::kL4SrcPort, 80)
                       .F(FieldId::kIpDst, 99)
                       .F(FieldId::kL4DstPort, 50000)
                       .F(FieldId::kPacketId, 2));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 2)
                       .F(FieldId::kPacketId, 2)
                       .F(FieldId::kEgressAction, kForward)
                       .F(FieldId::kIpDst, 55)
                       .F(FieldId::kL4DstPort, 5));
  EXPECT_TRUE(eng.violations().empty());
}

// ---------------------------------------------- learning-switch edges

TEST(CatalogEdge, LinkUpEventsDoNotTriggerTheFlushProperty) {
  MonitorEngine eng(LearningSwitchLinkDownFlush());
  eng.ProcessEvent(
      Ev(DataplaneEventType::kArrival, 1).F(FieldId::kEthSrc, 0xaa).F(
          FieldId::kInPort, 3));
  eng.ProcessEvent(
      Ev(DataplaneEventType::kLinkStatus, 2).F(FieldId::kLinkUp, 1).F(
          FieldId::kLinkId, 4));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 3)
                       .F(FieldId::kEthDst, 0xaa)
                       .F(FieldId::kOutPort, 3)
                       .F(FieldId::kEgressAction, kForward));
  EXPECT_TRUE(eng.violations().empty());
}

TEST(CatalogEdge, HostMoveDischargesTheSec1Properties) {
  MonitorEngine eng(LearningSwitchCorrectPort());
  eng.ProcessEvent(
      Ev(DataplaneEventType::kArrival, 1).F(FieldId::kEthSrc, 0xaa).F(
          FieldId::kInPort, 3));
  // The host moves to port 5 — the old expectation is void.
  eng.ProcessEvent(
      Ev(DataplaneEventType::kArrival, 2).F(FieldId::kEthSrc, 0xaa).F(
          FieldId::kInPort, 5));
  // Unicast to the NEW port: quiet (old instance aborted, new one created
  // by the move packet itself).
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 3)
                       .F(FieldId::kEthDst, 0xaa)
                       .F(FieldId::kOutPort, 5)
                       .F(FieldId::kEgressAction, kForward));
  EXPECT_TRUE(eng.violations().empty());
  // Unicast to the OLD port now violates the refreshed expectation.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 4)
                       .F(FieldId::kEthDst, 0xaa)
                       .F(FieldId::kOutPort, 3)
                       .F(FieldId::kEgressAction, kForward));
  EXPECT_EQ(eng.violations().size(), 1u);
}

}  // namespace
}  // namespace swmon
