// Backend compilation (the executable verification of Table 2): which
// catalog properties each approach's mechanism can express, and why not.
#include <gtest/gtest.h>

#include <map>

#include "backends/backend.hpp"
#include "properties/catalog.hpp"

namespace swmon {
namespace {

class BackendMatrix : public ::testing::Test {
 protected:
  BackendMatrix() : backends_(AllBackends()), catalog_(BuildCatalog()) {
    for (const auto& b : backends_) by_name_[b->info().name] = b.get();
  }

  const Backend& Named(const std::string& name) const {
    return *by_name_.at(name);
  }
  const Property& Prop(const std::string& name) const {
    for (const auto& e : catalog_)
      if (e.property.name == name) return e.property;
    ADD_FAILURE() << "no property " << name;
    static Property dummy;
    return dummy;
  }

  bool Compiles(const std::string& backend, const std::string& prop) const {
    return Named(backend).Compile(Prop(prop), CostParams{}).ok();
  }

  std::vector<std::unique_ptr<Backend>> backends_;
  std::vector<CatalogEntry> catalog_;
  std::map<std::string, Backend*> by_name_;
};

TEST_F(BackendMatrix, SevenBackendsInTableOrder) {
  ASSERT_EQ(backends_.size(), 7u);
  EXPECT_EQ(backends_[0]->info().name, "OpenFlow 1.3");
  EXPECT_EQ(backends_[1]->info().name, "OpenState");
  EXPECT_EQ(backends_[2]->info().name, "FAST");
  EXPECT_EQ(backends_[3]->info().name, "POF / P4");
  EXPECT_EQ(backends_[4]->info().name, "SNAP");
  EXPECT_EQ(backends_[5]->info().name, "Varanus");
  EXPECT_EQ(backends_[6]->info().name, "Static Varanus");
}

TEST_F(BackendMatrix, OpenFlowCompilesNothingWithoutController) {
  for (const auto& e : catalog_) {
    const auto r = Named("OpenFlow 1.3").Compile(e.property, CostParams{});
    EXPECT_FALSE(r.ok()) << e.property.name;
    EXPECT_FALSE(r.unsupported.empty());
  }
}

TEST_F(BackendMatrix, VaranusCompilesEntireCatalog) {
  for (const auto& e : catalog_) {
    const auto r = Named("Varanus").Compile(e.property, CostParams{});
    EXPECT_TRUE(r.ok()) << e.property.name << ": "
                        << (r.unsupported.empty() ? "" : r.unsupported[0]);
  }
}

TEST_F(BackendMatrix, StaticVaranusLosesExactlyMultipleMatch) {
  // Sec 3.3: bounding tables to one per stage sacrifices out-of-band /
  // multiple-match support — and nothing else.
  for (const auto& e : catalog_) {
    const auto r = Named("Static Varanus").Compile(e.property, CostParams{});
    const bool is_multi = AnalyzeFeatures(e.property).multiple_match;
    EXPECT_EQ(r.ok(), !is_multi) << e.property.name;
  }
  EXPECT_FALSE(Compiles("Static Varanus", "lsw-linkdown-flush"));
}

TEST_F(BackendMatrix, TimeoutActionsAreVaranusOnly) {
  // Every property with a timeout-action stage compiles only on (static)
  // Varanus — the paper's central Table-2 observation.
  for (const auto& e : catalog_) {
    if (!AnalyzeFeatures(e.property).timeout_actions) continue;
    for (const auto& b : backends_) {
      const bool is_varanus = b->info().name == "Varanus" ||
                              b->info().name == "Static Varanus";
      EXPECT_EQ(b->Compile(e.property, CostParams{}).ok(), is_varanus)
          << b->info().name << " / " << e.property.name;
    }
  }
}

TEST_F(BackendMatrix, OpenStateHandlesSymmetricWindowedFirewall) {
  EXPECT_TRUE(Compiles("OpenState", "fw-return-not-dropped"));
  EXPECT_TRUE(Compiles("OpenState", "fw-return-not-dropped-timeout"));
  EXPECT_TRUE(Compiles("OpenState", "knock-invalidation"));
  EXPECT_TRUE(Compiles("OpenState", "knock-recognize"));
}

TEST_F(BackendMatrix, OpenStateRejectsL7AndWanderingAndExtrinsic) {
  EXPECT_FALSE(Compiles("OpenState", "ftp-data-port"));        // L7
  EXPECT_FALSE(Compiles("OpenState", "dhcparp-cache-preload"));  // wandering
  EXPECT_FALSE(Compiles("OpenState", "lb-hashed-port"));  // hash function
  EXPECT_FALSE(Compiles("OpenState", "nat-reverse-translation"));  // env
  EXPECT_FALSE(Compiles("OpenState", "lb-sticky-port"));  // stored neg match
}

TEST_F(BackendMatrix, FastAddsHashesButLosesTimeouts) {
  // FAST's hash support admits the load-balancer rows OpenState rejects...
  EXPECT_TRUE(Compiles("FAST", "lb-hashed-port"));
  EXPECT_TRUE(Compiles("FAST", "lb-round-robin-port"));
  EXPECT_FALSE(Compiles("OpenState", "lb-hashed-port"));
  // ...but its learn-action state cannot expire (Table 2: rule timeouts X).
  EXPECT_TRUE(Compiles("FAST", "fw-return-not-dropped"));
  EXPECT_FALSE(Compiles("FAST", "fw-return-not-dropped-timeout"));
}

TEST_F(BackendMatrix, P4RegistersCoverTheRichStatefulRows) {
  EXPECT_TRUE(Compiles("POF / P4", "nat-reverse-translation"));
  EXPECT_TRUE(Compiles("POF / P4", "ftp-data-port"));     // dynamic parsing
  EXPECT_TRUE(Compiles("POF / P4", "lb-sticky-port"));    // stored neg match
  EXPECT_TRUE(Compiles("POF / P4", "dhcp-no-lease-reuse"));
  EXPECT_FALSE(Compiles("POF / P4", "arp-proxy-reply-deadline"));  // t.o.a.
  EXPECT_FALSE(Compiles("POF / P4", "lsw-linkdown-flush"));  // multi match
}

TEST_F(BackendMatrix, UnsupportedResultsCarryReasons) {
  const auto r =
      Named("OpenState").Compile(Prop("dhcparp-cache-preload"), CostParams{});
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.unsupported.empty());
  for (const auto& reason : r.unsupported) EXPECT_FALSE(reason.empty());
}

TEST_F(BackendMatrix, InfoRowsMatchTable2Anchors) {
  // Spot-check the distinctive Table-2 cells.
  EXPECT_EQ(Named("Varanus").info().timeout_actions, Tri::kYes);
  EXPECT_EQ(Named("POF / P4").info().timeout_actions, Tri::kNo);
  EXPECT_EQ(Named("FAST").info().rule_timeouts, Tri::kNo);
  EXPECT_EQ(Named("OpenState").info().rule_timeouts, Tri::kYes);
  EXPECT_EQ(Named("Varanus").info().out_of_band, Tri::kYes);
  EXPECT_EQ(Named("Static Varanus").info().out_of_band, Tri::kNo);
  EXPECT_EQ(Named("POF / P4").info().field_access, "Dynamic");
  EXPECT_EQ(Named("OpenState").info().field_access, "Fixed");
  EXPECT_EQ(Named("Varanus").info().processing_mode, "Split");
  EXPECT_EQ(Named("OpenState").info().processing_mode, "Inline");
  for (const auto& b : backends_)
    EXPECT_NE(b->info().full_provenance, Tri::kYes) << b->info().name;
}

TEST_F(BackendMatrix, CompileCountsMatchExpectedBreadth) {
  // The breadth ordering of Table 2: Varanus >= Static Varanus >= P4 >
  // FAST/OpenState > OpenFlow.
  std::map<std::string, int> compiled;
  for (const auto& b : backends_) {
    for (const auto& e : catalog_)
      compiled[b->info().name] += b->Compile(e.property, CostParams{}).ok();
  }
  EXPECT_EQ(compiled["Varanus"], 21);
  EXPECT_EQ(compiled["Static Varanus"], 20);
  EXPECT_GT(compiled["POF / P4"], compiled["FAST"]);
  EXPECT_GT(compiled["FAST"], compiled["OpenFlow 1.3"]);
  EXPECT_GT(compiled["OpenState"], compiled["OpenFlow 1.3"]);
  EXPECT_EQ(compiled["OpenFlow 1.3"], 0);
}

}  // namespace
}  // namespace swmon
