#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "monitor/engine.hpp"
#include "monitor/property_builder.hpp"
#include "telemetry_helpers.hpp"

namespace swmon {
namespace {

DataplaneEvent Ev(DataplaneEventType type, std::int64_t ms,
                  std::initializer_list<std::pair<FieldId, std::uint64_t>> kv) {
  DataplaneEvent ev;
  ev.type = type;
  ev.time = SimTime::Zero() + Duration::Millis(ms);
  for (const auto& [k, v] : kv) ev.fields.Set(k, v);
  return ev;
}

constexpr std::uint64_t kDrop =
    static_cast<std::uint64_t>(EgressActionValue::kDrop);
constexpr std::uint64_t kForward =
    static_cast<std::uint64_t>(EgressActionValue::kForward);

/// Two-stage firewall-shaped property: arrival binds (A,B); egress drop of
/// (B,A) violates.
Property TwoStage() {
  PropertyBuilder b("two-stage", "test");
  const VarId A = b.Var("A"), B = b.Var("B");
  b.AddStage("out")
      .Match(PatternBuilder::Arrival().Eq(FieldId::kInPort, 1).Build())
      .Bind(A, FieldId::kIpSrc)
      .Bind(B, FieldId::kIpDst);
  b.AddStage("drop")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kIpSrc, B)
                 .EqVar(FieldId::kIpDst, A)
                 .Dropped()
                 .Build());
  return std::move(b).Build();
}

TEST(EngineTest, ViolationAfterBothObservations) {
  MonitorEngine eng(TwoStage());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0,
                      {{FieldId::kInPort, 1},
                       {FieldId::kIpSrc, 10},
                       {FieldId::kIpDst, 20}}));
  EXPECT_EQ(eng.live_instances(), 1u);
  EXPECT_TRUE(eng.violations().empty());

  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1,
                      {{FieldId::kIpSrc, 20},
                       {FieldId::kIpDst, 10},
                       {FieldId::kEgressAction, kDrop}}));
  ASSERT_EQ(eng.violations().size(), 1u);
  EXPECT_EQ(eng.violations()[0].property, "two-stage");
  EXPECT_EQ(eng.violations()[0].trigger_stage, "drop");
  EXPECT_EQ(eng.live_instances(), 0u);  // consumed by the violation
}

TEST(EngineTest, WrongDirectionDoesNotViolate) {
  MonitorEngine eng(TwoStage());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0,
                      {{FieldId::kInPort, 1},
                       {FieldId::kIpSrc, 10},
                       {FieldId::kIpDst, 20}}));
  // Same pair but not inverted: (A,B) dropped, not (B,A).
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1,
                      {{FieldId::kIpSrc, 10},
                       {FieldId::kIpDst, 20},
                       {FieldId::kEgressAction, kDrop}}));
  EXPECT_TRUE(eng.violations().empty());
}

TEST(EngineTest, EventTypeFiltersApply) {
  MonitorEngine eng(TwoStage());
  // An EGRESS event cannot create the stage-0 (arrival) instance.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 0,
                      {{FieldId::kInPort, 1},
                       {FieldId::kIpSrc, 10},
                       {FieldId::kIpDst, 20}}));
  EXPECT_EQ(eng.live_instances(), 0u);
}

TEST(EngineTest, MissingBoundFieldBlocksCreation) {
  MonitorEngine eng(TwoStage());
  // Arrival on port 1 but without IP fields: bindings can't apply.
  eng.ProcessEvent(
      Ev(DataplaneEventType::kArrival, 0, {{FieldId::kInPort, 1}}));
  EXPECT_EQ(eng.live_instances(), 0u);
}

TEST(EngineTest, DedupKeepsOneInstancePerKey) {
  MonitorEngine eng(TwoStage());
  for (int i = 0; i < 5; ++i) {
    eng.ProcessEvent(Ev(DataplaneEventType::kArrival, i,
                        {{FieldId::kInPort, 1},
                         {FieldId::kIpSrc, 10},
                         {FieldId::kIpDst, 20}}));
  }
  EXPECT_EQ(eng.live_instances(), 1u);
  EXPECT_EQ(EngineStat(eng, "instances_created"), 1u);

  // A different pair is a separate instance.
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 9,
                      {{FieldId::kInPort, 1},
                       {FieldId::kIpSrc, 11},
                       {FieldId::kIpDst, 20}}));
  EXPECT_EQ(eng.live_instances(), 2u);
}

TEST(EngineTest, NegativeMatchOnBoundVar) {
  PropertyBuilder b("neg", "port change");
  const VarId D = b.Var("D"), P = b.Var("P");
  b.AddStage("learn")
      .Match(PatternBuilder::Arrival().Build())
      .Bind(D, FieldId::kEthSrc)
      .Bind(P, FieldId::kInPort);
  b.AddStage("wrong port")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kEthDst, D)
                 .Forwarded()
                 .NeVar(FieldId::kOutPort, P)
                 .Build());
  MonitorEngine eng(std::move(b).Build());

  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0,
                      {{FieldId::kEthSrc, 0xaa}, {FieldId::kInPort, 3}}));
  // Correct port: no violation.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1,
                      {{FieldId::kEthDst, 0xaa},
                       {FieldId::kOutPort, 3},
                       {FieldId::kEgressAction, kForward}}));
  EXPECT_TRUE(eng.violations().empty());
  // Wrong port: violation.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 2,
                      {{FieldId::kEthDst, 0xaa},
                       {FieldId::kOutPort, 4},
                       {FieldId::kEgressAction, kForward}}));
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(EngineTest, ForbiddenGroupIsTupleInequality) {
  // Violates when the egress (dst, port) tuple differs from the bound one
  // in ANY component — but not when both match.
  PropertyBuilder b("forbidden", "NAT-style");
  const VarId A = b.Var("A"), P = b.Var("P");
  b.AddStage("observe")
      .Match(PatternBuilder::Arrival().Build())
      .Bind(A, FieldId::kIpDst)
      .Bind(P, FieldId::kL4DstPort);
  b.AddStage("mistranslated")
      .Match(PatternBuilder::Egress()
                 .Forwarded()
                 .ForbidEqVar(FieldId::kIpDst, A)
                 .ForbidEqVar(FieldId::kL4DstPort, P)
                 .Build());
  MonitorEngine eng(std::move(b).Build());

  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0,
                      {{FieldId::kIpDst, 10}, {FieldId::kL4DstPort, 80}}));
  // Exact tuple: forbidden group holds entirely -> no match.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1,
                      {{FieldId::kIpDst, 10},
                       {FieldId::kL4DstPort, 80},
                       {FieldId::kEgressAction, kForward}}));
  EXPECT_TRUE(eng.violations().empty());
  // One component differs: violation.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 2,
                      {{FieldId::kIpDst, 10},
                       {FieldId::kL4DstPort, 81},
                       {FieldId::kEgressAction, kForward}}));
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(EngineTest, AbortDischargesObligation) {
  PropertyBuilder b("abort", "until close");
  const VarId A = b.Var("A");
  b.AddStage("open")
      // Closes must only discharge: without the OrAbsent guard the FIN
      // would immediately re-create the instance it just aborted.
      .Match(PatternBuilder::Arrival()
                 .EqMaskedOrAbsent(FieldId::kTcpFlags, 0, kTcpFin | kTcpRst)
                 .Build())
      .Bind(A, FieldId::kIpSrc);
  b.AddStage("drop")
      .Match(PatternBuilder::Egress().EqVar(FieldId::kIpDst, A).Dropped().Build())
      .AbortOn(PatternBuilder::Arrival()
                   .EqVar(FieldId::kIpSrc, A)
                   .NeMasked(FieldId::kTcpFlags, 0, kTcpFin | kTcpRst)
                   .Build());
  MonitorEngine eng(std::move(b).Build());

  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0,
                      {{FieldId::kIpSrc, 10}, {FieldId::kTcpFlags, 0}}));
  EXPECT_EQ(eng.live_instances(), 1u);
  // FIN discharges the obligation.
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 1,
                      {{FieldId::kIpSrc, 10}, {FieldId::kTcpFlags, kTcpFin}}));
  EXPECT_EQ(eng.live_instances(), 0u);
  EXPECT_EQ(EngineStat(eng, "instances_aborted"), 1u);
  // The drop after close does not alarm.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 2,
                      {{FieldId::kIpDst, 10}, {FieldId::kEgressAction, kDrop}}));
  EXPECT_TRUE(eng.violations().empty());
}

TEST(EngineTest, AbortRunsBeforeAdvanceOnSameEvent) {
  // An event matching both an abort and the awaited stage must abort.
  PropertyBuilder b("abort-priority", "test");
  const VarId A = b.Var("A");
  b.AddStage("s0").Match(PatternBuilder::Arrival().Build()).Bind(A, FieldId::kIpSrc);
  b.AddStage("s1")
      .Match(PatternBuilder::Egress().EqVar(FieldId::kIpSrc, A).Build())
      .AbortOn(PatternBuilder::Egress().EqVar(FieldId::kIpSrc, A).Build());
  MonitorEngine eng(std::move(b).Build());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0, {{FieldId::kIpSrc, 5}}));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1, {{FieldId::kIpSrc, 5}}));
  EXPECT_TRUE(eng.violations().empty());
  EXPECT_EQ(EngineStat(eng, "instances_aborted"), 1u);
}

TEST(EngineTest, SingleStagePropertyViolatesImmediately) {
  PropertyBuilder b("one-shot", "any drop is a violation");
  b.AddStage("drop").Match(PatternBuilder::Egress().Dropped().Build());
  MonitorEngine eng(std::move(b).Build());
  eng.ProcessEvent(
      Ev(DataplaneEventType::kEgress, 0, {{FieldId::kEgressAction, kDrop}}));
  EXPECT_EQ(eng.violations().size(), 1u);
  EXPECT_EQ(eng.live_instances(), 0u);
}

TEST(EngineTest, OneEventCannotAdvanceTwoStagesOfOneInstance) {
  // Stage 1 and stage 2 both match the same egress; a single event must
  // advance an instance at most once.
  PropertyBuilder b("double", "test");
  const VarId A = b.Var("A");
  b.AddStage("s0").Match(PatternBuilder::Arrival().Build()).Bind(A, FieldId::kIpSrc);
  b.AddStage("s1").Match(
      PatternBuilder::Egress().EqVar(FieldId::kIpSrc, A).Build());
  b.AddStage("s2").Match(
      PatternBuilder::Egress().EqVar(FieldId::kIpSrc, A).Build());
  MonitorEngine eng(std::move(b).Build());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0, {{FieldId::kIpSrc, 5}}));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1, {{FieldId::kIpSrc, 5}}));
  EXPECT_TRUE(eng.violations().empty());
  EXPECT_EQ(eng.live_instances(), 1u);
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 2, {{FieldId::kIpSrc, 5}}));
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(EngineTest, ProvenanceLevels) {
  // kNone: no bindings. kLimited: bindings only. kFull: event history.
  for (const auto level : {ProvenanceLevel::kNone, ProvenanceLevel::kLimited,
                           ProvenanceLevel::kFull}) {
    MonitorConfig mc;
    mc.provenance = level;
    MonitorEngine eng(TwoStage(), mc);
    eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0,
                        {{FieldId::kInPort, 1},
                         {FieldId::kIpSrc, 10},
                         {FieldId::kIpDst, 20}}));
    eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1,
                        {{FieldId::kIpSrc, 20},
                         {FieldId::kIpDst, 10},
                         {FieldId::kEgressAction, kDrop}}));
    ASSERT_EQ(eng.violations().size(), 1u);
    const Violation& v = eng.violations()[0];
    if (level == ProvenanceLevel::kNone) {
      EXPECT_TRUE(v.bindings.empty());
      EXPECT_TRUE(v.history.empty());
    } else if (level == ProvenanceLevel::kLimited) {
      ASSERT_EQ(v.bindings.size(), 2u);
      EXPECT_EQ(v.bindings[0].first, "A");
      EXPECT_EQ(v.bindings[0].second, 10u);
      EXPECT_TRUE(v.history.empty());
    } else {
      EXPECT_EQ(v.bindings.size(), 2u);
      ASSERT_EQ(v.history.size(), 2u);
      EXPECT_EQ(v.history[0].stage, 0u);
      EXPECT_EQ(v.history[0].fields.Get(FieldId::kIpSrc), 10u);
      EXPECT_EQ(v.history[1].stage, 1u);
    }
  }
}

TEST(EngineTest, MaxInstancesEvictsOldest) {
  MonitorConfig mc;
  mc.eviction = EvictionConfig{}.WithMaxInstances(3);
  MonitorEngine eng(TwoStage(), mc);
  for (std::uint64_t i = 0; i < 5; ++i) {
    eng.ProcessEvent(Ev(DataplaneEventType::kArrival, static_cast<int>(i),
                        {{FieldId::kInPort, 1},
                         {FieldId::kIpSrc, 100 + i},
                         {FieldId::kIpDst, 20}}));
  }
  EXPECT_EQ(eng.live_instances(), 3u);
  EXPECT_EQ(EngineStat(eng, "instances_evicted"), 2u);
  // The two oldest (src 100, 101) were evicted: their violation is missed.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 10,
                      {{FieldId::kIpSrc, 20},
                       {FieldId::kIpDst, 100},
                       {FieldId::kEgressAction, kDrop}}));
  EXPECT_TRUE(eng.violations().empty());
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 11,
                      {{FieldId::kIpSrc, 20},
                       {FieldId::kIpDst, 104},
                       {FieldId::kEgressAction, kDrop}}));
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(EngineTest, StatsAccounting) {
  MonitorEngine eng(TwoStage());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0,
                      {{FieldId::kInPort, 1},
                       {FieldId::kIpSrc, 10},
                       {FieldId::kIpDst, 20}}));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1,
                      {{FieldId::kIpSrc, 20},
                       {FieldId::kIpDst, 10},
                       {FieldId::kEgressAction, kDrop}}));
  telemetry::Snapshot snap;
  eng.CollectInto(snap, "t");
  EXPECT_EQ(snap.counter("monitor.engine.t.events"), 2u);
  EXPECT_EQ(snap.counter("monitor.engine.t.instances_created"), 1u);
  EXPECT_EQ(snap.counter("monitor.engine.t.violations"), 1u);
  EXPECT_EQ(snap.gauge("monitor.engine.t.peak_live"), 1);
  // Creation commits stage 0 and the egress commits stage 1.
  EXPECT_EQ(snap.counter("monitor.engine.t.instances_advanced"), 1u);
}

/// LB-shaped property: arrival binds A=src and a round-robin port E of
/// {1,2,3}; egress from A on a port != E violates.
Property RoundRobinProperty() {
  PropertyBuilder b("rr", "test");
  const VarId A = b.Var("A"), E = b.Var("E");
  b.AddStage("assign")
      .Match(PatternBuilder::Arrival().Build())
      .Bind(A, FieldId::kIpSrc)
      .BindRoundRobin(E, 3, 1);
  b.AddStage("wrong port")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kIpSrc, A)
                 .Forwarded()
                 .NeVar(FieldId::kOutPort, E)
                 .Build());
  return std::move(b).Build();
}

std::uint64_t BoundVar(const Violation& v, const std::string& name) {
  for (const auto& [var, value] : v.bindings)
    if (var == name) return value;
  ADD_FAILURE() << "no binding for " << name;
  return 0;
}

TEST(EngineTest, RoundRobinCounterOnlyAdvancesOnCommittedCreation) {
  MonitorEngine eng(RoundRobinProperty());
  // Three flows consume rr values 1, 2, 3.
  for (std::uint64_t ip : {10u, 20u, 30u})
    eng.ProcessEvent(
        Ev(DataplaneEventType::kArrival, 1, {{FieldId::kIpSrc, ip}}));
  EXPECT_EQ(eng.live_instances(), 3u);

  // Re-arrival of flow 10 dedups against the live instance; the rr draw
  // made while evaluating it must be rolled back.
  eng.ProcessEvent(
      Ev(DataplaneEventType::kArrival, 2, {{FieldId::kIpSrc, 10}}));
  EXPECT_EQ(eng.live_instances(), 3u);
  // An arrival that cannot bind A (no src field) must not draw either.
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 3, {}));
  EXPECT_EQ(eng.live_instances(), 3u);

  // The next committed creation therefore gets E=1, not E=2 or E=3.
  eng.ProcessEvent(
      Ev(DataplaneEventType::kArrival, 4, {{FieldId::kIpSrc, 40}}));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 5,
                      {{FieldId::kIpSrc, 40},
                       {FieldId::kOutPort, 99},
                       {FieldId::kEgressAction, kForward}}));
  ASSERT_EQ(eng.violations().size(), 1u);
  EXPECT_EQ(BoundVar(eng.violations()[0], "E"), 1u);
}

TEST(EngineTest, RoundRobinSequenceSurvivesInterleavedNonMatches) {
  MonitorEngine eng(RoundRobinProperty());
  // Matching and non-matching events interleaved: the rr sequence over the
  // committed creations must still be exactly 1, 2, 3, 1.
  std::vector<std::uint64_t> assigned;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const std::uint64_t ip = 100 + i;
    eng.ProcessEvent(Ev(DataplaneEventType::kArrival, static_cast<int>(2 * i),
                        {{FieldId::kIpSrc, ip}}));
    // Interleave non-matches: an arrival that cannot bind A (no rr draw
    // may leak) and an egress from an unknown flow.
    eng.ProcessEvent(
        Ev(DataplaneEventType::kArrival, static_cast<int>(2 * i), {}));
    eng.ProcessEvent(Ev(DataplaneEventType::kEgress, static_cast<int>(2 * i),
                        {{FieldId::kIpSrc, 999},
                         {FieldId::kOutPort, 1},
                         {FieldId::kEgressAction, kForward}}));
    eng.ProcessEvent(
        Ev(DataplaneEventType::kEgress, static_cast<int>(2 * i + 1),
           {{FieldId::kIpSrc, ip},
            {FieldId::kOutPort, 99},
            {FieldId::kEgressAction, kForward}}));
    ASSERT_EQ(eng.violations().size(), i + 1);
    assigned.push_back(BoundVar(eng.violations()[i], "E"));
  }
  EXPECT_EQ(assigned, (std::vector<std::uint64_t>{1, 2, 3, 1}));
}

TEST(EngineTest, NoEvictionQueueGrowthWhenUnbounded) {
  // Eviction disabled (the default): the engine must not accumulate
  // creation-order bookkeeping across create/destroy churn.
  MonitorEngine eng(TwoStage());
  for (int i = 0; i < 10000; ++i) {
    eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 2 * i,
                        {{FieldId::kInPort, 1},
                         {FieldId::kIpSrc, 10},
                         {FieldId::kIpDst, 20}}));
    eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 2 * i + 1,
                        {{FieldId::kIpSrc, 20},
                         {FieldId::kIpDst, 10},
                         {FieldId::kEgressAction, kDrop}}));
  }
  EXPECT_EQ(eng.violations().size(), 10000u);
  EXPECT_EQ(eng.live_instances(), 0u);
  EXPECT_EQ(eng.eviction_queue_size(), 0u);
}

TEST(EngineTest, EvictionQueueStaysBoundedUnderChurn) {
  MonitorConfig mc;
  mc.eviction = EvictionConfig{}.WithMaxInstances(4);
  MonitorEngine eng(TwoStage(), mc);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    eng.ProcessEvent(Ev(DataplaneEventType::kArrival, static_cast<int>(i),
                        {{FieldId::kInPort, 1},
                         {FieldId::kIpSrc, 1000 + i},
                         {FieldId::kIpDst, 20}}));
  }
  EXPECT_EQ(eng.live_instances(), 4u);
  EXPECT_EQ(EngineStat(eng, "instances_evicted"), 10000u - 4u);
  // Compaction keeps the queue near 2*live + threshold, not O(created).
  EXPECT_LE(eng.eviction_queue_size(), 2 * 4u + 64u + 1u);
  // Eviction order must still be correct after compactions: only the 4
  // newest flows are live.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 10001,
                      {{FieldId::kIpSrc, 20},
                       {FieldId::kIpDst, 1000 + 9999},
                       {FieldId::kEgressAction, kDrop}}));
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(EngineTest, ValidatePropertyRejectsBadSpecs) {
  Property p;
  EXPECT_FALSE(p.Validate().empty());  // no name/stages
  p.name = "x";
  EXPECT_FALSE(p.Validate().empty());  // no stages
  p.stages.emplace_back();
  p.stages[0].kind = StageKind::kTimeout;
  EXPECT_FALSE(p.Validate().empty());  // timeout first
  p.stages[0].kind = StageKind::kEvent;
  EXPECT_TRUE(p.Validate().empty());
  // Timeout stage without preceding window:
  Stage timeout_stage;
  timeout_stage.kind = StageKind::kTimeout;
  p.stages.push_back(timeout_stage);
  EXPECT_FALSE(p.Validate().empty());
  p.stages[0].window = Duration::Seconds(1);
  EXPECT_TRUE(p.Validate().empty());
}

}  // namespace
}  // namespace swmon
