// Direct unit tests for the forwarding programs under test (the scenario
// tests exercise them through the monitor; these pin their own behaviour).
#include <gtest/gtest.h>

#include "apps/arp_proxy.hpp"
#include "apps/flow_table_switch.hpp"
#include "apps/learning_switch.hpp"
#include "apps/load_balancer.hpp"
#include "apps/nat.hpp"
#include "apps/port_knocking.hpp"
#include "apps/simple_forwarder.hpp"
#include "apps/stateful_firewall.hpp"
#include "common/rng.hpp"
#include "dataplane/meter.hpp"
#include "packet/builder.hpp"
#include "telemetry/snapshot.hpp"

namespace swmon {
namespace {

constexpr MacAddr kMacA(0x02, 0, 0, 0, 0, 1);
constexpr MacAddr kMacB(0x02, 0, 0, 0, 0, 2);
constexpr Ipv4Addr kIpA(10, 0, 0, 1);
constexpr Ipv4Addr kIpB(198, 51, 100, 1);

class AppFixture : public ::testing::Test {
 protected:
  AppFixture() : sw_(1, 8, queue_) {}

  ForwardDecision Deliver(SwitchProgram& app, const Packet& pkt,
                          std::uint32_t in_port) {
    const ParsedPacket parsed = ParsePacket(pkt, ParseDepth::kL7);
    return app.OnPacket(sw_, parsed, PortId{in_port});
  }

  EventQueue queue_;
  SoftSwitch sw_;
};

// ------------------------------------------------------------ learning

TEST_F(AppFixture, LearningSwitchFloodsUnknownUnicastsKnown) {
  LearningSwitchApp app;
  const Packet a_to_b = BuildIcmpEcho(kMacA, kMacB, kIpA, kIpB, true, 1, 1);
  const Packet b_to_a = BuildIcmpEcho(kMacB, kMacA, kIpB, kIpA, false, 1, 1);

  EXPECT_EQ(Deliver(app, a_to_b, 3).action, EgressActionValue::kFlood);
  // B replies: A was learned on port 3.
  const auto d = Deliver(app, b_to_a, 5);
  EXPECT_EQ(d.action, EgressActionValue::kForward);
  EXPECT_EQ(d.out_port, PortId{3});
  EXPECT_EQ(app.table_size(), 2u);
}

TEST_F(AppFixture, LearningSwitchDropsHairpin) {
  LearningSwitchApp app;
  Deliver(app, BuildIcmpEcho(kMacA, kMacB, kIpA, kIpB, true, 1, 1), 3);
  // A packet to A arriving on A's own port must not loop back out.
  const auto d =
      Deliver(app, BuildIcmpEcho(kMacB, kMacA, kIpB, kIpA, false, 1, 1), 3);
  EXPECT_EQ(d.action, EgressActionValue::kDrop);
}

TEST_F(AppFixture, LearningSwitchFlushesOnLinkDown) {
  LearningSwitchApp app;
  Deliver(app, BuildIcmpEcho(kMacA, kMacB, kIpA, kIpB, true, 1, 1), 3);
  EXPECT_EQ(app.table_size(), 1u);
  app.OnLinkStatus(sw_, PortId{7}, false);
  EXPECT_EQ(app.table_size(), 0u);

  LearningSwitchApp buggy(LearningSwitchFault::kNoFlushOnLinkDown);
  Deliver(buggy, BuildIcmpEcho(kMacA, kMacB, kIpA, kIpB, true, 1, 1), 3);
  buggy.OnLinkStatus(sw_, PortId{7}, false);
  EXPECT_EQ(buggy.table_size(), 1u);
}

// ------------------------------------------------------------ firewall

TEST_F(AppFixture, FirewallAdmitsOnlyEstablishedReturns) {
  FirewallConfig fc;
  fc.internal_ports = {PortId{1}};
  fc.external_port = PortId{2};
  StatefulFirewallApp app(fc);

  const Packet in_syn = BuildTcp(kMacB, kMacA, kIpB, kIpA, 443, 999, kTcpSyn);
  EXPECT_EQ(Deliver(app, in_syn, 2).action, EgressActionValue::kDrop);

  const Packet out_syn = BuildTcp(kMacA, kMacB, kIpA, kIpB, 999, 443, kTcpSyn);
  EXPECT_EQ(Deliver(app, out_syn, 1).action, EgressActionValue::kForward);
  EXPECT_EQ(app.connection_count(), 1u);

  const Packet in_ack = BuildTcp(kMacB, kMacA, kIpB, kIpA, 443, 999, kTcpAck);
  const auto d = Deliver(app, in_ack, 2);
  EXPECT_EQ(d.action, EgressActionValue::kForward);
  EXPECT_EQ(d.out_port, PortId{1});
}

TEST_F(AppFixture, FirewallClosesOnFinAndRst) {
  FirewallConfig fc;
  fc.internal_ports = {PortId{1}};
  fc.external_port = PortId{2};
  StatefulFirewallApp app(fc);

  Deliver(app, BuildTcp(kMacA, kMacB, kIpA, kIpB, 999, 443, kTcpSyn), 1);
  Deliver(app, BuildTcp(kMacA, kMacB, kIpA, kIpB, 999, 443, kTcpFin | kTcpAck), 1);
  EXPECT_EQ(app.connection_count(), 0u);
  // Post-close returns are dropped.
  EXPECT_EQ(Deliver(app, BuildTcp(kMacB, kMacA, kIpB, kIpA, 443, 999, kTcpAck), 2)
                .action,
            EgressActionValue::kDrop);
}

TEST_F(AppFixture, FirewallExpiresIdleConnections) {
  FirewallConfig fc;
  fc.internal_ports = {PortId{1}};
  fc.external_port = PortId{2};
  fc.idle_timeout = Duration::Seconds(10);
  StatefulFirewallApp app(fc);

  Deliver(app, BuildTcp(kMacA, kMacB, kIpA, kIpB, 999, 443, kTcpSyn), 1);
  queue_.RunUntil(SimTime::Zero() + Duration::Seconds(11));
  EXPECT_EQ(Deliver(app, BuildTcp(kMacB, kMacA, kIpB, kIpA, 443, 999, kTcpAck), 2)
                .action,
            EgressActionValue::kDrop);
}

TEST_F(AppFixture, FirewallRefreshesOnOutboundTraffic) {
  FirewallConfig fc;
  fc.internal_ports = {PortId{1}};
  fc.external_port = PortId{2};
  fc.idle_timeout = Duration::Seconds(10);
  StatefulFirewallApp app(fc);

  Deliver(app, BuildTcp(kMacA, kMacB, kIpA, kIpB, 999, 443, kTcpSyn), 1);
  queue_.RunUntil(SimTime::Zero() + Duration::Seconds(8));
  Deliver(app, BuildTcp(kMacA, kMacB, kIpA, kIpB, 999, 443, kTcpAck), 1);
  queue_.RunUntil(SimTime::Zero() + Duration::Seconds(14));
  // 14s after open but only 6s after refresh: still admitted.
  EXPECT_EQ(Deliver(app, BuildTcp(kMacB, kMacA, kIpB, kIpA, 443, 999, kTcpAck), 2)
                .action,
            EgressActionValue::kForward);

  FirewallConfig buggy_cfg = fc;
  buggy_cfg.fault = FirewallFault::kNoRefreshOnTraffic;
  StatefulFirewallApp buggy(buggy_cfg);
  // Re-run the same sequence: without refresh the return is dropped.
  EventQueue q2;
  SoftSwitch sw2(2, 4, q2);
  auto deliver2 = [&](const Packet& pkt, std::uint32_t port) {
    return buggy.OnPacket(sw2, ParsePacket(pkt, ParseDepth::kL7), PortId{port});
  };
  deliver2(BuildTcp(kMacA, kMacB, kIpA, kIpB, 999, 443, kTcpSyn), 1);
  q2.RunUntil(SimTime::Zero() + Duration::Seconds(8));
  deliver2(BuildTcp(kMacA, kMacB, kIpA, kIpB, 999, 443, kTcpAck), 1);
  q2.RunUntil(SimTime::Zero() + Duration::Seconds(14));
  EXPECT_EQ(deliver2(BuildTcp(kMacB, kMacA, kIpB, kIpA, 443, 999, kTcpAck), 2)
                .action,
            EgressActionValue::kDrop);
}

// ----------------------------------------------------------------- NAT

TEST_F(AppFixture, NatTranslatesAndReverses) {
  NatConfig nc;
  NatApp app(nc);

  const Packet out = BuildTcp(kMacA, kMacB, kIpA, kIpB, 5555, 80, kTcpSyn);
  const auto d1 = Deliver(app, out, 1);
  ASSERT_EQ(d1.action, EgressActionValue::kForward);
  ASSERT_TRUE(d1.rewritten.has_value());
  EXPECT_EQ(d1.rewritten->ipv4->src, nc.public_ip);
  const std::uint16_t translated = d1.rewritten->tcp->src_port;
  EXPECT_GE(translated, nc.first_nat_port);

  const Packet back =
      BuildTcp(kMacB, kMacA, kIpB, nc.public_ip, 80, translated, kTcpAck);
  const auto d2 = Deliver(app, back, 2);
  ASSERT_EQ(d2.action, EgressActionValue::kForward);
  ASSERT_TRUE(d2.rewritten.has_value());
  EXPECT_EQ(d2.rewritten->ipv4->dst, kIpA);
  EXPECT_EQ(d2.rewritten->tcp->dst_port, 5555);
}

TEST_F(AppFixture, NatMappingsAreStablePerSource) {
  NatApp app(NatConfig{});
  const auto d1 =
      Deliver(app, BuildTcp(kMacA, kMacB, kIpA, kIpB, 5555, 80, kTcpSyn), 1);
  const auto d2 =
      Deliver(app, BuildTcp(kMacA, kMacB, kIpA, kIpB, 5555, 80, kTcpAck), 1);
  EXPECT_EQ(d1.rewritten->tcp->src_port, d2.rewritten->tcp->src_port);
  EXPECT_EQ(app.mapping_count(), 1u);
  // A different source port gets a fresh mapping.
  const auto d3 =
      Deliver(app, BuildTcp(kMacA, kMacB, kIpA, kIpB, 5556, 80, kTcpSyn), 1);
  EXPECT_NE(d3.rewritten->tcp->src_port, d1.rewritten->tcp->src_port);
}

TEST_F(AppFixture, NatDropsUnknownInbound) {
  NatApp app(NatConfig{});
  const Packet stray = BuildTcp(kMacB, kMacA, kIpB, NatConfig{}.public_ip, 80,
                                50000, kTcpSyn);
  EXPECT_EQ(Deliver(app, stray, 2).action, EgressActionValue::kDrop);
}

// ----------------------------------------------------------- ARP proxy

TEST_F(AppFixture, ArpProxyLearnsFromRepliesAndAnswers) {
  ArpProxyApp app(ArpProxyConfig{});
  // A reply traverses the switch: the proxy learns the mapping.
  Deliver(app, BuildArpReply(kMacA, kIpA, kMacB, kIpB), 1);
  EXPECT_TRUE(app.Knows(kIpA));
  // A later request for that address is answered (dropped, reply emitted).
  const auto d = Deliver(app, BuildArpRequest(kMacB, kIpB, kIpA), 2);
  EXPECT_EQ(d.action, EgressActionValue::kDrop);
  EXPECT_GT(queue_.pending(), 0u);  // the scheduled proxy reply
}

TEST_F(AppFixture, ArpProxyFloodsUnknownRequests) {
  ArpProxyApp app(ArpProxyConfig{});
  EXPECT_EQ(Deliver(app, BuildArpRequest(kMacB, kIpB, kIpA), 2).action,
            EgressActionValue::kFlood);
}

TEST_F(AppFixture, ArpProxySnoopsDhcpWhenEnabled) {
  ArpProxyConfig pc;
  pc.dhcp_snooping = true;
  ArpProxyApp app(pc);
  DhcpMessage ack;
  ack.op = 2;
  ack.msg_type = DhcpMsgType::kAck;
  ack.yiaddr = kIpA;
  ack.chaddr = kMacA;
  Deliver(app, BuildDhcp(kMacB, kMacA, Ipv4Addr(10, 1, 0, 1), kIpA,
                         /*from_client=*/false, ack),
          3);
  EXPECT_TRUE(app.Knows(kIpA));
}

// -------------------------------------------------------- load balancer

TEST_F(AppFixture, LoadBalancerPinsFlowsUntilClose) {
  LoadBalancerConfig lc;
  LoadBalancerApp app(lc);
  const Packet syn = BuildTcp(kMacA, kMacB, kIpA, kIpB, 7000, 80, kTcpSyn);
  const Packet data = BuildTcp(kMacA, kMacB, kIpA, kIpB, 7000, 80, kTcpAck);
  const auto first = Deliver(app, syn, 1);
  ASSERT_EQ(first.action, EgressActionValue::kForward);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(Deliver(app, data, 1).out_port, first.out_port);

  const Packet fin = BuildTcp(kMacA, kMacB, kIpA, kIpB, 7000, 80, kTcpFin);
  EXPECT_EQ(Deliver(app, fin, 1).out_port, first.out_port);
  EXPECT_EQ(app.flow_count(), 0u);  // pin released on close
}

TEST_F(AppFixture, LoadBalancerHashIsDeterministicAndInRange) {
  LoadBalancerConfig lc;
  LoadBalancerApp app1(lc), app2(lc);
  for (std::uint16_t sport = 7000; sport < 7032; ++sport) {
    const Packet syn = BuildTcp(kMacA, kMacB, kIpA, kIpB, sport, 80, kTcpSyn);
    const auto a = Deliver(app1, syn, 1);
    const auto b = app2.OnPacket(sw_, ParsePacket(syn, ParseDepth::kL7),
                                 PortId{1});
    EXPECT_EQ(a.out_port, b.out_port);
    EXPECT_GE(ToU64(a.out_port), lc.first_server_port);
    EXPECT_LT(ToU64(a.out_port), lc.first_server_port + lc.server_count);
  }
}

TEST_F(AppFixture, LoadBalancerRoundRobinCycles) {
  LoadBalancerConfig lc;
  lc.mode = LbMode::kRoundRobin;
  LoadBalancerApp app(lc);
  for (std::uint32_t i = 0; i < 8; ++i) {
    const Packet syn = BuildTcp(kMacA, kMacB, kIpA, kIpB,
                                static_cast<std::uint16_t>(7000 + i), 80,
                                kTcpSyn);
    EXPECT_EQ(ToU64(Deliver(app, syn, 1).out_port),
              lc.first_server_port + i % lc.server_count);
  }
}

// -------------------------------------------------------- port knocking

TEST_F(AppFixture, KnockGateOpensOnCleanSequenceOnly) {
  PortKnockConfig kc;
  PortKnockGateApp app(kc);
  auto knock = [&](std::uint16_t port) {
    Deliver(app, BuildUdp(kMacA, kMacB, kIpA, kIpB, 40000, port), 1);
  };
  const Packet ssh = BuildTcp(kMacA, kMacB, kIpA, kIpB, 40001, 22, kTcpSyn);

  EXPECT_EQ(Deliver(app, ssh, 1).action, EgressActionValue::kDrop);
  knock(7000);
  knock(7001);
  knock(7003);  // wrong guess: reset
  knock(7002);
  EXPECT_EQ(Deliver(app, ssh, 1).action, EgressActionValue::kDrop);
  knock(7000);
  knock(7001);
  knock(7002);
  EXPECT_TRUE(app.IsOpen(kIpA));
  EXPECT_EQ(Deliver(app, ssh, 1).action, EgressActionValue::kForward);
}

TEST_F(AppFixture, KnockGateIgnoresUdpOutsideRegion) {
  PortKnockGateApp app(PortKnockConfig{});
  Deliver(app, BuildUdp(kMacA, kMacB, kIpA, kIpB, 40000, 7000), 1);
  // Ordinary UDP (e.g. DNS) must not reset knock progress.
  const auto d = Deliver(app, BuildUdp(kMacA, kMacB, kIpA, kIpB, 40000, 53), 1);
  EXPECT_EQ(d.action, EgressActionValue::kForward);
  Deliver(app, BuildUdp(kMacA, kMacB, kIpA, kIpB, 40000, 7001), 1);
  Deliver(app, BuildUdp(kMacA, kMacB, kIpA, kIpB, 40000, 7002), 1);
  EXPECT_TRUE(app.IsOpen(kIpA));
}

TEST_F(AppFixture, KnockGateIsPerSourceAddress) {
  PortKnockGateApp app(PortKnockConfig{});
  auto knock = [&](Ipv4Addr src, std::uint16_t port) {
    Deliver(app, BuildUdp(kMacA, kMacB, src, kIpB, 40000, port), 1);
  };
  knock(kIpA, 7000);
  knock(kIpA, 7001);
  knock(kIpA, 7002);
  EXPECT_TRUE(app.IsOpen(kIpA));
  EXPECT_FALSE(app.IsOpen(Ipv4Addr(10, 0, 0, 2)));
}

// -------------------------------------------------- flow-table switch

TEST_F(AppFixture, FlowTableSwitchMatchesPlainLearningSwitch) {
  // Random traffic through both implementations: identical decisions.
  LearningSwitchApp plain;
  FlowTableSwitchApp tabled;  // no idle timeout
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const auto src = static_cast<std::uint8_t>(1 + rng.NextBelow(6));
    const auto dst = static_cast<std::uint8_t>(1 + rng.NextBelow(6));
    const std::uint32_t in_port = 1 + src;  // host n lives on port n+1
    const Packet pkt = BuildIcmpEcho(
        MacAddr(0x02, 0, 0, 0, 0, src),
        rng.NextBool(0.1) ? MacAddr::Broadcast()
                          : MacAddr(0x02, 0, 0, 0, 0, dst),
        Ipv4Addr(10, 0, 0, src), Ipv4Addr(10, 0, 0, dst), true, 1,
        static_cast<std::uint16_t>(i));
    const auto a = Deliver(plain, pkt, in_port);
    const auto b = Deliver(tabled, pkt, in_port);
    ASSERT_EQ(a.action, b.action) << "step " << i;
    if (a.action == EgressActionValue::kForward) {
      ASSERT_EQ(a.out_port, b.out_port) << "step " << i;
    }
    if (rng.NextBool(0.02)) {
      const PortId victim{1 + static_cast<std::uint32_t>(rng.NextBelow(7))};
      plain.OnLinkStatus(sw_, victim, false);
      tabled.OnLinkStatus(sw_, victim, false);
    }
  }
}

TEST_F(AppFixture, FlowTableSwitchIdleExpiryForgetsHosts) {
  FlowTableSwitchConfig cfg;
  cfg.mac_idle_timeout = Duration::Seconds(5);
  FlowTableSwitchApp app(cfg);
  const Packet a_to_b = BuildIcmpEcho(kMacA, kMacB, kIpA, kIpB, true, 1, 1);
  const Packet b_to_a = BuildIcmpEcho(kMacB, kMacA, kIpB, kIpA, false, 1, 1);
  Deliver(app, a_to_b, 3);
  EXPECT_EQ(Deliver(app, b_to_a, 5).action, EgressActionValue::kForward);
  // 6 idle seconds later the rule for A has expired: back to flooding.
  queue_.RunUntil(SimTime::Zero() + Duration::Seconds(6));
  EXPECT_EQ(Deliver(app, b_to_a, 5).action, EgressActionValue::kFlood);
}

TEST_F(AppFixture, FlowTableSwitchReinstallsOnHostMove) {
  FlowTableSwitchApp app;
  const Packet a_to_b = BuildIcmpEcho(kMacA, kMacB, kIpA, kIpB, true, 1, 1);
  Deliver(app, a_to_b, 3);
  EXPECT_EQ(app.rules_installed(), 1u);
  Deliver(app, a_to_b, 3);  // same port: the rule is fresh, no churn
  EXPECT_EQ(app.rules_installed(), 1u);
  Deliver(app, a_to_b, 5);  // host moved: one replacement install
  EXPECT_EQ(app.rules_installed(), 2u);
  EXPECT_EQ(app.table().size(), 1u);
}

// ---------------------------------------------------------------- meter

TEST(MeterTest, AdmitsWithinRateAndBurst) {
  Meter meter(/*rate=*/10, /*burst=*/5);  // 10 tokens/s, burst 5
  const SimTime t0 = SimTime::Zero();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(meter.Admit(t0));
  EXPECT_FALSE(meter.Admit(t0));  // burst exhausted
  // 100ms later one token has accrued.
  EXPECT_TRUE(meter.Admit(t0 + Duration::Millis(100)));
  EXPECT_FALSE(meter.Admit(t0 + Duration::Millis(100)));
  telemetry::Snapshot snap;
  meter.CollectInto(snap, "m");
  EXPECT_EQ(snap.counter("dataplane.meter.m.admitted"), 6u);
  EXPECT_EQ(snap.counter("dataplane.meter.m.exceeded"), 2u);
}

TEST(MeterTest, BucketCapsAtBurst) {
  Meter meter(1000, 3);
  // A long quiet period cannot bank more than the burst.
  EXPECT_TRUE(meter.Admit(SimTime::Zero() + Duration::Seconds(100)));
  EXPECT_TRUE(meter.Admit(SimTime::Zero() + Duration::Seconds(100)));
  EXPECT_TRUE(meter.Admit(SimTime::Zero() + Duration::Seconds(100)));
  EXPECT_FALSE(meter.Admit(SimTime::Zero() + Duration::Seconds(100)));
}

TEST(MeterTest, MultiTokenCosts) {
  Meter meter(1000, 1500);  // byte-based: 1000 B/s, 1500 B burst
  EXPECT_TRUE(meter.Admit(SimTime::Zero(), 1500));
  EXPECT_FALSE(meter.Admit(SimTime::Zero() + Duration::Millis(500), 1000));
  EXPECT_TRUE(meter.Admit(SimTime::Zero() + Duration::Seconds(1), 1000));
}

// ------------------------------------------------------ simple forwarder

TEST_F(AppFixture, SimpleForwarderMapsAndFloods) {
  SimpleForwarderApp app({{PortId{1}, PortId{2}}, {PortId{2}, PortId{1}}});
  const Packet pkt = BuildIcmpEcho(kMacA, kMacB, kIpA, kIpB, true, 1, 1);
  EXPECT_EQ(Deliver(app, pkt, 1).out_port, PortId{2});
  EXPECT_EQ(Deliver(app, pkt, 2).out_port, PortId{1});
  EXPECT_EQ(Deliver(app, pkt, 3).action, EgressActionValue::kFlood);

  SimpleForwarderApp strict({{PortId{1}, PortId{2}}}, /*flood_unmapped=*/false);
  EXPECT_EQ(Deliver(strict, pkt, 3).action, EgressActionValue::kDrop);
}

}  // namespace
}  // namespace swmon
