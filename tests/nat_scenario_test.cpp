// End-to-end: NAT + the Sec-2.2 reverse-translation property.
#include <gtest/gtest.h>

#include "workload/nat_scenario.hpp"

namespace swmon {
namespace {

TEST(NatScenarioTest, CorrectNatIsQuiet) {
  NatScenarioConfig config;
  const auto out = RunNatScenario(config);
  EXPECT_EQ(out.TotalViolations(), 0u);
  EXPECT_GT(out.packets_injected, 0u);
}

TEST(NatScenarioTest, WrongReversePortDetected) {
  NatScenarioConfig config;
  config.fault = NatFault::kWrongReversePort;
  const auto out = RunNatScenario(config);
  EXPECT_GT(out.ViolationsOf("nat-reverse-translation"), 0u);
}

TEST(NatScenarioTest, WrongReverseAddrDetected) {
  NatScenarioConfig config;
  config.fault = NatFault::kWrongReverseAddr;
  const auto out = RunNatScenario(config);
  EXPECT_GT(out.ViolationsOf("nat-reverse-translation"), 0u);
}

TEST(NatScenarioTest, ForgetMappingDropsAreNotMistranslations) {
  // Dropped inbound packets never reach observation (4): the translation
  // property is about rewrites, not liveness.
  NatScenarioConfig config;
  config.fault = NatFault::kForgetMapping;
  const auto out = RunNatScenario(config);
  EXPECT_EQ(out.ViolationsOf("nat-reverse-translation"), 0u);
}

TEST(NatScenarioTest, ViolationCarriesTranslationBindings) {
  NatScenarioConfig config;
  config.fault = NatFault::kWrongReversePort;
  config.flows = 1;
  config.exchanges_per_flow = 1;
  const auto out = RunNatScenario(config);
  const auto violations = out.monitors->AllViolations();
  ASSERT_FALSE(violations.empty());
  const Violation& v = violations[0];
  // Limited provenance carries all bound header values (A, P, B, Q, A', P').
  EXPECT_GE(v.bindings.size(), 6u);
}

class NatSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NatSeedSweep, QuietWhenCorrectDetectsWhenBroken) {
  NatScenarioConfig config;
  config.options.seed = GetParam();
  config.flows = 10 + GetParam() % 7;
  EXPECT_EQ(RunNatScenario(config).TotalViolations(), 0u);
  config.fault = NatFault::kWrongReversePort;
  EXPECT_GT(RunNatScenario(config).TotalViolations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NatSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace swmon
