// End-to-end: learning switch + the Sec-1 / Sec-2.4 properties.
#include <gtest/gtest.h>

#include "workload/learning_scenario.hpp"

namespace swmon {
namespace {

TEST(LearningScenarioTest, CorrectSwitchIsQuiet) {
  LearningScenarioConfig config;
  const auto out = RunLearningScenario(config);
  EXPECT_EQ(out.TotalViolations(), 0u);
}

TEST(LearningScenarioTest, CorrectSwitchQuietEvenWithLinkDown) {
  LearningScenarioConfig config;
  config.inject_link_down = true;
  config.rounds = 12;
  const auto out = RunLearningScenario(config);
  EXPECT_EQ(out.ViolationsOf("lsw-linkdown-flush"), 0u);
}

TEST(LearningScenarioTest, NeverLearnFaultFloodsKnownDestinations) {
  LearningScenarioConfig config;
  config.fault = LearningSwitchFault::kNeverLearn;
  const auto out = RunLearningScenario(config);
  EXPECT_GT(out.ViolationsOf("lsw-no-flood-after-learn"), 0u);
  // It floods, so the wrong-unicast-port property has nothing to say.
  EXPECT_EQ(out.ViolationsOf("lsw-correct-port"), 0u);
}

TEST(LearningScenarioTest, WrongPortFaultDetected) {
  LearningScenarioConfig config;
  config.fault = LearningSwitchFault::kWrongPort;
  const auto out = RunLearningScenario(config);
  EXPECT_GT(out.ViolationsOf("lsw-correct-port"), 0u);
}

TEST(LearningScenarioTest, NoFlushFaultDetectedByMultipleMatchProperty) {
  LearningScenarioConfig config;
  config.fault = LearningSwitchFault::kNoFlushOnLinkDown;
  config.inject_link_down = true;
  config.rounds = 12;
  config.options.seed = 3;
  const auto out = RunLearningScenario(config);
  EXPECT_GT(out.ViolationsOf("lsw-linkdown-flush"), 0u);
}

TEST(LearningScenarioTest, NoFlushFaultInvisibleWithoutLinkEvents) {
  LearningScenarioConfig config;
  config.fault = LearningSwitchFault::kNoFlushOnLinkDown;
  config.inject_link_down = false;
  const auto out = RunLearningScenario(config);
  EXPECT_EQ(out.TotalViolations(), 0u);
}

class LearningSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LearningSeedSweep, CorrectSwitchNeverAlarms) {
  LearningScenarioConfig config;
  config.options.seed = GetParam();
  config.inject_link_down = (GetParam() % 2) == 0;
  config.hosts = 4 + GetParam() % 5;
  config.rounds = 8 + GetParam() % 9;
  const auto out = RunLearningScenario(config);
  EXPECT_EQ(out.TotalViolations(), 0u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LearningSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace swmon
