// ParallelMonitorSet: sharded worker-pool execution must be observationally
// identical to the serial MonitorSet — violations, per-engine stats, and
// set-level counters — at every worker count. Replays the fuzz-test seed
// streams plus all 13 Table-1 catalog properties through both paths at
// 1/2/4/8 workers. Carries the `tsan` CTest label.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "monitor/monitor_set.hpp"
#include "monitor/parallel_monitor_set.hpp"
#include "properties/catalog.hpp"
#include "telemetry/snapshot.hpp"

namespace swmon {
namespace {

/// The EngineFuzz event soup (fuzz_test.cpp): random types, random field
/// sprinkles in a small value range so stages actually chain and violate.
std::vector<DataplaneEvent> FuzzSeedStream(std::uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  SimTime t = SimTime::Zero();
  for (int i = 0; i < count; ++i) {
    DataplaneEvent ev;
    t = t + Duration::Millis(1 + static_cast<std::int64_t>(rng.NextBelow(50)));
    ev.time = t;
    const auto roll = rng.NextBelow(10);
    ev.type = roll < 4   ? DataplaneEventType::kArrival
              : roll < 8 ? DataplaneEventType::kEgress
                         : DataplaneEventType::kLinkStatus;
    for (std::size_t f = 0; f < kNumFieldIds; ++f) {
      if (rng.NextBool(0.35))
        ev.fields.Set(static_cast<FieldId>(f), rng.NextBelow(8));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<Property> Table1Properties() {
  std::vector<Property> props;
  for (const CatalogEntry& e : BuildCatalog())
    if (e.in_table1) props.push_back(e.property);
  return props;
}

void ExpectViolationEq(const Violation& a, const Violation& b,
                       const std::string& label) {
  EXPECT_EQ(a.property, b.property) << label;
  EXPECT_EQ(a.time, b.time) << label;
  EXPECT_EQ(a.instance_id, b.instance_id) << label;
  EXPECT_EQ(a.trigger_stage, b.trigger_stage) << label;
  EXPECT_EQ(a.bindings, b.bindings) << label;
  EXPECT_EQ(a.history.size(), b.history.size()) << label;
}

/// Snapshot equality with a readable diff: every counter/gauge in either
/// snapshot must agree — per-engine families and set-level totals alike.
/// `b` (the parallel set's snapshot) may additionally carry runtime-only
/// monitor.parallel.* metrics that a serial set cannot emit; those are
/// excluded from the parity contract.
void ExpectSnapshotEq(const telemetry::Snapshot& a,
                      const telemetry::Snapshot& b, const std::string& label) {
  std::size_t b_shared = 0;
  for (const auto& [name, sample] : b.samples())
    if (name.rfind("monitor.parallel.", 0) != 0) ++b_shared;
  for (const auto& [name, sample] : a.samples()) {
    ASSERT_TRUE(b.Has(name)) << label << " missing " << name;
    EXPECT_TRUE(sample == b.samples().at(name)) << label << " at " << name;
  }
  EXPECT_EQ(a.size(), b_shared) << label;
}

/// Runs the serial reference and also records the serial merged order: after
/// each event (and the final AdvanceTime), new violations per engine in
/// attach order — the order ParallelMonitorSet::MergedViolations() promises.
struct SerialReference {
  MonitorSet set;
  std::vector<Violation> merged;
};

std::unique_ptr<SerialReference> RunSerial(
    const std::vector<Property>& props,
    const std::vector<DataplaneEvent>& events, SimTime final_advance) {
  auto ref = std::make_unique<SerialReference>();
  for (const Property& p : props) ref->set.Add(p);
  std::vector<std::size_t> seen(props.size(), 0);
  const auto collect = [&] {
    for (std::size_t i = 0; i < props.size(); ++i) {
      const auto& v = ref->set.engine(i).violations();
      for (; seen[i] < v.size(); ++seen[i]) ref->merged.push_back(v[seen[i]]);
    }
  };
  for (const DataplaneEvent& ev : events) {
    ref->set.OnDataplaneEvent(ev);
    collect();
  }
  ref->set.AdvanceTime(final_advance);
  collect();
  return ref;
}

class ParallelParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelParity, FuzzSeedStreamsMatchSerialExactly) {
  const std::size_t workers = GetParam();
  const std::vector<Property> props = Table1Properties();
  ASSERT_EQ(props.size(), 13u);

  for (const std::uint64_t seed : {99ull, 123ull}) {
    const auto events = FuzzSeedStream(seed, 1500);
    const SimTime end = events.back().time + Duration::Seconds(300);
    const auto serial = RunSerial(props, events, end);

    ParallelConfig cfg;
    cfg.workers = workers;
    cfg.batch_capacity = 128;
    ParallelMonitorSet parallel(cfg);
    for (const Property& p : props) parallel.Add(p);
    parallel.Start();
    for (const DataplaneEvent& ev : events) parallel.OnDataplaneEvent(ev);
    parallel.AdvanceTime(end);
    parallel.Stop();

    const std::string label =
        "workers=" + std::to_string(workers) + " seed=" + std::to_string(seed);

    // Identical violation sequences: attach-order concatenation...
    const auto serial_all = serial->set.AllViolations();
    const auto parallel_all = parallel.AllViolations();
    ASSERT_EQ(serial_all.size(), parallel_all.size()) << label;
    EXPECT_GT(serial_all.size(), 0u) << label << " (vacuous parity)";
    for (std::size_t i = 0; i < serial_all.size(); ++i)
      ExpectViolationEq(serial_all[i], parallel_all[i],
                        label + " all[" + std::to_string(i) + "]");

    // ...and the stream-order merge.
    const auto parallel_merged = parallel.MergedViolations();
    ASSERT_EQ(serial->merged.size(), parallel_merged.size()) << label;
    for (std::size_t i = 0; i < serial->merged.size(); ++i)
      ExpectViolationEq(serial->merged[i], parallel_merged[i],
                        label + " merged[" + std::to_string(i) + "]");

    // Identical merged counter snapshot: per-engine families plus the
    // set-level dispatch counters (batched vs per-event counting), all
    // through the one telemetry query path.
    ExpectSnapshotEq(serial->set.TelemetrySnapshot(),
                     parallel.TelemetrySnapshot(), label);
    EXPECT_EQ(serial->set.TotalViolations(), parallel.TotalViolations())
        << label;
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelParity,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(ParallelMonitorSetTest, CountersMatchSerialAcrossPartialBatchFlushes) {
  // An odd batch size plus mid-stream queries forces partial-batch flushes;
  // events_dispatched/events_filtered must still count identically.
  const std::vector<Property> props = Table1Properties();
  const auto events = FuzzSeedStream(7, 333);

  MonitorSet serial;
  for (const Property& p : props) serial.Add(p);

  ParallelConfig cfg;
  cfg.workers = 3;
  cfg.batch_capacity = 7;
  ParallelMonitorSet parallel(cfg);
  for (const Property& p : props) parallel.Add(p);
  parallel.Start();

  for (std::size_t i = 0; i < events.size(); ++i) {
    serial.OnDataplaneEvent(events[i]);
    parallel.OnDataplaneEvent(events[i]);
    if (i % 50 == 49) {
      // Mid-stream query = flush point; totals must agree at every one.
      ExpectSnapshotEq(serial.TelemetrySnapshot(), parallel.TelemetrySnapshot(),
                       "mid-stream i=" + std::to_string(i));
    }
  }
  parallel.Stop();
  ExpectSnapshotEq(serial.TelemetrySnapshot(), parallel.TelemetrySnapshot(),
                   "final");
}

TEST(ParallelMonitorSetTest, MergedViolationsAgreeAcrossWorkerCounts) {
  const std::vector<Property> props = Table1Properties();
  const auto events = FuzzSeedStream(42, 800);
  const SimTime end = events.back().time + Duration::Seconds(120);

  std::vector<Violation> reference;
  for (const std::size_t workers : {1u, 2u, 5u}) {
    ParallelConfig cfg;
    cfg.workers = workers;
    cfg.batch_capacity = workers == 2 ? 11 : 64;  // vary flush boundaries too
    ParallelMonitorSet set(cfg);
    for (const Property& p : props) set.Add(p);
    set.Start();
    for (const DataplaneEvent& ev : events) set.OnDataplaneEvent(ev);
    set.AdvanceTime(end);
    const auto merged = set.MergedViolations();
    if (reference.empty()) {
      reference = merged;
      ASSERT_GT(reference.size(), 0u);
    } else {
      ASSERT_EQ(reference.size(), merged.size()) << workers;
      for (std::size_t i = 0; i < merged.size(); ++i)
        ExpectViolationEq(reference[i], merged[i],
                          "workers=" + std::to_string(workers));
    }
  }
}

TEST(ParallelMonitorSetTest, AdvanceTimeFiresDeadlinesLikeSerial) {
  // Mirror of MonitorSetTest.AdvanceTimeReachesEveryEngine through the
  // batched path: both pending deadlines fire on AdvanceTime even though
  // no batch was full (flush-on-query keeps timeout semantics unchanged).
  const auto ev = [](std::int64_t ms,
                     std::initializer_list<std::pair<FieldId, std::uint64_t>>
                         kv) {
    DataplaneEvent e;
    e.type = DataplaneEventType::kArrival;
    e.time = SimTime::Zero() + Duration::Millis(ms);
    for (const auto& [k, v] : kv) e.fields.Set(k, v);
    return e;
  };
  ParallelConfig cfg;
  cfg.workers = 2;
  cfg.batch_capacity = 1024;  // never fills: only flush-on-query publishes
  ParallelMonitorSet set(cfg);
  set.Add(ArpProxyReplyDeadline());
  set.Add(DhcpReplyDeadline());
  set.Start();
  set.OnDataplaneEvent(
      ev(1, {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 7}}));
  set.OnDataplaneEvent(
      ev(2, {{FieldId::kArpOp, 1}, {FieldId::kArpTargetIp, 7}}));
  set.OnDataplaneEvent(ev(3, {{FieldId::kDhcpMsgType, 3},
                              {FieldId::kDhcpChaddr, 0xaa},
                              {FieldId::kDhcpXid, 1}}));
  set.AdvanceTime(SimTime::Zero() + Duration::Seconds(30));
  EXPECT_EQ(set.TotalViolations(), 2u);
  const auto merged = set.MergedViolations();
  ASSERT_EQ(merged.size(), 2u);
  // AdvanceTime violations merge in attach order at the advance point.
  EXPECT_EQ(merged[0].property, ArpProxyReplyDeadline().name);
  EXPECT_EQ(merged[1].property, DhcpReplyDeadline().name);
}

TEST(ParallelMonitorSetTest, GreedyAssignmentIsBalancedAndDeterministic) {
  const std::vector<double> weights = {10, 1, 1, 1, 7, 3, 3};
  const auto a = GreedyAssignShards(weights, 3);
  const auto b = GreedyAssignShards(weights, 3);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), weights.size());
  std::vector<double> load(3, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_LT(a[i], 3u);
    load[a[i]] += weights[i];
  }
  // LPT on these weights: {10}, {7, 1}, {3, 3, 1, 1} — max load 10, i.e.
  // no worker exceeds the single heaviest engine here.
  EXPECT_EQ(*std::max_element(load.begin(), load.end()), 10);

  // More workers than engines: every engine still lands on a valid shard.
  const auto wide = GreedyAssignShards({2, 1}, 8);
  EXPECT_LT(wide[0], 8u);
  EXPECT_LT(wide[1], 8u);
  EXPECT_NE(wide[0], wide[1]);
}

TEST(ParallelMonitorSetTest, CalibrationWeighsBusyEnginesHeavier) {
  // On an ARP-heavy sample, the ARP deadline property does real instance
  // work while the FTP property never matches; calibration must notice.
  std::vector<DataplaneEvent> sample;
  for (int i = 0; i < 200; ++i) {
    DataplaneEvent ev;
    ev.type = DataplaneEventType::kArrival;
    ev.time = SimTime::Zero() + Duration::Millis(i);
    ev.fields.Set(FieldId::kArpOp, i % 2 == 0 ? 2 : 1);
    ev.fields.Set(FieldId::kArpSenderIp, 7 + i % 3);
    ev.fields.Set(FieldId::kArpTargetIp, 7 + i % 3);
    sample.push_back(std::move(ev));
  }
  const std::vector<Property> props = {ArpProxyReplyDeadline(),
                                       FtpDataPortMatchesControl()};
  const auto weights = CalibrateShardWeights(props, sample);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_GT(weights[0], weights[1]);
  EXPECT_GE(weights[1], 1.0);
}

TEST(ParallelMonitorSetTest, ShardsPartitionTheEngines) {
  ParallelConfig cfg;
  cfg.workers = 4;
  ParallelMonitorSet set(cfg);
  const std::vector<Property> props = Table1Properties();
  for (const Property& p : props) set.Add(p);
  set.Start();
  EXPECT_EQ(set.worker_count(), 4u);
  std::vector<std::size_t> per_worker(4, 0);
  for (std::size_t i = 0; i < set.size(); ++i) {
    ASSERT_LT(set.shard_of(i), 4u);
    ++per_worker[set.shard_of(i)];
  }
  // Uniform weights, 13 engines, 4 workers: greedy gives each 3 or 4.
  for (const std::size_t n : per_worker) {
    EXPECT_GE(n, 3u);
    EXPECT_LE(n, 4u);
  }
}

TEST(ParallelMonitorSetTest, FlushEventsHookDrainsViaObserverInterface) {
  ParallelConfig cfg;
  cfg.workers = 2;
  cfg.batch_capacity = 1024;
  ParallelMonitorSet set(cfg);
  set.Add(FirewallReturnNotDropped());
  set.Start();
  DataplaneObserver* obs = &set;  // as a SoftSwitch would hold it

  DataplaneEvent arrival;
  arrival.type = DataplaneEventType::kArrival;
  arrival.time = SimTime::Zero() + Duration::Millis(1);
  arrival.fields.Set(FieldId::kInPort, 1);
  arrival.fields.Set(FieldId::kIpSrc, 10);
  arrival.fields.Set(FieldId::kIpDst, 20);
  obs->OnDataplaneEvent(arrival);

  DataplaneEvent drop;
  drop.type = DataplaneEventType::kEgress;
  drop.time = SimTime::Zero() + Duration::Millis(2);
  drop.fields.Set(FieldId::kIpSrc, 20);
  drop.fields.Set(FieldId::kIpDst, 10);
  drop.fields.Set(FieldId::kEgressAction,
                  static_cast<std::uint64_t>(EgressActionValue::kDrop));
  obs->OnDataplaneEvent(drop);

  obs->FlushEvents();  // the dataplane's quiet-point hook
  EXPECT_EQ(set.engine(0).violations().size(), 1u);
}

}  // namespace
}  // namespace swmon
