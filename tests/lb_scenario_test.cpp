// End-to-end: load balancer + T1.5 / T1.6 / T1.7.
#include <gtest/gtest.h>

#include "workload/lb_scenario.hpp"

namespace swmon {
namespace {

TEST(LbScenarioTest, CorrectHashBalancerIsQuiet) {
  LbScenarioConfig config;
  config.mode = LbMode::kHash;
  EXPECT_EQ(RunLbScenario(config).TotalViolations(), 0u);
}

TEST(LbScenarioTest, CorrectRoundRobinBalancerIsQuiet) {
  LbScenarioConfig config;
  config.mode = LbMode::kRoundRobin;
  EXPECT_EQ(RunLbScenario(config).TotalViolations(), 0u);
}

TEST(LbScenarioTest, WrongHashDetectedPerFlow) {
  LbScenarioConfig config;
  config.fault = LoadBalancerFault::kWrongHashPort;
  const auto out = RunLbScenario(config);
  // Every new flow goes to hash+1: one violation per flow.
  EXPECT_EQ(out.ViolationsOf("lb-hashed-port"), config.flows);
}

TEST(LbScenarioTest, WrongRoundRobinDetected) {
  LbScenarioConfig config;
  config.mode = LbMode::kRoundRobin;
  config.fault = LoadBalancerFault::kWrongRoundRobin;
  const auto out = RunLbScenario(config);
  // The doubled counter coincides with the expectation once per 4 flows.
  EXPECT_GT(out.ViolationsOf("lb-round-robin-port"), config.flows / 2);
}

TEST(LbScenarioTest, MidFlowRehashDetectedByStickyProperty) {
  LbScenarioConfig config;
  config.fault = LoadBalancerFault::kRehashMidFlow;
  const auto out = RunLbScenario(config);
  EXPECT_GT(out.ViolationsOf("lb-sticky-port"), 0u);
  // The SYN itself is still hashed correctly.
  EXPECT_EQ(out.ViolationsOf("lb-hashed-port"), 0u);
}

TEST(LbScenarioTest, FlowsSpreadAcrossServers) {
  LbScenarioConfig config;
  config.options.keep_trace = true;
  config.flows = 40;
  const auto out = RunLbScenario(config);
  // Sanity on the workload itself: hashing spreads flows over all 4 ports.
  std::set<std::uint64_t> ports;
  for (const auto& ev : out.trace->events()) {
    if (ev.type == DataplaneEventType::kEgress && ev.fields.Has(FieldId::kOutPort) &&
        ev.fields.Get(FieldId::kInPort) == 1u)
      ports.insert(*ev.fields.Get(FieldId::kOutPort));
  }
  EXPECT_EQ(ports.size(), 4u);
}

class LbSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LbSeedSweep, CorrectBalancerNeverAlarms) {
  LbScenarioConfig config;
  config.options.seed = GetParam();
  config.flows = 10 + GetParam() * 3 % 30;
  config.mode = GetParam() % 2 ? LbMode::kHash : LbMode::kRoundRobin;
  EXPECT_EQ(RunLbScenario(config).TotalViolations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LbSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace swmon
