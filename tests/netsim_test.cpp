// Network simulator wiring: links, latency, delivery, link state, traces,
// and the controller-redirect baseline.
#include <gtest/gtest.h>

#include <map>

#include "apps/simple_forwarder.hpp"
#include "backends/controller_monitor.hpp"
#include "netsim/network.hpp"
#include "netsim/trace.hpp"
#include "packet/builder.hpp"
#include "properties/catalog.hpp"
#include "telemetry/snapshot.hpp"

namespace swmon {
namespace {

constexpr MacAddr kMacA(0x02, 0, 0, 0, 0, 1);
constexpr MacAddr kMacB(0x02, 0, 0, 0, 0, 2);
constexpr Ipv4Addr kIpA(10, 0, 0, 1);
constexpr Ipv4Addr kIpB(10, 0, 0, 2);

Packet Ping() { return BuildIcmpEcho(kMacA, kMacB, kIpA, kIpB, true, 1, 1); }

TEST(NetworkTest, DeliversAcrossTheSwitchWithLinkLatency) {
  Network net;
  SoftSwitch& sw = net.AddSwitch(1, 2);
  SimpleForwarderApp app(std::map<PortId, PortId>{{PortId{1}, PortId{2}}});
  sw.SetProgram(&app);
  Host& a = net.AddHost("a", kMacA, kIpA);
  Host& b = net.AddHost("b", kMacB, kIpB);
  net.Attach(1, PortId{1}, a, Duration::Micros(10));
  net.Attach(1, PortId{2}, b, Duration::Micros(30));

  SimTime delivered_at;
  b.SetReceiver([&](Host&, const Packet&, SimTime at) { delivered_at = at; });
  net.SendFromHost(a, Ping(), SimTime::Zero() + Duration::Millis(1));
  net.Run();

  EXPECT_EQ(b.received_count(), 1u);
  // send + 10us uplink + 30us downlink.
  EXPECT_EQ(delivered_at,
            SimTime::Zero() + Duration::Millis(1) + Duration::Micros(40));
}

TEST(NetworkTest, UnattachedPortsDiscard) {
  Network net;
  SoftSwitch& sw = net.AddSwitch(1, 4);
  SimpleForwarderApp app(std::map<PortId, PortId>{{PortId{1}, PortId{3}}});  // port 3 unattached
  sw.SetProgram(&app);
  Host& a = net.AddHost("a", kMacA, kIpA);
  net.Attach(1, PortId{1}, a);
  net.SendFromHost(a, Ping(), SimTime::Zero() + Duration::Millis(1));
  EXPECT_GT(net.Run(), 0u);  // no crash, packet vanishes
}

TEST(NetworkTest, DownedLinksBlockBothDirections) {
  Network net;
  SoftSwitch& sw = net.AddSwitch(1, 2);
  SimpleForwarderApp app({{PortId{1}, PortId{2}}, {PortId{2}, PortId{1}}});
  sw.SetProgram(&app);
  Host& a = net.AddHost("a", kMacA, kIpA);
  Host& b = net.AddHost("b", kMacB, kIpB);
  net.Attach(1, PortId{1}, a);
  net.Attach(1, PortId{2}, b);

  net.SetLinkState(1, PortId{2}, false, SimTime::Zero() + Duration::Millis(1));
  net.SendFromHost(a, Ping(), SimTime::Zero() + Duration::Millis(2));
  net.SetLinkState(1, PortId{2}, true, SimTime::Zero() + Duration::Millis(3));
  net.SendFromHost(a, Ping(), SimTime::Zero() + Duration::Millis(4));
  net.Run();
  EXPECT_EQ(b.received_count(), 1u);  // only the post-recovery packet
}

TEST(NetworkTest, MultipleSwitchesAreIndependent) {
  Network net;
  SoftSwitch& sw1 = net.AddSwitch(1, 2);
  SoftSwitch& sw2 = net.AddSwitch(2, 2);
  SimpleForwarderApp app(std::map<PortId, PortId>{{PortId{1}, PortId{2}}});
  sw1.SetProgram(&app);
  sw2.SetProgram(&app);
  Host& a1 = net.AddHost("a1", kMacA, kIpA);
  Host& b1 = net.AddHost("b1", kMacB, kIpB);
  Host& a2 = net.AddHost("a2", kMacA, kIpA);
  Host& b2 = net.AddHost("b2", kMacB, kIpB);
  net.Attach(1, PortId{1}, a1);
  net.Attach(1, PortId{2}, b1);
  net.Attach(2, PortId{1}, a2);
  net.Attach(2, PortId{2}, b2);

  TraceRecorder t1, t2;
  sw1.AddObserver(&t1);
  sw2.AddObserver(&t2);
  net.SendFromHost(a1, Ping(), SimTime::Zero() + Duration::Millis(1));
  net.SendFromHost(a2, Ping(), SimTime::Zero() + Duration::Millis(1));
  net.Run();
  EXPECT_EQ(b1.received_count(), 1u);
  EXPECT_EQ(b2.received_count(), 1u);
  ASSERT_EQ(t1.size(), 2u);
  EXPECT_EQ(t1.events()[0].fields.Get(FieldId::kSwitchId), 1u);
  EXPECT_EQ(t2.events()[0].fields.Get(FieldId::kSwitchId), 2u);
}

TEST(TraceTest, RecordsAndReplays) {
  Network net;
  SoftSwitch& sw = net.AddSwitch(1, 2);
  SimpleForwarderApp app(std::map<PortId, PortId>{{PortId{1}, PortId{2}}});
  sw.SetProgram(&app);
  Host& a = net.AddHost("a", kMacA, kIpA);
  Host& b = net.AddHost("b", kMacB, kIpB);
  net.Attach(1, PortId{1}, a);
  net.Attach(1, PortId{2}, b);
  TraceRecorder trace;
  sw.AddObserver(&trace);
  for (int i = 0; i < 3; ++i)
    net.SendFromHost(a, Ping(), SimTime::Zero() + Duration::Millis(i + 1));
  net.Run();

  EXPECT_EQ(trace.size(), 6u);  // arrival + egress per packet
  EXPECT_EQ(trace.CountType(DataplaneEventType::kArrival), 3u);

  TraceRecorder copy;
  trace.ReplayInto(copy);
  EXPECT_EQ(copy.size(), trace.size());
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceTest, EventsCarryPacketBytes) {
  Network net;
  SoftSwitch& sw = net.AddSwitch(1, 2);
  SimpleForwarderApp app(std::map<PortId, PortId>{{PortId{1}, PortId{2}}});
  sw.SetProgram(&app);
  Host& a = net.AddHost("a", kMacA, kIpA);
  net.Attach(1, PortId{1}, a);
  TraceRecorder trace;
  sw.AddObserver(&trace);
  const Packet pkt = Ping();
  const std::size_t wire_size = pkt.size();
  net.SendFromHost(a, pkt, SimTime::Zero() + Duration::Millis(1));
  net.Run();
  ASSERT_GE(trace.size(), 1u);
  EXPECT_EQ(trace.events()[0].packet_bytes, wire_size);
}

TEST(ControllerMonitorTest, MirrorsBytesAndLagsDetection) {
  const CostParams params;  // 1ms RTT
  ControllerMonitor external(FirewallReturnNotDropped(), params);

  DataplaneEvent out;
  out.type = DataplaneEventType::kArrival;
  out.time = SimTime::Zero() + Duration::Millis(10);
  out.fields.Set(FieldId::kInPort, 1);
  out.fields.Set(FieldId::kIpSrc, 1);
  out.fields.Set(FieldId::kIpDst, 2);
  out.packet_bytes = 100;
  external.OnDataplaneEvent(out);

  DataplaneEvent drop;
  drop.type = DataplaneEventType::kEgress;
  drop.time = SimTime::Zero() + Duration::Millis(20);
  drop.fields.Set(FieldId::kIpSrc, 2);
  drop.fields.Set(FieldId::kIpDst, 1);
  drop.fields.Set(FieldId::kEgressAction,
                  static_cast<std::uint64_t>(EgressActionValue::kDrop));
  drop.packet_bytes = 60;
  external.OnDataplaneEvent(drop);

  const telemetry::Snapshot snap = external.TelemetrySnapshot("ext");
  EXPECT_EQ(snap.counter("backend.controller.ext.bytes_mirrored"), 160u);
  EXPECT_EQ(snap.counter("backend.controller.ext.events_mirrored"), 2u);
  ASSERT_EQ(external.violations().size(), 1u);
  // Detection is stamped half an RTT after the fact.
  EXPECT_EQ(external.violations()[0].time,
            SimTime::Zero() + Duration::Millis(20) + params.controller_rtt / 2);
}

TEST(HostTest, ReceiverAndBookkeeping) {
  Host h("h", kMacA, kIpA);
  int calls = 0;
  h.SetReceiver([&](Host& self, const Packet&, SimTime) {
    EXPECT_EQ(self.name(), "h");
    ++calls;
  });
  h.Deliver(Ping(), SimTime::Zero());
  h.Deliver(Ping(), SimTime::Zero());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(h.received_count(), 2u);
  EXPECT_EQ(h.received().size(), 2u);
  h.ClearReceived();
  EXPECT_EQ(h.received_count(), 0u);

  h.set_keep_packets(false);
  h.Deliver(Ping(), SimTime::Zero());
  EXPECT_EQ(h.received_count(), 1u);
  EXPECT_TRUE(h.received().empty());
}

}  // namespace
}  // namespace swmon
