// The paper's quantitative claims, as CI assertions: the shapes the bench
// binaries print (EXPERIMENTS.md E3–E7) must hold on every build.
#include <gtest/gtest.h>

#include "backends/backend.hpp"
#include "backends/controller_monitor.hpp"
#include "backends/executor.hpp"
#include "monitor/property_builder.hpp"
#include "properties/catalog.hpp"
#include "workload/learning_scenario.hpp"

namespace swmon {
namespace {

std::unique_ptr<CompiledMonitor> CompileOn(const std::string& name,
                                           const Property& prop) {
  for (auto& b : AllBackends()) {
    if (b->info().name != name) continue;
    auto r = b->Compile(prop, CostParams{});
    EXPECT_TRUE(r.ok());
    return std::move(r.monitor);
  }
  return nullptr;
}

/// N open firewall connections, then `probes` forwarded returns.
Duration ProbeCost(const std::string& backend, std::size_t instances,
                   std::size_t* depth = nullptr) {
  auto mon = CompileOn(backend, FirewallReturnNotDropped());
  SimTime t = SimTime::Zero();
  for (std::size_t c = 0; c < instances; ++c) {
    DataplaneEvent ev;
    ev.type = DataplaneEventType::kArrival;
    t = t + Duration::Millis(1);
    ev.time = t;
    ev.fields.Set(FieldId::kInPort, 1);
    ev.fields.Set(FieldId::kIpSrc, 1000 + c);
    ev.fields.Set(FieldId::kIpDst, 9);
    mon->OnDataplaneEvent(ev);
  }
  mon->AdvanceTime(t + Duration::Seconds(1));
  const Duration before = mon->costs().processing_time;
  for (std::size_t i = 0; i < 500; ++i) {
    DataplaneEvent ev;
    ev.type = DataplaneEventType::kEgress;
    t = t + Duration::Micros(10);
    ev.time = t;
    ev.fields.Set(FieldId::kIpSrc, 9);
    ev.fields.Set(FieldId::kIpDst, 1000 + i % instances);
    ev.fields.Set(FieldId::kEgressAction,
                  static_cast<std::uint64_t>(EgressActionValue::kForward));
    mon->OnDataplaneEvent(ev);
  }
  if (depth) *depth = mon->PipelineDepth();
  return mon->costs().processing_time - before;
}

TEST(ClaimsTest, E3_VaranusCostGrowsLinearlyBoundedDesignsStayFlat) {
  std::size_t d64 = 0, d512 = 0;
  const Duration varanus64 = ProbeCost("Varanus", 64, &d64);
  const Duration varanus512 = ProbeCost("Varanus", 512, &d512);
  // Depth tracks instances exactly; cost grows ~8x for 8x instances.
  EXPECT_EQ(d64, 65u);
  EXPECT_EQ(d512, 513u);
  const double ratio = static_cast<double>(varanus512.nanos()) /
                       static_cast<double>(varanus64.nanos());
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 10.0);

  // The bounded designs are instance-count independent.
  for (const char* flat : {"Static Varanus", "OpenState", "POF / P4"}) {
    EXPECT_EQ(ProbeCost(flat, 64).nanos(), ProbeCost(flat, 512).nanos())
        << flat;
  }
}

TEST(ClaimsTest, E4_FastPathDwarfsSlowPathUpdateRates) {
  const CostParams p;
  const double register_rate = 1e9 / static_cast<double>(p.register_op.nanos());
  EXPECT_GT(register_rate / static_cast<double>(p.flow_mods_per_sec), 1000.0);
}

TEST(ClaimsTest, E5_SplitMissesWithinLatencyInlineAlwaysCatches) {
  const Property prop = FirewallReturnNotDropped();
  const CostParams params;
  auto run = [&](bool inline_mode, Duration gap) {
    FragmentExecutor mon(
        prop, std::make_unique<FastLearnStore>(params, inline_mode), params);
    for (int c = 0; c < 20; ++c) {
      const SimTime base = SimTime::Zero() + Duration::Millis(10 * (c + 1));
      DataplaneEvent out;
      out.type = DataplaneEventType::kArrival;
      out.time = base;
      out.fields.Set(FieldId::kInPort, 1);
      out.fields.Set(FieldId::kIpSrc, 100 + c);
      out.fields.Set(FieldId::kIpDst, 9);
      mon.OnDataplaneEvent(out);
      DataplaneEvent drop;
      drop.type = DataplaneEventType::kEgress;
      drop.time = base + gap;
      drop.fields.Set(FieldId::kIpSrc, 9);
      drop.fields.Set(FieldId::kIpDst, 100 + c);
      drop.fields.Set(FieldId::kEgressAction,
                      static_cast<std::uint64_t>(EgressActionValue::kDrop));
      mon.OnDataplaneEvent(drop);
    }
    return mon.violations().size();
  };
  // Inside the ~500us stale window: split misses everything, inline doesn't.
  EXPECT_EQ(run(false, Duration::Micros(100)), 0u);
  EXPECT_EQ(run(true, Duration::Micros(100)), 20u);
  // Beyond it, both catch everything.
  EXPECT_EQ(run(false, Duration::Millis(1)), 20u);
  EXPECT_EQ(run(true, Duration::Millis(1)), 20u);
}

TEST(ClaimsTest, E6_ExternalBytesGrowWithTrafficOnSwitchBytesDoNot) {
  auto mirrored = [](std::size_t rounds) {
    LearningScenarioConfig config;
    config.rounds = rounds;
    config.hosts = 8;
    config.fault = LearningSwitchFault::kNoFlushOnLinkDown;
    config.inject_link_down = true;
    config.options.seed = 3;
    config.options.keep_trace = true;
    const auto out = RunLearningScenario(config);
    ControllerMonitor external(LearningSwitchLinkDownFlush(), CostParams{});
    out.trace->ReplayInto(external);
    return std::pair{external.TelemetrySnapshot("ext").counter(
                         "backend.controller.ext.bytes_mirrored"),
                     out.ViolationsOf("lsw-linkdown-flush") * 64};
  };
  const auto [ext_small, onsw_small] = mirrored(10);
  const auto [ext_large, onsw_large] = mirrored(160);
  // External grows ~with traffic (16x rounds -> >8x bytes); on-switch
  // tracks violations, which don't grow with traffic volume here.
  EXPECT_GT(ext_large, ext_small * 8);
  EXPECT_LT(onsw_large, onsw_small * 4 + 256);
  // And the external/on-switch ratio widens.
  EXPECT_GT(ext_large / std::max<std::uint64_t>(onsw_large, 1),
            ext_small / std::max<std::uint64_t>(onsw_small, 1));
}

TEST(ClaimsTest, E7_LimitedProvenanceCostsNoExtraStateFullDoes) {
  // Replay identical NAT-ish traffic at the three levels; compare peak
  // engine state.
  auto peak = [](ProvenanceLevel level) {
    MonitorConfig mc;
    mc.provenance = level;
    MonitorEngine engine(NatReverseTranslation(), mc);
    std::size_t best = 0;
    for (int f = 0; f < 50; ++f) {
      DataplaneEvent out;
      out.type = DataplaneEventType::kArrival;
      out.time = SimTime::Zero() + Duration::Millis(f + 1);
      out.fields.Set(FieldId::kInPort, 1);
      out.fields.Set(FieldId::kIpSrc, 10 + f);
      out.fields.Set(FieldId::kIpDst, 9);
      out.fields.Set(FieldId::kL4SrcPort, 1000);
      out.fields.Set(FieldId::kL4DstPort, 80);
      out.fields.Set(FieldId::kPacketId, 100 + f);
      engine.ProcessEvent(out);
      DataplaneEvent fwd;
      fwd.type = DataplaneEventType::kEgress;
      fwd.time = out.time;
      fwd.fields = out.fields;
      fwd.fields.Set(FieldId::kEgressAction,
                     static_cast<std::uint64_t>(EgressActionValue::kForward));
      fwd.fields.Set(FieldId::kIpSrc, 99);
      fwd.fields.Set(FieldId::kL4SrcPort, 50000 + f);
      engine.ProcessEvent(fwd);
      best = std::max(best, engine.StateBytes());
    }
    return best;
  };
  const std::size_t none = peak(ProvenanceLevel::kNone);
  const std::size_t limited = peak(ProvenanceLevel::kLimited);
  const std::size_t full = peak(ProvenanceLevel::kFull);
  EXPECT_EQ(none, limited);   // limited provenance is free (paper's point)
  EXPECT_GT(full, limited * 2);  // full provenance is not
}

TEST(ClaimsTest, E9_MonitoringCostIsLinearInStages) {
  // One synthetic probe cost per stage count on the static design.
  auto cost = [](std::size_t stages) {
    PropertyBuilder b("chain" + std::to_string(stages), "x");
    const VarId H = b.Var("H");
    b.AddStage("s1")
        .Match(PatternBuilder::Arrival().Eq(FieldId::kL4DstPort, 9000).Build())
        .Bind(H, FieldId::kIpSrc);
    for (std::size_t i = 1; i < stages; ++i)
      b.AddStage("s")
          .Match(PatternBuilder::Arrival()
                     .Eq(FieldId::kL4DstPort, 9000 + i)
                     .EqVar(FieldId::kIpSrc, H)
                     .Build());
    const CostParams params;
    FragmentExecutor mon(
        std::move(b).Build(),
        std::make_unique<VaranusStore>(params, stages, /*static=*/true),
        params);
    for (int i = 0; i < 100; ++i) {
      DataplaneEvent ev;
      ev.type = DataplaneEventType::kArrival;
      ev.time = SimTime::Zero() + Duration::Micros(10 * (i + 1));
      ev.fields.Set(FieldId::kIpSrc, 7);
      ev.fields.Set(FieldId::kL4DstPort, 80);
      mon.OnDataplaneEvent(ev);
    }
    return mon.costs().processing_time.nanos();
  };
  EXPECT_EQ(cost(4), 2 * cost(2));
  EXPECT_EQ(cost(8), 4 * cost(2));
}

}  // namespace
}  // namespace swmon
