// Timer semantics: Feature 3 (state-expiring windows, refresh-on-rematch)
// and Feature 7 (timeout-action observations, deliberately non-refreshing).
#include <gtest/gtest.h>

#include "monitor/engine.hpp"
#include "monitor/property_builder.hpp"
#include "telemetry_helpers.hpp"

namespace swmon {
namespace {

DataplaneEvent Ev(DataplaneEventType type, std::int64_t ms,
                  std::initializer_list<std::pair<FieldId, std::uint64_t>> kv) {
  DataplaneEvent ev;
  ev.type = type;
  ev.time = SimTime::Zero() + Duration::Millis(ms);
  for (const auto& [k, v] : kv) ev.fields.Set(k, v);
  return ev;
}

constexpr std::uint64_t kDrop =
    static_cast<std::uint64_t>(EgressActionValue::kDrop);

/// Firewall-with-timeout shape: stage-0 window of 1s, optional refresh.
Property Windowed(bool refresh) {
  PropertyBuilder b("windowed", "test");
  const VarId A = b.Var("A");
  auto s0 = b.AddStage("out")
                .Match(PatternBuilder::Arrival().Build())
                .Bind(A, FieldId::kIpSrc)
                .Window(Duration::Seconds(1));
  if (refresh) s0.RefreshOnRematch();
  b.AddStage("drop").Match(
      PatternBuilder::Egress().EqVar(FieldId::kIpDst, A).Dropped().Build());
  return std::move(b).Build();
}

TEST(TimeoutTest, ViolationInsideWindow) {
  MonitorEngine eng(Windowed(false));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0, {{FieldId::kIpSrc, 1}}));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 500,
                      {{FieldId::kIpDst, 1}, {FieldId::kEgressAction, kDrop}}));
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(TimeoutTest, WindowExpiryKillsInstance) {
  MonitorEngine eng(Windowed(false));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0, {{FieldId::kIpSrc, 1}}));
  // The drop comes after the 1s window: no violation (Feature 3).
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1500,
                      {{FieldId::kIpDst, 1}, {FieldId::kEgressAction, kDrop}}));
  EXPECT_TRUE(eng.violations().empty());
  EXPECT_EQ(EngineStat(eng, "instances_expired"), 1u);
  EXPECT_EQ(eng.live_instances(), 0u);
}

TEST(TimeoutTest, ExpiryIsExactAtDeadline) {
  MonitorEngine eng(Windowed(false));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0, {{FieldId::kIpSrc, 1}}));
  // Exactly at the deadline the window has elapsed (closed-open interval).
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1000,
                      {{FieldId::kIpDst, 1}, {FieldId::kEgressAction, kDrop}}));
  EXPECT_TRUE(eng.violations().empty());
}

TEST(TimeoutTest, RefreshOnRematchExtendsWindow) {
  MonitorEngine eng(Windowed(true));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0, {{FieldId::kIpSrc, 1}}));
  // Re-match at 800ms pushes the deadline to 1800ms.
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 800, {{FieldId::kIpSrc, 1}}));
  EXPECT_EQ(EngineStat(eng, "instances_refreshed"), 1u);
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1500,
                      {{FieldId::kIpDst, 1}, {FieldId::kEgressAction, kDrop}}));
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(TimeoutTest, NoRefreshWithoutFlag) {
  MonitorEngine eng(Windowed(false));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0, {{FieldId::kIpSrc, 1}}));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 800, {{FieldId::kIpSrc, 1}}));
  EXPECT_EQ(EngineStat(eng, "instances_refreshed"), 0u);
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1500,
                      {{FieldId::kIpDst, 1}, {FieldId::kEgressAction, kDrop}}));
  EXPECT_TRUE(eng.violations().empty());
}

/// ARP-proxy shape: reply learned, request opens a 1s window, a TIMEOUT
/// observation fires unless a reply egress discharges it.
Property TimeoutAction() {
  PropertyBuilder b("timeout-action", "test");
  const VarId A = b.Var("A");
  b.AddStage("learned")
      .Match(PatternBuilder::Arrival().Eq(FieldId::kArpOp, 2).Build())
      .Bind(A, FieldId::kArpSenderIp);
  b.AddStage("request")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kArpOp, 1)
                 .EqVar(FieldId::kArpTargetIp, A)
                 .Build())
      .Window(Duration::Seconds(1));
  b.AddTimeoutStage("no reply")
      .AbortOn(PatternBuilder::Egress()
                   .Eq(FieldId::kArpOp, 2)
                   .EqVar(FieldId::kArpSenderIp, A)
                   .Build());
  return std::move(b).Build();
}

TEST(TimeoutActionTest, FiresWhenNothingDischarges) {
  MonitorEngine eng(TimeoutAction());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0,
                      {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 7}}));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 100,
                      {{FieldId::kArpOp, 1}, {FieldId::kArpTargetIp, 7}}));
  EXPECT_TRUE(eng.violations().empty());
  // Nothing happens; advancing time past the deadline fires the negative
  // observation (Feature 7).
  eng.AdvanceTime(SimTime::Zero() + Duration::Millis(1200));
  ASSERT_EQ(eng.violations().size(), 1u);
  // The violation is stamped at the deadline, not at the advance call.
  EXPECT_EQ(eng.violations()[0].time,
            SimTime::Zero() + Duration::Millis(1100));
  EXPECT_EQ(EngineStat(eng, "timeout_observations"), 1u);
}

TEST(TimeoutActionTest, ReplyDischarges) {
  MonitorEngine eng(TimeoutAction());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0,
                      {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 7}}));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 100,
                      {{FieldId::kArpOp, 1}, {FieldId::kArpTargetIp, 7}}));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 300,
                      {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 7}}));
  eng.AdvanceTime(SimTime::Zero() + Duration::Seconds(5));
  EXPECT_TRUE(eng.violations().empty());
  EXPECT_EQ(EngineStat(eng, "instances_aborted"), 1u);
}

TEST(TimeoutActionTest, RepeatedRequestsDoNotResetTheTimer) {
  // Sec 2.3's subtlety: requests every T-epsilon must still violate.
  MonitorEngine eng(TimeoutAction());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0,
                      {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 7}}));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 100,
                      {{FieldId::kArpOp, 1}, {FieldId::kArpTargetIp, 7}}));
  // More requests arrive before the 1.1s deadline...
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 900,
                      {{FieldId::kArpOp, 1}, {FieldId::kArpTargetIp, 7}}));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 1050,
                      {{FieldId::kArpOp, 1}, {FieldId::kArpTargetIp, 7}}));
  // ...but the deadline set by the FIRST request still fires.
  eng.AdvanceTime(SimTime::Zero() + Duration::Millis(1200));
  ASSERT_EQ(eng.violations().size(), 1u);
  EXPECT_EQ(eng.violations()[0].time,
            SimTime::Zero() + Duration::Millis(1100));
}

TEST(TimeoutActionTest, LateEventsAfterDeadlineSeeTheViolationFirst) {
  // A quiet period covers the deadline; the next event must fire pending
  // timers before being processed.
  MonitorEngine eng(TimeoutAction());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0,
                      {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 7}}));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 100,
                      {{FieldId::kArpOp, 1}, {FieldId::kArpTargetIp, 7}}));
  // The discharging reply arrives too late (t=2s > deadline 1.1s).
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 2000,
                      {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 7}}));
  ASSERT_EQ(eng.violations().size(), 1u);
  EXPECT_EQ(eng.violations()[0].time,
            SimTime::Zero() + Duration::Millis(1100));
}

TEST(TimeoutTest, WindowFromFieldUsesEventValue) {
  PropertyBuilder b("lease", "test");
  const VarId A = b.Var("A");
  b.AddStage("ack")
      .Match(PatternBuilder::Egress().Build())
      .Bind(A, FieldId::kDhcpYiaddr)
      .WindowFromField(FieldId::kDhcpLeaseSecs);
  b.AddStage("reuse").Match(
      PatternBuilder::Egress().EqVar(FieldId::kDhcpYiaddr, A).Dropped().Build());
  MonitorEngine eng(std::move(b).Build());

  DataplaneEvent ack = Ev(DataplaneEventType::kEgress, 0,
                          {{FieldId::kDhcpYiaddr, 42},
                           {FieldId::kDhcpLeaseSecs, 3}});  // 3-second lease
  eng.ProcessEvent(ack);
  EXPECT_EQ(eng.live_instances(), 1u);
  // Within the lease the instance is alive; after it, expired.
  eng.AdvanceTime(SimTime::Zero() + Duration::Seconds(2));
  EXPECT_EQ(eng.live_instances(), 1u);
  eng.AdvanceTime(SimTime::Zero() + Duration::Seconds(3));
  EXPECT_EQ(eng.live_instances(), 0u);
  EXPECT_EQ(EngineStat(eng, "instances_expired"), 1u);
}

TEST(TimeoutTest, MissingWindowFieldBlocksCreation) {
  PropertyBuilder b("lease2", "test");
  const VarId A = b.Var("A");
  b.AddStage("ack")
      .Match(PatternBuilder::Egress().Build())
      .Bind(A, FieldId::kDhcpYiaddr)
      .WindowFromField(FieldId::kDhcpLeaseSecs);
  b.AddStage("x").Match(
      PatternBuilder::Egress().EqVar(FieldId::kDhcpYiaddr, A).Build());
  MonitorEngine eng(std::move(b).Build());
  // ACK without a lease option cannot start an instance.
  eng.ProcessEvent(
      Ev(DataplaneEventType::kEgress, 0, {{FieldId::kDhcpYiaddr, 42}}));
  EXPECT_EQ(eng.live_instances(), 0u);
}

TEST(TimeoutTest, PerInstanceTimersAreIndependent) {
  MonitorEngine eng(Windowed(false));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0, {{FieldId::kIpSrc, 1}}));
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 600, {{FieldId::kIpSrc, 2}}));
  // Instance 1 expires at 1s; instance 2 at 1.6s.
  eng.AdvanceTime(SimTime::Zero() + Duration::Millis(1200));
  EXPECT_EQ(eng.live_instances(), 1u);
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1300,
                      {{FieldId::kIpDst, 2}, {FieldId::kEgressAction, kDrop}}));
  EXPECT_EQ(eng.violations().size(), 1u);
}

}  // namespace
}  // namespace swmon
