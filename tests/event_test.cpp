#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "event/event_queue.hpp"
#include "event/timer_set.hpp"

namespace swmon {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(SimTime::FromNanos(300), [&] { order.push_back(3); });
  q.ScheduleAt(SimTime::FromNanos(100), [&] { order.push_back(1); });
  q.ScheduleAt(SimTime::FromNanos(200), [&] { order.push_back(2); });
  EXPECT_EQ(q.RunAll(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now().nanos(), 300);
}

TEST(EventQueueTest, FifoAtEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.ScheduleAt(SimTime::FromNanos(50), [&order, i] { order.push_back(i); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CallbackCanReschedule) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) q.ScheduleAfter(Duration::Nanos(10), tick);
  };
  q.ScheduleAt(SimTime::FromNanos(0), tick);
  q.RunAll();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now().nanos(), 40);
}

TEST(EventQueueTest, RunUntilStopsAndAdvancesClock) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(SimTime::FromNanos(10), [&] { ++ran; });
  q.ScheduleAt(SimTime::FromNanos(100), [&] { ++ran; });
  EXPECT_EQ(q.RunUntil(SimTime::FromNanos(50)), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.now().nanos(), 50);
  q.RunAll();
  EXPECT_EQ(ran, 2);
}

TEST(EventQueueTest, RunAllRespectsLimit) {
  EventQueue q;
  int ran = 0;
  for (int i = 0; i < 10; ++i)
    q.ScheduleAt(SimTime::FromNanos(i), [&] { ++ran; });
  EXPECT_EQ(q.RunAll(3), 3u);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(q.pending(), 7u);
}

class TimerSetTest : public ::testing::Test {
 protected:
  TimerSetTest()
      : timers_([this](TimerSet::TimerId id, SimTime at) {
          fired_.emplace_back(id, at);
        }) {}

  std::vector<std::pair<TimerSet::TimerId, SimTime>> fired_;
  TimerSet timers_;
};

TEST_F(TimerSetTest, FiresAtDeadlineInOrder) {
  timers_.Arm(1, SimTime::FromNanos(100));
  timers_.Arm(2, SimTime::FromNanos(50));
  EXPECT_EQ(timers_.Advance(SimTime::FromNanos(200)), 2u);
  ASSERT_EQ(fired_.size(), 2u);
  EXPECT_EQ(fired_[0].first, 2u);
  EXPECT_EQ(fired_[1].first, 1u);
  EXPECT_EQ(fired_[0].second.nanos(), 50);
}

TEST_F(TimerSetTest, DoesNotFireEarly) {
  timers_.Arm(1, SimTime::FromNanos(100));
  EXPECT_EQ(timers_.Advance(SimTime::FromNanos(99)), 0u);
  EXPECT_TRUE(timers_.IsArmed(1));
  EXPECT_EQ(timers_.Advance(SimTime::FromNanos(100)), 1u);
  EXPECT_FALSE(timers_.IsArmed(1));
}

TEST_F(TimerSetTest, CancelPreventsFiring) {
  timers_.Arm(1, SimTime::FromNanos(100));
  timers_.Cancel(1);
  EXPECT_EQ(timers_.Advance(SimTime::FromNanos(200)), 0u);
  EXPECT_TRUE(fired_.empty());
}

TEST_F(TimerSetTest, RearmMovesDeadline) {
  timers_.Arm(1, SimTime::FromNanos(100));
  timers_.Arm(1, SimTime::FromNanos(300));  // refresh
  EXPECT_EQ(timers_.Advance(SimTime::FromNanos(200)), 0u);
  EXPECT_EQ(timers_.Advance(SimTime::FromNanos(300)), 1u);
  EXPECT_EQ(fired_.size(), 1u);
}

TEST_F(TimerSetTest, RearmToEarlierDeadlineFires) {
  timers_.Arm(1, SimTime::FromNanos(300));
  timers_.Arm(1, SimTime::FromNanos(100));
  EXPECT_EQ(timers_.Advance(SimTime::FromNanos(150)), 1u);
}

TEST_F(TimerSetTest, ExpiryCallbackMayRearm) {
  // Replace the set with one whose callback re-arms once.
  int count = 0;
  TimerSet t([&](TimerSet::TimerId id, SimTime at) {
    if (++count == 1) t.Arm(id, at + Duration::Nanos(10));
  });
  t.Arm(7, SimTime::FromNanos(10));
  // Both the original and the re-armed deadline are <= now: same pass.
  EXPECT_EQ(t.Advance(SimTime::FromNanos(100)), 2u);
  EXPECT_EQ(count, 2);
}

TEST_F(TimerSetTest, ArmedCountTracksLiveTimers) {
  timers_.Arm(1, SimTime::FromNanos(10));
  timers_.Arm(2, SimTime::FromNanos(20));
  EXPECT_EQ(timers_.armed_count(), 2u);
  timers_.Cancel(1);
  EXPECT_EQ(timers_.armed_count(), 1u);
  timers_.Advance(SimTime::FromNanos(30));
  EXPECT_EQ(timers_.armed_count(), 0u);
}

TEST_F(TimerSetTest, NextDeadline) {
  EXPECT_TRUE(timers_.NextDeadline().IsInfinite());
  timers_.Arm(1, SimTime::FromNanos(70));
  timers_.Arm(2, SimTime::FromNanos(30));
  EXPECT_EQ(timers_.NextDeadline().nanos(), 30);
}

TEST_F(TimerSetTest, NextDeadlineSkipsCancelledFront) {
  timers_.Arm(1, SimTime::FromNanos(10));
  timers_.Arm(2, SimTime::FromNanos(20));
  timers_.Cancel(1);
  // The stale heap front (timer 1) must be popped through, not reported.
  EXPECT_EQ(timers_.NextDeadline().nanos(), 20);
  timers_.Cancel(2);
  EXPECT_TRUE(timers_.NextDeadline().IsInfinite());
  EXPECT_EQ(timers_.heap_size(), 0u);
}

TEST_F(TimerSetTest, RearmLeavesOneLiveHeapEntry) {
  // Re-arming strands the old heap entry; only the newest generation fires.
  for (int i = 0; i < 10; ++i)
    timers_.Arm(1, SimTime::FromNanos(100 + i));
  EXPECT_EQ(timers_.armed_count(), 1u);
  EXPECT_EQ(timers_.NextDeadline().nanos(), 109);
  EXPECT_EQ(timers_.Advance(SimTime::FromNanos(200)), 1u);
  ASSERT_EQ(fired_.size(), 1u);
  EXPECT_EQ(fired_[0].second.nanos(), 109);
}

TEST_F(TimerSetTest, ChurnAgreesWithReferenceModel) {
  // Thousands of arm/cancel/re-arm operations, checking NextDeadline and
  // Advance firing against a naive map + min-scan reference model.
  std::map<TimerSet::TimerId, SimTime> model;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const auto model_min = [&model] {
    SimTime best = SimTime::Infinity();
    for (const auto& [id, at] : model)
      if (at < best) best = at;
    return best;
  };

  SimTime now = SimTime::Zero();
  for (int op = 0; op < 5000; ++op) {
    const auto id = static_cast<TimerSet::TimerId>(next() % 64);
    switch (next() % 4) {
      case 0:
      case 1: {  // arm / re-arm at a future deadline
        const SimTime at = now + Duration::Nanos(1 + next() % 1000);
        timers_.Arm(id, at);
        model[id] = at;
        break;
      }
      case 2:  // cancel
        timers_.Cancel(id);
        model.erase(id);
        break;
      case 3: {  // advance past some pending deadlines
        now = now + Duration::Nanos(next() % 300);
        fired_.clear();
        timers_.Advance(now);
        std::size_t expected = 0;
        for (auto it = model.begin(); it != model.end();) {
          if (it->second <= now) {
            ++expected;
            it = model.erase(it);
          } else {
            ++it;
          }
        }
        EXPECT_EQ(fired_.size(), expected) << "op " << op;
        break;
      }
    }
    ASSERT_EQ(timers_.armed_count(), model.size()) << "op " << op;
    ASSERT_EQ(timers_.NextDeadline().nanos(), model_min().nanos())
        << "op " << op;
  }
  // Churn strands stale entries; lazy pops and compaction must have kept
  // the heap from growing without bound (5000 ops over <= 64 ids).
  EXPECT_LE(timers_.heap_size(), 2 * timers_.armed_count() + 64);
  EXPECT_GT(timers_.total_armed(), 1000u);
  EXPECT_GT(timers_.stale_popped() + timers_.compactions(), 0u);
}

TEST_F(TimerSetTest, CompactionBoundsHeapUnderRearmChurn) {
  // One timer re-armed thousands of times: without compaction the heap
  // would hold every stale generation.
  for (int i = 0; i < 10000; ++i)
    timers_.Arm(7, SimTime::FromNanos(1000 + i));
  EXPECT_EQ(timers_.armed_count(), 1u);
  EXPECT_LE(timers_.heap_size(), 64u + 2u);
  EXPECT_GT(timers_.compactions(), 0u);
  EXPECT_EQ(timers_.NextDeadline().nanos(), 10999);
  EXPECT_LE(timers_.StaleRatio(), 1.0);
}

}  // namespace
}  // namespace swmon
