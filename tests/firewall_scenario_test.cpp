// End-to-end: stateful firewall + the three Sec-2.1 properties.
//
// These tests also reproduce the paper's Sec-2.1 narrative: the *basic*
// property false-alarms on legitimate drops after closes/timeouts; adding
// the timeout window fixes the stale case; adding the obligation fixes the
// close case.
#include <gtest/gtest.h>

#include "workload/firewall_scenario.hpp"

namespace swmon {
namespace {

TEST(FirewallScenarioTest, CorrectFirewallObligationPropertyQuiet) {
  FirewallScenarioConfig config;
  const auto out = RunFirewallScenario(config);
  // The full (obligation) property never false-alarms on a correct device.
  EXPECT_EQ(out.ViolationsOf("fw-return-not-dropped-until-close"), 0u);
  EXPECT_GT(out.packets_injected, 0u);
}

TEST(FirewallScenarioTest, NaivePropertiesFalseAlarmAsThePaperArgues) {
  FirewallScenarioConfig config;
  config.options.seed = 7;
  config.connections = 40;
  const auto out = RunFirewallScenario(config);
  // Closes make the basic and timeout properties alarm on correct drops.
  EXPECT_GT(out.ViolationsOf("fw-return-not-dropped"), 0u);
  EXPECT_GT(out.ViolationsOf("fw-return-not-dropped-timeout"), 0u);
  EXPECT_EQ(out.ViolationsOf("fw-return-not-dropped-until-close"), 0u);
}

TEST(FirewallScenarioTest, StaleReturnsQuietUnderTimeoutProperty) {
  FirewallScenarioConfig config;
  config.close_fraction = 0.0;  // only stale-return cases
  config.stale_return_fraction = 1.0;
  const auto out = RunFirewallScenario(config);
  // Drops of post-timeout returns: the basic property alarms...
  EXPECT_GT(out.ViolationsOf("fw-return-not-dropped"), 0u);
  // ...but both timer-aware properties stay quiet (Feature 3).
  EXPECT_EQ(out.ViolationsOf("fw-return-not-dropped-timeout"), 0u);
  EXPECT_EQ(out.ViolationsOf("fw-return-not-dropped-until-close"), 0u);
}

TEST(FirewallScenarioTest, DropEstablishedFaultDetectedByAllProperties) {
  FirewallScenarioConfig config;
  config.fault = FirewallFault::kDropEstablishedReturn;
  config.close_fraction = 0.0;
  config.stale_return_fraction = 0.0;
  const auto out = RunFirewallScenario(config);
  // Every connection's first in-window return drop is one violation.
  EXPECT_EQ(out.ViolationsOf("fw-return-not-dropped"), config.connections);
  EXPECT_EQ(out.ViolationsOf("fw-return-not-dropped-timeout"),
            config.connections);
  EXPECT_EQ(out.ViolationsOf("fw-return-not-dropped-until-close"),
            config.connections);
}

TEST(FirewallScenarioTest, RefreshFaultDetectedOnlyByTimerProperties) {
  FirewallScenarioConfig config;
  config.fault = FirewallFault::kNoRefreshOnTraffic;
  config.close_fraction = 0.0;
  config.stale_return_fraction = 0.0;
  config.connections = 20;
  const auto out = RunFirewallScenario(config);
  // Probe connections (every 4th) exercise the refresh bug.
  EXPECT_EQ(out.ViolationsOf("fw-return-not-dropped-timeout"), 5u);
  EXPECT_EQ(out.ViolationsOf("fw-return-not-dropped-until-close"), 5u);
}

class FirewallSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FirewallSeedSweep, SoundPropertyNeverFalseAlarms) {
  // Property-based check: across random schedules, the obligation property
  // never alarms on a correct firewall.
  FirewallScenarioConfig config;
  config.options.seed = GetParam();
  config.connections = 30;
  const auto out = RunFirewallScenario(config);
  EXPECT_EQ(out.ViolationsOf("fw-return-not-dropped-until-close"), 0u);
}

TEST_P(FirewallSeedSweep, FaultAlwaysDetected) {
  FirewallScenarioConfig config;
  config.options.seed = GetParam();
  config.fault = FirewallFault::kDropEstablishedReturn;
  const auto out = RunFirewallScenario(config);
  EXPECT_GT(out.ViolationsOf("fw-return-not-dropped-until-close"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FirewallSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(FirewallScenarioTest, TraceRecordsArrivalsAndEgresses) {
  FirewallScenarioConfig config;
  config.options.keep_trace = true;
  config.connections = 5;
  const auto out = RunFirewallScenario(config);
  ASSERT_NE(out.trace, nullptr);
  EXPECT_EQ(out.trace->CountType(DataplaneEventType::kArrival),
            out.trace->CountType(DataplaneEventType::kEgress));
  EXPECT_GT(out.trace->size(), 0u);
}

TEST(FirewallScenarioTest, DeterministicForSeed) {
  FirewallScenarioConfig config;
  config.options.seed = 99;
  config.fault = FirewallFault::kDropEstablishedReturn;
  const auto a = RunFirewallScenario(config);
  const auto b = RunFirewallScenario(config);
  EXPECT_EQ(a.TotalViolations(), b.TotalViolations());
  EXPECT_EQ(a.packets_injected, b.packets_injected);
}

}  // namespace
}  // namespace swmon
