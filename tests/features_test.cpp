// Feature analysis (Table 1 regeneration): the computed row for every
// catalog property must match the paper's published row except on the
// explicitly documented divergent columns.
#include <gtest/gtest.h>

#include <algorithm>

#include "monitor/features.hpp"
#include "monitor/property_builder.hpp"
#include "properties/catalog.hpp"

namespace swmon {
namespace {

TEST(FeaturesTest, AllCatalogPropertiesValidate) {
  for (const auto& entry : BuildCatalog()) {
    EXPECT_EQ(entry.property.Validate(), "") << entry.id;
  }
}

TEST(FeaturesTest, CatalogMatchesPaperRowsUpToDocumentedDivergences) {
  for (const auto& entry : BuildCatalog()) {
    if (!entry.in_table1) continue;
    const FeatureSet computed = AnalyzeFeatures(entry.property);
    std::vector<std::string> diff =
        DiffFeatureColumns(computed, entry.expected);
    std::vector<std::string> documented = entry.divergent_columns;
    std::sort(diff.begin(), diff.end());
    std::sort(documented.begin(), documented.end());
    EXPECT_EQ(diff, documented)
        << entry.id << " (" << entry.property.name << ")\ncomputed: "
        << computed.ToRow() << "\nexpected: " << entry.expected.ToRow();
    if (!entry.divergent_columns.empty())
      EXPECT_NE(entry.divergence_note, nullptr) << entry.id;
  }
}

TEST(FeaturesTest, CatalogHasAllThirteenTableRows) {
  const auto catalog = BuildCatalog();
  const auto table1 =
      std::count_if(catalog.begin(), catalog.end(),
                    [](const CatalogEntry& e) { return e.in_table1; });
  EXPECT_EQ(table1, 13);
  EXPECT_EQ(catalog.size(), 21u);  // + 8 Sec-1/Sec-2 walkthrough properties
}

TEST(FeaturesTest, FieldDepthIsMaxOverStages) {
  PropertyBuilder b("depth", "test");
  const VarId A = b.Var("A");
  b.AddStage("s0").Match(PatternBuilder::Arrival().Eq(FieldId::kEthType, 5).Build())
      .Bind(A, FieldId::kDhcpYiaddr);
  b.AddStage("s1").Match(
      PatternBuilder::Egress().EqVar(FieldId::kIpSrc, A).Build());
  EXPECT_EQ(AnalyzeFeatures(std::move(b).Build()).fields, FieldLayer::kL7);
}

TEST(FeaturesTest, MetadataFieldsDoNotRaiseDepth) {
  PropertyBuilder b("meta", "test");
  b.AddStage("s0").Match(
      PatternBuilder::Arrival().Eq(FieldId::kInPort, 1).Build());
  EXPECT_EQ(AnalyzeFeatures(std::move(b).Build()).fields, FieldLayer::kL2);
}

TEST(FeaturesTest, PacketIdMeansIdentity) {
  PropertyBuilder b("ident", "test");
  const VarId P = b.Var("P");
  b.AddStage("s0").Match(PatternBuilder::Arrival().Build()).Bind(
      P, FieldId::kPacketId);
  b.AddStage("s1").Match(
      PatternBuilder::Egress().EqVar(FieldId::kPacketId, P).Build());
  const FeatureSet f = AnalyzeFeatures(std::move(b).Build());
  EXPECT_TRUE(f.identity);
}

TEST(FeaturesTest, TimeoutStagesAreTimeoutActionsNotTimeouts) {
  PropertyBuilder b("toa", "test");
  b.AddStage("s0").Match(PatternBuilder::Arrival().Build())
      .Window(Duration::Seconds(1));
  b.AddTimeoutStage("fire");
  const FeatureSet f = AnalyzeFeatures(std::move(b).Build());
  EXPECT_TRUE(f.timeout_actions);
  EXPECT_FALSE(f.timeouts);
}

TEST(FeaturesTest, StateExpiringWindowIsTimeouts) {
  PropertyBuilder b("to", "test");
  const VarId A = b.Var("A");
  b.AddStage("s0").Match(PatternBuilder::Arrival().Build())
      .Bind(A, FieldId::kIpSrc)
      .Window(Duration::Seconds(1));
  b.AddStage("s1").Match(
      PatternBuilder::Egress().EqVar(FieldId::kIpSrc, A).Build());
  const FeatureSet f = AnalyzeFeatures(std::move(b).Build());
  EXPECT_TRUE(f.timeouts);
  EXPECT_FALSE(f.timeout_actions);
}

TEST(FeaturesTest, EventStageAbortsAreObligation) {
  PropertyBuilder b("ob", "test");
  const VarId A = b.Var("A");
  b.AddStage("s0").Match(PatternBuilder::Arrival().Build()).Bind(
      A, FieldId::kIpSrc);
  b.AddStage("s1")
      .Match(PatternBuilder::Egress().EqVar(FieldId::kIpSrc, A).Build())
      .AbortOn(PatternBuilder::Arrival().EqVar(FieldId::kIpSrc, A).Build());
  EXPECT_TRUE(AnalyzeFeatures(std::move(b).Build()).obligation);
}

TEST(FeaturesTest, BuiltinComparisonsAreNotNegativeMatch) {
  PropertyBuilder b("lb", "test");
  const VarId E = b.Var("E");
  b.AddStage("s0")
      .Match(PatternBuilder::Arrival().Build())
      .BindHashPort(E, {FieldId::kIpSrc}, 4, 2);
  b.AddStage("s1").Match(
      PatternBuilder::Egress().NeVar(FieldId::kOutPort, E).Build());
  EXPECT_FALSE(AnalyzeFeatures(std::move(b).Build()).negative_match);
}

TEST(FeaturesTest, ForbiddenGroupIsNegativeMatch) {
  PropertyBuilder b("neg", "test");
  const VarId A = b.Var("A");
  b.AddStage("s0").Match(PatternBuilder::Arrival().Build()).Bind(
      A, FieldId::kIpDst);
  b.AddStage("s1").Match(
      PatternBuilder::Egress().ForbidEqVar(FieldId::kIpDst, A).Build());
  EXPECT_TRUE(AnalyzeFeatures(std::move(b).Build()).negative_match);
}

TEST(FeaturesTest, UnlinkedLaterStageIsMultipleMatch) {
  PropertyBuilder b("mm", "test");
  const VarId D = b.Var("D");
  b.AddStage("s0").Match(PatternBuilder::Arrival().Build()).Bind(
      D, FieldId::kEthSrc);
  b.AddStage("s1").Match(
      PatternBuilder::LinkStatus().Eq(FieldId::kLinkUp, 0).Build());
  b.AddStage("s2").Match(
      PatternBuilder::Egress().EqVar(FieldId::kEthDst, D).Build());
  EXPECT_TRUE(AnalyzeFeatures(std::move(b).Build()).multiple_match);
}

TEST(InterestSignatureTest, ReflectsStagePatternTypes) {
  const EventTypeMask fw = InterestSignature(FirewallReturnNotDropped());
  EXPECT_EQ(fw, EventTypeBit(DataplaneEventType::kArrival) |
                    EventTypeBit(DataplaneEventType::kEgress));
  EXPECT_EQ(InterestSignatureString(fw), "arrival|egress");
}

TEST(InterestSignatureTest, IncludesLinkStatusStages) {
  PropertyBuilder b("link", "test");
  const VarId D = b.Var("D");
  b.AddStage("learn").Match(PatternBuilder::Arrival().Build()).Bind(
      D, FieldId::kEthSrc);
  b.AddStage("down").Match(
      PatternBuilder::LinkStatus().Eq(FieldId::kLinkUp, 0).Build());
  const EventTypeMask m = InterestSignature(std::move(b).Build());
  EXPECT_TRUE(m & EventTypeBit(DataplaneEventType::kLinkStatus));
  EXPECT_TRUE(m & EventTypeBit(DataplaneEventType::kArrival));
  EXPECT_FALSE(m & EventTypeBit(DataplaneEventType::kEgress));
}

TEST(InterestSignatureTest, IncludesAbortAndSuppressorPatterns) {
  PropertyBuilder b("ab", "test");
  const VarId A = b.Var("A");
  b.AddStage("s0").Match(PatternBuilder::Arrival().Build()).Bind(
      A, FieldId::kIpSrc);
  b.AddStage("s1")
      .Match(PatternBuilder::Arrival().EqVar(FieldId::kIpSrc, A).Build())
      .AbortOn(PatternBuilder::LinkStatus().Eq(FieldId::kLinkUp, 0).Build());
  const EventTypeMask m = InterestSignature(std::move(b).Build());
  // Arrival from the stages, link-status from the abort; no egress.
  EXPECT_TRUE(m & EventTypeBit(DataplaneEventType::kLinkStatus));
  EXPECT_FALSE(m & EventTypeBit(DataplaneEventType::kEgress));
}

TEST(InterestSignatureTest, TimeoutStagesDoNotWidenTheMask) {
  // A timeout stage fires from the clock, not from an event; its default
  // any-type pattern must not drag the property onto every dispatch list.
  PropertyBuilder b("to", "test");
  b.AddStage("s0").Match(PatternBuilder::Arrival().Build())
      .Window(Duration::Seconds(1));
  b.AddTimeoutStage("fire");
  EXPECT_EQ(InterestSignature(std::move(b).Build()),
            EventTypeBit(DataplaneEventType::kArrival));
}

TEST(InterestSignatureTest, UntypedPatternWidensToAllTypes) {
  PropertyBuilder b("any", "test");
  b.AddStage("s0").Match(PatternBuilder::Arrival().Build());
  Property p = std::move(b).Build();
  p.stages[0].pattern.event_type = std::nullopt;  // wildcard pattern
  EXPECT_EQ(InterestSignature(p), kAllEventTypes);
  EXPECT_EQ(InterestSignatureString(kAllEventTypes),
            "arrival|egress|link_status");
  EXPECT_EQ(InterestSignatureString(0), "none");
}

TEST(InterestSignatureTest, EveryCatalogPropertyHasANonEmptySignature) {
  for (const auto& entry : BuildCatalog()) {
    const EventTypeMask m = InterestSignature(entry.property);
    EXPECT_NE(m, 0u) << entry.id;
    // Stage 0 is an event stage in every catalog property, so its type
    // must be in the mask.
    ASSERT_TRUE(entry.property.stages[0].pattern.event_type.has_value())
        << entry.id;
    EXPECT_TRUE(m &
                EventTypeBit(*entry.property.stages[0].pattern.event_type))
        << entry.id;
  }
}

TEST(FeaturesTest, DiffReportsColumnNames) {
  FeatureSet a, b;
  a.history = true;
  b.timeouts = true;
  const auto diff = DiffFeatureColumns(a, b);
  EXPECT_EQ(diff, (std::vector<std::string>{"history", "timeouts"}));
  EXPECT_TRUE(DiffFeatureColumns(a, a).empty());
}

TEST(FeaturesTest, RowRendering) {
  FeatureSet f;
  f.fields = FieldLayer::kL7;
  f.history = true;
  f.id_mode = InstanceIdMode::kWandering;
  const std::string row = f.ToRow();
  EXPECT_NE(row.find("L7"), std::string::npos);
  EXPECT_NE(row.find("wandering"), std::string::npos);
}

}  // namespace
}  // namespace swmon
