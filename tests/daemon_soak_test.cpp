// swmond soak: one resident daemon ingests >=1M events over the binary
// socket protocol while properties hot-attach and hot-detach and the HTTP
// plane serves /metrics and /telemetry.json mid-traffic. Asserts
//   * zero missed violations on the resident property (exact count), and
//   * bounded resident memory: RSS at the end of the soak has not grown
//     materially past RSS at the quarter mark (the ring + per-round engine
//     drains are what keep half a million violations from accumulating).
// Runs ~5s; carries the `daemon` CTest label.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "daemon/daemon.hpp"
#include "netsim/trace_io.hpp"

namespace swmon {
namespace {

constexpr std::size_t kPairs = 500000;  // 2 events per pair = 1M events

constexpr const char* kResidentSpl = R"(
property resident {
  vars S;
  stage "first" on arrival {
    match l4_dst == 80;
    bind S = ip_src;
  }
  stage "second" on arrival {
    match ip_src == $S;
    match l4_dst == 81;
  }
})";

// Never matches the soak traffic: pure lifecycle churn.
constexpr const char* kDoomedSpl = R"(
property doomed {
  stage "never" on arrival {
    match l4_dst == 9999;
  }
})";

constexpr const char* kChurnSpl = R"(
property churn {
  stage "never" on arrival {
    match l4_dst == 9998;
  }
})";

/// VmRSS in kilobytes, from /proc/self/status. 0 if unavailable (then the
/// RSS assertion is skipped — e.g. a non-Linux host).
std::uint64_t RssKb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::uint64_t kb = 0;
      fields >> kb;
      return kb;
    }
  }
  return 0;
}

bool SendAll(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, 0);
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

/// Streams kPairs two-event violation pairs in the binary wire format over
/// one TCP connection; blocks on the daemon's ingest backpressure.
void Produce(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  ByteWriter header;
  const std::uint8_t magic[4] = {'S', 'W', 'M', 'T'};
  header.WriteBytes(magic);
  header.WriteU32LE(2);
  header.WriteU64LE(0);
  ASSERT_TRUE(SendAll(fd, header.bytes().data(), header.bytes().size()));

  ByteWriter chunk;
  for (std::size_t i = 0; i < kPairs; ++i) {
    DataplaneEvent ev;
    ev.type = DataplaneEventType::kArrival;
    ev.packet_bytes = 64;
    ev.fields.Set(FieldId::kIpSrc, i + 1);  // unique source per pair
    ev.time = SimTime::FromNanos(static_cast<std::int64_t>(i) * 2000 + 1000);
    ev.fields.Set(FieldId::kL4DstPort, 80);
    EncodeTraceEvent(chunk, ev);
    ev.time = SimTime::FromNanos(static_cast<std::int64_t>(i) * 2000 + 2000);
    ev.fields.Set(FieldId::kL4DstPort, 81);
    EncodeTraceEvent(chunk, ev);
    if (chunk.bytes().size() >= 1 << 16) {
      ASSERT_TRUE(SendAll(fd, chunk.bytes().data(), chunk.bytes().size()));
      chunk = ByteWriter();
    }
  }
  ASSERT_TRUE(SendAll(fd, chunk.bytes().data(), chunk.bytes().size()));
  ::close(fd);
}

TEST(DaemonSoakTest, MillionEventsWithHotLifecycleBoundedRss) {
  SwmondOptions opts;
  opts.tcp_enabled = true;
  opts.violation_capacity = 2048;  // far smaller than the violation volume
  SwmonDaemon daemon(std::move(opts));
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  std::string attach_error;
  const auto resident =
      daemon.AttachProperty("soak", kResidentSpl, &attach_error);
  ASSERT_TRUE(resident.has_value()) << attach_error;
  const auto doomed = daemon.AttachProperty("soak", kDoomedSpl, &attach_error);
  ASSERT_TRUE(doomed.has_value()) << attach_error;

  std::thread producer([&] { Produce(daemon.tcp_port()); });

  const std::uint64_t total_events = 2 * kPairs;
  bool lifecycle_done = false;
  std::uint64_t rss_quarter_kb = 0;
  std::uint64_t http_polls = 0;
  while (daemon.events_ingested() < total_events) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    if (!lifecycle_done && daemon.events_ingested() > total_events / 4) {
      lifecycle_done = true;
      rss_quarter_kb = RssKb();
      // Hot lifecycle under full ingest pressure: detach one property,
      // attach another, over the same HTTP surface operators use.
      int status = 0;
      std::string body;
      ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "DELETE",
                                "/tenants/soak/properties/" +
                                    std::to_string(*doomed),
                                "", &status, &body, &error))
          << error;
      EXPECT_EQ(status, 200) << body;
      ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "POST",
                                "/tenants/soak/properties", kChurnSpl,
                                &status, &body, &error))
          << error;
      EXPECT_EQ(status, 201) << body;
    }

    // The control plane must answer while ingest is running hot.
    int status = 0;
    std::string body;
    ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "GET", "/metrics", "",
                              &status, &body, &error))
        << error;
    EXPECT_EQ(status, 200);
    ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "GET", "/telemetry.json",
                              "", &status, &body, &error))
        << error;
    EXPECT_EQ(status, 200);
    ++http_polls;
  }
  producer.join();
  ASSERT_EQ(daemon.events_ingested(), total_events);
  EXPECT_TRUE(lifecycle_done);
  EXPECT_GT(http_polls, 0u);

  // Zero missed violations on the resident property: every pair violated,
  // and doomed/churn never match, so the tenant total is exact.
  const telemetry::Snapshot snap = daemon.Telemetry();
  ASSERT_TRUE(snap.Has("daemon.tenant.soak.violations_total"));
  EXPECT_EQ(snap.samples().at("daemon.tenant.soak.violations_total").counter,
            kPairs);
  // The ring actually exercised its bound...
  ASSERT_TRUE(snap.Has("daemon.tenant.soak.violations_dropped"));
  EXPECT_GT(snap.samples().at("daemon.tenant.soak.violations_dropped").counter,
            0u);
  // ...and what is still buffered never exceeds the configured capacity.
  ASSERT_TRUE(snap.Has("daemon.tenant.soak.violations_buffered"));
  EXPECT_LE(snap.samples().at("daemon.tenant.soak.violations_buffered").gauge,
            2048);

  // Bounded resident memory: by the quarter mark every pool (decoder
  // buffers, ingest queue, ring) is warm, so the remaining 750k events must
  // not grow RSS by more than noise. Unbounded violation retention alone
  // would add ~50MB here.
  const std::uint64_t rss_end_kb = RssKb();
  if (rss_quarter_kb > 0 && rss_end_kb > 0) {
    EXPECT_LT(rss_end_kb, rss_quarter_kb + 24 * 1024)
        << "RSS grew from " << rss_quarter_kb << "kB to " << rss_end_kb
        << "kB during the steady-state soak";
  }

  daemon.Stop();
}

}  // namespace
}  // namespace swmon
