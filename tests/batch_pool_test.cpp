// BatchPool / SlabBatch: the allocation-free slab recycler behind the
// parallel producer. Pins down the contract the steady-state path relies
// on: freelist reuse instead of fresh allocation, the max_batches cap as
// the backpressure signal, last-consumer-returns semantics, and arena
// sizing (items + route lanes) fixed at construction.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "event/event_batch.hpp"

namespace swmon {
namespace {

TEST(BatchPoolTest, ArenasAreSizedOnceAtAcquire) {
  BatchPool<int> pool(/*batch_capacity=*/8, /*route_stride=*/3,
                      /*max_batches=*/4);
  SlabBatch<int>* b = pool.TryAcquire();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->items.size(), 8u);
  EXPECT_EQ(b->routes.size(), 8u * 3u);
  EXPECT_EQ(b->size, 0u);
  EXPECT_EQ(pool.allocated(), 1u);
  EXPECT_EQ(pool.reused(), 0u);
}

TEST(BatchPoolTest, ReleaseRecyclesTheSameSlab) {
  BatchPool<int> pool(4, 0, 4);
  SlabBatch<int>* b = pool.TryAcquire();
  ASSERT_NE(b, nullptr);
  b->size = 4;
  b->refs.store(1, std::memory_order_relaxed);
  pool.Release(b);

  // The freelist hands back the identical arena, size reset, no new
  // allocation — this is the "zero per-event heap allocations" property.
  SlabBatch<int>* again = pool.TryAcquire();
  EXPECT_EQ(again, b);
  EXPECT_EQ(again->size, 0u);
  EXPECT_EQ(pool.allocated(), 1u);
  EXPECT_EQ(pool.reused(), 1u);
}

TEST(BatchPoolTest, SteadyStateNeverAllocatesPastTheCap) {
  BatchPool<int> pool(16, 2, 3);
  for (int round = 0; round < 100; ++round) {
    SlabBatch<int>* b = pool.TryAcquire();
    ASSERT_NE(b, nullptr);
    b->refs.store(1, std::memory_order_relaxed);
    pool.Release(b);
  }
  EXPECT_EQ(pool.allocated(), 1u);  // single-slab round trips
  EXPECT_EQ(pool.reused(), 99u);
}

TEST(BatchPoolTest, ExhaustionIsBackpressureNotAllocation) {
  BatchPool<int> pool(4, 0, 3);
  std::vector<SlabBatch<int>*> in_flight;
  std::set<SlabBatch<int>*> distinct;
  for (int i = 0; i < 3; ++i) {
    SlabBatch<int>* b = pool.TryAcquire();
    ASSERT_NE(b, nullptr);
    distinct.insert(b);
    in_flight.push_back(b);
  }
  EXPECT_EQ(distinct.size(), 3u);
  EXPECT_EQ(pool.allocated(), 3u);

  // Every slab in flight at the cap: acquisition must fail, not allocate.
  EXPECT_EQ(pool.TryAcquire(), nullptr);
  EXPECT_EQ(pool.TryAcquire(), nullptr);
  EXPECT_EQ(pool.allocated(), 3u);

  // A consumer release immediately unblocks the producer.
  in_flight.back()->refs.store(1, std::memory_order_relaxed);
  pool.Release(in_flight.back());
  SlabBatch<int>* b = pool.TryAcquire();
  EXPECT_EQ(b, in_flight.back());
  EXPECT_EQ(pool.allocated(), 3u);
  EXPECT_EQ(pool.reused(), 1u);
}

TEST(BatchPoolTest, OnlyTheLastConsumerReturnsTheSlab) {
  BatchPool<int> pool(4, 0, 1);
  SlabBatch<int>* b = pool.TryAcquire();
  ASSERT_NE(b, nullptr);
  b->refs.store(3, std::memory_order_relaxed);  // published to 3 workers

  pool.Release(b);
  EXPECT_EQ(pool.TryAcquire(), nullptr);  // 2 consumers still hold it
  pool.Release(b);
  EXPECT_EQ(pool.TryAcquire(), nullptr);
  pool.Release(b);  // last consumer
  EXPECT_EQ(pool.TryAcquire(), b);
}

TEST(BatchPoolTest, AcquireBlockingWaitsOutExhaustionAndCountsOneEpisode) {
  BatchPool<int> pool(4, 1, 2);
  SlabBatch<int>* a = pool.TryAcquire();
  SlabBatch<int>* b = pool.TryAcquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  a->refs.store(1, std::memory_order_relaxed);
  b->refs.store(1, std::memory_order_relaxed);
  EXPECT_EQ(pool.exhausted_waits(), 0u);

  // A worker releases both slabs while the producer spins in
  // AcquireBlocking; the wait resolves and is billed as ONE backpressure
  // episode regardless of how many spin iterations it took.
  std::thread worker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pool.Release(a);
    pool.Release(b);
  });
  SlabBatch<int>* got = pool.AcquireBlocking();
  worker.join();
  EXPECT_TRUE(got == a || got == b);
  EXPECT_EQ(pool.exhausted_waits(), 1u);
  EXPECT_EQ(pool.allocated(), 2u);

  // With a slab free again the fast path stays episode-free.
  SlabBatch<int>* second = pool.AcquireBlocking();
  EXPECT_NE(second, nullptr);
  EXPECT_NE(second, got);
  EXPECT_EQ(pool.exhausted_waits(), 1u);
}

TEST(BatchPoolTest, ConcurrentReleasesFromManyWorkersAllRecycle) {
  // Hammer the Treiber freelist: 4 "workers" release disjoint batches
  // concurrently while the producer drains; every slab must come back
  // exactly once (tsan-labelled to check the CAS protocol under race).
  constexpr int kWorkers = 4;
  constexpr int kRounds = 200;
  BatchPool<int> pool(4, 0, kWorkers);
  for (int round = 0; round < kRounds; ++round) {
    std::vector<SlabBatch<int>*> batch(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      batch[w] = pool.TryAcquire();
      ASSERT_NE(batch[w], nullptr) << "round " << round;
      batch[w]->refs.store(1, std::memory_order_relaxed);
    }
    EXPECT_EQ(pool.TryAcquire(), nullptr);  // cap reached
    std::vector<std::thread> threads;
    for (int w = 0; w < kWorkers; ++w)
      threads.emplace_back([&pool, b = batch[w]] { pool.Release(b); });
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(pool.allocated(), static_cast<std::uint64_t>(kWorkers));
  EXPECT_EQ(pool.reused(),
            static_cast<std::uint64_t>(kWorkers) * (kRounds - 1));
}

}  // namespace
}  // namespace swmon
