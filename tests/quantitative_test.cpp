// The counting extension (Stage::min_count) — quantitative observations
// beyond the paper's boolean scope (its Sec-4 future-work boundary):
// "K events within T" properties like SYN-flood detection.
#include <gtest/gtest.h>

#include "backends/backend.hpp"
#include "monitor/engine.hpp"
#include "monitor/property_builder.hpp"
#include "spl/spl.hpp"

namespace swmon {
namespace {

/// "A host that sends `threshold` SYNs within 2 seconds of its first is a
/// scanner": S0 binds H on the first SYN and opens the window; S1 must
/// match threshold-1 more SYNs before the window closes.
Property SynFlood(std::uint32_t threshold) {
  PropertyBuilder b("syn-flood", "K SYNs from one host within T");
  const VarId H = b.Var("H");
  b.AddStage("first SYN")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kIpProto, 6)
                 .EqMasked(FieldId::kTcpFlags, kTcpSyn, kTcpSyn | kTcpAck)
                 .Build())
      .Bind(H, FieldId::kIpSrc)
      .Window(Duration::Seconds(2));
  b.AddStage("K-1 more SYNs")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kIpProto, 6)
                 .EqVar(FieldId::kIpSrc, H)
                 .EqMasked(FieldId::kTcpFlags, kTcpSyn, kTcpSyn | kTcpAck)
                 .Build())
      .Count(threshold - 1);
  return std::move(b).Build();
}

DataplaneEvent Syn(std::uint64_t host, std::int64_t ms) {
  DataplaneEvent ev;
  ev.type = DataplaneEventType::kArrival;
  ev.time = SimTime::Zero() + Duration::Millis(ms);
  ev.fields.Set(FieldId::kIpProto, 6);
  ev.fields.Set(FieldId::kIpSrc, host);
  ev.fields.Set(FieldId::kTcpFlags, kTcpSyn);
  return ev;
}

TEST(QuantitativeTest, FiresAtExactlyTheThreshold) {
  MonitorEngine eng(SynFlood(5));
  for (int i = 0; i < 4; ++i) eng.ProcessEvent(Syn(9, 10 * (i + 1)));
  EXPECT_TRUE(eng.violations().empty());  // 4 SYNs: below threshold
  eng.ProcessEvent(Syn(9, 50));           // the 5th
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(QuantitativeTest, WindowExpiryResetsTheCount) {
  MonitorEngine eng(SynFlood(5));
  for (int i = 0; i < 4; ++i) eng.ProcessEvent(Syn(9, 10 * (i + 1)));
  // The 2s window lapses; the count evaporates with the instance.
  eng.ProcessEvent(Syn(9, 3000));  // starts a NEW attempt (1 of 5)
  for (int i = 0; i < 3; ++i) eng.ProcessEvent(Syn(9, 3010 + 10 * i));
  EXPECT_TRUE(eng.violations().empty());  // 4 within the new window
  eng.ProcessEvent(Syn(9, 3100));
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(QuantitativeTest, CountsArePerHost) {
  MonitorEngine eng(SynFlood(4));
  for (std::uint64_t h = 1; h <= 3; ++h)
    for (int i = 0; i < 3; ++i)
      eng.ProcessEvent(Syn(h, static_cast<std::int64_t>(h * 100 + 10 * i)));
  EXPECT_TRUE(eng.violations().empty());  // 3 SYNs each: all below 4
  eng.ProcessEvent(Syn(2, 500));
  ASSERT_EQ(eng.violations().size(), 1u);
  EXPECT_EQ(eng.violations()[0].bindings[0].second, 2u);
}

TEST(QuantitativeTest, SynAcksDoNotCount) {
  MonitorEngine eng(SynFlood(3));
  eng.ProcessEvent(Syn(9, 10));
  DataplaneEvent synack = Syn(9, 20);
  synack.fields.Set(FieldId::kTcpFlags, kTcpSyn | kTcpAck);
  for (int i = 0; i < 10; ++i) {
    synack.time = SimTime::Zero() + Duration::Millis(20 + i);
    eng.ProcessEvent(synack);
  }
  EXPECT_TRUE(eng.violations().empty());
}

TEST(QuantitativeTest, ValidationRejectsMisplacedCounts) {
  {
    PropertyBuilder b("bad0", "count on stage 0");
    b.AddStage("s0").Match(PatternBuilder::Arrival().Build()).Count(3);
    Property p;
    p.name = "bad0";
    p.stages.emplace_back();
    p.stages[0].min_count = 3;
    EXPECT_FALSE(p.Validate().empty());
  }
  {
    Property p;
    p.name = "bad-timeout";
    p.stages.emplace_back();
    p.stages[0].window = Duration::Seconds(1);
    Stage t;
    t.kind = StageKind::kTimeout;
    t.min_count = 2;
    p.stages.push_back(t);
    EXPECT_FALSE(p.Validate().empty());
  }
}

TEST(QuantitativeTest, SplRoundTripsCount) {
  const Property original = SynFlood(8);
  const std::string text = SerializeSpl(original);
  EXPECT_NE(text.find("count 7;"), std::string::npos);
  const auto reparsed = ParseSpl(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  EXPECT_EQ(*reparsed.property, original);
}

TEST(QuantitativeTest, SplSourceParsesDirectly) {
  const auto result = ParseSpl(R"(
property port-scan {
  vars H;
  stage "first probe" on arrival {
    match ip_proto == 6;
    bind H = ip_src;
    window 5s;
  }
  stage "many probes" on arrival {
    match ip_proto == 6;
    match ip_src == $H;
    count 19;
  }
})");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.property->stages[1].min_count, 19u);
}

TEST(QuantitativeTest, RunsOnBackendMechanisms) {
  // The counter is just per-flow state: OpenState / P4 / Varanus all
  // execute it (each sub-threshold match is a state write).
  const Property prop = SynFlood(4);
  for (const char* name : {"OpenState", "POF / P4", "Varanus"}) {
    for (auto& b : AllBackends()) {
      if (b->info().name != name) continue;
      auto r = b->Compile(prop, CostParams{});
      ASSERT_TRUE(r.ok()) << name;
      for (int i = 0; i < 4; ++i)
        r.monitor->OnDataplaneEvent(Syn(9, 100 * (i + 1)));
      EXPECT_EQ(r.monitor->violations().size(), 1u) << name;
    }
  }
}

TEST(QuantitativeTest, CountOfOneIsPlainSemantics) {
  // min_count = 1 must behave identically to an uncounted stage.
  MonitorEngine eng(SynFlood(2));  // stage 1 count = 1
  eng.ProcessEvent(Syn(9, 10));
  eng.ProcessEvent(Syn(9, 20));
  EXPECT_EQ(eng.violations().size(), 1u);
}

}  // namespace
}  // namespace swmon
