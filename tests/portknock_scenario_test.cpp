// End-to-end: port-knocking gate + T1.3 / T1.4.
#include <gtest/gtest.h>

#include "workload/portknock_scenario.hpp"

namespace swmon {
namespace {

TEST(PortKnockScenarioTest, CorrectGateIsQuiet) {
  PortKnockScenarioConfig config;
  const auto out = RunPortKnockScenario(config);
  EXPECT_EQ(out.TotalViolations(), 0u);
}

TEST(PortKnockScenarioTest, IgnoredInvalidationDetected) {
  PortKnockScenarioConfig config;
  config.fault = PortKnockFault::kIgnoreInvalidation;
  const auto out = RunPortKnockScenario(config);
  // Each corrupted session opens the gate anyway: one violation each.
  EXPECT_EQ(out.ViolationsOf("knock-invalidation"),
            config.corrupted_sessions);
  // Clean sessions still open legitimately.
  EXPECT_EQ(out.ViolationsOf("knock-recognize"), 0u);
}

TEST(PortKnockScenarioTest, NeverOpenDetected) {
  PortKnockScenarioConfig config;
  config.fault = PortKnockFault::kNeverOpen;
  const auto out = RunPortKnockScenario(config);
  EXPECT_EQ(out.ViolationsOf("knock-recognize"), config.clean_sessions);
  EXPECT_EQ(out.ViolationsOf("knock-invalidation"), 0u);
}

TEST(PortKnockScenarioTest, OnlyCleanSessions) {
  PortKnockScenarioConfig config;
  config.corrupted_sessions = 0;
  config.fault = PortKnockFault::kIgnoreInvalidation;
  // Without corrupted sequences, the invalidation bug is unobservable.
  EXPECT_EQ(RunPortKnockScenario(config).TotalViolations(), 0u);
}

class KnockSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(KnockSweep, CountsScaleWithSessions) {
  PortKnockScenarioConfig config;
  config.clean_sessions = GetParam().first;
  config.corrupted_sessions = GetParam().second;
  config.fault = PortKnockFault::kIgnoreInvalidation;
  const auto out = RunPortKnockScenario(config);
  EXPECT_EQ(out.ViolationsOf("knock-invalidation"), GetParam().second);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, KnockSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{0, 1},
                      std::pair<std::size_t, std::size_t>{1, 0},
                      std::pair<std::size_t, std::size_t>{3, 7},
                      std::pair<std::size_t, std::size_t>{10, 10}));

}  // namespace
}  // namespace swmon
