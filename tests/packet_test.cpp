#include <gtest/gtest.h>

#include "packet/builder.hpp"
#include "packet/checksum.hpp"
#include "packet/parser.hpp"

namespace swmon {
namespace {

TEST(AddrTest, MacRoundTrip) {
  const MacAddr m(0x01, 0x23, 0x45, 0x67, 0x89, 0xab);
  EXPECT_EQ(m.ToString(), "01:23:45:67:89:ab");
  const auto bytes = m.Bytes();
  EXPECT_EQ(MacAddr::FromBytes(bytes.data()), m);
}

TEST(AddrTest, MacKinds) {
  EXPECT_TRUE(MacAddr::Broadcast().IsBroadcast());
  EXPECT_TRUE(MacAddr::Broadcast().IsMulticast());
  EXPECT_FALSE(MacAddr(0x02, 0, 0, 0, 0, 1).IsMulticast());
  EXPECT_TRUE(MacAddr(0x01, 0, 0x5e, 0, 0, 1).IsMulticast());
}

TEST(AddrTest, Ipv4Formatting) {
  EXPECT_EQ(Ipv4Addr(10, 0, 0, 1).ToString(), "10.0.0.1");
  EXPECT_EQ(Ipv4Addr(10, 0, 0, 1).bits(), 0x0a000001u);
}

TEST(AddrTest, Subnets) {
  const Ipv4Addr net(192, 168, 1, 0);
  EXPECT_TRUE(Ipv4Addr(192, 168, 1, 77).InSubnet(net, 24));
  EXPECT_FALSE(Ipv4Addr(192, 168, 2, 77).InSubnet(net, 24));
  EXPECT_TRUE(Ipv4Addr(8, 8, 8, 8).InSubnet(net, 0));
}

TEST(ChecksumTest, Rfc1071Example) {
  // Canonical example from RFC 1071 §3.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InternetChecksum(std::span(data, 8)),
            static_cast<std::uint16_t>(~0xddf2 & 0xffff));
}

TEST(ChecksumTest, OddLengthHandled) {
  const std::uint8_t data[] = {0x01, 0x02, 0x03};
  // 0x0102 + 0x0300 = 0x0402 -> ~0x0402.
  EXPECT_EQ(InternetChecksum(std::span(data, 3)),
            static_cast<std::uint16_t>(~0x0402 & 0xffff));
}

TEST(BuilderTest, ArpRequestParsesBack) {
  const Packet pkt = BuildArpRequest(MacAddr(0x02, 0, 0, 0, 0, 1),
                                     Ipv4Addr(10, 0, 0, 1),
                                     Ipv4Addr(10, 0, 0, 2));
  const ParsedPacket parsed = ParsePacket(pkt, ParseDepth::kL7);
  ASSERT_TRUE(parsed.valid);
  ASSERT_TRUE(parsed.arp.has_value());
  EXPECT_EQ(parsed.arp->op, 1);
  EXPECT_EQ(parsed.arp->sender_ip, Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(parsed.arp->target_ip, Ipv4Addr(10, 0, 0, 2));
  EXPECT_TRUE(parsed.eth.dst.IsBroadcast());
  EXPECT_EQ(parsed.fields.Get(FieldId::kArpOp), 1u);
  EXPECT_EQ(parsed.fields.Get(FieldId::kArpTargetIp),
            Ipv4Addr(10, 0, 0, 2).bits());
}

TEST(BuilderTest, TcpParsesBackWithFlagsAndPorts) {
  const Packet pkt =
      BuildTcp(MacAddr(0x02, 0, 0, 0, 0, 1), MacAddr(0x02, 0, 0, 0, 0, 2),
               Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1234, 80,
               kTcpSyn | kTcpAck);
  const ParsedPacket parsed = ParsePacket(pkt, ParseDepth::kL7);
  ASSERT_TRUE(parsed.tcp.has_value());
  EXPECT_EQ(parsed.tcp->src_port, 1234);
  EXPECT_EQ(parsed.tcp->dst_port, 80);
  EXPECT_EQ(parsed.tcp->flags, kTcpSyn | kTcpAck);
  EXPECT_EQ(parsed.fields.Get(FieldId::kIpProto),
            static_cast<std::uint64_t>(IpProto::kTcp));
  EXPECT_EQ(parsed.fields.Get(FieldId::kL4SrcPort), 1234u);
}

TEST(BuilderTest, Ipv4HeaderChecksumValidates) {
  const Packet pkt =
      BuildTcp(MacAddr(0x02, 0, 0, 0, 0, 1), MacAddr(0x02, 0, 0, 0, 0, 2),
               Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1, 2, kTcpAck);
  // Recomputing the checksum over the IP header (bytes 14..34) must be 0.
  EXPECT_EQ(InternetChecksum(std::span(pkt.data).subspan(14, 20)), 0);
}

TEST(BuilderTest, UdpAndIcmpParse) {
  const std::uint8_t payload[] = {1, 2, 3};
  const Packet udp =
      BuildUdp(MacAddr(0x02, 0, 0, 0, 0, 1), MacAddr(0x02, 0, 0, 0, 0, 2),
               Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 53, 5353,
               std::span(payload, 3));
  const ParsedPacket up = ParsePacket(udp, ParseDepth::kL7);
  ASSERT_TRUE(up.udp.has_value());
  EXPECT_EQ(up.udp->length, 8 + 3);
  EXPECT_EQ(up.l4_payload.size(), 3u);

  const Packet icmp = BuildIcmpEcho(MacAddr(0x02, 0, 0, 0, 0, 1),
                                    MacAddr(0x02, 0, 0, 0, 0, 2),
                                    Ipv4Addr(10, 0, 0, 1),
                                    Ipv4Addr(10, 0, 0, 2), true, 7, 9);
  const ParsedPacket ip = ParsePacket(icmp, ParseDepth::kL7);
  ASSERT_TRUE(ip.icmp.has_value());
  EXPECT_EQ(ip.icmp->type, static_cast<std::uint8_t>(IcmpType::kEchoRequest));
  EXPECT_EQ(ip.fields.Get(FieldId::kIcmpType), 8u);
}

TEST(ParserTest, DepthLimitsRespected) {
  const Packet pkt =
      BuildTcp(MacAddr(0x02, 0, 0, 0, 0, 1), MacAddr(0x02, 0, 0, 0, 0, 2),
               Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1234, 80,
               kTcpSyn);
  const ParsedPacket l2 = ParsePacket(pkt, ParseDepth::kL2);
  EXPECT_TRUE(l2.valid);
  EXPECT_FALSE(l2.ipv4.has_value());
  const ParsedPacket l3 = ParsePacket(pkt, ParseDepth::kL3);
  EXPECT_TRUE(l3.ipv4.has_value());
  EXPECT_FALSE(l3.tcp.has_value());
  EXPECT_FALSE(l3.fields.Has(FieldId::kL4SrcPort));
}

TEST(ParserTest, TruncatedFrameIsInvalid) {
  Packet pkt;
  pkt.data = {0x01, 0x02, 0x03};
  EXPECT_FALSE(ParsePacket(pkt, ParseDepth::kL7).valid);
}

TEST(ParserTest, TruncatedInnerLayerKeepsOuter) {
  Packet pkt =
      BuildTcp(MacAddr(0x02, 0, 0, 0, 0, 1), MacAddr(0x02, 0, 0, 0, 0, 2),
               Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1234, 80,
               kTcpSyn);
  pkt.data.resize(14 + 20 + 4);  // cut into the TCP header
  const ParsedPacket parsed = ParsePacket(pkt, ParseDepth::kL7);
  EXPECT_TRUE(parsed.valid);
  EXPECT_TRUE(parsed.ipv4.has_value());
  EXPECT_FALSE(parsed.tcp.has_value());
}

TEST(DhcpTest, MessageRoundTrip) {
  DhcpMessage msg;
  msg.op = 2;
  msg.msg_type = DhcpMsgType::kAck;
  msg.xid = 0x31337;
  msg.yiaddr = Ipv4Addr(10, 1, 0, 23);
  msg.chaddr = MacAddr(0x02, 0, 0, 0, 0, 9);
  msg.lease_secs = 3600;
  msg.server_id = Ipv4Addr(10, 1, 0, 1);
  ByteWriter w;
  msg.Encode(w);

  DhcpMessage decoded;
  ByteReader r(std::span(w.bytes()));
  ASSERT_TRUE(decoded.Decode(r));
  EXPECT_EQ(decoded.msg_type, DhcpMsgType::kAck);
  EXPECT_EQ(decoded.xid, 0x31337u);
  EXPECT_EQ(decoded.yiaddr, Ipv4Addr(10, 1, 0, 23));
  EXPECT_EQ(decoded.chaddr, MacAddr(0x02, 0, 0, 0, 0, 9));
  ASSERT_TRUE(decoded.lease_secs.has_value());
  EXPECT_EQ(*decoded.lease_secs, 3600u);
  ASSERT_TRUE(decoded.server_id.has_value());
  EXPECT_EQ(*decoded.server_id, Ipv4Addr(10, 1, 0, 1));
}

TEST(DhcpTest, RejectsBadCookieAndMissingMsgType) {
  DhcpMessage msg;
  ByteWriter w;
  msg.Encode(w);
  auto bytes = w.bytes();
  bytes[236] ^= 0xff;  // corrupt the magic cookie
  DhcpMessage decoded;
  ByteReader r{std::span(bytes)};
  EXPECT_FALSE(decoded.Decode(r));
}

TEST(DhcpTest, FullPacketThroughParser) {
  DhcpMessage msg;
  msg.op = 1;
  msg.msg_type = DhcpMsgType::kRequest;
  msg.xid = 42;
  msg.chaddr = MacAddr(0x02, 0, 0, 0, 0, 3);
  const Packet pkt = BuildDhcp(msg.chaddr, MacAddr::Broadcast(),
                               Ipv4Addr::Zero(), Ipv4Addr::Broadcast(),
                               /*from_client=*/true, msg);
  const ParsedPacket parsed = ParsePacket(pkt, ParseDepth::kL7);
  ASSERT_TRUE(parsed.dhcp.has_value());
  EXPECT_EQ(parsed.fields.Get(FieldId::kDhcpMsgType),
            static_cast<std::uint64_t>(DhcpMsgType::kRequest));
  EXPECT_EQ(parsed.fields.Get(FieldId::kDhcpXid), 42u);
}

TEST(DhcpTest, L4DepthDoesNotSeeDhcp) {
  DhcpMessage msg;
  msg.msg_type = DhcpMsgType::kDiscover;
  const Packet pkt = BuildDhcp(MacAddr(0x02, 0, 0, 0, 0, 3),
                               MacAddr::Broadcast(), Ipv4Addr::Zero(),
                               Ipv4Addr::Broadcast(), true, msg);
  const ParsedPacket parsed = ParsePacket(pkt, ParseDepth::kL4);
  EXPECT_FALSE(parsed.dhcp.has_value());
  EXPECT_FALSE(parsed.fields.Has(FieldId::kDhcpMsgType));
}

TEST(FtpTest, ParsePortCommand) {
  const auto msg = ParseFtpControl("PORT 10,0,0,5,19,137\r\n");
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->kind, FtpMsgKind::kPortCommand);
  EXPECT_EQ(msg->data_addr, Ipv4Addr(10, 0, 0, 5));
  EXPECT_EQ(msg->data_port, 19 * 256 + 137);
}

TEST(FtpTest, ParsePasvReply) {
  const auto msg =
      ParseFtpControl("227 Entering Passive Mode (198,51,100,1,200,10)\r\n");
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->kind, FtpMsgKind::kPasvReply);
  EXPECT_EQ(msg->data_port, 200 * 256 + 10);
}

TEST(FtpTest, MalformedTuplesAreOther) {
  EXPECT_EQ(ParseFtpControl("PORT 10,0,0,5,19\r\n")->kind, FtpMsgKind::kOther);
  EXPECT_EQ(ParseFtpControl("PORT 300,0,0,5,19,137\r\n")->kind,
            FtpMsgKind::kOther);
  EXPECT_EQ(ParseFtpControl("USER anonymous\r\n")->kind, FtpMsgKind::kOther);
  EXPECT_FALSE(ParseFtpControl("").has_value());
}

TEST(FtpTest, FormatRoundTrip) {
  const auto line = FormatFtpPort(Ipv4Addr(10, 0, 0, 5), 5001);
  const auto msg = ParseFtpControl(line);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->kind, FtpMsgKind::kPortCommand);
  EXPECT_EQ(msg->data_port, 5001);
}

TEST(FtpTest, ThroughParserOnControlPort) {
  const Packet pkt = BuildFtpControlLine(
      MacAddr(0x02, 0, 0, 0, 0, 1), MacAddr(0x02, 0, 0, 0, 0, 2),
      Ipv4Addr(10, 0, 0, 1), Ipv4Addr(198, 51, 100, 1), 40000,
      kFtpControlPort, FormatFtpPort(Ipv4Addr(10, 0, 0, 1), 5001));
  const ParsedPacket parsed = ParsePacket(pkt, ParseDepth::kL7);
  ASSERT_TRUE(parsed.ftp.has_value());
  EXPECT_EQ(parsed.fields.Get(FieldId::kFtpDataPort), 5001u);
}

TEST(SetFieldTest, RewriteAndReencode) {
  const Packet pkt =
      BuildTcp(MacAddr(0x02, 0, 0, 0, 0, 1), MacAddr(0x02, 0, 0, 0, 0, 2),
               Ipv4Addr(10, 0, 0, 1), Ipv4Addr(198, 51, 100, 1), 1234, 80,
               kTcpAck);
  ParsedPacket parsed = ParsePacket(pkt, ParseDepth::kL7);
  ASSERT_TRUE(SetPacketField(parsed, FieldId::kIpSrc,
                             Ipv4Addr(203, 0, 113, 1).bits()));
  ASSERT_TRUE(SetPacketField(parsed, FieldId::kL4SrcPort, 50001));
  const std::vector<std::uint8_t> bytes = EncodeParsed(parsed);

  const ParsedPacket reparsed =
      ParsePacket(std::span(bytes), ParseDepth::kL7);
  ASSERT_TRUE(reparsed.ipv4.has_value());
  EXPECT_EQ(reparsed.ipv4->src, Ipv4Addr(203, 0, 113, 1));
  EXPECT_EQ(reparsed.tcp->src_port, 50001);
  // Checksums must be recomputed correctly.
  EXPECT_EQ(InternetChecksum(std::span(bytes).subspan(14, 20)), 0);
}

TEST(SetFieldTest, RejectsAbsentLayers) {
  const Packet arp = BuildArpRequest(MacAddr(0x02, 0, 0, 0, 0, 1),
                                     Ipv4Addr(10, 0, 0, 1),
                                     Ipv4Addr(10, 0, 0, 2));
  ParsedPacket parsed = ParsePacket(arp, ParseDepth::kL7);
  EXPECT_FALSE(SetPacketField(parsed, FieldId::kIpSrc, 1));
  EXPECT_FALSE(SetPacketField(parsed, FieldId::kL4SrcPort, 1));
  EXPECT_FALSE(SetPacketField(parsed, FieldId::kPacketId, 1));
}

TEST(FieldMapTest, PresenceTracking) {
  FieldMap f;
  EXPECT_FALSE(f.Has(FieldId::kIpSrc));
  EXPECT_EQ(f.Get(FieldId::kIpSrc), std::nullopt);
  f.Set(FieldId::kIpSrc, 7);
  EXPECT_TRUE(f.Has(FieldId::kIpSrc));
  EXPECT_EQ(f.Get(FieldId::kIpSrc), 7u);
  f.Clear(FieldId::kIpSrc);
  EXPECT_FALSE(f.Has(FieldId::kIpSrc));
}

TEST(FieldMapTest, LayersAssigned) {
  EXPECT_EQ(LayerOf(FieldId::kEthSrc), FieldLayer::kL2);
  EXPECT_EQ(LayerOf(FieldId::kArpOp), FieldLayer::kL3);
  EXPECT_EQ(LayerOf(FieldId::kIpDst), FieldLayer::kL3);
  EXPECT_EQ(LayerOf(FieldId::kL4DstPort), FieldLayer::kL4);
  EXPECT_EQ(LayerOf(FieldId::kDhcpYiaddr), FieldLayer::kL7);
  EXPECT_EQ(LayerOf(FieldId::kInPort), FieldLayer::kMeta);
  EXPECT_EQ(LayerOf(FieldId::kPacketId), FieldLayer::kMeta);
}

}  // namespace
}  // namespace swmon
