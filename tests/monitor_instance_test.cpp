// Instance identification (Feature 8): indexed vs linear stores, multiple
// match, wandering match, and suppression.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "monitor/engine.hpp"
#include "monitor/property_builder.hpp"
#include "telemetry_helpers.hpp"

namespace swmon {
namespace {

DataplaneEvent Ev(DataplaneEventType type, std::int64_t ms,
                  std::initializer_list<std::pair<FieldId, std::uint64_t>> kv) {
  DataplaneEvent ev;
  ev.type = type;
  ev.time = SimTime::Zero() + Duration::Millis(ms);
  for (const auto& [k, v] : kv) ev.fields.Set(k, v);
  return ev;
}

constexpr std::uint64_t kForward =
    static_cast<std::uint64_t>(EgressActionValue::kForward);

/// Learning-switch link-down shape (multiple match).
Property MultiMatch() {
  PropertyBuilder b("multi", "test");
  const VarId D = b.Var("D");
  b.AddStage("learn").Match(PatternBuilder::Arrival().Build()).Bind(
      D, FieldId::kEthSrc);
  b.AddStage("link down")
      .Match(PatternBuilder::LinkStatus().Eq(FieldId::kLinkUp, 0).Build());
  b.AddStage("stale unicast")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kEthDst, D)
                 .Forwarded()
                 .Build())
      .AbortOn(PatternBuilder::Arrival().EqVar(FieldId::kEthSrc, D).Build());
  return std::move(b).Build();
}

TEST(InstanceTest, MultipleMatchAdvancesAllInstances) {
  MonitorEngine eng(MultiMatch());
  for (std::uint64_t d = 1; d <= 4; ++d)
    eng.ProcessEvent(
        Ev(DataplaneEventType::kArrival, static_cast<int>(d),
           {{FieldId::kEthSrc, d}}));
  EXPECT_EQ(eng.live_instances(), 4u);

  // One link-down advances all four (Feature 8, multiple match).
  eng.ProcessEvent(
      Ev(DataplaneEventType::kLinkStatus, 10, {{FieldId::kLinkUp, 0}}));
  EXPECT_EQ(eng.live_instances(), 4u);
  EXPECT_EQ(EngineStat(eng, "instances_advanced"), 4u);

  // Unicast to D=2 without re-learning: exactly one violation.
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 20,
                      {{FieldId::kEthDst, 2}, {FieldId::kEgressAction, kForward}}));
  ASSERT_EQ(eng.violations().size(), 1u);
  EXPECT_EQ(eng.violations()[0].bindings[0].second, 2u);
}

TEST(InstanceTest, RelearnDischargesAfterLinkDown) {
  MonitorEngine eng(MultiMatch());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 1, {{FieldId::kEthSrc, 9}}));
  eng.ProcessEvent(
      Ev(DataplaneEventType::kLinkStatus, 2, {{FieldId::kLinkUp, 0}}));
  // D re-announces: the stale-unicast obligation is discharged...
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 3, {{FieldId::kEthSrc, 9}}));
  EXPECT_EQ(EngineStat(eng, "instances_aborted"), 1u);
  // ...and the same event creates a fresh stage-1 instance.
  EXPECT_EQ(eng.live_instances(), 1u);
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 4,
                      {{FieldId::kEthDst, 9}, {FieldId::kEgressAction, kForward}}));
  EXPECT_TRUE(eng.violations().empty());
}

TEST(InstanceTest, LinkUpEventsDoNotAdvance) {
  MonitorEngine eng(MultiMatch());
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 1, {{FieldId::kEthSrc, 9}}));
  eng.ProcessEvent(
      Ev(DataplaneEventType::kLinkStatus, 2, {{FieldId::kLinkUp, 1}}));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 3,
                      {{FieldId::kEthDst, 9}, {FieldId::kEgressAction, kForward}}));
  EXPECT_TRUE(eng.violations().empty());
}

/// DHCP+ARP shape: stage 0 binds DHCP fields, stage 1 matches ARP fields.
Property Wandering() {
  PropertyBuilder b("wandering", "test");
  const VarId A = b.Var("A");
  b.AddStage("lease").Match(PatternBuilder::Egress().Build()).Bind(
      A, FieldId::kDhcpYiaddr);
  b.AddStage("arp request").Match(PatternBuilder::Arrival()
                                      .Eq(FieldId::kArpOp, 1)
                                      .EqVar(FieldId::kArpTargetIp, A)
                                      .Build());
  b.IdMode(InstanceIdMode::kWandering);
  return std::move(b).Build();
}

TEST(InstanceTest, WanderingMatchCrossesProtocols) {
  MonitorEngine eng(Wandering());
  eng.ProcessEvent(
      Ev(DataplaneEventType::kEgress, 0, {{FieldId::kDhcpYiaddr, 42}}));
  // ARP request for the DHCP-bound address completes the pattern.
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 1,
                      {{FieldId::kArpOp, 1}, {FieldId::kArpTargetIp, 42}}));
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(InstanceTest, SuppressionBlocksCreation) {
  PropertyBuilder b("suppress", "no direct reply without prior");
  b.AddStage("direct reply")
      .Match(PatternBuilder::Egress().Eq(FieldId::kArpOp, 2).Build());
  b.SuppressionKey({FieldId::kArpSenderIp});
  b.SuppressWhen(
      PatternBuilder::Arrival().Eq(FieldId::kArpOp, 2).Build(),
      {FieldId::kArpSenderIp});
  MonitorEngine eng(std::move(b).Build());

  // A reply that traversed the switch (arrival) suppresses its address...
  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0,
                      {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 5}}));
  // ...so the forwarded egress is fine:
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1,
                      {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 5}}));
  EXPECT_TRUE(eng.violations().empty());
  EXPECT_EQ(EngineStat(eng, "suppressed_creations"), 1u);
  // A fabricated reply for a never-seen address violates:
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 2,
                      {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 6}}));
  EXPECT_EQ(eng.violations().size(), 1u);
}

TEST(InstanceTest, SuppressorRunsAfterCreationOnSameEvent) {
  // The violating egress itself must not pre-suppress its own creation,
  // but it DOES suppress subsequent ones when listed as a suppressor.
  PropertyBuilder b("suppress-order", "test");
  b.AddStage("reply")
      .Match(PatternBuilder::Egress().Eq(FieldId::kArpOp, 2).Build());
  b.SuppressionKey({FieldId::kArpSenderIp});
  b.SuppressWhen(
      PatternBuilder::Egress().Eq(FieldId::kArpOp, 2).Build(),
      {FieldId::kArpSenderIp});
  MonitorEngine eng(std::move(b).Build());
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 0,
                      {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 5}}));
  EXPECT_EQ(eng.violations().size(), 1u);  // first fabrication reported
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1,
                      {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 5}}));
  EXPECT_EQ(eng.violations().size(), 1u);  // repeats suppressed
}

// The indexed store and the forced-linear store must agree exactly.
class StoreEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreEquivalenceTest, IndexedMatchesLinear) {
  Rng rng(GetParam());
  MonitorConfig linear;
  linear.force_linear_store = true;

  PropertyBuilder b("equiv", "firewall shape");
  const VarId A = b.Var("A"), B = b.Var("B");
  b.AddStage("out")
      .Match(PatternBuilder::Arrival().Eq(FieldId::kInPort, 1).Build())
      .Bind(A, FieldId::kIpSrc)
      .Bind(B, FieldId::kIpDst)
      .Window(Duration::Millis(500))
      .RefreshOnRematch();
  b.AddStage("drop").Match(PatternBuilder::Egress()
                               .EqVar(FieldId::kIpSrc, B)
                               .EqVar(FieldId::kIpDst, A)
                               .Dropped()
                               .Build());
  Property prop = std::move(b).Build();

  MonitorEngine indexed(prop, MonitorConfig{});
  MonitorEngine scan(prop, linear);

  for (int i = 0; i < 400; ++i) {
    const std::uint64_t src = rng.NextBelow(8), dst = rng.NextBelow(8);
    DataplaneEvent ev;
    ev.time = SimTime::Zero() + Duration::Millis(i * 7);
    if (rng.NextBool(0.5)) {
      ev.type = DataplaneEventType::kArrival;
      ev.fields.Set(FieldId::kInPort, 1);
      ev.fields.Set(FieldId::kIpSrc, src);
      ev.fields.Set(FieldId::kIpDst, dst);
    } else {
      ev.type = DataplaneEventType::kEgress;
      ev.fields.Set(FieldId::kIpSrc, src);
      ev.fields.Set(FieldId::kIpDst, dst);
      ev.fields.Set(FieldId::kEgressAction,
                    rng.NextBool(0.5)
                        ? static_cast<std::uint64_t>(EgressActionValue::kDrop)
                        : static_cast<std::uint64_t>(
                              EgressActionValue::kForward));
    }
    indexed.ProcessEvent(ev);
    scan.ProcessEvent(ev);
    ASSERT_EQ(indexed.live_instances(), scan.live_instances()) << "step " << i;
    ASSERT_EQ(indexed.violations().size(), scan.violations().size())
        << "step " << i;
  }
  // The indexed store must have examined no MORE candidates than the scan.
  EXPECT_LE(EngineStat(indexed, "candidate_checks"),
            EngineStat(scan, "candidate_checks"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 47));

TEST(InstanceTest, UnboundLinkVarFallsBackToScan) {
  // Stage 2's link var (X) is bound at stage 1, not stage 0 — instances at
  // stage 1 wait with X unbound and must still be matchable.
  PropertyBuilder b("latebind", "test");
  const VarId A = b.Var("A"), X = b.Var("X");
  b.AddStage("s0").Match(PatternBuilder::Arrival().Build()).Bind(
      A, FieldId::kIpSrc);
  b.AddStage("s1")
      .Match(PatternBuilder::Egress().EqVar(FieldId::kIpSrc, A).Build())
      .Bind(X, FieldId::kOutPort);
  b.AddStage("s2").Match(
      PatternBuilder::Egress().EqVar(FieldId::kOutPort, X).Dropped().Build());
  MonitorEngine eng(std::move(b).Build());

  eng.ProcessEvent(Ev(DataplaneEventType::kArrival, 0, {{FieldId::kIpSrc, 1}}));
  eng.ProcessEvent(Ev(DataplaneEventType::kEgress, 1,
                      {{FieldId::kIpSrc, 1}, {FieldId::kOutPort, 4}}));
  eng.ProcessEvent(
      Ev(DataplaneEventType::kEgress, 2,
         {{FieldId::kOutPort, 4},
          {FieldId::kEgressAction,
           static_cast<std::uint64_t>(EgressActionValue::kDrop)}}));
  EXPECT_EQ(eng.violations().size(), 1u);
}

}  // namespace
}  // namespace swmon
