// Differential harness for the compiled bytecode engine: CompiledEngine
// must be observationally bit-identical to the reference interpreter
// (MonitorEngine) — same violation streams (instance ids, binding order),
// same counters for everything CollectInto publishes — on fuzz seed
// streams and the full property catalog, serially and through the
// 1/2/4-worker parallel set. Also covers engine selection (MonitorConfig /
// SWMON_ENGINE / fallback rules), the serialize → parse → compile round
// trip for the 13 Table-1 properties, and minimized regressions for the
// two interpreter hot-path bugs the differential harness originally
// exposed (repro streams under tests/data/).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "daemon/event_source.hpp"
#include "monitor/compiled/bytecode.hpp"
#include "monitor/compiled/engine.hpp"
#include "monitor/engine.hpp"
#include "monitor/monitor_set.hpp"
#include "monitor/parallel_monitor_set.hpp"
#include "monitor/property_builder.hpp"
#include "properties/catalog.hpp"
#include "spl/spl.hpp"
#include "telemetry_helpers.hpp"

namespace swmon {
namespace {

/// The EngineFuzz event soup (fuzz_test.cpp): random types, random field
/// sprinkles in a small value range so stages actually chain and violate.
std::vector<DataplaneEvent> FuzzSeedStream(std::uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  SimTime t = SimTime::Zero();
  for (int i = 0; i < count; ++i) {
    DataplaneEvent ev;
    t = t + Duration::Millis(1 + static_cast<std::int64_t>(rng.NextBelow(50)));
    ev.time = t;
    const auto roll = rng.NextBelow(10);
    ev.type = roll < 4   ? DataplaneEventType::kArrival
              : roll < 8 ? DataplaneEventType::kEgress
                         : DataplaneEventType::kLinkStatus;
    for (std::size_t f = 0; f < kNumFieldIds; ++f) {
      if (rng.NextBool(0.35))
        ev.fields.Set(static_cast<FieldId>(f), rng.NextBelow(8));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<Property> Table1Properties() {
  std::vector<Property> props;
  for (const CatalogEntry& e : BuildCatalog())
    if (e.in_table1) props.push_back(e.property);
  return props;
}

void ExpectViolationEq(const Violation& a, const Violation& b,
                       const std::string& label) {
  EXPECT_EQ(a.property, b.property) << label;
  EXPECT_EQ(a.time, b.time) << label;
  EXPECT_EQ(a.instance_id, b.instance_id) << label;
  EXPECT_EQ(a.trigger_stage, b.trigger_stage) << label;
  EXPECT_EQ(a.bindings, b.bindings) << label;
  EXPECT_EQ(a.history.size(), b.history.size()) << label;
}

/// The full observational contract between the two engines after both
/// consumed the same stream: violation-by-violation equality plus every
/// counter and gauge CollectInto publishes.
void ExpectEnginesAgree(const PropertyMonitor& interpreted,
                        const PropertyMonitor& compiled,
                        const std::string& label) {
  const auto& va = interpreted.violations();
  const auto& vb = compiled.violations();
  ASSERT_EQ(va.size(), vb.size()) << label;
  for (std::size_t i = 0; i < va.size(); ++i)
    ExpectViolationEq(va[i], vb[i], label + " [" + std::to_string(i) + "]");

  EXPECT_EQ(interpreted.live_instances(), compiled.live_instances()) << label;
  EXPECT_EQ(interpreted.now(), compiled.now()) << label;

  telemetry::Snapshot sa, sb;
  interpreted.CollectInto(sa, "e");
  compiled.CollectInto(sb, "e");
  for (const auto& [name, sample] : sa.samples()) {
    ASSERT_TRUE(sb.Has(name)) << label << " compiled missing " << name;
    EXPECT_TRUE(sample == sb.samples().at(name)) << label << " at " << name;
  }
  // The compiled engine additionally publishes its OpenMap probe telemetry
  // (monitor.compiled.*), which the interpreter has no counterpart for;
  // everything else must match name-for-name.
  std::size_t sb_shared = 0;
  for (const auto& [name, sample] : sb.samples())
    if (name.rfind("monitor.compiled.", 0) != 0) ++sb_shared;
  EXPECT_EQ(sa.size(), sb_shared) << label;
}

/// Builds via the factory and asserts the compiled engine actually got
/// selected — a silent interpreter fallback would make every differential
/// assertion vacuously true.
std::unique_ptr<PropertyMonitor> MakeCompiled(Property p,
                                              MonitorConfig config = {}) {
  config.engine = EngineKind::kCompiled;
  auto m = CreatePropertyMonitor(std::move(p), config);
  EXPECT_NE(dynamic_cast<CompiledEngine*>(m.get()), nullptr)
      << m->property().name;
  return m;
}

std::size_t RunDifferential(const Property& prop, MonitorConfig config,
                            const std::vector<DataplaneEvent>& events,
                            const std::string& label) {
  config.engine = EngineKind::kInterpreted;
  auto interp = CreatePropertyMonitor(prop, config);
  auto comp = MakeCompiled(prop, config);
  for (const DataplaneEvent& ev : events) {
    interp->ProcessEvent(ev);
    comp->ProcessEvent(ev);
  }
  const SimTime end = events.back().time + Duration::Seconds(300);
  interp->AdvanceTime(end);
  comp->AdvanceTime(end);
  ExpectEnginesAgree(*interp, *comp, label);
  return interp->violations().size();
}

// ------------------------------------------------- catalog differential

TEST(CompiledDifferentialTest, WholeCatalogMatchesInterpreterOnFuzzSoup) {
  std::size_t total_violations = 0;
  for (const CatalogEntry& e : BuildCatalog()) {
    ASSERT_TRUE(compiled::CompileProperty(e.property).has_value()) << e.id;
    for (const std::uint64_t seed : {11ull, 29ull}) {
      const auto events = FuzzSeedStream(seed, 1200);
      total_violations += RunDifferential(
          e.property, {}, events,
          std::string(e.id) + " seed=" + std::to_string(seed));
    }
  }
  // The soup must actually exercise the engines, not just tie 0 == 0.
  EXPECT_GT(total_violations, 0u);
}

TEST(CompiledDifferentialTest, Table1PropertiesMatchOnLongerStreams) {
  const std::vector<Property> props = Table1Properties();
  ASSERT_EQ(props.size(), 13u);
  std::size_t total_violations = 0;
  for (const Property& p : props) {
    for (const std::uint64_t seed : {99ull, 123ull}) {
      const auto events = FuzzSeedStream(seed, 2500);
      total_violations += RunDifferential(
          p, {}, events, p.name + " seed=" + std::to_string(seed));
    }
  }
  EXPECT_GT(total_violations, 0u);
}

TEST(CompiledDifferentialTest, EvictionAndProvenanceConfigsStayIdentical) {
  // A bounded instance cap exercises the eviction path; kNone strips
  // bindings from reports. Both must lower identically.
  for (const CatalogEntry& e : BuildCatalog()) {
    const auto events = FuzzSeedStream(43, 900);
    MonitorConfig evicting;
    evicting.eviction = EvictionConfig{}.WithMaxInstances(8);
    RunDifferential(e.property, evicting, events,
                    std::string(e.id) + " max_instances=8");
    MonitorConfig bare;
    bare.provenance = ProvenanceLevel::kNone;
    RunDifferential(e.property, bare, events,
                    std::string(e.id) + " provenance=none");
  }
}

// ------------------------------------------------- SPL round trip

TEST(CompiledRoundTripTest, Table1SerializeParseCompileParity) {
  // Table-1 property → SPL text → parser → compiler must preserve
  // violation behaviour exactly; the interpreter on the *original*
  // property is the oracle.
  const auto events = FuzzSeedStream(7, 1500);
  std::size_t total_violations = 0;
  for (const Property& original : Table1Properties()) {
    const std::string text = SerializeSpl(original);
    const auto parsed = ParseSpl(text);
    ASSERT_TRUE(parsed.ok()) << original.name << ": " << parsed.error;
    ASSERT_TRUE(compiled::CompileProperty(*parsed.property).has_value())
        << original.name;

    MonitorEngine interp(original);
    auto comp = MakeCompiled(*parsed.property);
    for (const DataplaneEvent& ev : events) {
      interp.ProcessEvent(ev);
      comp->ProcessEvent(ev);
    }
    const SimTime end = events.back().time + Duration::Seconds(300);
    interp.AdvanceTime(end);
    comp->AdvanceTime(end);
    ExpectEnginesAgree(interp, *comp, "round-trip " + original.name);
    total_violations += interp.violations().size();
  }
  EXPECT_GT(total_violations, 0u);
}

// ------------------------------------------------- engine selection

TEST(EngineSelectionTest, ConfigAndEnvironmentPickTheEngine) {
  const Property prop = FirewallReturnNotDropped();

  MonitorConfig cfg;
  cfg.engine = EngineKind::kCompiled;
  EXPECT_EQ(ResolveEngineKind(prop, cfg), EngineKind::kCompiled);
  EXPECT_NE(dynamic_cast<CompiledEngine*>(
                CreatePropertyMonitor(prop, cfg).get()),
            nullptr);

  cfg.engine = EngineKind::kInterpreted;
  EXPECT_EQ(ResolveEngineKind(prop, cfg), EngineKind::kInterpreted);
  EXPECT_NE(dynamic_cast<MonitorEngine*>(
                CreatePropertyMonitor(prop, cfg).get()),
            nullptr);

  // kDefault: SWMON_ENGINE decides, per call; unset means interpreter.
  cfg.engine = EngineKind::kDefault;
  ::unsetenv("SWMON_ENGINE");
  EXPECT_EQ(ResolveEngineKind(prop, cfg), EngineKind::kInterpreted);
  ::setenv("SWMON_ENGINE", "compiled", 1);
  EXPECT_EQ(ResolveEngineKind(prop, cfg), EngineKind::kCompiled);
  EXPECT_NE(dynamic_cast<CompiledEngine*>(
                CreatePropertyMonitor(prop, cfg).get()),
            nullptr);
  ::setenv("SWMON_ENGINE", "interpreted", 1);
  EXPECT_EQ(ResolveEngineKind(prop, cfg), EngineKind::kInterpreted);
  ::unsetenv("SWMON_ENGINE");
}

TEST(EngineSelectionTest, UnloweredConfigsFallBackToTheInterpreter) {
  const Property prop = FirewallReturnNotDropped();
  MonitorConfig cfg;
  cfg.engine = EngineKind::kCompiled;

  MonitorConfig linear = cfg;
  linear.force_linear_store = true;
  EXPECT_EQ(ResolveEngineKind(prop, linear), EngineKind::kInterpreted);

  MonitorConfig naive = cfg;
  naive.naive_timeout_refresh = true;
  EXPECT_EQ(ResolveEngineKind(prop, naive), EngineKind::kInterpreted);

  MonitorConfig full = cfg;
  full.provenance = ProvenanceLevel::kFull;
  EXPECT_EQ(ResolveEngineKind(prop, full), EngineKind::kInterpreted);
  EXPECT_NE(dynamic_cast<MonitorEngine*>(
                CreatePropertyMonitor(prop, full).get()),
            nullptr);
}

// ------------------------------------------------- parallel parity

/// Serial interpreted reference that also records the stream-order merge
/// (same idiom as parallel_monitor_test.cpp).
struct SerialReference {
  MonitorSet set;
  std::vector<Violation> merged;
};

std::unique_ptr<SerialReference> RunSerialInterpreted(
    const std::vector<Property>& props,
    const std::vector<DataplaneEvent>& events, SimTime final_advance) {
  auto ref = std::make_unique<SerialReference>();
  MonitorConfig cfg;
  cfg.engine = EngineKind::kInterpreted;
  for (const Property& p : props) ref->set.Add(p, cfg);
  std::vector<std::size_t> seen(props.size(), 0);
  const auto collect = [&] {
    for (std::size_t i = 0; i < props.size(); ++i) {
      const auto& v = ref->set.engine(i).violations();
      for (; seen[i] < v.size(); ++seen[i]) ref->merged.push_back(v[seen[i]]);
    }
  };
  for (const DataplaneEvent& ev : events) {
    ref->set.OnDataplaneEvent(ev);
    collect();
  }
  ref->set.AdvanceTime(final_advance);
  collect();
  return ref;
}

class CompiledParallelParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompiledParallelParity, CompiledShardsMatchInterpretedSerial) {
  // The strongest cross-engine claim: all 13 Table-1 properties running
  // compiled across N workers produce the same violation streams AND the
  // same merged telemetry snapshot as the serial interpreter.
  const std::size_t workers = GetParam();
  const std::vector<Property> props = Table1Properties();
  const auto events = FuzzSeedStream(99, 1500);
  const SimTime end = events.back().time + Duration::Seconds(300);
  const auto serial = RunSerialInterpreted(props, events, end);

  ParallelConfig pcfg;
  pcfg.workers = workers;
  pcfg.batch_capacity = 128;
  ParallelMonitorSet parallel(pcfg);
  MonitorConfig mcfg;
  mcfg.engine = EngineKind::kCompiled;
  for (const Property& p : props) {
    PropertyMonitor& eng = parallel.Add(p, mcfg);
    ASSERT_NE(dynamic_cast<CompiledEngine*>(&eng), nullptr) << p.name;
  }
  parallel.Start();
  for (const DataplaneEvent& ev : events) parallel.OnDataplaneEvent(ev);
  parallel.AdvanceTime(end);
  parallel.Stop();

  const std::string label = "workers=" + std::to_string(workers);
  const auto serial_all = serial->set.AllViolations();
  const auto parallel_all = parallel.AllViolations();
  ASSERT_EQ(serial_all.size(), parallel_all.size()) << label;
  EXPECT_GT(serial_all.size(), 0u) << label << " (vacuous parity)";
  for (std::size_t i = 0; i < serial_all.size(); ++i)
    ExpectViolationEq(serial_all[i], parallel_all[i],
                      label + " all[" + std::to_string(i) + "]");

  const auto parallel_merged = parallel.MergedViolations();
  ASSERT_EQ(serial->merged.size(), parallel_merged.size()) << label;
  for (std::size_t i = 0; i < serial->merged.size(); ++i)
    ExpectViolationEq(serial->merged[i], parallel_merged[i],
                      label + " merged[" + std::to_string(i) + "]");

  // Counter parity across engines *and* execution modes in one shot. The
  // parallel snapshot's runtime-only monitor.parallel.* metrics have no
  // serial counterpart, and the compiled engines' monitor.compiled.* probe
  // telemetry has no interpreter counterpart; both sit outside the parity
  // contract.
  const telemetry::Snapshot sa = serial->set.TelemetrySnapshot();
  const telemetry::Snapshot sb = parallel.TelemetrySnapshot();
  std::size_t sb_shared = 0;
  for (const auto& [name, sample] : sb.samples())
    if (name.rfind("monitor.parallel.", 0) != 0 &&
        name.rfind("monitor.compiled.", 0) != 0)
      ++sb_shared;
  for (const auto& [name, sample] : sa.samples()) {
    ASSERT_TRUE(sb.Has(name)) << label << " missing " << name;
    EXPECT_TRUE(sample == sb.samples().at(name)) << label << " at " << name;
  }
  EXPECT_EQ(sa.size(), sb_shared) << label;
}

INSTANTIATE_TEST_SUITE_P(Workers, CompiledParallelParity,
                         ::testing::Values(1u, 2u, 4u));

// ------------------------------------------------- hot-path regressions

/// Loads a daemon-text-protocol repro stream from tests/data/, falling
/// back to `inline_events` when the checked-in file is not reachable from
/// the build tree's cwd. When the file *is* found it is authoritative: the
/// minimized repro the bug report documents.
std::vector<DataplaneEvent> LoadReproStream(
    const std::string& filename, std::vector<DataplaneEvent> inline_events) {
  for (const std::string prefix : {"tests/data/", "../tests/data/"}) {
    std::ifstream in(prefix + filename);
    if (!in.is_open()) continue;
    std::vector<DataplaneEvent> events;
    std::string line;
    while (std::getline(in, line)) {
      DataplaneEvent ev;
      std::string error;
      if (ParseEventLine(line, ev, &error)) {
        events.push_back(std::move(ev));
      } else {
        EXPECT_TRUE(error.empty()) << filename << ": " << error;
      }
    }
    EXPECT_EQ(events.size(), inline_events.size()) << filename;
    return events;
  }
  return inline_events;
}

DataplaneEvent Ev(DataplaneEventType type, std::int64_t ms,
                  std::initializer_list<std::pair<FieldId, std::uint64_t>> kv) {
  DataplaneEvent ev;
  ev.type = type;
  ev.time = SimTime::Zero() + Duration::Millis(ms);
  for (const auto& [k, v] : kv) ev.fields.Set(k, v);
  return ev;
}

TEST(RegressionTest, AbsentLinkFieldStillAdvances) {
  // An allow_absent EqVar condition must not serve as a link key: a keyed
  // lookup projects the event's field values, so an egress *lacking*
  // ip_dst could never reach the instance the condition nonetheless
  // matches. The buggy interpreter missed this violation entirely.
  PropertyBuilder b("regress-absent-link",
                    "egress to A, or with no ip_dst at all");
  const VarId A = b.Var("A");
  b.AddStage("arrival binds A")
      .Match(PatternBuilder::Arrival().Build())
      .Bind(A, FieldId::kIpSrc);
  Pattern absent_or_match;
  absent_or_match.event_type = DataplaneEventType::kEgress;
  absent_or_match.conditions.push_back({FieldId::kIpDst, CmpOp::kEq,
                                        Term::Var(A), ~std::uint64_t{0},
                                        /*allow_absent=*/true});
  b.AddStage("egress lacking or matching dst").Match(std::move(absent_or_match));
  const Property prop = std::move(b).Build();

  const auto events = LoadReproStream(
      "regress_absent_link.events",
      {Ev(DataplaneEventType::kArrival, 1, {{FieldId::kIpSrc, 5}}),
       Ev(DataplaneEventType::kEgress, 2, {{FieldId::kInPort, 7}})});

  MonitorEngine interp(prop);
  auto comp = MakeCompiled(prop);
  for (const DataplaneEvent& ev : events) {
    interp.ProcessEvent(ev);
    comp->ProcessEvent(ev);
  }
  ExpectEnginesAgree(interp, *comp, "absent-link");

  ASSERT_EQ(interp.violations().size(), 1u);  // the buggy engine found 0
  const Violation& v = interp.violations()[0];
  EXPECT_EQ(v.property, "regress-absent-link");
  ASSERT_EQ(v.bindings.size(), 1u);
  EXPECT_EQ(v.bindings[0].first, "A");
  EXPECT_EQ(v.bindings[0].second, 5u);
}

TEST(RegressionTest, RebindRefilesUnderTheNewKey) {
  // A stage that rebinds its own link variable must be unfiled under the
  // OLD environment before the bindings commit. The buggy interpreter
  // removed afterwards — computing a key the store never saw — so a stale
  // entry lingered under the old key and soaked up candidate checks the
  // matching events could no longer cash in.
  PropertyBuilder b("regress-rebind-link", "two egress hops re-keying A");
  const VarId A = b.Var("A");
  b.AddStage("arrival binds A")
      .Match(PatternBuilder::Arrival().Build())
      .Bind(A, FieldId::kIpSrc);
  b.AddStage("two egresses via A, rebinding")
      .Match(PatternBuilder::Egress().EqVar(FieldId::kIpSrc, A).Build())
      .Bind(A, FieldId::kIpDst)
      .Count(2);
  const Property prop = std::move(b).Build();

  const auto events = LoadReproStream(
      "regress_rebind_link.events",
      {Ev(DataplaneEventType::kArrival, 1, {{FieldId::kIpSrc, 1}}),
       Ev(DataplaneEventType::kEgress, 2,
          {{FieldId::kIpSrc, 1}, {FieldId::kIpDst, 2}}),
       Ev(DataplaneEventType::kEgress, 3,
          {{FieldId::kIpSrc, 1}, {FieldId::kIpDst, 9}}),
       Ev(DataplaneEventType::kEgress, 4,
          {{FieldId::kIpSrc, 2}, {FieldId::kIpDst, 3}})});

  MonitorEngine interp(prop);
  auto comp = MakeCompiled(prop);
  for (const DataplaneEvent& ev : events) {
    interp.ProcessEvent(ev);
    comp->ProcessEvent(ev);
  }
  ExpectEnginesAgree(interp, *comp, "rebind-link");

  ASSERT_EQ(interp.violations().size(), 1u);
  const Violation& v = interp.violations()[0];
  ASSERT_EQ(v.bindings.size(), 1u);
  EXPECT_EQ(v.bindings[0].first, "A");
  EXPECT_EQ(v.bindings[0].second, 3u);  // rebound on the completing match
  // Events 2 and 4 each reach the live instance through the keyed store;
  // event 3 (old key, post-rebind) must find an empty bucket. The buggy
  // engine's stale entry made this 3.
  EXPECT_EQ(EngineStat(interp, "candidate_checks"), 2u);
  EXPECT_EQ(EngineStat(*comp, "candidate_checks"), 2u);
}

// ------------------------------------------------- bytecode sanity

TEST(BytecodeTest, DisassemblyNamesEveryStage) {
  // Smoke for the debugging surface: one line per instruction, stage labels
  // and the interest mask present.
  const auto program = compiled::CompileProperty(FirewallReturnNotDropped());
  ASSERT_TRUE(program.has_value());
  const std::string text = compiled::Disassemble(*program);
  EXPECT_NE(text.find("fw-return-not-dropped"), std::string::npos);
  EXPECT_NE(text.find("match"), std::string::npos);
  EXPECT_NE(text.find("bind"), std::string::npos);
}

}  // namespace
}  // namespace swmon
