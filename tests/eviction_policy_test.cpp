// Bounded-memory eviction: policy semantics, engine bit-identity, sharded
// parity, and recall against the unbounded oracle on the adversarial
// state-exhaustion streams. Carries the `adversarial` label (the CI step
// `ctest -L adversarial` runs exactly this family) and `tsan` (the sharded
// parity case crosses the parallel merge).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "monitor/eviction.hpp"
#include "monitor/monitor_set.hpp"
#include "monitor/parallel_monitor_set.hpp"
#include "monitor/property_builder.hpp"
#include "monitor/property_monitor.hpp"
#include "properties/catalog.hpp"
#include "telemetry/snapshot.hpp"
#include "workload/adversarial/adversarial.hpp"
#include "workload/scenario_registry.hpp"

namespace swmon {
namespace {

const std::vector<EvictionPolicy> kAllPolicies = {
    EvictionPolicy::kCreationOrder, EvictionPolicy::kLru,
    EvictionPolicy::kRandom, EvictionPolicy::kTimeoutPriority};

// ------------------------------------------------------------- config API

TEST(EvictionConfigTest, ParseSpec) {
  EvictionConfig cfg;
  std::string err;
  ASSERT_TRUE(ParseEvictionSpec("lru:512", &cfg, &err)) << err;
  EXPECT_EQ(cfg.policy, EvictionPolicy::kLru);
  EXPECT_EQ(cfg.max_instances, 512u);
  EXPECT_EQ(cfg.max_state_bytes, 0u);

  ASSERT_TRUE(ParseEvictionSpec("timeout-priority:0:65536", &cfg, &err))
      << err;
  EXPECT_EQ(cfg.policy, EvictionPolicy::kTimeoutPriority);
  EXPECT_EQ(cfg.max_instances, 0u);
  EXPECT_EQ(cfg.max_state_bytes, 65536u);

  // Aliases and bare policies parse; garbage does not.
  EXPECT_TRUE(ParseEvictionSpec("creation:4", &cfg, &err));
  EXPECT_TRUE(ParseEvictionSpec("timeout:4", &cfg, &err));
  EXPECT_TRUE(ParseEvictionSpec("random:4", &cfg, &err));
  EXPECT_FALSE(ParseEvictionSpec("mru:4", &cfg, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(ParseEvictionSpec("lru:x", &cfg, &err));
  EXPECT_FALSE(ParseEvictionSpec("", &cfg, &err));
}

TEST(EvictionConfigTest, PolicyNamesRoundTrip) {
  for (const EvictionPolicy p : kAllPolicies) {
    EvictionPolicy parsed;
    ASSERT_TRUE(ParseEvictionPolicy(EvictionPolicyName(p), &parsed))
        << EvictionPolicyName(p);
    EXPECT_EQ(parsed, p);
  }
}

TEST(EvictionConfigTest, LegacyMaxInstancesFoldsIntoEviction) {
  MonitorConfig mc;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  mc.max_instances = 77;  // the pre-EvictionConfig knob
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
  // The shim preserves the legacy semantics exactly: oldest-first.
  EvictionConfig e = mc.EffectiveEviction();
  EXPECT_TRUE(e.enabled());
  EXPECT_EQ(e.policy, EvictionPolicy::kCreationOrder);
  EXPECT_EQ(e.max_instances, 77u);

  // The new field wins when set.
  mc.eviction = EvictionConfig{}.WithPolicy(EvictionPolicy::kLru)
                    .WithMaxInstances(5);
  e = mc.EffectiveEviction();
  EXPECT_EQ(e.policy, EvictionPolicy::kLru);
  EXPECT_EQ(e.max_instances, 5u);
}

TEST(EvictionConfigTest, ByteCapTranslatesThroughModelBytes) {
  const std::size_t per = ModelInstanceBytes(4);
  EvictionState st;
  st.Configure(EvictionConfig{}.WithMaxStateBytes(10 * per + per / 2), 4);
  EXPECT_TRUE(st.enabled());
  EXPECT_EQ(st.cap(), 10u);
  EXPECT_TRUE(st.bytes_bound());

  // Instance cap tighter than the byte cap -> capacity-bound.
  st.Configure(EvictionConfig{}
                   .WithMaxInstances(3)
                   .WithMaxStateBytes(100 * per),
               4);
  EXPECT_EQ(st.cap(), 3u);
  EXPECT_FALSE(st.bytes_bound());
}

TEST(EvictionConfigTest, PropertyBuilderCarriesEvictionSetters) {
  PropertyBuilder b("capped", "builder-scoped eviction knobs");
  b.AddStage("s0").Match(
      PatternBuilder::Arrival().Eq(FieldId::kInPort, 1).Build());
  b.AddStage("s1").Match(PatternBuilder::Egress().Dropped().Build());
  b.EvictionPolicyIs(EvictionPolicy::kTimeoutPriority)
      .MaxInstances(12)
      .MaxStateBytes(4096)
      .EvictionSeed(9);
  const EvictionConfig e = b.eviction();
  EXPECT_TRUE(e.enabled());
  EXPECT_EQ(e.policy, EvictionPolicy::kTimeoutPriority);
  EXPECT_EQ(e.max_instances, 12u);
  EXPECT_EQ(e.max_state_bytes, 4096u);
  EXPECT_EQ(e.seed, 9u);

  // Feeds straight into an attachment config.
  const MonitorConfig cfg = MonitorConfig{}.WithEviction(e);
  EXPECT_TRUE(cfg.EffectiveEviction().enabled());
  EXPECT_EQ(cfg.EffectiveEviction().max_instances, 12u);
}

// --------------------------------------------------- victim-order semantics

TEST(EvictionStateTest, PolicyVictimOrder) {
  // Creation order: smallest id regardless of touches.
  EvictionState st;
  st.Configure(EvictionConfig{}.WithMaxInstances(2), 1);
  st.OnCreate(10, 100, 1);
  st.OnCreate(11, 101, 2);
  st.OnTouch(10, 3);
  EXPECT_EQ(st.PickVictim().id, 10u);

  // LRU: the touch moves 10 behind 11.
  EvictionState lru;
  lru.Configure(
      EvictionConfig{}.WithPolicy(EvictionPolicy::kLru).WithMaxInstances(2),
      1);
  lru.OnCreate(10, 100, 1);
  lru.OnCreate(11, 101, 2);
  lru.OnTouch(10, 3);
  EXPECT_EQ(lru.PickVictim().id, 11u);

  // Timeout priority: furthest deadline first; no deadline = furthest;
  // ties break to the smallest id.
  EvictionState tp;
  tp.Configure(EvictionConfig{}
                   .WithPolicy(EvictionPolicy::kTimeoutPriority)
                   .WithMaxInstances(3),
               1);
  tp.OnCreate(1, 0, 1);
  tp.OnCreate(2, 0, 2);
  tp.OnCreate(3, 0, 3);
  tp.OnDeadline(1, 1'000);   // nearest deadline — most worth keeping
  tp.OnDeadline(2, 9'000);
  EXPECT_EQ(tp.PickVictim().id, 3u);  // deadline-free goes first
  tp.OnDestroy(3);
  EXPECT_EQ(tp.PickVictim().id, 2u);
  tp.OnDestroy(2);
  EXPECT_EQ(tp.PickVictim().id, 1u);
}

TEST(EvictionStateTest, RandomIsDeterministicFromSeed) {
  const auto run = [](std::uint64_t seed) {
    EvictionState st;
    st.Configure(EvictionConfig{}
                     .WithPolicy(EvictionPolicy::kRandom)
                     .WithMaxInstances(4)
                     .WithSeed(seed),
                 1);
    for (std::uint64_t id = 1; id <= 32; ++id) st.OnCreate(id, id, id);
    std::vector<std::uint64_t> order;
    for (int i = 0; i < 8; ++i) {
      const auto v = st.PickVictim();
      order.push_back(v.id);
      st.OnDestroy(v.id);
    }
    return order;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

// ----------------------------------------------- engine bit-identity

/// Random event soup matching telemetry_parity_test's: enough field
/// collisions that instances chain, arm timers, refresh, and evict.
std::vector<DataplaneEvent> EventSoup(std::uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  SimTime t = SimTime::Zero();
  for (int i = 0; i < count; ++i) {
    DataplaneEvent ev;
    t = t + Duration::Millis(1 + static_cast<std::int64_t>(rng.NextBelow(40)));
    ev.time = t;
    const auto roll = rng.NextBelow(10);
    ev.type = roll < 4   ? DataplaneEventType::kArrival
              : roll < 8 ? DataplaneEventType::kEgress
                         : DataplaneEventType::kLinkStatus;
    for (std::size_t f = 0; f < kNumFieldIds; ++f) {
      if (rng.NextBool(0.35))
        ev.fields.Set(static_cast<FieldId>(f), rng.NextBelow(8));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

/// Runs `events` through one engine kind and returns it, time advanced
/// past every deadline.
std::unique_ptr<PropertyMonitor> RunEngine(const Property& p,
                                           MonitorConfig cfg, EngineKind kind,
                                           const std::vector<DataplaneEvent>& events,
                                           SimTime horizon) {
  cfg.engine = kind;
  auto m = CreatePropertyMonitor(p, cfg);
  for (const DataplaneEvent& ev : events) m->ProcessEvent(ev);
  m->AdvanceTime(horizon);
  return m;
}

/// Observational bit-identity: every violation field (including instance
/// ids) and every engine-neutral telemetry sample must agree.
std::uint64_t ExpectEnginesIdentical(const Property& p,
                                     const MonitorConfig& cfg,
                                     const std::vector<DataplaneEvent>& events,
                                     SimTime horizon,
                                     const std::string& what) {
  const auto interp =
      RunEngine(p, cfg, EngineKind::kInterpreted, events, horizon);
  const auto compiled =
      RunEngine(p, cfg, EngineKind::kCompiled, events, horizon);

  const auto& vi = interp->violations();
  const auto& vc = compiled->violations();
  EXPECT_EQ(vi.size(), vc.size()) << what;
  if (vi.size() != vc.size()) return 0;
  for (std::size_t i = 0; i < vi.size(); ++i) {
    EXPECT_EQ(vi[i].instance_id, vc[i].instance_id) << what << " #" << i;
    EXPECT_EQ(vi[i].time.nanos(), vc[i].time.nanos()) << what << " #" << i;
    EXPECT_EQ(vi[i].trigger_stage_index, vc[i].trigger_stage_index)
        << what << " #" << i;
    EXPECT_EQ(vi[i].bindings, vc[i].bindings) << what << " #" << i;
  }

  telemetry::Snapshot si, sc;
  interp->CollectInto(si, "e");
  compiled->CollectInto(sc, "e");
  for (const auto& [name, sample] : si.samples()) {
    EXPECT_TRUE(sc.Has(name)) << what << " compiled missing " << name;
    if (sc.Has(name)) {
      EXPECT_TRUE(sample == sc.samples().at(name)) << what << " at " << name;
    }
  }
  // (monitor.compiled.* extras are allowed; everything else must exist in
  // both and match — the loop above covers the interpreted set, and the
  // eviction counters/gauges are all in it.)
  return si.counter("monitor.engine.e.instances_evicted");
}

TEST(EvictionEngineParity, BitIdenticalOnFuzzSoupUnderEveryPolicy) {
  const auto events = EventSoup(/*seed=*/4242, /*count=*/1500);
  const SimTime horizon = events.back().time + Duration::Seconds(300);
  std::uint64_t evicted = 0;  // some properties never exceed a cap of 4;
                              // the soup must trip eviction somewhere
  for (const CatalogEntry& e : BuildCatalog()) {
    if (!e.in_table1) continue;
    for (const EvictionPolicy policy : kAllPolicies) {
      MonitorConfig cfg;
      cfg.eviction =
          EvictionConfig{}.WithPolicy(policy).WithMaxInstances(4);
      evicted += ExpectEnginesIdentical(e.property, cfg, events, horizon,
                                        std::string(e.id) + "/" +
                                            EvictionPolicyName(policy));
    }
  }
  EXPECT_GT(evicted, 0u);
}

TEST(EvictionEngineParity, BitIdenticalUnderByteCap) {
  // The evasion flood guarantees live-instance pressure, so a byte cap
  // sized for ~24 instances must evict — and bit-identically so.
  const AdversarialStream stream = FirewallEvasionStream({});
  const std::size_t nv = stream.property.num_vars();
  std::uint64_t evicted = 0;
  for (const EvictionPolicy policy : kAllPolicies) {
    MonitorConfig cfg;
    cfg.eviction = EvictionConfig{}.WithPolicy(policy).WithMaxStateBytes(
        24 * ModelInstanceBytes(nv));
    evicted +=
        ExpectEnginesIdentical(stream.property, cfg, stream.events,
                               stream.horizon,
                               std::string("bytecap/") +
                                   EvictionPolicyName(policy));
  }
  EXPECT_GT(evicted, 0u);
}

TEST(EvictionEngineParity, BitIdenticalOnAdversarialStreams) {
  for (const std::string& name : AdversarialStreamNames()) {
    AdversarialParams ap;
    ap.attackers = 96;
    ap.victims = 6;
    const AdversarialStream stream = MakeAdversarialStream(name, ap);
    for (const EvictionPolicy policy : kAllPolicies) {
      MonitorConfig cfg;
      cfg.eviction =
          EvictionConfig{}.WithPolicy(policy).WithMaxInstances(24);
      ExpectEnginesIdentical(stream.property, cfg, stream.events,
                             stream.horizon,
                             name + "/" + EvictionPolicyName(policy));
    }
  }
}

// ------------------------------------------------------ oracle recall

TEST(AdversarialRecall, UnboundedDefaultMatchesOracleExactly) {
  // Pay-for-what-you-use: a default config IS the oracle — recall 1.0,
  // nothing spurious, nothing evicted.
  for (const std::string& name : AdversarialStreamNames()) {
    AdversarialParams ap;
    ap.attackers = 64;
    const AdversarialStream stream = MakeAdversarialStream(name, ap);
    const RecallReport r = MeasureRecall(stream, MonitorConfig{});
    EXPECT_EQ(r.oracle_violations, stream.planted) << name;
    EXPECT_EQ(r.detected, r.oracle_violations) << name;
    EXPECT_EQ(r.spurious, 0u) << name;
    EXPECT_EQ(r.evictions, 0u) << name;
    EXPECT_DOUBLE_EQ(r.Recall(), 1.0) << name;
  }
}

TEST(AdversarialRecall, EvasionBeatsCreationOrderButNotTimeoutPriority) {
  // The tentpole's headline asymmetry, on both deadline-carrying streams:
  // the flood pushes the victims out under kCreationOrder (recall 0) while
  // kTimeoutPriority sheds the attackers — their deadlines are furthest —
  // and keeps recall at 1.0 with the same cap.
  for (const std::string& name : {std::string("fw_evasion"),
                                  std::string("dhcp_starvation")}) {
    AdversarialParams ap;
    ap.attackers = 200;
    ap.victims = 8;
    const AdversarialStream stream = MakeAdversarialStream(name, ap);
    const std::size_t cap = 32;  // >> victims, << victims + attackers

    MonitorConfig fifo;
    fifo.eviction = EvictionConfig{}
                        .WithPolicy(EvictionPolicy::kCreationOrder)
                        .WithMaxInstances(cap);
    const RecallReport rf = MeasureRecall(stream, fifo);
    EXPECT_EQ(rf.oracle_violations, stream.planted) << name;
    EXPECT_EQ(rf.detected, 0u) << name;
    EXPECT_GT(rf.evictions, 0u) << name;

    MonitorConfig tp;
    tp.eviction = EvictionConfig{}
                      .WithPolicy(EvictionPolicy::kTimeoutPriority)
                      .WithMaxInstances(cap);
    const RecallReport rt = MeasureRecall(stream, tp);
    EXPECT_EQ(rt.detected, rt.oracle_violations) << name;
    EXPECT_DOUBLE_EQ(rt.Recall(), 1.0) << name;
    EXPECT_GT(rt.evictions, 0u) << name;
  }
}

TEST(AdversarialRecall, DeadlineFreePropertiesGetNoMitigation) {
  // portknock_storm / nat_churn target window-less properties: every
  // instance is deadline-free, so kTimeoutPriority degenerates to
  // creation order and the storm defeats both (the documented negative
  // result).
  for (const std::string& name : {std::string("portknock_storm"),
                                  std::string("nat_churn")}) {
    AdversarialParams ap;
    ap.attackers = 200;
    ap.victims = 8;
    const AdversarialStream stream = MakeAdversarialStream(name, ap);
    for (const EvictionPolicy policy :
         {EvictionPolicy::kCreationOrder, EvictionPolicy::kTimeoutPriority}) {
      MonitorConfig cfg;
      cfg.eviction =
          EvictionConfig{}.WithPolicy(policy).WithMaxInstances(32);
      const RecallReport r = MeasureRecall(stream, cfg);
      EXPECT_EQ(r.oracle_violations, stream.planted) << name;
      EXPECT_EQ(r.detected, 0u)
          << name << "/" << EvictionPolicyName(policy);
    }
  }
}

TEST(AdversarialRecall, FuzzSoupRecallNeverExceedsOracle) {
  // Differential on unstructured input: bounded runs report a subset of
  // the oracle's violations (no spurious reports from eviction) for every
  // policy — eviction may only lose, never invent.
  const Property p = FirewallReturnNotDroppedTimeout();
  AdversarialStream stream;
  stream.name = "fuzz";
  stream.property = p;
  stream.events = EventSoup(/*seed=*/31337, /*count=*/2500);
  stream.horizon = stream.events.back().time + Duration::Seconds(300);
  for (const EvictionPolicy policy : kAllPolicies) {
    MonitorConfig cfg;
    cfg.eviction = EvictionConfig{}.WithPolicy(policy).WithMaxInstances(3);
    const RecallReport r = MeasureRecall(stream, cfg);
    EXPECT_EQ(r.spurious, 0u) << EvictionPolicyName(policy);
    EXPECT_LE(r.detected, r.oracle_violations) << EvictionPolicyName(policy);
  }
}

// --------------------------------------------------- sharded parity

TEST(EvictionShardedParity, MergedCountersExactAtEveryWorkerCount) {
  // Eviction-enabled properties are ineligible for instance sharding
  // (victim order is global), so they property-shard; the merged
  // violations and eviction counters must equal the serial run's exactly
  // at every worker count.
  const AdversarialStream stream = FirewallEvasionStream({});
  const Property dhcp = DhcpReplyDeadline();

  const auto cfg_for = [](EvictionPolicy policy) {
    MonitorConfig cfg;
    cfg.eviction = EvictionConfig{}.WithPolicy(policy).WithMaxInstances(16);
    return cfg;
  };

  MonitorSet serial;
  serial.Add(stream.property, cfg_for(EvictionPolicy::kCreationOrder));
  serial.Add(dhcp, cfg_for(EvictionPolicy::kTimeoutPriority));
  for (const DataplaneEvent& ev : stream.events)
    serial.OnDataplaneEvent(ev);
  serial.AdvanceTime(stream.horizon);
  const telemetry::Snapshot want = serial.TelemetrySnapshot();

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    ParallelConfig pc;
    pc.workers = workers;
    pc.batch_capacity = 64;
    ParallelMonitorSet parallel(pc);
    parallel.Add(stream.property, cfg_for(EvictionPolicy::kCreationOrder));
    parallel.Add(dhcp, cfg_for(EvictionPolicy::kTimeoutPriority));
    parallel.Start();
    for (const DataplaneEvent& ev : stream.events)
      parallel.OnDataplaneEvent(ev);
    parallel.AdvanceTime(stream.horizon);
    parallel.Stop();
    const telemetry::Snapshot got = parallel.TelemetrySnapshot();

    for (const auto& [name, sample] : want.samples()) {
      ASSERT_TRUE(got.Has(name))
          << "workers=" << workers << " missing " << name;
      EXPECT_TRUE(sample == got.samples().at(name))
          << "workers=" << workers << " diverges at " << name;
    }
    // The eviction telemetry specifically (exact merged counts).
    EXPECT_GT(want.counter("monitor.engine.fw-return-not-dropped-timeout."
                           "evictions.policy.creation-order"),
              0u);
    EXPECT_EQ(got.counter("monitor.engine.fw-return-not-dropped-timeout."
                          "evictions.policy.creation-order"),
              want.counter("monitor.engine.fw-return-not-dropped-timeout."
                           "evictions.policy.creation-order"));
  }
}

// ---------------------------------------------- hot lifecycle of a cap

TEST(EvictionLifecycle, HotAttachDetachCappedPropertyLeavesResidentsAlone) {
  const AdversarialStream stream = DhcpStarvationStream({});
  const std::size_t half = stream.events.size() / 2;
  const std::size_t three_quarters = (stream.events.size() * 3) / 4;

  const auto resident_violations = [&](bool with_capped) {
    MonitorSet set;
    set.Add(FirewallReturnNotDroppedTimeout());
    PropertyId capped = 0;
    std::vector<Violation> drained;
    for (std::size_t i = 0; i < stream.events.size(); ++i) {
      if (with_capped && i == half) {
        MonitorConfig cfg;
        cfg.eviction = EvictionConfig{}
                           .WithPolicy(EvictionPolicy::kLru)
                           .WithMaxInstances(8);
        capped = set.AttachProperty(stream.property, cfg);
      }
      if (with_capped && i == three_quarters) {
        auto got = set.DetachProperty(capped);
        EXPECT_TRUE(got.has_value());
        if (got) drained = std::move(*got);
      }
      set.OnDataplaneEvent(stream.events[i]);
    }
    set.AdvanceTime(stream.horizon);
    return set.AllViolations();
  };

  const auto base = resident_violations(false);
  const auto with = resident_violations(true);
  ASSERT_EQ(base.size(), with.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].property, with[i].property);
    EXPECT_EQ(base[i].time.nanos(), with[i].time.nanos());
    EXPECT_EQ(base[i].instance_id, with[i].instance_id);
  }
}

// ------------------------------------------------------ registry sanity

TEST(ScenarioRegistryTest, CoversDeviceScenariosAndAdversarialFamily) {
  EXPECT_GE(ScenarioRegistryEntries().size(), 13u);
  for (const char* name :
       {"firewall", "nat", "learning", "arp", "portknock", "lb", "ftp",
        "dhcp", "dhcp_arp", "adversarial:fw_evasion",
        "adversarial:dhcp_starvation", "adversarial:portknock_storm",
        "adversarial:nat_churn"}) {
    EXPECT_TRUE(HasScenario(name)) << name;
  }
  EXPECT_FALSE(HasScenario("nope"));
}

TEST(ScenarioRegistryTest, RunsByNameWithTraceCapture) {
  ScenarioOptions opts;
  opts.keep_trace = true;
  const auto fw = RunScenarioByName("firewall", /*faulted=*/true, opts);
  EXPECT_GT(fw.packets_injected, 0u);
  EXPECT_GT(fw.TotalViolations(), 0u);
  ASSERT_NE(fw.trace, nullptr);
  EXPECT_GT(fw.trace->size(), 0u);

  const auto adv =
      RunScenarioByName("adversarial:fw_evasion", /*faulted=*/true, opts);
  EXPECT_GT(adv.packets_injected, 0u);
  EXPECT_EQ(adv.TotalViolations(), 8u);  // default AdversarialParams victims
  ASSERT_NE(adv.trace, nullptr);
  EXPECT_EQ(adv.trace->size(),
            FirewallEvasionStream({}).events.size());

  const auto unknown = RunScenarioByName("nope", true, {});
  EXPECT_EQ(unknown.packets_injected, 0u);
}

TEST(ScenarioRegistryTest, StreamsAreDeterministicFromSeed) {
  for (const std::string& name : AdversarialStreamNames()) {
    AdversarialParams ap;
    ap.seed = 5;
    const auto a = MakeAdversarialStream(name, ap);
    const auto b = MakeAdversarialStream(name, ap);
    ap.seed = 6;
    const auto c = MakeAdversarialStream(name, ap);
    ASSERT_EQ(a.events.size(), b.events.size()) << name;
    bool same_times = true, same_as_c = a.events.size() == c.events.size();
    for (std::size_t i = 0; i < a.events.size(); ++i) {
      same_times &= a.events[i].time.nanos() == b.events[i].time.nanos();
      if (same_as_c)
        same_as_c &= a.events[i].time.nanos() == c.events[i].time.nanos();
    }
    EXPECT_TRUE(same_times) << name;
    EXPECT_FALSE(same_as_c) << name << " seed must perturb the stream";
  }
}

}  // namespace
}  // namespace swmon
