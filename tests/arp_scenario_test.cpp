// End-to-end: ARP proxy + Sec-2.3 / T1.1 / T1.2 / T1.13.
#include <gtest/gtest.h>

#include "workload/arp_scenario.hpp"

namespace swmon {
namespace {

TEST(ArpScenarioTest, CorrectProxyIsQuiet) {
  ArpScenarioConfig config;
  const auto out = RunArpScenario(config);
  EXPECT_EQ(out.TotalViolations(), 0u);
}

TEST(ArpScenarioTest, NeverReplyViolatesForwardingAndDeadline) {
  ArpScenarioConfig config;
  config.fault = ArpProxyFault::kNeverReply;
  const auto out = RunArpScenario(config);
  // Known requests are forwarded (T1.1)...
  EXPECT_GT(out.ViolationsOf("arp-known-not-forwarded"), 0u);
  // ...and nobody answers them within the deadline (Sec 2.3).
  EXPECT_GT(out.ViolationsOf("arp-proxy-reply-deadline"), 0u);
}

TEST(ArpScenarioTest, SlowReplyViolatesDeadlineOnly) {
  ArpScenarioConfig config;
  config.fault = ArpProxyFault::kSlowReply;
  const auto out = RunArpScenario(config);
  EXPECT_GT(out.ViolationsOf("arp-proxy-reply-deadline"), 0u);
  EXPECT_EQ(out.ViolationsOf("arp-known-not-forwarded"), 0u);
}

TEST(ArpScenarioTest, BlackholeViolatesUnknownForwarded) {
  ArpScenarioConfig config;
  config.fault = ArpProxyFault::kBlackholeRequests;
  const auto out = RunArpScenario(config);
  EXPECT_GT(out.ViolationsOf("arp-unknown-forwarded"), 0u);
}

TEST(ArpScenarioTest, FabricatedRepliesViolateNoDirectReply) {
  ArpScenarioConfig config;
  config.fault = ArpProxyFault::kReplyUnknown;
  const auto out = RunArpScenario(config);
  EXPECT_GT(out.ViolationsOf("dhcparp-no-direct-reply"), 0u);
}

class ArpSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArpSeedSweep, CorrectProxyNeverAlarms) {
  ArpScenarioConfig config;
  config.options.seed = GetParam();
  config.hosts = 3 + GetParam() % 4;
  config.repeat_requests = 1 + GetParam() % 4;
  EXPECT_EQ(RunArpScenario(config).TotalViolations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArpSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace swmon
