// Instance sharding (ShardMode::kInstance) must be observationally
// identical to serial execution: one property split across N worker
// replicas by instance identity has to reassemble the exact serial
// violation stream (same order, same serial instance ids), the exact
// per-engine counters, and survive hot attach/detach — at every worker
// count and batch schedule. Replays the fuzz seed streams through the 13
// Table-1 catalog properties (shard-eligible ones split, the rest fall
// back to property sharding in the same set) plus a dedicated
// single-hot-property sweep that actually spreads instances across
// replicas. Carries the `tsan` CTest label.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "monitor/monitor_set.hpp"
#include "monitor/parallel_monitor_set.hpp"
#include "monitor/property_builder.hpp"
#include "monitor/shard_plan.hpp"
#include "properties/catalog.hpp"
#include "telemetry/snapshot.hpp"

namespace swmon {
namespace {

/// The EngineFuzz event soup (fuzz_test.cpp): random types, random field
/// sprinkles in a small value range so stages actually chain and violate.
std::vector<DataplaneEvent> FuzzSeedStream(std::uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  SimTime t = SimTime::Zero();
  for (int i = 0; i < count; ++i) {
    DataplaneEvent ev;
    t = t + Duration::Millis(1 + static_cast<std::int64_t>(rng.NextBelow(50)));
    ev.time = t;
    const auto roll = rng.NextBelow(10);
    ev.type = roll < 4   ? DataplaneEventType::kArrival
              : roll < 8 ? DataplaneEventType::kEgress
                         : DataplaneEventType::kLinkStatus;
    for (std::size_t f = 0; f < kNumFieldIds; ++f) {
      if (rng.NextBool(0.35))
        ev.fields.Set(static_cast<FieldId>(f), rng.NextBelow(8));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<Property> Table1Properties() {
  std::vector<Property> props;
  for (const CatalogEntry& e : BuildCatalog())
    if (e.in_table1) props.push_back(e.property);
  return props;
}

/// A shard-eligible two-stage keyed property: arrival binds (A, B); a later
/// drop of the reversed pair violates. Both vars are stage-0 field
/// bindings that stage 1 pins with indexable equalities, so BuildShardPlan
/// accepts it and the producer can route on (src, dst).
Property KeyedPairProperty(const std::string& name) {
  PropertyBuilder b(name, "instance-shard test property");
  const VarId A = b.Var("A"), B = b.Var("B");
  b.AddStage("outbound")
      .Match(PatternBuilder::Arrival().Build())
      .Bind(A, FieldId::kIpSrc)
      .Bind(B, FieldId::kIpDst)
      .Window(Duration::Seconds(60))
      .RefreshOnRematch();
  b.AddStage("return dropped")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kIpSrc, B)
                 .EqVar(FieldId::kIpDst, A)
                 .Dropped()
                 .Build());
  return std::move(b).Build();
}

/// Pair traffic for KeyedPairProperty: arrivals bind (src, dst) pairs from
/// a `keys`-sized space; drop egresses pick random pairs from the same
/// space, so with enough live instances the reversed-pair match actually
/// fires and the property violates (non-vacuous parity).
std::vector<DataplaneEvent> PairStream(std::uint64_t seed, int count,
                                       std::uint64_t keys) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  SimTime t = SimTime::Zero();
  for (int i = 0; i < count; ++i) {
    t = t + Duration::Millis(1);
    DataplaneEvent ev;
    ev.time = t;
    ev.fields.Set(FieldId::kIpSrc, rng.NextBelow(keys));
    ev.fields.Set(FieldId::kIpDst, rng.NextBelow(keys));
    if (rng.NextBool(0.75)) {
      ev.type = DataplaneEventType::kArrival;
    } else {
      ev.type = DataplaneEventType::kEgress;
      ev.fields.Set(FieldId::kEgressAction,
                    static_cast<std::uint64_t>(EgressActionValue::kDrop));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

void ExpectViolationEq(const Violation& a, const Violation& b,
                       const std::string& label) {
  EXPECT_EQ(a.property, b.property) << label;
  EXPECT_EQ(a.time, b.time) << label;
  EXPECT_EQ(a.instance_id, b.instance_id) << label;
  EXPECT_EQ(a.trigger_stage, b.trigger_stage) << label;
  EXPECT_EQ(a.bindings, b.bindings) << label;
  EXPECT_EQ(a.history.size(), b.history.size()) << label;
}

/// Snapshot parity for the sharded path. Excluded from the contract:
///   * monitor.parallel.* — runtime-only metrics a serial set cannot emit;
///   * monitor.compiled.* — the compiled engine's OpenMap probe telemetry
///     is a property of the map's physical layout, which instance sharding
///     genuinely changes (each replica hashes only its own instances), so
///     the replica sums cannot equal the serial engine's counts;
///   * *.timer_stale_pops — stale-entry discard timing is replica-local:
///     a replica's smaller heap reaches (or avoids) lazy pops and
///     compaction rebuilds at different points than the serial engine's
///     one big heap, so at any snapshot instant the sum of entries
///     discarded so far is a valid but not bit-identical accounting of
///     the same work. Everything semantic (events, matches, violations,
///     instance counts, peaks, expiries) must agree exactly.
void ExpectShardedSnapshotEq(const telemetry::Snapshot& a,
                             const telemetry::Snapshot& b,
                             const std::string& label) {
  const auto excluded = [](const std::string& name) {
    if (name.rfind("monitor.parallel.", 0) == 0) return true;
    if (name.rfind("monitor.compiled.", 0) == 0) return true;
    const std::string stale = ".timer_stale_pops";
    return name.size() >= stale.size() &&
           name.compare(name.size() - stale.size(), stale.size(), stale) == 0;
  };
  std::size_t b_shared = 0;
  for (const auto& [name, sample] : b.samples())
    if (!excluded(name)) ++b_shared;
  std::size_t a_shared = 0;
  for (const auto& [name, sample] : a.samples()) {
    if (excluded(name)) continue;
    ++a_shared;
    ASSERT_TRUE(b.Has(name)) << label << " missing " << name;
    EXPECT_TRUE(sample == b.samples().at(name)) << label << " at " << name;
  }
  EXPECT_EQ(a_shared, b_shared) << label;
}

/// Runs the serial reference and also records the serial merged order:
/// after each event (and the final AdvanceTime), new violations per engine
/// in attach order — what MergedViolations() promises.
struct SerialReference {
  MonitorSet set;
  std::vector<Violation> merged;
};

std::unique_ptr<SerialReference> RunSerial(
    const std::vector<Property>& props,
    const std::vector<DataplaneEvent>& events, SimTime final_advance) {
  auto ref = std::make_unique<SerialReference>();
  for (const Property& p : props) ref->set.Add(p);
  std::vector<std::size_t> seen(props.size(), 0);
  const auto collect = [&] {
    for (std::size_t i = 0; i < props.size(); ++i) {
      const auto& v = ref->set.engine(i).violations();
      for (; seen[i] < v.size(); ++seen[i]) ref->merged.push_back(v[seen[i]]);
    }
  };
  for (const DataplaneEvent& ev : events) {
    ref->set.OnDataplaneEvent(ev);
    collect();
  }
  ref->set.AdvanceTime(final_advance);
  collect();
  return ref;
}

class InstanceShardParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InstanceShardParity, Table1StreamsMatchSerialExactly) {
  const std::size_t workers = GetParam();
  const std::vector<Property> props = Table1Properties();
  ASSERT_EQ(props.size(), 13u);

  for (const std::uint64_t seed : {99ull, 123ull}) {
    const auto events = FuzzSeedStream(seed, 1200);
    const SimTime end = events.back().time + Duration::Seconds(300);
    const auto serial = RunSerial(props, events, end);

    ParallelConfig cfg;
    cfg.workers = workers;
    cfg.batch_capacity = 64;
    cfg.shard_mode = ShardMode::kInstance;
    ParallelMonitorSet parallel(cfg);
    for (const Property& p : props) parallel.Add(p);
    parallel.Start();

    // Non-vacuous: the catalog must contain shard-eligible properties and
    // the set must actually have split them.
    std::size_t sharded = 0;
    for (std::size_t i = 0; i < parallel.size(); ++i)
      if (parallel.instance_sharded(i)) ++sharded;
    ASSERT_GT(sharded, 0u) << "no Table-1 property instance-sharded";
    ASSERT_LT(sharded, props.size())
        << "fallback path untested: every property sharded";

    for (const DataplaneEvent& ev : events) parallel.OnDataplaneEvent(ev);
    parallel.AdvanceTime(end);
    parallel.Stop();

    const std::string label =
        "workers=" + std::to_string(workers) + " seed=" + std::to_string(seed);

    const auto serial_all = serial->set.AllViolations();
    const auto parallel_all = parallel.AllViolations();
    ASSERT_EQ(serial_all.size(), parallel_all.size()) << label;
    EXPECT_GT(serial_all.size(), 0u) << label << " (vacuous parity)";
    for (std::size_t i = 0; i < serial_all.size(); ++i)
      ExpectViolationEq(serial_all[i], parallel_all[i],
                        label + " all[" + std::to_string(i) + "]");

    const auto parallel_merged = parallel.MergedViolations();
    ASSERT_EQ(serial->merged.size(), parallel_merged.size()) << label;
    for (std::size_t i = 0; i < serial->merged.size(); ++i)
      ExpectViolationEq(serial->merged[i], parallel_merged[i],
                        label + " merged[" + std::to_string(i) + "]");

    ExpectShardedSnapshotEq(serial->set.TelemetrySnapshot(),
                            parallel.TelemetrySnapshot(), label);
    EXPECT_EQ(serial->set.TotalViolations(), parallel.TotalViolations())
        << label;
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, InstanceShardParity,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(InstanceShardTest, SingleHotPropertySpreadsInstancesAcrossReplicas) {
  // The paper's hot-property case: ONE keyed property, many concurrent
  // instances. Property sharding would pin it to a single worker; instance
  // sharding must spread the live instances across replicas while staying
  // bit-identical to serial.
  const Property hot = KeyedPairProperty("hot-pairs");
  ASSERT_TRUE(BuildShardPlan(hot, MonitorConfig{}).has_value());

  const auto events = PairStream(2026, 6000, /*keys=*/80);
  const SimTime end = events.back().time + Duration::Seconds(120);
  const auto serial = RunSerial({hot}, events, end);

  ParallelConfig cfg;
  cfg.workers = 4;
  cfg.batch_capacity = 128;
  cfg.shard_mode = ShardMode::kInstance;
  ParallelMonitorSet parallel(cfg);
  for (const Property& p : std::vector<Property>{hot}) parallel.Add(p);
  parallel.Start();
  ASSERT_TRUE(parallel.instance_sharded(0));
  for (const DataplaneEvent& ev : events) parallel.OnDataplaneEvent(ev);
  parallel.Flush();

  // Mid-stream, before the windows lapse: the live population must be
  // split — more than one replica owns instances.
  const telemetry::Snapshot mid = parallel.TelemetrySnapshot();
  std::size_t populated = 0;
  std::int64_t spread_total = 0;
  for (std::size_t r = 0; r < 4; ++r) {
    const std::string key = "monitor.parallel.shard.hot-pairs.replica." +
                            std::to_string(r) + ".live_instances";
    ASSERT_TRUE(mid.Has(key)) << key;
    const std::int64_t live = mid.gauge(key);
    if (live > 0) ++populated;
    spread_total += live;
  }
  EXPECT_GT(populated, 1u) << "instances did not spread across replicas";
  EXPECT_EQ(spread_total, mid.gauge("monitor.engine.hot-pairs.live_instances"));

  // Steady state recycles batches instead of allocating: the pool never
  // grows past its cap and reuse dominates.
  EXPECT_LE(mid.counter("monitor.parallel.batch_pool.allocated"),
            cfg.ring_capacity + 2);
  EXPECT_GT(mid.counter("monitor.parallel.batch_pool.reused"), 0u);

  parallel.AdvanceTime(end);
  parallel.Stop();

  const auto serial_all = serial->set.AllViolations();
  const auto parallel_all = parallel.AllViolations();
  ASSERT_EQ(serial_all.size(), parallel_all.size());
  EXPECT_GT(serial_all.size(), 0u);
  for (std::size_t i = 0; i < serial_all.size(); ++i)
    ExpectViolationEq(serial_all[i], parallel_all[i],
                      "hot all[" + std::to_string(i) + "]");
  const auto parallel_merged = parallel.MergedViolations();
  ASSERT_EQ(serial->merged.size(), parallel_merged.size());
  for (std::size_t i = 0; i < serial->merged.size(); ++i)
    ExpectViolationEq(serial->merged[i], parallel_merged[i],
                      "hot merged[" + std::to_string(i) + "]");
  ExpectShardedSnapshotEq(serial->set.TelemetrySnapshot(),
                          parallel.TelemetrySnapshot(), "hot final");
}

TEST(InstanceShardTest, HotAttachAndDetachOfShardedProperty) {
  // Attach a shard-eligible property mid-stream, run it sharded, then
  // detach it mid-stream; both transitions happen at the quiesce point and
  // must match a serial set doing the identical lifecycle.
  const Property p1 = KeyedPairProperty("pairs-1");
  const Property p2 = KeyedPairProperty("pairs-2");
  const auto events = PairStream(7, 900, /*keys=*/24);

  MonitorSet serial;
  ParallelConfig cfg;
  cfg.workers = 4;
  cfg.batch_capacity = 32;
  cfg.shard_mode = ShardMode::kInstance;
  ParallelMonitorSet parallel(cfg);

  const PropertyId s1 = serial.AttachProperty(p1);
  parallel.Add(p1);
  parallel.Start();
  ASSERT_TRUE(parallel.instance_sharded(0));

  std::optional<std::vector<Violation>> serial_drained, parallel_drained;
  PropertyId s2 = 0, q2 = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i == 300) {
      s2 = serial.AttachProperty(p2);
      q2 = parallel.AttachProperty(p2);
      EXPECT_TRUE(parallel.instance_sharded(q2));
    }
    if (i == 600) {
      serial_drained = serial.DetachProperty(s1);
      parallel_drained = parallel.DetachProperty(0);
      EXPECT_FALSE(parallel.instance_sharded(0));
    }
    serial.OnDataplaneEvent(events[i]);
    parallel.OnDataplaneEvent(events[i]);
  }
  const SimTime end = events.back().time + Duration::Seconds(300);
  serial.AdvanceTime(end);
  parallel.AdvanceTime(end);
  parallel.Stop();
  (void)s2;

  // The detach returns the sharded property's violations in serial
  // emission order with serial instance ids.
  ASSERT_TRUE(serial_drained.has_value());
  ASSERT_TRUE(parallel_drained.has_value());
  ASSERT_EQ(serial_drained->size(), parallel_drained->size());
  EXPECT_GT(serial_drained->size(), 0u) << "(vacuous detach)";
  for (std::size_t i = 0; i < serial_drained->size(); ++i)
    ExpectViolationEq((*serial_drained)[i], (*parallel_drained)[i],
                      "drained[" + std::to_string(i) + "]");

  // And the surviving property agrees end-to-end.
  const auto serial_all = serial.AllViolations();
  const auto parallel_all = parallel.AllViolations();
  ASSERT_EQ(serial_all.size(), parallel_all.size());
  EXPECT_GT(serial_all.size(), 0u) << "(vacuous survivor)";
  for (std::size_t i = 0; i < serial_all.size(); ++i)
    ExpectViolationEq(serial_all[i], parallel_all[i],
                      "all[" + std::to_string(i) + "]");
  ExpectShardedSnapshotEq(serial.TelemetrySnapshot(),
                          parallel.TelemetrySnapshot(), "lifecycle final");
}

TEST(InstanceShardTest, AutoModeShardsOnlyWhenWorkersExceedProperties) {
  // kAuto: 13 properties over 2 workers — property sharding already fills
  // every core, so nothing instance-shards...
  {
    ParallelConfig cfg;
    cfg.workers = 2;
    cfg.shard_mode = ShardMode::kAuto;
    ParallelMonitorSet set(cfg);
    for (const Property& p : Table1Properties()) set.Add(p);
    set.Start();
    for (std::size_t i = 0; i < set.size(); ++i)
      EXPECT_FALSE(set.instance_sharded(i)) << i;
    set.Stop();
  }
  // ...but 1 hot property over 4 workers would leave 3 cores idle, so it
  // splits.
  {
    ParallelConfig cfg;
    cfg.workers = 4;
    cfg.shard_mode = ShardMode::kAuto;
    ParallelMonitorSet set(cfg);
    set.Add(KeyedPairProperty("solo"));
    set.Start();
    EXPECT_TRUE(set.instance_sharded(0));
    set.Stop();
  }
}

TEST(InstanceShardTest, IneligiblePropertiesFallBackToPropertySharding) {
  // An abort pattern breaks the static analysis (the aborting event need
  // not carry the routing key), so the property must refuse to split and
  // still run correctly under kInstance via the property-sharded path.
  PropertyBuilder b("aborting", "ineligible: abort stage");
  const VarId A = b.Var("A");
  b.AddStage("open")
      .Match(PatternBuilder::Arrival().Build())
      .Bind(A, FieldId::kIpSrc)
      .Window(Duration::Seconds(30))
      .AbortOn(PatternBuilder::LinkStatus().Build());
  b.AddStage("drop")
      .Match(PatternBuilder::Egress().EqVar(FieldId::kIpDst, A).Dropped()
                 .Build());
  const Property p = std::move(b).Build();
  std::string why;
  ASSERT_FALSE(BuildShardPlan(p, MonitorConfig{}, &why).has_value());
  EXPECT_FALSE(why.empty());

  const auto events = FuzzSeedStream(11, 600);
  const SimTime end = events.back().time + Duration::Seconds(60);
  const auto serial = RunSerial({p}, events, end);

  ParallelConfig cfg;
  cfg.workers = 3;
  cfg.shard_mode = ShardMode::kInstance;
  ParallelMonitorSet parallel(cfg);
  parallel.Add(p);
  parallel.Start();
  EXPECT_FALSE(parallel.instance_sharded(0));
  for (const DataplaneEvent& ev : events) parallel.OnDataplaneEvent(ev);
  parallel.AdvanceTime(end);
  parallel.Stop();

  const auto serial_all = serial->set.AllViolations();
  const auto parallel_all = parallel.AllViolations();
  ASSERT_EQ(serial_all.size(), parallel_all.size());
  for (std::size_t i = 0; i < serial_all.size(); ++i)
    ExpectViolationEq(serial_all[i], parallel_all[i],
                      "fallback[" + std::to_string(i) + "]");
}

}  // namespace
}  // namespace swmon
