// MonitorSet (multi-property fan-out), interest-signature dispatch, and
// spec introspection/printing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "monitor/engine.hpp"
#include "monitor/monitor_set.hpp"
#include "monitor/property_builder.hpp"
#include "properties/catalog.hpp"
#include "spl/spl.hpp"
#include "telemetry_helpers.hpp"

namespace swmon {
namespace {

DataplaneEvent Ev(DataplaneEventType type, std::int64_t ms,
                  std::initializer_list<std::pair<FieldId, std::uint64_t>> kv) {
  DataplaneEvent ev;
  ev.type = type;
  ev.time = SimTime::Zero() + Duration::Millis(ms);
  for (const auto& [k, v] : kv) ev.fields.Set(k, v);
  return ev;
}

TEST(MonitorSetTest, FansOutToEveryEngine) {
  MonitorSet set;
  set.Add(FirewallReturnNotDropped());
  set.Add(LearningSwitchNoFloodAfterLearn());
  ASSERT_EQ(set.size(), 2u);

  set.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 1,
                          {{FieldId::kInPort, 1},
                           {FieldId::kIpSrc, 10},
                           {FieldId::kIpDst, 20},
                           {FieldId::kEthSrc, 0xaa}}));
  EXPECT_EQ(EngineStat(set.engine(0), "events"), 1u);
  EXPECT_EQ(EngineStat(set.engine(1), "events"), 1u);
  EXPECT_EQ(set.engine(0).live_instances(), 1u);
  EXPECT_EQ(set.engine(1).live_instances(), 1u);

  // A drop of the return traffic violates only the firewall property.
  set.OnDataplaneEvent(
      Ev(DataplaneEventType::kEgress, 2,
         {{FieldId::kIpSrc, 20},
          {FieldId::kIpDst, 10},
          {FieldId::kEgressAction,
           static_cast<std::uint64_t>(EgressActionValue::kDrop)}}));
  EXPECT_EQ(set.TotalViolations(), 1u);
  const auto all = set.AllViolations();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].property, "fw-return-not-dropped");
}

TEST(MonitorSetTest, AdvanceTimeReachesEveryEngine) {
  MonitorSet set;
  set.Add(ArpProxyReplyDeadline());
  set.Add(DhcpReplyDeadline());
  set.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 1,
                          {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 7}}));
  set.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 2,
                          {{FieldId::kArpOp, 1}, {FieldId::kArpTargetIp, 7}}));
  set.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 3,
                          {{FieldId::kDhcpMsgType, 3},
                           {FieldId::kDhcpChaddr, 0xaa},
                           {FieldId::kDhcpXid, 1}}));
  set.AdvanceTime(SimTime::Zero() + Duration::Seconds(30));
  EXPECT_EQ(set.TotalViolations(), 2u);  // both deadlines fired
}

TEST(MonitorSetTest, FiltersEventsOutsideTheInterestSignature) {
  MonitorSet set;
  set.Add(FirewallReturnNotDropped());  // listens to arrival|egress only
  const PropertyMonitor& eng = set.engine(0);
  EXPECT_EQ(eng.interest_signature(),
            EventTypeBit(DataplaneEventType::kArrival) |
                EventTypeBit(DataplaneEventType::kEgress));

  set.OnDataplaneEvent(Ev(DataplaneEventType::kLinkStatus, 1,
                          {{FieldId::kLinkId, 3}, {FieldId::kLinkUp, 0}}));
  // The engine never processed the event — only observed the timestamp.
  EXPECT_EQ(EngineStat(eng, "events"), 0u);
  EXPECT_EQ(EngineStat(eng, "events_filtered"), 1u);
  EXPECT_EQ(set.TelemetrySnapshot().counter("monitor.set.events_dispatched"),
            0u);
  EXPECT_EQ(set.TelemetrySnapshot().counter("monitor.set.events_filtered"),
            1u);

  set.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 2,
                          {{FieldId::kInPort, 1},
                           {FieldId::kIpSrc, 10},
                           {FieldId::kIpDst, 20}}));
  EXPECT_EQ(EngineStat(eng, "events"), 1u);
  EXPECT_EQ(EngineStat(eng, "events_dispatched"), 1u);
  EXPECT_EQ(set.TelemetrySnapshot().counter("monitor.set.events_dispatched"),
            1u);
  EXPECT_EQ(eng.live_instances(), 1u);
}

TEST(MonitorSetTest, FilteredEventsStillAdvanceTimeoutClocks) {
  // A filtered event must keep the engine clock moving: a windowed ARP
  // obligation expires purely from link-status noise the ARP property
  // does not listen to — no explicit AdvanceTime call.
  MonitorSet set;
  set.Add(ArpProxyReplyDeadline());
  set.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 1,
                          {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 7}}));
  set.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 2,
                          {{FieldId::kArpOp, 1}, {FieldId::kArpTargetIp, 7}}));
  EXPECT_EQ(set.engine(0).live_instances(), 1u);

  for (int i = 0; i < 5; ++i)
    set.OnDataplaneEvent(Ev(DataplaneEventType::kLinkStatus, 2000 + i,
                            {{FieldId::kLinkId, 1}, {FieldId::kLinkUp, 1}}));
  // Only the two ARP arrivals were dispatched to the engine.
  EXPECT_EQ(EngineStat(set.engine(0), "events"), 2u);
  ASSERT_EQ(set.TotalViolations(), 1u);
  EXPECT_EQ(set.AllViolations()[0].property, ArpProxyReplyDeadline().name);
}

TEST(MonitorSetTest, FilteredDispatchMatchesBroadcastSemantics) {
  // The same mixed stream through the filtering MonitorSet and through a
  // broadcast loop over plain engines must yield identical violations.
  std::vector<Property> props = {FirewallReturnNotDropped(),
                                 LearningSwitchNoFloodAfterLearn(),
                                 ArpProxyReplyDeadline()};
  std::vector<DataplaneEvent> stream;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t ip = 10 + i % 7;
    stream.push_back(Ev(DataplaneEventType::kArrival, 10 * i,
                        {{FieldId::kInPort, 1 + i % 3},
                         {FieldId::kIpSrc, ip},
                         {FieldId::kIpDst, 20},
                         {FieldId::kEthSrc, 0xa0 + ip}}));
    stream.push_back(Ev(DataplaneEventType::kLinkStatus, 10 * i + 3,
                        {{FieldId::kLinkId, 1}, {FieldId::kLinkUp, i % 2}}));
    if (i % 5 == 0)
      stream.push_back(
          Ev(DataplaneEventType::kEgress, 10 * i + 6,
             {{FieldId::kIpSrc, 20},
              {FieldId::kIpDst, ip},
              {FieldId::kEgressAction,
               static_cast<std::uint64_t>(EgressActionValue::kDrop)}}));
  }

  MonitorSet filtered;
  for (const Property& p : props) filtered.Add(p);
  std::vector<std::unique_ptr<MonitorEngine>> broadcast;
  for (const Property& p : props)
    broadcast.push_back(std::make_unique<MonitorEngine>(p));

  for (const DataplaneEvent& ev : stream) {
    filtered.OnDataplaneEvent(ev);
    for (auto& e : broadcast) e->OnDataplaneEvent(ev);
  }

  std::size_t broadcast_total = 0;
  for (std::size_t i = 0; i < props.size(); ++i) {
    broadcast_total += broadcast[i]->violations().size();
    ASSERT_EQ(filtered.engine(i).violations().size(),
              broadcast[i]->violations().size())
        << props[i].name;
    for (std::size_t v = 0; v < broadcast[i]->violations().size(); ++v) {
      EXPECT_EQ(filtered.engine(i).violations()[v].time,
                broadcast[i]->violations()[v].time);
      EXPECT_EQ(filtered.engine(i).violations()[v].trigger_stage,
                broadcast[i]->violations()[v].trigger_stage);
    }
  }
  EXPECT_EQ(filtered.TotalViolations(), broadcast_total);
  EXPECT_GT(broadcast_total, 0u);
  // And the filter actually filtered: link-status noise reached no engine.
  const telemetry::Snapshot fsnap = filtered.TelemetrySnapshot();
  EXPECT_GT(fsnap.counter("monitor.set.events_filtered"), 0u);
  EXPECT_LT(fsnap.counter("monitor.set.events_dispatched"),
            stream.size() * props.size());
}

TEST(SpecPrintTest, ToStringShowsTheObservationStructure) {
  const Property p = NatReverseTranslation();
  const std::string text = p.ToString();
  EXPECT_NE(text.find("nat-reverse-translation"), std::string::npos);
  EXPECT_NE(text.find("(1)"), std::string::npos);
  EXPECT_NE(text.find("packet_id==$pid1"), std::string::npos);
  EXPECT_NE(text.find("!("), std::string::npos);  // the forbidden group
  EXPECT_NE(text.find("symmetric"), std::string::npos);
}

TEST(SpecPrintTest, TimeoutStagesAndWindowsRender) {
  const std::string text = ArpProxyReplyDeadline().ToString();
  EXPECT_NE(text.find("TIMEOUT"), std::string::npos);
  EXPECT_NE(text.find("window=1s"), std::string::npos);
  EXPECT_NE(text.find("unless"), std::string::npos);
}

TEST(SpecPrintTest, ViolationToStringIsReadable) {
  Violation v;
  v.property = "demo";
  v.time = SimTime::Zero() + Duration::Millis(1500);
  v.trigger_stage = "the end";
  v.bindings = {{"A", 7}};
  const std::string text = v.ToString();
  EXPECT_NE(text.find("VIOLATION demo"), std::string::npos);
  EXPECT_NE(text.find("A=7"), std::string::npos);
  EXPECT_NE(text.find("the end"), std::string::npos);
}

TEST(SpecPrintTest, EverySplFileInTheRepoParses) {
  // The shipped example properties must stay valid.
  for (const char* path : {"examples/properties/firewall.spl",
                           "examples/properties/arp_deadline.spl",
                           "examples/properties/syn_flood.spl"}) {
    std::FILE* f = std::fopen(path, "rb");
    if (f == nullptr) {
      // Running from the build tree: try one level up.
      const std::string alt = std::string("../") + path;
      f = std::fopen(alt.c_str(), "rb");
    }
    if (f == nullptr) GTEST_SKIP() << "repo files not reachable from cwd";
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    const auto result = ParseSpl(text);
    EXPECT_TRUE(result.ok()) << path << ": " << result.error;
  }
}

}  // namespace
}  // namespace swmon
