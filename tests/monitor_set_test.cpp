// MonitorSet (multi-property fan-out) and spec introspection/printing.
#include <gtest/gtest.h>

#include "monitor/monitor_set.hpp"
#include "monitor/property_builder.hpp"
#include "properties/catalog.hpp"
#include "spl/spl.hpp"

namespace swmon {
namespace {

DataplaneEvent Ev(DataplaneEventType type, std::int64_t ms,
                  std::initializer_list<std::pair<FieldId, std::uint64_t>> kv) {
  DataplaneEvent ev;
  ev.type = type;
  ev.time = SimTime::Zero() + Duration::Millis(ms);
  for (const auto& [k, v] : kv) ev.fields.Set(k, v);
  return ev;
}

TEST(MonitorSetTest, FansOutToEveryEngine) {
  MonitorSet set;
  set.Add(FirewallReturnNotDropped());
  set.Add(LearningSwitchNoFloodAfterLearn());
  ASSERT_EQ(set.size(), 2u);

  set.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 1,
                          {{FieldId::kInPort, 1},
                           {FieldId::kIpSrc, 10},
                           {FieldId::kIpDst, 20},
                           {FieldId::kEthSrc, 0xaa}}));
  EXPECT_EQ(set.engine(0).stats().events, 1u);
  EXPECT_EQ(set.engine(1).stats().events, 1u);
  EXPECT_EQ(set.engine(0).live_instances(), 1u);
  EXPECT_EQ(set.engine(1).live_instances(), 1u);

  // A drop of the return traffic violates only the firewall property.
  set.OnDataplaneEvent(
      Ev(DataplaneEventType::kEgress, 2,
         {{FieldId::kIpSrc, 20},
          {FieldId::kIpDst, 10},
          {FieldId::kEgressAction,
           static_cast<std::uint64_t>(EgressActionValue::kDrop)}}));
  EXPECT_EQ(set.TotalViolations(), 1u);
  const auto all = set.AllViolations();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].property, "fw-return-not-dropped");
}

TEST(MonitorSetTest, AdvanceTimeReachesEveryEngine) {
  MonitorSet set;
  set.Add(ArpProxyReplyDeadline());
  set.Add(DhcpReplyDeadline());
  set.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 1,
                          {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 7}}));
  set.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 2,
                          {{FieldId::kArpOp, 1}, {FieldId::kArpTargetIp, 7}}));
  set.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 3,
                          {{FieldId::kDhcpMsgType, 3},
                           {FieldId::kDhcpChaddr, 0xaa},
                           {FieldId::kDhcpXid, 1}}));
  set.AdvanceTime(SimTime::Zero() + Duration::Seconds(30));
  EXPECT_EQ(set.TotalViolations(), 2u);  // both deadlines fired
}

TEST(SpecPrintTest, ToStringShowsTheObservationStructure) {
  const Property p = NatReverseTranslation();
  const std::string text = p.ToString();
  EXPECT_NE(text.find("nat-reverse-translation"), std::string::npos);
  EXPECT_NE(text.find("(1)"), std::string::npos);
  EXPECT_NE(text.find("packet_id==$pid1"), std::string::npos);
  EXPECT_NE(text.find("!("), std::string::npos);  // the forbidden group
  EXPECT_NE(text.find("symmetric"), std::string::npos);
}

TEST(SpecPrintTest, TimeoutStagesAndWindowsRender) {
  const std::string text = ArpProxyReplyDeadline().ToString();
  EXPECT_NE(text.find("TIMEOUT"), std::string::npos);
  EXPECT_NE(text.find("window=1s"), std::string::npos);
  EXPECT_NE(text.find("unless"), std::string::npos);
}

TEST(SpecPrintTest, ViolationToStringIsReadable) {
  Violation v;
  v.property = "demo";
  v.time = SimTime::Zero() + Duration::Millis(1500);
  v.trigger_stage = "the end";
  v.bindings = {{"A", 7}};
  const std::string text = v.ToString();
  EXPECT_NE(text.find("VIOLATION demo"), std::string::npos);
  EXPECT_NE(text.find("A=7"), std::string::npos);
  EXPECT_NE(text.find("the end"), std::string::npos);
}

TEST(SpecPrintTest, EverySplFileInTheRepoParses) {
  // The shipped example properties must stay valid.
  for (const char* path : {"examples/properties/firewall.spl",
                           "examples/properties/arp_deadline.spl",
                           "examples/properties/syn_flood.spl"}) {
    std::FILE* f = std::fopen(path, "rb");
    if (f == nullptr) {
      // Running from the build tree: try one level up.
      const std::string alt = std::string("../") + path;
      f = std::fopen(alt.c_str(), "rb");
    }
    if (f == nullptr) GTEST_SKIP() << "repo files not reachable from cwd";
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    const auto result = ParseSpl(text);
    EXPECT_TRUE(result.ok()) << path << ": " << result.error;
  }
}

}  // namespace
}  // namespace swmon
