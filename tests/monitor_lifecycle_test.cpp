// Hot property lifecycle: attaching and detaching properties on a live
// MonitorSet / ParallelMonitorSet must not perturb the resident properties
// in any observable way. Replays a fuzz seed stream through all 13 Table-1
// properties while an extra property hot-attaches at 1/3 and hot-detaches
// at 2/3 and one resident property detaches at 1/2; every untouched
// property's violation sequence must be bit-identical to a run with no
// lifecycle activity at all, and each detached property's drained
// violations must equal a fresh engine run over exactly the slice of the
// stream it was attached for. Parameterized over serial and 1/2/4-worker
// parallel execution. Carries the `tsan` CTest label.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "monitor/compiled/engine.hpp"
#include "monitor/engine.hpp"
#include "monitor/monitor_set.hpp"
#include "monitor/parallel_monitor_set.hpp"
#include "properties/catalog.hpp"

namespace swmon {
namespace {

/// The EngineFuzz event soup (fuzz_test.cpp): random types, random field
/// sprinkles in a small value range so stages actually chain and violate.
std::vector<DataplaneEvent> FuzzSeedStream(std::uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  SimTime t = SimTime::Zero();
  for (int i = 0; i < count; ++i) {
    DataplaneEvent ev;
    t = t + Duration::Millis(1 + static_cast<std::int64_t>(rng.NextBelow(50)));
    ev.time = t;
    const auto roll = rng.NextBelow(10);
    ev.type = roll < 4   ? DataplaneEventType::kArrival
              : roll < 8 ? DataplaneEventType::kEgress
                         : DataplaneEventType::kLinkStatus;
    for (std::size_t f = 0; f < kNumFieldIds; ++f) {
      if (rng.NextBool(0.35))
        ev.fields.Set(static_cast<FieldId>(f), rng.NextBelow(8));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<Property> Table1Properties() {
  std::vector<Property> props;
  for (const CatalogEntry& e : BuildCatalog())
    if (e.in_table1) props.push_back(e.property);
  return props;
}

void ExpectViolationEq(const Violation& a, const Violation& b,
                       const std::string& label) {
  EXPECT_EQ(a.property, b.property) << label;
  EXPECT_EQ(a.time, b.time) << label;
  EXPECT_EQ(a.instance_id, b.instance_id) << label;
  EXPECT_EQ(a.trigger_stage, b.trigger_stage) << label;
  EXPECT_EQ(a.bindings, b.bindings) << label;
  EXPECT_EQ(a.history.size(), b.history.size()) << label;
}

void ExpectViolationsEq(const std::vector<Violation>& a,
                        const std::vector<Violation>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i)
    ExpectViolationEq(a[i], b[i], label + "[" + std::to_string(i) + "]");
}

/// What a property should have observed while attached for exactly
/// events[begin, end): a fresh engine over that slice, nothing else.
std::vector<Violation> FreshEngineRun(const Property& property,
                                      const std::vector<DataplaneEvent>& events,
                                      std::size_t begin, std::size_t end) {
  MonitorEngine engine(property, MonitorConfig{});
  for (std::size_t i = begin; i < end; ++i) engine.ProcessEvent(events[i]);
  return engine.violations();
}

/// Thin uniform facade so one test body drives both set types.
struct SetUnderTest {
  std::unique_ptr<MonitorSet> serial;
  std::unique_ptr<ParallelMonitorSet> parallel;

  explicit SetUnderTest(std::size_t workers) {
    if (workers == 0) {
      serial = std::make_unique<MonitorSet>();
    } else {
      ParallelConfig cfg;
      cfg.workers = workers;
      cfg.batch_capacity = 64;  // small: lifecycle ops land mid-batch often
      parallel = std::make_unique<ParallelMonitorSet>(cfg);
      parallel->Start();
    }
  }
  PropertyId Attach(const Property& p, MonitorConfig config = {}) {
    return parallel ? parallel->AttachProperty(p, config)
                    : serial->AttachProperty(p, config);
  }
  std::optional<std::vector<Violation>> Detach(PropertyId id) {
    return parallel ? parallel->DetachProperty(id)
                    : serial->DetachProperty(id);
  }
  void Deliver(const DataplaneEvent& ev) {
    if (parallel) {
      parallel->OnDataplaneEvent(ev);
    } else {
      serial->OnDataplaneEvent(ev);
    }
  }
  void Finish(SimTime end) {
    if (parallel) {
      parallel->AdvanceTime(end);
      parallel->Stop();
    } else {
      serial->AdvanceTime(end);
    }
  }
  const PropertyMonitor& engine(PropertyId id) const {
    return parallel ? parallel->engine(id) : serial->engine(id);
  }
  bool attached(PropertyId id) const {
    return parallel ? parallel->attached(id) : serial->attached(id);
  }
  std::size_t attached_count() const {
    return parallel ? parallel->attached_count() : serial->attached_count();
  }
};

// 0 = serial MonitorSet; >0 = ParallelMonitorSet worker count.
class HotLifecycle : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HotLifecycle, UntouchedPropertiesAreBitIdenticalToNoLifecycleRun) {
  const std::vector<Property> props = Table1Properties();
  ASSERT_EQ(props.size(), 13u);
  const auto events = FuzzSeedStream(99, 1500);
  const SimTime end = events.back().time + Duration::Seconds(300);

  // Reference: the exact same stream with no lifecycle activity.
  MonitorSet base;
  for (const Property& p : props) base.Add(p);
  for (const DataplaneEvent& ev : events) base.OnDataplaneEvent(ev);
  base.AdvanceTime(end);

  const std::size_t third = events.size() / 3;
  const std::size_t half = events.size() / 2;
  const std::size_t two_thirds = 2 * events.size() / 3;
  const std::size_t detached_resident = 5;

  SetUnderTest set(GetParam());
  std::vector<PropertyId> ids;
  for (const Property& p : props) ids.push_back(set.Attach(p));

  PropertyId extra_id = 0;
  std::vector<Violation> extra_drained;
  std::vector<Violation> resident_drained;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i == third) extra_id = set.Attach(props[0]);
    if (i == half) {
      auto drained = set.Detach(ids[detached_resident]);
      ASSERT_TRUE(drained.has_value());
      resident_drained = std::move(*drained);
    }
    if (i == two_thirds) {
      auto drained = set.Detach(extra_id);
      ASSERT_TRUE(drained.has_value());
      extra_drained = std::move(*drained);
    }
    set.Deliver(events[i]);
  }
  set.Finish(end);

  const std::string label = "workers=" + std::to_string(GetParam());
  EXPECT_EQ(set.attached_count(), 12u) << label;
  EXPECT_FALSE(set.attached(ids[detached_resident])) << label;

  // Every untouched resident property: identical violation sequence.
  std::size_t untouched_total = 0;
  for (std::size_t i = 0; i < props.size(); ++i) {
    if (i == detached_resident) continue;
    ExpectViolationsEq(base.engine(i).violations(),
                       set.engine(ids[i]).violations(),
                       label + " " + props[i].name);
    untouched_total += base.engine(i).violations().size();
  }
  EXPECT_GT(untouched_total, 0u) << label << " (vacuous comparison)";

  // The detached resident saw exactly events [0, half); the hot-attached
  // extra saw exactly [third, two_thirds). Both must match a fresh engine
  // run over just that slice — no leakage from lifecycle neighbours.
  ExpectViolationsEq(FreshEngineRun(props[detached_resident], events, 0, half),
                     resident_drained, label + " detached resident");
  ExpectViolationsEq(FreshEngineRun(props[0], events, third, two_thirds),
                     extra_drained, label + " hot-attached extra");
}

TEST_P(HotLifecycle, CompiledEnginesHotAttachAndDetachLikeInterpreted) {
  // The compiled engine through the same lifecycle machinery: residents
  // alternate interpreted/compiled per slot, the hot-attached extra and
  // one detached resident run compiled. Every slot must stay bit-identical
  // to the all-interpreted no-lifecycle reference — engine choice and
  // lifecycle timing are both observationally invisible.
  const std::vector<Property> props = Table1Properties();
  const auto events = FuzzSeedStream(77, 1200);
  const SimTime end = events.back().time + Duration::Seconds(300);

  MonitorSet base;
  for (const Property& p : props) base.Add(p);
  for (const DataplaneEvent& ev : events) base.OnDataplaneEvent(ev);
  base.AdvanceTime(end);

  const std::size_t third = events.size() / 3;
  const std::size_t half = events.size() / 2;
  const std::size_t two_thirds = 2 * events.size() / 3;
  const std::size_t detached_resident = 4;  // even slot: compiled

  MonitorConfig compiled_cfg;
  compiled_cfg.engine = EngineKind::kCompiled;
  MonitorConfig interpreted_cfg;
  interpreted_cfg.engine = EngineKind::kInterpreted;

  SetUnderTest set(GetParam());
  std::vector<PropertyId> ids;
  for (std::size_t i = 0; i < props.size(); ++i)
    ids.push_back(
        set.Attach(props[i], i % 2 == 0 ? compiled_cfg : interpreted_cfg));
  // The compiled slots really run the compiled engine (no silent fallback).
  for (std::size_t i = 0; i < props.size(); i += 2)
    ASSERT_NE(dynamic_cast<const CompiledEngine*>(&set.engine(ids[i])),
              nullptr)
        << props[i].name;

  PropertyId extra_id = 0;
  std::vector<Violation> extra_drained;
  std::vector<Violation> resident_drained;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i == third) extra_id = set.Attach(props[0], compiled_cfg);
    if (i == half) {
      auto drained = set.Detach(ids[detached_resident]);
      ASSERT_TRUE(drained.has_value());
      resident_drained = std::move(*drained);
    }
    if (i == two_thirds) {
      auto drained = set.Detach(extra_id);
      ASSERT_TRUE(drained.has_value());
      extra_drained = std::move(*drained);
    }
    set.Deliver(events[i]);
  }
  set.Finish(end);

  const std::string label = "compiled workers=" + std::to_string(GetParam());
  std::size_t untouched_total = 0;
  for (std::size_t i = 0; i < props.size(); ++i) {
    if (i == detached_resident) continue;
    ExpectViolationsEq(base.engine(i).violations(),
                       set.engine(ids[i]).violations(),
                       label + " " + props[i].name);
    untouched_total += base.engine(i).violations().size();
  }
  EXPECT_GT(untouched_total, 0u) << label << " (vacuous comparison)";

  ExpectViolationsEq(FreshEngineRun(props[detached_resident], events, 0, half),
                     resident_drained, label + " detached compiled resident");
  ExpectViolationsEq(FreshEngineRun(props[0], events, third, two_thirds),
                     extra_drained, label + " hot-attached compiled extra");
}

INSTANTIATE_TEST_SUITE_P(Execution, HotLifecycle,
                         ::testing::Values(0u, 1u, 2u, 4u));

TEST(MonitorSetLifecycle, SlotsAreStableAndNeverReused) {
  const std::vector<Property> props = Table1Properties();
  MonitorSet set;
  const PropertyId a = set.AttachProperty(props[0]);
  const PropertyId b = set.AttachProperty(props[1]);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  ASSERT_TRUE(set.DetachProperty(a).has_value());
  EXPECT_FALSE(set.attached(a));
  EXPECT_TRUE(set.attached(b));
  // Double-detach and unknown ids are rejected, not fatal.
  EXPECT_FALSE(set.DetachProperty(a).has_value());
  EXPECT_FALSE(set.DetachProperty(99).has_value());
  // New attach gets a fresh slot; b keeps its id and its engine.
  const PropertyId c = set.AttachProperty(props[2]);
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.attached_count(), 2u);
  EXPECT_EQ(set.engine_name(b), props[1].name);
}

TEST(MonitorSetLifecycle, DrainViolationsEmptiesEnginesButKeepsCounts) {
  const std::vector<Property> props = Table1Properties();
  const auto events = FuzzSeedStream(123, 800);
  MonitorSet set;
  for (const Property& p : props) set.Add(p);
  std::vector<Violation> drained;
  for (const DataplaneEvent& ev : events) {
    set.OnDataplaneEvent(ev);
    auto batch = set.DrainViolations();
    drained.insert(drained.end(), std::make_move_iterator(batch.begin()),
                   std::make_move_iterator(batch.end()));
  }
  ASSERT_GT(drained.size(), 0u);
  // Engines hold nothing after a drain...
  EXPECT_EQ(set.TotalViolations(), 0u);
  for (std::size_t i = 0; i < set.size(); ++i)
    EXPECT_TRUE(set.engine(i).violations().empty());
  // ...and the incremental drains reassemble the no-drain run exactly.
  MonitorSet base;
  for (const Property& p : props) base.Add(p);
  for (const DataplaneEvent& ev : events) base.OnDataplaneEvent(ev);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < base.size(); ++i)
    expected += base.engine(i).violations().size();
  EXPECT_EQ(drained.size(), expected);
}

TEST(ParallelLifecycle, DrainViolationsMatchesSerialDrains) {
  const std::vector<Property> props = Table1Properties();
  const auto events = FuzzSeedStream(42, 600);

  MonitorSet serial;
  for (const Property& p : props) serial.Add(p);
  ParallelConfig cfg;
  cfg.workers = 3;
  cfg.batch_capacity = 32;
  ParallelMonitorSet parallel(cfg);
  for (const Property& p : props) parallel.Add(p);
  parallel.Start();

  // Serial drains hand back attach-order batches, parallel drains merged
  // stream order; per property both preserve engine order, so compare the
  // per-property subsequences.
  const auto by_property = [](const std::vector<Violation>& all) {
    std::map<std::string, std::vector<Violation>> out;
    for (const Violation& v : all) out[v.property].push_back(v);
    return out;
  };
  const auto compare_drain = [&](const std::vector<Violation>& s,
                                 const std::vector<Violation>& p,
                                 const std::string& label) {
    ASSERT_EQ(s.size(), p.size()) << label;
    const auto sp = by_property(s);
    const auto pp = by_property(p);
    ASSERT_EQ(sp.size(), pp.size()) << label;
    for (const auto& [name, sv] : sp) {
      ASSERT_TRUE(pp.count(name)) << label << " " << name;
      ExpectViolationsEq(sv, pp.at(name), label + " " + name);
    }
  };

  std::size_t serial_total = 0, parallel_total = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    serial.OnDataplaneEvent(events[i]);
    parallel.OnDataplaneEvent(events[i]);
    if (i % 97 == 96) {
      // Periodic mid-stream drains (the daemon's resident pattern): the
      // two paths must hand back identical violation batches.
      const auto s = serial.DrainViolations();
      const auto p = parallel.DrainViolations();
      compare_drain(s, p, "drain at i=" + std::to_string(i));
      serial_total += s.size();
      parallel_total += p.size();
    }
  }
  const auto s = serial.DrainViolations();
  const auto p = parallel.DrainViolations();
  compare_drain(s, p, "final drain");
  serial_total += s.size();
  parallel_total += p.size();
  parallel.Stop();
  EXPECT_GT(serial_total, 0u);
  EXPECT_EQ(serial_total, parallel_total);
  // Post-drain the parallel merge state is empty too.
  EXPECT_TRUE(parallel.MergedViolations().empty());
}

}  // namespace
}  // namespace swmon
