// Serial/parallel telemetry parity: a ParallelMonitorSet over the 13
// Table-1 catalog properties must produce a merged counter snapshot
// IDENTICAL to the serial MonitorSet's on the same stream, at every worker
// count — same metric names, same values, compared with
// telemetry::Snapshot::operator==. This is the acceptance check for the
// shard-merge model: per-worker counters exist only as implementation
// detail and collapse losslessly at the quiesce point. Carries the `tsan`
// label so sanitized runs cover the merge path.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "monitor/eviction.hpp"
#include "monitor/monitor_set.hpp"
#include "monitor/parallel_monitor_set.hpp"
#include "properties/catalog.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/snapshot.hpp"

namespace swmon {
namespace {

std::vector<Property> Table1Properties() {
  std::vector<Property> props;
  for (const CatalogEntry& e : BuildCatalog())
    if (e.in_table1) props.push_back(e.property);
  return props;
}

/// Random event soup with enough field collisions that stages chain,
/// timers arm, and instances evict — every counter family is exercised.
std::vector<DataplaneEvent> EventSoup(std::uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  SimTime t = SimTime::Zero();
  for (int i = 0; i < count; ++i) {
    DataplaneEvent ev;
    t = t + Duration::Millis(1 + static_cast<std::int64_t>(rng.NextBelow(40)));
    ev.time = t;
    const auto roll = rng.NextBelow(10);
    ev.type = roll < 4   ? DataplaneEventType::kArrival
              : roll < 8 ? DataplaneEventType::kEgress
                         : DataplaneEventType::kLinkStatus;
    for (std::size_t f = 0; f < kNumFieldIds; ++f) {
      if (rng.NextBool(0.35))
        ev.fields.Set(static_cast<FieldId>(f), rng.NextBelow(8));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

class SnapshotParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SnapshotParity, MergedSnapshotIdenticalToSerial) {
  const std::size_t workers = GetParam();
  const std::vector<Property> props = Table1Properties();
  ASSERT_EQ(props.size(), 13u);
  const auto events = EventSoup(/*seed=*/2026, /*count=*/2000);
  const SimTime end = events.back().time + Duration::Seconds(300);

  MonitorSet serial;
  for (const Property& p : props) serial.Add(p);
  for (const DataplaneEvent& ev : events) serial.OnDataplaneEvent(ev);
  serial.AdvanceTime(end);
  const telemetry::Snapshot want = serial.TelemetrySnapshot();

  ParallelConfig cfg;
  cfg.workers = workers;
  cfg.batch_capacity = 64;
  ParallelMonitorSet parallel(cfg);
  for (const Property& p : props) parallel.Add(p);
  parallel.Start();
  for (const DataplaneEvent& ev : events) parallel.OnDataplaneEvent(ev);
  parallel.AdvanceTime(end);
  parallel.Stop();
  const telemetry::Snapshot full = parallel.TelemetrySnapshot();

  // The parallel runtime also publishes monitor.parallel.* metrics (slab
  // pool, ring depths, per-replica gauges) that a serial set cannot have;
  // parity covers every shared name.
  telemetry::Snapshot got;
  for (const auto& [name, sample] : full.samples()) {
    if (name.rfind("monitor.parallel.", 0) == 0) continue;
    if (sample.kind == telemetry::Sample::Kind::kCounter)
      got.SetCounter(name, sample.counter);
    else if (sample.kind == telemetry::Sample::Kind::kGauge)
      got.SetGauge(name, sample.gauge);
    else
      got.SetHistogram(name, sample.histogram);
  }

  // Same names (13 engines x counter family + the set-level counters)...
  ASSERT_EQ(want.size(), got.size());
  for (const auto& [name, sample] : want.samples()) {
    ASSERT_TRUE(got.Has(name)) << "parallel snapshot missing " << name;
    EXPECT_TRUE(sample == got.samples().at(name))
        << "workers=" << workers << " diverges at " << name;
  }
  // ...and bit-identical values.
  EXPECT_TRUE(want == got) << "workers=" << workers;

  // The wildcard view agrees too (summed across all 13 engines).
  EXPECT_EQ(want.counter("monitor.engine.*.violations"),
            got.counter("monitor.engine.*.violations"));
  EXPECT_GT(got.counter("monitor.engine.*.events"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Workers, SnapshotParity,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(SnapshotParityTest, EvictionCountersAndStateBytesGaugeMatchSerial) {
  // Eviction-enabled properties are ineligible for instance sharding, so a
  // parallel set property-shards them — but the merged snapshot must still
  // carry the exact evictions.{policy,reason} counters and the live
  // state_bytes gauge the serial set reports, at every worker count.
  const std::vector<Property> props = Table1Properties();
  const auto events = EventSoup(/*seed=*/4242, /*count=*/1500);
  const SimTime end = events.back().time + Duration::Seconds(300);

  MonitorConfig mc;
  mc.eviction =
      EvictionConfig{}.WithPolicy(EvictionPolicy::kLru).WithMaxInstances(4);

  MonitorSet serial;
  for (const Property& p : props) serial.Add(p, mc);
  for (const DataplaneEvent& ev : events) serial.OnDataplaneEvent(ev);
  serial.AdvanceTime(end);
  const telemetry::Snapshot want = serial.TelemetrySnapshot();

  // The soup must actually evict, and the new families must be published.
  ASSERT_GT(want.counter("monitor.engine.*.instances_evicted"), 0u);
  EXPECT_EQ(want.counter("monitor.engine.*.evictions.policy.lru"),
            want.counter("monitor.engine.*.instances_evicted"));
  for (const Property& p : props)
    EXPECT_TRUE(want.Has("monitor.engine." + p.name + ".state_bytes"))
        << p.name;

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    ParallelConfig cfg;
    cfg.workers = workers;
    cfg.batch_capacity = 64;
    ParallelMonitorSet parallel(cfg);
    for (const Property& p : props) parallel.Add(p, mc);
    parallel.Start();
    for (const DataplaneEvent& ev : events) parallel.OnDataplaneEvent(ev);
    parallel.AdvanceTime(end);
    parallel.Stop();
    const telemetry::Snapshot got = parallel.TelemetrySnapshot();

    for (const auto& [name, sample] : want.samples()) {
      ASSERT_TRUE(got.Has(name))
          << "workers=" << workers << " missing " << name;
      EXPECT_TRUE(sample == got.samples().at(name))
          << "workers=" << workers << " diverges at " << name;
    }
    EXPECT_EQ(want.counter("monitor.engine.*.evictions.reason.capacity"),
              got.counter("monitor.engine.*.evictions.reason.capacity"))
        << "workers=" << workers;
  }
}

TEST(SnapshotParityTest, RegistryCollectorsMatchDirectSnapshots) {
  // Attaching either set to a MetricsRegistry must yield the same counter
  // families through TakeSnapshot() as querying the set directly (modulo
  // the latency histogram, which only the registry path arms — wall-clock
  // timings are not comparable across runs and are excluded here).
  const std::vector<Property> props = Table1Properties();
  const auto events = EventSoup(/*seed=*/7, /*count=*/500);

  telemetry::MetricsRegistry registry;
  MonitorSet set;
  set.AttachTelemetry(&registry);
  for (const Property& p : props) set.Add(p);
  for (const DataplaneEvent& ev : events) set.OnDataplaneEvent(ev);

  const telemetry::Snapshot direct = set.TelemetrySnapshot();
  const telemetry::Snapshot via_registry = registry.TakeSnapshot();
  for (const auto& [name, sample] : direct.samples()) {
    ASSERT_TRUE(via_registry.Has(name)) << name;
    EXPECT_TRUE(sample == via_registry.samples().at(name)) << name;
  }
  // The registry additionally carries the armed latency histogram.
  ASSERT_NE(via_registry.histogram("monitor.set.dispatch_latency_ns"),
            nullptr);
  set.AttachTelemetry(nullptr);
  EXPECT_FALSE(registry.TakeSnapshot().Has("monitor.set.events_dispatched"));
}

}  // namespace
}  // namespace swmon
