// The telemetry subsystem itself: instrument semantics (log-bucketed
// histogram boundaries), registry get-or-create and collectors, snapshot
// queries (exact, wildcard, prefix), and both exporters — JSON must
// round-trip through FromJson bit-exactly, Prometheus text must be
// well-formed exposition format with cumulative buckets.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/telemetry.hpp"

namespace swmon::telemetry {
namespace {

// ------------------------------------------------------ histogram buckets

TEST(HistogramTest, BucketBoundariesFollowBitWidth) {
  // Bucket 0 is exactly {0}; bucket i >= 1 covers [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(~std::uint64_t{0}), 64u);

  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    // Every bucket's own bounds land back in the bucket...
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(i)), i);
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(i)), i);
    // ...and the ranges tile u64 with no gaps.
    if (i > 0) {
      EXPECT_EQ(Histogram::BucketLowerBound(i),
                Histogram::BucketUpperBound(i - 1) + 1);
    }
  }
  EXPECT_EQ(Histogram::BucketUpperBound(64), ~std::uint64_t{0});
}

TEST(HistogramTest, RecordFillsTheRightBucket) {
  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(5);  // bucket 3: [4, 7]
  h.Record(7);
  const HistogramData d = h.Data();
  EXPECT_EQ(d.count, 4u);
  EXPECT_EQ(d.sum, 13u);
  ASSERT_EQ(d.buckets.size(), 4u);  // trailing zeros trimmed
  EXPECT_EQ(d.buckets[0], 1u);
  EXPECT_EQ(d.buckets[1], 1u);
  EXPECT_EQ(d.buckets[2], 0u);
  EXPECT_EQ(d.buckets[3], 2u);
}

// --------------------------------------------------------------- registry

TEST(RegistryTest, GetOrCreateReturnsStableInstruments) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.count");
  c.Add(2);
  reg.counter("a.count").Add(3);  // same instrument
  EXPECT_EQ(c.value(), 5u);

  reg.gauge("a.depth").Set(-7);
  reg.histogram("a.lat").Record(100);

  const Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counter("a.count"), 5u);
  EXPECT_EQ(snap.gauge("a.depth"), -7);
  ASSERT_NE(snap.histogram("a.lat"), nullptr);
  EXPECT_EQ(snap.histogram("a.lat")->count, 1u);
  EXPECT_EQ(snap.size(), 3u);
}

TEST(RegistryTest, CollectorsContributeUntilRemoved) {
  MetricsRegistry reg;
  std::uint64_t shard = 41;
  const std::uint64_t token = reg.AddCollector(
      [&shard](Snapshot& snap) { snap.SetCounter("shard.events", shard); });
  shard = 42;
  EXPECT_EQ(reg.TakeSnapshot().counter("shard.events"), 42u);
  reg.RemoveCollector(token);
  EXPECT_FALSE(reg.TakeSnapshot().Has("shard.events"));
}

// ------------------------------------------------------- snapshot queries

Snapshot MakeSnapshot() {
  Snapshot snap;
  snap.SetCounter("monitor.engine.fw.violations", 3);
  snap.SetCounter("monitor.engine.lsw.violations", 4);
  snap.SetCounter("monitor.engine.fw.events", 100);
  snap.SetCounter("monitor.set.events_dispatched", 104);
  snap.SetGauge("monitor.engine.fw.live_instances", 2);
  HistogramData h;
  h.count = 3;
  h.sum = 12;
  h.buckets = {0, 1, 2};
  snap.SetHistogram("monitor.set.dispatch_latency_ns", h);
  return snap;
}

TEST(SnapshotTest, ExactAndMissingLookups) {
  const Snapshot snap = MakeSnapshot();
  EXPECT_EQ(snap.counter("monitor.engine.fw.events"), 100u);
  EXPECT_EQ(snap.counter("no.such.metric"), 0u);
  EXPECT_EQ(snap.gauge("monitor.engine.fw.live_instances"), 2);
  EXPECT_EQ(snap.gauge("no.such.metric"), 0);
  EXPECT_EQ(snap.histogram("no.such.metric"), nullptr);
  // Type-mismatched reads are 0/null, not reinterpretations.
  EXPECT_EQ(snap.counter("monitor.engine.fw.live_instances"), 0u);
  EXPECT_EQ(snap.histogram("monitor.engine.fw.events"), nullptr);
}

TEST(SnapshotTest, WildcardSumsAcrossTheStar) {
  const Snapshot snap = MakeSnapshot();
  EXPECT_EQ(snap.counter("monitor.engine.*.violations"), 7u);
  EXPECT_EQ(snap.counter("monitor.engine.*.events"), 100u);
  EXPECT_EQ(snap.counter("monitor.*.violations"), 7u);
  EXPECT_EQ(snap.counter("dataplane.*.violations"), 0u);
  // Gauges and histograms don't contribute to counter wildcards.
  EXPECT_EQ(snap.counter("monitor.engine.*.live_instances"), 0u);
}

TEST(SnapshotTest, WithPrefixIteratesInNameOrder) {
  const Snapshot snap = MakeSnapshot();
  const auto fw = snap.WithPrefix("monitor.engine.fw.");
  ASSERT_EQ(fw.size(), 3u);
  EXPECT_EQ(fw[0].first, "monitor.engine.fw.events");
  EXPECT_EQ(fw[1].first, "monitor.engine.fw.live_instances");
  EXPECT_EQ(fw[2].first, "monitor.engine.fw.violations");
  EXPECT_TRUE(snap.WithPrefix("zzz.").empty());
}

TEST(SnapshotTest, AddCounterAndMergeHistogramAccumulate) {
  Snapshot snap;
  snap.AddCounter("w.events", 3);
  snap.AddCounter("w.events", 4);
  EXPECT_EQ(snap.counter("w.events"), 7u);

  HistogramData a;
  a.count = 2;
  a.sum = 3;
  a.buckets = {1, 1};
  HistogramData b;
  b.count = 1;
  b.sum = 4;
  b.buckets = {0, 0, 1};
  snap.MergeHistogram("w.lat", a);
  snap.MergeHistogram("w.lat", b);
  const HistogramData* merged = snap.histogram("w.lat");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count, 3u);
  EXPECT_EQ(merged->sum, 7u);
  EXPECT_EQ(merged->buckets, (std::vector<std::uint64_t>{1, 1, 1}));
}

// -------------------------------------------------------------- exporters

TEST(ExporterTest, JsonRoundTripsExactly) {
  const Snapshot snap = MakeSnapshot();
  const std::string json = snap.ToJson();
  const auto parsed = Snapshot::FromJson(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(*parsed == snap);
  // And the round-trip is a fixed point of the serialization.
  EXPECT_EQ(parsed->ToJson(), json);
}

TEST(ExporterTest, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(Snapshot::FromJson("").has_value());
  EXPECT_FALSE(Snapshot::FromJson("not json").has_value());
  EXPECT_FALSE(Snapshot::FromJson("{\"counters\": [1,2]}").has_value());
  EXPECT_FALSE(Snapshot::FromJson("{\"counters\": {\"a\": 1}").has_value());
}

/// Exposition-format line lint: `name{labels} value` or `name value`, metric
/// names restricted to [a-zA-Z_:][a-zA-Z0-9_:]*.
void LintPrometheusLine(const std::string& line) {
  ASSERT_FALSE(line.empty());
  std::size_t i = 0;
  ASSERT_TRUE(std::isalpha(static_cast<unsigned char>(line[0])) ||
              line[0] == '_' || line[0] == ':')
      << line;
  while (i < line.size() &&
         (std::isalnum(static_cast<unsigned char>(line[i])) ||
          line[i] == '_' || line[i] == ':'))
    ++i;
  ASSERT_LT(i, line.size()) << line;
  if (line[i] == '{') {
    const std::size_t close = line.find('}', i);
    ASSERT_NE(close, std::string::npos) << line;
    i = close + 1;
  }
  ASSERT_EQ(line[i], ' ') << line;
  // The remainder must be a number (integer, or +Inf never appears in the
  // value position — le="+Inf" lives inside the braces).
  const std::string value = line.substr(i + 1);
  ASSERT_FALSE(value.empty()) << line;
  for (std::size_t k = value[0] == '-' ? 1 : 0; k < value.size(); ++k)
    ASSERT_TRUE(std::isdigit(static_cast<unsigned char>(value[k]))) << line;
}

TEST(ExporterTest, PrometheusTextIsWellFormed) {
  const Snapshot snap = MakeSnapshot();
  const std::string text = snap.ToPrometheusText();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  std::istringstream lines(text);
  std::string line;
  bool saw_type = false;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      saw_type = true;
      continue;
    }
    ASSERT_NE(line.rfind("#", 0), 0u) << "only TYPE comments: " << line;
    LintPrometheusLine(line);
    // Every sample line carries the swmon_ namespace and sanitized names.
    EXPECT_EQ(line.rfind("swmon_", 0), 0u) << line;
    EXPECT_EQ(line.find('.'), std::string::npos) << line;
  }
  EXPECT_TRUE(saw_type);
}

TEST(ExporterTest, PrometheusHistogramBucketsAreCumulative) {
  Snapshot snap;
  HistogramData h;
  h.count = 4;
  h.sum = 13;
  h.buckets = {1, 1, 0, 2};  // values 0, 1, 5, 7
  snap.SetHistogram("monitor.set.dispatch_latency_ns", h);
  const std::string text = snap.ToPrometheusText();

  std::istringstream lines(text);
  std::string line;
  std::vector<std::uint64_t> cumulative;
  std::uint64_t inf_count = 0, count = 0, sum = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("#", 0) == 0) continue;
    const std::string value = line.substr(line.rfind(' ') + 1);
    if (line.find("_bucket{le=\"+Inf\"}") != std::string::npos)
      inf_count = std::stoull(value);
    else if (line.find("_bucket{le=") != std::string::npos)
      cumulative.push_back(std::stoull(value));
    else if (line.find("_count ") != std::string::npos)
      count = std::stoull(value);
    else if (line.find("_sum ") != std::string::npos)
      sum = std::stoull(value);
  }
  // One le-bucket per materialized bucket, monotonically non-decreasing,
  // and the +Inf bucket equals the total count.
  ASSERT_EQ(cumulative.size(), h.buckets.size());
  EXPECT_EQ(cumulative.front(), 1u);
  for (std::size_t i = 1; i < cumulative.size(); ++i)
    EXPECT_GE(cumulative[i], cumulative[i - 1]);
  EXPECT_EQ(cumulative.back(), 4u);
  EXPECT_EQ(inf_count, 4u);
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(sum, 13u);
}

TEST(TelemetryTest, CompiledInByDefault) {
  // The build compiles the instrumented dispatch path unless
  // -DSWMON_TELEMETRY=0; the runtime kill-switch is the SWMON_TELEMETRY
  // env var (tested implicitly — Enabled() is cached per process).
  EXPECT_TRUE(kCompiledIn);
  EXPECT_GT(NowNanos(), 0u);
}

}  // namespace
}  // namespace swmon::telemetry
