// SpscRing (event/spsc_ring.hpp): FIFO order, capacity bounds, blocking
// push/pop with parking, close-and-drain semantics. The two-thread cases
// carry the `tsan` CTest label — run them under -DSWMON_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "event/spsc_ring.hpp"

namespace swmon {
namespace {

TEST(SpscRingTest, TryPushPopIsFifo) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    EXPECT_TRUE(ring.TryPush(v));
  }
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(out));
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwoAndBounds) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) {
    int v = i;
    EXPECT_TRUE(ring.TryPush(v));
  }
  int overflow = 99;
  EXPECT_FALSE(ring.TryPush(overflow));
  EXPECT_EQ(overflow, 99);  // a failed push leaves the item untouched
  int out = -1;
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.TryPush(overflow));  // slot freed
}

TEST(SpscRingTest, BlockingTransferDeliversEverythingInOrder) {
  constexpr int kItems = 100000;
  SpscRing<int> ring(16);  // small ring: forces backpressure on the producer
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ring.PushBlocking(i);
    ring.Close();
  });
  int expected = 0;
  int out = -1;
  while (ring.PopBlocking(out)) {
    ASSERT_EQ(out, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(SpscRingTest, CloseWakesAParkedConsumer) {
  SpscRing<int> ring(4);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    int out;
    EXPECT_FALSE(ring.PopBlocking(out));  // parks until Close
    returned.store(true);
  });
  // Give the consumer time to pass the spin phase and park.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(SpscRingTest, CloseDrainsItemsPushedBeforeIt) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 3; ++i) {
    int v = i;
    ASSERT_TRUE(ring.TryPush(v));
  }
  ring.Close();
  int out = -1;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.PopBlocking(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.PopBlocking(out));
}

TEST(SpscRingTest, SharedPtrPayloadIsReleasedAfterPop) {
  auto payload = std::make_shared<int>(7);
  {
    SpscRing<std::shared_ptr<int>> ring(4);
    auto copy = payload;
    ASSERT_TRUE(ring.TryPush(copy));
    EXPECT_EQ(payload.use_count(), 2);
    std::shared_ptr<int> out;
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(*out, 7);
    out.reset();
    // The popped slot must not keep a stale reference alive.
    EXPECT_EQ(payload.use_count(), 1);
  }
  EXPECT_EQ(payload.use_count(), 1);
}

}  // namespace
}  // namespace swmon
