// End-to-end: DHCP handshakes + T1.9 / T1.10 / T1.11, and the DHCP+ARP
// composition + T1.12 / T1.13.
#include <gtest/gtest.h>

#include "workload/dhcp_scenario.hpp"

namespace swmon {
namespace {

TEST(DhcpScenarioTest, CorrectServerIsQuiet) {
  DhcpScenarioConfig config;
  EXPECT_EQ(RunDhcpScenario(config).TotalViolations(), 0u);
}

TEST(DhcpScenarioTest, ReleaseAndReleaseIsLegitimateReuse) {
  DhcpScenarioConfig config;
  config.release_fraction = 1.0;  // everyone releases; one re-lease follows
  const auto out = RunDhcpScenario(config);
  EXPECT_EQ(out.ViolationsOf("dhcp-no-lease-reuse"), 0u);
}

TEST(DhcpScenarioTest, SlowServerViolatesDeadline) {
  DhcpScenarioConfig config;
  config.fault = DhcpServerFault::kSlowReply;
  const auto out = RunDhcpScenario(config);
  EXPECT_EQ(out.ViolationsOf("dhcp-reply-deadline"), config.clients + 1u);
}

TEST(DhcpScenarioTest, SilentServerViolatesDeadline) {
  DhcpScenarioConfig config;
  config.fault = DhcpServerFault::kNoReply;
  config.release_fraction = 0.0;
  const auto out = RunDhcpScenario(config);
  EXPECT_EQ(out.ViolationsOf("dhcp-reply-deadline"), config.clients);
}

TEST(DhcpScenarioTest, AddressReuseDetected) {
  DhcpScenarioConfig config;
  config.fault = DhcpServerFault::kReuseLeasedAddress;
  config.release_fraction = 0.0;
  const auto out = RunDhcpScenario(config);
  // Every client after the first is handed the same still-leased address.
  EXPECT_GT(out.ViolationsOf("dhcp-no-lease-reuse"), 0u);
}

TEST(DhcpScenarioTest, TwoWellConfiguredServersDoNotOverlap) {
  DhcpScenarioConfig config;
  config.second_server = true;
  config.overlap_fault = false;
  const auto out = RunDhcpScenario(config);
  EXPECT_EQ(out.ViolationsOf("dhcp-no-lease-overlap"), 0u);
}

TEST(DhcpScenarioTest, MisconfiguredSecondServerOverlaps) {
  DhcpScenarioConfig config;
  config.second_server = true;
  config.overlap_fault = true;
  config.release_fraction = 0.0;
  const auto out = RunDhcpScenario(config);
  EXPECT_GT(out.ViolationsOf("dhcp-no-lease-overlap"), 0u);
}

TEST(DhcpArpScenarioTest, SnoopingProxyIsQuiet) {
  DhcpArpScenarioConfig config;
  EXPECT_EQ(RunDhcpArpScenario(config).TotalViolations(), 0u);
}

TEST(DhcpArpScenarioTest, NoSnoopViolatesPreload) {
  DhcpArpScenarioConfig config;
  config.proxy_fault = ArpProxyFault::kNoSnoop;
  const auto out = RunDhcpArpScenario(config);
  // Each leased address the prober asks about goes unanswered (wandering
  // match: DHCP lease fields -> ARP request fields).
  EXPECT_EQ(out.ViolationsOf("dhcparp-cache-preload"), config.clients);
}

TEST(DhcpArpScenarioTest, FabricatedReplyViolatesNoDirectReply) {
  DhcpArpScenarioConfig config;
  config.proxy_fault = ArpProxyFault::kReplyUnknown;
  const auto out = RunDhcpArpScenario(config);
  // The probe for the never-leased address gets a fabricated reply.
  EXPECT_GT(out.ViolationsOf("dhcparp-no-direct-reply"), 0u);
}

class DhcpSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DhcpSeedSweep, CorrectSetupsNeverAlarm) {
  DhcpScenarioConfig config;
  config.options.seed = GetParam();
  config.clients = 3 + GetParam() % 6;
  config.second_server = GetParam() % 2;
  EXPECT_EQ(RunDhcpScenario(config).TotalViolations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DhcpSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace swmon
