// Compiled monitors executing on their mechanisms: detection parity with
// the reference engine, pipeline-depth behaviour (Sec 3.3), slow-path
// staleness, and register collisions.
#include <gtest/gtest.h>

#include "backends/backend.hpp"
#include "backends/executor.hpp"
#include "backends/state_store.hpp"
#include "monitor/engine.hpp"
#include "properties/catalog.hpp"
#include "workload/firewall_scenario.hpp"

namespace swmon {
namespace {

/// Firewall trace with every in-window return dropped (one violation per
/// connection) and no closes/stales.
TraceRecorder FaultyFirewallTrace(std::size_t connections) {
  FirewallScenarioConfig config;
  config.fault = FirewallFault::kDropEstablishedReturn;
  config.close_fraction = 0.0;
  config.stale_return_fraction = 0.0;
  config.connections = connections;
  config.options.keep_trace = true;
  auto out = RunFirewallScenario(config);
  return std::move(*out.trace);
}

std::unique_ptr<CompiledMonitor> CompileOn(const std::string& backend_name,
                                           const Property& prop,
                                           const CostParams& params = {}) {
  for (auto& b : AllBackends()) {
    if (b->info().name != backend_name) continue;
    auto r = b->Compile(prop, params);
    EXPECT_TRUE(r.ok()) << backend_name << ": "
                        << (r.unsupported.empty() ? "" : r.unsupported[0]);
    return std::move(r.monitor);
  }
  ADD_FAILURE() << "no backend " << backend_name;
  return nullptr;
}

class BackendDetectionTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BackendDetectionTest, FirewallViolationsMatchReferenceAtModerateRate) {
  const std::size_t kConnections = 16;
  const TraceRecorder trace = FaultyFirewallTrace(kConnections);
  const Property prop = FirewallReturnNotDroppedTimeout();

  auto monitor = CompileOn(GetParam(), prop);
  ASSERT_NE(monitor, nullptr);
  trace.ReplayInto(*monitor);
  monitor->AdvanceTime(trace.events().back().time + Duration::Seconds(60));

  // At workload rate (ms gaps) even slow-path mechanisms keep up: parity
  // with the reference engine.
  EXPECT_EQ(monitor->violations().size(), kConnections) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendDetectionTest,
                         ::testing::Values("OpenState", "POF / P4", "Varanus",
                                           "Static Varanus"));

TEST(BackendExecTest, VaranusPipelineDepthTracksLiveInstances) {
  // Sec 3.3: "the number of active instances determines the pipeline
  // depth". Open many connections without returns; watch depth grow.
  FirewallScenarioConfig config;
  config.connections = 32;
  config.return_packets_per_conn = 0;
  config.close_fraction = 0.0;
  config.stale_return_fraction = 0.0;
  config.options.keep_trace = true;
  const auto out = RunFirewallScenario(config);

  const Property prop = FirewallReturnNotDropped();
  auto varanus = CompileOn("Varanus", prop);
  auto static_varanus = CompileOn("Static Varanus", prop);
  out.trace->ReplayInto(*varanus);
  out.trace->ReplayInto(*static_varanus);
  varanus->AdvanceTime(out.end_time);
  static_varanus->AdvanceTime(out.end_time);

  EXPECT_EQ(varanus->live_instances(), 32u);
  EXPECT_EQ(varanus->PipelineDepth(), 33u);  // one table per instance + base
  EXPECT_EQ(static_varanus->PipelineDepth(), 2u);  // one table per stage
}

TEST(BackendExecTest, SplitSlowPathMissesBackToBackViolations) {
  // Feature 9 / Sec 3.3: with split processing, a packet arriving while the
  // previous packet's state update is still in the slow-path queue is
  // matched against stale state. Back-to-back outbound+drop pairs within
  // the flow-mod latency are invisible to the split learn-action monitor
  // but visible to the reference engine.
  const Property prop = FirewallReturnNotDropped();
  const CostParams params;  // 250us flow-mod latency

  auto split = std::make_unique<FragmentExecutor>(
      prop, std::make_unique<FastLearnStore>(params, /*inline=*/false),
      params);
  MonitorEngine reference(prop);

  for (int c = 0; c < 10; ++c) {
    const SimTime base = SimTime::Zero() + Duration::Millis(10 * (c + 1));
    DataplaneEvent out;
    out.type = DataplaneEventType::kArrival;
    out.time = base;
    out.fields.Set(FieldId::kInPort, 1);
    out.fields.Set(FieldId::kIpSrc, 100 + c);
    out.fields.Set(FieldId::kIpDst, 200);
    DataplaneEvent drop;
    drop.type = DataplaneEventType::kEgress;
    drop.time = base + Duration::Micros(5);  // well inside the 250us window
    drop.fields.Set(FieldId::kIpSrc, 200);
    drop.fields.Set(FieldId::kIpDst, 100 + c);
    drop.fields.Set(FieldId::kEgressAction,
                    static_cast<std::uint64_t>(EgressActionValue::kDrop));
    split->OnDataplaneEvent(out);
    split->OnDataplaneEvent(drop);
    reference.ProcessEvent(out);
    reference.ProcessEvent(drop);
  }
  EXPECT_EQ(reference.violations().size(), 10u);
  EXPECT_EQ(split->violations().size(), 0u);  // state always one step behind
}

TEST(BackendExecTest, InlineModeCatchesThemButPaysLatency) {
  const Property prop = FirewallReturnNotDropped();
  const CostParams params;

  auto inline_mon = std::make_unique<FragmentExecutor>(
      prop, std::make_unique<FastLearnStore>(params, /*inline=*/true),
      params);
  for (int c = 0; c < 10; ++c) {
    const SimTime base = SimTime::Zero() + Duration::Millis(10 * (c + 1));
    DataplaneEvent out;
    out.type = DataplaneEventType::kArrival;
    out.time = base;
    out.fields.Set(FieldId::kInPort, 1);
    out.fields.Set(FieldId::kIpSrc, 100 + c);
    out.fields.Set(FieldId::kIpDst, 200);
    DataplaneEvent drop;
    drop.type = DataplaneEventType::kEgress;
    drop.time = base + Duration::Micros(5);
    drop.fields.Set(FieldId::kIpSrc, 200);
    drop.fields.Set(FieldId::kIpDst, 100 + c);
    drop.fields.Set(FieldId::kEgressAction,
                    static_cast<std::uint64_t>(EgressActionValue::kDrop));
    inline_mon->OnDataplaneEvent(out);
    inline_mon->OnDataplaneEvent(drop);
  }
  EXPECT_EQ(inline_mon->violations().size(), 10u);
  // Ten instance installs at 250us each were charged to packet processing.
  EXPECT_GE(inline_mon->costs().processing_time.nanos(), 10 * 250000);
}

TEST(BackendExecTest, TinyRegisterArrayCollides) {
  const Property prop = FirewallReturnNotDropped();
  const CostParams params;
  auto store = std::make_unique<P4RegisterStore>(params, prop.num_stages(),
                                                 /*slots_per_stage=*/2);
  const P4RegisterStore* raw = store.get();
  FragmentExecutor exec(prop, std::move(store), params);

  // 16 simultaneous connections into 2 slots: collisions guaranteed.
  for (int c = 0; c < 16; ++c) {
    DataplaneEvent out;
    out.type = DataplaneEventType::kArrival;
    out.time = SimTime::Zero() + Duration::Millis(c + 1);
    out.fields.Set(FieldId::kInPort, 1);
    out.fields.Set(FieldId::kIpSrc, 1000 + c);
    out.fields.Set(FieldId::kIpDst, 200);
    exec.OnDataplaneEvent(out);
  }
  EXPECT_GT(raw->collisions(), 0u);
  EXPECT_LE(exec.live_instances(), 2u);  // only 2 slots exist
}

TEST(BackendExecTest, VaranusRunsTimeoutActionProperty) {
  // Feature 7 end-to-end on the mechanism: the ARP reply-deadline property
  // only compiles on Varanus, and its expiry sweep fires the negative
  // observation.
  const Property prop = ArpProxyReplyDeadline();  // 1s deadline
  auto monitor = CompileOn("Varanus", prop);
  ASSERT_NE(monitor, nullptr);

  DataplaneEvent learn;
  learn.type = DataplaneEventType::kArrival;
  learn.time = SimTime::Zero() + Duration::Millis(1);
  learn.fields.Set(FieldId::kArpOp, 2);
  learn.fields.Set(FieldId::kArpSenderIp, 42);
  monitor->OnDataplaneEvent(learn);

  DataplaneEvent request;
  request.type = DataplaneEventType::kArrival;
  request.time = SimTime::Zero() + Duration::Millis(100);
  request.fields.Set(FieldId::kArpOp, 1);
  request.fields.Set(FieldId::kArpTargetIp, 42);
  monitor->OnDataplaneEvent(request);

  EXPECT_TRUE(monitor->violations().empty());
  monitor->AdvanceTime(SimTime::Zero() + Duration::Seconds(3));
  EXPECT_EQ(monitor->violations().size(), 1u);
}

TEST(BackendExecTest, CostsAttributeToTheRightMechanism) {
  const std::size_t kConnections = 8;
  const TraceRecorder trace = FaultyFirewallTrace(kConnections);
  const Property prop = FirewallReturnNotDropped();

  auto openstate = CompileOn("OpenState", prop);
  auto p4 = CompileOn("POF / P4", prop);
  auto varanus = CompileOn("Varanus", prop);
  trace.ReplayInto(*openstate);
  trace.ReplayInto(*p4);
  trace.ReplayInto(*varanus);

  EXPECT_GT(openstate->costs().state_table_ops, 0u);
  EXPECT_EQ(openstate->costs().register_ops, 0u);
  EXPECT_EQ(openstate->costs().flow_mods, 0u);

  EXPECT_GT(p4->costs().register_ops, 0u);
  EXPECT_EQ(p4->costs().flow_mods, 0u);

  EXPECT_GT(varanus->costs().flow_mods, 0u);
  EXPECT_EQ(varanus->costs().register_ops, 0u);
}

}  // namespace
}  // namespace swmon
