// swmond components and the assembled daemon: live ingestion (tailer,
// socket text + binary), the embedded HTTP control plane, tenant lifecycle
// over HTTP, and the bounded violation ring. Carries the `daemon` CTest
// label.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <functional>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <netinet/in.h>
#include <unistd.h>

#include "daemon/daemon.hpp"
#include "daemon/event_source.hpp"
#include "daemon/http_server.hpp"
#include "daemon/violation_ring.hpp"
#include "netsim/trace_io.hpp"

namespace swmon {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

DataplaneEvent MakeEvent(std::int64_t time_ns, std::uint64_t ip_src,
                         std::uint64_t l4_dst) {
  DataplaneEvent ev;
  ev.type = DataplaneEventType::kArrival;
  ev.time = SimTime::Zero() + Duration::Nanos(time_ns);
  ev.packet_bytes = 64;
  ev.fields.Set(FieldId::kIpSrc, ip_src);
  ev.fields.Set(FieldId::kL4DstPort, l4_dst);
  return ev;
}

/// A property that violates when one source hits port 80 then port 81.
constexpr const char* kTwoStepSpl = R"(
property two_step {
  vars S;
  stage "first" on arrival {
    match l4_dst == 80;
    bind S = ip_src;
  }
  stage "second" on arrival {
    match ip_src == $S;
    match l4_dst == 81;
  }
})";

/// One two_step violation from source `ip` at `t1`.
std::vector<DataplaneEvent> TwoStepPair(std::int64_t t0, std::int64_t t1,
                                        std::uint64_t ip) {
  return {MakeEvent(t0, ip, 80), MakeEvent(t1, ip, 81)};
}

bool SendToTcp(std::uint16_t port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + sent, payload.size() - sent,
                             0);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return true;
}

void WaitForIngest(const SwmonDaemon& daemon, std::uint64_t at_least,
                   int timeout_ms = 5000) {
  for (int waited = 0; waited < timeout_ms; ++waited) {
    if (daemon.events_ingested() >= at_least) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---------------------------------------------------------------- parsing

TEST(ParseEventLineTest, ParsesTypesFieldsAndHex) {
  DataplaneEvent ev;
  std::string error;
  ASSERT_TRUE(ParseEventLine("arrival 1500 bytes=64 ip_src=0x0a000001 l4_dst=80",
                             ev, &error))
      << error;
  EXPECT_EQ(ev.type, DataplaneEventType::kArrival);
  EXPECT_EQ(ev.time.nanos(), 1500);
  EXPECT_EQ(ev.packet_bytes, 64u);
  EXPECT_EQ(ev.fields.Get(FieldId::kIpSrc), 0x0a000001u);
  EXPECT_EQ(ev.fields.Get(FieldId::kL4DstPort), 80u);

  ASSERT_TRUE(ParseEventLine("egress 2000", ev, &error)) << error;
  EXPECT_EQ(ev.type, DataplaneEventType::kEgress);
  ASSERT_TRUE(ParseEventLine("link 3000 link_up=1", ev, &error)) << error;
  EXPECT_EQ(ev.type, DataplaneEventType::kLinkStatus);
}

TEST(ParseEventLineTest, BlankAndCommentLinesAreSkippedSilently) {
  DataplaneEvent ev;
  std::string error = "sentinel";
  EXPECT_FALSE(ParseEventLine("", ev, &error));
  EXPECT_TRUE(error.empty());
  error = "sentinel";
  EXPECT_FALSE(ParseEventLine("  # comment", ev, &error));
  EXPECT_TRUE(error.empty());
}

TEST(ParseEventLineTest, RejectsBadInput) {
  DataplaneEvent ev;
  std::string error;
  EXPECT_FALSE(ParseEventLine("knock 100", ev, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseEventLine("arrival", ev, &error));
  EXPECT_FALSE(ParseEventLine("arrival xyz", ev, &error));
  EXPECT_FALSE(ParseEventLine("arrival 100 nosuchfield=1", ev, &error));
  EXPECT_FALSE(ParseEventLine("arrival 100 ip_src", ev, &error));
}

// ---------------------------------------------------------------- decoder

TEST(TraceEventDecoderTest, DecodesAcrossArbitraryChunkBoundaries) {
  ByteWriter w;
  std::vector<DataplaneEvent> events;
  for (int i = 0; i < 17; ++i) {
    events.push_back(MakeEvent(1000 * (i + 1), 7 + i, i % 2 ? 80 : 81));
    EncodeTraceEvent(w, events.back());
  }
  const auto& bytes = w.bytes();

  // Worst case: one byte at a time.
  TraceEventDecoder dec;
  std::vector<DataplaneEvent> decoded;
  for (const std::uint8_t b : bytes) {
    dec.Feed(&b, 1);
    DataplaneEvent ev;
    while (dec.Next(ev) == TraceEventDecoder::Result::kEvent)
      decoded.push_back(ev);
  }
  ASSERT_EQ(decoded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(decoded[i].time, events[i].time) << i;
    EXPECT_EQ(decoded[i].fields.Get(FieldId::kIpSrc),
              events[i].fields.Get(FieldId::kIpSrc))
        << i;
  }
  EXPECT_EQ(dec.pending_bytes(), 0u);
  EXPECT_EQ(dec.events_decoded(), events.size());
}

TEST(TraceEventDecoderTest, CorruptStreamIsTerminal) {
  TraceEventDecoder dec;
  std::vector<std::uint8_t> junk(64, 0xff);  // type byte 0xff: invalid
  dec.Feed(junk.data(), junk.size());
  DataplaneEvent ev;
  EXPECT_EQ(dec.Next(ev), TraceEventDecoder::Result::kCorrupt);
  EXPECT_FALSE(dec.error().empty());
  EXPECT_EQ(dec.Next(ev), TraceEventDecoder::Result::kCorrupt);
}

TEST(TraceEventDecoderTest, OversizedPresenceMaskIsCorruptNotOverread) {
  // A presence mask claiming fields beyond kNumFieldIds is a malformed
  // (oversized) record: the decoder must flag it *before* trying to read
  // the impossible field payload, not wait for 64 values that never come.
  ByteWriter w;
  w.WriteU8(0);                      // valid type
  w.WriteU64LE(1000);                // time
  w.WriteU32LE(64);                  // packet_bytes
  w.WriteU64LE(~std::uint64_t{0});   // presence: all 64 bits
  TraceEventDecoder dec;
  dec.Feed(w.bytes().data(), w.bytes().size());
  DataplaneEvent ev;
  EXPECT_EQ(dec.Next(ev), TraceEventDecoder::Result::kCorrupt);
  EXPECT_NE(dec.error().find("presence"), std::string::npos) << dec.error();
}

TEST(TraceEventDecoderTest, TruncatedRecordIsNeedMoreUntilTheLastByte) {
  ByteWriter w;
  EncodeTraceEvent(w, MakeEvent(1000, 7, 80));
  const auto& bytes = w.bytes();
  TraceEventDecoder dec;
  dec.Feed(bytes.data(), bytes.size() - 1);
  DataplaneEvent ev;
  EXPECT_EQ(dec.Next(ev), TraceEventDecoder::Result::kNeedMore);
  EXPECT_EQ(dec.pending_bytes(), bytes.size() - 1);
  const std::uint8_t last = bytes.back();
  dec.Feed(&last, 1);
  EXPECT_EQ(dec.Next(ev), TraceEventDecoder::Result::kEvent);
  EXPECT_EQ(dec.pending_bytes(), 0u);
  EXPECT_EQ(ev.fields.Get(FieldId::kIpSrc), std::optional<std::uint64_t>(7));
}

// ------------------------------------------------------ corrupted sockets

std::string BinaryStreamPayload(const std::vector<DataplaneEvent>& events) {
  ByteWriter w;
  const std::uint8_t magic[4] = {'S', 'W', 'M', 'T'};
  w.WriteBytes(magic);
  w.WriteU32LE(2);
  w.WriteU64LE(0);
  for (const DataplaneEvent& ev : events) EncodeTraceEvent(w, ev);
  return std::string(reinterpret_cast<const char*>(w.bytes().data()),
                     w.bytes().size());
}

std::vector<DataplaneEvent> PollUntil(SocketSource& src, std::size_t want,
                                      int timeout_ms = 5000) {
  std::vector<DataplaneEvent> out;
  for (int waited = 0; waited < timeout_ms && out.size() < want; ++waited) {
    src.Poll(out);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return out;
}

void WaitForCount(const std::function<std::uint64_t()>& counter,
                  std::uint64_t at_least, int timeout_ms = 5000) {
  for (int waited = 0; waited < timeout_ms; ++waited) {
    if (counter() >= at_least) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(SocketSourceCorruptionTest, CorruptBinaryRecordCountsAndKeepsServing) {
  SocketSourceOptions opts;
  opts.tcp_enabled = true;
  SocketSource src(opts);
  std::string error;
  ASSERT_TRUE(src.Start(&error)) << error;

  // One good event, then garbage (0xff is not a valid type byte).
  std::string payload = BinaryStreamPayload({MakeEvent(1000, 7, 80)});
  payload.append(40, '\xff');
  ASSERT_TRUE(SendToTcp(src.tcp_port(), payload));
  WaitForCount([&] { return src.decode_errors(); }, 1);
  EXPECT_EQ(src.decode_errors(), 1u);
  EXPECT_EQ(src.protocol_errors(), 1u);
  // The event decoded before the corruption was kept.
  EXPECT_EQ(PollUntil(src, 1).size(), 1u);

  // The listener survives: a clean follow-up connection still delivers.
  ASSERT_TRUE(SendToTcp(src.tcp_port(),
                        BinaryStreamPayload({MakeEvent(2000, 8, 81)})));
  const auto after = PollUntil(src, 1);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].fields.Get(FieldId::kIpSrc),
            std::optional<std::uint64_t>(8));
  EXPECT_EQ(src.decode_errors(), 1u);  // the good stream added nothing
  src.Stop();
}

TEST(SocketSourceCorruptionTest, TruncatedBinaryTailSurfacesDecodeError) {
  // A stream that closes mid-record previously vanished without a trace;
  // it must count as a decode error (but not a dropped connection).
  SocketSourceOptions opts;
  opts.tcp_enabled = true;
  SocketSource src(opts);
  std::string error;
  ASSERT_TRUE(src.Start(&error)) << error;

  std::string payload =
      BinaryStreamPayload({MakeEvent(1000, 7, 80), MakeEvent(2000, 7, 81)});
  payload.resize(payload.size() - 5);  // close mid-second-event
  ASSERT_TRUE(SendToTcp(src.tcp_port(), payload));
  WaitForCount([&] { return src.decode_errors(); }, 1);
  EXPECT_EQ(src.decode_errors(), 1u);
  EXPECT_EQ(src.protocol_errors(), 0u);
  const auto out = PollUntil(src, 1);
  ASSERT_EQ(out.size(), 1u);  // the complete first event survived
  EXPECT_EQ(out[0].time.nanos(), 1000);

  // Same for a stream that dies inside the 16-byte header.
  ASSERT_TRUE(SendToTcp(src.tcp_port(), std::string("SWMT\x02", 5)));
  WaitForCount([&] { return src.decode_errors(); }, 2);
  EXPECT_EQ(src.decode_errors(), 2u);
  src.Stop();
}

TEST(SocketSourceCorruptionTest, UnterminatedFinalTextLineIsParsed) {
  // `printf 'arrival ...' | nc` without a trailing newline must still
  // ingest the line at close instead of discarding it.
  SocketSourceOptions opts;
  opts.tcp_enabled = true;
  SocketSource src(opts);
  std::string error;
  ASSERT_TRUE(src.Start(&error)) << error;

  ASSERT_TRUE(SendToTcp(src.tcp_port(),
                        "arrival 1000 ip_src=7 l4_dst=80\n"
                        "arrival 2000 ip_src=7 l4_dst=81"));
  const auto out = PollUntil(src, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].time.nanos(), 2000);
  EXPECT_EQ(src.decode_errors(), 0u);

  // A malformed unterminated tail is counted, not crashed on.
  ASSERT_TRUE(SendToTcp(src.tcp_port(), "arrival 3000\nknock 4000"));
  WaitForCount([&] { return src.decode_errors(); }, 1);
  EXPECT_EQ(src.decode_errors(), 1u);
  EXPECT_EQ(PollUntil(src, 1).size(), 1u);  // the good line before it
  src.Stop();
}

TEST(SocketSourceCorruptionTest, OversizedTextLineIsRejectedNotBuffered) {
  SocketSourceOptions opts;
  opts.tcp_enabled = true;
  SocketSource src(opts);
  std::string error;
  ASSERT_TRUE(src.Start(&error)) << error;

  // 80KiB with no newline: the reader must cap the line and drop the
  // connection instead of growing the buffer until the client relents.
  ASSERT_TRUE(SendToTcp(src.tcp_port(), std::string(80 * 1024, 'a')));
  WaitForCount([&] { return src.decode_errors(); }, 1);
  EXPECT_GE(src.decode_errors(), 1u);
  EXPECT_GE(src.protocol_errors(), 1u);
  std::vector<DataplaneEvent> out;
  src.Poll(out);
  EXPECT_TRUE(out.empty());
  src.Stop();
}

// ----------------------------------------------------------------- tailer

TEST(TraceTailerTest, FollowsAGrowingFileAcrossFlushes) {
  const std::string path = TempPath("tailer_grow.swmt");
  std::remove(path.c_str());

  TraceTailer tailer(path);
  std::vector<DataplaneEvent> out;
  // File does not exist yet: alive, no events.
  EXPECT_TRUE(tailer.Poll(out));
  EXPECT_TRUE(out.empty());

  TraceFileWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(path, &error)) << error;
  ASSERT_TRUE(writer.Flush(&error)) << error;  // header only so far
  EXPECT_TRUE(tailer.Poll(out));
  EXPECT_TRUE(out.empty());

  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i)
      writer.Append(MakeEvent(1000 * (round * 3 + i + 1), 9, 80));
    ASSERT_TRUE(writer.Flush(&error)) << error;
    std::vector<DataplaneEvent> batch;
    EXPECT_TRUE(tailer.Poll(batch));
    EXPECT_EQ(batch.size(), 3u) << "round " << round;
    out.insert(out.end(), batch.begin(), batch.end());
  }
  writer.Close();
  EXPECT_EQ(out.size(), 15u);
  EXPECT_EQ(tailer.events_ingested(), 15u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].time.nanos(), static_cast<std::int64_t>(1000 * (i + 1)));

  // And the finished file is a valid v2 trace for the batch loader too.
  TraceRecorder loaded;
  ASSERT_TRUE(LoadTrace(path, loaded, &error)) << error;
  EXPECT_EQ(loaded.size(), 15u);
}

TEST(TraceTailerTest, RejectsNonTraceFile) {
  const std::string path = TempPath("tailer_bad.swmt");
  std::ofstream(path) << "this is not a trace file at all, definitely";
  TraceTailer tailer(path);
  std::vector<DataplaneEvent> out;
  EXPECT_FALSE(tailer.Poll(out));
  EXPECT_FALSE(tailer.error().empty());
}

// ------------------------------------------------------------------- ring

TEST(ViolationRingTest, DropsOldestAndCounts) {
  ViolationRing ring(3);
  for (int i = 0; i < 5; ++i) {
    Violation v;
    v.property = "p" + std::to_string(i);
    ring.Push(std::move(v));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto drained = ring.Drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].property, "p2");  // oldest surviving first
  EXPECT_EQ(drained[2].property, "p4");
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.drained(), 3u);
}

// ------------------------------------------------------------------- http

TEST(HttpServerTest, ServesHandlerAndRoutesMethodPathQueryBody) {
  HttpServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0,
                           [](const HttpRequest& req) {
                             if (req.path == "/boom")
                               throw std::runtime_error("kaboom");
                             HttpResponse resp;
                             resp.body = req.method + " " + req.path + " q=" +
                                         req.QueryParam("q") + " body=" +
                                         req.body;
                             return resp;
                           },
                           &error))
      << error;
  ASSERT_NE(server.port(), 0);

  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpRoundTrip(server.port(), "GET", "/x?q=42", "", &status,
                            &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "GET /x q=42 body=");

  ASSERT_TRUE(HttpRoundTrip(server.port(), "POST", "/y", "hello", &status,
                            &body, &error))
      << error;
  EXPECT_EQ(body, "POST /y q= body=hello");

  // Handler exceptions become 500s, not dead servers.
  ASSERT_TRUE(
      HttpRoundTrip(server.port(), "GET", "/boom", "", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 500);
  ASSERT_TRUE(
      HttpRoundTrip(server.port(), "GET", "/x", "", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_GE(server.requests_served(), 4u);
  server.Stop();
}

// ------------------------------------------------------------ end-to-end

TEST(SwmonDaemonTest, SocketTextIngestToViolationsOverHttp) {
  SwmondOptions opts;
  opts.tcp_enabled = true;
  SwmonDaemon daemon(std::move(opts));
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;
  ASSERT_NE(daemon.tcp_port(), 0);
  ASSERT_NE(daemon.http_port(), 0);

  // Hot-attach a property over the control API (tenant auto-created).
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "POST",
                            "/tenants/acme/properties", kTwoStepSpl, &status,
                            &body, &error))
      << error;
  EXPECT_EQ(status, 201) << body;
  EXPECT_NE(body.find("\"id\":0"), std::string::npos) << body;

  // Bad SPL is a 400 with the parser's message, not a crash.
  ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "POST",
                            "/tenants/acme/properties", "property oops {",
                            &status, &body, &error))
      << error;
  EXPECT_EQ(status, 400);

  ASSERT_TRUE(SendToTcp(daemon.tcp_port(),
                        "# text protocol\n"
                        "arrival 1000 bytes=64 ip_src=7 l4_dst=80\n"
                        "arrival 2000 bytes=64 ip_src=7 l4_dst=81\n"));
  WaitForIngest(daemon, 2);
  ASSERT_EQ(daemon.events_ingested(), 2u);

  ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "GET",
                            "/violations?tenant=acme", "", &status, &body,
                            &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"property\":\"two_step\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"time_ns\":2000"), std::string::npos) << body;

  // Drained means drained: a second query is empty.
  ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "GET",
                            "/violations?tenant=acme", "", &status, &body,
                            &error))
      << error;
  EXPECT_EQ(body, "[]\n");

  // Unknown tenants and unknown routes are 404s.
  ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "GET",
                            "/violations?tenant=ghost", "", &status, &body,
                            &error))
      << error;
  EXPECT_EQ(status, 404);
  ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "GET", "/nope", "", &status,
                            &body, &error))
      << error;
  EXPECT_EQ(status, 404);

  daemon.Stop();
}

TEST(SwmonDaemonTest, BinarySocketIngestMatchesTraceWireFormat) {
  SwmondOptions opts;
  opts.tcp_enabled = true;
  SwmonDaemon daemon(std::move(opts));
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;
  std::string attach_error;
  ASSERT_TRUE(
      daemon.AttachProperty("bin", kTwoStepSpl, &attach_error).has_value())
      << attach_error;

  // Exactly what `cat trace.swmt | nc` would send: header + wire events.
  ByteWriter w;
  const std::uint8_t magic[4] = {'S', 'W', 'M', 'T'};
  w.WriteBytes(magic);
  w.WriteU32LE(2);
  w.WriteU64LE(0);  // count is ignored by the stream decoder
  for (const DataplaneEvent& ev : TwoStepPair(1000, 2000, 9))
    EncodeTraceEvent(w, ev);
  ASSERT_TRUE(SendToTcp(daemon.tcp_port(),
                        std::string(reinterpret_cast<const char*>(
                                        w.bytes().data()),
                                    w.bytes().size())));
  WaitForIngest(daemon, 2);
  EXPECT_EQ(daemon.events_ingested(), 2u);

  const auto drained = daemon.DrainViolations("bin");
  ASSERT_TRUE(drained.has_value());
  ASSERT_EQ(drained->size(), 1u);
  EXPECT_EQ((*drained)[0].property, "two_step");
  daemon.Stop();
}

TEST(SwmonDaemonTest, TailerIngestAndConfigDirTenants) {
  namespace fs = std::filesystem;
  const std::string config_dir = TempPath("swmond_config");
  fs::remove_all(config_dir);
  fs::create_directories(config_dir + "/teamA");
  std::ofstream(config_dir + "/teamA/two_step.spl") << kTwoStepSpl;

  const std::string trace_path = TempPath("swmond_live.swmt");
  std::remove(trace_path.c_str());

  SwmondOptions opts;
  opts.config_dir = config_dir;
  opts.trace_path = trace_path;
  opts.http_enabled = true;
  SwmonDaemon daemon(std::move(opts));
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  const auto props = daemon.TenantProperties("teamA");
  ASSERT_EQ(props.size(), 1u);
  EXPECT_EQ(props[0].name, "two_step");

  TraceFileWriter writer;
  ASSERT_TRUE(writer.Open(trace_path, &error)) << error;
  for (const DataplaneEvent& ev : TwoStepPair(1000, 2000, 5))
    writer.Append(ev);
  ASSERT_TRUE(writer.Flush(&error)) << error;
  WaitForIngest(daemon, 2);
  EXPECT_EQ(daemon.events_ingested(), 2u);

  // Grow the file again: the tailer keeps following.
  for (const DataplaneEvent& ev : TwoStepPair(3000, 4000, 6))
    writer.Append(ev);
  ASSERT_TRUE(writer.Flush(&error)) << error;
  WaitForIngest(daemon, 4);
  EXPECT_EQ(daemon.events_ingested(), 4u);
  writer.Close();

  const auto drained = daemon.DrainViolations("teamA");
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->size(), 2u);
  daemon.Stop();
}

TEST(SwmonDaemonTest, PerTenantEvictionFileCapsInstances) {
  namespace fs = std::filesystem;
  const std::string config_dir = TempPath("swmond_eviction_config");
  fs::remove_all(config_dir);
  fs::create_directories(config_dir + "/capped");
  fs::create_directories(config_dir + "/unbounded");
  std::ofstream(config_dir + "/capped/two_step.spl") << kTwoStepSpl;
  std::ofstream(config_dir + "/capped/eviction") << "creation-order:1\n";
  std::ofstream(config_dir + "/unbounded/two_step.spl") << kTwoStepSpl;

  const std::string trace_path = TempPath("swmond_eviction.swmt");
  std::remove(trace_path.c_str());

  SwmondOptions opts;
  opts.config_dir = config_dir;
  opts.trace_path = trace_path;
  opts.http_enabled = false;
  SwmonDaemon daemon(std::move(opts));
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  // Three first-steps open instances for ips 7/8/9; 'capped' (cap 1,
  // creation order) retains only ip 9 by the time the second steps land.
  TraceFileWriter writer;
  ASSERT_TRUE(writer.Open(trace_path, &error)) << error;
  for (std::uint64_t ip : {7u, 8u, 9u})
    writer.Append(MakeEvent(1000 * static_cast<std::int64_t>(ip), ip, 80));
  for (std::uint64_t ip : {7u, 8u, 9u})
    writer.Append(MakeEvent(1000 * static_cast<std::int64_t>(10 + ip), ip, 81));
  ASSERT_TRUE(writer.Flush(&error)) << error;
  WaitForIngest(daemon, 6);
  writer.Close();

  const auto capped = daemon.DrainViolations("capped");
  const auto unbounded = daemon.DrainViolations("unbounded");
  ASSERT_TRUE(capped.has_value());
  ASSERT_TRUE(unbounded.has_value());
  EXPECT_EQ(capped->size(), 1u);
  EXPECT_EQ(unbounded->size(), 3u);
  daemon.Stop();
}

TEST(SwmonDaemonTest, StartFailsOnBadEvictionFileWithFileInMessage) {
  namespace fs = std::filesystem;
  const std::string config_dir = TempPath("swmond_bad_eviction");
  fs::remove_all(config_dir);
  fs::create_directories(config_dir + "/teamA");
  std::ofstream(config_dir + "/teamA/two_step.spl") << kTwoStepSpl;
  std::ofstream(config_dir + "/teamA/eviction") << "frobnicate:1\n";

  SwmondOptions opts;
  opts.config_dir = config_dir;
  opts.tcp_enabled = true;
  SwmonDaemon daemon(std::move(opts));
  std::string error;
  EXPECT_FALSE(daemon.Start(&error));
  EXPECT_NE(error.find("eviction"), std::string::npos) << error;
  EXPECT_NE(error.find("frobnicate"), std::string::npos) << error;
}

TEST(SwmonDaemonTest, StartFailsOnBadConfigWithFileInMessage) {
  namespace fs = std::filesystem;
  const std::string config_dir = TempPath("swmond_badconfig");
  fs::remove_all(config_dir);
  fs::create_directories(config_dir + "/teamA");
  std::ofstream(config_dir + "/teamA/broken.spl") << "property nope {";

  SwmondOptions opts;
  opts.config_dir = config_dir;
  opts.tcp_enabled = true;
  SwmonDaemon daemon(std::move(opts));
  std::string error;
  EXPECT_FALSE(daemon.Start(&error));
  EXPECT_NE(error.find("broken.spl"), std::string::npos) << error;
}

TEST(SwmonDaemonTest, NonMonotoneTimestampsAreClampedNotFatal) {
  SwmondOptions opts;
  opts.tcp_enabled = true;
  SwmonDaemon daemon(std::move(opts));
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;
  std::string attach_error;
  ASSERT_TRUE(
      daemon.AttachProperty("t", kTwoStepSpl, &attach_error).has_value());

  // Second event goes backwards in time; the daemon clamps it forward.
  ASSERT_TRUE(SendToTcp(daemon.tcp_port(),
                        "arrival 5000 ip_src=7 l4_dst=80\n"
                        "arrival 1000 ip_src=7 l4_dst=81\n"));
  WaitForIngest(daemon, 2);
  const auto drained = daemon.DrainViolations("t");
  ASSERT_TRUE(drained.has_value());
  ASSERT_EQ(drained->size(), 1u);
  EXPECT_EQ((*drained)[0].time.nanos(), 5000);  // clamped to the high-water

  const telemetry::Snapshot snap = daemon.Telemetry();
  ASSERT_TRUE(snap.Has("daemon.events_clamped"));
  EXPECT_EQ(snap.samples().at("daemon.events_clamped").counter, 1u);
  daemon.Stop();
}

TEST(SwmonDaemonTest, HotDetachOverHttpAndTenantListing) {
  SwmondOptions opts;
  opts.tcp_enabled = true;
  opts.workers = 2;  // parallel tenants behind the same control plane
  SwmonDaemon daemon(std::move(opts));
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "POST",
                            "/tenants/acme/properties", kTwoStepSpl, &status,
                            &body, &error))
      << error;
  ASSERT_EQ(status, 201) << body;

  ASSERT_TRUE(SendToTcp(daemon.tcp_port(),
                        "arrival 1000 ip_src=7 l4_dst=80\n"
                        "arrival 2000 ip_src=7 l4_dst=81\n"));
  WaitForIngest(daemon, 2);

  ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "GET", "/tenants", "", &status,
                            &body, &error))
      << error;
  EXPECT_NE(body.find("\"name\":\"acme\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"name\":\"two_step\""), std::string::npos) << body;

  ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "DELETE",
                            "/tenants/acme/properties/0", "", &status, &body,
                            &error))
      << error;
  EXPECT_EQ(status, 200) << body;
  // Detach is idempotent at the HTTP layer: second delete is a 404.
  ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "DELETE",
                            "/tenants/acme/properties/0", "", &status, &body,
                            &error))
      << error;
  EXPECT_EQ(status, 404);

  // The detached property's violations survived into the tenant ring.
  ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "GET",
                            "/violations?tenant=acme", "", &status, &body,
                            &error))
      << error;
  EXPECT_NE(body.find("\"property\":\"two_step\""), std::string::npos) << body;

  // /metrics and /telemetry.json keep serving throughout.
  ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "GET", "/metrics", "", &status,
                            &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("swmon_daemon_events_ingested 2"), std::string::npos)
      << body;
  ASSERT_TRUE(HttpRoundTrip(daemon.http_port(), "GET", "/telemetry.json", "",
                            &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  const auto parsed = telemetry::Snapshot::FromJson(body);
  ASSERT_TRUE(parsed.has_value()) << body;
  EXPECT_TRUE(parsed->Has("daemon.events_ingested"));
  daemon.Stop();
}

TEST(SwmonDaemonTest, UnixSocketIngest) {
  const std::string sock_path = TempPath("swmond_test.sock");
  SwmondOptions opts;
  opts.unix_socket_path = sock_path;
  SwmonDaemon daemon(std::move(opts));
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;
  std::string attach_error;
  ASSERT_TRUE(
      daemon.AttachProperty("u", kTwoStepSpl, &attach_error).has_value());

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                sock_path.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string payload =
      "arrival 1000 ip_src=3 l4_dst=80\narrival 2000 ip_src=3 l4_dst=81\n";
  ASSERT_EQ(::send(fd, payload.data(), payload.size(), 0),
            static_cast<ssize_t>(payload.size()));
  ::close(fd);

  WaitForIngest(daemon, 2);
  const auto drained = daemon.DrainViolations("u");
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->size(), 1u);
  daemon.Stop();
}

TEST(TenantShardModeTest, InstanceShardedTenantMatchesSerialTenant) {
  // The --shard-mode knob reaches the tenant's worker pool: an instance-
  // sharded parallel tenant must drain exactly the violations a serial
  // tenant sees on the same stream, through the same ring/telemetry
  // surface the daemon uses.
  TenantOptions serial_opts;
  Tenant serial("serial", serial_opts);

  TenantOptions sharded_opts;
  sharded_opts.workers = 2;
  sharded_opts.shard_mode = ShardMode::kInstance;
  Tenant sharded("sharded", sharded_opts);

  std::string error;
  ASSERT_TRUE(serial.AttachSpl(kTwoStepSpl, &error).has_value()) << error;
  ASSERT_TRUE(sharded.AttachSpl(kTwoStepSpl, &error).has_value()) << error;

  std::vector<DataplaneEvent> events;
  for (std::uint64_t ip = 1; ip <= 40; ++ip) {
    const std::int64_t base = static_cast<std::int64_t>(ip) * 1000;
    for (const DataplaneEvent& ev : TwoStepPair(base, base + 500, ip))
      events.push_back(ev);
  }
  std::sort(events.begin(), events.end(),
            [](const DataplaneEvent& a, const DataplaneEvent& b) {
              return a.time < b.time;
            });
  for (const DataplaneEvent& ev : events) {
    serial.Deliver(ev);
    sharded.Deliver(ev);
  }
  serial.DrainEngines();
  sharded.DrainEngines();

  const std::vector<Violation> want = serial.DrainRing();
  const std::vector<Violation> got = sharded.DrainRing();
  ASSERT_EQ(want.size(), 40u);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].time, got[i].time) << i;
    EXPECT_EQ(want[i].instance_id, got[i].instance_id) << i;
    EXPECT_EQ(want[i].bindings, got[i].bindings) << i;
  }
}

TEST(ViolationsToJsonTest, EscapesAndSerializes) {
  Violation v;
  v.property = "has \"quotes\"";
  v.time = SimTime::Zero() + Duration::Nanos(7);
  v.instance_id = 3;
  v.trigger_stage = "line\nbreak";
  v.bindings = {{"H", 42}};
  const std::string json = ViolationsToJson({v});
  EXPECT_NE(json.find("has \\\"quotes\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos) << json;
  EXPECT_NE(json.find("\"H\":42"), std::string::npos) << json;
  EXPECT_EQ(ViolationsToJson({}), "[]\n");
}

}  // namespace
}  // namespace swmon
