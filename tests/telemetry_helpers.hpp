// Test-side conveniences for reading engine counters through the snapshot
// API. Tests that used to poke MonitorStats fields now go through
// PropertyMonitor::CollectInto — one query path, never-stale timer gauges,
// and the same helpers work for either engine (interpreted or compiled).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "monitor/property_monitor.hpp"
#include "telemetry/snapshot.hpp"

namespace swmon {

/// One engine counter by leaf name, e.g. EngineStat(engine, "violations").
inline std::uint64_t EngineStat(const PropertyMonitor& engine,
                                std::string_view leaf) {
  telemetry::Snapshot snap;
  engine.CollectInto(snap, "t");
  return snap.counter(std::string("monitor.engine.t.") + std::string(leaf));
}

/// One engine gauge by leaf name, e.g. EngineGauge(engine, "live_instances").
inline std::int64_t EngineGauge(const PropertyMonitor& engine,
                                std::string_view leaf) {
  telemetry::Snapshot snap;
  engine.CollectInto(snap, "t");
  return snap.gauge(std::string("monitor.engine.t.") + std::string(leaf));
}

}  // namespace swmon
