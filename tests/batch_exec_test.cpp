// Differential harness for batch-mode execution (PR 9): the batch entry
// points — MonitorSet's micro-batcher, PropertyMonitor::ProcessEventBatch /
// ProcessShardedBatch, and the parallel workers' batched drains — must be
// observationally bit-identical to scalar per-event delivery: same
// violations (instance ids, binding order), same counters for everything
// CollectInto publishes, including the compiled engine's OpenMap probe
// telemetry and the lazily-maintained timer counters when a stream
// interleaves AdvanceTime quiesce points with partial windows. Also covers
// hot attach/detach invalidating the fused-key groups mid-stream, and the
// sharded batch path across 1/2/4/8 workers in both shard modes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "monitor/compiled/engine.hpp"
#include "monitor/engine.hpp"
#include "monitor/fused_keys.hpp"
#include "monitor/monitor_set.hpp"
#include "monitor/parallel_monitor_set.hpp"
#include "properties/catalog.hpp"

namespace swmon {
namespace {

/// The EngineFuzz event soup (fuzz_test.cpp): random types, random field
/// sprinkles in a small value range so stages actually chain and violate.
std::vector<DataplaneEvent> FuzzSeedStream(std::uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  SimTime t = SimTime::Zero();
  for (int i = 0; i < count; ++i) {
    DataplaneEvent ev;
    t = t + Duration::Millis(1 + static_cast<std::int64_t>(rng.NextBelow(50)));
    ev.time = t;
    const auto roll = rng.NextBelow(10);
    ev.type = roll < 4   ? DataplaneEventType::kArrival
              : roll < 8 ? DataplaneEventType::kEgress
                         : DataplaneEventType::kLinkStatus;
    for (std::size_t f = 0; f < kNumFieldIds; ++f) {
      if (rng.NextBool(0.35))
        ev.fields.Set(static_cast<FieldId>(f), rng.NextBelow(8));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<Property> Table1Properties() {
  std::vector<Property> props;
  for (const CatalogEntry& e : BuildCatalog())
    if (e.in_table1) props.push_back(e.property);
  return props;
}

void ExpectViolationEq(const Violation& a, const Violation& b,
                       const std::string& label) {
  EXPECT_EQ(a.property, b.property) << label;
  EXPECT_EQ(a.time, b.time) << label;
  EXPECT_EQ(a.instance_id, b.instance_id) << label;
  EXPECT_EQ(a.trigger_stage, b.trigger_stage) << label;
  EXPECT_EQ(a.bindings, b.bindings) << label;
  EXPECT_EQ(a.history.size(), b.history.size()) << label;
}

void ExpectViolationsEq(const std::vector<Violation>& a,
                        const std::vector<Violation>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i)
    ExpectViolationEq(a[i], b[i], label + " [" + std::to_string(i) + "]");
}

/// Full snapshot parity between a scalar-delivery set and a batched one:
/// every scalar name must exist with a bit-identical value (this covers the
/// engines' monitor.compiled.* probe telemetry and timer counters — the
/// determinism claim is that batching changes NO published number), and the
/// batched snapshot may only add the monitor.set.batch.* plumbing counters.
void ExpectSnapshotsAgree(const telemetry::Snapshot& scalar,
                          const telemetry::Snapshot& batched,
                          const std::string& label) {
  for (const auto& [name, sample] : scalar.samples()) {
    ASSERT_TRUE(batched.Has(name)) << label << " batched missing " << name;
    EXPECT_TRUE(sample == batched.samples().at(name)) << label << " at "
                                                      << name;
  }
  std::size_t extra = 0;
  for (const auto& [name, sample] : batched.samples())
    if (name.rfind("monitor.set.batch.", 0) == 0) ++extra;
  EXPECT_EQ(scalar.size() + extra, batched.size()) << label;
}

/// Drives `set` through the stream with AdvanceTime quiesce points
/// interleaved every `advance_every` events at a +25ms horizon — chosen
/// coprime to the batch windows under test so partial windows span them.
void Drive(MonitorSet& set, const std::vector<DataplaneEvent>& events,
           std::size_t advance_every) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    set.OnDataplaneEvent(events[i]);
    if (advance_every != 0 && (i + 1) % advance_every == 0)
      set.AdvanceTime(events[i].time + Duration::Millis(25));
  }
  set.AdvanceTime(events.back().time + Duration::Seconds(300));
}

class SerialBatchWindow : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SerialBatchWindow, BatchedSetMatchesScalarSetBitForBit) {
  const std::size_t window = GetParam();
  const std::vector<Property> props = Table1Properties();
  ASSERT_EQ(props.size(), 13u);
  for (const EngineKind kind :
       {EngineKind::kCompiled, EngineKind::kInterpreted}) {
    for (const std::uint64_t seed : {7ull, 41ull}) {
      const auto events = FuzzSeedStream(seed, 1200);
      MonitorConfig cfg;
      cfg.engine = kind;

      MonitorSet scalar;
      for (const Property& p : props) scalar.Add(p, cfg);
      Drive(scalar, events, /*advance_every=*/97);

      MonitorSet batched;
      batched.SetBatching(window);
      for (const Property& p : props) batched.Add(p, cfg);
      Drive(batched, events, /*advance_every=*/97);

      const std::string label =
          "window=" + std::to_string(window) + " seed=" +
          std::to_string(seed) +
          (kind == EngineKind::kCompiled ? " compiled" : " interpreted");
      ExpectViolationsEq(scalar.AllViolations(), batched.AllViolations(),
                         label);
      EXPECT_GT(scalar.TotalViolations(), 0u) << label << " (vacuous)";
      ExpectSnapshotsAgree(scalar.TelemetrySnapshot(),
                           batched.TelemetrySnapshot(), label);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, SerialBatchWindow,
                         ::testing::Values(1u, 3u, 16u, 64u));

TEST(SerialBatchTest, HotAttachDetachMidStreamInvalidatesFusedGroups) {
  // Lifecycle ops land mid-window: the batcher must flush the partial run
  // (the new engine never sees buffered pre-attach events; the departing
  // one still owes its buffered ones) and rebuild the fused-key table, and
  // the result must equal a scalar set performing the identical ops at the
  // identical stream offsets.
  const std::vector<Property> props = Table1Properties();
  const auto events = FuzzSeedStream(13, 1500);
  MonitorConfig cfg;
  cfg.engine = EngineKind::kCompiled;

  const auto run = [&](MonitorSet& set) {
    std::vector<PropertyId> ids;
    for (std::size_t i = 0; i < 4; ++i) ids.push_back(set.AttachProperty(props[i], cfg));
    std::vector<Violation> detached;
    for (std::size_t i = 0; i < events.size(); ++i) {
      set.OnDataplaneEvent(events[i]);
      if (i == 499) {
        // Attach mid-stream (and mid-window): new fused rows next flush.
        for (std::size_t k = 4; k < props.size(); ++k)
          ids.push_back(set.AttachProperty(props[k], cfg));
      }
      if (i == 999) {
        auto d = set.DetachProperty(ids[2]);
        EXPECT_TRUE(d.has_value());
        detached = std::move(*d);
      }
    }
    set.AdvanceTime(events.back().time + Duration::Seconds(300));
    return detached;
  };

  MonitorSet scalar;
  const auto scalar_detached = run(scalar);
  MonitorSet batched;
  batched.SetBatching(32);
  const auto batched_detached = run(batched);

  ExpectViolationsEq(scalar_detached, batched_detached, "detached");
  ExpectViolationsEq(scalar.AllViolations(), batched.AllViolations(), "all");
  ExpectSnapshotsAgree(scalar.TelemetrySnapshot(), batched.TelemetrySnapshot(),
                       "post-lifecycle");
}

TEST(SerialBatchTest, SpanDeliveryMatchesPerEventDelivery) {
  // OnDataplaneEvents executes batched runs straight out of the caller's
  // buffer (no pending-copy) and chunks them by the window; it must be
  // observationally identical to trickling the same events one at a time
  // through the same batched set — and to a scalar set. An odd span split
  // lands chunk boundaries away from window boundaries.
  const std::vector<Property> props = Table1Properties();
  const auto events = FuzzSeedStream(29, 1100);
  MonitorConfig cfg;
  cfg.engine = EngineKind::kCompiled;

  MonitorSet scalar;
  for (const Property& p : props) scalar.Add(p, cfg);
  MonitorSet trickle;
  trickle.SetBatching(48);
  for (const Property& p : props) trickle.Add(p, cfg);
  MonitorSet span;
  span.SetBatching(48);
  for (const Property& p : props) span.Add(p, cfg);

  for (const DataplaneEvent& ev : events) {
    scalar.OnDataplaneEvent(ev);
    trickle.OnDataplaneEvent(ev);
  }
  for (std::size_t base = 0; base < events.size(); base += 171)
    span.OnDataplaneEvents(&events[base],
                           std::min<std::size_t>(171, events.size() - base));

  const SimTime end = events.back().time + Duration::Seconds(300);
  scalar.AdvanceTime(end);
  trickle.AdvanceTime(end);
  span.AdvanceTime(end);

  ExpectViolationsEq(scalar.AllViolations(), span.AllViolations(),
                     "span vs scalar");
  ExpectViolationsEq(trickle.AllViolations(), span.AllViolations(),
                     "span vs trickle");
  EXPECT_GT(scalar.TotalViolations(), 0u) << "vacuous stream";
  ExpectSnapshotsAgree(scalar.TelemetrySnapshot(), span.TelemetrySnapshot(),
                       "span vs scalar");
}

// ------------------------------------------- engine-direct batch parity

/// Chunked ProcessEventBatch against the interpreter's scalar loop, with
/// AdvanceTime quiesce points between chunks. The chunk size is coprime to
/// the quiesce cadence, so windows repeatedly straddle timer activity —
/// the lazily-maintained timer counters (timer_stale_pops and friends)
/// must still land on identical values in both engines' snapshots
/// (timer_set.cpp counts compaction-discarded stale entries exactly like
/// lazy pops, making the counter a pure function of the arm/cancel
/// history).
TEST(BatchEngineDifferentialTest, ChunkedBatchesMatchScalarInterpreter) {
  for (const CatalogEntry& e : BuildCatalog()) {
    for (const std::uint64_t seed : {5ull, 23ull}) {
      const auto events = FuzzSeedStream(seed, 1000);
      const std::string label = std::string(e.id) + " seed=" +
                                std::to_string(seed);
      MonitorConfig cfg;
      cfg.engine = EngineKind::kInterpreted;
      auto interp = CreatePropertyMonitor(e.property, cfg);
      cfg.engine = EngineKind::kCompiled;
      auto comp = CreatePropertyMonitor(e.property, cfg);
      ASSERT_NE(dynamic_cast<CompiledEngine*>(comp.get()), nullptr) << label;

      constexpr std::size_t kChunk = 64;
      const EventTypeMask sig = interp->interest_signature();
      std::vector<BatchEventResult> results(kChunk);
      for (std::size_t base = 0; base < events.size(); base += kChunk) {
        const std::size_t n = std::min(kChunk, events.size() - base);
        // Interpreter: the scalar loop the batch API promises to equal.
        for (std::size_t i = 0; i < n; ++i) {
          const DataplaneEvent& ev = events[base + i];
          if (sig >> static_cast<std::size_t>(ev.type) & 1) {
            interp->ProcessDispatchedEvent(ev);
          } else {
            interp->NoteFilteredEvent(ev.time);
          }
        }
        // Compiled: the whole chunk at once, own-rows hash pass.
        comp->ProcessEventBatch(&events[base], n, nullptr, results.data());
        // The per-event marks must match the engine's own final state at
        // the chunk boundary.
        EXPECT_EQ(results[n - 1].violations_after, comp->violations().size())
            << label;
        EXPECT_EQ(results[n - 1].created_after, comp->created_count())
            << label;
        // Quiesce between chunks: both clocks advance past the boundary.
        const SimTime horizon =
            events[base + n - 1].time + Duration::Millis(40);
        interp->AdvanceTime(horizon);
        comp->AdvanceTime(horizon);
      }
      const SimTime end = events.back().time + Duration::Seconds(300);
      interp->AdvanceTime(end);
      comp->AdvanceTime(end);

      ExpectViolationsEq(interp->violations(), comp->violations(), label);
      // Full snapshot parity, timer counters included; the compiled
      // engine's extra monitor.compiled.* probe telemetry is the only
      // allowed addition.
      telemetry::Snapshot sa, sb;
      interp->CollectInto(sa, "e");
      comp->CollectInto(sb, "e");
      for (const auto& [name, sample] : sa.samples()) {
        ASSERT_TRUE(sb.Has(name)) << label << " compiled missing " << name;
        EXPECT_TRUE(sample == sb.samples().at(name)) << label << " at "
                                                     << name;
      }
      std::size_t sb_shared = 0;
      for (const auto& [name, sample] : sb.samples())
        if (name.rfind("monitor.compiled.", 0) != 0) ++sb_shared;
      EXPECT_EQ(sa.size(), sb_shared) << label;
    }
  }
}

TEST(BatchEngineDifferentialTest, FusedRowsMatchOwnRowsHashing) {
  // The fused-table path consumes hashes computed by FusedKeyTable
  // (HashKeySpan) in place of the engine's own per-probe hashing
  // (OpenMap::HashKey). If the two ever diverged, FindHashed would probe
  // the wrong cells and the violation streams / probe counters below would
  // split — so bit-parity here transitively pins the two hash functions to
  // each other.
  for (const Property& p : Table1Properties()) {
    MonitorConfig cfg;
    cfg.engine = EngineKind::kCompiled;
    auto own = CreatePropertyMonitor(p, cfg);
    auto fused_eng = CreatePropertyMonitor(p, cfg);

    FusedKeyTable table;
    std::vector<std::uint32_t> slots;
    for (const ProbeKeyTuple& t : fused_eng->ProbeKeyTuples())
      slots.push_back(table.Intern(t.fields, t.types, t.filter));
    fused_eng->BindFusedRows(slots);

    const auto events = FuzzSeedStream(77, 800);
    constexpr std::size_t kChunk = 50;
    for (std::size_t base = 0; base < events.size(); base += kChunk) {
      const std::size_t n = std::min(kChunk, events.size() - base);
      own->ProcessEventBatch(&events[base], n, nullptr, nullptr);
      table.ComputeRows(&events[base], n);
      fused_eng->ProcessEventBatch(&events[base], n, &table, nullptr);
    }
    ExpectViolationsEq(own->violations(), fused_eng->violations(), p.name);
    telemetry::Snapshot sa, sb;
    own->CollectInto(sa, "e");
    fused_eng->CollectInto(sb, "e");
    EXPECT_TRUE(sa == sb) << p.name;
  }
}

// ------------------------------------------------- sharded batch parity

struct ShardedCase {
  std::size_t workers;
  ShardMode mode;
};

class ShardedBatchParity : public ::testing::TestWithParam<ShardedCase> {};

TEST_P(ShardedBatchParity, WorkersDrainingBatchesMatchSerial) {
  const auto [workers, mode] = GetParam();
  const std::vector<Property> props = Table1Properties();
  const auto events = FuzzSeedStream(99, 1500);
  const SimTime end = events.back().time + Duration::Seconds(300);
  MonitorConfig cfg;
  cfg.engine = EngineKind::kCompiled;

  MonitorSet serial;
  for (const Property& p : props) serial.Add(p, cfg);
  for (const DataplaneEvent& ev : events) serial.OnDataplaneEvent(ev);
  serial.AdvanceTime(end);

  ParallelConfig pcfg;
  pcfg.workers = workers;
  pcfg.batch_capacity = 128;
  pcfg.shard_mode = mode;
  ParallelMonitorSet parallel(pcfg);
  for (const Property& p : props) parallel.Add(p, cfg);
  parallel.Start();
  for (const DataplaneEvent& ev : events) parallel.OnDataplaneEvent(ev);
  parallel.AdvanceTime(end);
  parallel.Stop();

  const std::string label =
      "workers=" + std::to_string(workers) +
      (mode == ShardMode::kInstance ? " instance" : " property");
  ExpectViolationsEq(serial.AllViolations(), parallel.AllViolations(), label);
  EXPECT_GT(serial.TotalViolations(), 0u) << label << " (vacuous)";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShardedBatchParity,
    ::testing::Values(ShardedCase{1, ShardMode::kProperty},
                      ShardedCase{2, ShardMode::kProperty},
                      ShardedCase{4, ShardMode::kProperty},
                      ShardedCase{8, ShardMode::kProperty},
                      ShardedCase{1, ShardMode::kInstance},
                      ShardedCase{2, ShardMode::kInstance},
                      ShardedCase{4, ShardMode::kInstance},
                      ShardedCase{8, ShardMode::kInstance}));

TEST(ShardedBatchLifecycleTest, HotAttachDetachRebuildsWorkerFusedTables) {
  // Hot lifecycle on a running pool: the quiesce-point attach/detach must
  // rebuild every worker's fused table (stale slot bindings would read
  // rows for the wrong key tuple), and the stream around the ops must
  // still merge to the serial order.
  const std::vector<Property> props = Table1Properties();
  const auto events = FuzzSeedStream(3, 1200);
  const SimTime end = events.back().time + Duration::Seconds(300);
  MonitorConfig cfg;
  cfg.engine = EngineKind::kCompiled;

  for (const ShardMode mode : {ShardMode::kProperty, ShardMode::kInstance}) {
    const auto run = [&](auto& set, auto deliver) {
      std::vector<PropertyId> ids;
      for (std::size_t i = 0; i < 6; ++i)
        ids.push_back(set.AttachProperty(props[i], cfg));
      for (std::size_t i = 0; i < events.size(); ++i) {
        deliver(events[i]);
        if (i == 399) {
          for (std::size_t k = 6; k < props.size(); ++k)
            ids.push_back(set.AttachProperty(props[k], cfg));
        }
        if (i == 799) {
          EXPECT_TRUE(set.DetachProperty(ids[1]).has_value());
        }
      }
      set.AdvanceTime(end);
    };

    MonitorSet serial;
    run(serial, [&](const DataplaneEvent& ev) { serial.OnDataplaneEvent(ev); });

    ParallelConfig pcfg;
    pcfg.workers = 4;
    pcfg.batch_capacity = 64;
    pcfg.shard_mode = mode;
    ParallelMonitorSet parallel(pcfg);
    parallel.Start();
    run(parallel,
        [&](const DataplaneEvent& ev) { parallel.OnDataplaneEvent(ev); });
    parallel.Stop();

    const std::string label =
        mode == ShardMode::kInstance ? "instance" : "property";
    ExpectViolationsEq(serial.AllViolations(), parallel.AllViolations(),
                       label);
  }
}

}  // namespace
}  // namespace swmon
