// Trace persistence round-trip and corruption handling.
#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <vector>

#include "monitor/engine.hpp"
#include "netsim/trace_io.hpp"
#include "properties/catalog.hpp"
#include "workload/firewall_scenario.hpp"

namespace swmon {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TraceRecorder SampleTrace() {
  FirewallScenarioConfig config;
  config.fault = FirewallFault::kDropEstablishedReturn;
  config.connections = 8;
  config.close_fraction = 0;
  config.stale_return_fraction = 0;
  config.options.keep_trace = true;
  auto out = RunFirewallScenario(config);
  return std::move(*out.trace);
}

TEST(TraceIoTest, RoundTripPreservesEveryEvent) {
  const TraceRecorder original = SampleTrace();
  const std::string path = TempPath("roundtrip.swmt");
  std::string error;
  ASSERT_TRUE(SaveTrace(original, path, &error)) << error;

  TraceRecorder loaded;
  ASSERT_TRUE(LoadTrace(path, loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto& a = original.events()[i];
    const auto& b = loaded.events()[i];
    EXPECT_EQ(a.type, b.type) << i;
    EXPECT_EQ(a.time, b.time) << i;
    EXPECT_EQ(a.packet_bytes, b.packet_bytes) << i;
    EXPECT_EQ(a.fields.presence_mask(), b.fields.presence_mask()) << i;
    for (std::size_t fi = 0; fi < kNumFieldIds; ++fi) {
      const auto id = static_cast<FieldId>(fi);
      EXPECT_EQ(a.fields.Get(id), b.fields.Get(id)) << i;
    }
  }
}

TEST(TraceIoTest, LoadedTraceDrivesTheMonitorIdentically) {
  const TraceRecorder original = SampleTrace();
  const std::string path = TempPath("monitor.swmt");
  ASSERT_TRUE(SaveTrace(original, path));
  TraceRecorder loaded;
  ASSERT_TRUE(LoadTrace(path, loaded));

  MonitorEngine a(FirewallReturnNotDropped());
  MonitorEngine b(FirewallReturnNotDropped());
  original.ReplayInto(a);
  loaded.ReplayInto(b);
  EXPECT_EQ(a.violations().size(), b.violations().size());
  EXPECT_GT(a.violations().size(), 0u);
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  const TraceRecorder empty;
  const std::string path = TempPath("empty.swmt");
  ASSERT_TRUE(SaveTrace(empty, path));
  TraceRecorder loaded;
  ASSERT_TRUE(LoadTrace(path, loaded));
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(TraceIoTest, RejectsMissingFile) {
  TraceRecorder loaded;
  std::string error;
  EXPECT_FALSE(LoadTrace(TempPath("nope.swmt"), loaded, &error));
  EXPECT_FALSE(error.empty());
}

TEST(TraceIoTest, RejectsBadMagic) {
  const std::string path = TempPath("badmagic.swmt");
  std::ofstream(path) << "not a trace at all";
  TraceRecorder loaded;
  std::string error;
  EXPECT_FALSE(LoadTrace(path, loaded, &error));
  EXPECT_NE(error.find("not a swmon trace"), std::string::npos);
}

namespace {

void AppendLE(std::vector<std::uint8_t>& out, std::uint64_t v,
              std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WriteFile(const std::string& path, const void* data, std::size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(data, 1, size, f), size);
  std::fclose(f);
}

}  // namespace

TEST(TraceIoTest, V2FormatIsLittleEndianOnDisk) {
  // Hand-craft a v2 file byte-for-byte: it must decode identically on any
  // host, proving the format is explicit LE rather than host-endian.
  std::vector<std::uint8_t> buf = {'S', 'W', 'M', 'T'};
  AppendLE(buf, 2, 4);  // version
  AppendLE(buf, 1, 8);  // one event
  buf.push_back(static_cast<std::uint8_t>(DataplaneEventType::kEgress));
  AppendLE(buf, 123456789, 8);  // time_ns
  AppendLE(buf, 0x11223344, 4);  // packet_bytes
  const auto src_bit = static_cast<unsigned>(FieldId::kIpSrc);
  const auto dst_bit = static_cast<unsigned>(FieldId::kIpDst);
  AppendLE(buf, (1ull << src_bit) | (1ull << dst_bit), 8);  // presence
  // Values in field-index order.
  AppendLE(buf, src_bit < dst_bit ? 0xAABBCCDDEEFF0011ull : 42, 8);
  AppendLE(buf, src_bit < dst_bit ? 42 : 0xAABBCCDDEEFF0011ull, 8);

  const std::string path = TempPath("handmade_v2.swmt");
  WriteFile(path, buf.data(), buf.size());

  TraceRecorder loaded;
  std::string error;
  ASSERT_TRUE(LoadTrace(path, loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 1u);
  const DataplaneEvent& ev = loaded.events()[0];
  EXPECT_EQ(ev.type, DataplaneEventType::kEgress);
  EXPECT_EQ(ev.time.nanos(), 123456789);
  EXPECT_EQ(ev.packet_bytes, 0x11223344u);
  EXPECT_EQ(ev.fields.Get(FieldId::kIpSrc), 0xAABBCCDDEEFF0011ull);
  EXPECT_EQ(ev.fields.Get(FieldId::kIpDst), 42u);
}

TEST(TraceIoTest, ReadsVersion1HostEndianTraces) {
  if constexpr (std::endian::native != std::endian::little)
    GTEST_SKIP() << "v1 traces are only readable on little-endian hosts";
  // Reproduce the v1 writer: raw fwrite of host scalars, version = 1.
  const std::string path = TempPath("legacy_v1.swmt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("SWMT", 1, 4, f);
  const std::uint32_t version = 1;
  std::fwrite(&version, sizeof(version), 1, f);
  const std::uint64_t count = 1;
  std::fwrite(&count, sizeof(count), 1, f);
  const std::uint8_t type =
      static_cast<std::uint8_t>(DataplaneEventType::kArrival);
  std::fwrite(&type, 1, 1, f);
  const std::uint64_t time_ns = 5000000;
  std::fwrite(&time_ns, sizeof(time_ns), 1, f);
  const std::uint32_t packet_bytes = 64;
  std::fwrite(&packet_bytes, sizeof(packet_bytes), 1, f);
  const std::uint64_t presence = 1ull
                                 << static_cast<unsigned>(FieldId::kInPort);
  std::fwrite(&presence, sizeof(presence), 1, f);
  const std::uint64_t value = 3;
  std::fwrite(&value, sizeof(value), 1, f);
  std::fclose(f);

  TraceRecorder loaded;
  std::string error;
  ASSERT_TRUE(LoadTrace(path, loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.events()[0].type, DataplaneEventType::kArrival);
  EXPECT_EQ(loaded.events()[0].time.nanos(), 5000000);
  EXPECT_EQ(loaded.events()[0].packet_bytes, 64u);
  EXPECT_EQ(loaded.events()[0].fields.Get(FieldId::kInPort), 3u);
}

TEST(TraceIoTest, RejectsFutureVersion) {
  std::vector<std::uint8_t> buf = {'S', 'W', 'M', 'T'};
  AppendLE(buf, 3, 4);
  AppendLE(buf, 0, 8);
  const std::string path = TempPath("future.swmt");
  WriteFile(path, buf.data(), buf.size());
  TraceRecorder loaded;
  std::string error;
  EXPECT_FALSE(LoadTrace(path, loaded, &error));
  EXPECT_NE(error.find("unsupported trace version"), std::string::npos);
}

TEST(TraceIoTest, RejectsTruncation) {
  const TraceRecorder original = SampleTrace();
  const std::string path = TempPath("trunc.swmt");
  ASSERT_TRUE(SaveTrace(original, path));
  // Chop the file in half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

  TraceRecorder loaded;
  std::string error;
  EXPECT_FALSE(LoadTrace(path, loaded, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos);
}

}  // namespace
}  // namespace swmon
