// Trace persistence round-trip and corruption handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "monitor/engine.hpp"
#include "netsim/trace_io.hpp"
#include "properties/catalog.hpp"
#include "workload/firewall_scenario.hpp"

namespace swmon {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TraceRecorder SampleTrace() {
  FirewallScenarioConfig config;
  config.fault = FirewallFault::kDropEstablishedReturn;
  config.connections = 8;
  config.close_fraction = 0;
  config.stale_return_fraction = 0;
  config.options.keep_trace = true;
  auto out = RunFirewallScenario(config);
  return std::move(*out.trace);
}

TEST(TraceIoTest, RoundTripPreservesEveryEvent) {
  const TraceRecorder original = SampleTrace();
  const std::string path = TempPath("roundtrip.swmt");
  std::string error;
  ASSERT_TRUE(SaveTrace(original, path, &error)) << error;

  TraceRecorder loaded;
  ASSERT_TRUE(LoadTrace(path, loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto& a = original.events()[i];
    const auto& b = loaded.events()[i];
    EXPECT_EQ(a.type, b.type) << i;
    EXPECT_EQ(a.time, b.time) << i;
    EXPECT_EQ(a.packet_bytes, b.packet_bytes) << i;
    EXPECT_EQ(a.fields.presence_mask(), b.fields.presence_mask()) << i;
    for (std::size_t fi = 0; fi < kNumFieldIds; ++fi) {
      const auto id = static_cast<FieldId>(fi);
      EXPECT_EQ(a.fields.Get(id), b.fields.Get(id)) << i;
    }
  }
}

TEST(TraceIoTest, LoadedTraceDrivesTheMonitorIdentically) {
  const TraceRecorder original = SampleTrace();
  const std::string path = TempPath("monitor.swmt");
  ASSERT_TRUE(SaveTrace(original, path));
  TraceRecorder loaded;
  ASSERT_TRUE(LoadTrace(path, loaded));

  MonitorEngine a(FirewallReturnNotDropped());
  MonitorEngine b(FirewallReturnNotDropped());
  original.ReplayInto(a);
  loaded.ReplayInto(b);
  EXPECT_EQ(a.violations().size(), b.violations().size());
  EXPECT_GT(a.violations().size(), 0u);
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  const TraceRecorder empty;
  const std::string path = TempPath("empty.swmt");
  ASSERT_TRUE(SaveTrace(empty, path));
  TraceRecorder loaded;
  ASSERT_TRUE(LoadTrace(path, loaded));
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(TraceIoTest, RejectsMissingFile) {
  TraceRecorder loaded;
  std::string error;
  EXPECT_FALSE(LoadTrace(TempPath("nope.swmt"), loaded, &error));
  EXPECT_FALSE(error.empty());
}

TEST(TraceIoTest, RejectsBadMagic) {
  const std::string path = TempPath("badmagic.swmt");
  std::ofstream(path) << "not a trace at all";
  TraceRecorder loaded;
  std::string error;
  EXPECT_FALSE(LoadTrace(path, loaded, &error));
  EXPECT_NE(error.find("not a swmon trace"), std::string::npos);
}

TEST(TraceIoTest, RejectsTruncation) {
  const TraceRecorder original = SampleTrace();
  const std::string path = TempPath("trunc.swmt");
  ASSERT_TRUE(SaveTrace(original, path));
  // Chop the file in half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

  TraceRecorder loaded;
  std::string error;
  EXPECT_FALSE(LoadTrace(path, loaded, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos);
}

}  // namespace
}  // namespace swmon
