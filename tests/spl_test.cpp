// SPL — the property language: parsing, serialization, and the exact
// round-trip guarantee over the full catalog.
#include <gtest/gtest.h>

#include "monitor/engine.hpp"
#include "properties/catalog.hpp"
#include "spl/spl.hpp"

namespace swmon {
namespace {

constexpr const char* kFirewallSpl = R"(
# The Sec-2.1 stateful firewall property, in SPL.
property fw-spl {
  description "After seeing traffic from A to B, B->A is not dropped";
  mode symmetric;
  vars A, B;
  stage "outbound" on arrival {
    match in_port == 1;
    bind A = ip_src;
    bind B = ip_dst;
    window 30s refresh;
  }
  stage "return dropped" on egress {
    match ip_src == $B;
    match ip_dst == $A;
    match egress_action == drop;
  }
}
)";

TEST(SplTest, ParsesTheFirewallProperty) {
  const auto result = ParseSpl(kFirewallSpl);
  ASSERT_TRUE(result.ok()) << result.error;
  const Property& p = *result.property;
  EXPECT_EQ(p.name, "fw-spl");
  EXPECT_EQ(p.id_mode, InstanceIdMode::kSymmetric);
  ASSERT_EQ(p.vars.size(), 2u);
  ASSERT_EQ(p.stages.size(), 2u);
  EXPECT_EQ(p.stages[0].window, Duration::Seconds(30));
  EXPECT_TRUE(p.stages[0].refresh_window_on_rematch);
  ASSERT_EQ(p.stages[1].pattern.conditions.size(), 3u);
  EXPECT_EQ(p.stages[1].pattern.conditions[0].rhs.kind, Term::Kind::kVar);
  EXPECT_EQ(p.stages[1].pattern.conditions[2].rhs.constant,
            static_cast<std::uint64_t>(EgressActionValue::kDrop));
}

TEST(SplTest, ParsedPropertyDetectsViolations) {
  const auto result = ParseSpl(kFirewallSpl);
  ASSERT_TRUE(result.ok()) << result.error;
  MonitorEngine engine(*result.property);

  DataplaneEvent out;
  out.type = DataplaneEventType::kArrival;
  out.time = SimTime::Zero() + Duration::Millis(1);
  out.fields.Set(FieldId::kInPort, 1);
  out.fields.Set(FieldId::kIpSrc, 10);
  out.fields.Set(FieldId::kIpDst, 20);
  engine.ProcessEvent(out);

  DataplaneEvent drop;
  drop.type = DataplaneEventType::kEgress;
  drop.time = SimTime::Zero() + Duration::Millis(2);
  drop.fields.Set(FieldId::kIpSrc, 20);
  drop.fields.Set(FieldId::kIpDst, 10);
  drop.fields.Set(FieldId::kEgressAction,
                  static_cast<std::uint64_t>(EgressActionValue::kDrop));
  engine.ProcessEvent(drop);
  EXPECT_EQ(engine.violations().size(), 1u);
}

TEST(SplTest, RoundTripsTheEntireCatalogExactly) {
  // SerializeSpl followed by ParseSpl must reproduce the identical spec —
  // for every property the paper discusses.
  for (const auto& entry : BuildCatalog()) {
    const std::string text = SerializeSpl(entry.property);
    const auto reparsed = ParseSpl(text);
    ASSERT_TRUE(reparsed.ok())
        << entry.id << ": " << reparsed.error << "\n" << text;
    EXPECT_EQ(*reparsed.property, entry.property)
        << entry.id << " did not round-trip:\n" << text;
  }
}

TEST(SplTest, MaskedAndOrAbsentConditions) {
  const auto result = ParseSpl(R"(
property masks {
  vars H;
  stage "knock" on arrival {
    match l4_dst/0xfffffffffffffffc == 7000;
    match tcp_flags/0x5 == 0 or_absent;
    bind H = ip_src;
  }
  stage "wrong" on arrival {
    match ip_src == $H;
    match l4_dst != 7001;
  }
})");
  ASSERT_TRUE(result.ok()) << result.error;
  const auto& c0 = result.property->stages[0].pattern.conditions[0];
  EXPECT_EQ(c0.mask, ~std::uint64_t{3});
  EXPECT_EQ(c0.rhs.constant, 7000u);
  EXPECT_TRUE(result.property->stages[0].pattern.conditions[1].allow_absent);
  EXPECT_EQ(result.property->stages[1].pattern.conditions[1].op, CmpOp::kNe);
}

TEST(SplTest, AddressLiterals) {
  const auto result = ParseSpl(R"(
property addrs {
  stage "x" on arrival {
    match ip_src == 10.0.0.1;
    match eth_src == 02:00:00:00:00:07;
  }
})");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.property->stages[0].pattern.conditions[0].rhs.constant,
            Ipv4Addr(10, 0, 0, 1).bits());
  EXPECT_EQ(result.property->stages[0].pattern.conditions[1].rhs.constant,
            MacAddr(0x02, 0, 0, 0, 0, 7).bits());
}

TEST(SplTest, TimeoutStageAndUnless) {
  const auto result = ParseSpl(R"(
property toa {
  vars A;
  stage "learned" on arrival {
    match arp_op == 2;
    bind A = arp_spa;
  }
  stage "request" on arrival {
    match arp_op == 1;
    match arp_tpa == $A;
    window 1s;
  }
  timeout "no reply" {
    unless on egress {
      match arp_op == 2;
      match arp_spa == $A;
    }
  }
})");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.property->stages[2].kind, StageKind::kTimeout);
  ASSERT_EQ(result.property->stages[2].aborts.size(), 1u);
}

TEST(SplTest, BuiltinBindings) {
  const auto result = ParseSpl(R"(
property lb {
  vars E, R;
  stage "syn" on arrival {
    bind E = hash(ip_src, ip_dst, l4_src, l4_dst) % 4 + 2;
    bind R = round_robin % 8;
  }
  stage "sent" on egress {
    match out_port != $E;
    match packet_id == $R;
  }
})");
  ASSERT_TRUE(result.ok()) << result.error;
  const auto& b0 = result.property->stages[0].bindings[0];
  EXPECT_EQ(b0.kind, Binding::Kind::kHashPort);
  EXPECT_EQ(b0.hash_inputs.size(), 4u);
  EXPECT_EQ(b0.modulus, 4u);
  EXPECT_EQ(b0.base, 2u);
  const auto& b1 = result.property->stages[0].bindings[1];
  EXPECT_EQ(b1.kind, Binding::Kind::kRoundRobin);
  EXPECT_EQ(b1.base, 1u);  // default
}

TEST(SplTest, SuppressionClauses) {
  const auto result = ParseSpl(R"(
property nosneak {
  stage "direct reply" on egress {
    match arp_op == 2;
  }
  suppress key (arp_spa);
  suppress when on arrival { match arp_op == 2; } key (arp_spa);
})");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.property->suppression_key_fields.size(), 1u);
  ASSERT_EQ(result.property->suppressors.size(), 1u);
}

TEST(SplTest, ErrorsCarryLineNumbers) {
  const auto bad = ParseSpl(
      "property x {\n  stage \"s\" on arrival {\n    match bogus == 1;\n  }\n}");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("line 3"), std::string::npos) << bad.error;
  EXPECT_NE(bad.error.find("bogus"), std::string::npos);
}

TEST(SplTest, RejectsUnknownVarsAndBadStructure) {
  EXPECT_FALSE(ParseSpl("property x { stage \"s\" on arrival { match ip_src "
                        "== $Q; } }").ok());
  EXPECT_FALSE(ParseSpl("property x { }").ok());  // validation: no stages
  EXPECT_FALSE(ParseSpl("property x { timeout \"t\" { } }").ok());
  EXPECT_FALSE(ParseSpl("garbage").ok());
  EXPECT_FALSE(ParseSpl("property x { stage \"s\" on arrival { match ip_src "
                        "== \"str\"; } }").ok());
}

TEST(SplTest, FieldIdByNameCoversEveryField) {
  for (std::size_t i = 0; i < kNumFieldIds; ++i) {
    const auto id = static_cast<FieldId>(i);
    const auto back = FieldIdByName(FieldName(id));
    ASSERT_TRUE(back.has_value()) << FieldName(id);
    EXPECT_EQ(*back, id);
  }
  EXPECT_FALSE(FieldIdByName("no_such_field").has_value());
}

}  // namespace
}  // namespace swmon
