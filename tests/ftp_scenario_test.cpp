// End-to-end: FTP control/data sessions + T1.8 (from FAST).
#include <gtest/gtest.h>

#include "workload/ftp_scenario.hpp"

namespace swmon {
namespace {

TEST(FtpScenarioTest, WellBehavedSessionsAreQuiet) {
  FtpScenarioConfig config;
  EXPECT_EQ(RunFtpScenario(config).TotalViolations(), 0u);
}

TEST(FtpScenarioTest, ReannouncementIsLegitimate) {
  FtpScenarioConfig config;
  config.reannounce_fraction = 1.0;  // every session supersedes its PORT
  EXPECT_EQ(RunFtpScenario(config).TotalViolations(), 0u);
}

TEST(FtpScenarioTest, WrongDataPortDetected) {
  FtpScenarioConfig config;
  config.violation_fraction = 1.0;
  config.reannounce_fraction = 0.0;
  const auto out = RunFtpScenario(config);
  EXPECT_EQ(out.ViolationsOf("ftp-data-port"), config.sessions);
}

TEST(FtpScenarioTest, MixedSessionsCountOnlyViolators) {
  FtpScenarioConfig config;
  config.options.seed = 5;
  config.sessions = 40;
  config.violation_fraction = 0.5;
  const auto out = RunFtpScenario(config);
  const auto v = out.ViolationsOf("ftp-data-port");
  EXPECT_GT(v, 0u);
  EXPECT_LT(v, config.sessions);
}

TEST(FtpScenarioTest, PassiveModeWellBehavedIsQuiet) {
  FtpScenarioConfig config;
  config.sessions = 0;
  config.passive_sessions = 10;
  const auto out = RunFtpScenario(config);
  EXPECT_EQ(out.ViolationsOf("ftp-pasv-data-port"), 0u);
}

TEST(FtpScenarioTest, PassiveModeWrongPortDetected) {
  FtpScenarioConfig config;
  config.sessions = 0;
  config.passive_sessions = 10;
  config.violation_fraction = 1.0;
  const auto out = RunFtpScenario(config);
  EXPECT_EQ(out.ViolationsOf("ftp-pasv-data-port"), config.passive_sessions);
  // The active-mode property stays quiet about passive traffic.
  EXPECT_EQ(out.ViolationsOf("ftp-data-port"), 0u);
}

TEST(FtpScenarioTest, MixedActiveAndPassiveSessionsAreIndependent) {
  FtpScenarioConfig config;
  config.options.seed = 4;
  config.sessions = 8;
  config.passive_sessions = 8;
  config.reannounce_fraction = 0.0;
  config.violation_fraction = 1.0;
  const auto out = RunFtpScenario(config);
  EXPECT_EQ(out.ViolationsOf("ftp-data-port"), 8u);
  EXPECT_EQ(out.ViolationsOf("ftp-pasv-data-port"), 8u);
}

class FtpSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FtpSeedSweep, DetectionTracksInjection) {
  FtpScenarioConfig config;
  config.options.seed = GetParam();
  config.sessions = 20;
  EXPECT_EQ(RunFtpScenario(config).TotalViolations(), 0u);
  config.violation_fraction = 1.0;
  EXPECT_EQ(RunFtpScenario(config).TotalViolations(), config.sessions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtpSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace swmon
