#include <gtest/gtest.h>

#include "dataplane/flow_mod_queue.hpp"
#include "dataplane/flow_table.hpp"
#include "dataplane/register_array.hpp"
#include "dataplane/state_table.hpp"
#include "dataplane/switch.hpp"
#include "packet/builder.hpp"

namespace swmon {
namespace {

FieldMap Fields(std::initializer_list<std::pair<FieldId, std::uint64_t>> kv) {
  FieldMap f;
  for (const auto& [k, v] : kv) f.Set(k, v);
  return f;
}

TEST(MatchTest, ExactAndNegate) {
  const auto f = Fields({{FieldId::kIpSrc, 10}, {FieldId::kIpDst, 20}});
  EXPECT_TRUE(FieldMatch::Exact(FieldId::kIpSrc, 10).Matches(f));
  EXPECT_FALSE(FieldMatch::Exact(FieldId::kIpSrc, 11).Matches(f));
  EXPECT_TRUE(FieldMatch::NotEqual(FieldId::kIpSrc, 11).Matches(f));
  EXPECT_FALSE(FieldMatch::NotEqual(FieldId::kIpSrc, 10).Matches(f));
}

TEST(MatchTest, AbsentFieldNeverMatches) {
  const auto f = Fields({{FieldId::kIpSrc, 10}});
  EXPECT_FALSE(FieldMatch::Exact(FieldId::kIpDst, 10).Matches(f));
  // Negative match also requires presence (Feature 6 semantics).
  EXPECT_FALSE(FieldMatch::NotEqual(FieldId::kIpDst, 10).Matches(f));
}

TEST(MatchTest, ValidityBitMatchesAbsence) {
  // FieldMatch::Absent is the header-validity-bit idiom table-compiled
  // monitors use to expand or-absent conditions.
  const auto tcp = Fields({{FieldId::kTcpFlags, 2}});
  const auto icmp = Fields({{FieldId::kIcmpType, 8}});
  EXPECT_FALSE(FieldMatch::Absent(FieldId::kTcpFlags).Matches(tcp));
  EXPECT_TRUE(FieldMatch::Absent(FieldId::kTcpFlags).Matches(icmp));
}

TEST(MatchTest, MaskedMatch) {
  const auto f = Fields({{FieldId::kL4DstPort, 7002}});
  EXPECT_TRUE(FieldMatch::Masked(FieldId::kL4DstPort, 7000, ~std::uint64_t{3})
                  .Matches(f));
  EXPECT_FALSE(FieldMatch::Masked(FieldId::kL4DstPort, 7004, ~std::uint64_t{3})
                   .Matches(f));
}

TEST(MatchTest, MatchSetIsConjunction) {
  MatchSet m({FieldMatch::Exact(FieldId::kIpSrc, 10),
              FieldMatch::Exact(FieldId::kIpDst, 20)});
  EXPECT_TRUE(m.Matches(Fields({{FieldId::kIpSrc, 10}, {FieldId::kIpDst, 20}})));
  EXPECT_FALSE(m.Matches(Fields({{FieldId::kIpSrc, 10}, {FieldId::kIpDst, 21}})));
  EXPECT_TRUE(MatchSet().Matches(Fields({})));  // empty = match-all
}

TEST(FlowTableTest, PriorityWins) {
  FlowTable t;
  FlowEntry low;
  low.priority = 1;
  low.cookie = 1;
  FlowEntry high;
  high.priority = 10;
  high.cookie = 2;
  high.match.Add(FieldMatch::Exact(FieldId::kIpSrc, 5));
  t.Add(low, SimTime::Zero());
  t.Add(high, SimTime::Zero());

  const auto* hit = t.Lookup(Fields({{FieldId::kIpSrc, 5}}), SimTime::Zero());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, 2u);
  const auto* miss = t.Lookup(Fields({{FieldId::kIpSrc, 6}}), SimTime::Zero());
  ASSERT_NE(miss, nullptr);
  EXPECT_EQ(miss->cookie, 1u);
}

TEST(FlowTableTest, TieBrokenByInstallOrder) {
  FlowTable t;
  FlowEntry a;
  a.cookie = 1;
  FlowEntry b;
  b.cookie = 2;
  t.Add(a, SimTime::Zero());
  t.Add(b, SimTime::Zero());
  EXPECT_EQ(t.Lookup(Fields({}), SimTime::Zero())->cookie, 1u);
}

TEST(FlowTableTest, HardTimeoutExpires) {
  FlowTable t;
  FlowEntry e;
  e.hard_timeout = Duration::Seconds(10);
  t.Add(e, SimTime::Zero());
  EXPECT_NE(t.Lookup(Fields({}), SimTime::FromNanos(9999999999)), nullptr);
  EXPECT_EQ(t.Lookup(Fields({}), SimTime::Zero() + Duration::Seconds(10)),
            nullptr);
}

TEST(FlowTableTest, IdleTimeoutRefreshedByHits) {
  FlowTable t;
  FlowEntry e;
  e.idle_timeout = Duration::Seconds(10);
  t.Add(e, SimTime::Zero());
  // Hit at t=8s refreshes last_used.
  EXPECT_NE(t.Lookup(Fields({}), SimTime::Zero() + Duration::Seconds(8)),
            nullptr);
  // Would have expired at 10s without the hit; still alive at 17s.
  EXPECT_NE(t.Lookup(Fields({}), SimTime::Zero() + Duration::Seconds(17)),
            nullptr);
  EXPECT_EQ(t.Lookup(Fields({}), SimTime::Zero() + Duration::Seconds(28)),
            nullptr);
}

TEST(FlowTableTest, SweepReportsExpiredEntries) {
  FlowTable t;
  FlowEntry e;
  e.cookie = 99;
  e.hard_timeout = Duration::Seconds(1);
  t.Add(e, SimTime::Zero());
  std::vector<std::uint64_t> expired;
  t.SweepExpired(SimTime::Zero() + Duration::Seconds(2),
                 [&](const FlowEntry& fe) { expired.push_back(fe.cookie); });
  EXPECT_EQ(expired, (std::vector<std::uint64_t>{99}));
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlowTableTest, SweepCallbackMayInstall) {
  // Varanus timeout actions: expiry continuation installs a successor.
  FlowTable t;
  FlowEntry e;
  e.cookie = 1;
  e.hard_timeout = Duration::Seconds(1);
  t.Add(e, SimTime::Zero());
  const SimTime later = SimTime::Zero() + Duration::Seconds(2);
  t.SweepExpired(later, [&](const FlowEntry&) {
    FlowEntry next;
    next.cookie = 2;
    t.Add(next, later);
  });
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.Lookup(Fields({}), later)->cookie, 2u);
}

TEST(FlowTableTest, RemoveByHandleAndCookie) {
  FlowTable t;
  FlowEntry e;
  e.cookie = 5;
  const auto h = t.Add(e, SimTime::Zero());
  t.Add(e, SimTime::Zero());
  EXPECT_TRUE(t.Remove(h));
  EXPECT_FALSE(t.Remove(h));
  EXPECT_EQ(t.RemoveByCookie(5), 1u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(StateTableTest, SymmetricScopes) {
  // Lookup by (src,dst), update by (dst,src): a reply finds the state its
  // initiator wrote — OpenState's "symmetric match".
  StateTable t({FieldId::kIpSrc, FieldId::kIpDst},
               {FieldId::kIpDst, FieldId::kIpSrc});
  const auto outbound = Fields({{FieldId::kIpSrc, 1}, {FieldId::kIpDst, 2}});
  const auto inbound = Fields({{FieldId::kIpSrc, 2}, {FieldId::kIpDst, 1}});
  // Writing on the outbound packet keys state under (dst,src) = (2,1)...
  t.Update(outbound, 7, SimTime::Zero());
  // ...which the inbound packet's (src,dst) = (2,1) lookup finds.
  EXPECT_EQ(t.Lookup(inbound, SimTime::Zero()), 7u);
  EXPECT_EQ(t.Lookup(outbound, SimTime::Zero()), kDefaultState);
}

TEST(StateTableTest, TtlExpiry) {
  StateTable t({FieldId::kIpSrc}, {FieldId::kIpSrc});
  const auto f = Fields({{FieldId::kIpSrc, 9}});
  t.Update(f, 3, SimTime::Zero(), Duration::Seconds(5));
  EXPECT_EQ(t.Lookup(f, SimTime::Zero() + Duration::Seconds(4)), 3u);
  EXPECT_EQ(t.Lookup(f, SimTime::Zero() + Duration::Seconds(5)),
            kDefaultState);
}

TEST(StateTableTest, MissingScopeFieldsFail) {
  StateTable t({FieldId::kIpSrc}, {FieldId::kIpSrc});
  const auto f = Fields({{FieldId::kIpDst, 1}});
  EXPECT_FALSE(t.Update(f, 1, SimTime::Zero()));
  EXPECT_EQ(t.Lookup(f, SimTime::Zero()), kDefaultState);
}

TEST(StateTableTest, DefaultWriteErases) {
  StateTable t({FieldId::kIpSrc}, {FieldId::kIpSrc});
  const auto f = Fields({{FieldId::kIpSrc, 9}});
  t.Update(f, 3, SimTime::Zero());
  EXPECT_EQ(t.size(), 1u);
  t.Update(f, kDefaultState, SimTime::Zero());
  EXPECT_EQ(t.size(), 0u);
}

TEST(RegisterArrayTest, ReadWriteByKey) {
  RegisterArray regs(128);
  const FlowKey k1{{1, 2}};
  const FlowKey k2{{3, 4}};
  regs.WriteKey(k1, 42);
  EXPECT_EQ(regs.ReadKey(k1), 42u);
  // k2 may or may not collide, but with 128 slots these two keys don't.
  EXPECT_NE(regs.IndexOf(k1), regs.IndexOf(k2));
}

TEST(RegisterArrayTest, CollisionsAreReal) {
  RegisterArray regs(1);  // everything collides
  regs.WriteKey(FlowKey{{1}}, 10);
  EXPECT_EQ(regs.ReadKey(FlowKey{{2}}), 10u);
}

TEST(FlowModQueueTest, LatencyApplied) {
  CostParams params;
  params.flow_mod = Duration::Micros(250);
  params.flow_mods_per_sec = 1000000;  // negligible service time
  FlowModQueue q(params);
  bool applied = false;
  const SimTime done =
      q.Submit(SimTime::Zero(), [&](SimTime) { applied = true; });
  EXPECT_GE((done - SimTime::Zero()).nanos(), 250000);
  q.Advance(SimTime::Zero() + Duration::Micros(249));
  EXPECT_FALSE(applied);
  q.Advance(done);
  EXPECT_TRUE(applied);
}

TEST(FlowModQueueTest, RateLimitQueuesBurst) {
  CostParams params;
  params.flow_mod = Duration::Zero();
  params.flow_mods_per_sec = 1000;  // 1ms service time each
  FlowModQueue q(params);
  SimTime last;
  for (int i = 0; i < 10; ++i)
    last = q.Submit(SimTime::Zero(), [](SimTime) {});
  // The 10th completes no earlier than 10 service times.
  EXPECT_GE((last - SimTime::Zero()).nanos(), 10 * 1000000);
}

TEST(FlowModQueueTest, AdvanceAppliesInOrder) {
  CostParams params;
  params.flow_mods_per_sec = 1000;
  FlowModQueue q(params);
  std::vector<int> order;
  q.Submit(SimTime::Zero(), [&](SimTime) { order.push_back(1); });
  q.Submit(SimTime::Zero(), [&](SimTime) { order.push_back(2); });
  q.Advance(SimTime::Zero() + Duration::Seconds(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.pending(), 0u);
}

// ------------------------------------------------------------- SoftSwitch

class RecordingObserver : public DataplaneObserver {
 public:
  void OnDataplaneEvent(const DataplaneEvent& event) override {
    events.push_back(event);
  }
  std::vector<DataplaneEvent> events;
};

class ForwardTo2 : public SwitchProgram {
 public:
  ForwardDecision OnPacket(SoftSwitch&, const ParsedPacket&, PortId) override {
    return ForwardDecision::Forward(PortId{2});
  }
  const char* Name() const override { return "fwd2"; }
};

class DropAll : public SwitchProgram {
 public:
  ForwardDecision OnPacket(SoftSwitch&, const ParsedPacket&, PortId) override {
    return ForwardDecision::Drop();
  }
  const char* Name() const override { return "drop"; }
};

Packet SamplePacket() {
  return BuildTcp(MacAddr(0x02, 0, 0, 0, 0, 1), MacAddr(0x02, 0, 0, 0, 0, 2),
                  Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1, 2, kTcpSyn);
}

TEST(SoftSwitchTest, EmitsArrivalThenEgressWithSharedPacketId) {
  EventQueue q;
  SoftSwitch sw(7, 4, q);
  ForwardTo2 prog;
  sw.SetProgram(&prog);
  RecordingObserver obs;
  sw.AddObserver(&obs);

  sw.ReceivePacket(PortId{1}, SamplePacket());
  ASSERT_EQ(obs.events.size(), 2u);
  const auto& arrival = obs.events[0];
  const auto& egress = obs.events[1];
  EXPECT_EQ(arrival.type, DataplaneEventType::kArrival);
  EXPECT_EQ(egress.type, DataplaneEventType::kEgress);
  EXPECT_EQ(arrival.fields.Get(FieldId::kInPort), 1u);
  EXPECT_EQ(arrival.fields.Get(FieldId::kSwitchId), 7u);
  // Feature 5: the same identity labels both events.
  EXPECT_EQ(arrival.fields.Get(FieldId::kPacketId),
            egress.fields.Get(FieldId::kPacketId));
  EXPECT_EQ(egress.fields.Get(FieldId::kOutPort), 2u);
  EXPECT_EQ(egress.fields.Get(FieldId::kEgressAction),
            static_cast<std::uint64_t>(EgressActionValue::kForward));
}

TEST(SoftSwitchTest, DropsAreObservableEgressEvents) {
  EventQueue q;
  SoftSwitch sw(1, 4, q);
  DropAll prog;
  sw.SetProgram(&prog);
  RecordingObserver obs;
  sw.AddObserver(&obs);
  sw.ReceivePacket(PortId{1}, SamplePacket());
  ASSERT_EQ(obs.events.size(), 2u);
  EXPECT_EQ(obs.events[1].fields.Get(FieldId::kEgressAction),
            static_cast<std::uint64_t>(EgressActionValue::kDrop));
  EXPECT_FALSE(obs.events[1].fields.Has(FieldId::kOutPort));
}

TEST(SoftSwitchTest, FloodTransmitsToAllButIngress) {
  EventQueue q;
  SoftSwitch sw(1, 4, q);
  class FloodProg : public SwitchProgram {
   public:
    ForwardDecision OnPacket(SoftSwitch&, const ParsedPacket&,
                             PortId) override {
      return ForwardDecision::Flood();
    }
    const char* Name() const override { return "flood"; }
  } prog;
  sw.SetProgram(&prog);
  std::vector<std::uint64_t> out_ports;
  sw.SetTransmit([&](PortId p, const Packet&) { out_ports.push_back(ToU64(p)); });
  sw.ReceivePacket(PortId{2}, SamplePacket());
  EXPECT_EQ(out_ports, (std::vector<std::uint64_t>{1, 3, 4}));
}

TEST(SoftSwitchTest, LinkDownBlocksTrafficAndEmitsEvent) {
  EventQueue q;
  SoftSwitch sw(1, 4, q);
  ForwardTo2 prog;
  sw.SetProgram(&prog);
  RecordingObserver obs;
  sw.AddObserver(&obs);
  int transmitted = 0;
  sw.SetTransmit([&](PortId, const Packet&) { ++transmitted; });

  sw.SetLinkStatus(PortId{2}, false);
  ASSERT_EQ(obs.events.size(), 1u);
  EXPECT_EQ(obs.events[0].type, DataplaneEventType::kLinkStatus);
  EXPECT_EQ(obs.events[0].fields.Get(FieldId::kLinkId), 2u);
  EXPECT_EQ(obs.events[0].fields.Get(FieldId::kLinkUp), 0u);

  sw.ReceivePacket(PortId{1}, SamplePacket());
  EXPECT_EQ(transmitted, 0);  // egress link is down

  sw.SetLinkStatus(PortId{1}, false);
  sw.ReceivePacket(PortId{1}, SamplePacket());
  // No new arrival event: the ingress link is down.
  EXPECT_EQ(obs.events.size(), 4u);  // 2 link events + arrival + egress
}

TEST(SoftSwitchTest, RewrittenPacketsReencodedOnTransmit) {
  EventQueue q;
  SoftSwitch sw(1, 2, q);
  class Rewriter : public SwitchProgram {
   public:
    ForwardDecision OnPacket(SoftSwitch&, const ParsedPacket& pkt,
                             PortId) override {
      ParsedPacket copy = pkt;
      SetPacketField(copy, FieldId::kIpSrc, Ipv4Addr(203, 0, 113, 1).bits());
      ForwardDecision d = ForwardDecision::Forward(PortId{2});
      d.rewritten = std::move(copy);
      return d;
    }
    const char* Name() const override { return "rewriter"; }
  } prog;
  sw.SetProgram(&prog);
  RecordingObserver obs;
  sw.AddObserver(&obs);
  Packet wire_out;
  sw.SetTransmit([&](PortId, const Packet& p) { wire_out = p; });

  sw.ReceivePacket(PortId{1}, SamplePacket());
  // The egress event shows the rewritten source...
  EXPECT_EQ(obs.events[1].fields.Get(FieldId::kIpSrc),
            Ipv4Addr(203, 0, 113, 1).bits());
  // ...the arrival shows the original...
  EXPECT_EQ(obs.events[0].fields.Get(FieldId::kIpSrc),
            Ipv4Addr(10, 0, 0, 1).bits());
  // ...and the wire bytes carry the rewrite.
  const ParsedPacket sent = ParsePacket(wire_out, ParseDepth::kL4);
  EXPECT_EQ(sent.ipv4->src, Ipv4Addr(203, 0, 113, 1));
}

TEST(SoftSwitchTest, EmitPacketProducesEgressOnly) {
  EventQueue q;
  SoftSwitch sw(1, 2, q);
  RecordingObserver obs;
  sw.AddObserver(&obs);
  int transmitted = 0;
  sw.SetTransmit([&](PortId, const Packet&) { ++transmitted; });
  sw.EmitPacket(PortId{1}, SamplePacket());
  ASSERT_EQ(obs.events.size(), 1u);
  EXPECT_EQ(obs.events[0].type, DataplaneEventType::kEgress);
  EXPECT_EQ(transmitted, 1);
}

TEST(SoftSwitchTest, PacketIdsAreFresh) {
  EventQueue q;
  SoftSwitch sw(1, 2, q);
  ForwardTo2 prog;
  sw.SetProgram(&prog);
  RecordingObserver obs;
  sw.AddObserver(&obs);
  sw.ReceivePacket(PortId{1}, SamplePacket());
  sw.ReceivePacket(PortId{1}, SamplePacket());
  EXPECT_NE(obs.events[0].fields.Get(FieldId::kPacketId),
            obs.events[2].fields.Get(FieldId::kPacketId));
}

}  // namespace
}  // namespace swmon
