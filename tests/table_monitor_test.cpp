// TableMonitor — Varanus's recursive-learn compilation on real flow
// tables: encoding tests plus full equivalence with the reference engine
// over the catalog scenarios.
#include <gtest/gtest.h>

#include "backends/table_monitor.hpp"
#include "monitor/engine.hpp"
#include "monitor/features.hpp"
#include "properties/catalog.hpp"
#include "workload/property_scenarios.hpp"

namespace swmon {
namespace {

DataplaneEvent Ev(DataplaneEventType type, std::int64_t ms,
                  std::initializer_list<std::pair<FieldId, std::uint64_t>> kv) {
  DataplaneEvent ev;
  ev.type = type;
  ev.time = SimTime::Zero() + Duration::Millis(ms);
  for (const auto& [k, v] : kv) ev.fields.Set(k, v);
  return ev;
}

constexpr std::uint64_t kDrop =
    static_cast<std::uint64_t>(EgressActionValue::kDrop);
constexpr std::uint64_t kForward =
    static_cast<std::uint64_t>(EgressActionValue::kForward);

TEST(TableMonitorTest, UnrollsInstancesIntoTables) {
  TableMonitor mon(FirewallReturnNotDropped(), CostParams{},
                   /*static_mode=*/false);
  EXPECT_EQ(mon.PipelineDepth(), 1u);  // just the creation table
  for (int c = 0; c < 3; ++c) {
    mon.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, c + 1,
                            {{FieldId::kInPort, 1},
                             {FieldId::kIpSrc, 10 + c},
                             {FieldId::kIpDst, 20}}));
  }
  EXPECT_EQ(mon.live_instances(), 3u);
  EXPECT_EQ(mon.PipelineDepth(), 4u);  // one table per instance (Sec 3.3)
  EXPECT_GT(mon.costs().flow_mods, 0u);

  // A drop of (20 -> 11) hits exactly instance #2's table entry.
  mon.OnDataplaneEvent(Ev(DataplaneEventType::kEgress, 10,
                          {{FieldId::kIpSrc, 20},
                           {FieldId::kIpDst, 11},
                           {FieldId::kEgressAction, kDrop}}));
  ASSERT_EQ(mon.violations().size(), 1u);
  EXPECT_EQ(mon.violations()[0].bindings[0].second, 11u);
  EXPECT_EQ(mon.live_instances(), 2u);
  EXPECT_EQ(mon.PipelineDepth(), 3u);  // the violating table was torn down
}

TEST(TableMonitorTest, StaticModeKeepsConstantDepth) {
  TableMonitor mon(FirewallReturnNotDropped(), CostParams{},
                   /*static_mode=*/true);
  const std::size_t depth0 = mon.PipelineDepth();
  for (int c = 0; c < 32; ++c) {
    mon.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, c + 1,
                            {{FieldId::kInPort, 1},
                             {FieldId::kIpSrc, 100 + c},
                             {FieldId::kIpDst, 20}}));
  }
  EXPECT_EQ(mon.live_instances(), 32u);
  EXPECT_EQ(mon.PipelineDepth(), depth0);  // entries grew, tables did not
  EXPECT_GE(mon.total_entries(), 32u);
}

TEST(TableMonitorTest, ForbiddenTuplesCompileToShadowEntries) {
  // NAT: the exact (A, P) destination hits the higher-priority shadow entry
  // (no-op); anything else hits the advance entry (violation).
  TableMonitor mon(NatReverseTranslation(), CostParams{},
                   /*static_mode=*/false);
  auto run_flow = [&](std::uint64_t base_pid, std::uint16_t out_port,
                      bool correct) {
    mon.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 1,
                            {{FieldId::kInPort, 1},
                             {FieldId::kIpSrc, 10},
                             {FieldId::kIpDst, 20},
                             {FieldId::kL4SrcPort, 1000},
                             {FieldId::kL4DstPort, 80},
                             {FieldId::kPacketId, base_pid}}));
    mon.OnDataplaneEvent(Ev(DataplaneEventType::kEgress, 1,
                            {{FieldId::kPacketId, base_pid},
                             {FieldId::kEgressAction, kForward},
                             {FieldId::kIpSrc, 99},
                             {FieldId::kL4SrcPort, 50000},
                             {FieldId::kIpDst, 20},
                             {FieldId::kL4DstPort, 80}}));
    mon.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 2,
                            {{FieldId::kInPort, 2},
                             {FieldId::kIpSrc, 20},
                             {FieldId::kL4SrcPort, 80},
                             {FieldId::kIpDst, 99},
                             {FieldId::kL4DstPort, 50000},
                             {FieldId::kPacketId, base_pid + 1}}));
    mon.OnDataplaneEvent(Ev(DataplaneEventType::kEgress, 2,
                            {{FieldId::kPacketId, base_pid + 1},
                             {FieldId::kEgressAction, kForward},
                             {FieldId::kIpDst, 10},
                             {FieldId::kL4DstPort,
                              correct ? 1000u : static_cast<std::uint64_t>(out_port)}}));
  };
  run_flow(100, 0, /*correct=*/true);
  EXPECT_TRUE(mon.violations().empty());  // shadow entry swallowed it
  run_flow(200, 1001, /*correct=*/false);
  EXPECT_EQ(mon.violations().size(), 1u);
}

TEST(TableMonitorTest, OrAbsentConditionsExpandOverValidityBits) {
  // The firewall-with-close property's stage 0 has a tcp_flags or_absent
  // condition: its creation entries must admit non-TCP packets too.
  TableMonitor mon(FirewallReturnNotDroppedObligation(), CostParams{},
                   /*static_mode=*/false);
  // An ICMP packet (no tcp_flags at all) opens state.
  mon.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 1,
                          {{FieldId::kInPort, 1},
                           {FieldId::kIpSrc, 10},
                           {FieldId::kIpDst, 20}}));
  EXPECT_EQ(mon.live_instances(), 1u);
  // A FIN does NOT create (flags & FIN != 0 fails both variants).
  mon.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 2,
                          {{FieldId::kInPort, 1},
                           {FieldId::kIpSrc, 11},
                           {FieldId::kIpDst, 20},
                           {FieldId::kTcpFlags, kTcpFin}}));
  EXPECT_EQ(mon.live_instances(), 1u);
}

TEST(TableMonitorTest, ExpiryContinuationFiresTimeoutActions) {
  TableMonitor mon(ArpProxyReplyDeadline(), CostParams{},
                   /*static_mode=*/false);
  mon.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 1,
                          {{FieldId::kArpOp, 2}, {FieldId::kArpSenderIp, 7}}));
  mon.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, 100,
                          {{FieldId::kArpOp, 1}, {FieldId::kArpTargetIp, 7}}));
  EXPECT_TRUE(mon.violations().empty());
  mon.AdvanceTime(SimTime::Zero() + Duration::Seconds(2));
  ASSERT_EQ(mon.violations().size(), 1u);
  EXPECT_EQ(mon.violations()[0].time, SimTime::Zero() + Duration::Millis(1100));
}

TEST(TableMonitorTest, MultipleMatchNeedsDynamicTables) {
  // One link-down advances every learned destination — only possible when
  // each instance owns a table (the paper's out-of-band argument).
  TableMonitor mon(LearningSwitchLinkDownFlush(), CostParams{},
                   /*static_mode=*/false);
  for (std::uint64_t d = 1; d <= 4; ++d)
    mon.OnDataplaneEvent(Ev(DataplaneEventType::kArrival,
                            static_cast<std::int64_t>(d),
                            {{FieldId::kEthSrc, d}, {FieldId::kInPort, 2}}));
  mon.OnDataplaneEvent(
      Ev(DataplaneEventType::kLinkStatus, 10, {{FieldId::kLinkUp, 0}}));
  mon.OnDataplaneEvent(Ev(DataplaneEventType::kEgress, 20,
                          {{FieldId::kEthDst, 3},
                           {FieldId::kEgressAction, kForward},
                           {FieldId::kOutPort, 2}}));
  ASSERT_EQ(mon.violations().size(), 1u);
  EXPECT_EQ(mon.violations()[0].bindings[0].second, 3u);
}

// Equivalence with the reference engine over every catalog scenario.
class TableParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TableParity, DynamicTablesMatchTheReferenceEngine) {
  static const auto catalog = BuildCatalog();
  if (GetParam() >= catalog.size()) GTEST_SKIP();
  const CatalogEntry& entry = catalog[GetParam()];
  SCOPED_TRACE(entry.property.name);

  for (const bool faulted : {false, true}) {
    ScenarioOptions opts;
    opts.keep_trace = true;
    const auto out =
        RunScenarioForProperty(entry.property.name, faulted, opts);
    ASSERT_NE(out.trace, nullptr);

    TableMonitor mon(entry.property, CostParams{}, /*static_mode=*/false);
    out.trace->ReplayInto(mon);
    mon.AdvanceTime(out.end_time);
    EXPECT_EQ(mon.violations().size(), out.ViolationsOf(entry.property.name))
        << "faulted=" << faulted;
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, TableParity,
                         ::testing::Range<std::size_t>(0, 21));

TEST(TableMonitorTest, TeardownLeavesNoEntriesBehind) {
  TableMonitor mon(FirewallReturnNotDroppedTimeout(), CostParams{},
                   /*static_mode=*/true);
  const std::size_t base_entries = mon.total_entries();
  for (int c = 0; c < 10; ++c) {
    mon.OnDataplaneEvent(Ev(DataplaneEventType::kArrival, c + 1,
                            {{FieldId::kInPort, 1},
                             {FieldId::kIpSrc, 10 + c},
                             {FieldId::kIpDst, 20}}));
  }
  EXPECT_GT(mon.total_entries(), base_entries);
  // Everything expires (30s window): entries are reclaimed.
  mon.AdvanceTime(SimTime::Zero() + Duration::Seconds(120));
  EXPECT_EQ(mon.live_instances(), 0u);
  EXPECT_EQ(mon.total_entries(), base_entries);
}

}  // namespace
}  // namespace swmon
