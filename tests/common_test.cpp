#include <gtest/gtest.h>

#include <set>

#include "common/byte_io.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace swmon {
namespace {

TEST(SimTimeTest, DurationArithmetic) {
  EXPECT_EQ(Duration::Seconds(2).nanos(), 2000000000);
  EXPECT_EQ(Duration::Millis(3).nanos(), 3000000);
  EXPECT_EQ(Duration::Micros(5).nanos(), 5000);
  EXPECT_EQ((Duration::Seconds(1) + Duration::Millis(500)).nanos(),
            1500000000);
  EXPECT_EQ((Duration::Seconds(1) - Duration::Millis(250)).nanos(), 750000000);
  EXPECT_EQ((Duration::Millis(10) * 3).nanos(), 30000000);
  EXPECT_EQ((Duration::Seconds(1) / 4).nanos(), 250000000);
}

TEST(SimTimeTest, InstantOrderingAndOffsets) {
  const SimTime t0 = SimTime::Zero();
  const SimTime t1 = t0 + Duration::Seconds(1);
  EXPECT_LT(t0, t1);
  EXPECT_EQ((t1 - t0).nanos(), 1000000000);
  EXPECT_TRUE(SimTime::Infinity().IsInfinite());
  EXPECT_LT(t1, SimTime::Infinity());
}

TEST(SimTimeTest, ToStringPicksUnits) {
  EXPECT_EQ(Duration::Seconds(2).ToString(), "2s");
  EXPECT_EQ(Duration::Millis(7).ToString(), "7ms");
  EXPECT_EQ(Duration::Micros(9).ToString(), "9us");
  EXPECT_EQ(Duration::Nanos(13).ToString(), "13ns");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(17), 17u);
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BoolProbabilityExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(11);
  Rng b = a.Fork();
  EXPECT_NE(a.Next(), b.Next());
}

TEST(HashTest, Fnv1aMatchesKnownVector) {
  // FNV-1a 64-bit of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(ByteIoTest, WriterRoundTripsThroughReader) {
  ByteWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefULL);
  ByteReader r(std::span(w.bytes()));
  EXPECT_EQ(r.ReadU8(), 0xab);
  EXPECT_EQ(r.ReadU16(), 0x1234);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteIoTest, BigEndianLayout) {
  ByteWriter w;
  w.WriteU16(0x0102);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[1], 0x02);
}

TEST(ByteIoTest, UnderflowSetsNotOk) {
  const std::uint8_t data[2] = {1, 2};
  ByteReader r(std::span(data, 2));
  EXPECT_EQ(r.ReadU32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(ByteIoTest, UnderflowIsSticky) {
  const std::uint8_t data[3] = {1, 2, 3};
  ByteReader r(std::span(data, 3));
  r.ReadU32();  // fails
  EXPECT_EQ(r.ReadU8(), 0u);  // would succeed alone, but failure is sticky
  EXPECT_FALSE(r.ok());
}

TEST(ByteIoTest, PatchU16OverwritesInPlace) {
  ByteWriter w;
  w.WriteU32(0);
  w.PatchU16(1, 0xbeef);
  EXPECT_EQ(w.bytes()[1], 0xbe);
  EXPECT_EQ(w.bytes()[2], 0xef);
}

TEST(ByteIoTest, ReadSpanAdvances) {
  const std::uint8_t data[4] = {9, 8, 7, 6};
  ByteReader r(std::span(data, 4));
  auto s = r.ReadSpan(2);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 9);
  EXPECT_EQ(r.ReadU8(), 7);
}

}  // namespace
}  // namespace swmon
