// Robustness ("never crash, never lie") sweeps: random and mutated inputs
// through the packet parser, the SPL parser, and the monitor engine.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "monitor/engine.hpp"
#include "packet/builder.hpp"
#include "packet/parser.hpp"
#include "properties/catalog.hpp"
#include "spl/spl.hpp"
#include "telemetry_helpers.hpp"

namespace swmon {
namespace {

class PacketFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketFuzz, RandomBytesNeverCrashTheParser) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const std::size_t len = rng.NextBelow(400);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.Next());
    const ParsedPacket parsed =
        ParsePacket(std::span(bytes), ParseDepth::kL7);
    // Invariants even on garbage: field presence implies layer presence.
    if (parsed.fields.Has(FieldId::kL4SrcPort))
      EXPECT_TRUE(parsed.tcp || parsed.udp);
    if (parsed.fields.Has(FieldId::kIpSrc)) EXPECT_TRUE(parsed.ipv4);
    if (parsed.fields.Has(FieldId::kDhcpMsgType)) EXPECT_TRUE(parsed.dhcp);
    if (!parsed.valid) EXPECT_LT(len, EthernetHeader::kSize);
  }
}

TEST_P(PacketFuzz, TruncatedRealPacketsNeverCrash) {
  Rng rng(GetParam());
  DhcpMessage msg;
  msg.msg_type = DhcpMsgType::kAck;
  msg.yiaddr = Ipv4Addr(10, 0, 0, 9);
  msg.lease_secs = 60;
  const Packet originals[] = {
      BuildTcp(MacAddr(0x02, 0, 0, 0, 0, 1), MacAddr(0x02, 0, 0, 0, 0, 2),
               Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1, 2, kTcpSyn),
      BuildArpRequest(MacAddr(0x02, 0, 0, 0, 0, 1), Ipv4Addr(10, 0, 0, 1),
                      Ipv4Addr(10, 0, 0, 2)),
      BuildDhcp(MacAddr(0x02, 0, 0, 0, 0, 1), MacAddr::Broadcast(),
                Ipv4Addr(10, 0, 0, 3), Ipv4Addr(10, 0, 0, 9), false, msg),
      BuildFtpControlLine(MacAddr(0x02, 0, 0, 0, 0, 1),
                          MacAddr(0x02, 0, 0, 0, 0, 2), Ipv4Addr(10, 0, 0, 1),
                          Ipv4Addr(10, 0, 0, 2), 40000, 21,
                          FormatFtpPort(Ipv4Addr(10, 0, 0, 1), 5000)),
  };
  for (const Packet& original : originals) {
    for (std::size_t cut = 0; cut <= original.size(); ++cut) {
      Packet truncated = original;
      truncated.data.resize(cut);
      ParsePacket(truncated, ParseDepth::kL7);  // must not crash
    }
    // Random single-byte corruptions.
    for (int i = 0; i < 200; ++i) {
      Packet mutated = original;
      mutated.data[rng.NextBelow(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.NextBelow(255));
      ParsePacket(mutated, ParseDepth::kL7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketFuzz, ::testing::Values(1, 2, 3, 4));

class SplFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplFuzz, TokenSoupAlwaysYieldsErrorOrValidProperty) {
  Rng rng(GetParam());
  const char* words[] = {"property", "stage",  "timeout", "match", "bind",
                         "on",       "arrival", "egress",  "{",     "}",
                         ";",        "==",      "!=",      "$",     "(",
                         ")",        ",",       "ip_src",  "x",     "7",
                         "0x1f",     "\"s\"",   "window",  "1s",    "vars",
                         "unless",   "forbid",  "suppress", "key",  "hash",
                         "%",        "+",       "/",        "mode", "exact"};
  for (int i = 0; i < 3000; ++i) {
    std::string text;
    const std::size_t n = 1 + rng.NextBelow(40);
    for (std::size_t w = 0; w < n; ++w) {
      text += words[rng.NextBelow(std::size(words))];
      text += " ";
    }
    const SplParseResult result = ParseSpl(text);  // must not crash
    if (result.ok()) {
      EXPECT_TRUE(result.property->Validate().empty());
    } else {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST_P(SplFuzz, MutatedCatalogTextNeverCrashes) {
  Rng rng(GetParam());
  for (const auto& entry : BuildCatalog()) {
    const std::string good = SerializeSpl(entry.property);
    for (int i = 0; i < 30; ++i) {
      std::string bad = good;
      // Random deletion, duplication, or byte flip.
      const std::size_t pos = rng.NextBelow(bad.size());
      switch (rng.NextBelow(3)) {
        case 0: bad.erase(pos, 1 + rng.NextBelow(5)); break;
        case 1: bad.insert(pos, bad.substr(pos, 1 + rng.NextBelow(5))); break;
        default: bad[pos] = static_cast<char>(32 + rng.NextBelow(95)); break;
      }
      const SplParseResult result = ParseSpl(bad);
      if (result.ok()) EXPECT_TRUE(result.property->Validate().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplFuzz, ::testing::Values(10, 20, 30));

TEST(EngineFuzz, RandomEventSoupNeverCrashesAnyCatalogProperty) {
  Rng rng(99);
  // Pre-generate a shared random event stream with plausible field mixes.
  std::vector<DataplaneEvent> events;
  SimTime t = SimTime::Zero();
  for (int i = 0; i < 3000; ++i) {
    DataplaneEvent ev;
    t = t + Duration::Micros(static_cast<std::int64_t>(rng.NextBelow(200000)));
    ev.time = t;
    const auto roll = rng.NextBelow(10);
    ev.type = roll < 4   ? DataplaneEventType::kArrival
              : roll < 8 ? DataplaneEventType::kEgress
                         : DataplaneEventType::kLinkStatus;
    // Sprinkle random fields (including nonsense combinations).
    for (std::size_t f = 0; f < kNumFieldIds; ++f) {
      if (rng.NextBool(0.35))
        ev.fields.Set(static_cast<FieldId>(f), rng.NextBelow(16));
    }
    events.push_back(std::move(ev));
  }
  for (const auto& entry : BuildCatalog()) {
    MonitorConfig mc;
    // Exercise eviction under the soup.
    mc.eviction = EvictionConfig{}.WithMaxInstances(512);
    MonitorEngine engine(entry.property, mc);
    for (const auto& ev : events) engine.ProcessEvent(ev);
    engine.AdvanceTime(t + Duration::Seconds(300));
    // Sanity: stats are internally consistent.
    telemetry::Snapshot snap;
    engine.CollectInto(snap, "t");
    EXPECT_EQ(snap.counter("monitor.engine.t.events"), events.size());
    EXPECT_LE(engine.live_instances(), 512u);
    EXPECT_LE(snap.counter("monitor.engine.t.violations"),
              snap.counter("monitor.engine.t.instances_created"));
  }
}

TEST(EngineFuzz, IndexedAndLinearAgreeOnTheSoup) {
  Rng rng(123);
  std::vector<DataplaneEvent> events;
  SimTime t = SimTime::Zero();
  for (int i = 0; i < 1500; ++i) {
    DataplaneEvent ev;
    t = t + Duration::Millis(1 + static_cast<std::int64_t>(rng.NextBelow(50)));
    ev.time = t;
    ev.type = rng.NextBool(0.5) ? DataplaneEventType::kArrival
                                : DataplaneEventType::kEgress;
    for (std::size_t f = 0; f < kNumFieldIds; ++f) {
      if (rng.NextBool(0.5))
        ev.fields.Set(static_cast<FieldId>(f), rng.NextBelow(6));
    }
    events.push_back(std::move(ev));
  }
  for (const auto& entry : BuildCatalog()) {
    MonitorConfig linear;
    linear.force_linear_store = true;
    MonitorEngine a(entry.property);
    MonitorEngine b(entry.property, linear);
    for (const auto& ev : events) {
      a.ProcessEvent(ev);
      b.ProcessEvent(ev);
    }
    EXPECT_EQ(a.violations().size(), b.violations().size())
        << entry.property.name;
    EXPECT_EQ(a.live_instances(), b.live_instances()) << entry.property.name;
  }
}

}  // namespace
}  // namespace swmon
