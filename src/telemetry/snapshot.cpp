#include "telemetry/snapshot.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "telemetry/metrics.hpp"

namespace swmon::telemetry {

void Snapshot::SetCounter(std::string name, std::uint64_t value) {
  Sample& s = samples_[std::move(name)];
  s.kind = Sample::Kind::kCounter;
  s.counter = value;
}

void Snapshot::AddCounter(std::string name, std::uint64_t value) {
  Sample& s = samples_[std::move(name)];
  s.kind = Sample::Kind::kCounter;
  s.counter += value;
}

void Snapshot::SetGauge(std::string name, std::int64_t value) {
  Sample& s = samples_[std::move(name)];
  s.kind = Sample::Kind::kGauge;
  s.gauge = value;
}

void Snapshot::SetHistogram(std::string name, HistogramData h) {
  h.TrimTrailingZeros();
  Sample& s = samples_[std::move(name)];
  s.kind = Sample::Kind::kHistogram;
  s.histogram = std::move(h);
}

void Snapshot::MergeHistogram(std::string name, const HistogramData& h) {
  Sample& s = samples_[std::move(name)];
  s.kind = Sample::Kind::kHistogram;
  HistogramData& dst = s.histogram;
  dst.count += h.count;
  dst.sum += h.sum;
  if (dst.buckets.size() < h.buckets.size())
    dst.buckets.resize(h.buckets.size(), 0);
  for (std::size_t i = 0; i < h.buckets.size(); ++i)
    dst.buckets[i] += h.buckets[i];
  dst.TrimTrailingZeros();
}

std::uint64_t Snapshot::counter(std::string_view query) const {
  const std::size_t star = query.find('*');
  if (star == std::string_view::npos) {
    auto it = samples_.find(query);
    return it != samples_.end() && it->second.kind == Sample::Kind::kCounter
               ? it->second.counter
               : 0;
  }
  const std::string_view prefix = query.substr(0, star);
  const std::string_view suffix = query.substr(star + 1);
  std::uint64_t total = 0;
  for (auto it = samples_.lower_bound(prefix); it != samples_.end(); ++it) {
    const std::string_view name = it->first;
    if (name.substr(0, prefix.size()) != prefix) break;
    if (name.size() < prefix.size() + suffix.size()) continue;
    if (!suffix.empty() && name.substr(name.size() - suffix.size()) != suffix)
      continue;
    if (it->second.kind == Sample::Kind::kCounter) total += it->second.counter;
  }
  return total;
}

std::int64_t Snapshot::gauge(std::string_view name) const {
  auto it = samples_.find(name);
  return it != samples_.end() && it->second.kind == Sample::Kind::kGauge
             ? it->second.gauge
             : 0;
}

const HistogramData* Snapshot::histogram(std::string_view name) const {
  auto it = samples_.find(name);
  return it != samples_.end() && it->second.kind == Sample::Kind::kHistogram
             ? &it->second.histogram
             : nullptr;
}

bool Snapshot::Has(std::string_view name) const {
  return samples_.find(name) != samples_.end();
}

std::vector<std::pair<std::string_view, const Sample*>> Snapshot::WithPrefix(
    std::string_view prefix) const {
  std::vector<std::pair<std::string_view, const Sample*>> out;
  for (auto it = samples_.lower_bound(prefix); it != samples_.end(); ++it) {
    if (std::string_view(it->first).substr(0, prefix.size()) != prefix) break;
    out.emplace_back(it->first, &it->second);
  }
  return out;
}

// ------------------------------------------------------------------- JSON

namespace {

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void AppendU64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendI64(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace

std::string Snapshot::ToJson() const {
  // Three name->value objects, one per instrument kind; names sorted (map
  // order) so identical snapshots serialize identically.
  std::string counters, gauges, histograms;
  for (const auto& [name, s] : samples_) {
    switch (s.kind) {
      case Sample::Kind::kCounter: {
        if (!counters.empty()) counters += ",\n";
        counters += "    ";
        AppendJsonString(counters, name);
        counters += ": ";
        AppendU64(counters, s.counter);
        break;
      }
      case Sample::Kind::kGauge: {
        if (!gauges.empty()) gauges += ",\n";
        gauges += "    ";
        AppendJsonString(gauges, name);
        gauges += ": ";
        AppendI64(gauges, s.gauge);
        break;
      }
      case Sample::Kind::kHistogram: {
        if (!histograms.empty()) histograms += ",\n";
        histograms += "    ";
        AppendJsonString(histograms, name);
        histograms += ": {\"count\": ";
        AppendU64(histograms, s.histogram.count);
        histograms += ", \"sum\": ";
        AppendU64(histograms, s.histogram.sum);
        histograms += ", \"buckets\": [";
        for (std::size_t i = 0; i < s.histogram.buckets.size(); ++i) {
          if (i) histograms += ", ";
          AppendU64(histograms, s.histogram.buckets[i]);
        }
        histograms += "]}";
        break;
      }
    }
  }
  std::string out = "{\n  \"counters\": {\n";
  out += counters;
  out += "\n  },\n  \"gauges\": {\n";
  out += gauges;
  out += "\n  },\n  \"histograms\": {\n";
  out += histograms;
  out += "\n  }\n}\n";
  return out;
}

namespace {

/// Minimal recursive-descent parser for exactly the shape ToJson() emits
/// (string keys, integer values, one nesting level of histogram objects).
class JsonReader {
 public:
  explicit JsonReader(std::string_view s) : s_(s) {}

  bool Consume(char c) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  bool ReadString(std::string& out) {
    if (!Consume('"')) return false;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      out += s_[pos_++];
    }
    return Consume('"');
  }

  bool ReadInt(std::int64_t& out) {
    SkipWs();
    bool neg = false;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      neg = true;
      ++pos_;
    }
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
      return false;
    std::uint64_t v = 0;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      v = v * 10 + static_cast<std::uint64_t>(s_[pos_++] - '0');
    }
    out = neg ? -static_cast<std::int64_t>(v) : static_cast<std::int64_t>(v);
    return true;
  }

  bool ReadU64(std::uint64_t& out) {
    SkipWs();
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
      return false;
    out = 0;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      out = out * 10 + static_cast<std::uint64_t>(s_[pos_++] - '0');
    }
    return true;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Snapshot> Snapshot::FromJson(std::string_view json) {
  JsonReader r(json);
  Snapshot snap;
  if (!r.Consume('{')) return std::nullopt;
  for (int section = 0; section < 3; ++section) {
    std::string section_name;
    if (!r.ReadString(section_name) || !r.Consume(':') || !r.Consume('{'))
      return std::nullopt;
    bool first = true;
    while (!r.Peek('}')) {
      if (!first && !r.Consume(',')) return std::nullopt;
      first = false;
      std::string name;
      if (!r.ReadString(name) || !r.Consume(':')) return std::nullopt;
      if (section_name == "counters") {
        std::uint64_t v = 0;
        if (!r.ReadU64(v)) return std::nullopt;
        snap.SetCounter(std::move(name), v);
      } else if (section_name == "gauges") {
        std::int64_t v = 0;
        if (!r.ReadInt(v)) return std::nullopt;
        snap.SetGauge(std::move(name), v);
      } else if (section_name == "histograms") {
        HistogramData h;
        std::string key;
        if (!r.Consume('{')) return std::nullopt;
        for (int field = 0; field < 3; ++field) {
          if (field && !r.Consume(',')) return std::nullopt;
          if (!r.ReadString(key) || !r.Consume(':')) return std::nullopt;
          if (key == "count") {
            if (!r.ReadU64(h.count)) return std::nullopt;
          } else if (key == "sum") {
            if (!r.ReadU64(h.sum)) return std::nullopt;
          } else if (key == "buckets") {
            if (!r.Consume('[')) return std::nullopt;
            while (!r.Peek(']')) {
              if (!h.buckets.empty() && !r.Consume(',')) return std::nullopt;
              std::uint64_t b = 0;
              if (!r.ReadU64(b)) return std::nullopt;
              h.buckets.push_back(b);
            }
            if (!r.Consume(']')) return std::nullopt;
          } else {
            return std::nullopt;
          }
        }
        if (!r.Consume('}')) return std::nullopt;
        snap.SetHistogram(std::move(name), std::move(h));
      } else {
        return std::nullopt;
      }
    }
    if (!r.Consume('}')) return std::nullopt;
    if (section < 2 && !r.Consume(',')) return std::nullopt;
  }
  if (!r.Consume('}') || !r.AtEnd()) return std::nullopt;
  return snap;
}

// ------------------------------------------------------------- Prometheus

namespace {

/// "monitor.engine.fw-return.events" -> "swmon_monitor_engine_fw_return_events"
std::string PromName(std::string_view name) {
  std::string out = "swmon_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string Snapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, s] : samples_) {
    const std::string prom = PromName(name);
    switch (s.kind) {
      case Sample::Kind::kCounter:
        out += "# TYPE " + prom + " counter\n" + prom + " ";
        AppendU64(out, s.counter);
        out += '\n';
        break;
      case Sample::Kind::kGauge:
        out += "# TYPE " + prom + " gauge\n" + prom + " ";
        AppendI64(out, s.gauge);
        out += '\n';
        break;
      case Sample::Kind::kHistogram: {
        out += "# TYPE " + prom + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < s.histogram.buckets.size(); ++i) {
          cumulative += s.histogram.buckets[i];
          out += prom + "_bucket{le=\"";
          AppendU64(out, Histogram::BucketUpperBound(i));
          out += "\"} ";
          AppendU64(out, cumulative);
          out += '\n';
        }
        out += prom + "_bucket{le=\"+Inf\"} ";
        AppendU64(out, s.histogram.count);
        out += '\n';
        out += prom + "_sum ";
        AppendU64(out, s.histogram.sum);
        out += '\n';
        out += prom + "_count ";
        AppendU64(out, s.histogram.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

}  // namespace swmon::telemetry
