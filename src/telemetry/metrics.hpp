// Typed metric instruments and the MetricsRegistry.
//
// Instruments are lock-free on the hot path: Counter/Gauge are single
// relaxed atomics, Histogram is a relaxed-atomic bucket array indexed by
// bit_width(value) (bucket 0 holds zeros; bucket i >= 1 covers
// [2^(i-1), 2^i - 1] — the log-bucketed layout that makes a 65-slot array
// cover all of u64 with ~2x resolution). Relaxed ordering is deliberate:
// readers only ever observe instrument values at quiesce points (snapshot
// time), never to synchronize with other memory, and TSan is clean because
// every access is atomic.
//
// The registry maps hierarchical names to instruments; creation takes a
// mutex, but the returned reference is stable for the registry's lifetime
// (deque storage), so the hot path holds a pointer and never re-locks.
// Components whose counters live outside the registry (e.g. a
// MonitorEngine's private stats shard, merged only at quiesce points)
// register a *collector* instead: a callback invoked at TakeSnapshot()
// that writes its current values straight into the Snapshot.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "telemetry/snapshot.hpp"

namespace swmon::telemetry {

/// Monotone counter. Add() is wait-free (one relaxed fetch_add).
class Counter {
 public:
  void Add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed value (queue depths, live instances, ...).
class Gauge {
 public:
  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed histogram over u64 values (latencies in ns, costs, sizes).
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 65;  // bit_width ranges 0..64

  /// Bucket for `v`: 0 iff v == 0, else 1 + floor(log2(v)).
  static constexpr std::size_t BucketIndex(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Smallest value landing in bucket i.
  static constexpr std::uint64_t BucketLowerBound(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  /// Largest value landing in bucket i (inclusive).
  static constexpr std::uint64_t BucketUpperBound(std::size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  void Record(std::uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Materializes the current contents (trailing empty buckets trimmed).
  HistogramData Data() const;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. The reference stays valid for the registry's
  /// lifetime; asking for an existing name with a different instrument
  /// type is a programming error (asserted).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// A collector publishes externally-held counters into each snapshot
  /// (e.g. MonitorSet quiesces its workers, then writes merged shard
  /// totals). Returns a token for RemoveCollector; owners must deregister
  /// before they are destroyed. Collectors must not call back into this
  /// registry (the registry lock is held while they run).
  using Collector = std::function<void(Snapshot&)>;
  std::uint64_t AddCollector(Collector fn);
  void RemoveCollector(std::uint64_t token);

  /// Point-in-time view: every registered instrument plus every
  /// collector's contribution.
  Snapshot TakeSnapshot() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  mutable std::mutex mu_;
  // Instrument storage: deque => stable references across growth.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  struct Entry {
    Kind kind;
    std::size_t index;  // into the matching deque
  };
  std::map<std::string, Entry, std::less<>> by_name_;
  std::map<std::uint64_t, Collector> collectors_;
  std::uint64_t next_collector_token_ = 1;
};

}  // namespace swmon::telemetry
