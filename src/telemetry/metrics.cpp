#include "telemetry/metrics.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace swmon::telemetry {

bool Enabled() {
  static const bool enabled = [] {
    if (!kCompiledIn) return false;
    const char* env = std::getenv("SWMON_TELEMETRY");
    if (env == nullptr) return true;
    return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

HistogramData Histogram::Data() const {
  HistogramData out;
  out.count = count();
  out.sum = sum();
  out.buckets.reserve(kNumBuckets);
  for (const auto& b : buckets_)
    out.buckets.push_back(b.load(std::memory_order_relaxed));
  out.TrimTrailingZeros();
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    SWMON_ASSERT_MSG(it->second.kind == Kind::kCounter,
                     "metric re-registered with a different type");
    return counters_[it->second.index];
  }
  counters_.emplace_back();
  by_name_.emplace(std::string(name),
                   Entry{Kind::kCounter, counters_.size() - 1});
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    SWMON_ASSERT_MSG(it->second.kind == Kind::kGauge,
                     "metric re-registered with a different type");
    return gauges_[it->second.index];
  }
  gauges_.emplace_back();
  by_name_.emplace(std::string(name), Entry{Kind::kGauge, gauges_.size() - 1});
  return gauges_.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    SWMON_ASSERT_MSG(it->second.kind == Kind::kHistogram,
                     "metric re-registered with a different type");
    return histograms_[it->second.index];
  }
  histograms_.emplace_back();
  by_name_.emplace(std::string(name),
                   Entry{Kind::kHistogram, histograms_.size() - 1});
  return histograms_.back();
}

std::uint64_t MetricsRegistry::AddCollector(Collector fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t token = next_collector_token_++;
  collectors_.emplace(token, std::move(fn));
  return token;
}

void MetricsRegistry::RemoveCollector(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(token);
}

Snapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, entry] : by_name_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snap.SetCounter(name, counters_[entry.index].value());
        break;
      case Kind::kGauge:
        snap.SetGauge(name, gauges_[entry.index].value());
        break;
      case Kind::kHistogram:
        snap.SetHistogram(name, histograms_[entry.index].Data());
        break;
    }
  }
  for (const auto& [token, fn] : collectors_) fn(snap);
  return snap;
}

}  // namespace swmon::telemetry
