// Snapshot: the one point-in-time view of every metric in the system.
//
// A Snapshot is an immutable-by-convention map from hierarchical metric
// name ("monitor.engine.<prop>.events_dispatched",
// "dataplane.switch.<id>.table_lookups", ...) to a typed sample: counter
// (monotone u64), gauge (instantaneous i64), or log-bucketed histogram.
// Producers fill it via the Set*/Add* writers — either directly from their
// private shard counters (CollectInto methods) or through a
// MetricsRegistry collector — and consumers query it:
//
//   snap.counter("monitor.set.events_dispatched")   exact lookup (missing = 0)
//   snap.counter("monitor.engine.*.violations")     '*' wildcard, sums matches
//   snap.WithPrefix("dataplane.switch.1.")          ordered prefix iteration
//
// Exporters: ToJson() (round-trippable via FromJson — the exporter test
// parses it back) and ToPrometheusText() (text exposition format: names
// sanitized to [a-zA-Z0-9_:], histograms as cumulative _bucket{le=...} /
// _sum / _count series).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace swmon::telemetry {

/// Materialized histogram contents. Bucket i counts values v with
/// Histogram::BucketIndex(v) == i (i.e. bit_width(v) == i); trailing empty
/// buckets are trimmed so equality is well-defined across sources.
struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> buckets;

  void TrimTrailingZeros() {
    while (!buckets.empty() && buckets.back() == 0) buckets.pop_back();
  }

  bool operator==(const HistogramData&) const = default;
};

struct Sample {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  HistogramData histogram;

  bool operator==(const Sample&) const = default;
};

class Snapshot {
 public:
  // --- writers (collection side) ---
  void SetCounter(std::string name, std::uint64_t value);
  /// Accumulates into an existing counter (creating it at 0): how per-worker
  /// shards merge into one logical counter at quiesce points.
  void AddCounter(std::string name, std::uint64_t value);
  void SetGauge(std::string name, std::int64_t value);
  void SetHistogram(std::string name, HistogramData h);
  /// Bucket-wise merge (creating an empty histogram first if needed).
  void MergeHistogram(std::string name, const HistogramData& h);

  // --- queries ---
  /// Exact counter lookup; a single '*' in `query` makes it a pattern
  /// (prefix before the star, suffix after it) and sums every matching
  /// counter. Missing names (or non-counter samples) contribute 0.
  std::uint64_t counter(std::string_view query) const;
  /// Exact gauge lookup; missing or non-gauge = 0.
  std::int64_t gauge(std::string_view name) const;
  /// Exact histogram lookup; nullptr when missing or not a histogram.
  const HistogramData* histogram(std::string_view name) const;
  bool Has(std::string_view name) const;
  std::size_t size() const { return samples_.size(); }

  /// All samples whose name starts with `prefix`, in name order.
  std::vector<std::pair<std::string_view, const Sample*>> WithPrefix(
      std::string_view prefix) const;
  const std::map<std::string, Sample, std::less<>>& samples() const {
    return samples_;
  }

  // --- exporters ---
  std::string ToJson() const;
  std::string ToPrometheusText() const;
  /// Parses ToJson() output back into a Snapshot (round-trip identity);
  /// nullopt on malformed input. Only the shape ToJson emits is accepted.
  static std::optional<Snapshot> FromJson(std::string_view json);

  bool operator==(const Snapshot&) const = default;

 private:
  std::map<std::string, Sample, std::less<>> samples_;
};

}  // namespace swmon::telemetry
