// swmon::telemetry — compile-time and runtime switches for the metrics layer.
//
// The telemetry subsystem (metrics.hpp, snapshot.hpp) is the single source
// every bench/test reads counters from. Two independent switches control it:
//
//   * SWMON_TELEMETRY (CMake option / preprocessor macro, default 1):
//     compiles the hot-path instrumentation in or out. With it off, the
//     instrumented dispatch path (MonitorSet::DeliverEvent<true>) is never
//     selected and histogram recording collapses to nothing — this is the
//     no-op baseline bench_telemetry_overhead compares against. The macro
//     must be set globally (one value for the whole build); per-TU variation
//     would violate the ODR on inline functions.
//
//   * SWMON_TELEMETRY environment variable ("off" or "0"): runtime opt-out
//     for demo binaries — with it set, examples skip registry attachment
//     and snapshot dumps. Enabled() caches the answer on first use.
#pragma once

#include <cstdint>

#ifndef SWMON_TELEMETRY
#define SWMON_TELEMETRY 1
#endif

namespace swmon::telemetry {

/// True when the build compiles hot-path instrumentation in (the default).
inline constexpr bool kCompiledIn = SWMON_TELEMETRY != 0;

/// Runtime switch: false when the SWMON_TELEMETRY environment variable is
/// "off" or "0" (and always false when !kCompiledIn). Cached on first call.
bool Enabled();

/// Monotonic wall-clock nanoseconds for latency histograms (steady_clock).
std::uint64_t NowNanos();

}  // namespace swmon::telemetry
