// Dynamic field access (paper Feature 1).
//
// Every value a monitor observation can match on — packet headers from L2 to
// L7 plus switch metadata (ingress port, egress action, packet identity) —
// is identified by a FieldId and represented as a 64-bit value. A FieldMap
// is a dense, presence-tracked map from FieldId to value: the parsed view of
// one event. Keeping the representation uniform lets match predicates,
// monitor bindings, and dataplane flow keys share one value type.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace swmon {

enum class FieldId : std::uint8_t {
  // Switch metadata. kPacketId implements Feature 5 (packet identity):
  // the dataplane stamps every arrival with a fresh id and propagates it to
  // the corresponding egress/drop events.
  kInPort = 0,
  kOutPort,
  kEgressAction,  // EgressActionValue below
  kPacketId,
  kSwitchId,
  // Out-of-band events (Feature 8, multiple match).
  kLinkId,
  kLinkUp,  // 1 = up, 0 = down
  /// Event kind as a matchable metadata field (DataplaneEventType value);
  /// set by table-compiled monitors so arrival/egress/link selection is an
  /// ordinary match term.
  kEventType,

  // L2.
  kEthSrc,
  kEthDst,
  kEthType,

  // ARP (L3-adjacent; the paper's ARP properties list "L3" parse depth).
  kArpOp,
  kArpSenderMac,
  kArpSenderIp,
  kArpTargetMac,
  kArpTargetIp,

  // L3.
  kIpSrc,
  kIpDst,
  kIpProto,
  kIpTtl,

  // L4.
  kL4SrcPort,
  kL4DstPort,
  kTcpFlags,
  kIcmpType,

  // L7: DHCP.
  kDhcpOp,
  kDhcpMsgType,
  kDhcpXid,
  kDhcpCiaddr,
  kDhcpYiaddr,
  kDhcpChaddr,
  kDhcpRequestedIp,
  kDhcpLeaseSecs,
  kDhcpServerId,

  // L7: FTP control.
  kFtpMsgKind,
  kFtpDataAddr,
  kFtpDataPort,

  kNumFields,
};

inline constexpr std::size_t kNumFieldIds =
    static_cast<std::size_t>(FieldId::kNumFields);
static_assert(kNumFieldIds <= 64, "FieldMap presence mask is 64 bits");

/// Values of FieldId::kEgressAction.
enum class EgressActionValue : std::uint64_t {
  kForward = 0,  // unicast out kOutPort
  kFlood = 1,    // broadcast to all ports but ingress
  kDrop = 2,
};

/// Parse depth a field requires (Table 1's "Fields" column), or the fact
/// that it is switch metadata rather than packet content.
enum class FieldLayer : std::uint8_t { kMeta, kL2, kL3, kL4, kL7 };

FieldLayer LayerOf(FieldId id);
const char* FieldName(FieldId id);
const char* LayerName(FieldLayer layer);

/// One event's worth of field values. Absent fields (e.g. L4 ports on an ARP
/// packet) are tracked via the presence mask; reading an absent field yields
/// nullopt rather than a default value, which matters for negative match.
class FieldMap {
 public:
  void Set(FieldId id, std::uint64_t value) {
    const auto i = static_cast<std::size_t>(id);
    values_[i] = value;
    present_ |= std::uint64_t{1} << i;
  }

  void Clear(FieldId id) {
    present_ &= ~(std::uint64_t{1} << static_cast<std::size_t>(id));
  }

  bool Has(FieldId id) const {
    return present_ >> static_cast<std::size_t>(id) & 1;
  }

  std::optional<std::uint64_t> Get(FieldId id) const {
    if (!Has(id)) return std::nullopt;
    return values_[static_cast<std::size_t>(id)];
  }

  /// Unchecked read; only valid when Has(id).
  std::uint64_t GetUnchecked(FieldId id) const {
    return values_[static_cast<std::size_t>(id)];
  }

  std::uint64_t presence_mask() const { return present_; }

  std::string ToString() const;

 private:
  // present_ leads: every read starts with the presence test, and with the
  // mask up front it shares a cache line with the event header (type/time)
  // and the first value slots instead of sitting a full FieldMap away.
  std::uint64_t present_ = 0;
  std::array<std::uint64_t, kNumFieldIds> values_{};
};

}  // namespace swmon
