#include "packet/builder.hpp"

#include "common/assert.hpp"
#include "packet/checksum.hpp"

namespace swmon {
namespace {

/// Encodes ip header + l4 segment, patching lengths and checksums.
Packet FinishIpv4(const EthernetHeader& eth, Ipv4Header ip,
                  std::span<const std::uint8_t> l4_segment) {
  ip.total_length =
      static_cast<std::uint16_t>(Ipv4Header::kMinSize + l4_segment.size());
  ip.checksum = 0;
  ByteWriter ip_w;
  ip.Encode(ip_w);
  const std::uint16_t csum = InternetChecksum(std::span(ip_w.bytes()));

  ByteWriter w;
  eth.Encode(w);
  const std::size_t ip_off = w.size();
  w.WriteBytes(std::span(ip_w.bytes()));
  w.PatchU16(ip_off + 10, csum);
  w.WriteBytes(l4_segment);
  return Packet(w.Take());
}

std::span<const std::uint8_t> AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace

Packet BuildArp(MacAddr eth_src, MacAddr eth_dst, ArpOp op, MacAddr sender_mac,
                Ipv4Addr sender_ip, MacAddr target_mac, Ipv4Addr target_ip) {
  EthernetHeader eth{eth_dst, eth_src,
                     static_cast<std::uint16_t>(EtherType::kArp)};
  ArpMessage arp;
  arp.op = static_cast<std::uint16_t>(op);
  arp.sender_mac = sender_mac;
  arp.sender_ip = sender_ip;
  arp.target_mac = target_mac;
  arp.target_ip = target_ip;
  ByteWriter w;
  eth.Encode(w);
  arp.Encode(w);
  return Packet(w.Take());
}

Packet BuildArpRequest(MacAddr sender_mac, Ipv4Addr sender_ip,
                       Ipv4Addr target_ip) {
  return BuildArp(sender_mac, MacAddr::Broadcast(), ArpOp::kRequest,
                  sender_mac, sender_ip, MacAddr::Zero(), target_ip);
}

Packet BuildArpReply(MacAddr sender_mac, Ipv4Addr sender_ip,
                     MacAddr target_mac, Ipv4Addr target_ip) {
  return BuildArp(sender_mac, target_mac, ArpOp::kReply, sender_mac, sender_ip,
                  target_mac, target_ip);
}

Packet BuildTcp(MacAddr eth_src, MacAddr eth_dst, Ipv4Addr ip_src,
                Ipv4Addr ip_dst, std::uint16_t src_port, std::uint16_t dst_port,
                std::uint8_t flags, std::span<const std::uint8_t> payload) {
  TcpHeader tcp;
  tcp.src_port = src_port;
  tcp.dst_port = dst_port;
  tcp.flags = flags;
  ByteWriter seg;
  tcp.Encode(seg);
  seg.WriteBytes(payload);
  seg.PatchU16(16, TransportChecksum(ip_src, ip_dst,
                                     static_cast<std::uint8_t>(IpProto::kTcp),
                                     std::span(seg.bytes())));

  EthernetHeader eth{eth_dst, eth_src,
                     static_cast<std::uint16_t>(EtherType::kIpv4)};
  Ipv4Header ip;
  ip.protocol = static_cast<std::uint8_t>(IpProto::kTcp);
  ip.src = ip_src;
  ip.dst = ip_dst;
  return FinishIpv4(eth, ip, std::span(seg.bytes()));
}

Packet BuildUdp(MacAddr eth_src, MacAddr eth_dst, Ipv4Addr ip_src,
                Ipv4Addr ip_dst, std::uint16_t src_port, std::uint16_t dst_port,
                std::span<const std::uint8_t> payload) {
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  ByteWriter seg;
  udp.Encode(seg);
  seg.WriteBytes(payload);
  seg.PatchU16(6, TransportChecksum(ip_src, ip_dst,
                                    static_cast<std::uint8_t>(IpProto::kUdp),
                                    std::span(seg.bytes())));

  EthernetHeader eth{eth_dst, eth_src,
                     static_cast<std::uint16_t>(EtherType::kIpv4)};
  Ipv4Header ip;
  ip.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  ip.src = ip_src;
  ip.dst = ip_dst;
  return FinishIpv4(eth, ip, std::span(seg.bytes()));
}

Packet BuildIcmpEcho(MacAddr eth_src, MacAddr eth_dst, Ipv4Addr ip_src,
                     Ipv4Addr ip_dst, bool is_request, std::uint16_t ident,
                     std::uint16_t seq) {
  IcmpHeader icmp;
  icmp.type = static_cast<std::uint8_t>(is_request ? IcmpType::kEchoRequest
                                                   : IcmpType::kEchoReply);
  icmp.identifier = ident;
  icmp.sequence = seq;
  ByteWriter seg;
  icmp.Encode(seg);
  seg.PatchU16(2, InternetChecksum(std::span(seg.bytes())));

  EthernetHeader eth{eth_dst, eth_src,
                     static_cast<std::uint16_t>(EtherType::kIpv4)};
  Ipv4Header ip;
  ip.protocol = static_cast<std::uint8_t>(IpProto::kIcmp);
  ip.src = ip_src;
  ip.dst = ip_dst;
  return FinishIpv4(eth, ip, std::span(seg.bytes()));
}

Packet BuildDhcp(MacAddr eth_src, MacAddr eth_dst, Ipv4Addr ip_src,
                 Ipv4Addr ip_dst, bool from_client, const DhcpMessage& msg) {
  ByteWriter payload;
  msg.Encode(payload);
  return BuildUdp(eth_src, eth_dst, ip_src, ip_dst,
                  from_client ? kDhcpClientPort : kDhcpServerPort,
                  from_client ? kDhcpServerPort : kDhcpClientPort,
                  std::span(payload.bytes()));
}

Packet BuildFtpControlLine(MacAddr eth_src, MacAddr eth_dst, Ipv4Addr ip_src,
                           Ipv4Addr ip_dst, std::uint16_t src_port,
                           std::uint16_t dst_port, std::string_view line) {
  return BuildTcp(eth_src, eth_dst, ip_src, ip_dst, src_port, dst_port,
                  kTcpPsh | kTcpAck, AsBytes(line));
}

bool SetPacketField(ParsedPacket& pkt, FieldId id, std::uint64_t value) {
  if (!pkt.valid) return false;
  switch (id) {
    case FieldId::kEthSrc:
      pkt.eth.src = MacAddr(value);
      break;
    case FieldId::kEthDst:
      pkt.eth.dst = MacAddr(value);
      break;
    case FieldId::kIpSrc:
      if (!pkt.ipv4) return false;
      pkt.ipv4->src = Ipv4Addr(static_cast<std::uint32_t>(value));
      break;
    case FieldId::kIpDst:
      if (!pkt.ipv4) return false;
      pkt.ipv4->dst = Ipv4Addr(static_cast<std::uint32_t>(value));
      break;
    case FieldId::kIpTtl:
      if (!pkt.ipv4) return false;
      pkt.ipv4->ttl = static_cast<std::uint8_t>(value);
      break;
    case FieldId::kL4SrcPort:
      if (pkt.tcp) pkt.tcp->src_port = static_cast<std::uint16_t>(value);
      else if (pkt.udp) pkt.udp->src_port = static_cast<std::uint16_t>(value);
      else return false;
      break;
    case FieldId::kL4DstPort:
      if (pkt.tcp) pkt.tcp->dst_port = static_cast<std::uint16_t>(value);
      else if (pkt.udp) pkt.udp->dst_port = static_cast<std::uint16_t>(value);
      else return false;
      break;
    default:
      return false;
  }
  pkt.fields.Set(id, value);
  return true;
}

std::vector<std::uint8_t> EncodeParsed(const ParsedPacket& pkt) {
  SWMON_ASSERT_MSG(pkt.valid, "cannot re-encode an invalid packet");
  if (pkt.arp) {
    ByteWriter w;
    pkt.eth.Encode(w);
    pkt.arp->Encode(w);
    return w.Take();
  }
  if (pkt.ipv4) {
    ByteWriter seg;
    if (pkt.tcp) {
      TcpHeader tcp = *pkt.tcp;
      tcp.checksum = 0;
      tcp.Encode(seg);
      seg.WriteBytes(pkt.l4_payload);
      seg.PatchU16(16, TransportChecksum(
                           pkt.ipv4->src, pkt.ipv4->dst,
                           static_cast<std::uint8_t>(IpProto::kTcp),
                           std::span(seg.bytes())));
    } else if (pkt.udp) {
      UdpHeader udp = *pkt.udp;
      udp.checksum = 0;
      udp.length =
          static_cast<std::uint16_t>(UdpHeader::kSize + pkt.l4_payload.size());
      udp.Encode(seg);
      seg.WriteBytes(pkt.l4_payload);
      seg.PatchU16(6, TransportChecksum(
                          pkt.ipv4->src, pkt.ipv4->dst,
                          static_cast<std::uint8_t>(IpProto::kUdp),
                          std::span(seg.bytes())));
    } else if (pkt.icmp) {
      IcmpHeader icmp = *pkt.icmp;
      icmp.checksum = 0;
      icmp.Encode(seg);
      seg.PatchU16(2, InternetChecksum(std::span(seg.bytes())));
    }
    return FinishIpv4(pkt.eth, *pkt.ipv4, std::span(seg.bytes())).data;
  }
  ByteWriter w;
  pkt.eth.Encode(w);
  return w.Take();
}

}  // namespace swmon
