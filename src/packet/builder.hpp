// Packet construction and re-encoding.
//
// Builders produce complete, checksummed wire-format packets for the traffic
// generators and apps. SetPacketField/EncodeParsed support the dataplane's
// set-field action (e.g. NAT rewriting): mutate the parsed view, then
// re-encode it to fresh bytes with lengths and checksums recomputed.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "packet/parser.hpp"

namespace swmon {

Packet BuildArp(MacAddr eth_src, MacAddr eth_dst, ArpOp op, MacAddr sender_mac,
                Ipv4Addr sender_ip, MacAddr target_mac, Ipv4Addr target_ip);

/// Broadcast who-has request.
Packet BuildArpRequest(MacAddr sender_mac, Ipv4Addr sender_ip,
                       Ipv4Addr target_ip);

/// Unicast is-at reply.
Packet BuildArpReply(MacAddr sender_mac, Ipv4Addr sender_ip,
                     MacAddr target_mac, Ipv4Addr target_ip);

Packet BuildTcp(MacAddr eth_src, MacAddr eth_dst, Ipv4Addr ip_src,
                Ipv4Addr ip_dst, std::uint16_t src_port, std::uint16_t dst_port,
                std::uint8_t flags,
                std::span<const std::uint8_t> payload = {});

Packet BuildUdp(MacAddr eth_src, MacAddr eth_dst, Ipv4Addr ip_src,
                Ipv4Addr ip_dst, std::uint16_t src_port, std::uint16_t dst_port,
                std::span<const std::uint8_t> payload = {});

Packet BuildIcmpEcho(MacAddr eth_src, MacAddr eth_dst, Ipv4Addr ip_src,
                     Ipv4Addr ip_dst, bool is_request, std::uint16_t ident,
                     std::uint16_t seq);

/// DHCP message inside Ethernet/IPv4/UDP. Client messages broadcast to
/// 255.255.255.255; server messages unicast to the client.
Packet BuildDhcp(MacAddr eth_src, MacAddr eth_dst, Ipv4Addr ip_src,
                 Ipv4Addr ip_dst, bool from_client, const DhcpMessage& msg);

/// One FTP control-channel line (e.g. a PORT command) as a TCP PSH segment.
Packet BuildFtpControlLine(MacAddr eth_src, MacAddr eth_dst, Ipv4Addr ip_src,
                           Ipv4Addr ip_dst, std::uint16_t src_port,
                           std::uint16_t dst_port, std::string_view line);

/// Overwrites one mutable header field in the parsed view, keeping struct
/// and FieldMap consistent. Returns false for fields that are absent from
/// this packet or not rewritable (e.g. kPacketId).
bool SetPacketField(ParsedPacket& pkt, FieldId id, std::uint64_t value);

/// Re-encodes a parsed packet to wire bytes, recomputing lengths and
/// checksums. The parsed view must be valid.
std::vector<std::uint8_t> EncodeParsed(const ParsedPacket& pkt);

}  // namespace swmon
