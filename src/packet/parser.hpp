// Packet parsing to a layered view and a dynamic FieldMap.
//
// The parser is depth-configurable (ParseDepth) because Table 1's "Fields"
// column distinguishes properties by the parse depth they need, and Table 2
// distinguishes approaches by fixed (up to L4 on well-known headers) versus
// dynamic (programmable, incl. L7) field access. A backend with fixed
// parsing simply parses with ParseDepth::kL4 and cannot see DHCP/FTP fields.
#pragma once

#include <optional>
#include <span>

#include "packet/dhcp.hpp"
#include "packet/field.hpp"
#include "packet/ftp.hpp"
#include "packet/headers.hpp"
#include "packet/packet.hpp"

namespace swmon {

enum class ParseDepth : std::uint8_t { kL2 = 2, kL3 = 3, kL4 = 4, kL7 = 7 };

/// Decoded layers of one packet. Layers beyond the requested depth, absent
/// layers, and undecodable payloads are nullopt. `valid` is false only when
/// even the Ethernet header is truncated.
struct ParsedPacket {
  bool valid = false;

  EthernetHeader eth;
  std::optional<ArpMessage> arp;
  std::optional<Ipv4Header> ipv4;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<IcmpHeader> icmp;
  std::optional<DhcpMessage> dhcp;
  std::optional<FtpControlMessage> ftp;

  /// L4 payload bytes (TCP/UDP payload), within the original buffer.
  std::span<const std::uint8_t> l4_payload;

  /// All parsed fields, ready for match predicates.
  FieldMap fields;
};

/// Parses `bytes` down to `depth`. Never throws; malformed inner layers are
/// dropped from the view while outer layers remain usable.
ParsedPacket ParsePacket(std::span<const std::uint8_t> bytes, ParseDepth depth);

inline ParsedPacket ParsePacket(const Packet& pkt, ParseDepth depth) {
  return ParsePacket(std::span(pkt.data), depth);
}

}  // namespace swmon
