#include "packet/dhcp.hpp"

namespace swmon {
namespace {

constexpr std::uint32_t kMagicCookie = 0x63825363;

constexpr std::uint8_t kOptPad = 0;
constexpr std::uint8_t kOptRequestedIp = 50;
constexpr std::uint8_t kOptLeaseTime = 51;
constexpr std::uint8_t kOptMsgType = 53;
constexpr std::uint8_t kOptServerId = 54;
constexpr std::uint8_t kOptEnd = 255;

}  // namespace

void DhcpMessage::Encode(ByteWriter& w) const {
  w.WriteU8(op);
  w.WriteU8(1);   // htype: Ethernet
  w.WriteU8(6);   // hlen
  w.WriteU8(0);   // hops
  w.WriteU32(xid);
  w.WriteU16(0);  // secs
  w.WriteU16(0);  // flags
  w.WriteU32(ciaddr.bits());
  w.WriteU32(yiaddr.bits());
  w.WriteU32(0);  // siaddr
  w.WriteU32(0);  // giaddr
  const auto mac = chaddr.Bytes();
  w.WriteBytes(std::span(mac.data(), mac.size()));
  w.Fill(0, 10);   // chaddr padding
  w.Fill(0, 64);   // sname
  w.Fill(0, 128);  // file
  w.WriteU32(kMagicCookie);

  w.WriteU8(kOptMsgType);
  w.WriteU8(1);
  w.WriteU8(static_cast<std::uint8_t>(msg_type));
  if (requested_ip) {
    w.WriteU8(kOptRequestedIp);
    w.WriteU8(4);
    w.WriteU32(requested_ip->bits());
  }
  if (lease_secs) {
    w.WriteU8(kOptLeaseTime);
    w.WriteU8(4);
    w.WriteU32(*lease_secs);
  }
  if (server_id) {
    w.WriteU8(kOptServerId);
    w.WriteU8(4);
    w.WriteU32(server_id->bits());
  }
  w.WriteU8(kOptEnd);
}

bool DhcpMessage::Decode(ByteReader& r) {
  op = r.ReadU8();
  r.Skip(3);  // htype, hlen, hops
  xid = r.ReadU32();
  r.Skip(4);  // secs, flags
  ciaddr = Ipv4Addr(r.ReadU32());
  yiaddr = Ipv4Addr(r.ReadU32());
  r.Skip(8);  // siaddr, giaddr
  std::uint8_t mac[6];
  r.ReadBytes(mac, 6);
  chaddr = MacAddr::FromBytes(mac);
  r.Skip(10 + 64 + 128);  // chaddr pad, sname, file
  if (!r.ok() || r.ReadU32() != kMagicCookie) return false;

  bool saw_msg_type = false;
  while (r.ok() && r.remaining() > 0) {
    const std::uint8_t code = r.ReadU8();
    if (code == kOptEnd) break;
    if (code == kOptPad) continue;
    const std::uint8_t len = r.ReadU8();
    switch (code) {
      case kOptMsgType:
        if (len != 1) return false;
        msg_type = static_cast<DhcpMsgType>(r.ReadU8());
        saw_msg_type = true;
        break;
      case kOptRequestedIp:
        if (len != 4) return false;
        requested_ip = Ipv4Addr(r.ReadU32());
        break;
      case kOptLeaseTime:
        if (len != 4) return false;
        lease_secs = r.ReadU32();
        break;
      case kOptServerId:
        if (len != 4) return false;
        server_id = Ipv4Addr(r.ReadU32());
        break;
      default:
        r.Skip(len);
        break;
    }
  }
  return r.ok() && saw_msg_type;
}

}  // namespace swmon
