#include "packet/headers.hpp"

namespace swmon {

void EthernetHeader::Encode(ByteWriter& w) const {
  const auto d = dst.Bytes();
  const auto s = src.Bytes();
  w.WriteBytes(std::span(d.data(), d.size()));
  w.WriteBytes(std::span(s.data(), s.size()));
  w.WriteU16(ether_type);
}

bool EthernetHeader::Decode(ByteReader& r) {
  std::uint8_t buf[6];
  r.ReadBytes(buf, 6);
  dst = MacAddr::FromBytes(buf);
  r.ReadBytes(buf, 6);
  src = MacAddr::FromBytes(buf);
  ether_type = r.ReadU16();
  return r.ok();
}

void ArpMessage::Encode(ByteWriter& w) const {
  w.WriteU16(hardware_type);
  w.WriteU16(protocol_type);
  w.WriteU8(hardware_len);
  w.WriteU8(protocol_len);
  w.WriteU16(op);
  auto sm = sender_mac.Bytes();
  w.WriteBytes(std::span(sm.data(), sm.size()));
  w.WriteU32(sender_ip.bits());
  auto tm = target_mac.Bytes();
  w.WriteBytes(std::span(tm.data(), tm.size()));
  w.WriteU32(target_ip.bits());
}

bool ArpMessage::Decode(ByteReader& r) {
  hardware_type = r.ReadU16();
  protocol_type = r.ReadU16();
  hardware_len = r.ReadU8();
  protocol_len = r.ReadU8();
  op = r.ReadU16();
  std::uint8_t buf[6];
  r.ReadBytes(buf, 6);
  sender_mac = MacAddr::FromBytes(buf);
  sender_ip = Ipv4Addr(r.ReadU32());
  r.ReadBytes(buf, 6);
  target_mac = MacAddr::FromBytes(buf);
  target_ip = Ipv4Addr(r.ReadU32());
  return r.ok() && hardware_type == 1 && protocol_type == 0x0800 &&
         hardware_len == 6 && protocol_len == 4;
}

void Ipv4Header::Encode(ByteWriter& w) const {
  w.WriteU8(static_cast<std::uint8_t>(version << 4 | ihl));
  w.WriteU8(dscp_ecn);
  w.WriteU16(total_length);
  w.WriteU16(identification);
  w.WriteU16(flags_fragment);
  w.WriteU8(ttl);
  w.WriteU8(protocol);
  w.WriteU16(checksum);
  w.WriteU32(src.bits());
  w.WriteU32(dst.bits());
}

bool Ipv4Header::Decode(ByteReader& r) {
  const std::uint8_t vi = r.ReadU8();
  version = vi >> 4;
  ihl = vi & 0x0f;
  dscp_ecn = r.ReadU8();
  total_length = r.ReadU16();
  identification = r.ReadU16();
  flags_fragment = r.ReadU16();
  ttl = r.ReadU8();
  protocol = r.ReadU8();
  checksum = r.ReadU16();
  src = Ipv4Addr(r.ReadU32());
  dst = Ipv4Addr(r.ReadU32());
  if (!r.ok() || version != 4 || ihl < 5) return false;
  // Skip IPv4 options if present.
  r.Skip(static_cast<std::size_t>(ihl - 5) * 4);
  return r.ok();
}

void TcpHeader::Encode(ByteWriter& w) const {
  w.WriteU16(src_port);
  w.WriteU16(dst_port);
  w.WriteU32(seq);
  w.WriteU32(ack);
  w.WriteU8(static_cast<std::uint8_t>(data_offset << 4));
  w.WriteU8(flags);
  w.WriteU16(window);
  w.WriteU16(checksum);
  w.WriteU16(urgent);
}

bool TcpHeader::Decode(ByteReader& r) {
  src_port = r.ReadU16();
  dst_port = r.ReadU16();
  seq = r.ReadU32();
  ack = r.ReadU32();
  data_offset = r.ReadU8() >> 4;
  flags = r.ReadU8();
  window = r.ReadU16();
  checksum = r.ReadU16();
  urgent = r.ReadU16();
  if (!r.ok() || data_offset < 5) return false;
  r.Skip(static_cast<std::size_t>(data_offset - 5) * 4);  // options
  return r.ok();
}

void UdpHeader::Encode(ByteWriter& w) const {
  w.WriteU16(src_port);
  w.WriteU16(dst_port);
  w.WriteU16(length);
  w.WriteU16(checksum);
}

bool UdpHeader::Decode(ByteReader& r) {
  src_port = r.ReadU16();
  dst_port = r.ReadU16();
  length = r.ReadU16();
  checksum = r.ReadU16();
  return r.ok() && length >= kSize;
}

void IcmpHeader::Encode(ByteWriter& w) const {
  w.WriteU8(type);
  w.WriteU8(code);
  w.WriteU16(checksum);
  w.WriteU16(identifier);
  w.WriteU16(sequence);
}

bool IcmpHeader::Decode(ByteReader& r) {
  type = r.ReadU8();
  code = r.ReadU8();
  checksum = r.ReadU16();
  identifier = r.ReadU16();
  sequence = r.ReadU16();
  return r.ok();
}

}  // namespace swmon
