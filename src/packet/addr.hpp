// Link-layer and network-layer addresses.
//
// Both types are small value types with stable 64-bit encodings so they can
// be stored directly in monitor bindings and dataplane match fields (which
// are uniformly 64-bit, see packet/field.hpp).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace swmon {

/// 48-bit IEEE 802 MAC address.
class MacAddr {
 public:
  constexpr MacAddr() = default;
  explicit constexpr MacAddr(std::uint64_t bits) : bits_(bits & 0xffffffffffffULL) {}
  constexpr MacAddr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                    std::uint8_t d, std::uint8_t e, std::uint8_t f)
      : bits_((std::uint64_t{a} << 40) | (std::uint64_t{b} << 32) |
              (std::uint64_t{c} << 24) | (std::uint64_t{d} << 16) |
              (std::uint64_t{e} << 8) | std::uint64_t{f}) {}

  static constexpr MacAddr Broadcast() { return MacAddr(0xffffffffffffULL); }
  static constexpr MacAddr Zero() { return MacAddr(); }

  constexpr std::uint64_t bits() const { return bits_; }
  constexpr bool IsBroadcast() const { return bits_ == 0xffffffffffffULL; }
  constexpr bool IsMulticast() const { return (bits_ >> 40) & 1; }

  std::array<std::uint8_t, 6> Bytes() const;
  static MacAddr FromBytes(const std::uint8_t* p);

  std::string ToString() const;  // "aa:bb:cc:dd:ee:ff"

  constexpr auto operator<=>(const MacAddr&) const = default;

 private:
  std::uint64_t bits_ = 0;
};

/// IPv4 address.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  explicit constexpr Ipv4Addr(std::uint32_t bits) : bits_(bits) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  static constexpr Ipv4Addr Broadcast() { return Ipv4Addr(0xffffffffu); }
  static constexpr Ipv4Addr Zero() { return Ipv4Addr(); }

  constexpr std::uint32_t bits() const { return bits_; }
  constexpr bool IsBroadcast() const { return bits_ == 0xffffffffu; }

  /// True if this address lies inside `net`/`prefix_len`.
  constexpr bool InSubnet(Ipv4Addr net, int prefix_len) const {
    if (prefix_len <= 0) return true;
    const std::uint32_t mask =
        prefix_len >= 32 ? 0xffffffffu : ~((1u << (32 - prefix_len)) - 1);
    return (bits_ & mask) == (net.bits_ & mask);
  }

  std::string ToString() const;  // "a.b.c.d"

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t bits_ = 0;
};

}  // namespace swmon
