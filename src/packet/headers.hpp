// Wire-format protocol headers: Ethernet II, ARP, IPv4, TCP, UDP, ICMP.
//
// Each struct mirrors the on-wire header with host-order values; Encode
// appends the big-endian wire form to a ByteWriter and Decode parses from a
// ByteReader (returning false on truncation or malformed fields). Length and
// checksum fields are filled in by the builders in packet/builder.hpp.
#pragma once

#include <cstdint>

#include "common/byte_io.hpp"
#include "packet/addr.hpp"

namespace swmon {

// ---------------------------------------------------------------- Ethernet

enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kVlan = 0x8100,
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddr dst;
  MacAddr src;
  std::uint16_t ether_type = 0;

  void Encode(ByteWriter& w) const;
  bool Decode(ByteReader& r);
};

// --------------------------------------------------------------------- ARP

enum class ArpOp : std::uint16_t { kRequest = 1, kReply = 2 };

struct ArpMessage {
  static constexpr std::size_t kSize = 28;

  std::uint16_t hardware_type = 1;   // Ethernet
  std::uint16_t protocol_type = 0x0800;
  std::uint8_t hardware_len = 6;
  std::uint8_t protocol_len = 4;
  std::uint16_t op = 0;
  MacAddr sender_mac;
  Ipv4Addr sender_ip;
  MacAddr target_mac;
  Ipv4Addr target_ip;

  void Encode(ByteWriter& w) const;
  bool Decode(ByteReader& r);
};

// -------------------------------------------------------------------- IPv4

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;

  std::uint8_t version = 4;
  std::uint8_t ihl = 5;  // 32-bit words; no options supported
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;  // filled by builder
  std::uint16_t identification = 0;
  std::uint16_t flags_fragment = 0x4000;  // DF
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;  // filled by builder
  Ipv4Addr src;
  Ipv4Addr dst;

  void Encode(ByteWriter& w) const;
  bool Decode(ByteReader& r);
};

// --------------------------------------------------------------------- TCP

// TCP flag bits (low byte of the flags field).
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpPsh = 0x08;
inline constexpr std::uint8_t kTcpAck = 0x10;

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // 32-bit words
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;  // filled by builder
  std::uint16_t urgent = 0;

  void Encode(ByteWriter& w) const;
  bool Decode(ByteReader& r);
};

// --------------------------------------------------------------------- UDP

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;    // filled by builder
  std::uint16_t checksum = 0;  // filled by builder

  void Encode(ByteWriter& w) const;
  bool Decode(ByteReader& r);
};

// -------------------------------------------------------------------- ICMP

enum class IcmpType : std::uint8_t { kEchoReply = 0, kEchoRequest = 8 };

struct IcmpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;  // filled by builder
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;

  void Encode(ByteWriter& w) const;
  bool Decode(ByteReader& r);
};

}  // namespace swmon
