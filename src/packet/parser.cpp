#include "packet/parser.hpp"

#include <string_view>

namespace swmon {
namespace {

void FillEthFields(const EthernetHeader& eth, FieldMap& f) {
  f.Set(FieldId::kEthSrc, eth.src.bits());
  f.Set(FieldId::kEthDst, eth.dst.bits());
  f.Set(FieldId::kEthType, eth.ether_type);
}

void FillArpFields(const ArpMessage& arp, FieldMap& f) {
  f.Set(FieldId::kArpOp, arp.op);
  f.Set(FieldId::kArpSenderMac, arp.sender_mac.bits());
  f.Set(FieldId::kArpSenderIp, arp.sender_ip.bits());
  f.Set(FieldId::kArpTargetMac, arp.target_mac.bits());
  f.Set(FieldId::kArpTargetIp, arp.target_ip.bits());
}

void FillIpv4Fields(const Ipv4Header& ip, FieldMap& f) {
  f.Set(FieldId::kIpSrc, ip.src.bits());
  f.Set(FieldId::kIpDst, ip.dst.bits());
  f.Set(FieldId::kIpProto, ip.protocol);
  f.Set(FieldId::kIpTtl, ip.ttl);
}

void FillDhcpFields(const DhcpMessage& d, FieldMap& f) {
  f.Set(FieldId::kDhcpOp, d.op);
  f.Set(FieldId::kDhcpMsgType, static_cast<std::uint64_t>(d.msg_type));
  f.Set(FieldId::kDhcpXid, d.xid);
  f.Set(FieldId::kDhcpCiaddr, d.ciaddr.bits());
  f.Set(FieldId::kDhcpYiaddr, d.yiaddr.bits());
  f.Set(FieldId::kDhcpChaddr, d.chaddr.bits());
  if (d.requested_ip) f.Set(FieldId::kDhcpRequestedIp, d.requested_ip->bits());
  if (d.lease_secs) f.Set(FieldId::kDhcpLeaseSecs, *d.lease_secs);
  if (d.server_id) f.Set(FieldId::kDhcpServerId, d.server_id->bits());
}

void FillFtpFields(const FtpControlMessage& m, FieldMap& f) {
  f.Set(FieldId::kFtpMsgKind, static_cast<std::uint64_t>(m.kind));
  if (m.kind != FtpMsgKind::kOther) {
    f.Set(FieldId::kFtpDataAddr, m.data_addr.bits());
    f.Set(FieldId::kFtpDataPort, m.data_port);
  }
}

void ParseL7(ParsedPacket& out) {
  // DHCP: UDP with the well-known port pair in either direction.
  if (out.udp && !out.l4_payload.empty()) {
    const bool dhcp_ports =
        (out.udp->src_port == kDhcpClientPort && out.udp->dst_port == kDhcpServerPort) ||
        (out.udp->src_port == kDhcpServerPort && out.udp->dst_port == kDhcpClientPort);
    if (dhcp_ports) {
      ByteReader r(out.l4_payload);
      DhcpMessage msg;
      if (msg.Decode(r)) {
        out.dhcp = msg;
        FillDhcpFields(msg, out.fields);
      }
      return;
    }
  }
  // FTP control: TCP to/from port 21 carrying an ASCII line.
  if (out.tcp && !out.l4_payload.empty() &&
      (out.tcp->src_port == kFtpControlPort ||
       out.tcp->dst_port == kFtpControlPort)) {
    const std::string_view line(
        reinterpret_cast<const char*>(out.l4_payload.data()),
        out.l4_payload.size());
    if (auto msg = ParseFtpControl(line)) {
      out.ftp = *msg;
      FillFtpFields(*msg, out.fields);
    }
  }
}

}  // namespace

ParsedPacket ParsePacket(std::span<const std::uint8_t> bytes, ParseDepth depth) {
  ParsedPacket out;
  ByteReader r(bytes);
  if (!out.eth.Decode(r)) return out;
  out.valid = true;
  FillEthFields(out.eth, out.fields);
  if (depth < ParseDepth::kL3) return out;

  if (out.eth.ether_type == static_cast<std::uint16_t>(EtherType::kArp)) {
    ArpMessage arp;
    if (arp.Decode(r)) {
      out.arp = arp;
      FillArpFields(arp, out.fields);
    }
    return out;
  }

  if (out.eth.ether_type != static_cast<std::uint16_t>(EtherType::kIpv4))
    return out;

  Ipv4Header ip;
  if (!ip.Decode(r)) return out;
  out.ipv4 = ip;
  FillIpv4Fields(ip, out.fields);
  if (depth < ParseDepth::kL4) return out;

  switch (static_cast<IpProto>(ip.protocol)) {
    case IpProto::kTcp: {
      TcpHeader tcp;
      if (!tcp.Decode(r)) return out;
      out.tcp = tcp;
      out.fields.Set(FieldId::kL4SrcPort, tcp.src_port);
      out.fields.Set(FieldId::kL4DstPort, tcp.dst_port);
      out.fields.Set(FieldId::kTcpFlags, tcp.flags);
      out.l4_payload = r.ReadSpan(r.remaining());
      break;
    }
    case IpProto::kUdp: {
      UdpHeader udp;
      if (!udp.Decode(r)) return out;
      out.udp = udp;
      out.fields.Set(FieldId::kL4SrcPort, udp.src_port);
      out.fields.Set(FieldId::kL4DstPort, udp.dst_port);
      out.l4_payload = r.ReadSpan(r.remaining());
      break;
    }
    case IpProto::kIcmp: {
      IcmpHeader icmp;
      if (!icmp.Decode(r)) return out;
      out.icmp = icmp;
      out.fields.Set(FieldId::kIcmpType, icmp.type);
      break;
    }
    default:
      break;
  }
  if (depth < ParseDepth::kL7) return out;
  ParseL7(out);
  return out;
}

}  // namespace swmon
