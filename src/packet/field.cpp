#include "packet/field.hpp"

#include <cstdio>

namespace swmon {

FieldLayer LayerOf(FieldId id) {
  switch (id) {
    case FieldId::kInPort:
    case FieldId::kOutPort:
    case FieldId::kEgressAction:
    case FieldId::kPacketId:
    case FieldId::kSwitchId:
    case FieldId::kLinkId:
    case FieldId::kLinkUp:
    case FieldId::kEventType:
      return FieldLayer::kMeta;
    case FieldId::kEthSrc:
    case FieldId::kEthDst:
    case FieldId::kEthType:
      return FieldLayer::kL2;
    case FieldId::kArpOp:
    case FieldId::kArpSenderMac:
    case FieldId::kArpSenderIp:
    case FieldId::kArpTargetMac:
    case FieldId::kArpTargetIp:
    case FieldId::kIpSrc:
    case FieldId::kIpDst:
    case FieldId::kIpProto:
    case FieldId::kIpTtl:
      return FieldLayer::kL3;
    case FieldId::kL4SrcPort:
    case FieldId::kL4DstPort:
    case FieldId::kTcpFlags:
    case FieldId::kIcmpType:
      return FieldLayer::kL4;
    case FieldId::kDhcpOp:
    case FieldId::kDhcpMsgType:
    case FieldId::kDhcpXid:
    case FieldId::kDhcpCiaddr:
    case FieldId::kDhcpYiaddr:
    case FieldId::kDhcpChaddr:
    case FieldId::kDhcpRequestedIp:
    case FieldId::kDhcpLeaseSecs:
    case FieldId::kDhcpServerId:
    case FieldId::kFtpMsgKind:
    case FieldId::kFtpDataAddr:
    case FieldId::kFtpDataPort:
      return FieldLayer::kL7;
    case FieldId::kNumFields:
      break;
  }
  return FieldLayer::kMeta;
}

const char* FieldName(FieldId id) {
  switch (id) {
    case FieldId::kInPort: return "in_port";
    case FieldId::kOutPort: return "out_port";
    case FieldId::kEgressAction: return "egress_action";
    case FieldId::kPacketId: return "packet_id";
    case FieldId::kSwitchId: return "switch_id";
    case FieldId::kLinkId: return "link_id";
    case FieldId::kLinkUp: return "link_up";
    case FieldId::kEventType: return "event_type";
    case FieldId::kEthSrc: return "eth_src";
    case FieldId::kEthDst: return "eth_dst";
    case FieldId::kEthType: return "eth_type";
    case FieldId::kArpOp: return "arp_op";
    case FieldId::kArpSenderMac: return "arp_sha";
    case FieldId::kArpSenderIp: return "arp_spa";
    case FieldId::kArpTargetMac: return "arp_tha";
    case FieldId::kArpTargetIp: return "arp_tpa";
    case FieldId::kIpSrc: return "ip_src";
    case FieldId::kIpDst: return "ip_dst";
    case FieldId::kIpProto: return "ip_proto";
    case FieldId::kIpTtl: return "ip_ttl";
    case FieldId::kL4SrcPort: return "l4_src";
    case FieldId::kL4DstPort: return "l4_dst";
    case FieldId::kTcpFlags: return "tcp_flags";
    case FieldId::kIcmpType: return "icmp_type";
    case FieldId::kDhcpOp: return "dhcp_op";
    case FieldId::kDhcpMsgType: return "dhcp_msg_type";
    case FieldId::kDhcpXid: return "dhcp_xid";
    case FieldId::kDhcpCiaddr: return "dhcp_ciaddr";
    case FieldId::kDhcpYiaddr: return "dhcp_yiaddr";
    case FieldId::kDhcpChaddr: return "dhcp_chaddr";
    case FieldId::kDhcpRequestedIp: return "dhcp_req_ip";
    case FieldId::kDhcpLeaseSecs: return "dhcp_lease_secs";
    case FieldId::kDhcpServerId: return "dhcp_server_id";
    case FieldId::kFtpMsgKind: return "ftp_msg_kind";
    case FieldId::kFtpDataAddr: return "ftp_data_addr";
    case FieldId::kFtpDataPort: return "ftp_data_port";
    case FieldId::kNumFields: break;
  }
  return "?";
}

const char* LayerName(FieldLayer layer) {
  switch (layer) {
    case FieldLayer::kMeta: return "meta";
    case FieldLayer::kL2: return "L2";
    case FieldLayer::kL3: return "L3";
    case FieldLayer::kL4: return "L4";
    case FieldLayer::kL7: return "L7";
  }
  return "?";
}

std::string FieldMap::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < kNumFieldIds; ++i) {
    const auto id = static_cast<FieldId>(i);
    if (!Has(id)) continue;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s%s=%llu", out.size() > 1 ? ", " : "",
                  FieldName(id),
                  static_cast<unsigned long long>(GetUnchecked(id)));
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace swmon
