// Internet checksum (RFC 1071) used by IPv4/TCP/UDP/ICMP encoders.
#pragma once

#include <cstdint>
#include <span>

#include "packet/addr.hpp"

namespace swmon {

/// Ones-complement sum folded to 16 bits over `data`.
std::uint16_t InternetChecksum(std::span<const std::uint8_t> data);

/// Checksum with the IPv4 pseudo-header prepended (for TCP/UDP).
std::uint16_t TransportChecksum(Ipv4Addr src, Ipv4Addr dst,
                                std::uint8_t protocol,
                                std::span<const std::uint8_t> segment);

}  // namespace swmon
