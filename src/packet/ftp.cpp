#include "packet/ftp.hpp"

#include <cctype>
#include <cstdio>
#include <string>

namespace swmon {
namespace {

/// Parses "h1,h2,h3,h4,p1,p2" starting at `s`. Returns false on malformed
/// input or out-of-range octets.
bool ParseHostPortTuple(std::string_view s, Ipv4Addr& addr,
                        std::uint16_t& port) {
  unsigned vals[6];
  std::size_t pos = 0;
  for (int i = 0; i < 6; ++i) {
    if (pos >= s.size() || !std::isdigit(static_cast<unsigned char>(s[pos])))
      return false;
    unsigned v = 0;
    while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
      v = v * 10 + static_cast<unsigned>(s[pos] - '0');
      if (v > 255) return false;
      ++pos;
    }
    vals[i] = v;
    if (i < 5) {
      if (pos >= s.size() || s[pos] != ',') return false;
      ++pos;
    }
  }
  addr = Ipv4Addr(static_cast<std::uint8_t>(vals[0]),
                  static_cast<std::uint8_t>(vals[1]),
                  static_cast<std::uint8_t>(vals[2]),
                  static_cast<std::uint8_t>(vals[3]));
  port = static_cast<std::uint16_t>(vals[4] << 8 | vals[5]);
  return true;
}

std::string_view StripCrLf(std::string_view line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n'))
    line.remove_suffix(1);
  return line;
}

}  // namespace

std::optional<FtpControlMessage> ParseFtpControl(std::string_view line) {
  line = StripCrLf(line);
  if (line.empty()) return std::nullopt;

  FtpControlMessage msg;
  if (line.starts_with("PORT ")) {
    if (ParseHostPortTuple(line.substr(5), msg.data_addr, msg.data_port))
      msg.kind = FtpMsgKind::kPortCommand;
    return msg;
  }
  if (line.starts_with("227")) {
    const auto open = line.find('(');
    const auto close = line.rfind(')');
    if (open != std::string_view::npos && close != std::string_view::npos &&
        close > open &&
        ParseHostPortTuple(line.substr(open + 1, close - open - 1),
                           msg.data_addr, msg.data_port)) {
      msg.kind = FtpMsgKind::kPasvReply;
    }
    return msg;
  }
  return msg;  // kOther
}

std::string FormatFtpPort(Ipv4Addr addr, std::uint16_t port) {
  const std::uint32_t a = addr.bits();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "PORT %u,%u,%u,%u,%u,%u\r\n", a >> 24 & 0xff,
                a >> 16 & 0xff, a >> 8 & 0xff, a & 0xff, port >> 8,
                port & 0xff);
  return buf;
}

std::string FormatFtpPasvReply(Ipv4Addr addr, std::uint16_t port) {
  const std::uint32_t a = addr.bits();
  char buf[80];
  std::snprintf(buf, sizeof(buf),
                "227 Entering Passive Mode (%u,%u,%u,%u,%u,%u)\r\n",
                a >> 24 & 0xff, a >> 16 & 0xff, a >> 8 & 0xff, a & 0xff,
                port >> 8, port & 0xff);
  return buf;
}

}  // namespace swmon
