#include "packet/addr.hpp"

#include <cstdio>

namespace swmon {

std::array<std::uint8_t, 6> MacAddr::Bytes() const {
  std::array<std::uint8_t, 6> out;
  for (int i = 0; i < 6; ++i)
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bits_ >> (8 * (5 - i)));
  return out;
}

MacAddr MacAddr::FromBytes(const std::uint8_t* p) {
  std::uint64_t bits = 0;
  for (int i = 0; i < 6; ++i) bits = bits << 8 | p[i];
  return MacAddr(bits);
}

std::string MacAddr::ToString() const {
  const auto b = Bytes();
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", b[0], b[1],
                b[2], b[3], b[4], b[5]);
  return buf;
}

std::string Ipv4Addr::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", bits_ >> 24 & 0xff,
                bits_ >> 16 & 0xff, bits_ >> 8 & 0xff, bits_ & 0xff);
  return buf;
}

}  // namespace swmon
