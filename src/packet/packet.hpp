// The Packet: owned wire bytes plus switch-assigned identity.
//
// The byte buffer is the authoritative representation; parsing produces a
// ParsedPacket view (parser.hpp) and modifications re-encode through the
// builder. PacketId implements the paper's Feature 5: the dataplane assigns
// a fresh id at arrival and the same id labels every egress (or drop) event
// the arrival causes, letting a monitor connect "the same packet" across
// observation stages.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace swmon {

/// Unique per-arrival identity assigned by the dataplane.
enum class PacketId : std::uint64_t {};

inline constexpr PacketId kInvalidPacketId = PacketId{0};

/// Switch port number. Port 0 is reserved (never a real port).
enum class PortId : std::uint32_t {};

inline constexpr PortId kInvalidPortId = PortId{0};

constexpr std::uint64_t ToU64(PacketId id) { return static_cast<std::uint64_t>(id); }
constexpr std::uint64_t ToU64(PortId id) { return static_cast<std::uint64_t>(id); }

struct Packet {
  Packet() = default;
  explicit Packet(std::vector<std::uint8_t> bytes) : data(std::move(bytes)) {}

  std::vector<std::uint8_t> data;
  PacketId id = kInvalidPacketId;

  std::size_t size() const { return data.size(); }
};

}  // namespace swmon
