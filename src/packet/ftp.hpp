// FTP control-channel parsing — the L7 substrate for Table 1's FTP property
// ("data L4 port matches L4 port given in control stream", from FAST).
//
// We parse the two messages that announce a data-channel endpoint:
//   client active mode:  "PORT h1,h2,h3,h4,p1,p2\r\n"
//   server passive mode: "227 Entering Passive Mode (h1,h2,h3,h4,p1,p2)\r\n"
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "packet/addr.hpp"

namespace swmon {

inline constexpr std::uint16_t kFtpControlPort = 21;

enum class FtpMsgKind : std::uint8_t {
  kOther = 0,
  kPortCommand = 1,   // client announces active-mode endpoint
  kPasvReply = 2,     // server announces passive-mode endpoint
};

struct FtpControlMessage {
  FtpMsgKind kind = FtpMsgKind::kOther;
  Ipv4Addr data_addr;         // valid for kPortCommand / kPasvReply
  std::uint16_t data_port = 0;  // valid for kPortCommand / kPasvReply
};

/// Parses one line of FTP control traffic. Returns nullopt for an empty or
/// non-ASCII payload; unrecognized commands yield kind == kOther.
std::optional<FtpControlMessage> ParseFtpControl(std::string_view line);

/// Renders a PORT command line for the given endpoint.
std::string FormatFtpPort(Ipv4Addr addr, std::uint16_t port);

/// Renders a 227 passive-mode reply line for the given endpoint.
std::string FormatFtpPasvReply(Ipv4Addr addr, std::uint16_t port);

}  // namespace swmon
