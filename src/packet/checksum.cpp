#include "packet/checksum.hpp"

namespace swmon {
namespace {

std::uint32_t SumWords(std::span<const std::uint8_t> data, std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    acc += static_cast<std::uint32_t>(data[i] << 8 | data[i + 1]);
  if (i < data.size()) acc += static_cast<std::uint32_t>(data[i] << 8);
  return acc;
}

std::uint16_t Fold(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc);
}

}  // namespace

std::uint16_t InternetChecksum(std::span<const std::uint8_t> data) {
  return Fold(SumWords(data, 0));
}

std::uint16_t TransportChecksum(Ipv4Addr src, Ipv4Addr dst,
                                std::uint8_t protocol,
                                std::span<const std::uint8_t> segment) {
  std::uint32_t acc = 0;
  acc += src.bits() >> 16;
  acc += src.bits() & 0xffff;
  acc += dst.bits() >> 16;
  acc += dst.bits() & 0xffff;
  acc += protocol;
  acc += static_cast<std::uint32_t>(segment.size());
  return Fold(SumWords(segment, acc));
}

}  // namespace swmon
