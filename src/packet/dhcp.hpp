// DHCP (RFC 2131) message encoding — the L7 substrate for the Table-1 DHCP
// properties ("reply to lease request within T seconds", "leased addresses
// never re-used", "no lease overlap", DHCP+ARP cache pre-loading).
//
// Only the fields and options those properties observe are modeled: message
// type, transaction id, offered/leased address, client hardware address,
// server identifier, requested address, and lease time.
#pragma once

#include <cstdint>
#include <optional>

#include "common/byte_io.hpp"
#include "packet/addr.hpp"

namespace swmon {

enum class DhcpMsgType : std::uint8_t {
  kDiscover = 1,
  kOffer = 2,
  kRequest = 3,
  kDecline = 4,
  kAck = 5,
  kNak = 6,
  kRelease = 7,
};

inline constexpr std::uint16_t kDhcpServerPort = 67;
inline constexpr std::uint16_t kDhcpClientPort = 68;

struct DhcpMessage {
  std::uint8_t op = 1;  // 1 = BOOTREQUEST, 2 = BOOTREPLY
  std::uint32_t xid = 0;
  Ipv4Addr ciaddr;  // client's current address (in RELEASE)
  Ipv4Addr yiaddr;  // "your" address (in OFFER/ACK)
  MacAddr chaddr;   // client hardware address

  DhcpMsgType msg_type = DhcpMsgType::kDiscover;  // option 53 (mandatory)
  std::optional<Ipv4Addr> requested_ip;           // option 50
  std::optional<std::uint32_t> lease_secs;        // option 51
  std::optional<Ipv4Addr> server_id;              // option 54

  void Encode(ByteWriter& w) const;
  /// Decodes a DHCP message from a UDP payload. Returns false when the fixed
  /// header is truncated, the magic cookie is wrong, or option 53 is absent.
  bool Decode(ByteReader& r);
};

}  // namespace swmon
