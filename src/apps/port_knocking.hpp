// Port-knocking gate (Table 1's two port-knocking properties, taken from
// Varanus).
//
// A client must send UDP datagrams to the three knock ports in order; any
// wrong guess resets its progress. After a complete clean sequence the
// client's TCP traffic to the protected port is admitted; otherwise it is
// dropped. Knock datagrams themselves are absorbed (dropped) either way.
//
// Faults:
//   kIgnoreInvalidation — a wrong guess does not reset progress, so a
//                         corrupted sequence still opens the gate
//                         ("intervening guesses invalidate sequence").
//   kNeverOpen          — completed sequences don't open the gate
//                         ("recognize valid sequence").
#pragma once

#include <array>
#include <unordered_map>
#include <unordered_set>

#include "dataplane/switch.hpp"

namespace swmon {

enum class PortKnockFault {
  kNone,
  kIgnoreInvalidation,
  kNeverOpen,
};

struct PortKnockConfig {
  /// Knock ports live in the 4-port region [7000, 7004); any UDP datagram
  /// to the region is a "guess" (matching the monitor's masked-match
  /// encoding of "a knock"), and 7003 is never a correct knock.
  static constexpr std::uint16_t kKnockRegionBase = 7000;
  static constexpr std::uint64_t kKnockRegionMask = ~std::uint64_t{3};

  std::array<std::uint16_t, 3> knock_ports = {7000, 7001, 7002};
  std::uint16_t protected_port = 22;
  PortId client_port = PortId{1};
  PortId server_port = PortId{2};
  PortKnockFault fault = PortKnockFault::kNone;

  static bool IsGuess(std::uint16_t port) {
    return (port & kKnockRegionMask) == kKnockRegionBase;
  }
};

class PortKnockGateApp : public SwitchProgram {
 public:
  explicit PortKnockGateApp(PortKnockConfig config) : config_(config) {}

  ForwardDecision OnPacket(SoftSwitch& sw, const ParsedPacket& pkt,
                           PortId in_port) override;
  const char* Name() const override { return "port-knock-gate"; }

  bool IsOpen(Ipv4Addr client) const { return open_.contains(client.bits()); }

 private:
  PortKnockConfig config_;
  std::unordered_map<std::uint32_t, std::size_t> progress_;  // src -> knocks
  std::unordered_set<std::uint32_t> open_;
};

}  // namespace swmon
