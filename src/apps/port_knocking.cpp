#include "apps/port_knocking.hpp"

namespace swmon {

ForwardDecision PortKnockGateApp::OnPacket(SoftSwitch& sw,
                                           const ParsedPacket& pkt,
                                           PortId in_port) {
  (void)sw;
  if (!pkt.ipv4) return ForwardDecision::Drop();
  const std::uint32_t src = pkt.ipv4->src.bits();

  // Guesses: UDP into the knock region, absorbed silently. UDP outside the
  // region is ordinary traffic and does not affect progress.
  if (in_port == config_.client_port && pkt.udp) {
    const std::uint16_t port = pkt.udp->dst_port;
    if (!PortKnockConfig::IsGuess(port))
      return ForwardDecision::Forward(config_.server_port);
    std::size_t& prog = progress_[src];
    if (prog < config_.knock_ports.size() &&
        port == config_.knock_ports[prog]) {
      ++prog;
      if (prog == config_.knock_ports.size() &&
          config_.fault != PortKnockFault::kNeverOpen) {
        open_.insert(src);
      }
    } else if (config_.fault != PortKnockFault::kIgnoreInvalidation) {
      prog = 0;  // wrong guess invalidates the whole attempt
    }
    return ForwardDecision::Drop();
  }

  if (in_port == config_.client_port && pkt.tcp &&
      pkt.tcp->dst_port == config_.protected_port) {
    return open_.contains(src)
               ? ForwardDecision::Forward(config_.server_port)
               : ForwardDecision::Drop();
  }

  // Everything else shuttles between the two ports.
  return ForwardDecision::Forward(in_port == config_.client_port
                                      ? config_.server_port
                                      : config_.client_port);
}

}  // namespace swmon
