#include "apps/flow_table_switch.hpp"

namespace swmon {

ForwardDecision FlowTableSwitchApp::OnPacket(SoftSwitch& sw,
                                             const ParsedPacket& pkt,
                                             PortId in_port) {
  const SimTime now = sw.queue().now();

  // Learn: upsert "eth_dst == <src> -> output <in_port>", exactly what the
  // OVS learn action does for a MAC-learning pipeline. The cookie carries
  // the output port (a real rule would carry it in its action list); the
  // idle timeout rides on the rule itself.
  const std::uint64_t src = pkt.eth.src.bits();
  const auto it = handle_of_mac_.find(src);
  const bool have_fresh_rule =
      it != handle_of_mac_.end() && it->second.cookie == ToU64(in_port) &&
      table_.Lookup(
          [&] {
            FieldMap probe;
            probe.Set(FieldId::kEthDst, src);
            return probe;
          }(),
          now) != nullptr;  // Lookup also refreshes the idle timer
  if (!have_fresh_rule) {
    if (it != handle_of_mac_.end()) {
      table_.Remove(it->second.handle);  // stale port or expired
      handle_of_mac_.erase(it);
    }
    FlowEntry entry;
    entry.priority = 10;
    entry.match.Add(FieldMatch::Exact(FieldId::kEthDst, src));
    entry.cookie = ToU64(in_port);
    entry.idle_timeout = config_.mac_idle_timeout;
    handle_of_mac_[src] = MacRule{table_.Add(entry, now), ToU64(in_port), src};
    ++rules_installed_;
  }

  if (pkt.eth.dst.IsBroadcast() || pkt.eth.dst.IsMulticast())
    return ForwardDecision::Flood();

  const FlowEntry* hit = table_.Lookup(pkt.fields, now);
  if (hit == nullptr) return ForwardDecision::Flood();
  const PortId out{static_cast<std::uint32_t>(hit->cookie)};
  if (out == in_port) return ForwardDecision::Drop();  // hairpin
  return ForwardDecision::Forward(out);
}

void FlowTableSwitchApp::OnLinkStatus(SoftSwitch& sw, PortId port, bool up) {
  (void)sw, (void)port;
  if (up) return;
  // Flush the learned table, as the Sec-2.4 property demands.
  for (const auto& [mac, rule] : handle_of_mac_) table_.Remove(rule.handle);
  handle_of_mac_.clear();
}

}  // namespace swmon
