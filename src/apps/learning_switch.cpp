#include "apps/learning_switch.hpp"

namespace swmon {

ForwardDecision LearningSwitchApp::OnPacket(SoftSwitch& sw,
                                            const ParsedPacket& pkt,
                                            PortId in_port) {
  if (fault_ != LearningSwitchFault::kNeverLearn)
    table_[pkt.eth.src.bits()] = in_port;

  if (pkt.eth.dst.IsBroadcast() || pkt.eth.dst.IsMulticast())
    return ForwardDecision::Flood();

  const auto it = table_.find(pkt.eth.dst.bits());
  if (it == table_.end()) return ForwardDecision::Flood();

  PortId out = it->second;
  if (fault_ == LearningSwitchFault::kWrongPort) {
    out = PortId{static_cast<std::uint32_t>(ToU64(out) % sw.num_ports()) + 1};
  }
  if (out == in_port) return ForwardDecision::Drop();  // hairpin suppression
  return ForwardDecision::Forward(out);
}

void LearningSwitchApp::OnLinkStatus(SoftSwitch& sw, PortId port, bool up) {
  (void)sw;
  (void)port;
  if (up || fault_ == LearningSwitchFault::kNoFlushOnLinkDown) return;
  // The Sec-2.4 property is "link-down messages delete the set of learned
  // destinations" — the whole table, since topology may have changed.
  table_.clear();
}

}  // namespace swmon
