// L2 learning switch (the paper's Sec 1 running example).
//
// Learns source MAC -> ingress port; unicasts to learned destinations,
// floods unknown ones; deletes learned entries behind a downed link.
//
// Injectable faults produce the violations the Sec-1/Sec-2.4 properties
// catch:
//   kNeverLearn        — floods even after a destination was learned
//                        ("once D is learned, packets to D are unicast").
//   kWrongPort         — unicasts to (learned port % n) + 1 instead.
//   kNoFlushOnLinkDown — keeps forwarding to destinations learned over a
//                        link that went down (the multiple-match property).
#pragma once

#include <unordered_map>

#include "dataplane/switch.hpp"

namespace swmon {

enum class LearningSwitchFault {
  kNone,
  kNeverLearn,
  kWrongPort,
  kNoFlushOnLinkDown,
};

class LearningSwitchApp : public SwitchProgram {
 public:
  explicit LearningSwitchApp(LearningSwitchFault fault = LearningSwitchFault::kNone)
      : fault_(fault) {}

  ForwardDecision OnPacket(SoftSwitch& sw, const ParsedPacket& pkt,
                           PortId in_port) override;
  void OnLinkStatus(SoftSwitch& sw, PortId port, bool up) override;
  const char* Name() const override { return "learning-switch"; }

  std::size_t table_size() const { return table_.size(); }

 private:
  LearningSwitchFault fault_;
  std::unordered_map<std::uint64_t, PortId> table_;  // mac bits -> port
};

}  // namespace swmon
