// ARP cache proxy (the paper's Sec 2.3 running example, plus the Table-1
// "DHCP + ARP Proxy" composition).
//
// The proxy learns IP->MAC mappings from ARP replies traversing the switch
// (and, when dhcp_snooping is on, pre-loads the cache from DHCP ACKs it
// forwards). Requests for known addresses are answered directly — the
// request is NOT forwarded and a proxy reply is emitted on the ingress port
// after `reply_delay`. Requests for unknown addresses are flooded.
//
// Faults:
//   kNeverReply    — floods every request, answering nothing (violates both
//                    "requests for known addresses are not forwarded" and
//                    the reply-deadline property).
//   kSlowReply     — answers after the property's deadline.
//   kReplyUnknown  — fabricates replies for addresses it never learned
//                    (violates "no direct reply if neither pre-loaded nor
//                    prior reply seen").
//   kNoSnoop       — ignores DHCP ACKs even when dhcp_snooping was asked
//                    for (violates "pre-load ARP cache with leases").
#pragma once

#include <unordered_map>

#include "dataplane/switch.hpp"

namespace swmon {

enum class ArpProxyFault {
  kNone,
  kNeverReply,
  kSlowReply,
  kReplyUnknown,
  kNoSnoop,
  /// Absorbs requests without answering or forwarding them (violates
  /// "requests for unknown addresses are forwarded").
  kBlackholeRequests,
};

struct ArpProxyConfig {
  Duration reply_delay = Duration::Millis(1);
  Duration slow_reply_delay = Duration::Seconds(5);
  bool dhcp_snooping = false;
  ArpProxyFault fault = ArpProxyFault::kNone;
};

class ArpProxyApp : public SwitchProgram {
 public:
  explicit ArpProxyApp(ArpProxyConfig config) : config_(config) {}

  ForwardDecision OnPacket(SoftSwitch& sw, const ParsedPacket& pkt,
                           PortId in_port) override;
  const char* Name() const override { return "arp-proxy"; }

  std::size_t cache_size() const { return cache_.size(); }
  bool Knows(Ipv4Addr ip) const { return cache_.contains(ip.bits()); }

 private:
  void ScheduleReply(SoftSwitch& sw, PortId out_port, const ArpMessage& req,
                     MacAddr answer);

  ArpProxyConfig config_;
  std::unordered_map<std::uint32_t, MacAddr> cache_;  // ip bits -> mac
  std::unordered_map<std::uint64_t, PortId> l2_table_;  // plain learning
};

}  // namespace swmon
