#include "apps/nat.hpp"

namespace swmon {

ForwardDecision NatApp::OnPacket(SoftSwitch& sw, const ParsedPacket& pkt,
                                 PortId in_port) {
  (void)sw;
  if (!pkt.ipv4 || (!pkt.tcp && !pkt.udp)) return ForwardDecision::Drop();
  const std::uint16_t l4_src = pkt.tcp ? pkt.tcp->src_port : pkt.udp->src_port;
  const std::uint16_t l4_dst = pkt.tcp ? pkt.tcp->dst_port : pkt.udp->dst_port;

  if (in_port == config_.internal_port) {
    const FlowKey key{{pkt.ipv4->src.bits(), l4_src}};
    auto it = forward_.find(key);
    if (it == forward_.end()) {
      const std::uint16_t translated =
          static_cast<std::uint16_t>(config_.first_nat_port + next_port_++);
      it = forward_.emplace(key, translated).first;
      reverse_[translated] = Mapping{pkt.ipv4->src.bits(), l4_src};
    }
    ParsedPacket rewritten = pkt;
    SetPacketField(rewritten, FieldId::kIpSrc, config_.public_ip.bits());
    SetPacketField(rewritten, FieldId::kL4SrcPort, it->second);
    ForwardDecision d = ForwardDecision::Forward(config_.external_port);
    d.rewritten = std::move(rewritten);
    return d;
  }

  // Inbound: must be addressed to the public IP on a translated port.
  if (pkt.ipv4->dst != config_.public_ip) return ForwardDecision::Drop();
  const auto it = reverse_.find(l4_dst);
  if (it == reverse_.end()) return ForwardDecision::Drop();
  if (config_.fault == NatFault::kForgetMapping) return ForwardDecision::Drop();

  Mapping m = it->second;
  if (config_.fault == NatFault::kWrongReversePort)
    m.internal_port = static_cast<std::uint16_t>(m.internal_port + 1);
  if (config_.fault == NatFault::kWrongReverseAddr)
    m.internal_ip += 1;

  ParsedPacket rewritten = pkt;
  SetPacketField(rewritten, FieldId::kIpDst, m.internal_ip);
  SetPacketField(rewritten, FieldId::kL4DstPort, m.internal_port);
  ForwardDecision d = ForwardDecision::Forward(config_.internal_port);
  d.rewritten = std::move(rewritten);
  return d;
}

}  // namespace swmon
