#include "apps/arp_proxy.hpp"

#include "packet/builder.hpp"

namespace swmon {

void ArpProxyApp::ScheduleReply(SoftSwitch& sw, PortId out_port,
                                const ArpMessage& req, MacAddr answer) {
  const Duration delay = config_.fault == ArpProxyFault::kSlowReply
                             ? config_.slow_reply_delay
                             : config_.reply_delay;
  // The reply is a *different* packet from the request (the paper's point
  // about Feature 5 not applying here), emitted by the switch itself.
  Packet reply = BuildArpReply(answer, req.target_ip, req.sender_mac,
                               req.sender_ip);
  sw.queue().ScheduleAfter(delay,
                           [&sw, out_port, reply = std::move(reply)]() mutable {
                             sw.EmitPacket(out_port, std::move(reply));
                           });
}

ForwardDecision ArpProxyApp::OnPacket(SoftSwitch& sw, const ParsedPacket& pkt,
                                      PortId in_port) {
  l2_table_[pkt.eth.src.bits()] = in_port;

  // DHCP snooping: pre-load cache from ACKs we forward (Table 1,
  // "DHCP + ARP Proxy").
  if (config_.dhcp_snooping && config_.fault != ArpProxyFault::kNoSnoop &&
      pkt.dhcp && pkt.dhcp->msg_type == DhcpMsgType::kAck &&
      pkt.dhcp->yiaddr != Ipv4Addr::Zero()) {
    cache_[pkt.dhcp->yiaddr.bits()] = pkt.dhcp->chaddr;
  }

  if (pkt.arp) {
    const ArpMessage& arp = *pkt.arp;
    if (arp.op == static_cast<std::uint16_t>(ArpOp::kReply)) {
      cache_[arp.sender_ip.bits()] = arp.sender_mac;
      // Forward the reply toward the requester.
      const auto it = l2_table_.find(arp.target_mac.bits());
      return it != l2_table_.end() && it->second != in_port
                 ? ForwardDecision::Forward(it->second)
                 : ForwardDecision::Flood();
    }
    if (arp.op == static_cast<std::uint16_t>(ArpOp::kRequest)) {
      if (config_.fault == ArpProxyFault::kBlackholeRequests)
        return ForwardDecision::Drop();
      const auto it = cache_.find(arp.target_ip.bits());
      if (it != cache_.end() && config_.fault != ArpProxyFault::kNeverReply) {
        ScheduleReply(sw, in_port, arp, it->second);
        return ForwardDecision::Drop();  // answered from cache, not forwarded
      }
      if (config_.fault == ArpProxyFault::kReplyUnknown && it == cache_.end()) {
        ScheduleReply(sw, in_port, arp, MacAddr(0x0badc0ffee00ULL));
        return ForwardDecision::Drop();
      }
      return ForwardDecision::Flood();  // unknown: ask the network
    }
    return ForwardDecision::Drop();
  }

  // Non-ARP traffic: plain learning-switch behaviour.
  if (pkt.eth.dst.IsBroadcast() || pkt.eth.dst.IsMulticast())
    return ForwardDecision::Flood();
  const auto it = l2_table_.find(pkt.eth.dst.bits());
  if (it == l2_table_.end()) return ForwardDecision::Flood();
  if (it->second == in_port) return ForwardDecision::Drop();
  return ForwardDecision::Forward(it->second);
}

}  // namespace swmon
