// A learning switch implemented ON the dataplane's match-action tables —
// the way a real OpenFlow learning switch works (OVS's classic `learn`
// action): a MAC table whose entries are flow rules with idle timeouts,
// installed as packets are seen.
//
// Exists alongside the plain LearningSwitchApp to exercise FlowTable as an
// actual forwarding substrate (priorities, idle expiry, rule churn), and
// is behaviourally equivalent to it when timeouts are disabled
// (tests/apps_test.cpp asserts this over random traffic).
#pragma once

#include <unordered_map>

#include "dataplane/flow_table.hpp"
#include "dataplane/switch.hpp"

namespace swmon {

struct FlowTableSwitchConfig {
  /// Idle timeout for learned MAC entries (zero = never expire).
  Duration mac_idle_timeout = Duration::Zero();
};

class FlowTableSwitchApp : public SwitchProgram {
 public:
  explicit FlowTableSwitchApp(FlowTableSwitchConfig config = {})
      : config_(config) {}

  ForwardDecision OnPacket(SoftSwitch& sw, const ParsedPacket& pkt,
                           PortId in_port) override;
  void OnLinkStatus(SoftSwitch& sw, PortId port, bool up) override;
  const char* Name() const override { return "flow-table-switch"; }

  const FlowTable& table() const { return table_; }
  std::uint64_t rules_installed() const { return rules_installed_; }

 private:
  struct MacRule {
    std::uint64_t handle;
    std::uint64_t cookie;  // output port
    std::uint64_t mac;
  };

  FlowTableSwitchConfig config_;
  FlowTable table_;
  std::unordered_map<std::uint64_t, MacRule> handle_of_mac_;
  std::uint64_t rules_installed_ = 0;
};

}  // namespace swmon
