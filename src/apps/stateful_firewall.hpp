// Stateful firewall (the paper's Sec 2.1 running example).
//
// Hosts on `internal_ports` may initiate; return traffic is admitted only
// while a matching outbound connection is live. Connections expire after
// `idle_timeout` (refreshed by outbound traffic) and die immediately when
// either side sends FIN or RST.
//
// Faults:
//   kDropEstablishedReturn — drops valid return traffic ("after seeing
//                            A->B, packets from B to A are not dropped").
//   kNoRefreshOnTraffic    — expires connections T after the FIRST outbound
//                            packet instead of the most recent one,
//                            violating Feature 3's refresh semantics.
//   kIgnoreClose           — keeps admitting return traffic after FIN/RST
//                            (caught by the converse property that closed
//                            connections admit nothing).
#pragma once

#include <set>
#include <unordered_map>

#include "dataplane/flow_key.hpp"
#include "dataplane/switch.hpp"

namespace swmon {

enum class FirewallFault {
  kNone,
  kDropEstablishedReturn,
  kNoRefreshOnTraffic,
  kIgnoreClose,
};

struct FirewallConfig {
  std::set<PortId> internal_ports;
  PortId external_port = PortId{0};
  Duration idle_timeout = Duration::Seconds(30);
  FirewallFault fault = FirewallFault::kNone;
};

class StatefulFirewallApp : public SwitchProgram {
 public:
  explicit StatefulFirewallApp(FirewallConfig config)
      : config_(std::move(config)) {}

  ForwardDecision OnPacket(SoftSwitch& sw, const ParsedPacket& pkt,
                           PortId in_port) override;
  const char* Name() const override { return "stateful-firewall"; }

  std::size_t connection_count() const { return connections_.size(); }

 private:
  struct Connection {
    SimTime last_refreshed;
    PortId internal_port;  // where return traffic goes
  };

  bool IsInternal(PortId p) const { return config_.internal_ports.contains(p); }
  static FlowKey Key(Ipv4Addr a, Ipv4Addr b) {
    return FlowKey{{a.bits(), b.bits()}};
  }

  FirewallConfig config_;
  // Keyed by (internal addr, external addr).
  std::unordered_map<FlowKey, Connection, FlowKeyHash> connections_;
};

}  // namespace swmon
