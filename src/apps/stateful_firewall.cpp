#include "apps/stateful_firewall.hpp"

namespace swmon {

ForwardDecision StatefulFirewallApp::OnPacket(SoftSwitch& sw,
                                              const ParsedPacket& pkt,
                                              PortId in_port) {
  if (!pkt.ipv4) return ForwardDecision::Drop();  // IPv4-only firewall
  const SimTime now = sw.queue().now();
  const bool closes = pkt.tcp && (pkt.tcp->flags & (kTcpFin | kTcpRst));

  if (IsInternal(in_port)) {
    const FlowKey key = Key(pkt.ipv4->src, pkt.ipv4->dst);
    if (closes && config_.fault != FirewallFault::kIgnoreClose) {
      connections_.erase(key);
    } else {
      auto [it, inserted] = connections_.try_emplace(
          key, Connection{now, in_port});
      if (!inserted && config_.fault != FirewallFault::kNoRefreshOnTraffic)
        it->second.last_refreshed = now;
      it->second.internal_port = in_port;
    }
    return ForwardDecision::Forward(config_.external_port);
  }

  // External arrival: admit only established return traffic.
  const FlowKey key = Key(pkt.ipv4->dst, pkt.ipv4->src);
  const auto it = connections_.find(key);
  if (it == connections_.end()) return ForwardDecision::Drop();
  if (now - it->second.last_refreshed >= config_.idle_timeout) {
    connections_.erase(it);
    return ForwardDecision::Drop();
  }
  if (closes && config_.fault != FirewallFault::kIgnoreClose) {
    const PortId out = it->second.internal_port;
    connections_.erase(it);
    return ForwardDecision::Forward(out);  // deliver the FIN/RST itself
  }
  if (config_.fault == FirewallFault::kDropEstablishedReturn)
    return ForwardDecision::Drop();
  return ForwardDecision::Forward(it->second.internal_port);
}

}  // namespace swmon
