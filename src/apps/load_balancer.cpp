#include "apps/load_balancer.hpp"

namespace swmon {

std::uint32_t LoadBalancerApp::PickPort(const ParsedPacket& pkt) {
  if (config_.mode == LbMode::kHash) {
    std::uint32_t port = static_cast<std::uint32_t>(
        HashFieldsToRange(pkt.fields, HashInputs(), config_.server_count,
                          config_.first_server_port));
    if (config_.fault == LoadBalancerFault::kWrongHashPort) {
      port = (port - config_.first_server_port + 1) % config_.server_count +
             config_.first_server_port;
    }
    return port;
  }
  std::uint64_t n = rr_counter_++;
  if (config_.fault == LoadBalancerFault::kWrongRoundRobin) n = n * 2 + 1;
  return static_cast<std::uint32_t>(n % config_.server_count) +
         config_.first_server_port;
}

ForwardDecision LoadBalancerApp::OnPacket(SoftSwitch& sw,
                                          const ParsedPacket& pkt,
                                          PortId in_port) {
  (void)sw;
  if (!pkt.ipv4 || !pkt.tcp) return ForwardDecision::Drop();

  if (in_port != config_.client_port) {
    // Server-side traffic returns to the client.
    return ForwardDecision::Forward(config_.client_port);
  }

  const FlowKey key{{pkt.ipv4->src.bits(), pkt.ipv4->dst.bits(),
                     static_cast<std::uint64_t>(pkt.tcp->src_port),
                     static_cast<std::uint64_t>(pkt.tcp->dst_port)}};
  const bool closes = pkt.tcp->flags & (kTcpFin | kTcpRst);

  auto it = flows_.find(key);
  if (it == flows_.end()) {
    it = flows_.emplace(key, PickPort(pkt)).first;
  } else if (config_.fault == LoadBalancerFault::kRehashMidFlow) {
    // Buggy: forgets the pin and re-balances this packet. Perturb with the
    // counter so successive packets really move.
    it->second = static_cast<std::uint32_t>(rr_counter_++ %
                                            config_.server_count) +
                 config_.first_server_port;
  }
  const std::uint32_t out = it->second;
  if (closes) flows_.erase(it);
  return ForwardDecision::Forward(PortId{out});
}

}  // namespace swmon
