// Static port-map forwarder.
//
// Used as the substrate for scenarios where the interesting behaviour lives
// in the traffic (DHCP handshakes, FTP sessions) rather than the switch:
// packets arriving on a mapped port go out the mapped port; everything else
// floods (or drops, per config).
#pragma once

#include <map>

#include "dataplane/switch.hpp"

namespace swmon {

class SimpleForwarderApp : public SwitchProgram {
 public:
  /// `port_map[in] = out`. Unmapped ports flood when `flood_unmapped`.
  explicit SimpleForwarderApp(std::map<PortId, PortId> port_map,
                              bool flood_unmapped = true)
      : port_map_(std::move(port_map)), flood_unmapped_(flood_unmapped) {}

  ForwardDecision OnPacket(SoftSwitch& sw, const ParsedPacket& pkt,
                           PortId in_port) override {
    (void)sw, (void)pkt;
    const auto it = port_map_.find(in_port);
    if (it != port_map_.end()) return ForwardDecision::Forward(it->second);
    return flood_unmapped_ ? ForwardDecision::Flood()
                           : ForwardDecision::Drop();
  }
  const char* Name() const override { return "simple-forwarder"; }

 private:
  std::map<PortId, PortId> port_map_;
  bool flood_unmapped_;
};

}  // namespace swmon
