// Source NAT (the paper's Sec 2.2 running example).
//
// Outbound (internal -> external) TCP/UDP packets have their source
// (A, P) rewritten to (public_ip, P') where P' is allocated per (A, P);
// inbound packets addressed to (public_ip, P') are reverse-translated to
// (A, P). The Sec-2.2 property checks the reverse translation against the
// recorded forward one using packet identity and tuple negative match.
//
// Faults:
//   kWrongReversePort — reverse-translates to port P+1.
//   kWrongReverseAddr — reverse-translates to a different internal host.
//   kForgetMapping    — drops inbound packets for known mappings (caught by
//                       a drop-observation variant of the property).
#pragma once

#include <unordered_map>

#include "dataplane/flow_key.hpp"
#include "dataplane/switch.hpp"

namespace swmon {

enum class NatFault {
  kNone,
  kWrongReversePort,
  kWrongReverseAddr,
  kForgetMapping,
};

struct NatConfig {
  PortId internal_port = PortId{1};
  PortId external_port = PortId{2};
  Ipv4Addr public_ip = Ipv4Addr(203, 0, 113, 1);
  std::uint16_t first_nat_port = 50000;
  NatFault fault = NatFault::kNone;
};

class NatApp : public SwitchProgram {
 public:
  explicit NatApp(NatConfig config) : config_(config) {}

  ForwardDecision OnPacket(SoftSwitch& sw, const ParsedPacket& pkt,
                           PortId in_port) override;
  const char* Name() const override { return "nat"; }

  std::size_t mapping_count() const { return forward_.size(); }

 private:
  struct Mapping {
    std::uint32_t internal_ip;
    std::uint16_t internal_port;
  };

  NatConfig config_;
  std::uint16_t next_port_ = 0;  // offset from first_nat_port
  // (internal ip, internal l4 port) -> translated l4 port
  std::unordered_map<FlowKey, std::uint16_t, FlowKeyHash> forward_;
  // translated l4 port -> original endpoint
  std::unordered_map<std::uint16_t, Mapping> reverse_;
};

}  // namespace swmon
