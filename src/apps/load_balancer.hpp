// L4 load balancer (Table 1's three load-balancing properties).
//
// TCP flows arriving on `client_port` are pinned to one of the server
// ports. Assignment is by flow hash (HashFieldsToRange, the same function
// the monitor's kHashPort binding uses) or round-robin; a flow keeps its
// port until FIN/RST. Server->client traffic returns on `client_port`.
//
// Faults:
//   kWrongHashPort   — assigns hash+1 ("new flows go to hashed port").
//   kWrongRoundRobin — skips every other counter value.
//   kRehashMidFlow   — re-assigns on every packet instead of pinning
//                      ("no change in port until flow closed").
#pragma once

#include <unordered_map>
#include <vector>

#include "dataplane/flow_key.hpp"
#include "dataplane/switch.hpp"

namespace swmon {

enum class LoadBalancerFault {
  kNone,
  kWrongHashPort,
  kWrongRoundRobin,
  kRehashMidFlow,
};

enum class LbMode { kHash, kRoundRobin };

struct LoadBalancerConfig {
  PortId client_port = PortId{1};
  /// Server ports are the contiguous range [first_server_port,
  /// first_server_port + server_count) — matching the monitor's
  /// base/modulus expectation.
  std::uint32_t first_server_port = 2;
  std::uint32_t server_count = 4;
  LbMode mode = LbMode::kHash;
  LoadBalancerFault fault = LoadBalancerFault::kNone;
};

class LoadBalancerApp : public SwitchProgram {
 public:
  explicit LoadBalancerApp(LoadBalancerConfig config) : config_(config) {}

  ForwardDecision OnPacket(SoftSwitch& sw, const ParsedPacket& pkt,
                           PortId in_port) override;
  const char* Name() const override { return "load-balancer"; }

  std::size_t flow_count() const { return flows_.size(); }

  /// The fields whose hash selects the port (shared with the property).
  static std::vector<FieldId> HashInputs() {
    return {FieldId::kIpSrc, FieldId::kIpDst, FieldId::kL4SrcPort,
            FieldId::kL4DstPort};
  }

 private:
  std::uint32_t PickPort(const ParsedPacket& pkt);

  LoadBalancerConfig config_;
  std::uint64_t rr_counter_ = 0;
  std::unordered_map<FlowKey, std::uint32_t, FlowKeyHash> flows_;
};

}  // namespace swmon
