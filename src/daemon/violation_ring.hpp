// A bounded violation buffer with drop accounting — the daemon's answer to
// the "batch harness" assumption that violation vectors may grow until the
// process exits.
//
// A resident monitor can observe violations far faster than any operator
// drains them (a soak at 200k events/sec against a violating property
// produces tens of thousands per second). Engines therefore get drained
// into this ring every pump round, and the ring itself is capped: when
// full, the *oldest* undrained violation is dropped and counted, so the
// operator who finally polls GET /violations sees the most recent window
// plus an honest `dropped` figure in telemetry, and daemon RSS stays flat
// no matter how long nobody polls (the creation_order-style leak class,
// audited by daemon_soak_test's bounded-RSS assertion).
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "monitor/violation.hpp"

namespace swmon {

class ViolationRing {
 public:
  /// `capacity` = most-recent violations retained between drains (0 is
  /// clamped to 1 — an unbounded mode deliberately does not exist here).
  explicit ViolationRing(std::size_t capacity)
      : capacity_(capacity ? capacity : 1) {}

  void Push(Violation v) {
    if (ring_.size() == capacity_) {
      ring_.pop_front();
      ++dropped_;
    }
    ring_.push_back(std::move(v));
    ++total_;
  }

  void PushAll(std::vector<Violation> vs) {
    for (Violation& v : vs) Push(std::move(v));
  }

  /// Removes and returns everything currently buffered (oldest first).
  std::vector<Violation> Drain() {
    std::vector<Violation> out(std::make_move_iterator(ring_.begin()),
                               std::make_move_iterator(ring_.end()));
    ring_.clear();
    drained_ += out.size();
    return out;
  }

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Violations ever pushed / dropped under cap pressure / handed out.
  std::uint64_t total() const { return total_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t drained() const { return drained_; }

 private:
  std::size_t capacity_;
  std::deque<Violation> ring_;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t drained_ = 0;
};

}  // namespace swmon
