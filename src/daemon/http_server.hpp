// A minimal embedded HTTP/1.1 server for swmond's telemetry/control plane.
//
// Hand-rolled on POSIX sockets — the repo's no-new-dependencies rule holds
// for the daemon too, and the control plane needs exactly four verbs worth
// of HTTP: parse a request line + headers + optional Content-Length body,
// call one handler, write one response, close. Every connection is served
// to completion on the single accept thread (the handler marshals real
// work onto the daemon's pump thread anyway, so concurrency here would buy
// queueing, not throughput). Binds loopback only: the control plane is an
// operator surface, not an internet listener.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace swmon {

struct HttpRequest {
  std::string method;  // "GET", "POST", "DELETE", ...
  std::string path;    // decoded path, no query string
  std::string query;   // raw query string ("" when absent)
  std::string body;

  /// Value of `key` in the query string ("" when absent). Handles only the
  /// k=v&k2=v2 shape the control plane uses; no percent-decoding.
  std::string QueryParam(const std::string& key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse Json(std::string body) {
    return {200, "application/json", std::move(body)};
  }
  static HttpResponse Error(int status, const std::string& message);
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer() { Stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned; read the result from
  /// port()) and serves `handler` on a background thread until Stop().
  bool Start(std::uint16_t port, HttpHandler handler,
             std::string* error = nullptr);
  void Stop();

  bool running() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  HttpHandler handler_;
  std::thread thread_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_served_{0};
};

/// Test/client helper: one blocking HTTP round-trip against 127.0.0.1:port.
/// Returns false on connect/IO failure. `status` and `body` are filled from
/// the response.
bool HttpRoundTrip(std::uint16_t port, const std::string& method,
                   const std::string& target, const std::string& body,
                   int* status, std::string* response_body,
                   std::string* error = nullptr);

}  // namespace swmon
