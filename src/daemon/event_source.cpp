#include "daemon/event_source.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"
#include "spl/spl.hpp"

namespace swmon {
namespace {

constexpr char kTraceMagic[4] = {'S', 'W', 'M', 'T'};

bool SetError(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
  return false;
}

bool ParseU64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  const int base =
      text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')
          ? 16
          : 10;
  char* end = nullptr;
  const std::string owned(text);
  *out = std::strtoull(owned.c_str(), &end, base);
  return end && *end == '\0';
}

/// Validates a 16-byte SWMT stream/file header; on success the caller
/// starts feeding everything after it to a TraceEventDecoder.
bool CheckStreamHeader(const std::uint8_t* header, std::string* error) {
  if (std::memcmp(header, kTraceMagic, 4) != 0)
    return SetError(error, "stream is not a swmon trace");
  std::uint32_t version;
  std::memcpy(&version, header + 4, 4);  // LE file, LE hosts only ingest live
  if constexpr (std::endian::native != std::endian::little)
    version = __builtin_bswap32(version);
  if (version == 0 || version > 2)
    return SetError(error, "unsupported trace version");
  return true;
}

}  // namespace

bool ParseEventLine(const std::string& line, DataplaneEvent& out,
                    std::string* error) {
  if (error) error->clear();
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && std::isspace(line[pos])) ++pos;
    std::size_t end = pos;
    while (end < line.size() && !std::isspace(line[end])) ++end;
    if (end > pos) tokens.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  if (tokens.empty() || tokens[0][0] == '#') return false;  // blank/comment
  if (tokens.size() < 2)
    return SetError(error, "expected '<type> <time_ns> [field=value]...'");

  out = DataplaneEvent{};
  if (tokens[0] == "arrival") {
    out.type = DataplaneEventType::kArrival;
  } else if (tokens[0] == "egress") {
    out.type = DataplaneEventType::kEgress;
  } else if (tokens[0] == "link") {
    out.type = DataplaneEventType::kLinkStatus;
  } else {
    return SetError(error, "unknown event type '" + tokens[0] + "'");
  }
  std::uint64_t time_ns;
  if (!ParseU64(tokens[1], &time_ns))
    return SetError(error, "bad timestamp '" + tokens[1] + "'");
  out.time = SimTime::FromNanos(static_cast<std::int64_t>(time_ns));

  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos)
      return SetError(error, "expected key=value, got '" + tok + "'");
    const std::string key = tok.substr(0, eq);
    std::uint64_t value;
    if (!ParseU64(tok.substr(eq + 1), &value))
      return SetError(error, "bad value in '" + tok + "'");
    if (key == "bytes") {
      out.packet_bytes = static_cast<std::uint32_t>(value);
      continue;
    }
    const auto id = FieldIdByName(key);
    if (!id) return SetError(error, "unknown field '" + key + "'");
    out.fields.Set(*id, value);
  }
  return true;
}

// -------------------------------------------------------- TraceTailer

TraceTailer::TraceTailer(std::string path)
    : path_(std::move(path)), name_("tail:" + path_) {}

TraceTailer::~TraceTailer() {
  if (fd_ >= 0) ::close(fd_);
}

bool TraceTailer::ReadHeader() {
  std::uint8_t header[kTraceHeaderBytes];
  const ssize_t r = ::pread(fd_, header, sizeof(header), 0);
  if (r < 0) {
    error_ = "read " + path_ + " failed: " + std::strerror(errno);
    return false;
  }
  if (static_cast<std::size_t>(r) < sizeof(header)) return true;  // wait
  if (!CheckStreamHeader(header, &error_)) return false;
  header_ok_ = true;
  offset_ = kTraceHeaderBytes;
  return true;
}

bool TraceTailer::Poll(std::vector<DataplaneEvent>& out) {
  if (!error_.empty()) return false;
  if (fd_ < 0) {
    fd_ = ::open(path_.c_str(), O_RDONLY);
    if (fd_ < 0) return true;  // not created yet — keep waiting
  }
  if (!header_ok_) {
    if (!ReadHeader()) return false;
    if (!header_ok_) return true;
  }
  std::uint8_t chunk[1 << 16];
  ssize_t r;
  while ((r = ::pread(fd_, chunk, sizeof(chunk), offset_)) > 0) {
    decoder_.Feed(chunk, static_cast<std::size_t>(r));
    offset_ += static_cast<std::uint64_t>(r);
  }
  if (r < 0) {
    error_ = "read " + path_ + " failed: " + std::strerror(errno);
    return false;
  }
  DataplaneEvent ev;
  TraceEventDecoder::Result res;
  while ((res = decoder_.Next(ev)) == TraceEventDecoder::Result::kEvent)
    out.push_back(ev);
  if (res == TraceEventDecoder::Result::kCorrupt) {
    error_ = path_ + ": " + decoder_.error();
    return false;
  }
  return true;
}

// ------------------------------------------------------- SocketSource

SocketSource::SocketSource(SocketSourceOptions options)
    : options_(std::move(options)) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
}

SocketSource::~SocketSource() { Stop(); }

bool SocketSource::Start(std::string* error) {
  auto fail = [&](const std::string& msg) {
    Stop();
    return SetError(error, msg + ": " + std::strerror(errno));
  };
  stopping_.store(false, std::memory_order_release);
  if (options_.tcp_enabled) {
    tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_listen_fd_ < 0) return fail("socket");
    const int one = 1;
    ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(tcp_listen_fd_, 16) < 0)
      return fail("bind/listen 127.0.0.1:" +
                  std::to_string(options_.tcp_port));
    socklen_t len = sizeof(addr);
    ::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    tcp_port_ = ntohs(addr.sin_port);
    const int fd = tcp_listen_fd_;
    accept_threads_.emplace_back([this, fd] { AcceptLoop(fd); });
  }
  if (!options_.unix_path.empty()) {
    unix_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_listen_fd_ < 0) return fail("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path))
      return SetError(error, "unix socket path too long");
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());  // stale socket from a prior run
    if (::bind(unix_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(unix_listen_fd_, 16) < 0)
      return fail("bind/listen " + options_.unix_path);
    const int fd = unix_listen_fd_;
    accept_threads_.emplace_back([this, fd] { AcceptLoop(fd); });
  }
  if (tcp_listen_fd_ < 0 && unix_listen_fd_ < 0)
    return SetError(error, "socket source has no listener configured");
  return true;
}

void SocketSource::Stop() {
  stopping_.store(true, std::memory_order_release);
  for (int* fd : {&tcp_listen_fd_, &unix_listen_fd_}) {
    if (*fd >= 0) {
      ::shutdown(*fd, SHUT_RDWR);
      ::close(*fd);
      *fd = -1;
    }
  }
  // Listeners first: once joined, no new reader threads can appear.
  for (auto& t : accept_threads_)
    if (t.joinable()) t.join();
  accept_threads_.clear();
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    readers.swap(reader_threads_);
  }
  space_cv_.notify_all();
  for (auto& t : readers)
    if (t.joinable()) t.join();
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void SocketSource::AcceptLoop(int listen_fd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire) || errno != EINTR) return;
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    // One thread per connection: ingestion clients are few (a tap per
    // switch), and a blocked slow producer must not stall other clients.
    std::lock_guard<std::mutex> lock(mu_);
    connection_fds_.push_back(fd);
    reader_threads_.emplace_back([this, fd] { ReadConnection(fd); });
  }
}

bool SocketSource::Enqueue(DataplaneEvent ev) {
  std::unique_lock<std::mutex> lock(mu_);
  space_cv_.wait(lock, [this] {
    return queue_.size() < options_.queue_capacity ||
           stopping_.load(std::memory_order_acquire);
  });
  if (stopping_.load(std::memory_order_acquire)) return false;
  queue_.push_back(std::move(ev));
  events_ingested_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SocketSource::ReadConnection(int fd) {
  // A text line longer than this is not a protocol the daemon speaks —
  // cap it so a newline-less client cannot grow the buffer unboundedly.
  constexpr std::size_t kMaxTextLine = 1 << 16;

  // Sniff the first bytes: an SWMT header selects the binary trace
  // protocol, anything else is treated as the text line protocol.
  std::string pending;
  TraceEventDecoder decoder;
  enum class Mode { kUnknown, kBinary, kText } mode = Mode::kUnknown;
  bool drop = false;
  char chunk[1 << 16];
  ssize_t r;
  while (!drop && (r = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    pending.append(chunk, static_cast<std::size_t>(r));
    if (mode == Mode::kUnknown) {
      if (pending.size() < 4) {
        if (std::memcmp(pending.data(), kTraceMagic, pending.size()) == 0)
          continue;  // may still become a binary header
        mode = Mode::kText;
      } else if (std::memcmp(pending.data(), kTraceMagic, 4) == 0) {
        if (pending.size() < kTraceHeaderBytes) continue;
        std::string header_error;
        if (!CheckStreamHeader(
                reinterpret_cast<const std::uint8_t*>(pending.data()),
                &header_error)) {
          decode_errors_.fetch_add(1, std::memory_order_relaxed);
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        pending.erase(0, kTraceHeaderBytes);
        mode = Mode::kBinary;
      } else {
        mode = Mode::kText;
      }
    }
    if (mode == Mode::kBinary) {
      decoder.Feed(reinterpret_cast<const std::uint8_t*>(pending.data()),
                   pending.size());
      pending.clear();
      DataplaneEvent ev;
      TraceEventDecoder::Result res;
      while ((res = decoder.Next(ev)) == TraceEventDecoder::Result::kEvent) {
        if (!Enqueue(std::move(ev))) {
          drop = true;
          break;
        }
      }
      if (res == TraceEventDecoder::Result::kCorrupt) {
        SWMON_LOG_WARN("daemon", "socket: corrupt event stream: %s",
                       decoder.error().c_str());
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        drop = true;
      }
    } else {
      std::size_t nl;
      while (!drop && (nl = pending.find('\n')) != std::string::npos) {
        const std::string line = pending.substr(0, nl);
        pending.erase(0, nl + 1);
        DataplaneEvent ev;
        std::string line_error;
        if (ParseEventLine(line, ev, &line_error)) {
          if (!Enqueue(std::move(ev))) drop = true;
        } else if (!line_error.empty()) {
          SWMON_LOG_WARN("daemon", "socket: bad event line: %s",
                         line_error.c_str());
          decode_errors_.fetch_add(1, std::memory_order_relaxed);
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          drop = true;  // a malformed line poisons framing — drop the conn
        }
      }
      if (!drop && pending.size() > kMaxTextLine) {
        SWMON_LOG_WARN("daemon", "socket: text line exceeds %zu bytes",
                       kMaxTextLine);
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        drop = true;
      }
    }
  }
  // Clean close with bytes still pending: either a final text line the
  // client forgot to newline-terminate (parse it — `echo -n | nc` works),
  // or a record the stream truncated mid-encoding (surface it instead of
  // silently desyncing).
  if (!drop && r == 0) {
    if (mode == Mode::kBinary) {
      if (decoder.pending_bytes() > 0) {
        SWMON_LOG_WARN("daemon",
                       "socket: stream closed mid-event (%zu bytes pending)",
                       decoder.pending_bytes());
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (!pending.empty()) {
      if (mode == Mode::kUnknown &&
          std::memcmp(pending.data(), kTraceMagic,
                      std::min<std::size_t>(pending.size(), 4)) == 0) {
        // 1..15 bytes that are a proper prefix of a binary header.
        SWMON_LOG_WARN("daemon", "socket: stream closed mid-header");
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
      } else {
        DataplaneEvent ev;
        std::string line_error;
        if (ParseEventLine(pending, ev, &line_error)) {
          Enqueue(std::move(ev));
        } else if (!line_error.empty()) {
          SWMON_LOG_WARN("daemon", "socket: bad final event line: %s",
                         line_error.c_str());
          decode_errors_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  connection_fds_.erase(
      std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
      connection_fds_.end());
}

bool SocketSource::Poll(std::vector<DataplaneEvent>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!queue_.empty()) {
    out.insert(out.end(), std::make_move_iterator(queue_.begin()),
               std::make_move_iterator(queue_.end()));
    queue_.clear();
    space_cv_.notify_all();
  }
  return true;
}

}  // namespace swmon
