// One tenant: a named group of properties monitored over the shared event
// stream, with hot lifecycle and bounded violation retention.
//
// swmond multiplexes many property owners ("tenants" — a team, a customer,
// an experiment) onto one ingested stream. Each tenant owns its own
// MonitorSet (or ParallelMonitorSet when configured with workers > 1), so
// tenants are isolated: attaching, detaching, or drowning one tenant in
// violations cannot perturb another tenant's engines, dispatch order, or
// determinism. Properties arrive as SPL text — from `<config>/<tenant>/
// *.spl` at startup or over the control API at runtime — and parse errors
// are returned to the caller verbatim (the control plane turns them into
// HTTP 400 bodies).
//
// All methods are pump-thread-only (the daemon marshals control-plane calls
// onto the pump); the tenant itself takes no locks.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "daemon/violation_ring.hpp"
#include "monitor/monitor_set.hpp"
#include "monitor/parallel_monitor_set.hpp"
#include "telemetry/snapshot.hpp"

namespace swmon {

struct TenantOptions {
  /// 0 or 1 = serial MonitorSet; >1 = ParallelMonitorSet with this many
  /// workers (started immediately; properties hot-attach onto the pool).
  std::size_t workers = 0;
  /// Worker-pool sharding policy (parallel tenants only). kProperty pins
  /// each property to one worker; kInstance splits shard-eligible
  /// properties across all workers by instance identity; kAuto splits only
  /// while the tenant has fewer live properties than workers — the right
  /// default for a tenant whose one hot property must use the whole pool.
  ShardMode shard_mode = ShardMode::kProperty;
  /// Serial micro-batch window (MonitorSet::SetBatching): events buffer in
  /// the tenant's set until `batch` arrive or the pump hits a quiet point
  /// (Flush/AdvanceTime/any read). 0 = per-event delivery. Ignored for
  /// parallel tenants — their workers already consume whole slab batches.
  std::size_t batch = 0;
  /// Per-engine monitor config (provenance, instance caps, ...).
  MonitorConfig monitor;
  /// Most-recent undrained violations retained per tenant (older ones are
  /// dropped and counted — see ViolationRing).
  std::size_t violation_capacity = 4096;
};

struct TenantProperty {
  PropertyId id;
  std::string name;
};

class Tenant {
 public:
  Tenant(std::string name, TenantOptions options);
  ~Tenant();
  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  const std::string& name() const { return name_; }

  /// Parses `spl_text` and attaches the property. On parse or validation
  /// failure returns nullopt with the parser's message (line numbers
  /// included) in `*error` — the surface the control API reports to
  /// operators.
  std::optional<PropertyId> AttachSpl(const std::string& spl_text,
                                      std::string* error);
  PropertyId Attach(Property property);

  /// Hot-detaches; the property's violations observed so far are pushed
  /// into the tenant ring (nothing is lost, subject to ring capacity).
  /// False when `id` is unknown or already detached.
  bool Detach(PropertyId id);

  bool attached(PropertyId id) const;
  std::vector<TenantProperty> Properties() const;
  std::size_t attached_count() const;

  void Deliver(const DataplaneEvent& event);
  /// Flush the quiet point (publishes partial batches on a parallel set).
  void Flush();
  void AdvanceTime(SimTime now);

  /// Moves violations accumulated inside the engines into the bounded
  /// ring. The daemon calls this every pump round — the step that keeps
  /// per-engine violation vectors (and parallel merge markers) from
  /// growing for the life of the process.
  void DrainEngines();

  /// Drains the ring (GET /violations) — oldest first.
  std::vector<Violation> DrainRing() { return ring_.Drain(); }

  std::uint64_t violations_total() const { return ring_.total(); }
  std::uint64_t violations_dropped() const { return ring_.dropped(); }

  /// Publishes this tenant's metrics under `daemon.tenant.<name>.` —
  /// the ring counters plus every monitor.set/monitor.engine metric of the
  /// underlying set, re-prefixed so tenants never collide in one snapshot.
  void CollectInto(telemetry::Snapshot& snap);

 private:
  std::string name_;
  TenantOptions options_;
  // Exactly one of these is live, chosen by options_.workers.
  std::unique_ptr<MonitorSet> serial_;
  std::unique_ptr<ParallelMonitorSet> parallel_;
  ViolationRing ring_;
};

}  // namespace swmon
