// Pluggable live event ingestion for swmond.
//
// The batch harness replays a finite, fully-materialized trace; a resident
// daemon ingests from wherever events happen to be appearing. Two sources:
//
//   * TraceTailer follows a growing v2 `.swmt` trace file
//     (docs/TRACE_FORMAT.md): it waits for the file to exist, validates the
//     header once, then decodes events incrementally as bytes are appended
//     (TraceFileWriter on the producer side keeps the file consistent at
//     every flush). The header's event count is deliberately ignored — a
//     growing file's count lags its bytes.
//
//   * SocketSource accepts localhost TCP and/or Unix-socket connections
//     carrying either (a) the binary trace stream — the 16-byte SWMT
//     header followed by wire-encoded events, so `cat trace.swmt | nc`
//     works unmodified — or (b) a newline-delimited text protocol
//     (`arrival <time_ns> [key=value]...`) for hand-driven testing.
//     Reader threads decode and queue; the daemon's pump thread drains via
//     Poll(). The queue is bounded: a producer faster than the monitors
//     blocks its connection (TCP backpressure) instead of growing daemon
//     memory.
//
// Both sources present one contract: Poll(out) appends any newly available
// events and returns false only when the source is permanently finished
// (closed, or corrupt input — see error()).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dataplane/switch.hpp"
#include "netsim/trace_io.hpp"

namespace swmon {

class EventSource {
 public:
  virtual ~EventSource() = default;
  /// Appends newly available events to `out` (never blocks for long).
  /// Returns false when the source is permanently done.
  virtual bool Poll(std::vector<DataplaneEvent>& out) = 0;
  virtual const std::string& name() const = 0;
  /// Empty while healthy; a diagnosis once Poll has returned false.
  virtual const std::string& error() const = 0;
  virtual std::uint64_t events_ingested() const = 0;
};

/// Parses one text-protocol line: `<type> <time_ns> [bytes=<n>]
/// [<field>=<value>]...`, type in {arrival, egress, link}; values decimal
/// or 0x-hex; field names as printed by FieldName(). Empty lines and
/// `#`-comments yield false with empty error.
bool ParseEventLine(const std::string& line, DataplaneEvent& out,
                    std::string* error);

class TraceTailer : public EventSource {
 public:
  explicit TraceTailer(std::string path);
  ~TraceTailer() override;

  bool Poll(std::vector<DataplaneEvent>& out) override;
  const std::string& name() const override { return name_; }
  const std::string& error() const override { return error_; }
  std::uint64_t events_ingested() const override {
    return decoder_.events_decoded();
  }
  /// Bytes of the file consumed so far (header included once read).
  std::uint64_t offset() const { return offset_; }

 private:
  bool ReadHeader();

  std::string path_;
  std::string name_;
  std::string error_;
  int fd_ = -1;
  bool header_ok_ = false;
  std::uint64_t offset_ = 0;
  TraceEventDecoder decoder_;
};

struct SocketSourceOptions {
  /// Listen on 127.0.0.1:tcp_port when tcp_enabled (0 = kernel-assigned;
  /// read back via tcp_port()).
  bool tcp_enabled = false;
  std::uint16_t tcp_port = 0;
  /// Listen on this Unix socket path when non-empty.
  std::string unix_path;
  /// Decoded events buffered between Poll()s before readers block.
  std::size_t queue_capacity = 1 << 16;
};

class SocketSource : public EventSource {
 public:
  explicit SocketSource(SocketSourceOptions options);
  ~SocketSource() override;

  bool Start(std::string* error = nullptr);
  void Stop();

  bool Poll(std::vector<DataplaneEvent>& out) override;
  const std::string& name() const override { return name_; }
  const std::string& error() const override { return error_; }
  std::uint64_t events_ingested() const override {
    return events_ingested_.load(std::memory_order_relaxed);
  }

  std::uint16_t tcp_port() const { return tcp_port_; }
  std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  /// Connections dropped for protocol violations (bad header/corrupt
  /// stream/bad line); the stream keeps serving other clients.
  std::uint64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }
  /// Malformed records observed across all connections: corrupt binary
  /// events, bad text lines, oversized text lines, and streams that close
  /// mid-record (truncated binary tail / unterminated final line that
  /// fails to parse). Events decoded before the bad record are kept.
  std::uint64_t decode_errors() const {
    return decode_errors_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop(int listen_fd);
  void ReadConnection(int fd);
  /// Blocks while the queue is at capacity (ingest backpressure). Returns
  /// false when the source is stopping.
  bool Enqueue(DataplaneEvent ev);

  SocketSourceOptions options_;
  std::string name_ = "socket";
  std::string error_;
  std::uint16_t tcp_port_ = 0;
  int tcp_listen_fd_ = -1;
  int unix_listen_fd_ = -1;
  /// Listener threads; joined first on Stop (closing the listen fds stops
  /// them spawning more connection threads).
  std::vector<std::thread> accept_threads_;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::condition_variable space_cv_;
  std::deque<DataplaneEvent> queue_;
  std::vector<int> connection_fds_;          // guarded by mu_
  std::vector<std::thread> reader_threads_;  // guarded by mu_

  std::atomic<std::uint64_t> events_ingested_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
};

}  // namespace swmon
