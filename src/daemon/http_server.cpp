#include "daemon/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

namespace swmon {
namespace {

/// Hard ceilings; the control plane's requests are tiny, so anything past
/// these is a confused or hostile client.
constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 4 * 1024 * 1024;

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

bool SendAll(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r <= 0) return false;
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

void WriteResponse(int fd, const HttpResponse& resp) {
  std::ostringstream out;
  out << "HTTP/1.1 " << resp.status << ' ' << StatusText(resp.status)
      << "\r\nContent-Type: " << resp.content_type
      << "\r\nContent-Length: " << resp.body.size()
      << "\r\nConnection: close\r\n\r\n";
  const std::string head = out.str();
  if (SendAll(fd, head.data(), head.size()))
    SendAll(fd, resp.body.data(), resp.body.size());
}

}  // namespace

std::string HttpRequest::QueryParam(const std::string& key) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string_view pair(query.data() + pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key)
      return std::string(pair.substr(eq + 1));
    pos = amp + 1;
  }
  return "";
}

HttpResponse HttpResponse::Error(int status, const std::string& message) {
  return {status, "application/json",
          "{\"error\":\"" + message + "\"}\n"};
}

bool HttpServer::Start(std::uint16_t port, HttpHandler handler,
                       std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error) *error = msg + ": " + std::strerror(errno);
    return false;
  };
  Stop();
  handler_ = std::move(handler);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail("listen");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  // shutdown() unblocks the accept(); close() alone does not on all
  // platforms.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (thread_.joinable()) thread_.join();
  listen_fd_ = -1;
  port_ = 0;
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR) continue;
      return;  // listener is gone
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  // Read until the blank line ending the headers.
  std::string data;
  std::size_t header_end;
  char chunk[4096];
  while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
    if (data.size() > kMaxHeaderBytes) {
      WriteResponse(fd, HttpResponse::Error(413, "headers too large"));
      return;
    }
    const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r <= 0) return;  // client went away mid-request
    data.append(chunk, static_cast<std::size_t>(r));
  }

  HttpRequest req;
  {
    const std::size_t line_end = data.find("\r\n");
    std::istringstream line(data.substr(0, line_end));
    std::string target, version;
    line >> req.method >> target >> version;
    if (req.method.empty() || target.empty() || target[0] != '/') {
      WriteResponse(fd, HttpResponse::Error(400, "malformed request line"));
      return;
    }
    const std::size_t q = target.find('?');
    req.path = target.substr(0, q);
    if (q != std::string::npos) req.query = target.substr(q + 1);
  }

  // Content-Length is the only body framing the control plane accepts.
  std::size_t content_length = 0;
  {
    std::istringstream headers(
        data.substr(0, header_end + 2));  // keep trailing \r\n
    std::string line;
    std::getline(headers, line);  // request line, already parsed
    while (std::getline(headers, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      if (name == "content-length") {
        content_length = static_cast<std::size_t>(
            std::strtoull(line.c_str() + colon + 1, nullptr, 10));
      }
    }
  }
  if (content_length > kMaxBodyBytes) {
    WriteResponse(fd, HttpResponse::Error(413, "body too large"));
    return;
  }
  req.body = data.substr(header_end + 4);
  while (req.body.size() < content_length) {
    const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r <= 0) return;
    req.body.append(chunk, static_cast<std::size_t>(r));
  }
  req.body.resize(content_length);

  requests_served_.fetch_add(1, std::memory_order_relaxed);
  HttpResponse resp;
  try {
    resp = handler_(req);
  } catch (const std::exception& e) {
    resp = HttpResponse::Error(500, e.what());
  }
  WriteResponse(fd, resp);
}

bool HttpRoundTrip(std::uint16_t port, const std::string& method,
                   const std::string& target, const std::string& body,
                   int* status, std::string* response_body,
                   std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error) *error = msg + ": " + std::strerror(errno);
    return false;
  };
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return fail("connect 127.0.0.1:" + std::to_string(port));
  }
  std::ostringstream out;
  out << method << ' ' << target << " HTTP/1.1\r\nHost: localhost\r\n"
      << "Content-Length: " << body.size() << "\r\nConnection: close\r\n\r\n"
      << body;
  const std::string req = out.str();
  if (!SendAll(fd, req.data(), req.size())) {
    ::close(fd);
    return fail("send");
  }
  std::string resp;
  char chunk[4096];
  ssize_t r;
  while ((r = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
    resp.append(chunk, static_cast<std::size_t>(r));
  ::close(fd);
  const std::size_t sp = resp.find(' ');
  if (sp == std::string::npos) return fail("malformed response");
  if (status) *status = std::atoi(resp.c_str() + sp + 1);
  const std::size_t hdr_end = resp.find("\r\n\r\n");
  if (response_body)
    *response_body =
        hdr_end == std::string::npos ? "" : resp.substr(hdr_end + 4);
  return true;
}

}  // namespace swmon
