// swmond — the long-running multi-tenant monitoring daemon.
//
// The paper's premise is that property monitors run *continuously
// alongside* switch traffic; this is the process that makes the repo's
// engines deployable that way instead of batch-replayed. One daemon hosts:
//
//   ingestion   one pump thread draining pluggable EventSources (trace
//               tailer, TCP/Unix socket) and delivering each event to
//               every tenant's monitor set, with timestamps clamped
//               monotone (engines require non-decreasing time; interleaved
//               sources do not guarantee it);
//   tenants     named property groups with hot attach/detach (see
//               tenant.hpp) — lifecycle ops quiesce at the flush
//               quiet-point, never restart the daemon;
//   control     an embedded HTTP plane: GET /metrics (Prometheus),
//               GET /telemetry.json, GET /violations?tenant=..,
//               GET /tenants, POST /tenants/{t}/properties (SPL body),
//               DELETE /tenants/{t}/properties/{id}, GET /healthz.
//
// Threading: monitor state is owned by the pump thread, full stop. HTTP
// handlers (and embedding tests) marshal every control operation onto the
// pump via RunOnPump, which executes queued commands between delivery
// rounds — after flushing tenants, so commands always observe (and mutate)
// quiesced state. Violations drain from engines into per-tenant bounded
// rings every round: the daemon's resident memory does not grow with
// uptime (daemon_soak_test pins this with an RSS assertion).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "daemon/event_source.hpp"
#include "daemon/http_server.hpp"
#include "daemon/tenant.hpp"

namespace swmon {

struct SwmondOptions {
  /// Tenant config root: each subdirectory is a tenant, each `*.spl` file
  /// inside it one property. Empty = start with no tenants (they can be
  /// created over the control API).
  std::string config_dir;

  /// Trace-tailer source: follow this growing v2 .swmt file. Empty = off.
  std::string trace_path;

  /// Socket source (either or both may be enabled).
  bool tcp_enabled = false;
  std::uint16_t tcp_port = 0;  // 0 = kernel-assigned
  std::string unix_socket_path;

  /// Control plane. http_port 0 = kernel-assigned (read back after Start).
  bool http_enabled = true;
  std::uint16_t http_port = 0;

  /// Per-tenant monitor execution (see TenantOptions).
  std::size_t workers = 0;
  ShardMode shard_mode = ShardMode::kProperty;
  /// Serial tenants' micro-batch window. 0 = take the SWMON_BATCH env var
  /// if set, else per-event delivery. The pump's per-round Flush bounds
  /// how long a partial window can sit buffered.
  std::size_t batch = 0;
  MonitorConfig monitor;
  std::size_t violation_capacity = 4096;

  /// Max events delivered per pump round (bounds latency of control ops).
  std::size_t max_round_events = 8192;
  /// Pump sleep when idle, microseconds.
  long idle_sleep_us = 500;
};

class SwmonDaemon {
 public:
  explicit SwmonDaemon(SwmondOptions options);
  ~SwmonDaemon();
  SwmonDaemon(const SwmonDaemon&) = delete;
  SwmonDaemon& operator=(const SwmonDaemon&) = delete;

  /// Loads tenants from config_dir, starts sources, pump, and HTTP. False
  /// (with a message) on config parse errors, bind failures, bad paths.
  bool Start(std::string* error = nullptr);
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  std::uint16_t http_port() const {
    return http_ ? http_->port() : 0;
  }
  std::uint16_t tcp_port() const {
    return socket_source_ ? socket_source_->tcp_port() : 0;
  }

  std::uint64_t events_ingested() const {
    return events_ingested_.load(std::memory_order_relaxed);
  }

  // --- thread-safe control surface (marshalled onto the pump; these are
  // exactly what the HTTP handlers call, exposed for embedding/tests) ---
  telemetry::Snapshot Telemetry();
  std::vector<std::string> TenantNames();
  /// Creates the tenant if absent; attaches the SPL property. nullopt +
  /// error on parse failure.
  std::optional<PropertyId> AttachProperty(const std::string& tenant,
                                           const std::string& spl_text,
                                           std::string* error);
  bool DetachProperty(const std::string& tenant, PropertyId id,
                      std::string* error);
  /// nullopt when the tenant does not exist.
  std::optional<std::vector<Violation>> DrainViolations(
      const std::string& tenant);
  std::vector<TenantProperty> TenantProperties(const std::string& tenant);

  /// Runs `fn` on the pump thread at the next quiet point (tenants
  /// flushed), blocking until done. Runs inline when the pump is stopped.
  void RunOnPump(std::function<void()> fn);

  /// The HTTP routing function, public so tests can drive it without a
  /// real socket if they wish.
  HttpResponse HandleHttp(const HttpRequest& req);

 private:
  void PumpLoop();
  /// Executes queued control commands; returns how many ran.
  std::size_t RunPendingCommands();
  /// `eviction_override` (optional) replaces options_.monitor.eviction for
  /// a newly created tenant — the per-tenant `eviction` config file.
  Tenant& GetOrCreateTenant(const std::string& name,
                            const EvictionConfig* eviction_override = nullptr);
  bool LoadConfigDir(std::string* error);
  telemetry::Snapshot BuildSnapshot();

  SwmondOptions options_;
  std::vector<std::unique_ptr<EventSource>> sources_;
  SocketSource* socket_source_ = nullptr;  // borrowed from sources_
  std::unique_ptr<HttpServer> http_;
  /// Tenant order = creation order (map for name lookup, vector for
  /// deterministic delivery order).
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::vector<Tenant*> tenant_order_;

  std::thread pump_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> events_ingested_{0};

  std::mutex command_mu_;
  std::condition_variable command_cv_;
  std::deque<std::function<void()>> commands_;

  // Pump-thread-only state.
  SimTime last_event_time_ = SimTime::Zero();
  std::uint64_t events_clamped_ = 0;
  std::uint64_t pump_rounds_ = 0;
  std::uint64_t commands_run_ = 0;
};

/// Renders violations as a JSON array (the GET /violations payload).
std::string ViolationsToJson(const std::vector<Violation>& violations);

}  // namespace swmon
