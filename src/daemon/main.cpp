// swmond entry point. Flag parsing and signal handling only — all daemon
// behaviour lives in SwmonDaemon so tests can embed it.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "daemon/daemon.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "\n"
               "  --config-dir DIR    tenant config root (DIR/<tenant>/*.spl)\n"
               "  --trace FILE        follow a growing .swmt trace file\n"
               "  --tcp-port PORT     listen for events on 127.0.0.1:PORT\n"
               "                      (0 = kernel-assigned, printed at start)\n"
               "  --unix PATH         listen for events on a Unix socket\n"
               "  --http-port PORT    control/telemetry HTTP port (default 0 =\n"
               "                      kernel-assigned, printed at start)\n"
               "  --workers N         per-tenant monitor workers (0/1 = serial)\n"
               "  --batch N           serial tenants buffer N events and run\n"
               "                      them as one batch (0 = per-event; the\n"
               "                      SWMON_BATCH env var sets the default)\n"
               "  --shard-mode M      worker sharding: property (default),\n"
               "                      instance, or auto (instance-shard while\n"
               "                      a tenant has fewer properties than\n"
               "                      workers)\n"
               "  --violation-cap N   per-tenant violation ring capacity\n"
               "                      (default 4096)\n"
               "  --eviction SPEC     bounded-memory eviction for every\n"
               "                      tenant: policy[:max_instances[:bytes]]\n"
               "                      with policy one of creation-order, lru,\n"
               "                      random, timeout-priority (default:\n"
               "                      unbounded). A DIR/<tenant>/eviction\n"
               "                      file overrides this per tenant.\n"
               "\n"
               "At least one event source (--trace, --tcp-port, --unix) is\n"
               "required. See docs/SWMOND.md.\n",
               argv0);
}

bool ParseSize(const char* s, std::size_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  swmon::SwmondOptions options;
  bool tcp_requested = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "swmond: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    std::size_t n = 0;
    if (arg == "--config-dir") {
      options.config_dir = next();
    } else if (arg == "--trace") {
      options.trace_path = next();
    } else if (arg == "--tcp-port") {
      if (!ParseSize(next(), &n) || n > 65535) {
        std::fprintf(stderr, "swmond: bad --tcp-port\n");
        return 2;
      }
      tcp_requested = true;
      options.tcp_enabled = true;
      options.tcp_port = static_cast<std::uint16_t>(n);
    } else if (arg == "--unix") {
      options.unix_socket_path = next();
    } else if (arg == "--http-port") {
      if (!ParseSize(next(), &n) || n > 65535) {
        std::fprintf(stderr, "swmond: bad --http-port\n");
        return 2;
      }
      options.http_port = static_cast<std::uint16_t>(n);
    } else if (arg == "--workers") {
      if (!ParseSize(next(), &options.workers)) {
        std::fprintf(stderr, "swmond: bad --workers\n");
        return 2;
      }
    } else if (arg == "--batch") {
      if (!ParseSize(next(), &options.batch)) {
        std::fprintf(stderr, "swmond: bad --batch\n");
        return 2;
      }
    } else if (arg == "--shard-mode") {
      const std::string mode = next();
      if (mode == "property") {
        options.shard_mode = swmon::ShardMode::kProperty;
      } else if (mode == "instance") {
        options.shard_mode = swmon::ShardMode::kInstance;
      } else if (mode == "auto") {
        options.shard_mode = swmon::ShardMode::kAuto;
      } else {
        std::fprintf(stderr,
                     "swmond: bad --shard-mode '%s' (property|instance|auto)\n",
                     mode.c_str());
        return 2;
      }
    } else if (arg == "--violation-cap") {
      if (!ParseSize(next(), &options.violation_capacity)) {
        std::fprintf(stderr, "swmond: bad --violation-cap\n");
        return 2;
      }
    } else if (arg == "--eviction") {
      std::string eviction_error;
      if (!swmon::ParseEvictionSpec(next(), &options.monitor.eviction,
                                    &eviction_error)) {
        std::fprintf(stderr, "swmond: bad --eviction: %s\n",
                     eviction_error.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "swmond: unknown flag '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  if (options.trace_path.empty() && !tcp_requested &&
      options.unix_socket_path.empty()) {
    std::fprintf(stderr, "swmond: no event source configured\n\n");
    Usage(argv[0]);
    return 2;
  }

  swmon::SwmonDaemon daemon(std::move(options));
  std::string error;
  if (!daemon.Start(&error)) {
    std::fprintf(stderr, "swmond: start failed: %s\n", error.c_str());
    return 1;
  }

  std::printf("swmond: pid %d\n", static_cast<int>(getpid()));
  if (daemon.http_port())
    std::printf("swmond: http://127.0.0.1:%u/metrics\n",
                static_cast<unsigned>(daemon.http_port()));
  if (daemon.tcp_port())
    std::printf("swmond: event socket 127.0.0.1:%u\n",
                static_cast<unsigned>(daemon.tcp_port()));
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) {
    // Signals interrupt the sleep; poll cheaply regardless.
    usleep(200 * 1000);
  }

  std::printf("swmond: shutting down (%llu events ingested)\n",
              static_cast<unsigned long long>(daemon.events_ingested()));
  daemon.Stop();
  return 0;
}
