#include "daemon/tenant.hpp"

#include "spl/spl.hpp"

namespace swmon {

Tenant::Tenant(std::string name, TenantOptions options)
    : name_(std::move(name)),
      options_(options),
      ring_(options.violation_capacity) {
  if (options_.workers > 1) {
    ParallelConfig config;
    config.workers = options_.workers;
    config.shard_mode = options_.shard_mode;
    parallel_ = std::make_unique<ParallelMonitorSet>(config);
    // Start the (empty) pool now: every subsequent attach is a hot attach
    // at the quiesce point, the same path the control API exercises.
    parallel_->Start();
  } else {
    serial_ = std::make_unique<MonitorSet>();
    if (options_.batch != 0) serial_->SetBatching(options_.batch);
  }
}

Tenant::~Tenant() {
  if (parallel_) parallel_->Stop();
}

std::optional<PropertyId> Tenant::AttachSpl(const std::string& spl_text,
                                            std::string* error) {
  const SplParseResult parsed = ParseSpl(spl_text);
  if (!parsed.ok()) {
    if (error) *error = parsed.error;
    return std::nullopt;
  }
  return Attach(*parsed.property);
}

PropertyId Tenant::Attach(Property property) {
  if (parallel_)
    return parallel_->AttachProperty(std::move(property), options_.monitor);
  return serial_->AttachProperty(std::move(property), options_.monitor);
}

bool Tenant::Detach(PropertyId id) {
  std::optional<std::vector<Violation>> drained =
      parallel_ ? parallel_->DetachProperty(id) : serial_->DetachProperty(id);
  if (!drained) return false;
  ring_.PushAll(std::move(*drained));
  return true;
}

bool Tenant::attached(PropertyId id) const {
  return parallel_ ? parallel_->attached(id) : serial_->attached(id);
}

std::vector<TenantProperty> Tenant::Properties() const {
  std::vector<TenantProperty> out;
  const std::size_t n = parallel_ ? parallel_->size() : serial_->size();
  for (PropertyId id = 0; id < n; ++id) {
    if (!attached(id)) continue;
    out.push_back({id, parallel_ ? parallel_->engine_name(id)
                                 : serial_->engine_name(id)});
  }
  return out;
}

std::size_t Tenant::attached_count() const {
  return parallel_ ? parallel_->attached_count() : serial_->attached_count();
}

void Tenant::Deliver(const DataplaneEvent& event) {
  if (parallel_) {
    parallel_->OnDataplaneEvent(event);
  } else {
    serial_->OnDataplaneEvent(event);
  }
}

void Tenant::Flush() {
  if (parallel_) {
    parallel_->Flush();
  } else {
    serial_->FlushEvents();  // publishes the micro-batcher's partial window
  }
}

void Tenant::AdvanceTime(SimTime now) {
  if (parallel_) {
    parallel_->AdvanceTime(now);
  } else {
    serial_->AdvanceTime(now);
  }
}

void Tenant::DrainEngines() {
  ring_.PushAll(parallel_ ? parallel_->DrainViolations()
                          : serial_->DrainViolations());
}

void Tenant::CollectInto(telemetry::Snapshot& snap) {
  const std::string prefix = "daemon.tenant." + name_ + ".";
  snap.SetCounter(prefix + "violations_total", ring_.total());
  snap.SetCounter(prefix + "violations_dropped", ring_.dropped());
  snap.SetCounter(prefix + "violations_drained", ring_.drained());
  snap.SetGauge(prefix + "violations_buffered",
                static_cast<std::int64_t>(ring_.size()));
  snap.SetGauge(prefix + "properties_attached",
                static_cast<std::int64_t>(attached_count()));

  telemetry::Snapshot inner;
  if (parallel_) {
    parallel_->CollectInto(inner);
  } else {
    serial_->CollectInto(inner);
  }
  for (const auto& [name, sample] : inner.samples()) {
    switch (sample.kind) {
      case telemetry::Sample::Kind::kCounter:
        snap.SetCounter(prefix + name, sample.counter);
        break;
      case telemetry::Sample::Kind::kGauge:
        snap.SetGauge(prefix + name, sample.gauge);
        break;
      case telemetry::Sample::Kind::kHistogram:
        snap.SetHistogram(prefix + name, sample.histogram);
        break;
    }
  }
}

}  // namespace swmon
