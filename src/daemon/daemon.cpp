#include "daemon/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>

namespace swmon {
namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Splits "/a/b/c" into {"a","b","c"}.
std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos < path.size()) {
    if (path[pos] == '/') {
      ++pos;
      continue;
    }
    std::size_t end = path.find('/', pos);
    if (end == std::string::npos) end = path.size();
    parts.push_back(path.substr(pos, end - pos));
    pos = end;
  }
  return parts;
}

}  // namespace

std::string ViolationsToJson(const std::vector<Violation>& violations) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i) out << ",";
    out << "\n  {\"property\":\"" << JsonEscape(v.property)
        << "\",\"time_ns\":" << v.time.nanos()
        << ",\"instance_id\":" << v.instance_id << ",\"trigger_stage\":\""
        << JsonEscape(v.trigger_stage) << "\",\"bindings\":{";
    for (std::size_t b = 0; b < v.bindings.size(); ++b) {
      if (b) out << ",";
      out << "\"" << JsonEscape(v.bindings[b].first)
          << "\":" << v.bindings[b].second;
    }
    out << "}}";
  }
  out << (violations.empty() ? "]\n" : "\n]\n");
  return out.str();
}

SwmonDaemon::SwmonDaemon(SwmondOptions options)
    : options_(std::move(options)) {
  if (options_.max_round_events == 0) options_.max_round_events = 1;
  if (options_.batch == 0) {
    if (const char* env = std::getenv("SWMON_BATCH")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0')
        options_.batch = static_cast<std::size_t>(v);
    }
  }
}

SwmonDaemon::~SwmonDaemon() { Stop(); }

Tenant& SwmonDaemon::GetOrCreateTenant(const std::string& name,
                                       const EvictionConfig* eviction_override) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    TenantOptions topts;
    topts.workers = options_.workers;
    topts.shard_mode = options_.shard_mode;
    topts.batch = options_.batch;
    topts.monitor = options_.monitor;
    if (eviction_override) topts.monitor.eviction = *eviction_override;
    topts.violation_capacity = options_.violation_capacity;
    it = tenants_.emplace(name, std::make_unique<Tenant>(name, topts)).first;
    tenant_order_.push_back(it->second.get());
  }
  return *it->second;
}

bool SwmonDaemon::LoadConfigDir(std::string* error) {
  namespace fs = std::filesystem;
  if (options_.config_dir.empty()) return true;
  std::error_code ec;
  if (!fs::is_directory(options_.config_dir, ec)) {
    if (error) *error = "config dir " + options_.config_dir +
                        " is not a directory";
    return false;
  }
  std::vector<fs::path> tenant_dirs;
  for (const auto& entry : fs::directory_iterator(options_.config_dir, ec))
    if (entry.is_directory()) tenant_dirs.push_back(entry.path());
  std::sort(tenant_dirs.begin(), tenant_dirs.end());
  for (const fs::path& dir : tenant_dirs) {
    // Optional per-tenant eviction override: a one-line
    // "policy[:max_instances[:max_state_bytes]]" spec in DIR/<tenant>/eviction.
    EvictionConfig tenant_eviction;
    bool has_eviction = false;
    const fs::path eviction_file = dir / "eviction";
    if (fs::is_regular_file(eviction_file, ec)) {
      std::ifstream in(eviction_file);
      std::string spec;
      std::getline(in, spec);
      while (!spec.empty() && (spec.back() == '\r' || spec.back() == ' ' ||
                               spec.back() == '\t'))
        spec.pop_back();
      std::string parse_error;
      if (!ParseEvictionSpec(spec, &tenant_eviction, &parse_error)) {
        if (error) *error = eviction_file.string() + ": " + parse_error;
        return false;
      }
      has_eviction = true;
    }
    Tenant& tenant = GetOrCreateTenant(
        dir.filename().string(), has_eviction ? &tenant_eviction : nullptr);
    std::vector<fs::path> spl_files;
    for (const auto& entry : fs::directory_iterator(dir, ec))
      if (entry.path().extension() == ".spl")
        spl_files.push_back(entry.path());
    std::sort(spl_files.begin(), spl_files.end());
    for (const fs::path& file : spl_files) {
      std::ifstream in(file);
      std::ostringstream text;
      text << in.rdbuf();
      std::string parse_error;
      if (!tenant.AttachSpl(text.str(), &parse_error)) {
        if (error)
          *error = file.string() + ": " + parse_error;
        return false;
      }
    }
  }
  return true;
}

bool SwmonDaemon::Start(std::string* error) {
  if (running_.load(std::memory_order_acquire)) return true;
  if (!LoadConfigDir(error)) return false;

  if (!options_.trace_path.empty())
    sources_.push_back(std::make_unique<TraceTailer>(options_.trace_path));
  if (options_.tcp_enabled || !options_.unix_socket_path.empty()) {
    SocketSourceOptions sopts;
    sopts.tcp_enabled = options_.tcp_enabled;
    sopts.tcp_port = options_.tcp_port;
    sopts.unix_path = options_.unix_socket_path;
    auto socket = std::make_unique<SocketSource>(sopts);
    if (!socket->Start(error)) return false;
    socket_source_ = socket.get();
    sources_.push_back(std::move(socket));
  }

  running_.store(true, std::memory_order_release);
  pump_ = std::thread([this] { PumpLoop(); });

  if (options_.http_enabled) {
    http_ = std::make_unique<HttpServer>();
    if (!http_->Start(options_.http_port,
                      [this](const HttpRequest& req) {
                        return HandleHttp(req);
                      },
                      error)) {
      Stop();
      return false;
    }
  }
  return true;
}

void SwmonDaemon::Stop() {
  if (http_) {
    http_->Stop();
    http_.reset();
  }
  if (socket_source_) socket_source_->Stop();
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    command_cv_.notify_all();
    if (pump_.joinable()) pump_.join();
  }
  // Commands enqueued during shutdown still complete (inline, quiesced).
  RunPendingCommands();
  socket_source_ = nullptr;
  sources_.clear();
}

void SwmonDaemon::PumpLoop() {
  std::vector<DataplaneEvent> round;
  std::vector<bool> source_alive(sources_.size(), true);
  while (running_.load(std::memory_order_acquire)) {
    round.clear();
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      if (!source_alive[i]) continue;
      if (!sources_[i]->Poll(round)) source_alive[i] = false;
      if (round.size() >= options_.max_round_events) break;
    }

    if (!round.empty()) {
      for (DataplaneEvent& ev : round) {
        // Engines require monotone time; interleaved sources (or a replayed
        // old trace) may violate it. Clamp and count rather than crash.
        if (ev.time < last_event_time_) {
          ev.time = last_event_time_;
          ++events_clamped_;
        } else {
          last_event_time_ = ev.time;
        }
        for (Tenant* t : tenant_order_) t->Deliver(ev);
      }
      events_ingested_.fetch_add(round.size(), std::memory_order_relaxed);
    }
    ++pump_rounds_;

    // The quiet point: engines drained every round (bounded resident
    // memory), control commands executed against flushed state.
    for (Tenant* t : tenant_order_) t->DrainEngines();
    RunPendingCommands();

    if (round.empty()) {
      std::unique_lock<std::mutex> lock(command_mu_);
      if (commands_.empty() && running_.load(std::memory_order_acquire)) {
        command_cv_.wait_for(lock,
                             std::chrono::microseconds(options_.idle_sleep_us));
      }
    }
  }
}

std::size_t SwmonDaemon::RunPendingCommands() {
  std::deque<std::function<void()>> pending;
  {
    std::lock_guard<std::mutex> lock(command_mu_);
    pending.swap(commands_);
  }
  if (pending.empty()) return 0;
  // Commands observe quiesced monitor state.
  for (Tenant* t : tenant_order_) t->Flush();
  for (auto& fn : pending) fn();
  commands_run_ += pending.size();
  return pending.size();
}

void SwmonDaemon::RunOnPump(std::function<void()> fn) {
  if (!running_.load(std::memory_order_acquire)) {
    // Pump not live (pre-Start or post-Stop): the caller's thread is the
    // only one touching monitor state.
    for (Tenant* t : tenant_order_) t->Flush();
    fn();
    return;
  }
  std::promise<void> done;
  std::future<void> fut = done.get_future();
  {
    std::lock_guard<std::mutex> lock(command_mu_);
    commands_.push_back([&fn, &done] {
      fn();
      done.set_value();
    });
  }
  command_cv_.notify_all();
  fut.wait();
}

telemetry::Snapshot SwmonDaemon::BuildSnapshot() {
  telemetry::Snapshot snap;
  snap.SetCounter("daemon.events_ingested",
                  events_ingested_.load(std::memory_order_relaxed));
  snap.SetCounter("daemon.events_clamped", events_clamped_);
  snap.SetCounter("daemon.pump_rounds", pump_rounds_);
  snap.SetCounter("daemon.commands_run", commands_run_);
  snap.SetGauge("daemon.tenants", static_cast<std::int64_t>(tenants_.size()));
  if (http_) snap.SetCounter("daemon.http.requests", http_->requests_served());
  for (const auto& src : sources_) {
    const std::string prefix = "daemon.source." + src->name() + ".";
    snap.SetCounter(prefix + "events", src->events_ingested());
  }
  if (socket_source_) {
    snap.SetCounter("daemon.socket.connections",
                    socket_source_->connections_accepted());
    snap.SetCounter("daemon.socket.protocol_errors",
                    socket_source_->protocol_errors());
    snap.SetCounter("daemon.socket.decode_errors",
                    socket_source_->decode_errors());
  }
  for (Tenant* t : tenant_order_) t->CollectInto(snap);
  return snap;
}

telemetry::Snapshot SwmonDaemon::Telemetry() {
  telemetry::Snapshot snap;
  RunOnPump([&] { snap = BuildSnapshot(); });
  return snap;
}

std::vector<std::string> SwmonDaemon::TenantNames() {
  std::vector<std::string> names;
  RunOnPump([&] {
    for (const auto& [name, tenant] : tenants_) names.push_back(name);
  });
  return names;
}

std::optional<PropertyId> SwmonDaemon::AttachProperty(
    const std::string& tenant, const std::string& spl_text,
    std::string* error) {
  std::optional<PropertyId> id;
  RunOnPump([&] {
    id = GetOrCreateTenant(tenant).AttachSpl(spl_text, error);
  });
  return id;
}

bool SwmonDaemon::DetachProperty(const std::string& tenant, PropertyId id,
                                 std::string* error) {
  bool ok = false;
  RunOnPump([&] {
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      if (error) *error = "unknown tenant '" + tenant + "'";
      return;
    }
    ok = it->second->Detach(id);
    if (!ok && error)
      *error = "no attached property with id " + std::to_string(id);
  });
  return ok;
}

std::optional<std::vector<Violation>> SwmonDaemon::DrainViolations(
    const std::string& tenant) {
  std::optional<std::vector<Violation>> out;
  RunOnPump([&] {
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) return;
    // Engines were just drained by the pump round; this drains the ring.
    out = it->second->DrainRing();
  });
  return out;
}

std::vector<TenantProperty> SwmonDaemon::TenantProperties(
    const std::string& tenant) {
  std::vector<TenantProperty> out;
  RunOnPump([&] {
    auto it = tenants_.find(tenant);
    if (it != tenants_.end()) out = it->second->Properties();
  });
  return out;
}

HttpResponse SwmonDaemon::HandleHttp(const HttpRequest& req) {
  const std::vector<std::string> parts = SplitPath(req.path);

  if (req.method == "GET" && req.path == "/healthz")
    return {200, "text/plain; charset=utf-8", "ok\n"};

  if (req.method == "GET" && req.path == "/metrics")
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            Telemetry().ToPrometheusText()};

  if (req.method == "GET" && req.path == "/telemetry.json")
    return HttpResponse::Json(Telemetry().ToJson());

  if (req.method == "GET" && req.path == "/violations") {
    const std::string tenant = req.QueryParam("tenant");
    if (tenant.empty())
      return HttpResponse::Error(400, "missing ?tenant= parameter");
    auto drained = DrainViolations(tenant);
    if (!drained)
      return HttpResponse::Error(404, "unknown tenant '" + tenant + "'");
    return HttpResponse::Json(ViolationsToJson(*drained));
  }

  if (req.method == "GET" && req.path == "/tenants") {
    std::ostringstream out;
    out << "[";
    bool first_tenant = true;
    for (const std::string& name : TenantNames()) {
      if (!first_tenant) out << ",";
      first_tenant = false;
      out << "\n  {\"name\":\"" << JsonEscape(name) << "\",\"properties\":[";
      bool first_prop = true;
      for (const TenantProperty& p : TenantProperties(name)) {
        if (!first_prop) out << ",";
        first_prop = false;
        out << "{\"id\":" << p.id << ",\"name\":\"" << JsonEscape(p.name)
            << "\"}";
      }
      out << "]}";
    }
    out << (first_tenant ? "]\n" : "\n]\n");
    return HttpResponse::Json(out.str());
  }

  // POST /tenants/{name}/properties  (body = one SPL property)
  if (req.method == "POST" && parts.size() == 3 && parts[0] == "tenants" &&
      parts[2] == "properties") {
    std::string error;
    const auto id = AttachProperty(parts[1], req.body, &error);
    if (!id) return HttpResponse::Error(400, JsonEscape(error));
    std::ostringstream out;
    out << "{\"tenant\":\"" << JsonEscape(parts[1]) << "\",\"id\":" << *id
        << "}\n";
    return {201, "application/json", out.str()};
  }

  // DELETE /tenants/{name}/properties/{id}
  if (req.method == "DELETE" && parts.size() == 4 && parts[0] == "tenants" &&
      parts[2] == "properties") {
    char* end = nullptr;
    const unsigned long long id = std::strtoull(parts[3].c_str(), &end, 10);
    if (end == parts[3].c_str() || *end != '\0')
      return HttpResponse::Error(400, "bad property id '" + parts[3] + "'");
    std::string error;
    if (!DetachProperty(parts[1], static_cast<PropertyId>(id), &error))
      return HttpResponse::Error(404, JsonEscape(error));
    std::ostringstream out;
    out << "{\"detached\":" << id << "}\n";
    return HttpResponse::Json(out.str());
  }

  return HttpResponse::Error(404, "no route for " + req.method + " " +
                                      JsonEscape(req.path));
}

}  // namespace swmon
