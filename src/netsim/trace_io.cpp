#include "netsim/trace_io.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/byte_io.hpp"

namespace swmon {
namespace {

constexpr char kMagic[4] = {'S', 'W', 'M', 'T'};
// v1 wrote raw host-endian scalars (fwrite of each field); v2 routes every
// scalar through the byte_io little-endian writers so traces are portable
// across machines. The field-by-field layout is identical, so on a
// little-endian host a v1 file decodes with the v2 path.
constexpr std::uint32_t kVersion = 2;

/// Fixed-size prefix of one encoded event: type + time + packet_bytes +
/// presence mask. The variable tail is 8 bytes per set presence bit.
constexpr std::size_t kEventFixedBytes = 1 + 8 + 4 + 8;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

bool SetError(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

/// Decodes one event from `r`. Returns kEvent/kNeedMore/kCorrupt exactly
/// like the incremental decoder — LoadTrace treats kNeedMore as truncation.
TraceEventDecoder::Result DecodeOneEvent(ByteReader& r, DataplaneEvent& out,
                                         std::string* error) {
  using Result = TraceEventDecoder::Result;
  if (r.remaining() < kEventFixedBytes) return Result::kNeedMore;
  const std::uint8_t type = r.ReadU8();
  const std::uint64_t time_ns = r.ReadU64LE();
  const std::uint32_t packet_bytes = r.ReadU32LE();
  const std::uint64_t presence = r.ReadU64LE();
  if (type > static_cast<std::uint8_t>(DataplaneEventType::kLinkStatus)) {
    SetError(error, "corrupt event type");
    return Result::kCorrupt;
  }
  if (presence >> kNumFieldIds) {
    SetError(error, "corrupt presence mask");
    return Result::kCorrupt;
  }
  const std::size_t n_fields =
      static_cast<std::size_t>(std::popcount(presence));
  if (r.remaining() < n_fields * 8) return Result::kNeedMore;
  out = DataplaneEvent{};
  out.type = static_cast<DataplaneEventType>(type);
  out.time = SimTime::FromNanos(static_cast<std::int64_t>(time_ns));
  out.packet_bytes = packet_bytes;
  for (std::size_t fi = 0; fi < kNumFieldIds; ++fi) {
    if (!(presence >> fi & 1)) continue;
    out.fields.Set(static_cast<FieldId>(fi), r.ReadU64LE());
  }
  return Result::kEvent;
}

void WriteHeader(ByteWriter& w, std::uint64_t count) {
  w.WriteBytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), 4));
  w.WriteU32LE(kVersion);
  w.WriteU64LE(count);
}

}  // namespace

void EncodeTraceEvent(ByteWriter& w, const DataplaneEvent& ev) {
  w.WriteU8(static_cast<std::uint8_t>(ev.type));
  w.WriteU64LE(static_cast<std::uint64_t>(ev.time.nanos()));
  w.WriteU32LE(ev.packet_bytes);
  w.WriteU64LE(ev.fields.presence_mask());
  for (std::size_t i = 0; i < kNumFieldIds; ++i) {
    const auto id = static_cast<FieldId>(i);
    if (ev.fields.Has(id)) w.WriteU64LE(ev.fields.GetUnchecked(id));
  }
}

// --------------------------------------------------- TraceEventDecoder

void TraceEventDecoder::Feed(const std::uint8_t* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

TraceEventDecoder::Result TraceEventDecoder::Next(DataplaneEvent& out) {
  if (corrupt_) return Result::kCorrupt;
  ByteReader r(std::span<const std::uint8_t>(buf_.data() + pos_,
                                             buf_.size() - pos_));
  const Result res = DecodeOneEvent(r, out, &error_);
  if (res == Result::kCorrupt) {
    corrupt_ = true;
    return res;
  }
  if (res == Result::kEvent) {
    pos_ += r.position();
    ++events_decoded_;
    // Drop the consumed prefix once it dominates the buffer, so a
    // long-lived stream never accretes decoded bytes (the daemon's
    // resident path runs through here for every ingested event).
    if (pos_ > (1u << 16) && pos_ * 2 > buf_.size()) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
      pos_ = 0;
    }
  }
  return res;
}

// ---------------------------------------------------- TraceFileWriter

bool TraceFileWriter::Open(const std::string& path, std::string* error) {
  Close();
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_) return SetError(error, "cannot open " + path + " for writing");
  count_ = 0;
  ByteWriter header;
  WriteHeader(header, 0);
  if (std::fwrite(header.bytes().data(), 1, header.size(), file_) !=
      header.size()) {
    Close();
    return SetError(error, "header write failed");
  }
  std::fflush(file_);
  return true;
}

void TraceFileWriter::Append(const DataplaneEvent& ev) {
  EncodeTraceEvent(pending_, ev);
  ++count_;
}

bool TraceFileWriter::Flush(std::string* error) {
  if (!file_) return SetError(error, "writer is closed");
  const auto& buf = pending_.bytes();
  if (!buf.empty() &&
      std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size())
    return SetError(error, "trace write failed");
  pending_.Take();  // reset the pending buffer
  // Patch the header count so the file decodes as a complete trace at
  // every flush point.
  if (std::fseek(file_, 8, SEEK_SET) != 0)
    return SetError(error, "seek failed");
  ByteWriter count;
  count.WriteU64LE(count_);
  if (std::fwrite(count.bytes().data(), 1, 8, file_) != 8)
    return SetError(error, "count patch failed");
  if (std::fseek(file_, 0, SEEK_END) != 0)
    return SetError(error, "seek failed");
  std::fflush(file_);
  return true;
}

void TraceFileWriter::Close() {
  if (!file_) return;
  Flush();
  std::fclose(file_);
  file_ = nullptr;
}

// ------------------------------------------------- whole-file save/load

bool SaveTrace(const TraceRecorder& trace, const std::string& path,
               std::string* error) {
  ByteWriter w;
  WriteHeader(w, static_cast<std::uint64_t>(trace.size()));
  for (const DataplaneEvent& ev : trace.events()) EncodeTraceEvent(w, ev);

  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return SetError(error, "cannot open " + path + " for writing");
  const auto& buf = w.bytes();
  if (std::fwrite(buf.data(), 1, buf.size(), f.get()) != buf.size())
    return SetError(error, "trace write failed");
  return true;
}

bool LoadTrace(const std::string& path, TraceRecorder& out,
               std::string* error) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return SetError(error, "cannot open " + path);
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f.get())) > 0)
    buf.insert(buf.end(), chunk, chunk + n);

  ByteReader r(buf);
  char magic[4];
  r.ReadBytes(reinterpret_cast<std::uint8_t*>(magic), 4);
  if (!r.ok() || std::memcmp(magic, kMagic, 4) != 0)
    return SetError(error, path + " is not a swmon trace");
  const std::uint32_t version = r.ReadU32LE();
  if (!r.ok() || version == 0 || version > kVersion)
    return SetError(error, "unsupported trace version");
  if (version == 1 && std::endian::native != std::endian::little) {
    // v1 scalars are host-endian from the writing machine; on a big-endian
    // reader they cannot be decoded reliably. Re-record or convert on a
    // little-endian host (which reads them via the v2 path below).
    return SetError(error,
                    "trace version 1 is host-endian and this host is "
                    "big-endian; re-save as version 2");
  }
  const std::uint64_t count = r.ReadU64LE();
  if (!r.ok()) return SetError(error, "truncated header");

  for (std::uint64_t i = 0; i < count; ++i) {
    DataplaneEvent ev;
    std::string decode_error;
    switch (DecodeOneEvent(r, ev, &decode_error)) {
      case TraceEventDecoder::Result::kEvent:
        out.OnDataplaneEvent(ev);
        break;
      case TraceEventDecoder::Result::kNeedMore:
        return SetError(error, "truncated event");
      case TraceEventDecoder::Result::kCorrupt:
        return SetError(error, decode_error);
    }
  }
  return true;
}

}  // namespace swmon
