#include "netsim/trace_io.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/byte_io.hpp"

namespace swmon {
namespace {

constexpr char kMagic[4] = {'S', 'W', 'M', 'T'};
// v1 wrote raw host-endian scalars (fwrite of each field); v2 routes every
// scalar through the byte_io little-endian writers so traces are portable
// across machines. The field-by-field layout is identical, so on a
// little-endian host a v1 file decodes with the v2 path.
constexpr std::uint32_t kVersion = 2;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

bool SetError(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

}  // namespace

bool SaveTrace(const TraceRecorder& trace, const std::string& path,
               std::string* error) {
  ByteWriter w;
  w.WriteBytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), 4));
  w.WriteU32LE(kVersion);
  w.WriteU64LE(static_cast<std::uint64_t>(trace.size()));
  for (const DataplaneEvent& ev : trace.events()) {
    w.WriteU8(static_cast<std::uint8_t>(ev.type));
    w.WriteU64LE(static_cast<std::uint64_t>(ev.time.nanos()));
    w.WriteU32LE(ev.packet_bytes);
    w.WriteU64LE(ev.fields.presence_mask());
    for (std::size_t i = 0; i < kNumFieldIds; ++i) {
      const auto id = static_cast<FieldId>(i);
      if (ev.fields.Has(id)) w.WriteU64LE(ev.fields.GetUnchecked(id));
    }
  }

  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return SetError(error, "cannot open " + path + " for writing");
  const auto& buf = w.bytes();
  if (std::fwrite(buf.data(), 1, buf.size(), f.get()) != buf.size())
    return SetError(error, "trace write failed");
  return true;
}

bool LoadTrace(const std::string& path, TraceRecorder& out,
               std::string* error) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return SetError(error, "cannot open " + path);
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f.get())) > 0)
    buf.insert(buf.end(), chunk, chunk + n);

  ByteReader r(buf);
  char magic[4];
  r.ReadBytes(reinterpret_cast<std::uint8_t*>(magic), 4);
  if (!r.ok() || std::memcmp(magic, kMagic, 4) != 0)
    return SetError(error, path + " is not a swmon trace");
  const std::uint32_t version = r.ReadU32LE();
  if (!r.ok() || version == 0 || version > kVersion)
    return SetError(error, "unsupported trace version");
  if (version == 1 && std::endian::native != std::endian::little) {
    // v1 scalars are host-endian from the writing machine; on a big-endian
    // reader they cannot be decoded reliably. Re-record or convert on a
    // little-endian host (which reads them via the v2 path below).
    return SetError(error,
                    "trace version 1 is host-endian and this host is "
                    "big-endian; re-save as version 2");
  }
  const std::uint64_t count = r.ReadU64LE();
  if (!r.ok()) return SetError(error, "truncated header");

  for (std::uint64_t i = 0; i < count; ++i) {
    DataplaneEvent ev;
    const std::uint8_t type = r.ReadU8();
    const std::uint64_t time_ns = r.ReadU64LE();
    ev.packet_bytes = r.ReadU32LE();
    const std::uint64_t presence = r.ReadU64LE();
    if (!r.ok()) return SetError(error, "truncated event");
    if (type > static_cast<std::uint8_t>(DataplaneEventType::kLinkStatus))
      return SetError(error, "corrupt event type");
    ev.type = static_cast<DataplaneEventType>(type);
    ev.time = SimTime::FromNanos(static_cast<std::int64_t>(time_ns));
    if (presence >> kNumFieldIds)
      return SetError(error, "corrupt presence mask");
    for (std::size_t fi = 0; fi < kNumFieldIds; ++fi) {
      if (!(presence >> fi & 1)) continue;
      const std::uint64_t value = r.ReadU64LE();
      if (!r.ok()) return SetError(error, "truncated field value");
      ev.fields.Set(static_cast<FieldId>(fi), value);
    }
    out.OnDataplaneEvent(ev);
  }
  return true;
}

}  // namespace swmon
