#include "netsim/trace_io.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

namespace swmon {
namespace {

constexpr char kMagic[4] = {'S', 'W', 'M', 'T'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

bool SetError(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

template <typename T>
bool WriteScalar(std::FILE* f, T v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

template <typename T>
bool ReadScalar(std::FILE* f, T& v) {
  return std::fread(&v, sizeof(v), 1, f) == 1;
}

}  // namespace

bool SaveTrace(const TraceRecorder& trace, const std::string& path,
               std::string* error) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return SetError(error, "cannot open " + path + " for writing");
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4 ||
      !WriteScalar(f.get(), kVersion) ||
      !WriteScalar(f.get(), static_cast<std::uint64_t>(trace.size()))) {
    return SetError(error, "header write failed");
  }
  for (const DataplaneEvent& ev : trace.events()) {
    if (!WriteScalar(f.get(), static_cast<std::uint8_t>(ev.type)) ||
        !WriteScalar(f.get(), ev.time.nanos()) ||
        !WriteScalar(f.get(), ev.packet_bytes) ||
        !WriteScalar(f.get(), ev.fields.presence_mask())) {
      return SetError(error, "event write failed");
    }
    for (std::size_t i = 0; i < kNumFieldIds; ++i) {
      const auto id = static_cast<FieldId>(i);
      if (!ev.fields.Has(id)) continue;
      if (!WriteScalar(f.get(), ev.fields.GetUnchecked(id)))
        return SetError(error, "event write failed");
    }
  }
  return true;
}

bool LoadTrace(const std::string& path, TraceRecorder& out,
               std::string* error) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return SetError(error, "cannot open " + path);
  char magic[4];
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return SetError(error, path + " is not a swmon trace");
  }
  if (!ReadScalar(f.get(), version) || version != kVersion)
    return SetError(error, "unsupported trace version");
  if (!ReadScalar(f.get(), count))
    return SetError(error, "truncated header");

  for (std::uint64_t n = 0; n < count; ++n) {
    std::uint8_t type;
    std::int64_t time_ns;
    DataplaneEvent ev;
    std::uint64_t presence;
    if (!ReadScalar(f.get(), type) || !ReadScalar(f.get(), time_ns) ||
        !ReadScalar(f.get(), ev.packet_bytes) ||
        !ReadScalar(f.get(), presence)) {
      return SetError(error, "truncated event");
    }
    if (type > static_cast<std::uint8_t>(DataplaneEventType::kLinkStatus))
      return SetError(error, "corrupt event type");
    ev.type = static_cast<DataplaneEventType>(type);
    ev.time = SimTime::FromNanos(time_ns);
    if (presence >> kNumFieldIds)
      return SetError(error, "corrupt presence mask");
    for (std::size_t i = 0; i < kNumFieldIds; ++i) {
      if (!(presence >> i & 1)) continue;
      std::uint64_t value;
      if (!ReadScalar(f.get(), value))
        return SetError(error, "truncated field value");
      ev.fields.Set(static_cast<FieldId>(i), value);
    }
    out.OnDataplaneEvent(ev);
  }
  return true;
}

}  // namespace swmon
