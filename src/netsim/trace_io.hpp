// Trace persistence: save/load recorded dataplane event streams.
//
// Enables the offline workflow the paper's provenance discussion gestures
// at (NetSight-style "postcards" analyzed after the fact): record a
// switch's event stream once, then run any property over it later —
// `examples/trace_replay` is the end-to-end tool.
//
// Format v2 (explicitly little-endian via common/byte_io, versioned —
// see docs/TRACE_FORMAT.md):
//   magic "SWMT" | u32 version | u64 event_count
//   per event: u8 type | u64 time_ns (two's-complement i64) |
//              u32 packet_bytes | u64 presence_mask |
//              u64 value per set bit (ascending FieldId)
// v1 files (raw host-endian scalars, same layout) are still readable on
// little-endian hosts; big-endian hosts get a clear error for v1.
#pragma once

#include <string>

#include "netsim/trace.hpp"

namespace swmon {

/// Serializes the trace; returns false (and sets errno-ish message) on I/O
/// failure.
bool SaveTrace(const TraceRecorder& trace, const std::string& path,
               std::string* error = nullptr);

/// Loads a trace written by SaveTrace. Returns false on I/O error, bad
/// magic, unsupported version, or truncation.
bool LoadTrace(const std::string& path, TraceRecorder& out,
               std::string* error = nullptr);

}  // namespace swmon
