// Trace persistence: save/load recorded dataplane event streams.
//
// Enables the offline workflow the paper's provenance discussion gestures
// at (NetSight-style "postcards" analyzed after the fact): record a
// switch's event stream once, then run any property over it later —
// `examples/trace_replay` is the end-to-end tool.
//
// Format v2 (explicitly little-endian via common/byte_io, versioned —
// see docs/TRACE_FORMAT.md):
//   magic "SWMT" | u32 version | u64 event_count
//   per event: u8 type | u64 time_ns (two's-complement i64) |
//              u32 packet_bytes | u64 presence_mask |
//              u64 value per set bit (ascending FieldId)
// v1 files (raw host-endian scalars, same layout) are still readable on
// little-endian hosts; big-endian hosts get a clear error for v1.
//
// Live streams reuse the same per-event wire encoding:
//   * TraceEventDecoder decodes events incrementally from arbitrary byte
//     chunks — the daemon's trace-file tailer and socket ingestion source
//     (src/daemon/event_source) both sit on it, so `cat x.swmt | nc` into
//     swmond's socket just works.
//   * TraceFileWriter appends events to a growing v2 file, patching the
//     header count on every Flush so the file is loadable mid-growth.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/byte_io.hpp"
#include "netsim/trace.hpp"

namespace swmon {

/// 16-byte v2 file/stream header: magic, version, event count.
inline constexpr std::size_t kTraceHeaderBytes = 16;

/// Appends one event's v2 wire encoding to `w` (everything after the file
/// header — SaveTrace, TraceFileWriter, and socket clients all emit this).
void EncodeTraceEvent(ByteWriter& w, const DataplaneEvent& ev);

/// Incremental decoder for the v2 per-event wire encoding. Feed() byte
/// chunks of any size (a tailing read, a socket recv); Next() yields each
/// complete event as soon as its last byte has arrived. Header bytes are
/// the caller's concern — feed only the event stream.
class TraceEventDecoder {
 public:
  enum class Result : std::uint8_t {
    kEvent,     // `out` holds the next event
    kNeedMore,  // pending bytes are a proper prefix of an event
    kCorrupt,   // stream is invalid; error() says why. Terminal.
  };

  /// Appends raw bytes to the pending buffer.
  void Feed(const std::uint8_t* data, std::size_t n);

  /// Tries to decode one event from the pending bytes.
  Result Next(DataplaneEvent& out);

  const std::string& error() const { return error_; }
  std::size_t pending_bytes() const { return buf_.size() - pos_; }
  std::uint64_t events_decoded() const { return events_decoded_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
  std::uint64_t events_decoded_ = 0;
  bool corrupt_ = false;
  std::string error_;
};

/// Streaming writer for a growing v2 trace file — the producer side of the
/// daemon's tailer source. Open() writes the header with count 0; Append()
/// buffers one event; Flush() writes buffered events and patches the header
/// count, so readers (LoadTrace or a tailing TraceEventDecoder) always see
/// a consistent prefix.
class TraceFileWriter {
 public:
  TraceFileWriter() = default;
  ~TraceFileWriter() { Close(); }
  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  bool Open(const std::string& path, std::string* error = nullptr);
  bool is_open() const { return file_ != nullptr; }
  void Append(const DataplaneEvent& ev);
  /// Writes buffered events + patched count to disk (fflush included).
  bool Flush(std::string* error = nullptr);
  /// Flush + close. Safe to call twice.
  void Close();
  std::uint64_t events_written() const { return count_; }

 private:
  std::FILE* file_ = nullptr;
  ByteWriter pending_;
  std::uint64_t count_ = 0;
};

/// Serializes the trace; returns false (and sets errno-ish message) on I/O
/// failure.
bool SaveTrace(const TraceRecorder& trace, const std::string& path,
               std::string* error = nullptr);

/// Loads a trace written by SaveTrace. Returns false on I/O error, bad
/// magic, unsupported version, or truncation.
bool LoadTrace(const std::string& path, TraceRecorder& out,
               std::string* error = nullptr);

}  // namespace swmon
