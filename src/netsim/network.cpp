#include "netsim/network.hpp"

#include "common/assert.hpp"

namespace swmon {

SoftSwitch& Network::AddSwitch(std::uint32_t switch_id,
                               std::uint32_t num_ports) {
  SWMON_ASSERT_MSG(!switches_.contains(switch_id), "duplicate switch id");
  auto sw = std::make_unique<SoftSwitch>(switch_id, num_ports, queue_, params_);
  SoftSwitch* raw = sw.get();
  raw->SetTransmit([this, switch_id](PortId port, const Packet& pkt) {
    const auto it = port_hosts_.find({switch_id, port});
    if (it == port_hosts_.end()) return;  // unattached port: packet vanishes
    Host* host = it->second;
    const Duration latency = host_links_.at(host).latency;
    Packet copy = pkt;
    queue_.ScheduleAfter(latency, [this, host, copy = std::move(copy)] {
      ++host_deliveries_;
      host->Deliver(copy, queue_.now());
    });
  });
  switches_[switch_id] = std::move(sw);
  return *raw;
}

Host& Network::AddHost(std::string name, MacAddr mac, Ipv4Addr ip) {
  hosts_.push_back(std::make_unique<Host>(std::move(name), mac, ip));
  return *hosts_.back();
}

void Network::Attach(std::uint32_t switch_id, PortId port, Host& host,
                     Duration latency) {
  SWMON_ASSERT_MSG(switches_.contains(switch_id), "no such switch");
  SWMON_ASSERT_MSG(!port_hosts_.contains({switch_id, port}),
                   "port already attached");
  host_links_[&host] = Attachment{switch_id, port, latency};
  port_hosts_[{switch_id, port}] = &host;
}

void Network::SendFromHost(Host& host, Packet pkt, SimTime at) {
  const auto it = host_links_.find(&host);
  SWMON_ASSERT_MSG(it != host_links_.end(), "host not attached");
  const Attachment att = it->second;
  SoftSwitch* sw = switches_.at(att.switch_id).get();
  ++packets_injected_;
  queue_.ScheduleAt(at + att.latency,
                    [sw, port = att.port, pkt = std::move(pkt)]() mutable {
                      sw->ReceivePacket(port, std::move(pkt));
                    });
}

void Network::SetLinkState(std::uint32_t switch_id, PortId port, bool up,
                           SimTime at) {
  SoftSwitch* sw = switches_.at(switch_id).get();
  ++link_status_changes_;
  queue_.ScheduleAt(at, [sw, port, up] { sw->SetLinkStatus(port, up); });
}

SoftSwitch& Network::GetSwitch(std::uint32_t switch_id) {
  return *switches_.at(switch_id);
}

void Network::CollectInto(telemetry::Snapshot& snap) const {
  snap.SetCounter("netsim.network.packets_injected", packets_injected_);
  snap.SetCounter("netsim.network.host_deliveries", host_deliveries_);
  snap.SetCounter("netsim.network.link_status_changes", link_status_changes_);
  snap.SetGauge("netsim.network.pending_events",
                static_cast<std::int64_t>(queue_.pending()));
  for (const auto& [id, sw] : switches_) sw->CollectInto(snap);
}

telemetry::Snapshot Network::TelemetrySnapshot() const {
  telemetry::Snapshot snap;
  CollectInto(snap);
  return snap;
}

}  // namespace swmon
