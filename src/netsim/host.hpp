// Simulated end hosts.
//
// A Host is a named endpoint with a MAC and IPv4 address. It records every
// delivered packet (tests assert on these) and can run an arbitrary receive
// callback to model protocol agents (e.g. a DHCP client continuing its
// handshake, an FTP peer opening the data connection).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "packet/addr.hpp"
#include "packet/packet.hpp"

namespace swmon {

class Host {
 public:
  Host(std::string name, MacAddr mac, Ipv4Addr ip)
      : name_(std::move(name)), mac_(mac), ip_(ip) {}

  const std::string& name() const { return name_; }
  MacAddr mac() const { return mac_; }
  Ipv4Addr ip() const { return ip_; }

  using ReceiveFn = std::function<void(Host&, const Packet&, SimTime)>;
  void SetReceiver(ReceiveFn fn) { receiver_ = std::move(fn); }

  /// Called by the network when a packet reaches this host.
  void Deliver(const Packet& pkt, SimTime at) {
    ++received_count_;
    if (keep_packets_) received_.push_back(pkt);
    if (receiver_) receiver_(*this, pkt, at);
  }

  std::uint64_t received_count() const { return received_count_; }
  const std::vector<Packet>& received() const { return received_; }
  void set_keep_packets(bool keep) { keep_packets_ = keep; }
  void ClearReceived() {
    received_.clear();
    received_count_ = 0;
  }

 private:
  std::string name_;
  MacAddr mac_;
  Ipv4Addr ip_;
  ReceiveFn receiver_;
  std::vector<Packet> received_;
  std::uint64_t received_count_ = 0;
  bool keep_packets_ = true;
};

}  // namespace swmon
