// The simulated network: switches, hosts, and the links between them.
//
// Network owns the event queue and the wiring. Host->switch and
// switch->host deliveries traverse links with configurable latency; all
// processing is driven by EventQueue::RunAll/RunUntil, so a whole
// experiment is a deterministic function of its seed.
//
// The paper's scope is single-switch properties, so the canonical topology
// is one switch with N hosts, but multiple switches are supported (each
// emits its own kSwitchId metadata).
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "dataplane/switch.hpp"
#include "event/event_queue.hpp"
#include "netsim/host.hpp"

namespace swmon {

class Network {
 public:
  explicit Network(CostParams params = {}) : params_(params) {}

  EventQueue& queue() { return queue_; }
  SimTime now() const { return queue_.now(); }

  /// Creates a switch with `num_ports` ports.
  SoftSwitch& AddSwitch(std::uint32_t switch_id, std::uint32_t num_ports);

  /// Creates a host (owned by the network).
  Host& AddHost(std::string name, MacAddr mac, Ipv4Addr ip);

  /// Wires `host` to `port` of switch `switch_id` with the given one-way
  /// link latency.
  void Attach(std::uint32_t switch_id, PortId port, Host& host,
              Duration latency = Duration::Micros(5));

  /// Schedules `pkt` to leave `host` at `at` (must not be in the past);
  /// it arrives at the attached switch after the link latency.
  void SendFromHost(Host& host, Packet pkt, SimTime at);

  /// Takes the host's access link down/up at time `at` (out-of-band event).
  void SetLinkState(std::uint32_t switch_id, PortId port, bool up, SimTime at);

  SoftSwitch& GetSwitch(std::uint32_t switch_id);

  /// Runs the simulation to completion (or `limit` events).
  std::size_t Run(std::size_t limit = SIZE_MAX) { return queue_.RunAll(limit); }
  std::size_t RunUntil(SimTime t) { return queue_.RunUntil(t); }

  /// Publishes `netsim.network.{packets_injected,host_deliveries,
  /// link_status_changes}` counters and the `pending_events` gauge, plus
  /// every switch's `dataplane.switch.<id>.*` counters.
  void CollectInto(telemetry::Snapshot& snap) const;
  telemetry::Snapshot TelemetrySnapshot() const;

 private:
  struct Attachment {
    std::uint32_t switch_id;
    PortId port;
    Duration latency;
  };

  CostParams params_;
  EventQueue queue_;
  std::map<std::uint32_t, std::unique_ptr<SoftSwitch>> switches_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::map<Host*, Attachment> host_links_;
  std::map<std::pair<std::uint32_t, PortId>, Host*> port_hosts_;
  std::uint64_t packets_injected_ = 0;
  std::uint64_t host_deliveries_ = 0;
  std::uint64_t link_status_changes_ = 0;
};

}  // namespace swmon
