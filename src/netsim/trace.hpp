// Event trace recording and replay.
//
// A TraceRecorder captures every dataplane event a switch emits; recorded
// traces can be replayed into monitor engines offline. Benches use this to
// separate workload generation (simulated once) from monitor execution
// (measured many times), and the external-monitoring experiment (E6) uses
// recorded traffic volume as "bytes an off-switch monitor must receive".
#pragma once

#include <vector>

#include "dataplane/switch.hpp"

namespace swmon {

class TraceRecorder : public DataplaneObserver {
 public:
  void OnDataplaneEvent(const DataplaneEvent& event) override {
    events_.push_back(event);
  }

  const std::vector<DataplaneEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

  /// Feeds the recorded trace into `observer` in order.
  void ReplayInto(DataplaneObserver& observer) const {
    for (const auto& ev : events_) observer.OnDataplaneEvent(ev);
  }

  std::size_t CountType(DataplaneEventType t) const {
    std::size_t n = 0;
    for (const auto& ev : events_)
      if (ev.type == t) ++n;
    return n;
  }

 private:
  std::vector<DataplaneEvent> events_;
};

}  // namespace swmon
