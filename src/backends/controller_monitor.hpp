// The external-monitoring baseline (paper Sec 1, experiment E6).
//
// "Monitoring the necessary packets, rather than only controller messages,
// quickly becomes expensive to do externally": an off-switch monitor must
// receive a copy of every packet that could advance or violate a property.
// ControllerMonitor models that: every dataplane event is mirrored over the
// control channel (bytes counted), and the reference engine processes it
// after half a controller round trip — so detection also lags.
//
// Contrast with an on-switch monitor, whose control-channel traffic is just
// the violation notifications.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "monitor/engine.hpp"

namespace swmon {

class ControllerMonitor : public DataplaneObserver {
 public:
  ControllerMonitor(Property property, const CostParams& params,
                    MonitorConfig config = {})
      : engine_(std::make_unique<MonitorEngine>(std::move(property), config)),
        params_(params) {}

  void OnDataplaneEvent(const DataplaneEvent& event) override {
    ++events_mirrored_;
    bytes_mirrored_ += event.packet_bytes;
    // The copy reaches the monitor one half-RTT later.
    DataplaneEvent delayed = event;
    delayed.time = event.time + params_.controller_rtt / 2;
    engine_->ProcessEvent(delayed);
  }

  void AdvanceTime(SimTime now) {
    engine_->AdvanceTime(now + params_.controller_rtt / 2);
  }

  const MonitorEngine& engine() const { return *engine_; }
  const std::vector<Violation>& violations() const {
    return engine_->violations();
  }

  /// Publishes `backend.controller.<name>.{events_mirrored,bytes_mirrored}`
  /// counters plus the wrapped engine's `monitor.engine.<name>.*` family.
  void CollectInto(telemetry::Snapshot& snap, std::string_view name) const {
    std::string prefix = "backend.controller.";
    prefix.append(name);
    prefix += '.';
    snap.SetCounter(prefix + "events_mirrored", events_mirrored_);
    snap.SetCounter(prefix + "bytes_mirrored", bytes_mirrored_);
    engine_->CollectInto(snap, name);
  }
  telemetry::Snapshot TelemetrySnapshot(std::string_view name) const {
    telemetry::Snapshot snap;
    CollectInto(snap, name);
    return snap;
  }

  /// DEPRECATED shims (one PR): read via CollectInto / telemetry::Snapshot.
  [[deprecated("query via telemetry::Snapshot")]]
  std::uint64_t events_mirrored() const {
    return events_mirrored_;
  }
  [[deprecated("query via telemetry::Snapshot")]]
  std::uint64_t bytes_mirrored() const {
    return bytes_mirrored_;
  }

 private:
  std::unique_ptr<MonitorEngine> engine_;
  CostParams params_;
  std::uint64_t events_mirrored_ = 0;
  std::uint64_t bytes_mirrored_ = 0;
};

}  // namespace swmon
