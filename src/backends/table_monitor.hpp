// TableMonitor — Varanus's actual compilation strategy, executed on real
// match-action tables.
//
// Where the FragmentExecutor runs the stage machine in C++ over an abstract
// StateStore, TableMonitor compiles a property the way the Varanus
// prototype compiled queries onto Open vSwitch: every live instance is an
// OpenFlow TABLE whose ENTRIES encode the instance's next observation with
// the bound values baked into the matches, and advancing an instance is a
// *recursive learn* — the hit's continuation replaces the instance's
// entries with the next stage's.
//
// The encodings are the interesting part, because they show the paper's
// semantic features as TCAM idioms:
//
//   equality against a bound var   exact match on the remembered value
//   negative match (Feature 6)     negated match / a two-entry pair:
//     forbidden tuples             a higher-priority SHADOW entry matching
//                                  the forbidden tuple exactly (action:
//                                  nothing) above the ADVANCE entry
//   or-absent conditions           entry expansion over the validity bit
//                                  (one entry with the masked match, one
//                                  requiring the field absent)
//   obligations (Feature 4)        ABORT entries above the advance entries
//   windows (Feature 3)            the entries' hard timeouts
//   timeout actions (Feature 7)    the expiry continuation of a timeout-
//                                  stage instance fires the observation —
//                                  the custom OVS extension Varanus needed
//   multiple match (Feature 8)     every instance table is traversed, so
//                                  one event can advance many instances —
//                                  and the pipeline is as deep as the
//                                  instance count (Sec 3.3's complaint)
//
// Learns are applied inline (state is consistent; each one is still
// counted as a flow-mod for cost accounting) — the split-mode staleness
// story is measured on the FragmentExecutor path (E5). Equivalence with
// the reference engine across the catalog is asserted in
// tests/table_monitor_test.cpp.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "backends/backend.hpp"
#include "dataplane/flow_key.hpp"
#include "dataplane/flow_table.hpp"

namespace swmon {

class TableMonitor : public CompiledMonitor {
 public:
  /// `static_mode` bounds the pipeline to one table per stage (entries of
  /// all instances share it); otherwise one table per live instance.
  /// Multiple match requires dynamic mode (compile checks enforce it).
  /// `registry` is the uniform registry injection (see FragmentExecutor).
  TableMonitor(Property property, const CostParams& params, bool static_mode,
               ProvenanceLevel provenance = ProvenanceLevel::kLimited,
               telemetry::MetricsRegistry* registry = nullptr);

  void OnDataplaneEvent(const DataplaneEvent& event) override;
  void AdvanceTime(SimTime now) override;

  const std::vector<Violation>& violations() const override {
    return violations_;
  }
  const CostCounters& costs() const override { return costs_; }
  std::size_t PipelineDepth() const override;
  std::size_t live_instances() const override { return instances_.size(); }

  /// Shared families plus the `total_entries` gauge.
  void DescribeMetrics(telemetry::Snapshot& snap,
                       const std::string& prefix) const override;

  /// Flow entries currently installed across all monitor tables.
  std::size_t total_entries() const;

 private:
  // Entry cookies encode (instance id << 8 | kind).
  enum class HitKind : std::uint8_t {
    kAdvance = 1,
    kShadow = 2,  // forbidden-tuple exception: match and do nothing
    kAbort = 3,
    kCreate = 4,
  };
  static std::uint64_t Cookie(std::uint64_t id, HitKind kind) {
    return id << 8 | static_cast<std::uint64_t>(kind);
  }

  struct Instance {
    std::uint64_t id;
    std::uint32_t stage;
    SimTime deadline = SimTime::Infinity();
    std::uint32_t matches_toward_count = 0;
    std::vector<std::optional<std::uint64_t>> env;
    std::unique_ptr<FlowTable> table;  // dynamic mode only
  };

  FlowTable& TableOf(Instance& inst);
  /// Compiles `pattern` (+ the event-type pseudo-field) under `env` into
  /// one or more FlowEntry match sets; expansion covers or-absent
  /// conditions. Returns empty when a referenced var is unbound.
  std::vector<MatchSet> CompileMatches(
      const Pattern& pattern,
      const std::vector<std::optional<std::uint64_t>>& env) const;

  /// Installs the entries an instance needs to wait for `stage`.
  void InstallStage(Instance& inst, const DataplaneEvent* ev);
  void RemoveInstanceEntries(Instance& inst);
  void DestroyInstance(std::uint64_t id);
  void AdvanceInstance(Instance& inst, const DataplaneEvent* ev,
                       SimTime when);
  void ReportViolation(const Instance& inst, SimTime when,
                       const std::string& trigger);
  bool ApplyBindings(const Stage& stage, const DataplaneEvent& ev,
                     Instance& inst);
  Duration WindowOf(const Stage& completed, const DataplaneEvent* ev) const;
  void HandleExpiry(std::uint64_t id, SimTime deadline);

  Property property_;
  CostParams params_;
  bool static_mode_;
  ProvenanceLevel provenance_;

  FlowTable creation_table_;                 // stage-0 entries (static)
  std::vector<FlowTable> stage_tables_;      // static mode: one per stage
  std::unordered_map<std::uint64_t, Instance> instances_;
  std::unordered_map<FlowKey, std::uint64_t, FlowKeyHash> dedup_;
  std::unordered_set<FlowKey, FlowKeyHash> suppressed_;

  CostCounters costs_;
  telemetry::Histogram* lookup_hist_ = nullptr;
  std::vector<Violation> violations_;
  SimTime now_ = SimTime::Zero();
  std::uint64_t next_id_ = 1;
  std::uint64_t rr_counter_ = 0;
};

}  // namespace swmon
