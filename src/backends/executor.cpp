#include "backends/executor.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace swmon {
namespace {

bool IsBound(const InstRecord& rec, VarId var) {
  return rec.env_present >> var & 1;
}

void SetVar(InstRecord& rec, VarId var, std::uint64_t value) {
  rec.env[var] = value;
  rec.env_present |= std::uint64_t{1} << var;
}

}  // namespace

FragmentExecutor::FragmentExecutor(Property property,
                                   std::unique_ptr<StateStore> store,
                                   const CostParams& params,
                                   ProvenanceLevel provenance,
                                   telemetry::MetricsRegistry* registry)
    : property_(std::move(property)),
      store_(std::move(store)),
      params_(params),
      provenance_(provenance) {
  const std::string err = property_.Validate();
  SWMON_ASSERT_MSG(err.empty(), err.c_str());
  SWMON_ASSERT(property_.num_vars() <= 64);

  if (registry != nullptr) {
    AttachTelemetry(registry, "backend." + property_.name);
    lookup_hist_ =
        &registry->histogram("backend." + property_.name + ".lookup_cost_ns");
  }

  link_vars_.resize(property_.num_stages());
  for (std::size_t k = 1; k < property_.num_stages(); ++k) {
    for (const Condition& c : property_.stages[k].pattern.conditions) {
      if (c.op == CmpOp::kEq && c.rhs.kind == Term::Kind::kVar &&
          c.mask == ~std::uint64_t{0}) {
        link_vars_[k].push_back(c.rhs.var);
      }
    }
    std::sort(link_vars_[k].begin(), link_vars_[k].end());
    link_vars_[k].erase(
        std::unique(link_vars_[k].begin(), link_vars_[k].end()),
        link_vars_[k].end());
  }
}

// ---------------------------------------------------------------- matching

bool FragmentExecutor::EvalCondition(const Condition& c, const FieldMap& fields,
                                     const InstRecord& rec) const {
  const auto lhs = fields.Get(c.field);
  if (!lhs) return c.allow_absent;
  std::uint64_t rhs;
  if (c.rhs.kind == Term::Kind::kConst) {
    rhs = c.rhs.constant;
  } else {
    if (!IsBound(rec, c.rhs.var)) return false;
    rhs = rec.env[c.rhs.var];
  }
  const bool eq = (*lhs & c.mask) == (rhs & c.mask);
  return c.op == CmpOp::kEq ? eq : !eq;
}

bool FragmentExecutor::MatchPattern(const Pattern& p, const DataplaneEvent& ev,
                                    const InstRecord& rec) const {
  if (p.event_type && *p.event_type != ev.type) return false;
  for (const Condition& c : p.conditions)
    if (!EvalCondition(c, ev.fields, rec)) return false;
  if (!p.forbidden.empty()) {
    bool all_hold = true;
    for (const Condition& c : p.forbidden) {
      if (!EvalCondition(c, ev.fields, rec)) {
        all_hold = false;
        break;
      }
    }
    if (all_hold) return false;
  }
  return true;
}

bool FragmentExecutor::ApplyBindings(const Stage& stage,
                                     const DataplaneEvent& ev,
                                     InstRecord& rec) {
  for (const Binding& b : stage.bindings) {
    if (b.kind == Binding::Kind::kField && !ev.fields.Has(b.field))
      return false;
    if (b.kind == Binding::Kind::kHashPort) {
      for (FieldId f : b.hash_inputs)
        if (!ev.fields.Has(f)) return false;
    }
  }
  if (stage.window_from_field && !ev.fields.Has(*stage.window_from_field))
    return false;
  for (const Binding& b : stage.bindings) {
    switch (b.kind) {
      case Binding::Kind::kField:
        SetVar(rec, b.var, ev.fields.GetUnchecked(b.field));
        break;
      case Binding::Kind::kHashPort:
        SetVar(rec, b.var,
               HashFieldsToRange(ev.fields, b.hash_inputs, b.modulus, b.base));
        break;
      case Binding::Kind::kRoundRobin:
        SetVar(rec, b.var, rr_counter_++ % b.modulus + b.base);
        break;
    }
  }
  return true;
}

// -------------------------------------------------------------------- keys

std::optional<FlowKey> FragmentExecutor::KeyFromEnv(const InstRecord& rec,
                                                    std::uint32_t stage) const {
  if (stage >= link_vars_.size() || link_vars_[stage].empty())
    return std::nullopt;
  FlowKey key;
  for (VarId v : link_vars_[stage]) {
    if (!IsBound(rec, v)) return std::nullopt;
    key.values.push_back(rec.env[v]);
  }
  return key;
}

std::optional<FlowKey> FragmentExecutor::KeyFromEvent(
    const Pattern& pattern, const DataplaneEvent& ev,
    std::uint32_t stage) const {
  if (stage >= link_vars_.size() || link_vars_[stage].empty())
    return std::nullopt;
  FlowKey key;
  for (VarId v : link_vars_[stage]) {
    // Field carrying var v according to this pattern's equalities.
    std::optional<std::uint64_t> value;
    for (const Condition& c : pattern.conditions) {
      if (c.op == CmpOp::kEq && c.rhs.kind == Term::Kind::kVar &&
          c.rhs.var == v && c.mask == ~std::uint64_t{0}) {
        value = ev.fields.Get(c.field);
        break;
      }
    }
    if (!value) return std::nullopt;
    key.values.push_back(*value);
  }
  return key;
}

// --------------------------------------------------------------- lifecycle

Duration FragmentExecutor::WindowOf(const Stage& completed,
                                    const DataplaneEvent* ev) const {
  if (completed.window_from_field && ev != nullptr) {
    return Duration::Seconds(static_cast<std::int64_t>(
        ev->fields.GetUnchecked(*completed.window_from_field)));
  }
  return completed.window;
}

void FragmentExecutor::ReportViolation(const InstRecord& rec, SimTime when,
                                       const std::string& trigger) {
  Violation v;
  v.property = property_.name;
  v.time = when;
  v.instance_id = rec.id;
  v.trigger_stage = trigger;
  if (provenance_ >= ProvenanceLevel::kLimited) {
    for (std::size_t i = 0; i < property_.vars.size(); ++i) {
      if (IsBound(rec, static_cast<VarId>(i)))
        v.bindings.emplace_back(property_.vars[i], rec.env[i]);
    }
  }
  violations_.push_back(std::move(v));
}

void FragmentExecutor::CommitAdvance(InstRecord rec, const DataplaneEvent* ev,
                                     SimTime when, bool was_stored) {
  const Stage& completed = property_.stages[rec.stage];
  ++rec.stage;
  rec.stage_matches = 0;
  if (rec.stage == property_.num_stages()) {
    if (was_stored) store_->Erase(rec.id, when);
    traversal_erased_.insert(rec.id);
    traversal_writes_.erase(rec.id);
    ReportViolation(rec, when, completed.label);
    return;
  }
  const Duration window = WindowOf(completed, ev);
  rec.deadline =
      window > Duration::Zero() ? when + window : SimTime::Infinity();
  const auto key = KeyFromEnv(rec, rec.stage);
  // Fresh instances were never stored: skip the no-op erase (on slow-path
  // stores it would occupy the flow-mod queue and delay the real install).
  if (was_stored) store_->Erase(rec.id, when);
  store_->Upsert(rec, key, when);
  // The updated record rides the pipeline for the rest of this traversal.
  traversal_erased_.insert(rec.id);
  traversal_writes_[rec.id] = {key, rec};
}

void FragmentExecutor::HandleExpired(const InstRecord& rec) {
  if (rec.stage < property_.num_stages() &&
      property_.stages[rec.stage].kind == StageKind::kTimeout) {
    // Feature 7: the expiry IS the observation (Varanus expiry action).
    // The sweep already removed the record — no erase needed.
    CommitAdvance(rec, nullptr, rec.deadline, /*was_stored=*/false);
  }
  // Otherwise the window lapsed: the attempt simply evaporates (already
  // removed by the sweep).
}

void FragmentExecutor::BeginTraversal(const DataplaneEvent& ev) {
  const std::uint64_t pid = ev.fields.Get(FieldId::kPacketId).value_or(0);
  if (pid == traversal_packet_id_ && pid != 0) return;  // same packet
  traversal_packet_id_ = pid;
  traversal_writes_.clear();
  traversal_erased_.clear();
}

std::vector<InstRecord> FragmentExecutor::Candidates(
    std::uint32_t stage, const std::optional<FlowKey>& key) {
  std::vector<InstRecord> recs = store_->Lookup(stage, key, now_);
  // Traversal metadata supersedes store contents for ids touched this
  // traversal.
  std::erase_if(recs, [&](const InstRecord& r) {
    return traversal_erased_.contains(r.id) ||
           traversal_writes_.contains(r.id);
  });
  for (const auto& [id, entry] : traversal_writes_) {
    const auto& [wkey, rec] = entry;
    if (rec.stage != stage) continue;
    if (rec.deadline <= now_) continue;
    if (key && wkey && !(*wkey == *key)) continue;
    recs.push_back(rec);
  }
  return recs;
}

void FragmentExecutor::AdvanceTime(SimTime now) {
  if (now <= now_) return;
  now_ = now;
  store_->CatchUp(now);
  auto expired = store_->TakeExpired(now);
  std::sort(expired.begin(), expired.end(),
            [](const InstRecord& a, const InstRecord& b) {
              if (a.deadline != b.deadline) return a.deadline < b.deadline;
              return a.id < b.id;
            });
  for (const auto& rec : expired) HandleExpired(rec);
}

// ------------------------------------------------------------- event path

void FragmentExecutor::OnDataplaneEvent(const DataplaneEvent& event) {
  AdvanceTime(event.time);
  now_ = std::max(now_, event.time);
  advanced_this_event_.clear();
  BeginTraversal(event);

  // The monitor pipeline is traversed once per event.
  ++store_->costs().packets;
  store_->costs().table_lookups += store_->PipelineDepth();
  const Duration lookup_cost =
      params_.table_lookup * static_cast<std::int64_t>(store_->PipelineDepth());
  store_->costs().processing_time += lookup_cost;
  if (lookup_hist_ != nullptr)
    lookup_hist_->Record(static_cast<std::uint64_t>(lookup_cost.nanos()));

  AbortPass(event);
  AdvancePass(event);
  CreatePass(event);
  SuppressorPass(event);
}

void FragmentExecutor::AbortPass(const DataplaneEvent& ev) {
  for (std::size_t k = 1; k < property_.num_stages(); ++k) {
    const Stage& st = property_.stages[k];
    if (st.aborts.empty()) continue;
    for (const Pattern& abort : st.aborts) {
      if (abort.event_type && *abort.event_type != ev.type) continue;
      // Candidate records: by the abort pattern's own link projection when
      // derivable, else enumeration (Varanus).
      std::optional<FlowKey> key;
      if (!link_vars_[k].empty()) {
        FlowKey k2;
        bool derivable = true;
        for (VarId v : link_vars_[k]) {
          std::optional<std::uint64_t> value;
          for (const Condition& c : abort.conditions) {
            if (c.op == CmpOp::kEq && c.rhs.kind == Term::Kind::kVar &&
                c.rhs.var == v && c.mask == ~std::uint64_t{0}) {
              value = ev.fields.Get(c.field);
              break;
            }
          }
          if (!value) {
            derivable = false;
            break;
          }
          k2.values.push_back(*value);
        }
        if (derivable) key = std::move(k2);
        else if (!store_->SupportsEnumeration()) continue;
      }
      for (const InstRecord& rec :
           Candidates(static_cast<std::uint32_t>(k), key)) {
        if (MatchPattern(abort, ev, rec)) {
          store_->Erase(rec.id, now_);
          traversal_erased_.insert(rec.id);
          traversal_writes_.erase(rec.id);
        }
      }
    }
  }
}

void FragmentExecutor::AdvancePass(const DataplaneEvent& ev) {
  for (std::size_t k = property_.num_stages(); k-- > 1;) {
    const Stage& st = property_.stages[k];
    if (st.kind != StageKind::kEvent) continue;
    if (st.pattern.event_type && *st.pattern.event_type != ev.type) continue;

    std::optional<FlowKey> key =
        KeyFromEvent(st.pattern, ev, static_cast<std::uint32_t>(k));
    if (!key && !link_vars_[k].empty() && !store_->SupportsEnumeration())
      continue;  // keyed store, underivable key: no candidates
    for (const InstRecord& rec : Candidates(static_cast<std::uint32_t>(k), key)) {
      if (advanced_this_event_.contains(rec.id)) continue;
      if (!MatchPattern(st.pattern, ev, rec)) continue;
      InstRecord next = rec;
      if (!ApplyBindings(st, ev, next)) continue;
      advanced_this_event_.insert(rec.id);
      if (++next.stage_matches < st.min_count) {
        // Quantitative stage: persist the incremented counter (one more
        // state write on the mechanism) without advancing.
        const auto rkey = KeyFromEnv(next, next.stage);
        store_->Upsert(next, rkey, now_);
        traversal_writes_[next.id] = {rkey, next};
        continue;
      }
      CommitAdvance(std::move(next), &ev, now_, /*was_stored=*/true);
    }
  }
}

void FragmentExecutor::CreatePass(const DataplaneEvent& ev) {
  const Stage& st0 = property_.stages[0];
  InstRecord probe;
  probe.env.resize(property_.num_vars());
  if (!MatchPattern(st0.pattern, ev, probe)) return;

  if (!property_.suppression_key_fields.empty()) {
    if (const auto key =
            ProjectKey(ev.fields, property_.suppression_key_fields);
        key && suppressed_.contains(*key)) {
      return;
    }
  }
  if (!ApplyBindings(st0, ev, probe)) return;

  // Dedup/refresh: an equivalent attempt is one whose next-stage key equals
  // ours (exact for two-stage properties; multi-stage properties are
  // disambiguated by per-stage bindings such as packet ids). Stages with no
  // link key (multiple match) dedup by environment equality on enumerating
  // stores — without this, every matching packet would enqueue another
  // instance install and swamp the slow path.
  if (property_.num_stages() > 1) {
    probe.stage = 1;
    const auto key = KeyFromEnv(probe, 1);
    std::vector<InstRecord> existing;
    if (key) {
      existing = Candidates(1, key);
    } else if (store_->SupportsEnumeration()) {
      for (const InstRecord& rec : Candidates(1, std::nullopt)) {
        if (rec.env_present == probe.env_present && rec.env == probe.env)
          existing.push_back(rec);
      }
    }
    if (!existing.empty()) {
      if (st0.refresh_window_on_rematch) {
        const Duration window = WindowOf(st0, &ev);
        for (InstRecord rec : existing) {
          rec.deadline = window > Duration::Zero() ? now_ + window
                                                   : SimTime::Infinity();
          const auto rkey = KeyFromEnv(rec, rec.stage);
          store_->Upsert(rec, rkey, now_);  // refresh = state rewrite
          traversal_writes_[rec.id] = {rkey, rec};
        }
      }
      return;
    }
  }

  probe.id = next_id_++;
  probe.stage = 0;
  CommitAdvance(std::move(probe), &ev, now_, /*was_stored=*/false);
}

void FragmentExecutor::SuppressorPass(const DataplaneEvent& ev) {
  for (const Suppressor& sup : property_.suppressors) {
    InstRecord empty;
    empty.env.resize(property_.num_vars());
    if (!MatchPattern(sup.pattern, ev, empty)) continue;
    if (const auto key = ProjectKey(ev.fields, sup.key_fields)) {
      suppressed_.insert(*key);
      ++store_->costs().state_table_ops;  // remembering the key is state
    }
  }
}

void FragmentExecutor::DescribeMetrics(telemetry::Snapshot& snap,
                                       const std::string& prefix) const {
  CompiledMonitor::DescribeMetrics(snap, prefix);
  store_->DescribeMetrics(snap, prefix);
}

}  // namespace swmon
