// Mechanism-specific instance storage for compiled monitors.
//
// The FragmentExecutor (executor.hpp) runs a property's stage machine; a
// StateStore decides HOW partially-completed instances are stored and found
// — which is exactly where the Table-2 approaches differ:
//
//   OpenStateStore     per-flow state table, fast path, inline updates.
//   FastLearnStore     the same state machine but mutated through the
//                      slow path (OVS learn): reads see stale state until
//                      the flow-mod queue catches up — or, in inline mode,
//                      updates apply immediately but their latency is
//                      charged to packet processing (Feature 9's tradeoff).
//   P4RegisterStore    fixed-size register arrays indexed by a key hash
//                      with fingerprint validation; collisions overwrite
//                      (fast path, real register semantics).
//   VaranusStore       one match-action table per live instance: pipeline
//                      depth grows with instance count; mutations through
//                      the slow path; supports enumeration (multiple
//                      match) and expiry sweeps (timeout actions).
//   StaticVaranusStore one table per observation stage: constant depth,
//                      still slow-path mutations and expiry sweeps, but no
//                      enumeration (multiple match is gone — the paper's
//                      proposed tradeoff).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dataplane/cost_model.hpp"
#include "dataplane/flow_key.hpp"
#include "dataplane/flow_mod_queue.hpp"
#include "telemetry/snapshot.hpp"

namespace swmon {

/// One partially-completed violation attempt, as stored by a mechanism.
struct InstRecord {
  std::uint64_t id = 0;
  std::uint32_t stage = 0;  // next stage to match
  SimTime deadline = SimTime::Infinity();
  std::vector<std::uint64_t> env;
  std::uint64_t env_present = 0;  // bit i => env[i] is bound
  std::uint32_t stage_matches = 0;  // toward the stage's min_count
};

class StateStore {
 public:
  virtual ~StateStore() = default;

  /// Candidates at `stage` for an event whose link-field projection is
  /// `key`. nullopt key asks for ALL records at the stage (multiple
  /// match), which only enumerating stores support.
  virtual std::vector<InstRecord> Lookup(std::uint32_t stage,
                                         const std::optional<FlowKey>& key,
                                         SimTime now) = 0;

  /// Stores `rec` under `key` (the projection of rec.env over its stage's
  /// link variables). May be deferred on slow-path stores.
  virtual void Upsert(const InstRecord& rec,
                      const std::optional<FlowKey>& key, SimTime now) = 0;

  /// Removes the record. May be deferred on slow-path stores.
  virtual void Erase(std::uint64_t id, SimTime now) = 0;

  /// Applies pending slow-path mutations with completion time <= now.
  virtual void CatchUp(SimTime now) = 0;

  /// For expiry-sweep-capable stores: removes and returns records whose
  /// deadline has passed (the hook timeout actions need). Others: empty —
  /// their expired records are discarded lazily at Lookup.
  virtual std::vector<InstRecord> TakeExpired(SimTime now) = 0;

  virtual bool SupportsEnumeration() const = 0;
  virtual bool SupportsExpirySweep() const = 0;

  /// Match-action tables this store adds to the pipeline right now.
  virtual std::size_t PipelineDepth() const = 0;
  virtual std::size_t live() const = 0;

  CostCounters& costs() { return costs_; }
  const CostCounters& costs() const { return costs_; }

  /// Mechanism extras beyond the shared cost families — slow-path queue
  /// depth, register collisions, ... — published under `<prefix>.`; the
  /// base store has none. FragmentExecutor::DescribeMetrics appends these
  /// to the uniform CompiledMonitor families.
  virtual void DescribeMetrics(telemetry::Snapshot& snap,
                               const std::string& prefix) const {
    (void)snap, (void)prefix;
  }

 protected:
  CostCounters costs_;
};

// ---------------------------------------------------------------- OpenState

class OpenStateStore : public StateStore {
 public:
  explicit OpenStateStore(const CostParams& params) : params_(params) {}

  std::vector<InstRecord> Lookup(std::uint32_t stage,
                                 const std::optional<FlowKey>& key,
                                 SimTime now) override;
  void Upsert(const InstRecord& rec, const std::optional<FlowKey>& key,
              SimTime now) override;
  void Erase(std::uint64_t id, SimTime now) override;
  void CatchUp(SimTime) override {}
  std::vector<InstRecord> TakeExpired(SimTime) override { return {}; }
  bool SupportsEnumeration() const override { return false; }
  bool SupportsExpirySweep() const override { return false; }
  /// One XFSM stage: flow table + state table.
  std::size_t PipelineDepth() const override { return 2; }
  std::size_t live() const override { return by_key_.size(); }

 protected:
  CostParams params_;
  // The per-flow state machine: one cell per flow key.
  std::unordered_map<FlowKey, InstRecord, FlowKeyHash> by_key_;
  std::unordered_map<std::uint64_t, FlowKey> key_of_;
};

// --------------------------------------------------------- FAST (learn action)

class FastLearnStore : public OpenStateStore {
 public:
  FastLearnStore(const CostParams& params, bool inline_updates)
      : OpenStateStore(params), queue_(params), inline_(inline_updates) {}

  void Upsert(const InstRecord& rec, const std::optional<FlowKey>& key,
              SimTime now) override;
  void Erase(std::uint64_t id, SimTime now) override;
  void CatchUp(SimTime now) override { queue_.Advance(now); }

  void DescribeMetrics(telemetry::Snapshot& snap,
                       const std::string& prefix) const override {
    snap.SetGauge(prefix + ".pending_updates",
                  static_cast<std::int64_t>(queue_.pending()));
  }

  std::size_t pending_updates() const { return queue_.pending(); }

 private:
  FlowModQueue queue_;
  bool inline_;
};

// ------------------------------------------------------------- P4 registers

class P4RegisterStore : public StateStore {
 public:
  P4RegisterStore(const CostParams& params, std::size_t num_stages,
                  std::size_t slots_per_stage)
      : params_(params), stages_(num_stages) {
    for (auto& s : stages_) s.slots.resize(slots_per_stage);
  }

  std::vector<InstRecord> Lookup(std::uint32_t stage,
                                 const std::optional<FlowKey>& key,
                                 SimTime now) override;
  void Upsert(const InstRecord& rec, const std::optional<FlowKey>& key,
              SimTime now) override;
  void Erase(std::uint64_t id, SimTime now) override;
  void CatchUp(SimTime) override {}
  std::vector<InstRecord> TakeExpired(SimTime) override { return {}; }
  bool SupportsEnumeration() const override { return false; }
  bool SupportsExpirySweep() const override { return false; }
  /// One match-action stage per observation stage.
  std::size_t PipelineDepth() const override { return stages_.size(); }
  std::size_t live() const override;

  void DescribeMetrics(telemetry::Snapshot& snap,
                       const std::string& prefix) const override {
    snap.SetCounter(prefix + ".collisions", collisions_);
  }

  std::uint64_t collisions() const { return collisions_; }

 private:
  struct Slot {
    bool valid = false;
    std::uint64_t fingerprint = 0;
    InstRecord record;
  };
  struct StageArrays {
    std::vector<Slot> slots;
  };

  /// Register ops to read/write one record (stage + deadline + env words).
  std::uint64_t OpsPerRecord() const;

  CostParams params_;
  std::vector<StageArrays> stages_;
  std::uint64_t collisions_ = 0;
};

// ------------------------------------------------------------------ Varanus

class VaranusStore : public StateStore {
 public:
  VaranusStore(const CostParams& params, std::size_t num_stages,
               bool static_mode)
      : params_(params), queue_(params), num_stages_(num_stages),
        static_mode_(static_mode) {}

  std::vector<InstRecord> Lookup(std::uint32_t stage,
                                 const std::optional<FlowKey>& key,
                                 SimTime now) override;
  void Upsert(const InstRecord& rec, const std::optional<FlowKey>& key,
              SimTime now) override;
  void Erase(std::uint64_t id, SimTime now) override;
  void CatchUp(SimTime now) override { queue_.Advance(now); }
  std::vector<InstRecord> TakeExpired(SimTime now) override;
  bool SupportsEnumeration() const override { return !static_mode_; }
  bool SupportsExpirySweep() const override { return true; }

  /// Dynamic Varanus: one table per live instance (plus the creation
  /// table). Static Varanus: one table per observation stage.
  std::size_t PipelineDepth() const override {
    return static_mode_ ? num_stages_ : applied_.size() + 1;
  }
  std::size_t live() const override { return applied_.size(); }
  std::size_t pending_updates() const { return queue_.pending(); }

  void DescribeMetrics(telemetry::Snapshot& snap,
                       const std::string& prefix) const override {
    snap.SetGauge(prefix + ".pending_updates",
                  static_cast<std::int64_t>(queue_.pending()));
  }

 private:
  struct Cell {
    InstRecord record;
    std::optional<FlowKey> key;
  };

  CostParams params_;
  FlowModQueue queue_;
  std::size_t num_stages_;
  bool static_mode_;
  std::unordered_map<std::uint64_t, Cell> applied_;
};

}  // namespace swmon
