// Backends: models of the approaches compared in the paper's Table 2.
//
// Each backend answers two questions:
//
//   1. *Capability* (BackendInfo): the approach's row of Table 2 — state
//      mechanism, update datapath, processing mode, and per-dimension
//      support. bench_table2 renders the matrix from these.
//   2. *Compilation* (Compile): can THIS property be monitored with the
//      approach's mechanism? Compilation performs structural checks (state
//      scope consistency, parse depth, timeout-action support, multiple
//      match, ...) and either returns an executable CompiledMonitor built
//      on the approach's real state mechanism — OpenState tables, learn
//      actions through the slow path, P4 registers, Varanus per-instance
//      tables — or the list of features the approach cannot express. The
//      compile matrix over the full catalog is how we *verify* Table 2
//      rather than transcribe it.
//
// One deliberate idealization (documented in DESIGN.md): every compiled
// monitor observes the ideal switch's event stream (including egress and
// drop events). Targets' visibility gaps (e.g. OpenFlow dropping packets
// before the egress pipeline) are reported in BackendInfo and discussed in
// EXPERIMENTS.md, but not enforced during execution — enforcing them would
// make most cross-backend performance comparisons vacuous.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dataplane/cost_model.hpp"
#include "dataplane/switch.hpp"
#include "monitor/spec.hpp"
#include "monitor/violation.hpp"
#include "telemetry/metrics.hpp"

namespace swmon {

/// Tri-state for Table 2 cells: supported, precluded, or blank (not
/// applicable / target dependent / unclear), matching the paper's legend.
enum class Tri : std::uint8_t { kYes, kNo, kBlank };

const char* TriCell(Tri t);  // " ✓ " / " ✗ " / "   "

struct BackendInfo {
  std::string name;
  std::string state_mechanism;  // "State machine", "Flow registers", ...
  std::string update_datapath;  // "Fast path" / "Slow path" / "—"
  std::string processing_mode;  // "Inline" / "Split" / "" (target dep.)
  std::string field_access;     // "Fixed" / "Dynamic"

  Tri event_history = Tri::kBlank;
  Tri related_events = Tri::kBlank;  // identification of related events
  Tri negative_match = Tri::kBlank;
  Tri rule_timeouts = Tri::kBlank;
  Tri timeout_actions = Tri::kBlank;
  Tri symmetric_match = Tri::kBlank;
  Tri wandering_match = Tri::kBlank;
  Tri out_of_band = Tri::kBlank;
  Tri full_provenance = Tri::kBlank;
};

/// A property compiled onto one backend's mechanism: attach it to a switch
/// (or replay a trace into it) and read violations + mechanism costs.
class CompiledMonitor : public DataplaneObserver {
 public:
  ~CompiledMonitor() override;

  virtual void AdvanceTime(SimTime now) = 0;
  virtual const std::vector<Violation>& violations() const = 0;
  /// Mechanism cost totals: table lookups, state ops, register ops,
  /// flow-mods, and inline (latency-adding) processing time.
  virtual const CostCounters& costs() const = 0;
  /// Match-action tables the monitor adds to the switch pipeline right now
  /// (Sec 3.3: for Varanus this grows with live instances).
  virtual std::size_t PipelineDepth() const = 0;
  virtual std::size_t live_instances() const = 0;

  /// The uniform metrics surface every backend shares (replacing each
  /// backend's bespoke stats accessors): publishes `<prefix>.{packets,
  /// table_lookups,state_table_ops,register_ops,flow_mods,controller_msgs,
  /// processing_ns,violations}` counters plus the `pipeline_depth` and
  /// `live_instances` gauges. Overrides call the base, then add their
  /// mechanism's extras (e.g. `collisions`, `pending_updates`,
  /// `total_entries`) — so parity tests can diff two backends' snapshots
  /// generically.
  virtual void DescribeMetrics(telemetry::Snapshot& snap,
                               const std::string& prefix) const;

  telemetry::Snapshot TelemetrySnapshot(const std::string& prefix) const {
    telemetry::Snapshot snap;
    DescribeMetrics(snap, prefix);
    return snap;
  }

  /// Registers a snapshot-time collector publishing DescribeMetrics under
  /// `prefix`. Executors accept the registry at construction (the uniform
  /// registry-injection signature) and route it here. Pass nullptr to
  /// detach; the monitor detaches itself on destruction.
  void AttachTelemetry(telemetry::MetricsRegistry* registry,
                       std::string prefix);

 protected:
  telemetry::MetricsRegistry* registry_ = nullptr;
  std::string metric_prefix_;

 private:
  std::uint64_t collector_token_ = 0;
};

struct CompileResult {
  std::unique_ptr<CompiledMonitor> monitor;  // null when unsupported
  std::vector<std::string> unsupported;      // reasons, empty on success

  bool ok() const { return monitor != nullptr; }
};

class Backend {
 public:
  virtual ~Backend() = default;
  virtual BackendInfo info() const = 0;
  /// Compiles `property` onto this backend's mechanism. A non-null
  /// `registry` is injected into the compiled monitor (uniform across
  /// backends): it registers a DescribeMetrics collector under
  /// `backend.<property name>` and arms the per-table lookup-cost
  /// histogram `backend.<property name>.lookup_cost_ns`.
  virtual CompileResult Compile(
      const Property& property, const CostParams& params,
      telemetry::MetricsRegistry* registry = nullptr) const = 0;
};

/// All seven approaches, in Table 2's column order.
std::vector<std::unique_ptr<Backend>> AllBackends();

}  // namespace swmon
