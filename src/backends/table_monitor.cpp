#include "backends/table_monitor.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "monitor/features.hpp"

namespace swmon {
namespace {

constexpr std::uint32_t kAdvancePriority = 100;
constexpr std::uint32_t kShadowPriority = 200;
constexpr std::uint32_t kAbortPriority = 300;

}  // namespace

TableMonitor::TableMonitor(Property property, const CostParams& params,
                           bool static_mode, ProvenanceLevel provenance,
                           telemetry::MetricsRegistry* registry)
    : property_(std::move(property)),
      params_(params),
      static_mode_(static_mode),
      provenance_(provenance) {
  const std::string err = property_.Validate();
  SWMON_ASSERT_MSG(err.empty(), err.c_str());
  if (registry != nullptr) {
    AttachTelemetry(registry, "backend." + property_.name);
    lookup_hist_ =
        &registry->histogram("backend." + property_.name + ".lookup_cost_ns");
  }
  if (static_mode_) {
    SWMON_ASSERT_MSG(!AnalyzeFeatures(property_).multiple_match,
                     "static mode cannot host multiple-match properties "
                     "(Sec 3.3's tradeoff)");
    stage_tables_.resize(property_.num_stages());
  }

  // Stage-0 entries live in the creation table permanently.
  const Stage& st0 = property_.stages[0];
  std::vector<std::optional<std::uint64_t>> empty_env(property_.num_vars());
  for (MatchSet& m : CompileMatches(st0.pattern, empty_env)) {
    FlowEntry entry;
    entry.priority = kAdvancePriority;
    entry.match = std::move(m);
    entry.cookie = Cookie(0, HitKind::kCreate);
    creation_table_.Add(entry, now_);
    ++costs_.flow_mods;
  }
}

// ------------------------------------------------------------- compilation

std::vector<MatchSet> TableMonitor::CompileMatches(
    const Pattern& pattern,
    const std::vector<std::optional<std::uint64_t>>& env) const {
  MatchSet base;
  if (pattern.event_type) {
    base.Add(FieldMatch::Exact(FieldId::kEventType,
                               static_cast<std::uint64_t>(*pattern.event_type)));
  }
  std::vector<const Condition*> or_absent;
  auto resolve = [&](const Condition& c,
                     std::uint64_t& rhs) -> bool {  // false: unbound var
    if (c.rhs.kind == Term::Kind::kConst) {
      rhs = c.rhs.constant;
      return true;
    }
    if (!env[c.rhs.var]) return false;
    rhs = *env[c.rhs.var];
    return true;
  };
  for (const Condition& c : pattern.conditions) {
    std::uint64_t rhs;
    if (!resolve(c, rhs)) return {};
    if (c.allow_absent) {
      or_absent.push_back(&c);
      continue;
    }
    base.Add(FieldMatch{c.field, rhs, c.mask, c.op == CmpOp::kNe, false});
  }
  // Or-absent conditions expand over the header-validity bit: one variant
  // matching the condition, one requiring the field absent.
  std::vector<MatchSet> out{std::move(base)};
  for (const Condition* c : or_absent) {
    std::uint64_t rhs = 0;
    resolve(*c, rhs);
    std::vector<MatchSet> expanded;
    expanded.reserve(out.size() * 2);
    for (const MatchSet& m : out) {
      MatchSet with = m;
      with.Add(FieldMatch{c->field, rhs, c->mask, c->op == CmpOp::kNe, false});
      expanded.push_back(std::move(with));
      MatchSet absent = m;
      absent.Add(FieldMatch::Absent(c->field));
      expanded.push_back(std::move(absent));
    }
    out = std::move(expanded);
  }
  return out;
}

// ----------------------------------------------------------- installation

FlowTable& TableMonitor::TableOf(Instance& inst) {
  if (static_mode_) return stage_tables_[inst.stage];
  if (!inst.table) inst.table = std::make_unique<FlowTable>();
  return *inst.table;
}

void TableMonitor::InstallStage(Instance& inst, const DataplaneEvent* ev) {
  (void)ev;
  FlowTable& table = TableOf(inst);
  const Stage& st = property_.stages[inst.stage];

  if (st.kind == StageKind::kEvent) {
    for (MatchSet& m : CompileMatches(st.pattern, inst.env)) {
      FlowEntry entry;
      entry.priority = kAdvancePriority;
      entry.match = std::move(m);
      entry.cookie = Cookie(inst.id, HitKind::kAdvance);
      table.Add(entry, now_);
      ++costs_.flow_mods;
    }
    // Forbidden tuples: SHADOW entries that outrank the advance entries
    // and deliberately do nothing — the TCAM idiom for "anything but
    // exactly this tuple" (the NAT property's destination != (A,P)).
    if (!st.pattern.forbidden.empty()) {
      Pattern shadow = st.pattern;
      for (const Condition& c : st.pattern.forbidden)
        shadow.conditions.push_back(c);
      shadow.forbidden.clear();
      for (MatchSet& m : CompileMatches(shadow, inst.env)) {
        FlowEntry entry;
        entry.priority = kShadowPriority;
        entry.match = std::move(m);
        entry.cookie = Cookie(inst.id, HitKind::kShadow);
        table.Add(entry, now_);
        ++costs_.flow_mods;
      }
    }
  }
  // Obligation-discharge entries (aborts attach to the awaited stage —
  // including timeout stages, where they are the negative observation's
  // cancellation).
  for (const Pattern& abort : st.aborts) {
    for (MatchSet& m : CompileMatches(abort, inst.env)) {
      FlowEntry entry;
      entry.priority = kAbortPriority;
      entry.match = std::move(m);
      entry.cookie = Cookie(inst.id, HitKind::kAbort);
      table.Add(entry, now_);
      ++costs_.flow_mods;
    }
  }
}

void TableMonitor::RemoveInstanceEntries(Instance& inst) {
  if (inst.stage >= property_.num_stages()) return;  // nothing installed
  FlowTable& table = TableOf(inst);
  for (const HitKind kind :
       {HitKind::kAdvance, HitKind::kShadow, HitKind::kAbort}) {
    costs_.flow_mods += table.RemoveByCookie(Cookie(inst.id, kind));
  }
}

void TableMonitor::DestroyInstance(std::uint64_t id) {
  const auto it = instances_.find(id);
  if (it == instances_.end()) return;
  RemoveInstanceEntries(it->second);
  std::erase_if(dedup_, [&](const auto& kv) { return kv.second == id; });
  instances_.erase(it);
}

// -------------------------------------------------------------- lifecycle

Duration TableMonitor::WindowOf(const Stage& completed,
                                const DataplaneEvent* ev) const {
  if (completed.window_from_field && ev != nullptr) {
    return Duration::Seconds(static_cast<std::int64_t>(
        ev->fields.GetUnchecked(*completed.window_from_field)));
  }
  return completed.window;
}

void TableMonitor::ReportViolation(const Instance& inst, SimTime when,
                                   const std::string& trigger) {
  Violation v;
  v.property = property_.name;
  v.time = when;
  v.instance_id = inst.id;
  v.trigger_stage = trigger;
  if (provenance_ >= ProvenanceLevel::kLimited) {
    for (std::size_t i = 0; i < property_.vars.size(); ++i) {
      if (inst.env[i]) v.bindings.emplace_back(property_.vars[i], *inst.env[i]);
    }
  }
  violations_.push_back(std::move(v));
}

bool TableMonitor::ApplyBindings(const Stage& stage, const DataplaneEvent& ev,
                                 Instance& inst) {
  for (const Binding& b : stage.bindings) {
    if (b.kind == Binding::Kind::kField && !ev.fields.Has(b.field))
      return false;
    if (b.kind == Binding::Kind::kHashPort) {
      for (FieldId f : b.hash_inputs)
        if (!ev.fields.Has(f)) return false;
    }
  }
  if (stage.window_from_field && !ev.fields.Has(*stage.window_from_field))
    return false;
  for (const Binding& b : stage.bindings) {
    switch (b.kind) {
      case Binding::Kind::kField:
        inst.env[b.var] = ev.fields.GetUnchecked(b.field);
        break;
      case Binding::Kind::kHashPort:
        inst.env[b.var] =
            HashFieldsToRange(ev.fields, b.hash_inputs, b.modulus, b.base);
        break;
      case Binding::Kind::kRoundRobin:
        inst.env[b.var] = rr_counter_++ % b.modulus + b.base;
        break;
    }
  }
  return true;
}

void TableMonitor::AdvanceInstance(Instance& inst, const DataplaneEvent* ev,
                                   SimTime when) {
  RemoveInstanceEntries(inst);
  const Stage& completed = property_.stages[inst.stage];
  ++inst.stage;
  inst.matches_toward_count = 0;
  if (inst.stage == property_.num_stages()) {
    ReportViolation(inst, when, completed.label);
    DestroyInstance(inst.id);
    return;
  }
  const Duration window = WindowOf(completed, ev);
  inst.deadline =
      window > Duration::Zero() ? when + window : SimTime::Infinity();
  InstallStage(inst, ev);
}

void TableMonitor::HandleExpiry(std::uint64_t id, SimTime deadline) {
  auto it = instances_.find(id);
  if (it == instances_.end()) return;
  Instance& inst = it->second;
  if (inst.stage < property_.num_stages() &&
      property_.stages[inst.stage].kind == StageKind::kTimeout) {
    // Feature 7: the entry-expiry continuation fires the negative
    // observation — Varanus's custom timeout-action extension.
    AdvanceInstance(inst, nullptr, deadline);
  } else {
    DestroyInstance(id);
  }
}

void TableMonitor::AdvanceTime(SimTime now) {
  if (now <= now_) return;
  now_ = now;
  std::vector<std::pair<SimTime, std::uint64_t>> expired;
  for (const auto& [id, inst] : instances_) {
    if (inst.deadline <= now) expired.emplace_back(inst.deadline, id);
  }
  std::sort(expired.begin(), expired.end());
  for (const auto& [deadline, id] : expired) HandleExpiry(id, deadline);
}

// ------------------------------------------------------------- event path

std::size_t TableMonitor::PipelineDepth() const {
  std::size_t depth = 1 + (property_.suppressors.empty() ? 0 : 1);
  if (static_mode_) return depth + stage_tables_.size();
  return depth + instances_.size();
}

std::size_t TableMonitor::total_entries() const {
  std::size_t n = creation_table_.size();
  for (const auto& t : stage_tables_) n += t.size();
  for (const auto& [id, inst] : instances_) {
    if (inst.table) n += inst.table->size();
  }
  return n;
}

void TableMonitor::DescribeMetrics(telemetry::Snapshot& snap,
                                   const std::string& prefix) const {
  CompiledMonitor::DescribeMetrics(snap, prefix);
  snap.SetGauge(prefix + ".total_entries",
                static_cast<std::int64_t>(total_entries()));
}

void TableMonitor::OnDataplaneEvent(const DataplaneEvent& event) {
  AdvanceTime(event.time);
  now_ = std::max(now_, event.time);

  FieldMap fields = event.fields;
  fields.Set(FieldId::kEventType, static_cast<std::uint64_t>(event.type));

  ++costs_.packets;
  const std::size_t depth = PipelineDepth();
  costs_.table_lookups += depth;
  const Duration lookup_cost =
      params_.table_lookup * static_cast<std::int64_t>(depth);
  costs_.processing_time += lookup_cost;
  if (lookup_hist_ != nullptr)
    lookup_hist_->Record(static_cast<std::uint64_t>(lookup_cost.nanos()));

  // One lookup per monitor table; collect the hits before acting (the
  // whole pipeline sees the pre-update state of this event).
  struct Hit {
    std::uint64_t id;
    HitKind kind;
  };
  std::vector<Hit> hits;
  auto classify = [&](const FlowEntry* entry) {
    if (entry == nullptr) return;
    hits.push_back(Hit{entry->cookie >> 8,
                       static_cast<HitKind>(entry->cookie & 0xff)});
  };
  if (static_mode_) {
    for (auto& table : stage_tables_) classify(table.Lookup(fields, now_));
  } else {
    for (auto& [id, inst] : instances_) {
      if (inst.table) classify(inst.table->Lookup(fields, now_));
    }
  }
  const FlowEntry* create_hit = creation_table_.Lookup(fields, now_);

  // Aborts first (obligation discharge outranks advancement).
  for (const Hit& h : hits) {
    if (h.kind == HitKind::kAbort) DestroyInstance(h.id);
  }
  for (const Hit& h : hits) {
    if (h.kind != HitKind::kAdvance) continue;
    auto it = instances_.find(h.id);
    if (it == instances_.end()) continue;  // aborted above
    Instance& inst = it->second;
    const Stage& st = property_.stages[inst.stage];
    // ApplyBindings validates field presence before mutating, so a failed
    // application leaves the instance untouched.
    if (!ApplyBindings(st, event, inst)) continue;
    if (++inst.matches_toward_count < st.min_count) {
      ++costs_.flow_mods;  // the counter register write
      continue;
    }
    AdvanceInstance(inst, &event, now_);
  }

  // Creation.
  if (create_hit != nullptr) {
    do {
      if (!property_.suppression_key_fields.empty()) {
        const auto key = ProjectKey(fields, property_.suppression_key_fields);
        if (key && suppressed_.contains(*key)) break;
      }
      Instance probe;
      probe.id = 0;
      probe.stage = 0;
      probe.env.resize(property_.num_vars());
      if (!ApplyBindings(property_.stages[0], event, probe)) break;

      FlowKey dedup_key;
      bool keyable = true;
      for (const Binding& b : property_.stages[0].bindings) {
        if (!probe.env[b.var]) {
          keyable = false;
          break;
        }
        dedup_key.values.push_back(*probe.env[b.var]);
      }
      if (keyable) {
        const auto existing = dedup_.find(dedup_key);
        if (existing != dedup_.end()) {
          if (property_.stages[0].refresh_window_on_rematch) {
            auto it = instances_.find(existing->second);
            if (it != instances_.end() && it->second.stage == 1) {
              const Duration window = WindowOf(property_.stages[0], &event);
              it->second.deadline = window > Duration::Zero()
                                        ? now_ + window
                                        : SimTime::Infinity();
              ++costs_.flow_mods;  // the timer rewrite
            }
          }
          break;
        }
      }

      probe.id = next_id_++;
      auto [it, inserted] = instances_.emplace(probe.id, std::move(probe));
      SWMON_ASSERT(inserted);
      if (keyable) dedup_[dedup_key] = it->first;
      AdvanceInstance(it->second, &event, now_);
    } while (false);
  }

  // Suppressor table (bookkeeping keys for negated-history preconditions).
  for (const Suppressor& sup : property_.suppressors) {
    std::vector<std::optional<std::uint64_t>> empty_env(property_.num_vars());
    bool matched = false;
    for (const MatchSet& m : CompileMatches(sup.pattern, empty_env)) {
      if (m.Matches(fields)) {
        matched = true;
        break;
      }
    }
    if (matched) {
      if (const auto key = ProjectKey(fields, sup.key_fields))
        suppressed_.insert(*key);
    }
  }
}

}  // namespace swmon
