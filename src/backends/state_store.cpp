#include "backends/state_store.hpp"

namespace swmon {

// ---------------------------------------------------------------- OpenState

std::vector<InstRecord> OpenStateStore::Lookup(
    std::uint32_t stage, const std::optional<FlowKey>& key, SimTime now) {
  ++costs_.state_table_ops;
  if (!key) return {};  // no enumeration on a state machine
  const auto it = by_key_.find(*key);
  if (it == by_key_.end()) return {};
  if (it->second.deadline <= now) {  // lazy TTL expiry
    key_of_.erase(it->second.id);
    by_key_.erase(it);
    return {};
  }
  if (it->second.stage != stage) return {};
  return {it->second};
}

void OpenStateStore::Upsert(const InstRecord& rec,
                            const std::optional<FlowKey>& key, SimTime now) {
  (void)now;
  if (!key) return;
  ++costs_.state_table_ops;
  costs_.processing_time += params_.state_table_op;  // inline, fast path
  // A record moving between keys (stage change) vacates its old cell.
  if (const auto old = key_of_.find(rec.id);
      old != key_of_.end() && !(old->second == *key)) {
    by_key_.erase(old->second);
  }
  by_key_[*key] = rec;
  key_of_[rec.id] = *key;
}

void OpenStateStore::Erase(std::uint64_t id, SimTime now) {
  (void)now;
  const auto it = key_of_.find(id);
  if (it == key_of_.end()) return;
  ++costs_.state_table_ops;
  costs_.processing_time += params_.state_table_op;
  by_key_.erase(it->second);
  key_of_.erase(it);
}

// ---------------------------------------------------------- FAST learn action

void FastLearnStore::Upsert(const InstRecord& rec,
                            const std::optional<FlowKey>& key, SimTime now) {
  ++costs_.flow_mods;
  if (inline_) {
    // Inline: block the packet until the learn completes — state is always
    // fresh, forwarding pays the slow-path latency (Feature 9).
    OpenStateStore::Upsert(rec, key, now);
    costs_.processing_time += params_.flow_mod;
    return;
  }
  // Split: the packet goes on; the learn lands later. Reads meanwhile see
  // the old state.
  queue_.Submit(now, [this, rec, key](SimTime at) {
    OpenStateStore::Upsert(rec, key, at);
  });
}

void FastLearnStore::Erase(std::uint64_t id, SimTime now) {
  ++costs_.flow_mods;
  if (inline_) {
    OpenStateStore::Erase(id, now);
    costs_.processing_time += params_.flow_mod;
    return;
  }
  queue_.Submit(now, [this, id](SimTime at) { OpenStateStore::Erase(id, at); });
}

// ------------------------------------------------------------- P4 registers

std::uint64_t P4RegisterStore::OpsPerRecord() const {
  // fingerprint + stage marker + deadline + env words.
  return 3 + (stages_.empty() ? 0 : 8);
}

std::vector<InstRecord> P4RegisterStore::Lookup(
    std::uint32_t stage, const std::optional<FlowKey>& key, SimTime now) {
  if (!key || stage >= stages_.size()) return {};
  auto& arrays = stages_[stage];
  const std::size_t idx =
      static_cast<std::size_t>(key->Hash() % arrays.slots.size());
  costs_.register_ops += OpsPerRecord();
  costs_.processing_time += params_.register_op * 3;  // reads are parallel-ish
  Slot& slot = arrays.slots[idx];
  if (!slot.valid) return {};
  if (slot.fingerprint != key->Hash()) return {};  // another flow's slot
  if (slot.record.deadline <= now) {               // timestamp-compare expiry
    slot.valid = false;
    return {};
  }
  return {slot.record};
}

void P4RegisterStore::Upsert(const InstRecord& rec,
                             const std::optional<FlowKey>& key, SimTime now) {
  (void)now;
  if (!key || rec.stage >= stages_.size()) return;
  auto& arrays = stages_[rec.stage];
  const std::size_t idx =
      static_cast<std::size_t>(key->Hash() % arrays.slots.size());
  costs_.register_ops += OpsPerRecord();
  costs_.processing_time += params_.register_op * 3;
  Slot& slot = arrays.slots[idx];
  if (slot.valid && slot.fingerprint != key->Hash() &&
      slot.record.deadline > now) {
    ++collisions_;  // a live record of another flow is overwritten — real
                    // register-array behaviour, measured by the benches
  }
  slot.valid = true;
  slot.fingerprint = key->Hash();
  slot.record = rec;
}

void P4RegisterStore::Erase(std::uint64_t id, SimTime now) {
  (void)now;
  // Registers have no reverse index; invalidate by scan of the (few)
  // stages. Cost: one register op per stage (computing the index requires
  // the key, which the executor always erases right before an upsert, so
  // this models the invalidate-old-stage write).
  for (auto& arrays : stages_) {
    for (auto& slot : arrays.slots) {
      if (slot.valid && slot.record.id == id) {
        slot.valid = false;
        ++costs_.register_ops;
        costs_.processing_time += params_.register_op;
        return;
      }
    }
  }
}

std::size_t P4RegisterStore::live() const {
  std::size_t n = 0;
  for (const auto& arrays : stages_)
    for (const auto& slot : arrays.slots) n += slot.valid;
  return n;
}

// ------------------------------------------------------------------ Varanus

std::vector<InstRecord> VaranusStore::Lookup(std::uint32_t stage,
                                             const std::optional<FlowKey>& key,
                                             SimTime now) {
  std::vector<InstRecord> out;
  for (const auto& [id, cell] : applied_) {
    if (cell.record.stage != stage) continue;
    if (cell.record.deadline <= now) continue;  // expired, swept separately
    if (key && cell.key && !(*cell.key == *key)) continue;
    out.push_back(cell.record);
  }
  return out;
}

void VaranusStore::Upsert(const InstRecord& rec,
                          const std::optional<FlowKey>& key, SimTime now) {
  // Installing/advancing an instance rewrites its OpenFlow table: slow path.
  ++costs_.flow_mods;
  queue_.Submit(now, [this, rec, key](SimTime) {
    applied_[rec.id] = Cell{rec, key};
  });
}

void VaranusStore::Erase(std::uint64_t id, SimTime now) {
  ++costs_.flow_mods;
  queue_.Submit(now, [this, id](SimTime) { applied_.erase(id); });
}

std::vector<InstRecord> VaranusStore::TakeExpired(SimTime now) {
  // Table timeouts fire on the switch itself (not via the slow path): the
  // expiry continuation is Varanus's timeout-action mechanism.
  std::vector<InstRecord> expired;
  for (auto it = applied_.begin(); it != applied_.end();) {
    if (it->second.record.deadline <= now) {
      expired.push_back(it->second.record);
      it = applied_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

}  // namespace swmon
