#include "backends/backend.hpp"

#include <algorithm>
#include <set>

#include "backends/executor.hpp"
#include "monitor/features.hpp"

namespace swmon {

const char* TriCell(Tri t) {
  switch (t) {
    case Tri::kYes: return " Y ";
    case Tri::kNo: return " X ";
    case Tri::kBlank: return "   ";
  }
  return "   ";
}

CompiledMonitor::~CompiledMonitor() { AttachTelemetry(nullptr, ""); }

void CompiledMonitor::AttachTelemetry(telemetry::MetricsRegistry* registry,
                                      std::string prefix) {
  if (registry_ != nullptr) registry_->RemoveCollector(collector_token_);
  registry_ = registry;
  metric_prefix_ = std::move(prefix);
  collector_token_ = 0;
  if (registry_ == nullptr) return;
  collector_token_ = registry_->AddCollector(
      [this](telemetry::Snapshot& snap) { DescribeMetrics(snap, metric_prefix_); });
}

void CompiledMonitor::DescribeMetrics(telemetry::Snapshot& snap,
                                      const std::string& prefix) const {
  const CostCounters& c = costs();
  snap.SetCounter(prefix + ".packets", c.packets);
  snap.SetCounter(prefix + ".table_lookups", c.table_lookups);
  snap.SetCounter(prefix + ".state_table_ops", c.state_table_ops);
  snap.SetCounter(prefix + ".register_ops", c.register_ops);
  snap.SetCounter(prefix + ".flow_mods", c.flow_mods);
  snap.SetCounter(prefix + ".controller_msgs", c.controller_msgs);
  snap.SetCounter(prefix + ".processing_ns",
                  static_cast<std::uint64_t>(c.processing_time.nanos()));
  snap.SetCounter(prefix + ".violations", violations().size());
  snap.SetGauge(prefix + ".pipeline_depth",
                static_cast<std::int64_t>(PipelineDepth()));
  snap.SetGauge(prefix + ".live_instances",
                static_cast<std::int64_t>(live_instances()));
}

namespace {

// ------------------------------------------------- property shape analysis

struct Shape {
  std::vector<std::set<VarId>> link_vars;   // per stage
  std::set<VarId> all_bound;
  std::set<VarId> builtin_bound;
  bool timeout_stage = false;
  bool multiple_match = false;  // stage >= 1 event with no link vars
  bool suppressors = false;
  bool windows = false;
  bool ne_against_stored = false;  // Ne/forbidden against a field-bound var
  bool consistent_scope = true;    // all stage>=1 link var sets identical
  bool env_beyond_scope = false;   // field-bound vars outside the scope
  bool abort_keys_derivable = true;
  FieldLayer max_layer = FieldLayer::kL2;
};

Shape AnalyzeShape(const Property& p) {
  Shape s;
  s.max_layer = AnalyzeFeatures(p).fields;
  s.link_vars.resize(p.num_stages());

  for (std::size_t k = 0; k < p.num_stages(); ++k) {
    const Stage& st = p.stages[k];
    if (st.kind == StageKind::kTimeout) s.timeout_stage = true;
    if (st.window > Duration::Zero() || st.window_from_field)
      s.windows = true;
    for (const Binding& b : st.bindings) {
      s.all_bound.insert(b.var);
      if (b.kind != Binding::Kind::kField) s.builtin_bound.insert(b.var);
    }
    if (k >= 1 && st.kind == StageKind::kEvent) {
      for (const Condition& c : st.pattern.conditions) {
        if (c.op == CmpOp::kEq && c.rhs.kind == Term::Kind::kVar &&
            c.mask == ~std::uint64_t{0})
          s.link_vars[k].insert(c.rhs.var);
      }
      if (s.link_vars[k].empty()) s.multiple_match = true;
    }
  }
  s.suppressors = !p.suppressors.empty();

  auto scan_ne = [&](const std::vector<Condition>& conds, bool forbidden) {
    for (const Condition& c : conds) {
      if (c.rhs.kind != Term::Kind::kVar) continue;
      const bool stored = !s.builtin_bound.contains(c.rhs.var);
      if (stored && (forbidden || c.op == CmpOp::kNe))
        s.ne_against_stored = true;
    }
  };
  for (const Stage& st : p.stages) {
    scan_ne(st.pattern.conditions, false);
    scan_ne(st.pattern.forbidden, true);
    for (const Pattern& a : st.aborts) {
      scan_ne(a.conditions, false);
      scan_ne(a.forbidden, true);
      // Can a keyed store find the victims of this abort?
      const std::size_t k = static_cast<std::size_t>(&st - p.stages.data());
      if (k >= 1 && !s.link_vars[k].empty()) {
        for (VarId v : s.link_vars[k]) {
          const bool covered = std::any_of(
              a.conditions.begin(), a.conditions.end(), [&](const Condition& c) {
                return c.op == CmpOp::kEq && c.rhs.kind == Term::Kind::kVar &&
                       c.rhs.var == v && c.mask == ~std::uint64_t{0};
              });
          if (!covered) s.abort_keys_derivable = false;
        }
      }
    }
  }

  // Scope consistency across stages >= 1 (the single-state-machine shape).
  const std::set<VarId>* first = nullptr;
  for (std::size_t k = 1; k < p.num_stages(); ++k) {
    if (p.stages[k].kind != StageKind::kEvent) continue;
    if (!first) {
      first = &s.link_vars[k];
    } else if (*first != s.link_vars[k]) {
      s.consistent_scope = false;
    }
  }
  if (first) {
    for (VarId v : s.all_bound) {
      if (!s.builtin_bound.contains(v) && !first->contains(v))
        s.env_beyond_scope = true;
    }
  }
  return s;
}

// ------------------------------------------------------------ the backends

class OpenFlow13Backend : public Backend {
 public:
  BackendInfo info() const override {
    BackendInfo i;
    i.name = "OpenFlow 1.3";
    i.state_mechanism = "Controller only";
    i.update_datapath = "-";
    i.processing_mode = "Inline";
    i.field_access = "Fixed";
    i.event_history = Tri::kBlank;
    i.related_events = Tri::kYes;  // "(1.5 only)" — egress tables
    i.negative_match = Tri::kYes;
    i.rule_timeouts = Tri::kYes;
    i.timeout_actions = Tri::kNo;
    i.symmetric_match = Tri::kBlank;
    i.wandering_match = Tri::kBlank;
    i.out_of_band = Tri::kBlank;
    i.full_provenance = Tri::kBlank;
    return i;
  }

  CompileResult Compile(const Property& property, const CostParams&,
                        telemetry::MetricsRegistry*) const override {
    CompileResult r;
    r.unsupported.push_back(
        "cross-packet state requires controller interaction (Table 2 scope: "
        "OpenFlow 1.3 actions without a controller); see the "
        "controller-redirect baseline (ControllerMonitor) for what that "
        "costs");
    (void)property;
    return r;
  }
};

class OpenStateBackend : public Backend {
 public:
  BackendInfo info() const override {
    BackendInfo i;
    i.name = "OpenState";
    i.state_mechanism = "State machine";
    i.update_datapath = "Fast path";
    i.processing_mode = "Inline";
    i.field_access = "Fixed";
    i.event_history = Tri::kYes;
    i.related_events = Tri::kBlank;
    i.negative_match = Tri::kYes;
    i.rule_timeouts = Tri::kYes;
    i.timeout_actions = Tri::kNo;
    i.symmetric_match = Tri::kYes;
    i.wandering_match = Tri::kNo;
    i.out_of_band = Tri::kNo;
    i.full_provenance = Tri::kNo;
    return i;
  }

  CompileResult Compile(const Property& property, const CostParams& params,
                        telemetry::MetricsRegistry* registry) const override {
    const Shape s = AnalyzeShape(property);
    CompileResult r;
    if (s.timeout_stage)
      r.unsupported.push_back("timeout actions: XFSM transitions fire only "
                              "on packets, state TTLs can merely expire");
    if (s.multiple_match)
      r.unsupported.push_back(
          "multiple match: one packet updates exactly one flow's state");
    if (s.suppressors)
      r.unsupported.push_back(
          "suppression keys span protocols beyond the machine's fixed scope");
    if (s.max_layer > FieldLayer::kL4)
      r.unsupported.push_back("fixed parsing stops at L4; property needs L7");
    if (!s.consistent_scope)
      r.unsupported.push_back(
          "wandering match: stages use different lookup scopes, but the "
          "state machine is keyed by one fixed scope");
    if (s.env_beyond_scope)
      r.unsupported.push_back(
          "per-flow state is a state *number*: header values beyond the "
          "lookup scope cannot be remembered");
    if (!s.builtin_bound.empty())
      r.unsupported.push_back(
          "no extrinsic functions (hash / round-robin expectations)");
    if (s.ne_against_stored)
      r.unsupported.push_back(
          "negative match against stored values: matches compare headers to "
          "constants, not to remembered fields");
    if (!s.abort_keys_derivable)
      r.unsupported.push_back(
          "an obligation-discharge pattern cannot be mapped to the scope");
    if (!r.unsupported.empty()) return r;
    r.monitor = std::make_unique<FragmentExecutor>(
        property, std::make_unique<OpenStateStore>(params), params,
        ProvenanceLevel::kLimited, registry);
    return r;
  }
};

class FastBackend : public Backend {
 public:
  BackendInfo info() const override {
    BackendInfo i;
    i.name = "FAST";
    i.state_mechanism = "Learn action";
    i.update_datapath = "Slow path";
    i.processing_mode = "Inline";
    i.field_access = "Fixed";
    i.event_history = Tri::kYes;
    i.related_events = Tri::kBlank;
    i.negative_match = Tri::kYes;
    i.rule_timeouts = Tri::kNo;
    i.timeout_actions = Tri::kNo;
    i.symmetric_match = Tri::kYes;
    i.wandering_match = Tri::kNo;
    i.out_of_band = Tri::kNo;
    i.full_provenance = Tri::kNo;
    return i;
  }

  CompileResult Compile(const Property& property, const CostParams& params,
                        telemetry::MetricsRegistry* registry) const override {
    const Shape s = AnalyzeShape(property);
    CompileResult r;
    if (s.windows || s.timeout_stage)
      r.unsupported.push_back(
          "no rule timeouts: learn-action state machines cannot expire");
    if (s.multiple_match)
      r.unsupported.push_back(
          "multiple match: one packet updates exactly one flow's state");
    if (s.suppressors)
      r.unsupported.push_back(
          "suppression keys span protocols beyond the machine's scope");
    if (s.max_layer > FieldLayer::kL4)
      r.unsupported.push_back("fixed parsing stops at L4; property needs L7");
    if (!s.consistent_scope)
      r.unsupported.push_back("wandering match: scopes differ across stages");
    if (s.env_beyond_scope)
      r.unsupported.push_back(
          "state beyond the flow key cannot be remembered");
    if (s.ne_against_stored)
      r.unsupported.push_back(
          "negative match against stored values is inexpressible");
    if (!s.abort_keys_derivable)
      r.unsupported.push_back(
          "an obligation-discharge pattern cannot be mapped to the scope");
    if (!r.unsupported.empty()) return r;
    // FAST's learn action mutates tables through the slow path (split).
    r.monitor = std::make_unique<FragmentExecutor>(
        property,
        std::make_unique<FastLearnStore>(params, /*inline_updates=*/false),
        params, ProvenanceLevel::kLimited, registry);
    return r;
  }
};

class P4Backend : public Backend {
 public:
  explicit P4Backend(bool snap = false) : snap_(snap) {}

  BackendInfo info() const override {
    BackendInfo i;
    i.name = snap_ ? "SNAP" : "POF / P4";
    i.state_mechanism = snap_ ? "Global arrays" : "Flow registers";
    i.update_datapath = "Fast path";
    i.processing_mode = "";  // target dependent (Table 2 leaves it blank)
    i.field_access = "Dynamic";
    i.event_history = Tri::kYes;
    i.related_events = Tri::kYes;
    i.negative_match = Tri::kYes;
    i.rule_timeouts = snap_ ? Tri::kNo : Tri::kYes;
    i.timeout_actions = Tri::kNo;
    i.symmetric_match = Tri::kYes;
    i.wandering_match = Tri::kBlank;  // target dependent
    i.out_of_band = Tri::kNo;
    i.full_provenance = Tri::kNo;
    return i;
  }

  CompileResult Compile(const Property& property, const CostParams& params,
                        telemetry::MetricsRegistry* registry) const override {
    const Shape s = AnalyzeShape(property);
    CompileResult r;
    if (s.timeout_stage)
      r.unsupported.push_back(
          "timeout actions: nothing executes without a packet; deadlines can "
          "only be compared lazily");
    if (s.multiple_match)
      r.unsupported.push_back(
          "multiple match: a register op touches one hashed slot per packet");
    if (snap_ && (s.windows))
      r.unsupported.push_back("global arrays have no expiry semantics");
    // Every keyed stage needs a derivable register index.
    for (std::size_t k = 1; k < property.num_stages(); ++k) {
      if (property.stages[k].kind == StageKind::kEvent &&
          s.link_vars[k].empty()) {
        r.unsupported.push_back("stage " + std::to_string(k + 1) +
                                " has no flow key to index registers with");
      }
    }
    if (!s.abort_keys_derivable)
      r.unsupported.push_back(
          "an obligation-discharge pattern cannot compute the register index");
    if (s.suppressors && !property.suppression_key_fields.empty()) {
      // Allowed: hash different protocols' fields into one array (the
      // "wandering is target dependent" cell); costs a state op per event.
    }
    if (!r.unsupported.empty()) return r;
    r.monitor = std::make_unique<FragmentExecutor>(
        property,
        std::make_unique<P4RegisterStore>(params, property.num_stages(),
                                          /*slots_per_stage=*/4096),
        params, ProvenanceLevel::kLimited, registry);
    return r;
  }

 private:
  bool snap_;
};

class VaranusBackend : public Backend {
 public:
  explicit VaranusBackend(bool static_mode) : static_(static_mode) {}

  BackendInfo info() const override {
    BackendInfo i;
    i.name = static_ ? "Static Varanus" : "Varanus";
    i.state_mechanism = "Recursive learn";
    i.update_datapath = "Slow path";
    i.processing_mode = "Split";
    i.field_access = "Fixed";
    i.event_history = Tri::kYes;
    i.related_events = Tri::kYes;
    i.negative_match = Tri::kYes;
    i.rule_timeouts = Tri::kYes;
    i.timeout_actions = Tri::kYes;
    i.symmetric_match = Tri::kYes;
    i.wandering_match = Tri::kYes;
    i.out_of_band = static_ ? Tri::kNo : Tri::kYes;
    i.full_provenance = Tri::kNo;
    return i;
  }

  CompileResult Compile(const Property& property, const CostParams& params,
                        telemetry::MetricsRegistry* registry) const override {
    const Shape s = AnalyzeShape(property);
    CompileResult r;
    if (static_ && s.multiple_match) {
      r.unsupported.push_back(
          "multiple match / out-of-band events: advancing many instances on "
          "one event needs unbounded tables, which static Varanus gave up "
          "for constant pipeline depth (Sec 3.3)");
      return r;
    }
    r.monitor = std::make_unique<FragmentExecutor>(
        property,
        std::make_unique<VaranusStore>(params, property.num_stages(), static_),
        params, ProvenanceLevel::kLimited, registry);
    return r;
  }

 private:
  bool static_;
};

}  // namespace

std::vector<std::unique_ptr<Backend>> AllBackends() {
  std::vector<std::unique_ptr<Backend>> out;
  out.push_back(std::make_unique<OpenFlow13Backend>());
  out.push_back(std::make_unique<OpenStateBackend>());
  out.push_back(std::make_unique<FastBackend>());
  out.push_back(std::make_unique<P4Backend>(false));
  out.push_back(std::make_unique<P4Backend>(true));  // SNAP
  out.push_back(std::make_unique<VaranusBackend>(false));
  out.push_back(std::make_unique<VaranusBackend>(true));
  return out;
}

}  // namespace swmon
