// FragmentExecutor: runs a property's stage machine on a mechanism-specific
// StateStore.
//
// This is the execution half of every backend: the stage-advancement logic
// is shared (it is the property's semantics), while instance lookup,
// mutation cost, mutation *timing* (fast path vs slow path vs inline
// blocking), pipeline depth, and collision behaviour come from the store.
// Compilation (backends.cpp) guarantees the property only uses what the
// store can express — e.g. timeout-action stages only reach stores with
// expiry sweeps, multiple match only reaches enumerating stores.
//
// Differences from the reference MonitorEngine are mechanism-faithful by
// design: slow-path stores serve stale reads until their flow-mod queue
// catches up, register stores lose records to hash collisions, and the
// reference/compiled violation-count gap is exactly what bench_sideeffect
// measures.
//
// One refinement keeps that model honest: state changes made while a
// packet traverses the pipeline are visible to the SAME packet's later
// observations (its egress after its arrival) — on a real switch that data
// rides the pipeline as metadata, no state write needed. The executor keeps
// a per-traversal cache keyed by kPacketId for exactly this; cross-packet
// visibility still goes through the store (and its slow path).
#pragma once

#include <memory>
#include <unordered_set>

#include "backends/backend.hpp"
#include "backends/state_store.hpp"

namespace swmon {

class FragmentExecutor : public CompiledMonitor {
 public:
  /// `registry`, when non-null, is the uniform registry injection: the
  /// executor registers its DescribeMetrics collector under
  /// `backend.<property name>` and arms the per-table lookup-cost
  /// histogram `backend.<property name>.lookup_cost_ns` (modeled ns of
  /// match-action lookups charged per event).
  FragmentExecutor(Property property, std::unique_ptr<StateStore> store,
                   const CostParams& params,
                   ProvenanceLevel provenance = ProvenanceLevel::kLimited,
                   telemetry::MetricsRegistry* registry = nullptr);

  void OnDataplaneEvent(const DataplaneEvent& event) override;
  void AdvanceTime(SimTime now) override;

  const std::vector<Violation>& violations() const override {
    return violations_;
  }
  const CostCounters& costs() const override { return store_->costs(); }
  std::size_t PipelineDepth() const override { return store_->PipelineDepth(); }
  std::size_t live_instances() const override { return store_->live(); }

  /// Shared families plus the store's mechanism extras (collisions,
  /// pending_updates, ...).
  void DescribeMetrics(telemetry::Snapshot& snap,
                       const std::string& prefix) const override;

  const StateStore& store() const { return *store_; }

 private:
  bool EvalCondition(const Condition& c, const FieldMap& fields,
                     const InstRecord& rec) const;
  bool MatchPattern(const Pattern& p, const DataplaneEvent& ev,
                    const InstRecord& rec) const;
  bool ApplyBindings(const Stage& stage, const DataplaneEvent& ev,
                     InstRecord& rec);

  /// Key of a record at `stage`, projected from its environment.
  std::optional<FlowKey> KeyFromEnv(const InstRecord& rec,
                                    std::uint32_t stage) const;
  /// Key for an incoming event at `stage`, using `pattern`'s field->var
  /// equalities; nullopt when the pattern doesn't determine every link var.
  std::optional<FlowKey> KeyFromEvent(const Pattern& pattern,
                                      const DataplaneEvent& ev,
                                      std::uint32_t stage) const;

  Duration WindowOf(const Stage& completed, const DataplaneEvent* ev) const;
  void CommitAdvance(InstRecord rec, const DataplaneEvent* ev, SimTime when,
                     bool was_stored);
  /// Store lookup merged with the current traversal's in-pipeline updates.
  std::vector<InstRecord> Candidates(std::uint32_t stage,
                                     const std::optional<FlowKey>& key);
  void BeginTraversal(const DataplaneEvent& ev);
  void ReportViolation(const InstRecord& rec, SimTime when,
                       const std::string& trigger);
  void HandleExpired(const InstRecord& rec);

  void AbortPass(const DataplaneEvent& ev);
  void AdvancePass(const DataplaneEvent& ev);
  void CreatePass(const DataplaneEvent& ev);
  void SuppressorPass(const DataplaneEvent& ev);

  Property property_;
  std::unique_ptr<StateStore> store_;
  CostParams params_;
  ProvenanceLevel provenance_;
  telemetry::Histogram* lookup_hist_ = nullptr;

  /// Sorted unique link vars per stage (index 0 unused).
  std::vector<std::vector<VarId>> link_vars_;

  std::vector<Violation> violations_;
  std::unordered_set<FlowKey, FlowKeyHash> suppressed_;
  SimTime now_ = SimTime::Zero();
  std::uint64_t next_id_ = 1;
  std::uint64_t rr_counter_ = 0;
  std::unordered_set<std::uint64_t> advanced_this_event_;

  // Per-traversal pipeline metadata (see file comment).
  std::uint64_t traversal_packet_id_ = 0;
  std::unordered_map<std::uint64_t,
                     std::pair<std::optional<FlowKey>, InstRecord>>
      traversal_writes_;
  std::unordered_set<std::uint64_t> traversal_erased_;
};

}  // namespace swmon
