// Deterministic pseudo-random number generation.
//
// Every workload generator and fault injector takes an explicit Rng so that
// experiments are reproducible from a single seed. The generator is
// xoshiro256** seeded via splitmix64 — fast, high quality, and stable across
// platforms (unlike std::default_random_engine, whose algorithm is
// implementation-defined).
#pragma once

#include <cstdint>
#include <vector>

namespace swmon {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent generator (e.g. one per traffic source).
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace swmon
