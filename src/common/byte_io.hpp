// Byte readers/writers: big-endian (network order) for the packet library,
// little-endian variants for host-side file formats (netsim/trace_io).
//
// ByteReader is non-owning and bounds-checked: parsing a truncated packet
// reports failure instead of reading past the buffer. ByteWriter appends to
// an owned vector.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace swmon {

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool ok() const { return ok_; }

  std::uint8_t ReadU8();
  std::uint16_t ReadU16();  // big-endian
  std::uint32_t ReadU32();  // big-endian
  std::uint64_t ReadU64();  // big-endian

  std::uint16_t ReadU16LE();  // little-endian
  std::uint32_t ReadU32LE();  // little-endian
  std::uint64_t ReadU64LE();  // little-endian

  /// Copies `n` bytes into `out`; marks failure (and zero-fills) when short.
  void ReadBytes(std::uint8_t* out, std::size_t n);

  /// Returns a view of the next `n` bytes and advances, or an empty span on
  /// underflow.
  std::span<const std::uint8_t> ReadSpan(std::size_t n);

  void Skip(std::size_t n);

 private:
  bool Ensure(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

class ByteWriter {
 public:
  void WriteU8(std::uint8_t v);
  void WriteU16(std::uint16_t v);  // big-endian
  void WriteU32(std::uint32_t v);  // big-endian
  void WriteU64(std::uint64_t v);  // big-endian

  void WriteU16LE(std::uint16_t v);  // little-endian
  void WriteU32LE(std::uint32_t v);  // little-endian
  void WriteU64LE(std::uint64_t v);  // little-endian
  void WriteBytes(std::span<const std::uint8_t> bytes);
  void Fill(std::uint8_t value, std::size_t n);

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

  /// Overwrite two bytes at `offset` (used to patch lengths/checksums).
  void PatchU16(std::size_t offset, std::uint16_t v);

 private:
  std::vector<std::uint8_t> buf_;
};

}  // namespace swmon
