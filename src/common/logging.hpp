// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded, so logging is a plain
// formatted write guarded by a global level. Tests set the level to kError to
// keep output clean; examples turn on kInfo for narrative traces.
#pragma once

#include <cstdarg>

namespace swmon {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// printf-style logging. `tag` names the subsystem (e.g. "dataplane").
void LogF(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace swmon

#define SWMON_LOG_DEBUG(tag, ...) \
  ::swmon::LogF(::swmon::LogLevel::kDebug, tag, __VA_ARGS__)
#define SWMON_LOG_INFO(tag, ...) \
  ::swmon::LogF(::swmon::LogLevel::kInfo, tag, __VA_ARGS__)
#define SWMON_LOG_WARN(tag, ...) \
  ::swmon::LogF(::swmon::LogLevel::kWarn, tag, __VA_ARGS__)
#define SWMON_LOG_ERROR(tag, ...) \
  ::swmon::LogF(::swmon::LogLevel::kError, tag, __VA_ARGS__)
