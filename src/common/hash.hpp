// Hash helpers used by monitor instance keys and dataplane flow keys.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace swmon {

/// 64-bit FNV-1a over raw bytes. Deterministic across platforms; used where
/// hash stability matters (e.g. FAST-style flow hashing in experiments).
constexpr std::uint64_t Fnv1a64(const void* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t Fnv1a64(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

/// boost-style hash combine.
inline void HashCombine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

template <typename T>
void HashCombineValue(std::size_t& seed, const T& v) {
  HashCombine(seed, std::hash<T>{}(v));
}

}  // namespace swmon
