#include "common/sim_time.hpp"

#include <cinttypes>
#include <cstdio>

namespace swmon {

std::string Duration::ToString() const {
  char buf[64];
  if (ns_ % 1000000000 == 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "s", ns_ / 1000000000);
  } else if (ns_ % 1000000 == 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ms", ns_ / 1000000);
  } else if (ns_ % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "us", ns_ / 1000);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns_);
  }
  return buf;
}

std::string SimTime::ToString() const {
  if (IsInfinite()) return "t=inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%.9fs", seconds());
  return buf;
}

}  // namespace swmon
