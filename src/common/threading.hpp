// Threading primitives for the parallel monitor path.
//
// The parallel MonitorSet (monitor/parallel_monitor_set.hpp) shards engines
// across a fixed pool of worker threads. These are the building blocks it
// needs from the platform: cache-line padding so per-worker counters never
// false-share, a worker-count default, and optional CPU pinning so a worker
// keeps its engines' state hot in one core's cache (the software analogue of
// a switch pipeline stage owning its registers).
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

namespace swmon {

/// Destructive-interference distance. std::hardware_destructive_interference_
/// size is not universally available; 64 is correct for every x86/ARM part
/// this sim targets.
inline constexpr std::size_t kCacheLineBytes = 64;

/// An atomic counter padded out to a full cache line. Workers publish
/// per-worker progress counters through these; without the padding, adjacent
/// workers' counters share a line and every increment ping-pongs it.
template <typename T>
struct alignas(kCacheLineBytes) PaddedAtomic {
  std::atomic<T> value{};
};
static_assert(sizeof(PaddedAtomic<std::uint64_t>) == kCacheLineBytes);

/// Default worker-pool size: the hardware concurrency, floored at 1 (the
/// standard permits hardware_concurrency() == 0 when unknown).
inline std::size_t HardwareWorkerCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

/// Pins the calling thread to `cpu` (modulo the hardware count). Returns
/// false when the platform does not support affinity or the call fails;
/// callers treat pinning as a hint, never a requirement.
bool PinCurrentThreadToCpu(std::size_t cpu);

}  // namespace swmon
