// Simulated time.
//
// All components of the simulator — the event queue, switch cost model,
// monitor timeouts — share a single notion of time expressed in integer
// nanoseconds since simulation start. A strong type prevents accidental
// mixing with wall-clock or unit-less integers.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace swmon {

/// A span of simulated time, in nanoseconds. Negative durations are allowed
/// as intermediate arithmetic results but never as event delays.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration Nanos(std::int64_t n) { return Duration(n); }
  static constexpr Duration Micros(std::int64_t u) { return Duration(u * 1000); }
  static constexpr Duration Millis(std::int64_t m) { return Duration(m * 1000000); }
  static constexpr Duration Seconds(std::int64_t s) { return Duration(s * 1000000000); }
  static constexpr Duration Zero() { return Duration(0); }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double micros() const { return static_cast<double>(ns_) / 1e3; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  std::string ToString() const;

 private:
  explicit constexpr Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An instant of simulated time (nanoseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime FromNanos(std::int64_t n) { return SimTime(n); }
  static constexpr SimTime Zero() { return SimTime(0); }
  /// A sentinel later than every reachable instant.
  static constexpr SimTime Infinity() { return SimTime(INT64_MAX); }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr bool IsInfinite() const { return ns_ == INT64_MAX; }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(Duration d) const { return SimTime(ns_ + d.nanos()); }
  constexpr Duration operator-(SimTime o) const { return Duration::Nanos(ns_ - o.ns_); }

  std::string ToString() const;

 private:
  explicit constexpr SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace swmon
