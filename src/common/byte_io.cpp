#include "common/byte_io.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace swmon {

bool ByteReader::Ensure(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::ReadU8() {
  if (!Ensure(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::ReadU16() {
  if (!Ensure(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::ReadU32() {
  if (!Ensure(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::ReadU64() {
  if (!Ensure(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 8;
  return v;
}

std::uint16_t ByteReader::ReadU16LE() {
  if (!Ensure(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | data_[pos_ + 1] << 8);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::ReadU32LE() {
  if (!Ensure(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = v << 8 | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::ReadU64LE() {
  if (!Ensure(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | data_[pos_ + i];
  pos_ += 8;
  return v;
}

void ByteReader::ReadBytes(std::uint8_t* out, std::size_t n) {
  if (!Ensure(n)) {
    std::memset(out, 0, n);
    return;
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
}

std::span<const std::uint8_t> ByteReader::ReadSpan(std::size_t n) {
  if (!Ensure(n)) return {};
  auto s = data_.subspan(pos_, n);
  pos_ += n;
  return s;
}

void ByteReader::Skip(std::size_t n) {
  if (Ensure(n)) pos_ += n;
}

void ByteWriter::WriteU8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::WriteU16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::WriteU32(std::uint32_t v) {
  for (int i = 3; i >= 0; --i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::WriteU64(std::uint64_t v) {
  for (int i = 7; i >= 0; --i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::WriteU16LE(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::WriteU32LE(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::WriteU64LE(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::WriteBytes(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::Fill(std::uint8_t value, std::size_t n) {
  buf_.insert(buf_.end(), n, value);
}

void ByteWriter::PatchU16(std::size_t offset, std::uint16_t v) {
  SWMON_ASSERT(offset + 2 <= buf_.size());
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

}  // namespace swmon
