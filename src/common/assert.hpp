// Lightweight always-on assertion used for internal invariants.
//
// Unlike <cassert>, these checks stay enabled in release builds: the
// simulator's correctness claims (and the monitor's soundness) depend on
// invariants that must never be silently skipped.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace swmon {

[[noreturn]] inline void AssertFail(const char* expr, const char* file,
                                    int line, const char* msg) {
  std::fprintf(stderr, "swmon assertion failed: %s at %s:%d%s%s\n", expr, file,
               line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace swmon

#define SWMON_ASSERT(expr)                                        \
  do {                                                            \
    if (!(expr)) ::swmon::AssertFail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define SWMON_ASSERT_MSG(expr, msg)                             \
  do {                                                          \
    if (!(expr)) ::swmon::AssertFail(#expr, __FILE__, __LINE__, msg); \
  } while (0)
