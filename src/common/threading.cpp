#include "common/threading.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace swmon {

bool PinCurrentThreadToCpu(std::size_t cpu) {
#if defined(__linux__)
  const std::size_t ncpu = HardwareWorkerCount();
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % ncpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace swmon
