// Fixed-capacity event batches for the parallel monitor path.
//
// Per-event virtual dispatch to a worker pool would put one synchronisation
// point on every packet; batching moves that cost to one ring push per
// kBatch events. A batch is immutable once published: the producer fills a
// Batch<T>, freezes it behind shared_ptr<const Batch<T>>, and every worker
// reads the same copy (items carry a global sequence number base so
// violations can be merged back into stream order deterministically).
//
// Templated on the item type so the event library stays independent of the
// dataplane's event struct (dataplane already depends on event, not the
// reverse).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace swmon {

template <typename T>
struct Batch {
  /// Global sequence number of items[0]; items[i] is event base_seq + i.
  std::uint64_t base_seq = 0;
  std::vector<T> items;
};

/// Accumulates items into batches of a fixed capacity. Append() returns a
/// frozen batch exactly when the current one fills; TakePartial() flushes
/// whatever is pending (the flush-on-idle / flush-on-query rule lives in
/// the caller — the accumulator just hands over the partial batch).
template <typename T>
class BatchBuffer {
 public:
  explicit BatchBuffer(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t pending() const { return cur_ ? cur_->items.size() : 0; }
  /// Sequence number the next appended item will get.
  std::uint64_t next_seq() const { return next_seq_; }

  /// Adds one item. Returns the completed batch when this append fills it,
  /// nullptr otherwise.
  std::shared_ptr<const Batch<T>> Append(const T& item) {
    if (!cur_) {
      cur_ = std::make_shared<Batch<T>>();
      cur_->base_seq = next_seq_;
      cur_->items.reserve(capacity_);
    }
    cur_->items.push_back(item);
    ++next_seq_;
    if (cur_->items.size() < capacity_) return nullptr;
    return std::exchange(cur_, nullptr);
  }

  /// Hands over the in-progress batch (nullptr when nothing is pending).
  std::shared_ptr<const Batch<T>> TakePartial() {
    return std::exchange(cur_, nullptr);
  }

 private:
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::shared_ptr<Batch<T>> cur_;
};

}  // namespace swmon
