// Recycled slab batches for the parallel monitor path.
//
// The first parallel design published shared_ptr<const Batch<T>> — one
// make_shared plus W atomic refcount round-trips per kBatch events, and a
// fresh vector grown from zero each time. On the compiled engine's ~100ns
// event cost that heap traffic was a measurable slice of the ~2x
// batching overhead BENCH_parallel recorded. A SlabBatch is the
// allocation-free replacement: a fixed-capacity arena the producer fills in
// place, published to every worker by raw pointer, and returned to a
// lock-free freelist when the last worker releases it. Steady state
// performs zero allocations per event — batch_pool_test pins this down.
//
// Layout is SoA at the batch level: the item array and a parallel `routes`
// lane array (route_stride u64 words per item). The parallel set's
// producer precomputes each event's shard-routing hashes into the lanes
// once; every worker then derives its own stage mask with one modulo per
// lane instead of re-hashing fields per worker (see shard_plan.hpp).
//
// Concurrency contract:
//   * Acquire/TryAcquire and the fill are producer-only. The producer sets
//     `refs` to the consumer count before publishing; the rings'
//     release/acquire pair orders the fill before any worker read.
//   * Release is called once per consumer, from worker threads. The last
//     release pushes the batch onto a Treiber freelist (CAS push). The
//     producer reclaims with a pop-all exchange — single popper, so no ABA.
//   * The pool caps total batches at `max_batches`; an empty freelist at
//     the cap makes TryAcquire fail, which is the producer's backpressure
//     signal (it spins/yields — exactly like a full ring).
//
// Templated on the item type so the event library stays independent of the
// dataplane's event struct (dataplane depends on event, not the reverse).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace swmon {

template <typename T>
struct SlabBatch {
  /// Global sequence number of items[0]; items[i] is event base_seq + i.
  std::uint64_t base_seq = 0;
  /// Filled item count (<= items.size(), the pool's fixed capacity).
  std::uint32_t size = 0;
  /// Arena: sized once at pool construction, reused across recycles.
  std::vector<T> items;
  /// Shard-routing lanes, route_stride words per item: routes[i * stride
  /// + lane] is the lane's ShardHash for items[i]. Meaning of each lane is
  /// whatever the producer and consumers agreed on out of band.
  std::vector<std::uint64_t> routes;

  /// Outstanding consumer count; set by the producer before publishing.
  std::atomic<std::uint32_t> refs{0};
  /// Freelist link (owned by BatchPool).
  SlabBatch<T>* next = nullptr;
};

template <typename T>
class BatchPool {
 public:
  /// Every batch holds `batch_capacity` items and `batch_capacity *
  /// route_stride` route words, all allocated up front on first use. At
  /// most `max_batches` batches ever exist (>= 1 enforced).
  BatchPool(std::size_t batch_capacity, std::size_t route_stride,
            std::size_t max_batches)
      : capacity_(batch_capacity ? batch_capacity : 1),
        route_stride_(route_stride),
        max_batches_(max_batches ? max_batches : 1) {}

  std::size_t batch_capacity() const { return capacity_; }
  std::size_t route_stride() const { return route_stride_; }
  std::size_t max_batches() const { return max_batches_; }

  /// Producer only. A recycled batch when the freelist has one, a fresh
  /// allocation while under the cap, nullptr otherwise (backpressure).
  SlabBatch<T>* TryAcquire() {
    if (local_free_ == nullptr) {
      // Pop-all: one exchange claims every batch workers pushed since the
      // last reclaim. Acquire pairs with the releasing CAS in Release(),
      // ordering the workers' last reads before our upcoming overwrite.
      local_free_ = free_head_.exchange(nullptr, std::memory_order_acquire);
    }
    if (local_free_ != nullptr) {
      SlabBatch<T>* b = local_free_;
      local_free_ = b->next;
      b->next = nullptr;
      b->size = 0;
      ++reused_;
      return b;
    }
    if (all_.size() >= max_batches_) return nullptr;
    all_.push_back(std::make_unique<SlabBatch<T>>());
    SlabBatch<T>* b = all_.back().get();
    b->items.resize(capacity_);
    b->routes.resize(capacity_ * route_stride_);
    ++allocated_;
    return b;
  }

  /// Producer only. TryAcquire, spinning through pool exhaustion (all
  /// batches in flight at the cap) until a worker releases one. Counts one
  /// exhausted_waits per backpressure episode, not per spin.
  SlabBatch<T>* AcquireBlocking() {
    SlabBatch<T>* b = TryAcquire();
    if (b != nullptr) return b;
    ++exhausted_waits_;
    for (;;) {
      std::this_thread::yield();
      if ((b = TryAcquire()) != nullptr) return b;
    }
  }

  /// Consumer side, once per consumer per published batch. The last
  /// consumer returns the batch to the freelist.
  void Release(SlabBatch<T>* b) {
    if (b->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    SlabBatch<T>* head = free_head_.load(std::memory_order_relaxed);
    do {
      b->next = head;
    } while (!free_head_.compare_exchange_weak(head, b,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
  }

  // --- producer-thread telemetry ---
  std::uint64_t reused() const { return reused_; }
  std::uint64_t allocated() const { return allocated_; }
  std::uint64_t exhausted_waits() const { return exhausted_waits_; }

 private:
  std::size_t capacity_;
  std::size_t route_stride_;
  std::size_t max_batches_;

  std::vector<std::unique_ptr<SlabBatch<T>>> all_;  // producer-owned storage
  std::atomic<SlabBatch<T>*> free_head_{nullptr};
  SlabBatch<T>* local_free_ = nullptr;  // producer's reclaimed chain

  std::uint64_t reused_ = 0;
  std::uint64_t allocated_ = 0;
  std::uint64_t exhausted_waits_ = 0;
};

}  // namespace swmon
