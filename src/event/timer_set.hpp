// Cancellable, refreshable timers for monitor instances.
//
// The monitor engine (Features 3 and 7) maintains one timer per live
// instance: ordinary timeouts expire state, timeout-action timers fire a
// negative observation. TimerSet is deliberately independent of EventQueue
// so the monitor can run over recorded traces: the caller advances it to
// each event's timestamp and expired timers fire in deadline order first.
//
// Implementation: binary heap with lazy deletion. Cancel/refresh bump a
// generation counter; stale heap entries are skipped on pop — both by
// Advance and by NextDeadline, which lazily pops stale generations until the
// heap front is live instead of scanning the live map. This gives O(log n)
// arm/refresh and amortized O(log n) expiry/next-deadline (every stale entry
// is popped at most once), which the state-update and dispatch benches
// measure directly. When cancel/re-arm churn leaves the heap dominated by
// stale entries, Arm opportunistically rebuilds it from the live map so heap
// memory stays proportional to the armed count.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/sim_time.hpp"

namespace swmon {

class TimerSet {
 public:
  using TimerId = std::uint64_t;
  /// Called with the timer's id and its deadline when it expires.
  using ExpiryFn = std::function<void(TimerId, SimTime)>;

  explicit TimerSet(ExpiryFn on_expiry) : on_expiry_(std::move(on_expiry)) {}

  /// Arms (or re-arms) the timer `id` to fire at `deadline`. Deadline ties
  /// break by arming order (each Arm call gets a fresh generation).
  void Arm(TimerId id, SimTime deadline);

  /// Arms with an explicit tie ordinal: timers sharing a deadline fire in
  /// ascending `ordinal` order regardless of arming order. The monitor
  /// engines pass the instance id here, which makes expiry order a pure
  /// function of (deadline, instance id) — the property that lets the
  /// instance-sharded parallel path merge per-replica expiry streams back
  /// into the exact serial order (parallel_monitor_set.cpp).
  void Arm(TimerId id, SimTime deadline, std::uint64_t ordinal);

  /// Cancels the timer if armed. Idempotent.
  void Cancel(TimerId id);

  bool IsArmed(TimerId id) const { return live_.contains(id); }
  std::size_t armed_count() const { return live_.size(); }

  /// Earliest armed deadline, or SimTime::Infinity() when none. Amortized
  /// O(log n): pops stale heap entries (a cache cleanup — logically const)
  /// until the front is live.
  SimTime NextDeadline() const;

  /// Fires every timer with deadline <= now, in deadline order (ties by
  /// arming order). A callback may arm or cancel timers; newly armed timers
  /// whose deadlines are also <= now fire in the same pass.
  /// Returns the number of timers fired.
  std::size_t Advance(SimTime now);

  // --- diagnostics (bench_dispatch / MonitorStats) ---
  /// Heap entries, live + not-yet-popped stale. >= armed_count().
  std::size_t heap_size() const { return heap_.size(); }
  /// Fraction of heap entries that are stale (cancelled or superseded).
  double StaleRatio() const {
    return heap_.empty() ? 0.0
                         : static_cast<double>(heap_.size() - live_.size()) /
                               static_cast<double>(heap_.size());
  }
  /// Lifetime Arm() calls (including re-arms).
  std::uint64_t total_armed() const { return total_armed_; }
  /// Stale heap entries discarded so far — lazily by Advance/NextDeadline or
  /// wholesale by a compaction rebuild. Counting both sources keeps the value
  /// a pure function of the arm/cancel history, independent of when
  /// compaction happens to fire relative to a snapshot.
  std::uint64_t stale_popped() const { return stale_popped_; }
  /// Heap rebuilds triggered by stale-entry pressure.
  std::uint64_t compactions() const { return compactions_; }

 private:
  struct Entry {
    SimTime deadline;
    TimerId id;
    std::uint64_t generation;
    /// Tie rank within a deadline. Defaults to the generation (arming
    /// order); engines pass the instance id (see the 3-arg Arm).
    std::uint64_t ordinal;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      if (a.ordinal != b.ordinal) return a.ordinal > b.ordinal;
      return a.generation > b.generation;
    }
  };
  using Heap = std::priority_queue<Entry, std::vector<Entry>, Later>;

  struct LiveState {
    SimTime deadline;
    std::uint64_t generation;
    std::uint64_t ordinal;
  };

  bool IsLive(const Entry& e) const {
    const auto it = live_.find(e.id);
    return it != live_.end() && it->second.generation == e.generation;
  }
  void MaybeCompact();

  ExpiryFn on_expiry_;
  // Mutable: NextDeadline() discards stale front entries without changing
  // the observable timer state.
  mutable Heap heap_;
  std::unordered_map<TimerId, LiveState> live_;
  std::uint64_t next_generation_ = 0;
  std::uint64_t total_armed_ = 0;
  mutable std::uint64_t stale_popped_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace swmon
