// Cancellable, refreshable timers for monitor instances.
//
// The monitor engine (Features 3 and 7) maintains one timer per live
// instance: ordinary timeouts expire state, timeout-action timers fire a
// negative observation. TimerSet is deliberately independent of EventQueue
// so the monitor can run over recorded traces: the caller advances it to
// each event's timestamp and expired timers fire in deadline order first.
//
// Implementation: binary heap with lazy deletion. Cancel/refresh bump a
// generation counter; stale heap entries are skipped on pop. This gives
// O(log n) arm/refresh and amortized O(log n) expiry, which the state-update
// benches measure directly.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/sim_time.hpp"

namespace swmon {

class TimerSet {
 public:
  using TimerId = std::uint64_t;
  /// Called with the timer's id and its deadline when it expires.
  using ExpiryFn = std::function<void(TimerId, SimTime)>;

  explicit TimerSet(ExpiryFn on_expiry) : on_expiry_(std::move(on_expiry)) {}

  /// Arms (or re-arms) the timer `id` to fire at `deadline`.
  void Arm(TimerId id, SimTime deadline);

  /// Cancels the timer if armed. Idempotent.
  void Cancel(TimerId id);

  bool IsArmed(TimerId id) const { return live_.contains(id); }
  std::size_t armed_count() const { return live_.size(); }

  /// Earliest armed deadline, or SimTime::Infinity() when none.
  SimTime NextDeadline() const;

  /// Fires every timer with deadline <= now, in deadline order (ties by
  /// arming order). A callback may arm or cancel timers; newly armed timers
  /// whose deadlines are also <= now fire in the same pass.
  /// Returns the number of timers fired.
  std::size_t Advance(SimTime now);

 private:
  struct Entry {
    SimTime deadline;
    TimerId id;
    std::uint64_t generation;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.generation > b.generation;
    }
  };

  struct LiveState {
    SimTime deadline;
    std::uint64_t generation;
  };

  ExpiryFn on_expiry_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<TimerId, LiveState> live_;
  std::uint64_t next_generation_ = 0;
};

}  // namespace swmon
