#include "event/timer_set.hpp"

namespace swmon {

void TimerSet::Arm(TimerId id, SimTime deadline) {
  const std::uint64_t gen = next_generation_++;
  live_[id] = LiveState{deadline, gen};
  heap_.push(Entry{deadline, id, gen});
}

void TimerSet::Cancel(TimerId id) { live_.erase(id); }

SimTime TimerSet::NextDeadline() const {
  // The heap may have stale entries in front; scanning would require a
  // mutable pop, so compute from the live map only when the top is stale.
  // Common case: top is live.
  SimTime best = SimTime::Infinity();
  if (live_.empty()) return best;
  for (const auto& [id, st] : live_) {
    if (st.deadline < best) best = st.deadline;
  }
  return best;
}

std::size_t TimerSet::Advance(SimTime now) {
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().deadline <= now) {
    const Entry e = heap_.top();
    heap_.pop();
    auto it = live_.find(e.id);
    if (it == live_.end() || it->second.generation != e.generation)
      continue;  // cancelled or re-armed since
    live_.erase(it);
    on_expiry_(e.id, e.deadline);
    ++fired;
  }
  return fired;
}

}  // namespace swmon
