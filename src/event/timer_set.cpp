#include "event/timer_set.hpp"

namespace swmon {

void TimerSet::Arm(TimerId id, SimTime deadline) {
  // Default tie ordinal = the generation, i.e. arming order — the original
  // comparator (deadline, generation) exactly.
  Arm(id, deadline, next_generation_);
}

void TimerSet::Arm(TimerId id, SimTime deadline, std::uint64_t ordinal) {
  const std::uint64_t gen = next_generation_++;
  live_[id] = LiveState{deadline, gen, ordinal};
  heap_.push(Entry{deadline, id, gen, ordinal});
  ++total_armed_;
  MaybeCompact();
}

void TimerSet::Cancel(TimerId id) { live_.erase(id); }

void TimerSet::MaybeCompact() {
  // Heavy cancel/re-arm churn without Advance can leave the heap dominated
  // by stale generations. Rebuild from the live map once stale entries
  // outnumber live ones past a floor; each surviving entry keeps its
  // generation, so deadline ties still break by arming order.
  if (heap_.size() < 64 || heap_.size() < 2 * live_.size()) return;
  std::vector<Entry> entries;
  entries.reserve(live_.size());
  for (const auto& [id, st] : live_)
    entries.push_back(Entry{st.deadline, id, st.generation, st.ordinal});
  // Every entry the rebuild drops is a stale generation. Count them like the
  // lazy pops do, so stale_popped() reads as "stale entries discarded" no
  // matter which mechanism discarded them — a snapshot taken right after a
  // compaction then agrees with one where the same entries died lazily.
  stale_popped_ += heap_.size() - entries.size();
  heap_ = Heap(Later{}, std::move(entries));
  ++compactions_;
}

SimTime TimerSet::NextDeadline() const {
  // Lazy-pop: the heap front may be stale (cancelled or superseded by a
  // re-arm); discard until it is live. Amortized O(log n) — every stale
  // entry is popped exactly once across all calls.
  while (!heap_.empty()) {
    if (IsLive(heap_.top())) return heap_.top().deadline;
    heap_.pop();
    ++stale_popped_;
  }
  return SimTime::Infinity();
}

std::size_t TimerSet::Advance(SimTime now) {
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().deadline <= now) {
    const Entry e = heap_.top();
    heap_.pop();
    if (!IsLive(e)) {  // cancelled or re-armed since
      ++stale_popped_;
      continue;
    }
    live_.erase(e.id);
    on_expiry_(e.id, e.deadline);
    ++fired;
  }
  return fired;
}

}  // namespace swmon
