#include "event/event_queue.hpp"

#include <utility>

#include "common/assert.hpp"

namespace swmon {

void EventQueue::ScheduleAt(SimTime at, Callback fn) {
  SWMON_ASSERT_MSG(at >= now_, "cannot schedule in the past");
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

void EventQueue::ScheduleAfter(Duration delay, Callback fn) {
  SWMON_ASSERT_MSG(delay >= Duration::Zero(), "negative delay");
  ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::PopOne(SimTime deadline) {
  if (heap_.empty() || heap_.top().at > deadline) return false;
  // priority_queue::top() is const; the callback must be moved out before
  // pop so it survives its own rescheduling.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = e.at;
  e.fn();
  return true;
}

std::size_t EventQueue::RunAll(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && PopOne(SimTime::Infinity())) ++n;
  return n;
}

std::size_t EventQueue::RunUntil(SimTime deadline) {
  std::size_t n = 0;
  while (PopOne(deadline)) ++n;
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace swmon
