// Discrete-event simulation core.
//
// A single EventQueue drives the whole simulated network: link deliveries,
// controller round-trips, slow-path flow-mod completions, DHCP lease expiry,
// monitor timeouts. Events at equal timestamps run in scheduling order
// (FIFO), which keeps every experiment deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.hpp"

namespace swmon {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }
  std::size_t pending() const { return heap_.size(); }

  /// Schedules `fn` at absolute time `at` (must not be in the past).
  void ScheduleAt(SimTime at, Callback fn);

  /// Schedules `fn` after `delay` from now (delay must be non-negative).
  void ScheduleAfter(Duration delay, Callback fn);

  /// Runs events until the queue is empty or `limit` events have executed.
  /// Returns the number of events executed.
  std::size_t RunAll(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= deadline; afterwards now() == deadline
  /// (time advances even if the queue drained earlier).
  std::size_t RunUntil(SimTime deadline);

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool PopOne(SimTime deadline);

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = SimTime::Zero();
  std::uint64_t next_seq_ = 0;
};

}  // namespace swmon
