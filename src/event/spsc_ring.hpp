// A bounded single-producer / single-consumer ring buffer.
//
// The parallel monitor path publishes event batches from the dataplane
// thread (the single producer) to each worker (the single consumer of its
// own ring). The transfer itself is lock-free — head/tail are acquire/
// release atomics and a slot is written by exactly one side at a time — but
// both blocking entry points fall back to a condition variable after a
// short spin so an idle worker parks instead of burning a core, and a
// producer ahead of a slow worker exerts backpressure instead of growing an
// unbounded queue.
//
// Wake elision: the first parallel design locked the wait mutex and
// notified on EVERY push and pop, which put a mutex round-trip on the hot
// path even when nobody was parked. Now each side advertises that it is
// about to park via a sleeper flag, using the classic store/fence/load
// (Dekker) protocol: the sleeper stores its flag and re-checks the indices
// behind a seq_cst fence; the waker stores the index and checks the flag
// behind its own seq_cst fence. The fences totally order the two sides, so
// either the sleeper sees the new index and never parks, or the waker sees
// the flag and takes the slow path (empty critical section + notify, which
// orders the store before the parked side's predicate re-check). The common
// case — counterpart running, not parked — is one fence and one relaxed
// load, no mutex.
//
// Items are delivered strictly in push order; Close() drains: pops keep
// succeeding until the ring is empty, then PopBlocking returns false.
// TryPopRun pops a whole run with a single head publication and a single
// wake check, which is what lets a worker amortize ring costs across every
// batch queued since it last looked.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/threading.hpp"

namespace swmon {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (masked indexing).
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return slots_.size(); }

  bool Empty() const {
    return head_.value.load(std::memory_order_acquire) ==
           tail_.value.load(std::memory_order_acquire);
  }

  /// Producer-side occupancy estimate (exact on the producer thread).
  std::size_t SizeApprox() const {
    return tail_.value.load(std::memory_order_acquire) -
           head_.value.load(std::memory_order_acquire);
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Producer side. Returns false (item untouched) when the ring is full.
  bool TryPush(T& item) {
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    if (tail - head_.value.load(std::memory_order_acquire) == slots_.size())
      return false;
    slots_[tail & mask_] = std::move(item);
    tail_.value.store(tail + 1, std::memory_order_release);
    MaybeWake(consumer_waiting_, consumer_cv_);
    return true;
  }

  /// Producer side; blocks (spin, then park) while the ring is full.
  /// Pushing into a closed ring is a programming error.
  void PushBlocking(T item) {
    SWMON_ASSERT_MSG(!closed(), "push into a closed SpscRing");
    while (!TryPush(item)) {
      for (int spin = 0; spin < kSpinIters; ++spin) {
        std::this_thread::yield();
        if (TryPush(item)) return;
      }
      producer_waiting_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (TryPush(item)) {  // recheck behind the fence: no lost wakeup
        producer_waiting_.store(false, std::memory_order_relaxed);
        return;
      }
      {
        std::unique_lock<std::mutex> lk(wait_mutex_);
        producer_cv_.wait(lk, [&] {
          return tail_.value.load(std::memory_order_relaxed) -
                     head_.value.load(std::memory_order_acquire) <
                 slots_.size();
        });
      }
      producer_waiting_.store(false, std::memory_order_relaxed);
    }
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T& out) {
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    if (head == tail_.value.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[head & mask_]);
    head_.value.store(head + 1, std::memory_order_release);
    MaybeWake(producer_waiting_, producer_cv_);
    return true;
  }

  /// Consumer side. Pops up to `max` items into `out` with one head
  /// publication and one producer wake check for the whole run. Returns the
  /// number popped (0 when empty).
  std::size_t TryPopRun(T* out, std::size_t max) {
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    const std::size_t avail =
        tail_.value.load(std::memory_order_acquire) - head;
    const std::size_t n = avail < max ? avail : max;
    if (n == 0) return 0;
    for (std::size_t i = 0; i < n; ++i)
      out[i] = std::move(slots_[(head + i) & mask_]);
    head_.value.store(head + n, std::memory_order_release);
    MaybeWake(producer_waiting_, producer_cv_);
    return n;
  }

  /// Consumer side; blocks until an item arrives. Returns false only once
  /// the ring is closed *and* fully drained.
  bool PopBlocking(T& out) {
    while (true) {
      if (TryPop(out)) return true;
      if (closed()) return TryPop(out);  // drain items pushed before Close
      for (int spin = 0; spin < kSpinIters; ++spin) {
        std::this_thread::yield();
        if (TryPop(out)) return true;
      }
      consumer_waiting_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (TryPop(out)) {  // recheck behind the fence: no lost wakeup
        consumer_waiting_.store(false, std::memory_order_relaxed);
        return true;
      }
      if (closed()) {
        consumer_waiting_.store(false, std::memory_order_relaxed);
        return TryPop(out);
      }
      {
        std::unique_lock<std::mutex> lk(wait_mutex_);
        consumer_cv_.wait(lk, [&] {
          return !Empty() || closed_.load(std::memory_order_acquire);
        });
      }
      consumer_waiting_.store(false, std::memory_order_relaxed);
    }
  }

  /// Producer side. Wakes both parties; subsequent pops drain, pushes abort.
  void Close() {
    closed_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(wait_mutex_);
    }
    consumer_cv_.notify_all();
    producer_cv_.notify_all();
  }

 private:
  static constexpr int kSpinIters = 64;

  void MaybeWake(std::atomic<bool>& flag, std::condition_variable& cv) {
    // Dekker pairing with the sleeper's store/fence/recheck: our index
    // store (release, above) followed by this fence is totally ordered
    // against the sleeper's flag store + fence. If we read the flag as
    // clear, the sleeper's post-fence recheck is guaranteed to see our
    // index update and it never parks; if we read it set, we pay the slow
    // path. The empty critical section orders our store before a parked
    // sleeper's predicate evaluation (same mutex) — no missed wakeups.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!flag.load(std::memory_order_relaxed)) return;
    {
      std::lock_guard<std::mutex> lk(wait_mutex_);
    }
    cv.notify_all();
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  PaddedAtomic<std::size_t> head_;  // next slot to pop (consumer-owned)
  PaddedAtomic<std::size_t> tail_;  // next slot to push (producer-owned)
  std::atomic<bool> closed_{false};

  std::atomic<bool> consumer_waiting_{false};
  std::atomic<bool> producer_waiting_{false};
  std::mutex wait_mutex_;
  std::condition_variable consumer_cv_;
  std::condition_variable producer_cv_;
};

}  // namespace swmon
