// A bounded single-producer / single-consumer ring buffer.
//
// The parallel monitor path publishes event batches from the dataplane
// thread (the single producer) to each worker (the single consumer of its
// own ring). The transfer itself is lock-free — head/tail are acquire/
// release atomics and a slot is written by exactly one side at a time — but
// both blocking entry points fall back to a condition variable after a
// short spin so an idle worker parks instead of burning a core, and a
// producer ahead of a slow worker exerts backpressure instead of growing an
// unbounded queue. The wake protocol locks the (empty) mutex *after* the
// slot store and before notifying, which orders the store before the
// sleeper's predicate re-check — no missed wakeups, and ThreadSanitizer
// sees the happens-before edge.
//
// Items are delivered strictly in push order; Close() drains: pops keep
// succeeding until the ring is empty, then PopBlocking returns false.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/threading.hpp"

namespace swmon {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (masked indexing).
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return slots_.size(); }

  bool Empty() const {
    return head_.value.load(std::memory_order_acquire) ==
           tail_.value.load(std::memory_order_acquire);
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Producer side. Returns false (item untouched) when the ring is full.
  bool TryPush(T& item) {
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    if (tail - head_.value.load(std::memory_order_acquire) == slots_.size())
      return false;
    slots_[tail & mask_] = std::move(item);
    tail_.value.store(tail + 1, std::memory_order_release);
    Wake(consumer_cv_);
    return true;
  }

  /// Producer side; blocks (spin, then park) while the ring is full.
  /// Pushing into a closed ring is a programming error.
  void PushBlocking(T item) {
    SWMON_ASSERT_MSG(!closed(), "push into a closed SpscRing");
    while (!TryPush(item)) {
      for (int spin = 0; spin < kSpinIters; ++spin) {
        std::this_thread::yield();
        if (TryPush(item)) return;
      }
      std::unique_lock<std::mutex> lk(wait_mutex_);
      producer_cv_.wait(lk, [&] {
        return tail_.value.load(std::memory_order_relaxed) -
                   head_.value.load(std::memory_order_acquire) <
               slots_.size();
      });
    }
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T& out) {
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    if (head == tail_.value.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[head & mask_]);
    head_.value.store(head + 1, std::memory_order_release);
    Wake(producer_cv_);
    return true;
  }

  /// Consumer side; blocks until an item arrives. Returns false only once
  /// the ring is closed *and* fully drained.
  bool PopBlocking(T& out) {
    while (true) {
      if (TryPop(out)) return true;
      if (closed()) return TryPop(out);  // drain items pushed before Close
      for (int spin = 0; spin < kSpinIters; ++spin) {
        std::this_thread::yield();
        if (TryPop(out)) return true;
      }
      std::unique_lock<std::mutex> lk(wait_mutex_);
      consumer_cv_.wait(lk, [&] {
        return !Empty() || closed_.load(std::memory_order_acquire);
      });
    }
  }

  /// Producer side. Wakes both parties; subsequent pops drain, pushes abort.
  void Close() {
    closed_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(wait_mutex_);
    }
    consumer_cv_.notify_all();
    producer_cv_.notify_all();
  }

 private:
  static constexpr int kSpinIters = 64;

  void Wake(std::condition_variable& cv) {
    // The empty critical section orders the preceding head/tail store
    // before any sleeper's predicate evaluation (which runs under the same
    // mutex): either the sleeper sees the new index, or it blocks until we
    // release and then gets the notify.
    {
      std::lock_guard<std::mutex> lk(wait_mutex_);
    }
    cv.notify_one();
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  PaddedAtomic<std::size_t> head_;  // next slot to pop (consumer-owned)
  PaddedAtomic<std::size_t> tail_;  // next slot to push (producer-owned)
  std::atomic<bool> closed_{false};

  std::mutex wait_mutex_;
  std::condition_variable consumer_cv_;
  std::condition_variable producer_cv_;
};

}  // namespace swmon
