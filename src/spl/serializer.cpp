#include <cstdio>

#include "spl/spl.hpp"

namespace swmon {
namespace {

std::string Num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string Hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string DurationText(Duration d) {
  // Pick the largest exact unit so the parser round-trips it.
  const std::int64_t ns = d.nanos();
  if (ns % 1000000000 == 0) return Num(static_cast<std::uint64_t>(ns / 1000000000)) + "s";
  if (ns % 1000000 == 0) return Num(static_cast<std::uint64_t>(ns / 1000000)) + "ms";
  if (ns % 1000 == 0) return Num(static_cast<std::uint64_t>(ns / 1000)) + "us";
  return Num(static_cast<std::uint64_t>(ns)) + "ns";
}

const char* EventTypeText(const std::optional<DataplaneEventType>& t) {
  if (!t) return "any";
  switch (*t) {
    case DataplaneEventType::kArrival: return "arrival";
    case DataplaneEventType::kEgress: return "egress";
    case DataplaneEventType::kLinkStatus: return "link";
  }
  return "any";
}

void AppendCondition(std::string& out, const char* keyword,
                     const Condition& c, const Property& prop,
                     const char* indent) {
  out += indent;
  out += keyword;
  out += " ";
  out += FieldName(c.field);
  if (c.mask != ~std::uint64_t{0}) out += "/" + Hex(c.mask);
  out += c.op == CmpOp::kEq ? " == " : " != ";
  if (c.rhs.kind == Term::Kind::kVar) {
    out += "$" + prop.vars[c.rhs.var];
  } else {
    out += Num(c.rhs.constant);
  }
  if (c.allow_absent) out += " or_absent";
  out += ";\n";
}

void AppendPatternBody(std::string& out, const Pattern& p,
                       const Property& prop, const char* indent) {
  for (const Condition& c : p.conditions)
    AppendCondition(out, "match", c, prop, indent);
  for (const Condition& c : p.forbidden)
    AppendCondition(out, "forbid", c, prop, indent);
}

}  // namespace

std::string SerializeSpl(const Property& prop) {
  std::string out = "property " + prop.name + " {\n";
  if (!prop.description.empty())
    out += "  description \"" + prop.description + "\";\n";
  out += "  mode " + std::string(InstanceIdModeName(prop.id_mode)) + ";\n";
  if (!prop.vars.empty()) {
    out += "  vars ";
    for (std::size_t i = 0; i < prop.vars.size(); ++i) {
      if (i) out += ", ";
      out += prop.vars[i];
    }
    out += ";\n";
  }

  for (const Stage& stage : prop.stages) {
    if (stage.kind == StageKind::kTimeout) {
      out += "  timeout \"" + stage.label + "\" {\n";
    } else {
      out += "  stage \"" + stage.label + "\" on " +
             EventTypeText(stage.pattern.event_type) + " {\n";
    }
    AppendPatternBody(out, stage.pattern, prop, "    ");
    for (const Binding& b : stage.bindings) {
      out += "    bind " + prop.vars[b.var] + " = ";
      switch (b.kind) {
        case Binding::Kind::kField:
          out += FieldName(b.field);
          break;
        case Binding::Kind::kHashPort: {
          out += "hash(";
          for (std::size_t i = 0; i < b.hash_inputs.size(); ++i) {
            if (i) out += ", ";
            out += FieldName(b.hash_inputs[i]);
          }
          out += ") % " + Num(b.modulus) + " + " + Num(b.base);
          break;
        }
        case Binding::Kind::kRoundRobin:
          out += "round_robin % " + Num(b.modulus) + " + " + Num(b.base);
          break;
      }
      out += ";\n";
    }
    if (stage.min_count > 1)
      out += "    count " + Num(stage.min_count) + ";\n";
    if (stage.window_from_field) {
      out += "    window field " +
             std::string(FieldName(*stage.window_from_field));
      if (stage.refresh_window_on_rematch) out += " refresh";
      out += ";\n";
    } else if (stage.window > Duration::Zero()) {
      out += "    window " + DurationText(stage.window);
      if (stage.refresh_window_on_rematch) out += " refresh";
      out += ";\n";
    }
    for (const Pattern& abort : stage.aborts) {
      out += "    unless on " + std::string(EventTypeText(abort.event_type)) +
             " {\n";
      AppendPatternBody(out, abort, prop, "      ");
      out += "    }\n";
    }
    out += "  }\n";
  }

  if (!prop.suppression_key_fields.empty()) {
    out += "  suppress key (";
    for (std::size_t i = 0; i < prop.suppression_key_fields.size(); ++i) {
      if (i) out += ", ";
      out += FieldName(prop.suppression_key_fields[i]);
    }
    out += ");\n";
  }
  for (const Suppressor& sup : prop.suppressors) {
    out += "  suppress when on " +
           std::string(EventTypeText(sup.pattern.event_type)) + " {\n";
    AppendPatternBody(out, sup.pattern, prop, "    ");
    out += "  } key (";
    for (std::size_t i = 0; i < sup.key_fields.size(); ++i) {
      if (i) out += ", ";
      out += FieldName(sup.key_fields[i]);
    }
    out += ");\n";
  }
  out += "}\n";
  return out;
}

}  // namespace swmon
