#include <cctype>
#include <map>
#include <vector>

#include "spl/spl.hpp"

namespace swmon {

std::optional<FieldId> FieldIdByName(std::string_view name) {
  static const auto* kByName = [] {
    auto* m = new std::map<std::string, FieldId, std::less<>>();
    for (std::size_t i = 0; i < kNumFieldIds; ++i) {
      const auto id = static_cast<FieldId>(i);
      (*m)[FieldName(id)] = id;
    }
    return m;
  }();
  const auto it = kByName->find(name);
  if (it == kByName->end()) return std::nullopt;
  return it->second;
}

namespace {

// ------------------------------------------------------------------- lexer

enum class Tok {
  kIdent,
  kString,
  kNumber,
  kPunct,  // one of { } ( ) ; , $ / % + = == !=
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  std::uint64_t number = 0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  /// Tokenizes everything up front; returns an error message or "".
  std::string Run(std::vector<Token>& out) {
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= text_.size()) break;
      const char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent());
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        Token t;
        if (auto err = LexNumberish(t); !err.empty()) return err;
        out.push_back(std::move(t));
      } else if (c == '"') {
        Token t;
        if (auto err = LexString(t); !err.empty()) return err;
        out.push_back(std::move(t));
      } else {
        Token t;
        if (auto err = LexPunct(t); !err.empty()) return err;
        out.push_back(std::move(t));
      }
    }
    out.push_back(Token{Tok::kEnd, "<end>", 0, line_});
    return "";
  }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Token LexIdent() {
    Token t;
    t.kind = Tok::kIdent;
    t.line = line_;
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.' || c == '\'') {
        ++pos_;
      } else {
        break;
      }
    }
    t.text = std::string(text_.substr(start, pos_ - start));
    return t;
  }

  /// Numbers, or the address literals that start with a digit:
  /// decimal, 0x-hex, dotted IPv4, colon-separated MAC, or a duration
  /// (digits immediately followed by ns/us/ms/s — the suffix stays in the
  /// token text for the parser).
  std::string LexNumberish(Token& t) {
    t.kind = Tok::kNumber;
    t.line = line_;
    const std::size_t start = pos_;
    bool hex = false;
    if (text_.substr(pos_, 2) == "0x" || text_.substr(pos_, 2) == "0X") {
      hex = true;
      pos_ += 2;
    }
    auto is_digit = [&](char c) {
      return hex ? std::isxdigit(static_cast<unsigned char>(c)) != 0
                 : std::isdigit(static_cast<unsigned char>(c)) != 0;
    };
    while (pos_ < text_.size() &&
           (is_digit(text_[pos_]) ||
            (!hex && (text_[pos_] == '.' || text_[pos_] == ':')) ||
            (hex && std::isxdigit(static_cast<unsigned char>(text_[pos_]))))) {
      ++pos_;
    }
    // Duration suffix.
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    t.text = std::string(text_.substr(start, pos_ - start));
    return "";
  }

  std::string LexString(Token& t) {
    t.kind = Tok::kString;
    t.line = line_;
    ++pos_;  // opening quote
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ >= text_.size())
      return "line " + std::to_string(t.line) + ": unterminated string";
    t.text = std::string(text_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return "";
  }

  std::string LexPunct(Token& t) {
    t.kind = Tok::kPunct;
    t.line = line_;
    const char c = text_[pos_];
    if (c == '=' || c == '!') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
        t.text = std::string(text_.substr(pos_, 2));
        pos_ += 2;
        return "";
      }
      if (c == '=') {
        t.text = "=";
        ++pos_;
        return "";
      }
      return "line " + std::to_string(line_) + ": stray '!'";
    }
    static constexpr std::string_view kSingles = "{}();,$/%+";
    if (kSingles.find(c) != std::string_view::npos) {
      t.text = std::string(1, c);
      ++pos_;
      return "";
    }
    return "line " + std::to_string(line_) + ": unexpected character '" +
           std::string(1, c) + "'";
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

// ------------------------------------------------------------------ parser

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  SplParseResult Run() {
    SplParseResult result;
    Property prop;
    if (!ParseProperty(prop)) {
      result.error = error_;
      return result;
    }
    if (const std::string err = prop.Validate(); !err.empty()) {
      result.error = "validation: " + err;
      return result;
    }
    result.property = std::move(prop);
    return result;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  bool AtPunct(std::string_view p) const {
    return Peek().kind == Tok::kPunct && Peek().text == p;
  }
  bool AtIdent(std::string_view kw) const {
    return Peek().kind == Tok::kIdent && Peek().text == kw;
  }
  bool EatPunct(std::string_view p) {
    if (!AtPunct(p)) return false;
    ++pos_;
    return true;
  }
  bool EatIdent(std::string_view kw) {
    if (!AtIdent(kw)) return false;
    ++pos_;
    return true;
  }
  bool Fail(const std::string& msg) {
    if (error_.empty())
      error_ = "line " + std::to_string(Peek().line) + ": " + msg +
               " (got '" + Peek().text + "')";
    return false;
  }

  bool ExpectPunct(std::string_view p) {
    return EatPunct(p) || Fail("expected '" + std::string(p) + "'");
  }
  bool ExpectIdent(std::string_view kw) {
    return EatIdent(kw) || Fail("expected '" + std::string(kw) + "'");
  }

  // --- small literals ---

  /// Decimal/hex/dotted-IPv4/MAC value; returns false on error.
  bool ParseValue(std::uint64_t& out) {
    if (Peek().kind == Tok::kIdent) {
      // Egress-action names.
      if (EatIdent("drop")) {
        out = static_cast<std::uint64_t>(EgressActionValue::kDrop);
        return true;
      }
      if (EatIdent("forward")) {
        out = static_cast<std::uint64_t>(EgressActionValue::kForward);
        return true;
      }
      if (EatIdent("flood")) {
        out = static_cast<std::uint64_t>(EgressActionValue::kFlood);
        return true;
      }
      // MAC literals starting with a hex letter lex as idents.
      if (ParseMac(Peek().text, out)) {
        ++pos_;
        return true;
      }
      return Fail("expected a value");
    }
    if (Peek().kind != Tok::kNumber) return Fail("expected a value");
    const std::string text = Next().text;
    if (text.find(':') != std::string::npos) {
      if (!ParseMac(text, out)) return Fail("bad mac literal");
      return true;
    }
    if (text.find('.') != std::string::npos) {
      unsigned a, b, c, d;
      if (std::sscanf(text.c_str(), "%u.%u.%u.%u", &a, &b, &c, &d) != 4 ||
          a > 255 || b > 255 || c > 255 || d > 255)
        return Fail("bad IPv4 literal");
      out = Ipv4Addr(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d))
                .bits();
      return true;
    }
    char* end = nullptr;
    out = std::strtoull(text.c_str(), &end, 0);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    return true;
  }

  static bool ParseMac(const std::string& text, std::uint64_t& out) {
    unsigned b[6];
    if (std::sscanf(text.c_str(), "%x:%x:%x:%x:%x:%x", &b[0], &b[1], &b[2],
                    &b[3], &b[4], &b[5]) != 6)
      return false;
    out = 0;
    for (int i = 0; i < 6; ++i) {
      if (b[i] > 255) return false;
      out = out << 8 | b[i];
    }
    return true;
  }

  bool ParseDuration(Duration& out) {
    if (Peek().kind != Tok::kNumber) return Fail("expected a duration");
    const std::string text = Next().text;
    std::size_t i = 0;
    std::uint64_t n = 0;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i])))
      n = n * 10 + static_cast<std::uint64_t>(text[i++] - '0');
    const std::string unit = text.substr(i);
    const auto v = static_cast<std::int64_t>(n);
    if (unit == "ns") out = Duration::Nanos(v);
    else if (unit == "us") out = Duration::Micros(v);
    else if (unit == "ms") out = Duration::Millis(v);
    else if (unit == "s") out = Duration::Seconds(v);
    else return Fail("duration needs a unit (ns/us/ms/s)");
    return true;
  }

  bool ParseUint(std::uint32_t& out) {
    if (Peek().kind != Tok::kNumber) return Fail("expected a number");
    char* end = nullptr;
    out = static_cast<std::uint32_t>(
        std::strtoul(Next().text.c_str(), &end, 0));
    return true;
  }

  bool ParseFieldId(FieldId& out) {
    if (Peek().kind != Tok::kIdent) return Fail("expected a field name");
    const auto id = FieldIdByName(Peek().text);
    if (!id) return Fail("unknown field '" + Peek().text + "'");
    ++pos_;
    out = *id;
    return true;
  }

  bool ParseVarRef(VarId& out) {
    if (Peek().kind != Tok::kIdent) return Fail("expected a variable name");
    const auto it = var_ids_.find(Peek().text);
    if (it == var_ids_.end())
      return Fail("unknown variable '" + Peek().text + "'");
    ++pos_;
    out = it->second;
    return true;
  }

  // --- grammar ---

  bool ParseProperty(Property& prop) {
    if (!ExpectIdent("property")) return false;
    if (Peek().kind != Tok::kIdent) return Fail("expected a property name");
    prop.name = Next().text;
    if (!ExpectPunct("{")) return false;
    while (!AtPunct("}")) {
      if (EatIdent("description")) {
        if (Peek().kind != Tok::kString) return Fail("expected a string");
        prop.description = Next().text;
        if (!ExpectPunct(";")) return false;
      } else if (EatIdent("mode")) {
        if (EatIdent("exact")) prop.id_mode = InstanceIdMode::kExact;
        else if (EatIdent("symmetric")) prop.id_mode = InstanceIdMode::kSymmetric;
        else if (EatIdent("wandering")) prop.id_mode = InstanceIdMode::kWandering;
        else return Fail("mode must be exact/symmetric/wandering");
        if (!ExpectPunct(";")) return false;
      } else if (EatIdent("vars")) {
        do {
          if (Peek().kind != Tok::kIdent) return Fail("expected a var name");
          var_ids_[Peek().text] = static_cast<VarId>(prop.vars.size());
          prop.vars.push_back(Next().text);
        } while (EatPunct(","));
        if (!ExpectPunct(";")) return false;
      } else if (AtIdent("stage") || AtIdent("timeout")) {
        Stage stage;
        if (!ParseStage(stage)) return false;
        prop.stages.push_back(std::move(stage));
      } else if (EatIdent("suppress")) {
        if (!ParseSuppress(prop)) return false;
      } else {
        return Fail("expected description/mode/vars/stage/timeout/suppress");
      }
    }
    return ExpectPunct("}");
  }

  bool ParseStage(Stage& stage) {
    if (EatIdent("timeout")) {
      stage.kind = StageKind::kTimeout;
    } else {
      if (!ExpectIdent("stage")) return false;
      stage.kind = StageKind::kEvent;
    }
    if (Peek().kind == Tok::kString) stage.label = Next().text;
    if (stage.kind == StageKind::kEvent) {
      if (!ExpectIdent("on")) return false;
      if (!ParseEventType(stage.pattern.event_type)) return false;
    }
    if (!ExpectPunct("{")) return false;
    while (!AtPunct("}")) {
      if (AtIdent("match") || AtIdent("forbid")) {
        const bool forbidden = AtIdent("forbid");
        ++pos_;
        Condition c;
        if (!ParseCondition(c)) return false;
        (forbidden ? stage.pattern.forbidden : stage.pattern.conditions)
            .push_back(c);
        if (!ExpectPunct(";")) return false;
      } else if (EatIdent("bind")) {
        Binding b;
        if (!ParseBinding(b)) return false;
        stage.bindings.push_back(std::move(b));
        if (!ExpectPunct(";")) return false;
      } else if (EatIdent("count")) {
        if (!ParseUint(stage.min_count)) return false;
        if (!ExpectPunct(";")) return false;
      } else if (EatIdent("window")) {
        if (EatIdent("field")) {
          FieldId f;
          if (!ParseFieldId(f)) return false;
          stage.window_from_field = f;
        } else {
          if (!ParseDuration(stage.window)) return false;
        }
        if (EatIdent("refresh")) stage.refresh_window_on_rematch = true;
        if (!ExpectPunct(";")) return false;
      } else if (EatIdent("unless")) {
        Pattern abort;
        if (!ParseUnless(abort)) return false;
        stage.aborts.push_back(std::move(abort));
      } else {
        return Fail("expected match/forbid/bind/window/count/unless");
      }
    }
    return ExpectPunct("}");
  }

  bool ParseEventType(std::optional<DataplaneEventType>& out) {
    if (EatIdent("arrival")) out = DataplaneEventType::kArrival;
    else if (EatIdent("egress")) out = DataplaneEventType::kEgress;
    else if (EatIdent("link")) out = DataplaneEventType::kLinkStatus;
    else if (EatIdent("any")) out = std::nullopt;
    else return Fail("event type must be arrival/egress/link/any");
    return true;
  }

  bool ParseCondition(Condition& c) {
    if (!ParseFieldId(c.field)) return false;
    if (EatPunct("/")) {
      if (Peek().kind != Tok::kNumber) return Fail("expected a mask");
      char* end = nullptr;
      c.mask = std::strtoull(Next().text.c_str(), &end, 0);
    }
    if (EatPunct("==")) c.op = CmpOp::kEq;
    else if (EatPunct("!=")) c.op = CmpOp::kNe;
    else return Fail("expected '==' or '!='");
    if (EatPunct("$")) {
      VarId v;
      if (!ParseVarRef(v)) return false;
      c.rhs = Term::Var(v);
    } else {
      std::uint64_t value;
      if (!ParseValue(value)) return false;
      c.rhs = Term::Const(value);
    }
    if (EatIdent("or_absent")) c.allow_absent = true;
    return true;
  }

  bool ParseBinding(Binding& b) {
    if (!ParseVarRef(b.var)) return false;
    if (!ExpectPunct("=")) return false;
    if (EatIdent("hash")) {
      b.kind = Binding::Kind::kHashPort;
      if (!ExpectPunct("(")) return false;
      do {
        FieldId f;
        if (!ParseFieldId(f)) return false;
        b.hash_inputs.push_back(f);
      } while (EatPunct(","));
      if (!ExpectPunct(")")) return false;
      return ParseModBase(b);
    }
    if (EatIdent("round_robin")) {
      b.kind = Binding::Kind::kRoundRobin;
      return ParseModBase(b);
    }
    b.kind = Binding::Kind::kField;
    return ParseFieldId(b.field);
  }

  bool ParseModBase(Binding& b) {
    if (!ExpectPunct("%")) return false;
    if (!ParseUint(b.modulus)) return false;
    if (EatPunct("+")) {
      if (!ParseUint(b.base)) return false;
    }
    return true;
  }

  bool ParseUnless(Pattern& abort) {
    if (!ExpectIdent("on")) return false;
    if (!ParseEventType(abort.event_type)) return false;
    if (!ExpectPunct("{")) return false;
    while (!AtPunct("}")) {
      const bool forbidden = AtIdent("forbid");
      if (!forbidden && !AtIdent("match"))
        return Fail("expected match/forbid");
      ++pos_;
      Condition c;
      if (!ParseCondition(c)) return false;
      (forbidden ? abort.forbidden : abort.conditions).push_back(c);
      if (!ExpectPunct(";")) return false;
    }
    return ExpectPunct("}");
  }

  bool ParseSuppress(Property& prop) {
    if (EatIdent("key")) {
      if (!ParseFieldList(prop.suppression_key_fields)) return false;
      return ExpectPunct(";");
    }
    if (!ExpectIdent("when")) return false;
    Suppressor sup;
    if (!ExpectIdent("on")) return false;
    if (!ParseEventType(sup.pattern.event_type)) return false;
    if (!ExpectPunct("{")) return false;
    while (!AtPunct("}")) {
      const bool forbidden = AtIdent("forbid");
      if (!forbidden && !AtIdent("match"))
        return Fail("expected match/forbid");
      ++pos_;
      Condition c;
      if (!ParseCondition(c)) return false;
      (forbidden ? sup.pattern.forbidden : sup.pattern.conditions).push_back(c);
      if (!ExpectPunct(";")) return false;
    }
    if (!ExpectPunct("}")) return false;
    if (!ExpectIdent("key")) return false;
    if (!ParseFieldList(sup.key_fields)) return false;
    prop.suppressors.push_back(std::move(sup));
    return ExpectPunct(";");
  }

  bool ParseFieldList(std::vector<FieldId>& out) {
    if (!ExpectPunct("(")) return false;
    do {
      FieldId f;
      if (!ParseFieldId(f)) return false;
      out.push_back(f);
    } while (EatPunct(","));
    return ExpectPunct(")");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::string error_;
  std::map<std::string, VarId, std::less<>> var_ids_;
};

}  // namespace

SplParseResult ParseSpl(std::string_view text) {
  std::vector<Token> tokens;
  Lexer lexer(text);
  if (std::string err = lexer.Run(tokens); !err.empty()) {
    SplParseResult r;
    r.error = err;
    return r;
  }
  return Parser(std::move(tokens)).Run();
}

}  // namespace swmon
