// SPL — the Switch Property Language.
//
// The paper's Varanus "provides a query language for properties"; SPL is
// this library's equivalent: a textual form of the Property spec, so
// monitors can be written, stored, and audited as plain files instead of
// C++ builder calls. Grammar (see docs in README):
//
//   property fw-return-not-dropped {
//     description "After seeing traffic from A to B, ...";
//     mode symmetric;
//     vars A, B;
//     stage "A->B outbound" on arrival {
//       match in_port == 1;
//       match tcp_flags/0x5 == 0 or_absent;
//       bind A = ip_src;
//       bind B = ip_dst;
//       window 30s refresh;
//     }
//     stage "B->A dropped" on egress {
//       match ip_src == $B;
//       match ip_dst == $A;
//       match egress_action == drop;
//       unless on arrival { match ip_src == $A; match ip_dst == $B;
//                           match tcp_flags/0x5 != 0; }
//     }
//   }
//
// Timeout-action stages: `timeout "label" { unless on egress { ... } }`.
// Negative-tuple groups: `forbid <field> == $var;` inside a stage.
// Builtin bindings: `bind E = hash(ip_src, ip_dst) % 4 + 2;`,
//                   `bind E = round_robin % 4 + 2;`.
// Lease-style windows: `window field dhcp_lease_secs;`.
// Suppression: `suppress key (arp_spa);`
//              `suppress when on arrival { match arp_op == 2; } key (arp_spa);`
//
// Values may be decimal, 0x-hex, dotted IPv4 (10.0.0.1), mac addresses
// (aa:bb:cc:dd:ee:ff), or the egress-action names drop/forward/flood.
//
// SerializeSpl is the exact inverse of ParseSpl: for every Property,
// ParseSpl(SerializeSpl(p)) == p (tested across the whole catalog).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "monitor/spec.hpp"

namespace swmon {

struct SplParseResult {
  std::optional<Property> property;
  std::string error;  // empty on success; includes a line number otherwise

  bool ok() const { return property.has_value(); }
};

/// Parses one SPL property definition. The parsed property is additionally
/// run through Property::Validate; structural errors are reported the same
/// way as syntax errors.
SplParseResult ParseSpl(std::string_view text);

/// Renders a property as canonical SPL.
std::string SerializeSpl(const Property& property);

/// Resolves a field name as printed by FieldName() back to its id.
std::optional<FieldId> FieldIdByName(std::string_view name);

}  // namespace swmon
