// The one key-tuple hash every probe index uses.
//
// OpenMap (compiled engine), and the batch-mode fused-key table both hash
// u64 key tuples with this exact mixing (FlowKey::Hash's FNV variant over a
// span). Keeping it in one place is what makes hash fusion sound: a hash row
// the FusedKeyTable precomputes from raw event fields is bit-equal to the
// hash OpenMap would have computed from the same key words, so
// OpenMap::FindHashed can consume precomputed rows directly.
#pragma once

#include <cstdint>

namespace swmon {

inline std::uint64_t HashKeySpan(const std::uint64_t* key, std::uint32_t len) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint32_t i = 0; i < len; ++i) {
    h ^= key[i];
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace swmon
