// Feature analysis: computes, from a Property's structure, which of the
// paper's semantic features it requires — the columns of Table 1.
//
// Fields      — deepest parse layer among all referenced fields.
// History     — more than one observation stage, or any var-linked condition.
// Timeouts    — any stage carries a window whose expiry *expires* state
//               (Feature 3), i.e. the following stage is an event.
// Obligation  — any stage carries abort patterns (Feature 4's "until").
// Identity    — any condition or binding on kPacketId (Feature 5).
// NegMatch    — any Ne condition against a bound variable or constant, or a
//               forbidden group (Feature 6).
// TimeoutActs — any kTimeout stage (Feature 7).
// MultipleMatch — any non-initial event stage with no var-linked equality
//               (one event may advance many instances — Feature 8).
// InstanceId  — declared mode (exact/symmetric/wandering); the declaration
//               is the paper's (Table 1), since symmetric-vs-exact is a
//               judgment about field roles the structure alone can't make.
//
// Where the computed row differs from the paper's published row (the
// Obligation column involves interpretation — see DESIGN.md §5), the
// Table-1 bench prints both.
#pragma once

#include <string>
#include <vector>

#include "monitor/spec.hpp"

namespace swmon {

struct FeatureSet {
  FieldLayer fields = FieldLayer::kL2;
  bool history = false;
  bool timeouts = false;
  bool obligation = false;
  bool identity = false;
  bool negative_match = false;
  bool timeout_actions = false;
  bool multiple_match = false;
  InstanceIdMode id_mode = InstanceIdMode::kExact;

  bool operator==(const FeatureSet&) const = default;

  /// One Table-1-style row: "L4 | • | | • | ..." (without the name column).
  std::string ToRow() const;
};

FeatureSet AnalyzeFeatures(const Property& property);

/// The property's static *interest signature*: the set of DataplaneEventTypes
/// that can appear in any event-stage, abort, or suppressor pattern. A
/// pattern without an event_type constraint matches every type, so it widens
/// the signature to kAllEventTypes. Timeout stages contribute nothing by
/// themselves (they fire from the clock, not from events), but their abort
/// patterns do. MonitorSet dispatches an event only to engines whose
/// signature contains its type — an event outside the signature provably
/// cannot change engine state beyond advancing the clock (DESIGN.md
/// "Dispatch").
EventTypeMask InterestSignature(const Property& property);

/// "arrival|egress|link" rendering of a signature, for bench/debug output.
std::string InterestSignatureString(EventTypeMask mask);

/// Names of the columns on which two feature rows differ (e.g.
/// {"obligation", "timeouts"}). Empty when the rows agree.
std::vector<std::string> DiffFeatureColumns(const FeatureSet& a,
                                            const FeatureSet& b);

}  // namespace swmon
