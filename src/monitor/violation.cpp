#include "monitor/violation.hpp"

#include <cstdio>

namespace swmon {

const char* ProvenanceLevelName(ProvenanceLevel level) {
  switch (level) {
    case ProvenanceLevel::kNone: return "none";
    case ProvenanceLevel::kLimited: return "limited";
    case ProvenanceLevel::kFull: return "full";
  }
  return "?";
}

std::string Violation::ToString() const {
  std::string out = "VIOLATION " + property + " at " + time.ToString() +
                    " (trigger: " + trigger_stage + ")";
  if (!bindings.empty()) {
    out += " where";
    for (const auto& [name, value] : bindings) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), " %s=%llu", name.c_str(),
                    static_cast<unsigned long long>(value));
      out += buf;
    }
  }
  if (!history.empty()) {
    out += "\n  provenance:";
    for (const auto& ev : history) {
      out += "\n    [stage " + std::to_string(ev.stage + 1) + "] " +
             ev.time.ToString() + " " + ev.fields.ToString();
    }
  }
  return out;
}

}  // namespace swmon
