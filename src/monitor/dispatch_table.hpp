// Interest-signature dispatch lists, shared by the serial MonitorSet and
// each ParallelMonitorSet worker shard.
//
// For every DataplaneEventType the table keeps two lists in engine-attach
// order: engines whose property can react to the type (interested — they
// get the full ProcessDispatchedEvent) and the rest (filtered — they only
// observe the timestamp so their timeout windows keep expiring). Entries
// carry the engine's attach index so the parallel path can tag violations
// with a stable merge key; the serial path ignores it.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "monitor/property_monitor.hpp"

namespace swmon {

class DispatchTable {
 public:
  struct Entry {
    PropertyMonitor* engine;
    std::uint32_t attach_index;  // position in the owning set's Add() order
  };
  struct Lists {
    std::vector<Entry> interested;
    std::vector<Entry> filtered;
  };

  /// Slots the engine into interested/filtered per event type from its
  /// interest signature. Call in attach order — list order is dispatch
  /// order, and dispatch order is part of the determinism contract.
  void Register(PropertyMonitor* engine, std::uint32_t attach_index) {
    const EventTypeMask sig = engine->interest_signature();
    for (std::size_t t = 0; t < kNumDataplaneEventTypes; ++t) {
      auto& list = lists_[t];
      (sig >> t & 1 ? list.interested : list.filtered)
          .push_back(Entry{engine, attach_index});
    }
  }

  /// Removes every entry for `engine`, preserving the relative order of the
  /// remaining entries (detach must not perturb dispatch order for resident
  /// engines — that order is part of the determinism contract).
  void Unregister(const PropertyMonitor* engine) {
    for (auto& lists : lists_) {
      for (auto* list : {&lists.interested, &lists.filtered}) {
        list->erase(std::remove_if(list->begin(), list->end(),
                                   [engine](const Entry& e) {
                                     return e.engine == engine;
                                   }),
                    list->end());
      }
    }
  }

  const Lists& lists(DataplaneEventType type) const {
    return lists_[static_cast<std::size_t>(type)];
  }

  /// Delivers one event to this table's engines (interested: full
  /// processing; filtered: clock only) and bumps the caller's counters by
  /// the per-delivery amounts — the counter contract is identical for the
  /// serial per-event path and the batched path, which is what makes
  /// MonitorStats aggregation agree between them.
  void Deliver(const DataplaneEvent& event, std::uint64_t& dispatched,
               std::uint64_t& filtered) const {
    const Lists& list = lists(event.type);
    for (const Entry& e : list.interested)
      e.engine->ProcessDispatchedEvent(event);
    dispatched += list.interested.size();
    // All-interested fast path: when nothing is filtered for this type
    // (the common case — one attached property subscribed to every event
    // type), skip the filtered walk and its counter write entirely so the
    // pre-filtered path costs no more than direct delivery (bench_dispatch
    // guards the parity).
    if (list.filtered.empty()) return;
    for (const Entry& e : list.filtered) e.engine->NoteFilteredEvent(event.time);
    filtered += list.filtered.size();
  }

 private:
  std::array<Lists, kNumDataplaneEventTypes> lists_;
};

}  // namespace swmon
