// Cross-property fused key hashing for batch-mode execution.
//
// Every compiled probe site whose key is a pure projection of event fields
// (the stage-0 dedup key when stage 0 binds only kBindField, every linked
// advance-stage key, the suppression key) declares its field tuple to the
// set that owns it. The FusedKeyTable interns those tuples — properties
// whose routing keys extract the same event fields share one slot — and,
// once per batch, computes one hash row per *unique* tuple: 13 properties
// keyed on the same MAC/IP pay one hash per event, not 13.
//
// A row entry is exactly HashKeySpan over the tuple's field values in
// declaration order, i.e. bit-equal to the hash OpenMap::Find would compute
// from the key words the engine builds at the probe site, so engines consume
// rows via OpenMap::FindHashed without re-hashing. The per-event valid byte
// is 1 iff the row entry was computed; an invalid entry makes the consumer
// hash inline at the probe (scalar-identical), so the hash pass is free to
// skip any (tuple, event) pair it judges unlikely to be consumed — wrong
// event type, missing key fields, a failing KeyConstFilter gate, or a tuple
// no engine demanded this batch (the `want` mask) — without ever changing
// which probes run or what they observe.
//
// Tables are rebuilt (Reset + re-Intern + re-BindFusedRows) whenever the
// owning set's engine population changes — hot attach/detach invalidates the
// groups, exactly like DispatchTable registration.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "dataplane/switch.hpp"
#include "monitor/key_hash.hpp"
#include "monitor/property_monitor.hpp"  // KeyConstFilter

namespace swmon {

class FusedKeyTable {
 public:
  /// Drops every interned tuple (engines must re-Intern and be re-bound).
  void Reset() {
    tuples_.clear();
    interned_ = 0;
  }

  /// Interns a field tuple, returning its slot. Identical tuples — same
  /// fields in the same order — share a slot across engines; that sharing
  /// is the fusion. `types` is the event-type set on which the declaring
  /// site can consume the row; sharing engines OR their sets together, so
  /// a tuple is hashed for an event iff at least one consumer could run.
  /// `filter` is the declaring site's reachability gate; it survives only
  /// while every sharer declares the identical gate (an ungated or
  /// differently-gated sharer widens the tuple to always-hash — the gate
  /// must admit every event any consumer could probe on).
  std::uint32_t Intern(const std::vector<std::uint16_t>& fields,
                       EventTypeMask types, const KeyConstFilter& filter) {
    ++interned_;
    for (std::uint32_t s = 0; s < tuples_.size(); ++s) {
      if (tuples_[s].fields == fields) {
        tuples_[s].types |= types;
        if (!tuples_[s].filter.SameAs(filter)) tuples_[s].filter.valid = false;
        return s;
      }
    }
    Tuple t;
    t.fields = fields;
    t.presence = 0;
    for (const std::uint16_t f : fields) t.presence |= std::uint64_t{1} << f;
    t.types = types;
    t.filter = filter;
    tuples_.push_back(std::move(t));
    return static_cast<std::uint32_t>(tuples_.size() - 1);
  }

  /// Computes the hash row (and presence byte) of every interned tuple for
  /// `events[0, count)`. Row pointers returned by row()/valid() are valid
  /// until the next ComputeRows/Reset and cover exactly `count` entries.
  /// `want` (tuples() bytes, or nullptr = all wanted) is the owner's
  /// per-batch demand mask from MarkConsumableFusedSlots: unwanted tuples
  /// get an all-invalid row without hashing anything. An invalid entry
  /// never means "skip the probe" — consumers fall back to hashing inline
  /// at the probe — so every gate here (type, presence, filter, want) is a
  /// pure work-avoidance heuristic, not a semantic judgement.
  void ComputeRows(const DataplaneEvent* events, std::size_t count,
                   const std::uint8_t* want = nullptr) {
    capacity_ = count;
    rows_.resize(tuples_.size() * count);
    valid_.resize(tuples_.size() * count);
    std::uint64_t key[8];
    for (std::uint32_t s = 0; s < tuples_.size(); ++s) {
      const Tuple& t = tuples_[s];
      std::uint64_t* rows = rows_.data() + static_cast<std::size_t>(s) * count;
      std::uint8_t* valid = valid_.data() + static_cast<std::size_t>(s) * count;
      if ((want != nullptr && want[s] == 0) || t.fields.size() > 8) {
        std::memset(valid, 0, count);
        continue;
      }
      for (std::size_t i = 0; i < count; ++i) {
        const FieldMap& fields = events[i].fields;
        if ((t.types & EventTypeBit(events[i].type)) == 0 ||
            (fields.presence_mask() & t.presence) != t.presence ||
            !t.filter.Matches(fields)) {
          valid[i] = 0;
          continue;
        }
        for (std::size_t k = 0; k < t.fields.size(); ++k)
          key[k] = fields.GetUnchecked(static_cast<FieldId>(t.fields[k]));
        rows[i] = HashKeySpan(key, static_cast<std::uint32_t>(t.fields.size()));
        valid[i] = 1;
        rows_computed_ += 1;
      }
    }
  }

  const std::uint64_t* row(std::uint32_t slot) const {
    return rows_.data() + static_cast<std::size_t>(slot) * capacity_;
  }
  const std::uint8_t* valid(std::uint32_t slot) const {
    return valid_.data() + static_cast<std::size_t>(slot) * capacity_;
  }

  /// Unique tuples currently interned.
  std::size_t tuples() const { return tuples_.size(); }
  /// Intern() calls since the last Reset — consumer sites across engines.
  /// interned_sites() - tuples() is how many per-event hashes fusion saves.
  std::size_t interned_sites() const { return interned_; }
  /// Lifetime hash-row entries actually computed.
  std::uint64_t rows_computed() const { return rows_computed_; }

 private:
  struct Tuple {
    std::vector<std::uint16_t> fields;
    std::uint64_t presence;
    EventTypeMask types = 0;
    KeyConstFilter filter;
  };
  std::vector<Tuple> tuples_;
  std::size_t interned_ = 0;
  std::size_t capacity_ = 0;
  std::vector<std::uint64_t> rows_;
  std::vector<std::uint8_t> valid_;
  std::uint64_t rows_computed_ = 0;
};

}  // namespace swmon
