// A bundle of monitor engines sharing one event stream.
//
// Attach a MonitorSet to a switch to check many properties at once; it fans
// each dataplane event out to every engine and aggregates violations.
#pragma once

#include <memory>
#include <vector>

#include "monitor/engine.hpp"

namespace swmon {

class MonitorSet : public DataplaneObserver {
 public:
  /// Adds a property; returns the engine for inspection.
  MonitorEngine& Add(Property property, MonitorConfig config = {}) {
    engines_.push_back(
        std::make_unique<MonitorEngine>(std::move(property), config));
    return *engines_.back();
  }

  void OnDataplaneEvent(const DataplaneEvent& event) override {
    for (auto& e : engines_) e->ProcessEvent(event);
  }

  void AdvanceTime(SimTime now) {
    for (auto& e : engines_) e->AdvanceTime(now);
  }

  std::size_t size() const { return engines_.size(); }
  MonitorEngine& engine(std::size_t i) { return *engines_[i]; }

  std::vector<Violation> AllViolations() const {
    std::vector<Violation> out;
    for (const auto& e : engines_) {
      const auto& v = e->violations();
      out.insert(out.end(), v.begin(), v.end());
    }
    return out;
  }

  std::size_t TotalViolations() const {
    std::size_t n = 0;
    for (const auto& e : engines_) n += e->violations().size();
    return n;
  }

 private:
  std::vector<std::unique_ptr<MonitorEngine>> engines_;
};

}  // namespace swmon
