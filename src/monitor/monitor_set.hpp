// A bundle of monitor engines sharing one event stream, with pre-filtered
// dispatch.
//
// Attach a MonitorSet to a switch to check many properties at once. Instead
// of broadcasting every event to every engine, the set keeps one dispatch
// list per DataplaneEventType, built from each property's static interest
// signature (monitor/features.hpp): an event is delivered only to engines
// whose property has a pattern that can react to its type. With N properties
// attached, a packet touches only the interested subset — the per-packet
// cost the paper's Sec 3.3 wants held constant does not pay for properties
// that cannot match (bench_dispatch measures the ratio).
//
// Filtering is semantics-preserving: an event outside an engine's signature
// provably cannot change that engine's state except by advancing its clock,
// so filtered engines still receive the timestamp (NoteFilteredEvent) and
// their windows expire exactly as under broadcast delivery — including
// timeout-action observations in quiet periods via AdvanceTime.
#pragma once

#include <memory>
#include <vector>

#include "monitor/dispatch_table.hpp"
#include "monitor/engine.hpp"

namespace swmon {

class MonitorSet : public DataplaneObserver {
 public:
  /// Adds a property; returns the engine for inspection.
  MonitorEngine& Add(Property property, MonitorConfig config = {}) {
    engines_.push_back(
        std::make_unique<MonitorEngine>(std::move(property), config));
    MonitorEngine* engine = engines_.back().get();
    dispatch_.Register(engine, static_cast<std::uint32_t>(engines_.size() - 1));
    return *engine;
  }

  void OnDataplaneEvent(const DataplaneEvent& event) override {
    // Interested engines get full processing; the rest only need the
    // timestamp so their timers keep firing at the right points
    // (constant-time when nothing expires).
    dispatch_.Deliver(event, events_dispatched_, events_filtered_);
  }

  void AdvanceTime(SimTime now) {
    for (auto& e : engines_) e->AdvanceTime(now);
  }

  std::size_t size() const { return engines_.size(); }
  MonitorEngine& engine(std::size_t i) { return *engines_[i]; }

  /// Engine deliveries across all events (sums over engines).
  std::uint64_t events_dispatched() const { return events_dispatched_; }
  /// Engine deliveries the interest-signature filter skipped.
  std::uint64_t events_filtered() const { return events_filtered_; }

  std::vector<Violation> AllViolations() const {
    std::vector<Violation> out;
    for (const auto& e : engines_) {
      const auto& v = e->violations();
      out.insert(out.end(), v.begin(), v.end());
    }
    return out;
  }

  std::size_t TotalViolations() const {
    std::size_t n = 0;
    for (const auto& e : engines_) n += e->violations().size();
    return n;
  }

 private:
  std::vector<std::unique_ptr<MonitorEngine>> engines_;
  DispatchTable dispatch_;
  std::uint64_t events_dispatched_ = 0;
  std::uint64_t events_filtered_ = 0;
};

}  // namespace swmon
