// A bundle of monitor engines sharing one event stream, with pre-filtered
// dispatch.
//
// Attach a MonitorSet to a switch to check many properties at once. Instead
// of broadcasting every event to every engine, the set keeps one dispatch
// list per DataplaneEventType, built from each property's static interest
// signature (monitor/features.hpp): an event is delivered only to engines
// whose property has a pattern that can react to its type. With N properties
// attached, a packet touches only the interested subset — the per-packet
// cost the paper's Sec 3.3 wants held constant does not pay for properties
// that cannot match (bench_dispatch measures the ratio).
//
// Filtering is semantics-preserving: an event outside an engine's signature
// provably cannot change that engine's state except by advancing its clock,
// so filtered engines still receive the timestamp (NoteFilteredEvent) and
// their windows expire exactly as under broadcast delivery — including
// timeout-action observations in quiet periods via AdvanceTime.
//
// Lifecycle: properties can be attached and detached while the stream is
// live (AttachProperty/DetachProperty). Slots are never reused, detach
// drains the departing engine's violations to the caller, and resident
// engines keep their dispatch order and state — a lifecycle op is invisible
// to every property it does not name. DrainViolations() moves accumulated
// violations out of the set, the bounded-memory mode long-running daemons
// (src/daemon) use instead of letting per-engine vectors grow forever.
//
// Telemetry: counters are read through telemetry::Snapshot — either
// CollectInto()/TelemetrySnapshot() directly, or by attaching the set to a
// MetricsRegistry (AttachTelemetry), which also samples a per-event
// dispatch-latency histogram on the hot path. The instrumented and plain
// hot paths are the two specializations of DeliverEvent<bool>; the build's
// SWMON_TELEMETRY macro only selects which one OnDataplaneEvent uses, so
// bench_telemetry_overhead can compare both in a single binary.
#pragma once

#include <algorithm>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "monitor/dispatch_table.hpp"
#include "monitor/property_monitor.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace swmon {

/// `base`, suffixed with "#2", "#3", ... if already present in `taken` —
/// engines publish metrics under their property name, which need not be
/// unique within a set.
inline std::string UniqueEngineName(const std::vector<std::string>& taken,
                                    const std::string& base) {
  std::string name = base;
  int n = 1;
  while (std::find(taken.begin(), taken.end(), name) != taken.end())
    name = base + "#" + std::to_string(++n);
  return name;
}

/// Stable handle for one attached property within a set. Slot indices are
/// never reused: detaching property 3 and attaching a new one yields id 4
/// (or higher), so a stale id can never silently alias a different engine.
using PropertyId = std::size_t;

class MonitorSet : public DataplaneObserver {
 public:
  MonitorSet() = default;
  ~MonitorSet() override { DetachTelemetry(); }

  // Not copyable/movable: an attached registry collector captures `this`.
  MonitorSet(const MonitorSet&) = delete;
  MonitorSet& operator=(const MonitorSet&) = delete;

  /// Adds a property; returns the engine for inspection.
  PropertyMonitor& Add(Property property, MonitorConfig config = {}) {
    return *engines_[AttachProperty(std::move(property), config)];
  }

  /// Adds a property and returns its stable id (the hot-lifecycle entry
  /// point: swmond attaches tenant properties through this). The new
  /// engine's clock starts at zero and advances with the next delivered
  /// event, exactly as if the set had been built with it from the start of
  /// an empty stream.
  PropertyId AttachProperty(Property property, MonitorConfig config = {}) {
    engine_names_.push_back(UniqueEngineName(engine_names_, property.name));
    engines_.push_back(CreatePropertyMonitor(std::move(property), config));
    PropertyMonitor* engine = engines_.back().get();
    dispatch_.Register(engine, static_cast<std::uint32_t>(engines_.size() - 1));
    return engines_.size() - 1;
  }

  /// Removes a property without disturbing any other engine: the detached
  /// engine's violations observed so far are drained and returned, its
  /// entries leave the dispatch lists (remaining order preserved), and its
  /// state is destroyed. Returns nullopt for an unknown or already-detached
  /// id. Resident engines are untouched — their dispatch order, state, and
  /// future violations are bit-identical to a run that never saw the
  /// detached property (monitor_lifecycle_test asserts this).
  std::optional<std::vector<Violation>> DetachProperty(PropertyId id) {
    if (id >= engines_.size() || engines_[id] == nullptr) return std::nullopt;
    std::vector<Violation> drained = engines_[id]->TakeViolations();
    dispatch_.Unregister(engines_[id].get());
    engines_[id].reset();
    return drained;
  }

  bool attached(PropertyId id) const {
    return id < engines_.size() && engines_[id] != nullptr;
  }

  /// Live (attached) engines; size() keeps counting slots.
  std::size_t attached_count() const {
    std::size_t n = 0;
    for (const auto& e : engines_)
      if (e) ++n;
    return n;
  }

  /// Moves every live engine's accumulated violations out (concatenated in
  /// attach order) and leaves the engines empty — the bounded-memory mode a
  /// resident daemon needs: violation storage is handed to the caller
  /// instead of growing inside the set for the process lifetime.
  std::vector<Violation> DrainViolations() {
    std::vector<Violation> out;
    for (auto& e : engines_) {
      if (!e) continue;
      std::vector<Violation> v = e->TakeViolations();
      out.insert(out.end(), std::make_move_iterator(v.begin()),
                 std::make_move_iterator(v.end()));
    }
    return out;
  }

  /// Registers a snapshot-time collector with `registry` (so
  /// registry->TakeSnapshot() includes this set's counters) and arms the
  /// sampled dispatch-latency histogram `monitor.set.dispatch_latency_ns`.
  /// Pass nullptr to detach. The set deregisters itself on destruction;
  /// destroy the set before the registry.
  void AttachTelemetry(telemetry::MetricsRegistry* registry) {
    DetachTelemetry();
    registry_ = registry;
    if (registry_ == nullptr) return;
    latency_hist_ = &registry_->histogram("monitor.set.dispatch_latency_ns");
    collector_token_ = registry_->AddCollector(
        [this](telemetry::Snapshot& snap) { CollectInto(snap); });
  }

  void DetachTelemetry() {
    if (registry_ != nullptr) registry_->RemoveCollector(collector_token_);
    registry_ = nullptr;
    latency_hist_ = nullptr;
    collector_token_ = 0;
  }

  void OnDataplaneEvent(const DataplaneEvent& event) override {
    DeliverEvent<telemetry::kCompiledIn>(event);
  }

  /// The dispatch hot path. The kInstrumented=false specialization is the
  /// compile-time no-op telemetry path (identical to the pre-telemetry
  /// code); kInstrumented=true additionally samples every
  /// (kLatencySamplePeriod)-th delivery into the dispatch-latency
  /// histogram when a registry is attached.
  template <bool kInstrumented>
  void DeliverEvent(const DataplaneEvent& event) {
    if constexpr (kInstrumented) {
      if (latency_hist_ != nullptr &&
          (delivery_seq_++ % kLatencySamplePeriod) == 0) {
        const std::uint64_t t0 = telemetry::NowNanos();
        dispatch_.Deliver(event, events_dispatched_, events_filtered_);
        latency_hist_->Record(telemetry::NowNanos() - t0);
        return;
      }
    }
    dispatch_.Deliver(event, events_dispatched_, events_filtered_);
  }

  void AdvanceTime(SimTime now) {
    for (auto& e : engines_)
      if (e) e->AdvanceTime(now);
  }

  /// Slot count (including detached slots — ids are never reused).
  std::size_t size() const { return engines_.size(); }
  PropertyMonitor& engine(std::size_t i) { return *engines_[i]; }
  const std::string& engine_name(std::size_t i) const {
    return engine_names_[i];
  }

  /// Publishes set-level counters (`monitor.set.events_dispatched`,
  /// `monitor.set.events_filtered`) plus every engine's counters
  /// (`monitor.engine.<name>.*`). ParallelMonitorSet emits the same names
  /// from its merged worker shards — the parity test compares the two
  /// snapshots for equality.
  void CollectInto(telemetry::Snapshot& snap) const {
    snap.SetCounter("monitor.set.events_dispatched", events_dispatched_);
    snap.SetCounter("monitor.set.events_filtered", events_filtered_);
    for (std::size_t i = 0; i < engines_.size(); ++i)
      if (engines_[i]) engines_[i]->CollectInto(snap, engine_names_[i]);
  }

  telemetry::Snapshot TelemetrySnapshot() const {
    telemetry::Snapshot snap;
    CollectInto(snap);
    return snap;
  }

  /// DEPRECATED shims (one PR): use TelemetrySnapshot() and
  /// snapshot.counter("monitor.set.events_dispatched") instead.
  [[deprecated("query via telemetry::Snapshot")]]
  std::uint64_t events_dispatched() const {
    return events_dispatched_;
  }
  [[deprecated("query via telemetry::Snapshot")]]
  std::uint64_t events_filtered() const {
    return events_filtered_;
  }

  /// Live engines' accumulated (undrained) violations, in attach order.
  /// Violations of since-detached properties are not included — they were
  /// handed to the DetachProperty caller.
  std::vector<Violation> AllViolations() const {
    std::vector<Violation> out;
    for (const auto& e : engines_) {
      if (!e) continue;
      const auto& v = e->violations();
      out.insert(out.end(), v.begin(), v.end());
    }
    return out;
  }

  std::size_t TotalViolations() const {
    std::size_t n = 0;
    for (const auto& e : engines_)
      if (e) n += e->violations().size();
    return n;
  }

 private:
  /// Sampling period for the dispatch-latency histogram: two steady_clock
  /// reads per sampled delivery, amortized to ~1/16th of events so the
  /// instrumented path stays within the <3% overhead budget.
  static constexpr std::uint64_t kLatencySamplePeriod = 16;

  std::vector<std::unique_ptr<PropertyMonitor>> engines_;
  std::vector<std::string> engine_names_;
  DispatchTable dispatch_;
  std::uint64_t events_dispatched_ = 0;
  std::uint64_t events_filtered_ = 0;
  std::uint64_t delivery_seq_ = 0;
  telemetry::MetricsRegistry* registry_ = nullptr;
  telemetry::Histogram* latency_hist_ = nullptr;
  std::uint64_t collector_token_ = 0;
};

}  // namespace swmon
