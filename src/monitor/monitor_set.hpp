// A bundle of monitor engines sharing one event stream, with pre-filtered
// dispatch.
//
// Attach a MonitorSet to a switch to check many properties at once. Instead
// of broadcasting every event to every engine, the set keeps one dispatch
// list per DataplaneEventType, built from each property's static interest
// signature (monitor/features.hpp): an event is delivered only to engines
// whose property has a pattern that can react to its type. With N properties
// attached, a packet touches only the interested subset — the per-packet
// cost the paper's Sec 3.3 wants held constant does not pay for properties
// that cannot match (bench_dispatch measures the ratio).
//
// Filtering is semantics-preserving: an event outside an engine's signature
// provably cannot change that engine's state except by advancing its clock,
// so filtered engines still receive the timestamp (NoteFilteredEvent) and
// their windows expire exactly as under broadcast delivery — including
// timeout-action observations in quiet periods via AdvanceTime.
//
// Lifecycle: properties can be attached and detached while the stream is
// live (AttachProperty/DetachProperty). Slots are never reused, detach
// drains the departing engine's violations to the caller, and resident
// engines keep their dispatch order and state — a lifecycle op is invisible
// to every property it does not name. DrainViolations() moves accumulated
// violations out of the set, the bounded-memory mode long-running daemons
// (src/daemon) use instead of letting per-engine vectors grow forever.
//
// Telemetry: counters are read through telemetry::Snapshot — either
// CollectInto()/TelemetrySnapshot() directly, or by attaching the set to a
// MetricsRegistry (AttachTelemetry), which also samples a per-event
// dispatch-latency histogram on the hot path. The instrumented and plain
// hot paths are the two specializations of DeliverEvent<bool>; the build's
// SWMON_TELEMETRY macro only selects which one OnDataplaneEvent uses, so
// bench_telemetry_overhead can compare both in a single binary.
//
// Batch mode (opt-in, SetBatching): instead of delivering each event the
// moment it arrives, the set parks events in a small buffer and hands the
// whole run to each engine's ProcessEventBatch when the window fills —
// letting the compiled engine hash routing keys up front (once per fused
// key tuple across all attached properties, via FusedKeyTable) and
// prefetch probe targets ahead of the per-event passes. Batching is
// invisible to every observable: any read that could see engine state
// (violations, telemetry, engine(), lifecycle ops, AdvanceTime,
// FlushEvents) first flushes the pending run, so callers see exactly the
// scalar-delivery state — same violations bit-for-bit, same counters. The
// only scalar feature the batch path does not replicate is the sampled
// dispatch-latency histogram (a per-event latency has no meaning for a
// buffered event). bench_batch and the daemon's pump drains are the
// intended users; the default window of 0 keeps every existing caller on
// the per-event path.
#pragma once

#include <algorithm>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "monitor/dispatch_table.hpp"
#include "monitor/fused_keys.hpp"
#include "monitor/property_monitor.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace swmon {

/// `base`, suffixed with "#2", "#3", ... if already present in `taken` —
/// engines publish metrics under their property name, which need not be
/// unique within a set.
inline std::string UniqueEngineName(const std::vector<std::string>& taken,
                                    const std::string& base) {
  std::string name = base;
  int n = 1;
  while (std::find(taken.begin(), taken.end(), name) != taken.end())
    name = base + "#" + std::to_string(++n);
  return name;
}

/// Stable handle for one attached property within a set. Slot indices are
/// never reused: detaching property 3 and attaching a new one yields id 4
/// (or higher), so a stale id can never silently alias a different engine.
using PropertyId = std::size_t;

class MonitorSet : public DataplaneObserver {
 public:
  MonitorSet() = default;
  ~MonitorSet() override { DetachTelemetry(); }

  // Not copyable/movable: an attached registry collector captures `this`.
  MonitorSet(const MonitorSet&) = delete;
  MonitorSet& operator=(const MonitorSet&) = delete;

  /// Adds a property; returns the engine for inspection.
  PropertyMonitor& Add(Property property, MonitorConfig config = {}) {
    return *engines_[AttachProperty(std::move(property), config)];
  }

  /// Adds a property and returns its stable id (the hot-lifecycle entry
  /// point: swmond attaches tenant properties through this). The new
  /// engine's clock starts at zero and advances with the next delivered
  /// event, exactly as if the set had been built with it from the start of
  /// an empty stream.
  PropertyId AttachProperty(Property property, MonitorConfig config = {}) {
    FlushBatch();  // the new engine must not see buffered pre-attach events
    engine_names_.push_back(UniqueEngineName(engine_names_, property.name));
    engines_.push_back(CreatePropertyMonitor(std::move(property), config));
    PropertyMonitor* engine = engines_.back().get();
    dispatch_.Register(engine, static_cast<std::uint32_t>(engines_.size() - 1));
    fused_dirty_ = true;
    return engines_.size() - 1;
  }

  /// Removes a property without disturbing any other engine: the detached
  /// engine's violations observed so far are drained and returned, its
  /// entries leave the dispatch lists (remaining order preserved), and its
  /// state is destroyed. Returns nullopt for an unknown or already-detached
  /// id. Resident engines are untouched — their dispatch order, state, and
  /// future violations are bit-identical to a run that never saw the
  /// detached property (monitor_lifecycle_test asserts this).
  std::optional<std::vector<Violation>> DetachProperty(PropertyId id) {
    if (id >= engines_.size() || engines_[id] == nullptr) return std::nullopt;
    FlushBatch();  // the departing engine still owes its buffered events
    std::vector<Violation> drained = engines_[id]->TakeViolations();
    dispatch_.Unregister(engines_[id].get());
    engines_[id].reset();
    fused_dirty_ = true;
    return drained;
  }

  bool attached(PropertyId id) const {
    return id < engines_.size() && engines_[id] != nullptr;
  }

  /// Live (attached) engines; size() keeps counting slots.
  std::size_t attached_count() const {
    std::size_t n = 0;
    for (const auto& e : engines_)
      if (e) ++n;
    return n;
  }

  /// Moves every live engine's accumulated violations out (concatenated in
  /// attach order) and leaves the engines empty — the bounded-memory mode a
  /// resident daemon needs: violation storage is handed to the caller
  /// instead of growing inside the set for the process lifetime.
  std::vector<Violation> DrainViolations() {
    FlushBatch();
    std::vector<Violation> out;
    for (auto& e : engines_) {
      if (!e) continue;
      std::vector<Violation> v = e->TakeViolations();
      out.insert(out.end(), std::make_move_iterator(v.begin()),
                 std::make_move_iterator(v.end()));
    }
    return out;
  }

  /// Registers a snapshot-time collector with `registry` (so
  /// registry->TakeSnapshot() includes this set's counters) and arms the
  /// sampled dispatch-latency histogram `monitor.set.dispatch_latency_ns`.
  /// Pass nullptr to detach. The set deregisters itself on destruction;
  /// destroy the set before the registry.
  void AttachTelemetry(telemetry::MetricsRegistry* registry) {
    DetachTelemetry();
    registry_ = registry;
    if (registry_ == nullptr) return;
    latency_hist_ = &registry_->histogram("monitor.set.dispatch_latency_ns");
    collector_token_ = registry_->AddCollector(
        [this](telemetry::Snapshot& snap) { CollectInto(snap); });
  }

  void DetachTelemetry() {
    if (registry_ != nullptr) registry_->RemoveCollector(collector_token_);
    registry_ = nullptr;
    latency_hist_ = nullptr;
    collector_token_ = 0;
  }

  void OnDataplaneEvent(const DataplaneEvent& event) override {
    DeliverEvent<telemetry::kCompiledIn>(event);
  }

  /// The dispatch hot path. The kInstrumented=false specialization is the
  /// compile-time no-op telemetry path (identical to the pre-telemetry
  /// code); kInstrumented=true additionally samples every
  /// (kLatencySamplePeriod)-th delivery into the dispatch-latency
  /// histogram when a registry is attached. With batching enabled the
  /// event parks in the pending buffer instead (latency sampling does not
  /// apply — see SetBatching).
  template <bool kInstrumented>
  void DeliverEvent(const DataplaneEvent& event) {
    if (batch_window_ != 0) {
      pending_.push_back(event);
      if (pending_.size() >= batch_window_) FlushBatch();
      return;
    }
    if constexpr (kInstrumented) {
      if (latency_hist_ != nullptr &&
          (delivery_seq_++ % kLatencySamplePeriod) == 0) {
        const std::uint64_t t0 = telemetry::NowNanos();
        dispatch_.Deliver(event, events_dispatched_, events_filtered_);
        latency_hist_->Record(telemetry::NowNanos() - t0);
        return;
      }
    }
    dispatch_.Deliver(event, events_dispatched_, events_filtered_);
  }

  /// Enables (window >= 1) or disables (window = 0, the default) the
  /// internal micro-batcher: DeliverEvent buffers up to `window` events and
  /// flushes the run through each live engine's ProcessEventBatch, with
  /// stage-0 routing hashes computed once per fused key tuple across all
  /// attached properties. Any pending events are flushed before the window
  /// changes, so resizing mid-stream is safe. A window of 1 exercises the
  /// batch machinery with scalar-equivalent timing (useful for tests).
  void SetBatching(std::size_t window) {
    FlushBatch();
    batch_window_ = window;
    pending_.reserve(window);
  }
  std::size_t batch_window() const { return batch_window_; }

  /// Span delivery: feeds a contiguous run of events in order. With
  /// batching enabled the run executes directly out of the caller's
  /// storage in window-sized chunks — no per-event copy into the pending
  /// buffer — which is how zero-copy producers (replayed traces,
  /// bench_batch's laps) should feed a batched set. Without batching it is
  /// exactly the per-event loop. Observationally identical to calling
  /// OnDataplaneEvent on each element either way.
  void OnDataplaneEvents(const DataplaneEvent* events, std::size_t count) {
    if (batch_window_ == 0) {
      for (std::size_t i = 0; i < count; ++i)
        DeliverEvent<telemetry::kCompiledIn>(events[i]);
      return;
    }
    FlushBatch();  // buffered trickle events precede this run
    for (std::size_t off = 0; off < count;) {
      const std::size_t n = std::min(batch_window_, count - off);
      DeliverRun(events + off, n);
      off += n;
    }
  }

  /// Delivers any buffered events now (quiet-point hook: the switch calls
  /// this on its own flush, the daemon pump after each drain round).
  void FlushEvents() override { FlushBatch(); }

  void AdvanceTime(SimTime now) {
    FlushBatch();  // buffered events predate `now`; order the clocks
    for (auto& e : engines_)
      if (e) e->AdvanceTime(now);
  }

  /// Slot count (including detached slots — ids are never reused).
  std::size_t size() const { return engines_.size(); }
  PropertyMonitor& engine(std::size_t i) {
    FlushBatch();  // callers inspect engine state; make it current
    return *engines_[i];
  }
  const std::string& engine_name(std::size_t i) const {
    return engine_names_[i];
  }

  /// Publishes set-level counters (`monitor.set.events_dispatched`,
  /// `monitor.set.events_filtered`) plus every engine's counters
  /// (`monitor.engine.<name>.*`). ParallelMonitorSet emits the same names
  /// from its merged worker shards — the parity test compares the two
  /// snapshots for equality.
  void CollectInto(telemetry::Snapshot& snap) const {
    FlushBatch();
    snap.SetCounter("monitor.set.events_dispatched", events_dispatched_);
    snap.SetCounter("monitor.set.events_filtered", events_filtered_);
    // Batch-plumbing counters appear only when batching is on, so snapshots
    // from per-event sets (and the parallel set's merged snapshot) are
    // unchanged.
    if (batch_window_ != 0) {
      snap.SetCounter("monitor.set.batch.flushes", batch_flushes_);
      snap.SetCounter("monitor.set.batch.events", batch_events_);
      snap.SetCounter("monitor.set.batch.fused_tuples", fused_.tuples());
      snap.SetCounter("monitor.set.batch.fused_sites", fused_.interned_sites());
      snap.SetCounter("monitor.set.batch.fused_rows", fused_.rows_computed());
    }
    for (std::size_t i = 0; i < engines_.size(); ++i)
      if (engines_[i]) engines_[i]->CollectInto(snap, engine_names_[i]);
  }

  telemetry::Snapshot TelemetrySnapshot() const {
    telemetry::Snapshot snap;
    CollectInto(snap);
    return snap;
  }

  /// DEPRECATED shims (one PR): use TelemetrySnapshot() and
  /// snapshot.counter("monitor.set.events_dispatched") instead.
  [[deprecated("query via telemetry::Snapshot")]]
  std::uint64_t events_dispatched() const {
    FlushBatch();
    return events_dispatched_;
  }
  [[deprecated("query via telemetry::Snapshot")]]
  std::uint64_t events_filtered() const {
    FlushBatch();
    return events_filtered_;
  }

  /// Live engines' accumulated (undrained) violations, in attach order.
  /// Violations of since-detached properties are not included — they were
  /// handed to the DetachProperty caller.
  std::vector<Violation> AllViolations() const {
    FlushBatch();
    std::vector<Violation> out;
    for (const auto& e : engines_) {
      if (!e) continue;
      const auto& v = e->violations();
      out.insert(out.end(), v.begin(), v.end());
    }
    return out;
  }

  std::size_t TotalViolations() const {
    FlushBatch();
    std::size_t n = 0;
    for (const auto& e : engines_)
      if (e) n += e->violations().size();
    return n;
  }

 private:
  /// Sampling period for the dispatch-latency histogram: two steady_clock
  /// reads per sampled delivery, amortized to ~1/16th of events so the
  /// instrumented path stays within the <3% overhead budget.
  static constexpr std::uint64_t kLatencySamplePeriod = 16;

  /// Delivers the buffered run. Const because every observable read calls
  /// it (the pending buffer is a delivery detail, not logical state): a
  /// const MonitorSet with buffered events must answer queries as if they
  /// had been delivered, so the buffer and counters are mutable. Engine
  /// order is attach order — the same order DispatchTable walks per event —
  /// and each engine sees the full run in event order, so its event stream
  /// is identical to scalar delivery (engines never observe each other, so
  /// swapping the event/engine loop nesting is invisible).
  void FlushBatch() const {
    if (pending_.empty()) return;
    DeliverRun(pending_.data(), pending_.size());
    pending_.clear();
  }

  /// Executes one contiguous run through every live engine: fused hash
  /// pass first (over only the tuples some engine demands this batch),
  /// then each engine's ProcessEventBatch over the whole run. Shared by
  /// FlushBatch (the pending buffer) and OnDataplaneEvents (caller spans).
  void DeliverRun(const DataplaneEvent* events, std::size_t count) const {
    if (fused_dirty_) RebuildFused();
    fused_want_.assign(fused_.tuples(), 0);
    for (const auto& e : engines_)
      if (e) e->MarkConsumableFusedSlots(fused_want_.data());
    fused_.ComputeRows(events, count, fused_want_.data());
    for (const auto& e : engines_)
      if (e) e->ProcessEventBatch(events, count, &fused_, nullptr);
    // Same per-delivery arithmetic as DispatchTable::Deliver — interested
    // engines count as dispatched, the rest as filtered — folded into one
    // multiply per event type.
    std::size_t type_counts[kNumDataplaneEventTypes] = {};
    for (std::size_t i = 0; i < count; ++i)
      ++type_counts[static_cast<std::size_t>(events[i].type)];
    for (std::size_t t = 0; t < kNumDataplaneEventTypes; ++t) {
      if (type_counts[t] == 0) continue;
      const DispatchTable::Lists& l =
          dispatch_.lists(static_cast<DataplaneEventType>(t));
      events_dispatched_ += type_counts[t] * l.interested.size();
      events_filtered_ += type_counts[t] * l.filtered.size();
    }
    batch_events_ += count;
    ++batch_flushes_;
  }

  /// Re-interns every live engine's probe-site key tuples into the fused
  /// table (dedup across properties) and hands each engine its slot map.
  /// Runs lazily on the first flush after an attach/detach invalidated the
  /// bindings.
  void RebuildFused() const {
    fused_.Reset();
    for (const auto& e : engines_) {
      if (!e) continue;
      std::vector<std::uint32_t> slots;
      for (const ProbeKeyTuple& t : e->ProbeKeyTuples())
        slots.push_back(fused_.Intern(t.fields, t.types, t.filter));
      e->BindFusedRows(std::move(slots));
    }
    fused_dirty_ = false;
  }

  std::vector<std::unique_ptr<PropertyMonitor>> engines_;
  std::vector<std::string> engine_names_;
  DispatchTable dispatch_;
  mutable std::uint64_t events_dispatched_ = 0;
  mutable std::uint64_t events_filtered_ = 0;
  std::uint64_t delivery_seq_ = 0;
  telemetry::MetricsRegistry* registry_ = nullptr;
  telemetry::Histogram* latency_hist_ = nullptr;
  std::uint64_t collector_token_ = 0;

  // Micro-batcher state (SetBatching). All mutable: see FlushBatch.
  std::size_t batch_window_ = 0;
  mutable std::vector<DataplaneEvent> pending_;
  mutable FusedKeyTable fused_;
  mutable std::vector<std::uint8_t> fused_want_;  // per-batch demand mask
  mutable bool fused_dirty_ = true;
  mutable std::uint64_t batch_flushes_ = 0;
  mutable std::uint64_t batch_events_ = 0;
};

}  // namespace swmon
