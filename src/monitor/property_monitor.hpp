// The engine-neutral monitor interface, its configuration, and the factory.
//
// Two engines execute a Property over a dataplane stream: the reference
// interpreter (MonitorEngine, monitor/engine.hpp) walks the parsed spec
// directly, and the compiled engine (CompiledEngine, monitor/compiled/)
// runs an ahead-of-time-lowered bytecode program over packed state
// records. Both implement PropertyMonitor; MonitorSet /
// ParallelMonitorSet / DispatchTable hold only this interface, so the
// engine is selectable per property (MonitorConfig::engine, or the
// SWMON_ENGINE environment variable for kDefault) and hot-attachable
// through the daemon lifecycle path like any other property.
//
// The two engines are required to be observationally identical: same
// violation stream (bit-identical, including instance ids and binding
// order), same counters for everything CollectInto publishes. The
// differential harness in tests/compiled_engine_test.cpp enforces this on
// fuzz streams and the full Table-1 catalog — which is what lets either
// engine serve as an oracle for the other.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "dataplane/switch.hpp"
#include "event/event_batch.hpp"
#include "monitor/eviction.hpp"
#include "monitor/spec.hpp"
#include "monitor/violation.hpp"
#include "telemetry/snapshot.hpp"

namespace swmon {

class FusedKeyTable;

/// Optional constant-condition gate on a probe key tuple: events failing
/// the masked compare provably cannot reach the consuming probe (the
/// engine's stage-0 fail-fast rejects them before any key is built), so
/// the batch hash pass skips hashing them. Purely advisory — a row the
/// hash pass skipped falls back to hash-at-probe, so an over-narrow
/// filter costs time, never correctness.
struct KeyConstFilter {
  bool valid = false;    // false = no gate, always hash
  bool negate = false;   // pass iff the masked compare DIFFERS
  bool pass_if_absent = false;  // verdict when the field is missing
  std::uint16_t field = 0;      // FieldId the condition tests
  std::uint64_t mask = 0;
  std::uint64_t imm = 0;

  bool Matches(const FieldMap& fields) const {
    if (!valid) return true;
    const auto f = static_cast<FieldId>(field);
    if (!fields.Has(f)) return pass_if_absent;
    const bool eq = ((fields.GetUnchecked(f) ^ imm) & mask) == 0;
    return negate ? !eq : eq;
  }
  bool SameAs(const KeyConstFilter& o) const {
    return valid && o.valid && field == o.field && mask == o.mask &&
           imm == o.imm && negate == o.negate &&
           pass_if_absent == o.pass_if_absent;
  }
};

/// One probe-site key tuple an engine exposes for cross-property hash
/// fusion: the event fields whose values form the site's OpenMap key, in
/// key order. See fused_keys.hpp.
struct ProbeKeyTuple {
  std::vector<std::uint16_t> fields;  // FieldId values
  /// Event types on which the probe can actually run — the fused table
  /// skips hashing the tuple for any other event.
  EventTypeMask types = 0;
  /// Per-event reachability gate (stage-0 fail-fast exported); tuples
  /// shared by sites with different gates drop the gate and always hash.
  KeyConstFilter filter;
};

/// Per-event observability record filled by the batch entry points, in
/// event order. Batch callers (the parallel workers) reconstruct exactly
/// what the scalar loop would have observed between events — violation
/// highwater marks, creation seqs, live counts — without a virtual call per
/// event.
struct BatchEventResult {
  /// violations().size() after the event's clock advance but before its
  /// passes. Meaningful for ProcessShardedBatch (the phase-0/phase-1 marker
  /// split); ProcessEventBatch sets it equal to violations_after.
  std::uint32_t violations_clock = 0;
  /// violations().size() after the event completed.
  std::uint32_t violations_after = 0;
  /// live_instances() after the event.
  std::uint32_t live_after = 0;
  /// created_count() after the event.
  std::uint64_t created_after = 0;
};

/// What a sharded batch does with one event — the per-event decision the
/// parallel worker loop used to make inline (parallel_monitor_set.cpp).
struct ShardedBatchOp {
  /// Stage mask for ProcessShardedEvent; 0 = clock-only (no passes run).
  std::uint64_t stage_mask = 0;
  /// Gates the events/events_dispatched counters (exactly one replica
  /// counts each event).
  bool count = false;
  /// True on the replica that accounts the event as filtered
  /// (NoteFilteredEvent instead of a bare AdvanceTime).
  bool filtered = false;
};

/// Which execution engine runs a property.
enum class EngineKind : std::uint8_t {
  /// Resolve at attach time: SWMON_ENGINE=interpreted|compiled if set,
  /// else the interpreter.
  kDefault = 0,
  kInterpreted,
  kCompiled,
};

const char* EngineKindName(EngineKind kind);

// The pragma region silences the deprecated-member warning GCC/Clang emit
// for MonitorConfig's *implicit* copy/move members (reported at the struct,
// not the caller); explicit uses of the deprecated field still warn at
// their own site.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
struct MonitorConfig {
  ProvenanceLevel provenance = ProvenanceLevel::kLimited;
  /// Bounded-memory eviction (the paper's space-consumption concern):
  /// policy + instance/byte caps; disabled by default. See eviction.hpp.
  EvictionConfig eviction;
  /// DEPRECATED shim (one PR): use eviction.max_instances. Folded into the
  /// eviction config by EffectiveEviction() when the new field is unset;
  /// the legacy semantics (oldest-first eviction) is exactly
  /// EvictionPolicy::kCreationOrder.
  [[deprecated("use MonitorConfig::eviction (EvictionConfig) instead")]]
  std::size_t max_instances = 0;
  /// Disables the link-key index (every lookup scans all instances at the
  /// stage). Exists for the store ablation bench; semantics are identical.
  bool force_linear_store = false;
  /// ABLATION (unsound on purpose): re-arm a pending timeout-action window
  /// whenever the observation preceding it re-fires. This is the naive
  /// semantics Sec 2.3 warns against — "a never-answered sequence of
  /// requests every (T-1) seconds would not be detected as a violation".
  /// bench_ablation measures exactly that miss.
  bool naive_timeout_refresh = false;
  /// Engine selection; see EngineKind. Configurations the compiled engine
  /// does not lower (ablations, full provenance) fall back to the
  /// interpreter — CreatePropertyMonitor documents the exact rules.
  EngineKind engine = EngineKind::kDefault;

  /// The eviction config engines actually run: `eviction`, with the legacy
  /// max_instances field folded in when the new one is unset. Everything
  /// that consults eviction (both engines, the shard-plan analysis, the
  /// daemon) goes through this, so legacy callers keep their exact
  /// oldest-first behaviour for the shim's one-PR lifetime.
  EvictionConfig EffectiveEviction() const {
    EvictionConfig e = eviction;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
    if (e.max_instances == 0) e.max_instances = max_instances;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
    return e;
  }

  // Builder-style setters (chainable).
  MonitorConfig& WithEviction(EvictionConfig e) {
    eviction = e;
    return *this;
  }
  MonitorConfig& WithEngine(EngineKind k) {
    engine = k;
    return *this;
  }
  MonitorConfig& WithProvenance(ProvenanceLevel p) {
    provenance = p;
    return *this;
  }
};
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

struct MonitorStats {
  std::uint64_t events = 0;
  std::uint64_t events_dispatched = 0;  // delivered via a MonitorSet dispatch
  std::uint64_t events_filtered = 0;    // skipped by interest-signature filter
  std::uint64_t instances_created = 0;
  std::uint64_t instances_refreshed = 0;
  std::uint64_t instances_advanced = 0;
  std::uint64_t instances_expired = 0;   // window lapsed before next stage
  std::uint64_t instances_aborted = 0;   // obligation discharged
  std::uint64_t instances_evicted = 0;   // bounded-memory (EvictionConfig) pressure
  std::uint64_t timeout_observations = 0;  // Feature 7 firings
  std::uint64_t suppressed_creations = 0;
  std::uint64_t violations = 0;
  std::uint64_t candidate_checks = 0;  // instances examined across lookups
  std::size_t peak_live = 0;
  // TimerSet mirrors. Filled on demand by CollectInto() straight from the
  // TimerSet, so they can never be read stale.
  std::uint64_t timers_armed = 0;      // Arm() calls, including re-arms
  std::uint64_t timer_stale_pops = 0;  // lazily discarded stale heap entries
};

class PropertyMonitor : public DataplaneObserver {
 public:
  ~PropertyMonitor() override = default;

  PropertyMonitor() = default;
  PropertyMonitor(const PropertyMonitor&) = delete;
  PropertyMonitor& operator=(const PropertyMonitor&) = delete;

  void OnDataplaneEvent(const DataplaneEvent& event) override {
    ProcessEvent(event);
  }

  /// Feeds one event. Time must be monotonically non-decreasing.
  virtual void ProcessEvent(const DataplaneEvent& event) = 0;

  /// Advances monitor time without an event, firing any elapsed windows
  /// (needed to observe timeout-action violations in quiet periods).
  virtual void AdvanceTime(SimTime now) = 0;

  // --- dispatch-layer entry points (MonitorSet) ---
  /// Delivery through the pre-filtered dispatch layer: counted separately
  /// from direct ProcessEvent calls so the filter's reach is measurable.
  virtual void ProcessDispatchedEvent(const DataplaneEvent& event) = 0;
  /// An event whose type is outside this property's interest signature. The
  /// engine must still observe its timestamp so windows keep expiring
  /// (Features 3/7) exactly as they would under broadcast delivery.
  virtual void NoteFilteredEvent(SimTime now) = 0;

  // --- instance-sharded delivery (ParallelMonitorSet) ---
  /// Partial delivery for instance sharding: bit s of `stage_mask` gates the
  /// abort/advance passes over stage-s instances, and bit 0 additionally
  /// gates the create and suppressor passes. The caller must have called
  /// AdvanceTime(event.time) first (the sharded driver fires timers as a
  /// separate phase so expiry markers can be ordered before match markers).
  /// `count` gates the events / events_dispatched counters so exactly one
  /// replica accounts for each event. The default ignores the mask and
  /// counts unconditionally — correct for the unsharded (full-delivery)
  /// case only.
  virtual void ProcessShardedEvent(const DataplaneEvent& event,
                                   std::uint64_t stage_mask, bool count) {
    (void)stage_mask;
    (void)count;
    ProcessDispatchedEvent(event);
  }

  // --- batch execution (PR 9) ---
  /// Feeds a whole run of events in order. Observationally identical to the
  /// scalar loop `for e: interested ? ProcessDispatchedEvent(e)
  /// : NoteFilteredEvent(e.time)` — same violations (bit-identical,
  /// including instance ids), same counters — but a native implementation
  /// (CompiledEngine) may stage the work across the batch: hash keys up
  /// front, prefetch probe targets a fixed distance ahead, then run the
  /// per-event passes against warm lines. `fused` optionally carries
  /// precomputed hash rows (the caller must have run
  /// FusedKeyTable::ComputeRows over exactly these events) and may be null;
  /// `results`, when non-null, must hold `count` entries and is filled with
  /// the per-event observability marks. The default is the scalar loop —
  /// the interpreter's fallback.
  virtual void ProcessEventBatch(const DataplaneEvent* events,
                                 std::size_t count, const FusedKeyTable* fused,
                                 BatchEventResult* results) {
    (void)fused;
    for (std::size_t i = 0; i < count; ++i) {
      const DataplaneEvent& ev = events[i];
      if ((interest_ >> static_cast<int>(ev.type)) & 1) {
        ProcessDispatchedEvent(ev);
      } else {
        NoteFilteredEvent(ev.time);
      }
      if (results != nullptr) {
        BatchEventResult& r = results[i];
        r.violations_after =
            static_cast<std::uint32_t>(violations().size());
        r.violations_clock = r.violations_after;
        r.live_after = static_cast<std::uint32_t>(live_instances());
        r.created_after = created_count();
      }
    }
  }

  /// Convenience wrapper over ProcessEventBatch for the SoA slab arenas the
  /// parallel path drains (event_batch.hpp).
  void ProcessBatch(const SlabBatch<DataplaneEvent>& batch,
                    const FusedKeyTable* fused = nullptr,
                    BatchEventResult* results = nullptr) {
    ProcessEventBatch(batch.items.data(), batch.size, fused, results);
  }

  /// Sharded-batch counterpart: per event, `ops[i]` says what the scalar
  /// worker loop would have done — NoteFilteredEvent / bare AdvanceTime /
  /// AdvanceTime + ProcessShardedEvent(stage_mask, count). results[i]
  /// .violations_clock is captured between the clock advance and the
  /// passes, which is the phase-0 (timer) / phase-1 (match) marker split.
  virtual void ProcessShardedBatch(const DataplaneEvent* events,
                                   std::size_t count,
                                   const ShardedBatchOp* ops,
                                   const FusedKeyTable* fused,
                                   BatchEventResult* results) {
    (void)fused;
    for (std::size_t i = 0; i < count; ++i) {
      const DataplaneEvent& ev = events[i];
      const ShardedBatchOp& op = ops[i];
      if (op.filtered) {
        NoteFilteredEvent(ev.time);
      } else {
        AdvanceTime(ev.time);
      }
      if (results != nullptr)
        results[i].violations_clock =
            static_cast<std::uint32_t>(violations().size());
      if (op.stage_mask != 0) ProcessShardedEvent(ev, op.stage_mask, op.count);
      if (results != nullptr) {
        BatchEventResult& r = results[i];
        r.violations_after =
            static_cast<std::uint32_t>(violations().size());
        r.live_after = static_cast<std::uint32_t>(live_instances());
        r.created_after = created_count();
      }
    }
  }

  /// Pure event-field key tuples this engine probes per event, in the
  /// engine's site order — the contract for BindFusedRows. Empty (the
  /// default) means the engine takes no part in hash fusion.
  virtual std::vector<ProbeKeyTuple> ProbeKeyTuples() const { return {}; }

  /// Binds this engine's probe sites to fused-table slots: slots[k] is the
  /// owning set's FusedKeyTable slot for ProbeKeyTuples()[k]. Called by the
  /// owner whenever it rebuilds its table (attach/detach); engines consume
  /// the slots in ProcessEventBatch/ProcessShardedBatch when `fused` is
  /// passed.
  virtual void BindFusedRows(std::vector<std::uint32_t> slots) {
    (void)slots;
  }

  /// Per-batch demand hint for the owner's fused hash pass: sets
  /// `want[slot] = 1` for every bound fused slot whose probe this engine
  /// could actually consume right now (a key site is wanted only while its
  /// map holds entries — an empty map can't satisfy any lookup). The owner
  /// zeroes `want` (FusedKeyTable::tuples() entries), polls every engine,
  /// and skips hashing unwanted tuples entirely. Advisory, like
  /// KeyConstFilter: a probe whose row was skipped hashes inline at the
  /// probe, so a stale hint (an instance created mid-batch) degrades
  /// fusion, not correctness. The default marks nothing — engines that
  /// never bound slots have nothing to demand.
  virtual void MarkConsumableFusedSlots(std::uint8_t* want) const {
    (void)want;
  }

  /// Lifetime instances_created count. The sharded driver polls the delta
  /// after each event to log which event seq created an instance, which is
  /// what lets the merge renumber per-replica instance ids back to the
  /// serial sequence.
  virtual std::uint64_t created_count() const = 0;

  /// Event types any stage/abort/suppressor pattern can react to; computed
  /// once at construction (see features.hpp). Non-virtual: the dispatch
  /// layer reads it per attach, engines fill interest_ in their
  /// constructors.
  EventTypeMask interest_signature() const { return interest_; }

  virtual const Property& property() const = 0;

  /// Publishes this engine's counters into `snap` under
  /// `monitor.engine.<name>.<stat>` (counters) plus the `live_instances` /
  /// `eviction_queue` / `state_bytes` gauges. The stats are the engine's
  /// own single-threaded shard; ParallelMonitorSet calls this only at
  /// quiesce points, which is what keeps the merge TSan-clean.
  virtual void CollectInto(telemetry::Snapshot& snap,
                           std::string_view name) const = 0;

  virtual const std::vector<Violation>& violations() const = 0;
  virtual std::vector<Violation> TakeViolations() = 0;
  virtual std::size_t live_instances() const = 0;
  virtual SimTime now() const = 0;

  /// Approximate resident bytes of monitor state (instances + provenance);
  /// bench_provenance and the state telemetry gauge report this.
  virtual std::size_t StateBytes() const = 0;

 protected:
  EventTypeMask interest_ = kAllEventTypes;
};

/// Builds the engine MonitorConfig::engine selects. kDefault consults the
/// SWMON_ENGINE environment variable ("interpreted" / "compiled"; unset or
/// unrecognized = interpreted) at every call, so tests and the daemon can
/// flip it per attach. Falls back to the interpreter — regardless of the
/// requested kind — for configurations the compiled lowering does not
/// cover: force_linear_store, naive_timeout_refresh (ablation modes) and
/// ProvenanceLevel::kFull (history capture).
std::unique_ptr<PropertyMonitor> CreatePropertyMonitor(Property property,
                                                       MonitorConfig config = {});

/// The kind CreatePropertyMonitor would instantiate for this config
/// (after SWMON_ENGINE resolution and fallback rules) — never kDefault.
EngineKind ResolveEngineKind(const Property& property,
                             const MonitorConfig& config);

}  // namespace swmon
