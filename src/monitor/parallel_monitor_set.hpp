// Parallel sharded monitor execution (the worker-pool MonitorSet).
//
// Thirteen Table-1 engines behind a serial MonitorSet still execute on one
// core; aggregate throughput is capped at single-thread speed no matter how
// many properties the interest-signature filter skips. Real switches get
// their throughput from stage parallelism, and engines are independent
// state machines — no instance, timer, or suppressor is shared across
// properties — so engine-level sharding is semantics-preserving by
// construction (and asserted by the parity test, not by argument).
//
// Threading model
//   * One producer (whatever thread feeds OnDataplaneEvent) accumulates
//     events into fixed-size batches (event/event_batch.hpp) and publishes
//     each frozen batch to every worker's SPSC ring (event/spsc_ring.hpp):
//     one synchronisation point per kBatch events instead of per event.
//   * Each worker owns a disjoint subset of the engines plus a private
//     DispatchTable over that shard, and runs the existing interest-
//     signature ProcessEvent loop over every batch in order. An engine is
//     only ever touched by its worker (or by the producer after Quiesce),
//     so the hot path takes no locks and mutates no shared state.
//   * Flush rules: a batch is published when full; Flush()/AdvanceTime()/
//     any query accessor publish the partial batch and quiesce (wait until
//     every worker has consumed every published batch), so timeout
//     semantics and observable state match serial execution exactly at
//     those points. Stop() flushes, closes the rings, and joins.
//
// Determinism
//   Every worker sees the same totally-ordered event stream, and each
//   engine processes it exactly as under serial dispatch, so per-engine
//   violation lists and stats are bit-identical to MonitorSet's.
//   AllViolations() therefore concatenates per-engine lists in attach
//   order, exactly like the serial set. MergedViolations() additionally
//   interleaves across engines into stream order: workers record a marker
//   (global event sequence, engine attach index, per-engine violation
//   index) for every violation they observe, and the merge sorts by that
//   triple — the same order a serial per-event loop would emit, independent
//   of worker count, scheduling, or batch size.
//
// Lifecycle
//   Properties can be hot-attached and hot-detached while the pool is live
//   (AttachProperty/DetachProperty): the producer quiesces — the same
//   flush quiet-point FlushEvents/AdvanceTime already use, NOT a restart —
//   mutates one shard's dispatch table, and resumes. Slots are never
//   reused; resident engines keep their state, dispatch order, and
//   violation determinism across any sequence of lifecycle ops
//   (monitor_lifecycle_test). DrainViolations() hands accumulated
//   violations (and their merge markers) to the caller in stream order,
//   which is what keeps a long-running daemon's memory bounded.
//
// Shard assignment is greedy cost-balancing (longest-processing-time):
// engines are weighted — ideally by CalibrateShardWeights(), which replays
// a sample stream through throwaway engines and uses their per-event
// candidate_checks as the cost proxy — and each engine goes to the
// currently lightest worker. bench_parallel sweeps workers x properties x
// batch size and reports events/sec against the serial baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/threading.hpp"
#include "event/event_batch.hpp"
#include "event/spsc_ring.hpp"
#include "monitor/dispatch_table.hpp"
#include "monitor/monitor_set.hpp"

namespace swmon {

struct ParallelConfig {
  /// Worker threads. 0 = HardwareWorkerCount().
  std::size_t workers = 0;
  /// Events per published batch (the producer-side sync granularity).
  std::size_t batch_capacity = 256;
  /// Batches in flight per worker ring before the producer blocks
  /// (backpressure bound: ring_capacity * batch_capacity events).
  std::size_t ring_capacity = 64;
  /// Pin worker i to CPU i (hint; ignored where unsupported).
  bool pin_threads = false;
};

/// Computes per-engine shard weights by replaying `sample` through a
/// throwaway engine per property: weight = 1 + candidate_checks, the count
/// of instances the engine actually examined — a direct proxy for its
/// per-event cost on traffic shaped like the sample.
std::vector<double> CalibrateShardWeights(
    const std::vector<Property>& properties,
    const std::vector<DataplaneEvent>& sample, MonitorConfig config = {});

/// Greedy LPT assignment: heaviest engine first, each to the lightest
/// worker so far. Deterministic (ties break toward the lower engine index /
/// lower worker id). Returns shard index per engine.
std::vector<std::size_t> GreedyAssignShards(const std::vector<double>& weights,
                                            std::size_t workers);

class ParallelMonitorSet : public DataplaneObserver {
 public:
  explicit ParallelMonitorSet(ParallelConfig config = {});
  ~ParallelMonitorSet() override;

  ParallelMonitorSet(const ParallelMonitorSet&) = delete;
  ParallelMonitorSet& operator=(const ParallelMonitorSet&) = delete;

  /// Adds a property (before Start only). `weight` feeds shard balancing;
  /// pass CalibrateShardWeights() output for cost-balanced shards, or leave
  /// 1.0 for uniform.
  PropertyMonitor& Add(Property property, MonitorConfig config = {},
                       double weight = 1.0);

  /// Adds a property and returns its stable slot id. Before Start() this is
  /// Add(); after Start() it is a *hot attach*: the producer quiesces the
  /// pool at the flush quiet-point (every published batch consumed, workers
  /// parked on empty rings), slots the new engine onto the lightest shard,
  /// and resumes — no restart, and resident engines never observe the op.
  /// Producer-thread-only, like every other quiescing entry point.
  PropertyId AttachProperty(Property property, MonitorConfig config = {},
                            double weight = 1.0);

  /// Hot-detaches a property at the quiesce point: drains and returns its
  /// violations observed so far, unregisters it from its shard's dispatch
  /// table (remaining order preserved), and destroys the engine. Violations
  /// it produced that are still referenced by merge markers stay resolvable
  /// (retained internally until DrainViolations). Returns nullopt for an
  /// unknown/already-detached id. Producer-thread-only.
  std::optional<std::vector<Violation>> DetachProperty(PropertyId id);

  bool attached(PropertyId id) const {
    return id < engines_.size() && engines_[id] != nullptr;
  }
  std::size_t attached_count() const {
    std::size_t n = 0;
    for (const auto& e : engines_)
      if (e) ++n;
    return n;
  }

  /// Quiesces, then moves every accumulated violation out in merged stream
  /// order — (event seq, attach order), identical to MergedViolations() —
  /// clearing engine violation vectors, worker merge markers, and retained
  /// detached-engine violations. The bounded-memory mode for long-running
  /// daemons: without it, worker marker vectors and per-engine violation
  /// vectors grow for the life of the process. Producer-thread-only.
  std::vector<Violation> DrainViolations();

  /// Shards the engines and launches the worker pool. Add() is frozen
  /// after this (AttachProperty stays available as a hot attach).
  void Start();
  bool started() const { return started_; }

  /// Producer entry point: appends to the current batch, publishing it to
  /// every worker when full. Events must arrive in non-decreasing time
  /// order (same contract as MonitorEngine::ProcessEvent).
  void OnDataplaneEvent(const DataplaneEvent& event) override;

  /// Publishes the partial batch and waits until every worker has drained
  /// its ring. On return, engine state is exactly the serial state after
  /// the same prefix of events, and is safe to read from this thread.
  void Flush();
  void FlushEvents() override { Flush(); }

  /// Flush + advance every engine's clock (fires elapsed windows exactly
  /// as serial MonitorSet::AdvanceTime would).
  void AdvanceTime(SimTime now);

  /// Flushes, closes the rings, joins the pool. Engines stay readable;
  /// further events are a programming error. Idempotent.
  void Stop();

  // --- accessors (all quiesce first, so they are producer-thread-only) ---
  /// Slot count, including detached slots (ids are never reused).
  std::size_t size() const { return engines_.size(); }
  PropertyMonitor& engine(std::size_t i) { return *engines_[i]; }
  std::size_t worker_count() const { return workers_.size(); }
  /// Which worker engine i was sharded onto (Start() required).
  std::size_t shard_of(std::size_t engine_index) const {
    return shard_of_[engine_index];
  }

  const std::string& engine_name(std::size_t i) const {
    return engine_names_[i];
  }

  /// Quiesces, then publishes the same metric names a serial MonitorSet
  /// over the same stream would (`monitor.set.*` from the merged worker
  /// shards, `monitor.engine.<name>.*` from each engine) — the parity test
  /// asserts snapshot equality against MonitorSet::CollectInto. Merging
  /// only happens here, at the quiesce point, which is what keeps the
  /// per-worker shard counters TSan-clean: workers write them plainly
  /// between ring pops and the consumed-counter release/acquire pair
  /// publishes them to this thread.
  void CollectInto(telemetry::Snapshot& snap);
  telemetry::Snapshot TelemetrySnapshot() {
    telemetry::Snapshot snap;
    CollectInto(snap);
    return snap;
  }

  /// Registers a snapshot-time collector (see MonitorSet::AttachTelemetry).
  /// Because collection quiesces, registry->TakeSnapshot() becomes
  /// producer-thread-only once a parallel set is attached. Pass nullptr to
  /// detach; the set also detaches itself on destruction.
  void AttachTelemetry(telemetry::MetricsRegistry* registry);

  /// DEPRECATED shims (one PR): use TelemetrySnapshot() and
  /// snapshot.counter("monitor.set.events_dispatched") instead.
  [[deprecated("query via telemetry::Snapshot")]]
  std::uint64_t events_dispatched();
  [[deprecated("query via telemetry::Snapshot")]]
  std::uint64_t events_filtered();

  /// Live engines' undrained violations concatenated in attach order —
  /// bit-identical to serial MonitorSet::AllViolations() on the same
  /// stream (and the same lifecycle ops).
  std::vector<Violation> AllViolations();
  /// Undrained violations interleaved into global stream order (event
  /// sequence, then engine attach order) — identical for every worker
  /// count. Includes violations of since-detached properties (they
  /// happened in the stream) until DrainViolations clears them.
  std::vector<Violation> MergedViolations();
  std::size_t TotalViolations();

 private:
  /// Merge key for one violation: where in the stream it fired.
  struct ViolationMarker {
    std::uint64_t seq;             // global sequence of the triggering event
    std::uint32_t engine_index;    // attach order, the serial dispatch order
    std::uint32_t violation_index; // index into that engine's violations()
  };

  struct Worker {
    explicit Worker(std::size_t ring_capacity) : ring(ring_capacity) {}
    SpscRing<std::shared_ptr<const Batch<DataplaneEvent>>> ring;
    std::thread thread;
    DispatchTable table;  // this shard's engines only
    std::vector<std::size_t> engine_indices;
    // Written by the worker between ring pops, read by the producer only
    // after Quiesce() — the consumed counter's release/acquire pair is the
    // publication edge.
    std::uint64_t dispatched = 0;
    std::uint64_t filtered = 0;
    std::vector<ViolationMarker> markers;
    PaddedAtomic<std::uint64_t> batches_consumed;
  };

  void WorkerLoop(Worker& worker, std::size_t worker_index);
  void ProcessBatch(Worker& worker, const Batch<DataplaneEvent>& batch);
  void PublishBatch(std::shared_ptr<const Batch<DataplaneEvent>> batch);
  /// Publish the partial batch and wait for all workers to drain.
  void Quiesce();
  /// Resolves one marker to its violation — from the live engine, or from
  /// the retained list when the slot has been detached since.
  const Violation& Resolve(const ViolationMarker& m) const;
  std::vector<Violation> MergeFromMarkers(
      const std::vector<ViolationMarker>& markers) const;
  std::vector<ViolationMarker> GatherSortedMarkers() const;

  ParallelConfig config_;
  std::vector<std::unique_ptr<PropertyMonitor>> engines_;
  std::vector<std::string> engine_names_;
  /// Per-slot violations retained at detach so outstanding merge markers
  /// keep resolving; cleared by DrainViolations.
  std::vector<std::vector<Violation>> retired_;
  telemetry::MetricsRegistry* registry_ = nullptr;
  std::uint64_t collector_token_ = 0;
  std::vector<double> weights_;
  std::vector<std::size_t> shard_of_;
  /// Summed weights per worker; hot attach sends the new engine to the
  /// lightest shard.
  std::vector<double> worker_load_;
  std::vector<std::unique_ptr<Worker>> workers_;
  BatchBuffer<DataplaneEvent> batcher_;
  std::uint64_t batches_published_ = 0;
  /// Violations fired by producer-side AdvanceTime (post-quiesce), keyed at
  /// the next event sequence so they merge where serial would emit them.
  std::vector<ViolationMarker> advance_markers_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace swmon
