// Parallel sharded monitor execution (the worker-pool MonitorSet).
//
// Thirteen Table-1 engines behind a serial MonitorSet still execute on one
// core; aggregate throughput is capped at single-thread speed no matter how
// many properties the interest-signature filter skips. Real switches get
// their throughput from stage parallelism, and engines are independent
// state machines — no instance, timer, or suppressor is shared across
// properties — so engine-level sharding is semantics-preserving by
// construction (and asserted by the parity test, not by argument).
//
// Threading model
//   * One producer (whatever thread feeds OnDataplaneEvent) fills recycled
//     slab batches in place (event/event_batch.hpp) — zero per-event heap
//     allocations in steady state — and publishes each full batch by raw
//     pointer to every worker's SPSC ring (event/spsc_ring.hpp). The last
//     worker to finish a batch returns it to the pool's freelist.
//   * Each worker owns a disjoint subset of the property-sharded engines
//     plus a private DispatchTable over that shard, and runs the existing
//     interest-signature loop over every batch in order; workers drain
//     whole ring runs at once (TryPopRun), so ring synchronisation is
//     amortized across everything queued since they last looked.
//   * Flush rules: a batch is published when full; Flush()/AdvanceTime()/
//     any query accessor publish the partial batch and quiesce (wait until
//     every worker has consumed every published batch), so timeout
//     semantics and observable state match serial execution exactly at
//     those points. Stop() flushes, closes the rings, and joins.
//
// Sharding modes (ParallelConfig::shard_mode)
//   * kProperty (default): each property is pinned to one worker by greedy
//     cost balancing (longest-processing-time over CalibrateShardWeights or
//     caller weights). Simple, zero cross-worker coordination — but a
//     single hot property cannot scale past one core.
//   * kInstance: every property that BuildShardPlan (shard_plan.hpp) proves
//     analyzable is split ACROSS all workers by instance identity: the
//     producer hashes each event's routing fields once into the batch's
//     route lanes; every worker derives a per-event stage mask from the
//     lanes it owns and runs only the passes for its own instances
//     (PropertyMonitor::ProcessShardedEvent) on its private engine replica.
//     Ineligible properties fall back to property-level sharding.
//   * kAuto: instance-shard eligible properties only when the pool has more
//     workers than live properties (where property-level sharding provably
//     leaves cores idle).
//
// Determinism
//   Property-sharded engines process the full stream exactly as under
//   serial dispatch, so their violation lists and stats are bit-identical
//   to MonitorSet's. Instance-sharded properties are reassembled to the
//   same guarantee: replica-local instance ids are renumbered back to the
//   serial creation sequence (workers log the event seq of every creation;
//   the quiesce-point merge orders creations by seq), and every violation
//   carries a marker — (event seq, attach slot, replica, phase, index) —
//   that the merge sorts into exactly the serial engine's emission order:
//   clock-advance (timer) violations first in (deadline, instance id) order
//   — the timer heap's order, reproducible across replicas because engines
//   arm timers with the instance id as the tie ordinal — then match-pass
//   violations highest-stage-first, exactly like the serial advance pass.
//   AllViolations() and MergedViolations() are therefore bit-identical to
//   serial for EVERY worker count, batch size, and schedule; the
//   instance-shard parity test asserts this across the Table-1 catalog.
//
// Lifecycle
//   Properties hot-attach and hot-detach at the same quiesce quiet-point
//   (instance-sharded ones too: attach builds W fresh replicas and grows
//   the route stride; detach retires every replica's violations, which stay
//   resolvable for merges until DrainViolations). Slots are never reused.
//
// bench_parallel sweeps workers x properties x batch size — including the
// single-hot-property instance-sharding sweep — and reports events/sec
// against the serial baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/threading.hpp"
#include "event/event_batch.hpp"
#include "event/spsc_ring.hpp"
#include "monitor/dispatch_table.hpp"
#include "monitor/fused_keys.hpp"
#include "monitor/monitor_set.hpp"
#include "monitor/shard_plan.hpp"

namespace swmon {

/// How properties map onto workers; see the header comment.
enum class ShardMode : std::uint8_t {
  kProperty = 0,  // one worker per property (classic)
  kInstance,      // split each analyzable property across all workers
  kAuto,          // instance-shard only when workers > live properties
};

struct ParallelConfig {
  /// Worker threads. 0 = HardwareWorkerCount().
  std::size_t workers = 0;
  /// Events per published batch (the producer-side sync granularity).
  std::size_t batch_capacity = 256;
  /// Batches in flight per worker ring before the producer blocks
  /// (backpressure bound: ring_capacity * batch_capacity events). Also
  /// sizes the slab pool (ring_capacity + 2 batches).
  std::size_t ring_capacity = 64;
  /// Pin worker i to CPU i (hint; ignored where unsupported).
  bool pin_threads = false;
  ShardMode shard_mode = ShardMode::kProperty;
};

/// Computes per-engine shard weights by replaying `sample` through a
/// throwaway engine per property: weight = 1 + candidate_checks, the count
/// of instances the engine actually examined — a direct proxy for its
/// per-event cost on traffic shaped like the sample.
std::vector<double> CalibrateShardWeights(
    const std::vector<Property>& properties,
    const std::vector<DataplaneEvent>& sample, MonitorConfig config = {});

/// Greedy LPT assignment: heaviest engine first, each to the lightest
/// worker so far. Deterministic (ties break toward the lower engine index /
/// lower worker id). Returns shard index per engine.
std::vector<std::size_t> GreedyAssignShards(const std::vector<double>& weights,
                                            std::size_t workers);

class ParallelMonitorSet : public DataplaneObserver {
 public:
  explicit ParallelMonitorSet(ParallelConfig config = {});
  ~ParallelMonitorSet() override;

  ParallelMonitorSet(const ParallelMonitorSet&) = delete;
  ParallelMonitorSet& operator=(const ParallelMonitorSet&) = delete;

  /// Adds a property (before Start only). `weight` feeds shard balancing;
  /// pass CalibrateShardWeights() output for cost-balanced shards, or leave
  /// 1.0 for uniform.
  PropertyMonitor& Add(Property property, MonitorConfig config = {},
                       double weight = 1.0);

  /// Adds a property and returns its stable slot id. Before Start() this is
  /// Add(); after Start() it is a *hot attach*: the producer quiesces the
  /// pool at the flush quiet-point (every published batch consumed, workers
  /// parked on empty rings), slots the new engine onto the lightest shard —
  /// or, when the shard mode takes it, builds a replica per worker and
  /// instance-shards it — and resumes. Producer-thread-only, like every
  /// other quiescing entry point.
  PropertyId AttachProperty(Property property, MonitorConfig config = {},
                            double weight = 1.0);

  /// Hot-detaches a property at the quiesce point: drains and returns its
  /// violations observed so far (in the serial emission order, with serial
  /// instance ids — even when the property was instance-sharded),
  /// unregisters it, and destroys its engine(s). Violations it produced
  /// that are still referenced by merge markers stay resolvable (retained
  /// internally until DrainViolations). Returns nullopt for an unknown or
  /// already-detached id. Producer-thread-only.
  std::optional<std::vector<Violation>> DetachProperty(PropertyId id);

  bool attached(PropertyId id) const {
    return id < engines_.size() && engines_[id] != nullptr;
  }
  std::size_t attached_count() const {
    std::size_t n = 0;
    for (const auto& e : engines_)
      if (e) ++n;
    return n;
  }

  /// Quiesces, then moves every accumulated violation out in merged stream
  /// order — identical to MergedViolations() — clearing engine violation
  /// vectors, worker merge markers, and retained detached-engine
  /// violations. The bounded-memory mode for long-running daemons.
  /// Producer-thread-only.
  std::vector<Violation> DrainViolations();

  /// Shards the engines, builds the slab pool, and launches the worker
  /// pool. Add() is frozen after this (AttachProperty stays available as a
  /// hot attach).
  void Start();
  bool started() const { return started_; }

  /// Producer entry point: appends to the current slab batch (and fills its
  /// shard-route lanes), publishing to every worker when full. Events must
  /// arrive in non-decreasing time order.
  void OnDataplaneEvent(const DataplaneEvent& event) override;

  /// Publishes the partial batch and waits until every worker has drained
  /// its ring. On return, engine state is exactly the serial state after
  /// the same prefix of events, and is safe to read from this thread.
  void Flush();
  void FlushEvents() override { Flush(); }

  /// Flush + advance every engine's clock (fires elapsed windows exactly
  /// as serial MonitorSet::AdvanceTime would).
  void AdvanceTime(SimTime now);

  /// Flushes, closes the rings, joins the pool. Engines stay readable;
  /// further events are a programming error. Idempotent.
  void Stop();

  // --- accessors (all quiesce first, so they are producer-thread-only) ---
  /// Slot count, including detached slots (ids are never reused).
  std::size_t size() const { return engines_.size(); }
  /// Slot i's engine. For an instance-sharded property this is replica 0;
  /// cross-replica aggregates come from CollectInto / the violation APIs.
  PropertyMonitor& engine(std::size_t i) { return *engines_[i]; }
  std::size_t worker_count() const { return workers_.size(); }
  /// Which worker engine i was sharded onto (Start() required). Meaningful
  /// for property-sharded slots only; instance-sharded slots report 0.
  std::size_t shard_of(std::size_t engine_index) const {
    return shard_of_[engine_index];
  }
  /// Whether slot i is instance-sharded across the workers.
  bool instance_sharded(std::size_t i) const {
    return i < group_of_slot_.size() && group_of_slot_[i] != nullptr &&
           !group_of_slot_[i]->detached;
  }

  const std::string& engine_name(std::size_t i) const {
    return engine_names_[i];
  }

  /// Quiesces, then publishes the same `monitor.set.*` / `monitor.engine.
  /// <name>.*` names a serial MonitorSet over the same stream would — for
  /// instance-sharded properties the per-replica counters are summed (and
  /// peak_live exactly reconstructed from per-event live logs) so the
  /// merged values equal the serial engine's. Additionally publishes
  /// parallel-runtime-only `monitor.parallel.*` metrics: slab-pool reuse /
  /// allocation / backpressure counters, per-worker ring high-water marks,
  /// and per-replica live-instance gauges for each sharded property.
  /// Merging only happens here, at the quiesce point, which is what keeps
  /// the per-worker counters TSan-clean.
  void CollectInto(telemetry::Snapshot& snap);
  telemetry::Snapshot TelemetrySnapshot() {
    telemetry::Snapshot snap;
    CollectInto(snap);
    return snap;
  }

  /// Registers a snapshot-time collector (see MonitorSet::AttachTelemetry).
  /// Because collection quiesces, registry->TakeSnapshot() becomes
  /// producer-thread-only once a parallel set is attached. Pass nullptr to
  /// detach; the set also detaches itself on destruction.
  void AttachTelemetry(telemetry::MetricsRegistry* registry);

  /// DEPRECATED shims (one PR): use TelemetrySnapshot() and
  /// snapshot.counter("monitor.set.events_dispatched") instead.
  [[deprecated("query via telemetry::Snapshot")]]
  std::uint64_t events_dispatched();
  [[deprecated("query via telemetry::Snapshot")]]
  std::uint64_t events_filtered();

  /// Live properties' undrained violations concatenated in attach order —
  /// bit-identical to serial MonitorSet::AllViolations() on the same
  /// stream (and the same lifecycle ops), for every shard mode.
  std::vector<Violation> AllViolations();
  /// Undrained violations interleaved into global stream order — identical
  /// for every worker count. Includes violations of since-detached
  /// properties (they happened in the stream) until DrainViolations clears
  /// them.
  std::vector<Violation> MergedViolations();
  std::size_t TotalViolations();

 private:
  /// Merge key for one violation: where in the stream it fired.
  struct ViolationMarker {
    std::uint64_t seq;              // global sequence of the triggering event
    std::uint32_t engine_index;     // attach order, the serial dispatch order
    std::uint32_t violation_index;  // index into that replica's violations()
    std::uint16_t replica;          // worker replica (0 for property-sharded)
    /// 0 = fired by the clock advance (timer expiry), 1 = by the match
    /// passes. Serial ProcessEvent fires timers before matching, so phase
    /// orders an instance-sharded event's violations; property-sharded
    /// slots order by violation_index alone (single emitter).
    std::uint8_t phase;
  };

  /// One instance-sharded property: a plan, one engine replica per worker,
  /// and the producer-side merge state that reassembles serial semantics.
  struct ShardedGroup {
    PropertyId slot = 0;
    ShardPlan plan;
    /// First route-lane word this group owns within a batch's per-item
    /// stride (lane j of the event's type lives at lane_base + j).
    std::uint32_t lane_base = 0;
    /// replicas[w] runs on worker w; [0] aliases engines_[slot], the rest
    /// are owned below. Cleared at detach.
    std::vector<PropertyMonitor*> replicas;
    std::vector<std::unique_ptr<PropertyMonitor>> owned;
    bool detached = false;

    /// serial_ids[r][k]: the serial-execution instance id of replica r's
    /// (k+1)-th created instance (replica-local ids are sequential from 1).
    /// Grows monotonically at quiesce merges; retained across drains so
    /// undrained violations keep renumbering.
    std::vector<std::vector<std::uint64_t>> serial_ids;
    std::uint64_t next_serial_id = 1;

    /// Exact peak_live reconstruction: last merged live count per replica,
    /// their running sum, and the ratchet max over end-of-event totals —
    /// the same sample points serial ProcessEvent uses.
    std::vector<std::int64_t> merged_live;
    std::int64_t merged_total = 0;
    std::int64_t merged_peak = 0;

    /// Worker-side logs, one cache line per replica. Written by worker w
    /// between ring pops, drained by the producer at quiesce (the consumed
    /// counter's release/acquire pair is the publication edge).
    struct alignas(64) ReplicaLog {
      std::uint64_t prev_created = 0;
      std::size_t prev_live = 0;
      std::vector<std::uint64_t> creation_seqs;  // event seq per creation
      /// (seq, live-after) whenever the event changed the live count.
      std::vector<std::pair<std::uint64_t, std::size_t>> live_log;
    };
    std::vector<ReplicaLog> logs;
  };

  struct Worker {
    explicit Worker(std::size_t ring_capacity) : ring(ring_capacity) {}
    SpscRing<SlabBatch<DataplaneEvent>*> ring;
    std::thread thread;
    DispatchTable table;  // this worker's property-sharded engines only
    std::vector<std::size_t> engine_indices;
    // Written by the worker between ring pops, read by the producer only
    // after Quiesce() — the consumed counter's release/acquire pair is the
    // publication edge.
    std::uint64_t dispatched = 0;
    std::uint64_t filtered = 0;
    std::vector<ViolationMarker> markers;
    /// This worker's fused stage-0/link/suppression hash table over every
    /// engine it runs (property-sharded residents plus its replica of each
    /// instance-sharded group). Rebuilt by the producer at the
    /// attach/detach quiesce points (RebuildWorkerFused), consumed by the
    /// worker's per-batch ComputeRows pass.
    FusedKeyTable fused;
    /// Per-batch demand mask (MarkConsumableFusedSlots over the worker's
    /// engines) — tuples nobody can consume this batch are not hashed.
    std::vector<std::uint8_t> fused_want;
    /// Per-batch scratch for the batch entry points (sized once, reused).
    std::vector<ShardedBatchOp> ops;
    std::vector<BatchEventResult> results;
    /// Producer-side: max ring occupancy observed right after a push.
    std::size_t ring_high_water = 0;
    PaddedAtomic<std::uint64_t> batches_consumed;
  };

  void WorkerLoop(Worker& worker, std::size_t worker_index);
  void ProcessBatch(Worker& worker, std::size_t worker_index,
                    const SlabBatch<DataplaneEvent>& batch);
  /// Re-interns worker w's engines' probe-site key tuples into its fused
  /// table and rebinds their slot maps. Producer-side, at Start and at the
  /// attach/detach quiesce points (the same publication edge as the
  /// dispatch-table mutations).
  void RebuildWorkerFused(std::size_t w);
  /// Seals the in-fill batch and pushes it to every worker ring.
  void PublishCurrent();
  /// Publish the partial batch, wait for all workers to drain, then fold
  /// the workers' creation/live logs into the groups' merge state.
  void Quiesce();
  /// Builds a ShardedGroup (one replica per worker) for slot `id`.
  void MakeSharded(PropertyId id, ShardPlan plan);
  /// (Re)creates the slab pool when the route stride grew; counters carry
  /// over via the *_base_ accumulators.
  void RebuildPool();
  /// Instance-shard this property under the current mode? (kAuto: only
  /// when live properties < workers.)
  bool WantInstanceShard(std::size_t live_properties) const;
  void MergeGroupLogs(ShardedGroup& g);
  std::uint64_t SerialInstanceId(const ShardedGroup& g, std::uint32_t replica,
                                 std::uint64_t local_id) const;
  /// Resolves one marker to its (replica-local) violation — from the live
  /// engine, or from the retained lists when the slot has been detached.
  const Violation& Resolve(const ViolationMarker& m) const;
  /// Resolve + rewrite the instance id to the serial sequence.
  Violation Materialize(const ViolationMarker& m) const;
  bool MarkerLess(const ViolationMarker& a, const ViolationMarker& b) const;
  std::vector<Violation> MergeFromMarkers(
      const std::vector<ViolationMarker>& markers) const;
  std::vector<ViolationMarker> GatherSortedMarkers() const;
  /// The slot's undrained violations in serial emission order (markers
  /// filtered to the slot, sorted, materialized).
  std::vector<Violation> MaterializeSlot(PropertyId id) const;
  void CollectSharded(const ShardedGroup& g, const std::string& name,
                      telemetry::Snapshot& snap) const;

  ParallelConfig config_;
  std::vector<std::unique_ptr<PropertyMonitor>> engines_;
  std::vector<std::string> engine_names_;
  std::vector<MonitorConfig> configs_;  // per slot, for replica construction
  /// Per-slot, per-replica violations retained at detach so outstanding
  /// merge markers keep resolving; cleared by DrainViolations.
  /// Property-sharded slots use a single replica-0 list.
  std::vector<std::vector<std::vector<Violation>>> retired_;
  telemetry::MetricsRegistry* registry_ = nullptr;
  std::uint64_t collector_token_ = 0;
  std::vector<double> weights_;
  std::vector<std::size_t> shard_of_;
  /// Summed weights per worker; hot attach sends the new engine to the
  /// lightest shard.
  std::vector<double> worker_load_;
  std::vector<std::unique_ptr<Worker>> workers_;

  /// Instance-shard state. groups_ owns; group_of_slot_ maps slot -> group
  /// (kept after detach for id renumbering); active_groups_ is what the
  /// producer fills lanes for and workers walk per event — mutated only at
  /// quiesce, published by the next ring push.
  std::vector<std::unique_ptr<ShardedGroup>> groups_;
  std::vector<ShardedGroup*> group_of_slot_;
  std::vector<ShardedGroup*> active_groups_;

  std::unique_ptr<BatchPool<DataplaneEvent>> pool_;
  SlabBatch<DataplaneEvent>* cur_ = nullptr;  // batch being filled
  std::uint64_t next_seq_ = 0;                // global event sequence
  /// Route words per batch item = sum of active groups' max_lanes. Only
  /// grows (detached groups keep their lane span), so batches stay valid.
  std::uint32_t route_stride_ = 0;
  /// Pool counter carry-over across RebuildPool.
  std::uint64_t pool_reused_base_ = 0;
  std::uint64_t pool_allocated_base_ = 0;
  std::uint64_t pool_exhausted_base_ = 0;

  std::uint64_t batches_published_ = 0;
  /// Violations fired by producer-side AdvanceTime (post-quiesce), keyed at
  /// the next event sequence so they merge where serial would emit them.
  std::vector<ViolationMarker> advance_markers_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace swmon
