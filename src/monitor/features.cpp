#include "monitor/features.hpp"

#include <unordered_set>

namespace swmon {
namespace {

struct ScanCtx {
  /// Variables bound by builtin computations (hash / round-robin).
  /// Inequalities against these are checks against a computed expectation,
  /// which Table 1 does not count as negative match on stored state.
  std::unordered_set<VarId> builtin_vars;
};

void NoteField(FieldId f, FeatureSet& out) {
  const FieldLayer layer = LayerOf(f);
  // Metadata fields (ports, egress action, packet id) don't raise the parse
  // depth — they come from the switch, not the parser.
  if (layer != FieldLayer::kMeta && layer > out.fields) out.fields = layer;
  if (f == FieldId::kPacketId) out.identity = true;
}

void ScanConditions(const std::vector<Condition>& conds, bool forbidden_group,
                    const ScanCtx& ctx, FeatureSet& out) {
  for (const Condition& c : conds) {
    NoteField(c.field, out);
    if (c.rhs.kind == Term::Kind::kVar) out.history = true;
    if (!forbidden_group && c.op == CmpOp::kNe &&
        c.field != FieldId::kEgressAction &&
        !(c.rhs.kind == Term::Kind::kVar &&
          ctx.builtin_vars.contains(c.rhs.var))) {
      out.negative_match = true;
    }
  }
  if (forbidden_group && !conds.empty()) out.negative_match = true;
}

void ScanPattern(const Pattern& p, const ScanCtx& ctx, FeatureSet& out) {
  ScanConditions(p.conditions, /*forbidden_group=*/false, ctx, out);
  ScanConditions(p.forbidden, /*forbidden_group=*/true, ctx, out);
}

}  // namespace

FeatureSet AnalyzeFeatures(const Property& property) {
  ScanCtx ctx;
  for (const Stage& st : property.stages) {
    for (const Binding& b : st.bindings) {
      if (b.kind != Binding::Kind::kField) ctx.builtin_vars.insert(b.var);
    }
  }

  FeatureSet out;
  out.id_mode = property.id_mode;
  if (property.num_stages() > 1) out.history = true;

  for (std::size_t k = 0; k < property.num_stages(); ++k) {
    const Stage& st = property.stages[k];
    ScanPattern(st.pattern, ctx, out);
    for (const Pattern& a : st.aborts) ScanPattern(a, ctx, out);
    // Feature 4 (persistent obligation): watching for a discharging event
    // while awaiting an ordinary observation. Discharge patterns attached
    // to a kTimeout stage are classified as part of the negative
    // observation itself (Feature 7) instead.
    if (!st.aborts.empty() && st.kind == StageKind::kEvent)
      out.obligation = true;
    for (const Binding& b : st.bindings) {
      if (b.kind == Binding::Kind::kField) NoteField(b.field, out);
      for (FieldId f : b.hash_inputs) NoteField(f, out);
    }
    if (st.kind == StageKind::kTimeout) out.timeout_actions = true;
    // Feature 3 (state-expiring timeouts): a window whose expiry kills the
    // instance, i.e. the following stage is an ordinary event observation.
    const bool has_window =
        st.window > Duration::Zero() || st.window_from_field;
    if (has_window && k + 1 < property.num_stages() &&
        property.stages[k + 1].kind == StageKind::kEvent) {
      out.timeouts = true;
    }
    if (st.window_from_field) NoteField(*st.window_from_field, out);

    // Multiple match: a non-initial event stage with no equality link to
    // bound variables means one event advances every instance at the stage.
    if (k >= 1 && st.kind == StageKind::kEvent) {
      bool linked = false;
      for (const Condition& c : st.pattern.conditions) {
        if (c.op == CmpOp::kEq && c.rhs.kind == Term::Kind::kVar) {
          linked = true;
          break;
        }
      }
      if (!linked) out.multiple_match = true;
    }
  }
  for (const Suppressor& s : property.suppressors)
    ScanPattern(s.pattern, ctx, out);
  if (!property.suppressors.empty()) {
    // Suppression is a standing obligation to remember history.
    out.obligation = true;
    out.history = true;
  }
  return out;
}

EventTypeMask InterestSignature(const Property& property) {
  EventTypeMask mask = 0;
  const auto add = [&mask](const Pattern& p) {
    if (p.event_type)
      mask |= EventTypeBit(*p.event_type);
    else
      mask = kAllEventTypes;  // unconstrained patterns match any type
  };
  for (const Stage& st : property.stages) {
    // A timeout stage's pattern is never matched against events (it fires
    // from the clock), but its aborts are live while instances wait there.
    if (st.kind == StageKind::kEvent) add(st.pattern);
    for (const Pattern& a : st.aborts) add(a);
  }
  for (const Suppressor& s : property.suppressors) add(s.pattern);
  return mask;
}

std::string InterestSignatureString(EventTypeMask mask) {
  std::string out;
  for (std::size_t t = 0; t < kNumDataplaneEventTypes; ++t) {
    if (!(mask >> t & 1)) continue;
    if (!out.empty()) out += '|';
    out += DataplaneEventTypeName(static_cast<DataplaneEventType>(t));
  }
  return out.empty() ? "none" : out;
}

std::vector<std::string> DiffFeatureColumns(const FeatureSet& a,
                                            const FeatureSet& b) {
  std::vector<std::string> out;
  if (a.fields != b.fields) out.emplace_back("fields");
  if (a.history != b.history) out.emplace_back("history");
  if (a.timeouts != b.timeouts) out.emplace_back("timeouts");
  if (a.obligation != b.obligation) out.emplace_back("obligation");
  if (a.identity != b.identity) out.emplace_back("identity");
  if (a.negative_match != b.negative_match)
    out.emplace_back("negative_match");
  if (a.timeout_actions != b.timeout_actions)
    out.emplace_back("timeout_actions");
  if (a.multiple_match != b.multiple_match)
    out.emplace_back("multiple_match");
  if (a.id_mode != b.id_mode) out.emplace_back("id_mode");
  return out;
}

std::string FeatureSet::ToRow() const {
  auto dot = [](bool b) { return b ? std::string("  •   ") : std::string("      "); };
  std::string out;
  out += LayerName(fields);
  out += std::string(5 - std::min<std::size_t>(5, out.size()), ' ');
  out += "|" + dot(history) + "|" + dot(timeouts) + "|" + dot(obligation) +
         "|" + dot(identity) + "|" + dot(negative_match) + "|" +
         dot(timeout_actions) + "|" + dot(multiple_match) + "| " +
         InstanceIdModeName(id_mode);
  return out;
}

}  // namespace swmon
