// Pluggable bounded-memory eviction (ROADMAP item 3).
//
// Switch monitor state is finite, and PAPERS.md's adversarial-settings
// line of work argues that the bound itself is attack surface: a flood
// that forces a victim instance out of the store before its violating
// suffix arrives blinds the monitor. This header turns the old bare
// `max_instances` knob into a first-class EvictionConfig — a policy enum,
// an instance cap, and an approximate state-byte cap — plus the
// EvictionState strategy object both engines (interpreted and compiled)
// drive through the same hook points, which is what makes eviction
// decisions bit-identical across engines by construction.
//
// Determinism contract (part of the compiled-vs-interpreted differential
// contract in tests/eviction_policy_test.cpp):
//   * kCreationOrder — evict the live instance with the smallest id.
//   * kLru           — evict the smallest (last-touch event seq, id).
//     Touches are stamped with the *event sequence number*, never a
//     per-touch counter: within one event the two engines visit
//     candidates in different hash-bucket orders, and the event seq is
//     the finest clock on which they provably agree.
//   * kRandom        — evict the r-th live instance in ascending-id
//     order, r drawn from a seeded xorshift64* stream advanced exactly
//     once per eviction.
//   * kTimeoutPriority — evict the instance whose deadline is furthest
//     away (no deadline = furthest of all), ties to the smallest id.
//     Instances about to take a timeout observation are the ones a
//     state-exhaustion attack wants displaced, so they go last.
//
// The byte cap is enforced against an engine-neutral per-instance byte
// model (ModelInstanceBytes) rather than either engine's actual resident
// size — actual sizes differ by engine (slab vs. node-based stores) and
// would break bit-identity. The same model value backs the `state_bytes`
// telemetry gauge.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace swmon {

enum class EvictionPolicy : std::uint8_t {
  kCreationOrder = 0,
  kLru,
  kRandom,
  kTimeoutPriority,
};

const char* EvictionPolicyName(EvictionPolicy policy);
/// Accepts the canonical names ("creation-order", "lru", "random",
/// "timeout-priority") and the short CLI aliases ("creation", "timeout").
bool ParseEvictionPolicy(std::string_view name, EvictionPolicy* out);

/// The bounded-memory knobs, extracted from MonitorConfig's old loose
/// `max_instances` field. Disabled (both caps 0) costs nothing: engines
/// skip every hook behind one cached bool.
struct EvictionConfig {
  EvictionPolicy policy = EvictionPolicy::kCreationOrder;
  /// Cap on live instances; 0 = unbounded.
  std::size_t max_instances = 0;
  /// Cap on modeled state bytes (ModelInstanceBytes per instance);
  /// 0 = unbounded. When both caps are set the tighter one binds.
  std::size_t max_state_bytes = 0;
  /// Seed of the kRandom draw stream (deterministic across engines).
  std::uint64_t seed = 0x5eedULL;

  bool enabled() const { return max_instances != 0 || max_state_bytes != 0; }

  // Builder-style setters (chainable), mirrored by PropertyBuilder.
  EvictionConfig& WithPolicy(EvictionPolicy p) {
    policy = p;
    return *this;
  }
  EvictionConfig& WithMaxInstances(std::size_t n) {
    max_instances = n;
    return *this;
  }
  EvictionConfig& WithMaxStateBytes(std::size_t n) {
    max_state_bytes = n;
    return *this;
  }
  EvictionConfig& WithSeed(std::uint64_t s) {
    seed = s;
    return *this;
  }
};

/// Parses "policy[:max_instances[:max_state_bytes]]", e.g. "lru:512" or
/// "timeout-priority:0:65536" (swmond's --eviction and the per-tenant
/// eviction file use this grammar). Returns false with *error set on a
/// malformed spec.
bool ParseEvictionSpec(std::string_view spec, EvictionConfig* out,
                       std::string* error);

/// Engine-neutral modeled bytes per live instance: a fixed record header
/// plus one slot per property variable. Deliberately NOT either engine's
/// actual footprint (see file comment).
inline std::size_t ModelInstanceBytes(std::size_t num_vars) {
  return 64 + 16 * num_vars;
}

/// The shared strategy state. One instance per engine; the engine calls
/// the On* hooks at its (deterministic, engine-agreed) lifecycle points
/// and PickVictim when over cap. `handle` is whatever the engine needs to
/// destroy the instance cheaply (the interpreter passes the id again, the
/// compiled engine its slab slot).
class EvictionState {
 public:
  static constexpr std::uint64_t kNoDeadline = ~std::uint64_t{0};

  struct Victim {
    std::uint64_t id;
    std::uint64_t handle;
  };

  /// Resolves the effective instance cap (min of the instance cap and the
  /// byte cap divided through the model) and resets all bookkeeping.
  void Configure(const EvictionConfig& config, std::size_t num_vars);

  bool enabled() const { return cap_ != 0; }
  /// Effective live-instance cap (nonzero iff enabled).
  std::size_t cap() const { return cap_; }
  /// True when the byte cap is the binding constraint — decides whether an
  /// eviction is accounted under evictions.reason.bytes or .capacity.
  bool bytes_bound() const { return bytes_bound_; }

  void OnCreate(std::uint64_t id, std::uint64_t handle,
                std::uint64_t event_seq);
  /// kLru recency stamp; idempotent per (id, event_seq).
  void OnTouch(std::uint64_t id, std::uint64_t event_seq);
  /// kTimeoutPriority key: absolute deadline in nanos, kNoDeadline for a
  /// windowless instance; idempotent per (id, deadline).
  void OnDeadline(std::uint64_t id, std::uint64_t deadline_nanos);
  /// Must be called on every destruction path (evict, abort, expire,
  /// violate) — meta_ mirrors the engine's live set exactly.
  void OnDestroy(std::uint64_t id);
  /// Chooses (and dequeues) the policy's victim. Precondition: at least
  /// one live instance (the engine only calls this while live > cap).
  Victim PickVictim();

  std::size_t live() const { return meta_.size(); }
  /// Pending policy-queue entries (live + not-yet-pruned stale ones);
  /// published as the eviction_queue gauge. Bounded by ~2x live via the
  /// same lazy-compaction rule the old creation-order deque used.
  std::size_t QueueSize() const;

 private:
  struct Meta {
    std::uint64_t handle = 0;
    std::uint64_t touch = 0;               // kLru
    std::uint64_t deadline = kNoDeadline;  // kTimeoutPriority
  };
  /// One lazily-invalidated priority entry; `key` is the policy ordering
  /// key a Meta field must still equal for the entry to be live.
  struct Entry {
    std::uint64_t key;
    std::uint64_t id;
  };

  void PushEntry(std::uint64_t key, std::uint64_t id);
  void PopEntry();
  void MaybeCompact();
  std::uint64_t NextRandom();
  /// Is this heap/deque entry still the id's current one?
  bool EntryLive(const Entry& e) const;

  EvictionConfig config_;
  std::size_t cap_ = 0;
  bool bytes_bound_ = false;
  std::uint64_t rng_ = 0;

  std::unordered_map<std::uint64_t, Meta> meta_;
  /// kCreationOrder: ids oldest-first, dead ids pruned lazily.
  std::deque<std::uint64_t> order_;
  /// kLru / kTimeoutPriority: lazy binary heap of Entry. Heap layout is
  /// engine-dependent after compaction (meta_ iteration order seeds it),
  /// but pops follow the comparator's strict total order over (key, id),
  /// so the *sequence* of popped entries — all that is observable — is
  /// engine-independent.
  std::vector<Entry> heap_;
  /// kRandom: live ids ascending (ids are monotone, so creation appends).
  std::vector<std::uint64_t> ids_;
};

}  // namespace swmon
