#include "monitor/engine.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"
#include "monitor/features.hpp"

namespace swmon {

MonitorEngine::MonitorEngine(Property property, MonitorConfig config)
    : property_(std::move(property)),
      config_(config),
      timers_([this](std::uint64_t id, SimTime deadline) {
        OnTimerExpiry(id, deadline);
      }) {
  const std::string err = property_.Validate();
  SWMON_ASSERT_MSG(err.empty(), err.c_str());

  ecfg_ = config_.EffectiveEviction();
  eviction_.Configure(ecfg_, property_.num_vars());
  evict_enabled_ = eviction_.enabled();

  interest_ = InterestSignature(property_);
  stores_.resize(property_.num_stages());
  if (!config_.force_linear_store) {
    for (std::size_t k = 1; k < property_.num_stages(); ++k) {
      const Stage& st = property_.stages[k];
      if (st.kind != StageKind::kEvent) continue;
      for (const Condition& c : st.pattern.conditions) {
        // Only full-width equality on a bound var is usable as a hash key.
        // allow_absent conditions are excluded: a keyed lookup projects the
        // event's field values, so an event *lacking* the field would never
        // reach instances the condition nonetheless matches.
        if (c.op == CmpOp::kEq && c.rhs.kind == Term::Kind::kVar &&
            c.mask == ~std::uint64_t{0} && !c.allow_absent)
          stores_[k].link.emplace_back(c.field, c.rhs.var);
      }
    }
  }
  for (const Binding& b : property_.stages[0].bindings)
    stage0_bound_vars_.push_back(b.var);
}

// ---------------------------------------------------------------- matching

bool MonitorEngine::EvalCondition(
    const Condition& c, const FieldMap& fields,
    const std::vector<std::optional<std::uint64_t>>& env) const {
  const auto lhs = fields.Get(c.field);
  if (!lhs) return c.allow_absent;
  std::uint64_t rhs;
  if (c.rhs.kind == Term::Kind::kConst) {
    rhs = c.rhs.constant;
  } else {
    const auto& bound = env[c.rhs.var];
    if (!bound) return false;  // conditions on unbound vars never hold
    rhs = *bound;
  }
  const bool eq = (*lhs & c.mask) == (rhs & c.mask);
  return c.op == CmpOp::kEq ? eq : !eq;
}

bool MonitorEngine::MatchPattern(
    const Pattern& p, const DataplaneEvent& ev,
    const std::vector<std::optional<std::uint64_t>>& env) const {
  if (p.event_type && *p.event_type != ev.type) return false;
  for (const Condition& c : p.conditions)
    if (!EvalCondition(c, ev.fields, env)) return false;
  if (!p.forbidden.empty()) {
    bool all_hold = true;
    for (const Condition& c : p.forbidden) {
      if (!EvalCondition(c, ev.fields, env)) {
        all_hold = false;
        break;
      }
    }
    if (all_hold) return false;  // the forbidden tuple matched exactly
  }
  return true;
}

bool MonitorEngine::ApplyBindings(
    const Stage& stage, const DataplaneEvent& ev,
    std::vector<std::optional<std::uint64_t>>& env) {
  // Validate before mutating: a binding on an absent field means the stage
  // does not match (and the round-robin counter must not advance).
  for (const Binding& b : stage.bindings) {
    if (b.kind == Binding::Kind::kField && !ev.fields.Has(b.field))
      return false;
    if (b.kind == Binding::Kind::kHashPort) {
      for (FieldId f : b.hash_inputs)
        if (!ev.fields.Has(f)) return false;
    }
  }
  if (stage.window_from_field && !ev.fields.Has(*stage.window_from_field))
    return false;

  for (const Binding& b : stage.bindings) {
    switch (b.kind) {
      case Binding::Kind::kField:
        env[b.var] = ev.fields.GetUnchecked(b.field);
        break;
      case Binding::Kind::kHashPort:
        env[b.var] =
            HashFieldsToRange(ev.fields, b.hash_inputs, b.modulus, b.base);
        break;
      case Binding::Kind::kRoundRobin:
        env[b.var] = rr_counter_++ % b.modulus + b.base;
        break;
    }
  }
  return true;
}

// ------------------------------------------------------------------ stores

void MonitorEngine::InsertIntoStore(Instance& inst) {
  SWMON_ASSERT(inst.stage >= 1 && inst.stage < property_.num_stages());
  StageStore& store = stores_[inst.stage];
  if (!store.link.empty()) {
    FlowKey key;
    key.values.reserve(store.link.size());
    bool all_bound = true;
    for (const auto& [field, var] : store.link) {
      if (!inst.env[var]) {
        all_bound = false;
        break;
      }
      key.values.push_back(*inst.env[var]);
    }
    if (all_bound) {
      store.keyed[key].push_back(inst.id);
      return;
    }
  }
  store.scan.push_back(inst.id);
}

void MonitorEngine::RemoveFromStore(const Instance& inst) {
  if (inst.stage < 1 || inst.stage >= property_.num_stages()) return;
  StageStore& store = stores_[inst.stage];
  auto erase_id = [&](std::vector<std::uint64_t>& v) {
    auto it = std::find(v.begin(), v.end(), inst.id);
    if (it != v.end()) {
      *it = v.back();
      v.pop_back();
      return true;
    }
    return false;
  };
  if (!store.link.empty()) {
    FlowKey key;
    bool all_bound = true;
    for (const auto& [field, var] : store.link) {
      if (!inst.env[var]) {
        all_bound = false;
        break;
      }
      key.values.push_back(*inst.env[var]);
    }
    if (all_bound) {
      auto it = store.keyed.find(key);
      if (it != store.keyed.end()) {
        erase_id(it->second);
        if (it->second.empty()) store.keyed.erase(it);
      }
      return;
    }
  }
  erase_id(store.scan);
}

std::optional<FlowKey> MonitorEngine::Stage0Key(
    const std::vector<std::optional<std::uint64_t>>& env) const {
  FlowKey key;
  key.values.reserve(stage0_bound_vars_.size());
  for (VarId v : stage0_bound_vars_) {
    if (!env[v]) return std::nullopt;
    key.values.push_back(*env[v]);
  }
  return key;
}

// -------------------------------------------------------------- lifecycle

void MonitorEngine::ArmWindow(Instance& inst, const Stage& completed,
                              const DataplaneEvent* ev) {
  Duration window = completed.window;
  if (completed.window_from_field && ev != nullptr) {
    // Presence was verified in ApplyBindings.
    window = Duration::Seconds(static_cast<std::int64_t>(
        ev->fields.GetUnchecked(*completed.window_from_field)));
  }
  if (window > Duration::Zero()) {
    inst.deadline = now_ + window;
    // Ordinal = instance id: deadline ties fire in id order, a pure function
    // of monitor state that per-replica timer heaps reproduce independently
    // (the instance-sharded merge depends on it; see timer_set.hpp).
    timers_.Arm(inst.id, inst.deadline, inst.id);
    if (evict_enabled_)
      eviction_.OnDeadline(inst.id,
                           static_cast<std::uint64_t>(inst.deadline.nanos()));
  } else {
    inst.deadline = SimTime::Infinity();
    timers_.Cancel(inst.id);
    if (evict_enabled_)
      eviction_.OnDeadline(inst.id, EvictionState::kNoDeadline);
  }
}

void MonitorEngine::ReportViolation(const Instance& inst, SimTime when,
                                    const std::string& trigger,
                                    std::uint32_t trigger_stage_index) {
  Violation v;
  v.property = property_.name;
  v.time = when;
  v.instance_id = inst.id;
  v.trigger_stage = trigger;
  v.trigger_stage_index = trigger_stage_index;
  if (config_.provenance >= ProvenanceLevel::kLimited) {
    for (std::size_t i = 0; i < property_.vars.size(); ++i) {
      if (inst.env[i]) v.bindings.emplace_back(property_.vars[i], *inst.env[i]);
    }
  }
  if (config_.provenance == ProvenanceLevel::kFull) v.history = inst.history;
  SWMON_LOG_INFO("monitor", "%s", v.ToString().c_str());
  violations_.push_back(std::move(v));
  ++stats_.violations;
}

void MonitorEngine::DestroyInstance(std::uint64_t id) {
  auto it = instances_.find(id);
  if (it == instances_.end()) return;
  Instance& inst = it->second;
  RemoveFromStore(inst);
  if (const auto key = Stage0Key(inst.env)) {
    auto bucket = stage0_index_.find(*key);
    if (bucket != stage0_index_.end()) {
      std::erase(bucket->second, id);
      if (bucket->second.empty()) stage0_index_.erase(bucket);
    }
  }
  timers_.Cancel(id);
  instances_.erase(it);
  if (evict_enabled_) eviction_.OnDestroy(id);
}

void MonitorEngine::AdvanceInstance(Instance& inst, const DataplaneEvent* ev) {
  // Caller verified the match, committed env updates, and UNFILED the
  // instance from its stage store (removal must use the pre-update env —
  // the keyed store can only locate an instance under the key it was
  // inserted with); this commits the stage transition.
  if (config_.provenance == ProvenanceLevel::kFull) {
    ProvenanceEvent pe;
    pe.time = now_;
    pe.stage = inst.stage;
    if (ev != nullptr) pe.fields = ev->fields;
    inst.history.push_back(std::move(pe));
  }
  const Stage& completed = property_.stages[inst.stage];
  const auto completed_index = inst.stage;
  ++inst.stage;
  inst.stage_matches = 0;
  if (inst.stage == property_.num_stages()) {
    ReportViolation(inst, now_, completed.label, completed_index);
    DestroyInstance(inst.id);
    return;
  }
  ArmWindow(inst, completed, ev);
  InsertIntoStore(inst);
}

void MonitorEngine::OnTimerExpiry(std::uint64_t id, SimTime deadline) {
  auto it = instances_.find(id);
  if (it == instances_.end()) return;
  Instance& inst = it->second;
  now_ = std::max(now_, deadline);
  if (inst.stage < property_.num_stages() &&
      property_.stages[inst.stage].kind == StageKind::kTimeout) {
    // Feature 7: the elapsed window IS the observation.
    ++stats_.timeout_observations;
    ++stats_.instances_advanced;
    RemoveFromStore(inst);  // env is unchanged, so the filed key is current
    AdvanceInstance(inst, nullptr);
  } else {
    // Feature 3: the window lapsed before the next observation; the
    // candidate violation evaporates.
    ++stats_.instances_expired;
    DestroyInstance(id);
  }
}

void MonitorEngine::EvictIfNeeded() {
  if (!evict_enabled_) return;
  while (instances_.size() > eviction_.cap()) {
    const EvictionState::Victim victim = eviction_.PickVictim();
    DestroyInstance(victim.id);
    ++stats_.instances_evicted;
    if (eviction_.bytes_bound())
      ++evictions_bytes_;
    else
      ++evictions_capacity_;
  }
}

// ------------------------------------------------------------- event path

void MonitorEngine::AdvanceTime(SimTime now) {
  // Stale timestamps (e.g. an AdvanceTime(horizon) after late scheduled
  // events already pushed the clock further) are a no-op: time is monotone.
  if (now <= now_) return;
  timers_.Advance(now);
  now_ = now;
}

void MonitorEngine::ProcessEvent(const DataplaneEvent& event) {
  ++event_seq_;
  ++stats_.events;
  AdvanceTime(event.time);
  RunAbortPass(event, ~std::uint64_t{0});
  RunAdvancePass(event, ~std::uint64_t{0});
  if (config_.naive_timeout_refresh) RunNaiveRefreshPass(event);
  RunCreatePass(event);
  RunSuppressorPass(event);
  stats_.peak_live = std::max(stats_.peak_live, instances_.size());
}

void MonitorEngine::ProcessShardedEvent(const DataplaneEvent& event,
                                        std::uint64_t stage_mask, bool count) {
  // Same pass sequence as ProcessEvent, restricted to the stages this
  // replica owns for this event. Exactly one replica per event runs with
  // `count` set, so summing replica counters reproduces the serial ones.
  // The driver already advanced time (timer phase); the AdvanceTime here is
  // a monotonicity no-op kept for direct callers.
  ++event_seq_;
  if (count) {
    ++stats_.events;
    ++stats_.events_dispatched;
  }
  AdvanceTime(event.time);
  RunAbortPass(event, stage_mask);
  RunAdvancePass(event, stage_mask);
  if (config_.naive_timeout_refresh) RunNaiveRefreshPass(event);
  if (stage_mask & 1) {
    RunCreatePass(event);
    RunSuppressorPass(event);
  }
  stats_.peak_live = std::max(stats_.peak_live, instances_.size());
}

void MonitorEngine::RunNaiveRefreshPass(const DataplaneEvent& ev) {
  // Unsound-by-design ablation (see MonitorConfig::naive_timeout_refresh):
  // an event re-matching the observation BEFORE a pending timeout stage
  // resets that stage's timer, postponing the negative observation.
  for (std::size_t k = 1; k < property_.num_stages(); ++k) {
    if (property_.stages[k].kind != StageKind::kTimeout) continue;
    const Stage& prev = property_.stages[k - 1];
    if (prev.kind != StageKind::kEvent) continue;
    if (prev.pattern.event_type && *prev.pattern.event_type != ev.type)
      continue;
    StageStore& store = stores_[k];
    if (prev.window_from_field && !ev.fields.Has(*prev.window_from_field))
      continue;
    auto consider = [&](std::uint64_t id) {
      auto it = instances_.find(id);
      if (it == instances_.end() || it->second.stage != k) return;
      if (MatchPattern(prev.pattern, ev, it->second.env)) {
        ArmWindow(it->second, prev, &ev);
        ++stats_.instances_refreshed;
      }
    };
    for (const auto& [key, bucket] : store.keyed)
      for (auto id : bucket) consider(id);
    for (auto id : store.scan) consider(id);
  }
}

void MonitorEngine::RunAbortPass(const DataplaneEvent& ev,
                                 std::uint64_t stage_mask) {
  for (std::size_t k = 1; k < property_.num_stages(); ++k) {
    if (!(stage_mask >> k & 1)) continue;
    const Stage& st = property_.stages[k];
    if (st.aborts.empty()) continue;
    // Cheap prefilter: skip stages none of whose aborts can match this
    // event type.
    bool type_possible = false;
    for (const Pattern& a : st.aborts) {
      if (!a.event_type || *a.event_type == ev.type) {
        type_possible = true;
        break;
      }
    }
    if (!type_possible) continue;

    std::vector<std::uint64_t> victims;
    auto consider = [&](std::uint64_t id) {
      const auto it = instances_.find(id);
      if (it == instances_.end() || it->second.stage != k) return;
      ++stats_.candidate_checks;
      for (const Pattern& a : st.aborts) {
        if (MatchPattern(a, ev, it->second.env)) {
          victims.push_back(id);
          return;
        }
      }
    };
    const StageStore& store = stores_[k];
    for (const auto& [key, bucket] : store.keyed)
      for (auto id : bucket) consider(id);
    for (auto id : store.scan) consider(id);

    // The victim set was gathered in unordered_map bucket order; sort so
    // destruction order is deterministic and engine-independent (part of
    // the compiled-vs-interpreted bit-identity contract).
    std::sort(victims.begin(), victims.end());
    for (auto id : victims) {
      DestroyInstance(id);
      ++stats_.instances_aborted;
    }
  }
}

void MonitorEngine::RunAdvancePass(const DataplaneEvent& ev,
                                   std::uint64_t stage_mask) {
  // Highest stage first so an instance advanced into stage k+1 is not
  // examined again there by the same event.
  for (std::size_t k = property_.num_stages(); k-- > 1;) {
    if (!(stage_mask >> k & 1)) continue;
    const Stage& st = property_.stages[k];
    if (st.kind != StageKind::kEvent) continue;
    if (st.pattern.event_type && *st.pattern.event_type != ev.type) continue;

    StageStore& store = stores_[k];
    std::vector<std::uint64_t> candidates;
    if (!store.link.empty()) {
      FlowKey key;
      bool projectable = true;
      for (const auto& [field, var] : store.link) {
        const auto v = ev.fields.Get(field);
        if (!v) {
          projectable = false;
          break;
        }
        key.values.push_back(*v);
      }
      if (projectable) {
        const auto it = store.keyed.find(key);
        if (it != store.keyed.end()) candidates = it->second;
      }
      candidates.insert(candidates.end(), store.scan.begin(),
                        store.scan.end());
    } else {
      // Multiple match (Feature 8): every instance at this stage is a
      // candidate — e.g. a link-down event advances all learned addresses.
      candidates.reserve(store.keyed.size() + store.scan.size());
      for (const auto& [key, bucket] : store.keyed)
        candidates.insert(candidates.end(), bucket.begin(), bucket.end());
      candidates.insert(candidates.end(), store.scan.begin(),
                        store.scan.end());
    }

    for (const std::uint64_t id : candidates) {
      auto it = instances_.find(id);
      if (it == instances_.end()) continue;
      Instance& inst = it->second;
      if (inst.stage != k || inst.last_event_seq == event_seq_) continue;
      ++stats_.candidate_checks;
      if (!MatchPattern(st.pattern, ev, inst.env)) continue;
      auto new_env = inst.env;
      if (!ApplyBindings(st, ev, new_env)) continue;
      inst.last_event_seq = event_seq_;
      // LRU recency: stamped with the event seq (idempotent per event), the
      // finest clock both engines provably agree on — see eviction.hpp.
      if (evict_enabled_) eviction_.OnTouch(id, event_seq_);
      // A stage with bindings may rebind one of its own link variables, so
      // the instance must be unfiled under the OLD env before the commit;
      // removing afterwards computes a key the store never saw, leaving a
      // stale entry the matching events can no longer reach.
      const bool rebinds = !st.bindings.empty();
      if (rebinds) RemoveFromStore(inst);
      inst.env = std::move(new_env);
      // Quantitative stages (extension): accumulate matches until the
      // stage's threshold before the observation counts as complete.
      if (++inst.stage_matches < st.min_count) {
        if (rebinds) InsertIntoStore(inst);  // re-file under the new key
        continue;
      }
      if (!rebinds) RemoveFromStore(inst);
      ++stats_.instances_advanced;
      AdvanceInstance(inst, &ev);
    }
  }
}

void MonitorEngine::RunCreatePass(const DataplaneEvent& ev) {
  const Stage& st0 = property_.stages[0];
  std::vector<std::optional<std::uint64_t>> env(property_.num_vars());
  if (!MatchPattern(st0.pattern, ev, env)) return;

  // Suppression (negated-history preconditions).
  if (!property_.suppression_key_fields.empty()) {
    if (const auto key =
            ProjectKey(ev.fields, property_.suppression_key_fields);
        key && suppressed_.contains(*key)) {
      ++stats_.suppressed_creations;
      return;
    }
  }

  // ApplyBindings validates every fallible part (field presence) before
  // mutating, so a failed stage never advances rr_counter_. The dedup path
  // below discards a *successful* env, though — snapshot the counter so an
  // event that does not complete stage 0 never consumes a round-robin slot
  // (a duplicate stage-0 match must not desynchronize later assignments).
  const std::uint64_t rr_before = rr_counter_;
  if (!ApplyBindings(st0, ev, env)) return;

  // Dedup / refresh (Feature 3's per-pair timer semantics).
  if (const auto key = Stage0Key(env)) {
    const auto bucket = stage0_index_.find(*key);
    if (bucket != stage0_index_.end() && !bucket->second.empty()) {
      rr_counter_ = rr_before;
      if (st0.refresh_window_on_rematch) {
        for (const std::uint64_t id : bucket->second) {
          auto it = instances_.find(id);
          if (it == instances_.end() || it->second.stage != 1) continue;
          ArmWindow(it->second, st0, &ev);
          ++stats_.instances_refreshed;
          if (evict_enabled_) eviction_.OnTouch(id, event_seq_);
        }
      }
      return;  // an equivalent attempt is already live
    }
  }

  const std::uint64_t id = next_instance_id_++;
  auto [it, inserted] = instances_.emplace(id, Instance{});
  SWMON_ASSERT(inserted);
  Instance& inst = it->second;
  inst.id = id;
  inst.stage = 0;
  inst.created = now_;
  inst.env = std::move(env);
  inst.last_event_seq = event_seq_;
  if (const auto key = Stage0Key(inst.env))
    stage0_index_[*key].push_back(id);
  // Eviction bookkeeping is only maintained under a cap; recording
  // unconditionally would grow the policy queue forever when unbounded.
  if (evict_enabled_) eviction_.OnCreate(id, id, event_seq_);
  ++stats_.instances_created;
  AdvanceInstance(inst, &ev);  // commits stage 0 -> 1 (or violates if n==1)
  EvictIfNeeded();
}

void MonitorEngine::RunSuppressorPass(const DataplaneEvent& ev) {
  for (const Suppressor& sup : property_.suppressors) {
    std::vector<std::optional<std::uint64_t>> env(property_.num_vars());
    if (!MatchPattern(sup.pattern, ev, env)) continue;
    if (const auto key = ProjectKey(ev.fields, sup.key_fields))
      suppressed_.insert(*key);
  }
}

std::size_t MonitorEngine::StateBytes() const {
  std::size_t bytes = suppressed_.size() * sizeof(FlowKey);
  for (const auto& [id, inst] : instances_) {
    bytes += sizeof(Instance);
    bytes += inst.env.capacity() * sizeof(std::optional<std::uint64_t>);
    bytes += inst.history.capacity() * sizeof(ProvenanceEvent);
  }
  return bytes;
}

void MonitorEngine::CollectInto(telemetry::Snapshot& snap,
                                std::string_view name) const {
  const MonitorStats s = StatsNow();
  std::string prefix = "monitor.engine.";
  prefix.append(name);
  prefix += '.';
  const auto set = [&](const char* leaf, std::uint64_t v) {
    snap.SetCounter(prefix + leaf, v);
  };
  set("events", s.events);
  set("events_dispatched", s.events_dispatched);
  set("events_filtered", s.events_filtered);
  set("instances_created", s.instances_created);
  set("instances_refreshed", s.instances_refreshed);
  set("instances_advanced", s.instances_advanced);
  set("instances_expired", s.instances_expired);
  set("instances_aborted", s.instances_aborted);
  set("instances_evicted", s.instances_evicted);
  set("timeout_observations", s.timeout_observations);
  set("suppressed_creations", s.suppressed_creations);
  set("violations", s.violations);
  set("candidate_checks", s.candidate_checks);
  set("timers_armed", s.timers_armed);
  set("timer_stale_pops", s.timer_stale_pops);
  snap.SetGauge(prefix + "peak_live", static_cast<std::int64_t>(s.peak_live));
  snap.SetGauge(prefix + "live_instances",
                static_cast<std::int64_t>(instances_.size()));
  snap.SetGauge(prefix + "eviction_queue",
                static_cast<std::int64_t>(eviction_.QueueSize()));
  snap.SetGauge(prefix + "timers_pending",
                static_cast<std::int64_t>(timers_.armed_count()));
  // Engine-neutral modeled state bytes — the same model the byte cap is
  // enforced against, so the gauge and the cap always agree (and both
  // engines publish identical values; actual resident size is engine-
  // specific and stays on StateBytes()).
  snap.SetGauge(prefix + "state_bytes",
                static_cast<std::int64_t>(
                    instances_.size() * ModelInstanceBytes(property_.num_vars())));
  if (evict_enabled_) {
    // Enabled-only so the disabled default's snapshot name-set (and cost)
    // is unchanged: evictions split by policy and by binding cap.
    snap.SetCounter(prefix + "evictions.policy." +
                        EvictionPolicyName(ecfg_.policy),
                    s.instances_evicted);
    snap.SetCounter(prefix + "evictions.reason.capacity",
                    evictions_capacity_);
    snap.SetCounter(prefix + "evictions.reason.bytes", evictions_bytes_);
  }
}

}  // namespace swmon
