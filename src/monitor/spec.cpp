#include "monitor/spec.hpp"

#include <cstdio>

namespace swmon {
namespace {

std::string TermToString(const Term& t, const Property& p) {
  if (t.kind == Term::Kind::kConst) return std::to_string(t.constant);
  if (t.var < p.vars.size()) return "$" + p.vars[t.var];
  return "$?" + std::to_string(t.var);
}

std::string ConditionToString(const Condition& c, const Property& p) {
  std::string out = FieldName(c.field);
  out += c.op == CmpOp::kEq ? "==" : "!=";
  out += TermToString(c.rhs, p);
  return out;
}

std::string PatternToString(const Pattern& pat, const Property& p) {
  std::string out;
  if (pat.event_type)
    out += std::string(DataplaneEventTypeName(*pat.event_type)) + " ";
  out += "[";
  for (std::size_t i = 0; i < pat.conditions.size(); ++i) {
    if (i) out += " && ";
    out += ConditionToString(pat.conditions[i], p);
  }
  if (!pat.forbidden.empty()) {
    out += " && !(";
    for (std::size_t i = 0; i < pat.forbidden.size(); ++i) {
      if (i) out += " && ";
      out += ConditionToString(pat.forbidden[i], p);
    }
    out += ")";
  }
  out += "]";
  return out;
}

std::string CheckPattern(const Pattern& pat, const Property& p,
                         const char* where) {
  auto check_conds = [&](const std::vector<Condition>& conds) -> std::string {
    for (const auto& c : conds) {
      if (c.field >= FieldId::kNumFields) return std::string(where) + ": bad field";
      if (c.rhs.kind == Term::Kind::kVar && c.rhs.var >= p.vars.size())
        return std::string(where) + ": condition references unknown var";
    }
    return "";
  };
  if (auto e = check_conds(pat.conditions); !e.empty()) return e;
  return check_conds(pat.forbidden);
}

}  // namespace

const char* InstanceIdModeName(InstanceIdMode mode) {
  switch (mode) {
    case InstanceIdMode::kExact: return "exact";
    case InstanceIdMode::kSymmetric: return "symmetric";
    case InstanceIdMode::kWandering: return "wandering";
  }
  return "?";
}

std::string Property::Validate() const {
  if (name.empty()) return "property has no name";
  if (stages.empty()) return "property has no stages";
  if (stages[0].kind != StageKind::kEvent)
    return "stage 0 must be an event observation";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const Stage& s = stages[i];
    const std::string where = "stage " + std::to_string(i);
    if (s.kind == StageKind::kTimeout) {
      if (i == 0) return where + ": timeout stage cannot be first";
      const Stage& prev = stages[i - 1];
      if (prev.window == Duration::Zero() && !prev.window_from_field)
        return where + ": timeout stage requires a window on the previous stage";
      if (!s.pattern.conditions.empty() || !s.pattern.forbidden.empty())
        return where + ": timeout stages cannot carry event conditions";
    }
    if (auto e = CheckPattern(s.pattern, *this, where.c_str()); !e.empty())
      return e;
    for (const auto& a : s.aborts) {
      if (auto e = CheckPattern(a, *this, (where + " abort").c_str()); !e.empty())
        return e;
    }
    for (const auto& b : s.bindings) {
      if (b.var >= vars.size()) return where + ": binding to unknown var";
      if (b.kind != Binding::Kind::kField && b.modulus == 0)
        return where + ": builtin binding needs nonzero modulus";
    }
    if (s.refresh_window_on_rematch && i != 0)
      return where + ": refresh_window_on_rematch is stage-0 only";
    if (s.min_count < 1) return where + ": min_count must be >= 1";
    if (s.min_count > 1 && (i == 0 || s.kind == StageKind::kTimeout))
      return where + ": counted stages must be non-initial event stages";
  }
  if (!suppressors.empty() && suppression_key_fields.empty())
    return "suppressors require suppression_key_fields";
  for (const auto& sup : suppressors) {
    if (auto e = CheckPattern(sup.pattern, *this, "suppressor"); !e.empty())
      return e;
    if (sup.key_fields.size() != suppression_key_fields.size())
      return "suppressor key width differs from stage-0 suppression key";
  }
  return "";
}

std::string Property::ToString() const {
  std::string out = "property " + name + " (" +
                    InstanceIdModeName(id_mode) + ")\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const Stage& s = stages[i];
    char head[64];
    std::snprintf(head, sizeof(head), "  (%zu) %s: ", i + 1,
                  s.label.empty() ? "obs" : s.label.c_str());
    out += head;
    if (s.kind == StageKind::kTimeout) {
      out += "TIMEOUT";
    } else {
      out += PatternToString(s.pattern, *this);
    }
    for (const auto& b : s.bindings) {
      out += " bind $" + vars[b.var];
      switch (b.kind) {
        case Binding::Kind::kField:
          out += "=" + std::string(FieldName(b.field));
          break;
        case Binding::Kind::kHashPort: out += "=hash_port"; break;
        case Binding::Kind::kRoundRobin: out += "=round_robin"; break;
      }
    }
    if (s.min_count > 1) out += " x" + std::to_string(s.min_count);
    if (s.window > Duration::Zero())
      out += " window=" + s.window.ToString();
    if (s.window_from_field)
      out += " window_from=" + std::string(FieldName(*s.window_from_field));
    for (const auto& a : s.aborts)
      out += "\n        unless " + PatternToString(a, *this);
    out += "\n";
  }
  return out;
}

}  // namespace swmon
