// Instance-shard routing plans (the parallel path's Feature-8 key).
//
// Property-level sharding pins a property to one worker; a single hot
// property (the paper's million-user case) cannot scale that way. Instance
// sharding splits ONE property across workers by partitioning its monitor
// instances on their identity key — the stage-0 bound variables that every
// later stage links back to. A ShardPlan is the static analysis that makes
// this sound:
//
//   * routing_vars: stage-0 kField-bound variables that (a) every later
//     kEvent stage constrains with an indexable equality (same shape the
//     engines' keyed stores use: Eq against the var, full mask, no
//     allow_absent) and (b) no later stage rebinds. An instance's routing
//     values are therefore fixed at creation, and any event that can
//     advance the instance carries the same values in its fields — so the
//     producer can compute the owning worker from the event alone.
//   * extractions: per (event type, stage set), the ordered field tuple to
//     hash. Stage 0 extracts the binding fields (what a new instance would
//     bind); stage k >= 1 extracts the matched condition fields. Plans with
//     identical (type, fields) merge their stage bits into one lane, and
//     exactly one plan per type carries the event count so summed replica
//     counters equal the serial engine's.
//
// An event is delivered to replica r with a stage mask: the OR of
// stage_bits over this type's lanes whose hash owns r. Every instance the
// event could create, advance, refresh, or abort at those stages lives on
// that replica, and no other replica holds one — which is what makes the
// merged violation stream (parallel_monitor_set.cpp) bit-identical to
// serial execution.
//
// Properties outside the analyzable shape (aborts, suppressors, scan-list
// instances, round-robin bindings, field-derived windows, instance caps)
// are simply ineligible and fall back to property-level sharding; no
// behaviour changes for them.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dataplane/switch.hpp"
#include "monitor/property_monitor.hpp"
#include "monitor/spec.hpp"
#include "packet/field.hpp"

namespace swmon {

/// One routing lane: for events of `type`, hash `fields` (in routing-var
/// order); the owning replica runs the passes `stage_bits` selects.
struct ShardExtraction {
  DataplaneEventType type;
  /// Bit k = the owner runs stage k's advance pass (bit 0: the create and
  /// suppressor passes).
  std::uint64_t stage_bits = 0;
  /// Exactly one lane per event type carries the event-count attribution
  /// (PropertyMonitor::ProcessShardedEvent's `count`).
  bool counts = false;
  std::vector<FieldId> fields;
};

struct ShardPlan {
  /// The identity key, in stage-0 binding order.
  std::vector<VarId> routing_vars;
  std::vector<ShardExtraction> extractions;
  /// Indexes into `extractions`, per event type (the lanes the producer
  /// hashes for an event of that type, in extraction order).
  std::array<std::vector<std::uint32_t>, kNumDataplaneEventTypes> lanes_by_type;
  /// max over types of lanes_by_type[t].size(); the batch route stride.
  std::uint32_t max_lanes = 0;
};

/// Hash of an event's projection onto an extraction's field tuple. Absent
/// fields mix a presence sentinel, so every event routes somewhere
/// deterministic; an event that actually matches an instance always has the
/// fields present (indexable conditions reject absent fields), so it hashes
/// identically to the instance's routing values.
std::uint64_t ShardHash(const FieldMap& fields,
                        const std::vector<FieldId>& extraction_fields);

/// Analyzes the property; nullopt (with a reason in `*why` if given) when
/// it is not instance-shardable under `config`.
std::optional<ShardPlan> BuildShardPlan(const Property& property,
                                        const MonitorConfig& config,
                                        std::string* why = nullptr);

}  // namespace swmon
