#include "monitor/shard_plan.hpp"

#include <algorithm>

namespace swmon {

std::uint64_t ShardHash(const FieldMap& fields,
                        const std::vector<FieldId>& extraction_fields) {
  // FNV-1a with FlowKey's extra fold, one (presence, value) pair per field.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  for (const FieldId f : extraction_fields) {
    if (fields.Has(f)) {
      mix(1);
      mix(fields.GetUnchecked(f));
    } else {
      mix(0);
    }
  }
  return h;
}

namespace {

/// The keyed-store shape (see MonitorEngine's constructor): an equality
/// whose projection from the event provably equals the instance's variable
/// whenever the condition holds.
bool IsIndexableEq(const Condition& c) {
  return c.op == CmpOp::kEq && c.rhs.kind == Term::Kind::kVar &&
         c.mask == ~std::uint64_t{0} && !c.allow_absent;
}

}  // namespace

std::optional<ShardPlan> BuildShardPlan(const Property& p,
                                        const MonitorConfig& config,
                                        std::string* why) {
  const auto fail = [&](const char* reason) -> std::optional<ShardPlan> {
    if (why) *why = reason;
    return std::nullopt;
  };

  if (p.num_stages() == 0 || p.num_stages() > 64)
    return fail("stage count outside the 64-bit stage-mask width");
  // Config shapes that route state through paths the analysis does not
  // cover: eviction order and scan lists are global, the naive-refresh
  // ablation walks entire stores.
  if (config.EffectiveEviction().enabled())
    return fail("bounded eviction: the victim order is global across instances");
  if (config.force_linear_store)
    return fail("force_linear_store: every instance lives in a scan list");
  if (config.naive_timeout_refresh)
    return fail("naive_timeout_refresh: refresh walks whole stage stores");
  if (!p.suppressors.empty())
    return fail("suppressors: the suppression set is global keyed state");

  const Stage& st0 = p.stages[0];
  if (st0.kind != StageKind::kEvent)
    return fail("stage 0 is not an event stage");
  if (!st0.pattern.event_type)
    return fail("stage 0 matches any event type (no per-type lane)");

  for (const Stage& st : p.stages) {
    if (!st.aborts.empty())
      return fail("abort patterns can kill instances on any replica");
    if (st.window_from_field)
      return fail("field-derived windows break the fixed-window tie order");
    for (const Binding& b : st.bindings)
      if (b.kind == Binding::Kind::kRoundRobin)
        return fail("round-robin bindings draw from a global counter");
  }

  // Candidate routing vars: stage-0 kField bindings (the identity key a new
  // instance is created under), minus anything a later stage rebinds — a
  // rebound routing value would migrate the instance across shards.
  std::vector<std::pair<VarId, FieldId>> candidates;
  for (const Binding& b : st0.bindings) {
    if (b.kind != Binding::Kind::kField) continue;
    const bool dup = std::any_of(
        candidates.begin(), candidates.end(),
        [&](const auto& c) { return c.first == b.var; });
    if (!dup) candidates.emplace_back(b.var, b.field);
  }
  for (std::size_t k = 1; k < p.num_stages(); ++k) {
    for (const Binding& b : p.stages[k].bindings) {
      std::erase_if(candidates,
                    [&](const auto& c) { return c.first == b.var; });
    }
  }
  if (candidates.empty())
    return fail("no stage-0 field binding survives later rebinds");

  // Per later event stage: require (a) an event type lane can be built,
  // (b) the engines' keyed store always files instances under a full key
  // (every link var bound before the stage is reached — otherwise the
  // instance lands in a scan list visible to one replica only), and
  // (c) every candidate routing var is pinned by an indexable equality.
  std::vector<bool> bound_before(p.num_vars(), false);
  for (const Binding& b : st0.bindings) bound_before[b.var] = true;

  // first_eq_field[k][v]: the field whose value equals var v at stage k.
  std::vector<std::vector<std::optional<FieldId>>> first_eq_field(
      p.num_stages(), std::vector<std::optional<FieldId>>(p.num_vars()));

  for (std::size_t k = 1; k < p.num_stages(); ++k) {
    const Stage& st = p.stages[k];
    if (st.kind != StageKind::kEvent) continue;  // timeout: timer-local
    if (!st.pattern.event_type)
      return fail("a later stage matches any event type (no per-type lane)");
    bool any_link = false;
    for (const Condition& c : st.pattern.conditions) {
      if (!IsIndexableEq(c)) continue;
      any_link = true;
      if (!bound_before[c.rhs.var])
        return fail("wandering match: a link var binds only at a later "
                    "stage, so instances wait in scan lists");
      if (!first_eq_field[k][c.rhs.var]) first_eq_field[k][c.rhs.var] = c.field;
    }
    if (!any_link)
      return fail("multiple match: a stage with no indexable equality "
                  "addresses every instance at once");
    std::erase_if(candidates, [&](const auto& c) {
      return !first_eq_field[k][c.first].has_value();
    });
    if (candidates.empty())
      return fail("no stage-0 binding is pinned by an indexable equality "
                  "at every later event stage");
    for (const Binding& b : st.bindings) bound_before[b.var] = true;
  }

  ShardPlan plan;
  for (const auto& [var, field] : candidates) plan.routing_vars.push_back(var);

  // Build one lane per (type, field tuple); merge stage bits on collision.
  const auto add_lane = [&](DataplaneEventType type, std::uint64_t stage_bit,
                            std::vector<FieldId> fields) {
    for (ShardExtraction& e : plan.extractions) {
      if (e.type == type && e.fields == fields) {
        e.stage_bits |= stage_bit;
        return;
      }
    }
    plan.extractions.push_back(
        ShardExtraction{type, stage_bit, false, std::move(fields)});
  };

  {
    std::vector<FieldId> fields;
    for (const auto& [var, field] : candidates) fields.push_back(field);
    add_lane(*st0.pattern.event_type, 1, std::move(fields));
  }
  for (std::size_t k = 1; k < p.num_stages(); ++k) {
    const Stage& st = p.stages[k];
    if (st.kind != StageKind::kEvent) continue;
    std::vector<FieldId> fields;
    for (const auto& [var, unused] : candidates)
      fields.push_back(*first_eq_field[k][var]);
    add_lane(*st.pattern.event_type, std::uint64_t{1} << k, std::move(fields));
  }

  for (std::uint32_t i = 0; i < plan.extractions.size(); ++i) {
    plan.lanes_by_type[static_cast<std::size_t>(plan.extractions[i].type)]
        .push_back(i);
  }
  for (auto& lanes : plan.lanes_by_type) {
    if (lanes.empty()) continue;
    plan.max_lanes =
        std::max(plan.max_lanes, static_cast<std::uint32_t>(lanes.size()));
    // The lane gating the lowest stage attributes the event count; one and
    // only one replica per event runs with `count` set.
    std::uint32_t best = lanes[0];
    for (const std::uint32_t li : lanes) {
      const std::uint64_t a = plan.extractions[li].stage_bits;
      const std::uint64_t b = plan.extractions[best].stage_bits;
      if ((a & -a) < (b & -b)) best = li;
    }
    plan.extractions[best].counts = true;
  }
  return plan;
}

}  // namespace swmon
