// Engine selection for CreatePropertyMonitor (see property_monitor.hpp).

#include <cstdlib>
#include <string_view>

#include "monitor/compiled/bytecode.hpp"
#include "monitor/compiled/engine.hpp"
#include "monitor/engine.hpp"
#include "monitor/property_monitor.hpp"

namespace swmon {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kDefault:
      return "default";
    case EngineKind::kInterpreted:
      return "interpreted";
    case EngineKind::kCompiled:
      return "compiled";
  }
  return "unknown";
}

EngineKind ResolveEngineKind(const Property& property,
                             const MonitorConfig& config) {
  EngineKind kind = config.engine;
  if (kind == EngineKind::kDefault) {
    // Read per call, not cached: tests and the daemon flip it per attach.
    const char* env = std::getenv("SWMON_ENGINE");
    kind = (env != nullptr && std::string_view(env) == "compiled")
               ? EngineKind::kCompiled
               : EngineKind::kInterpreted;
  }
  if (kind == EngineKind::kCompiled) {
    const bool lowerable = !config.force_linear_store &&
                           !config.naive_timeout_refresh &&
                           config.provenance != ProvenanceLevel::kFull &&
                           property.num_stages() <= 64 &&
                           property.num_vars() <= 64;
    if (!lowerable) kind = EngineKind::kInterpreted;
  }
  return kind;
}

std::unique_ptr<PropertyMonitor> CreatePropertyMonitor(Property property,
                                                       MonitorConfig config) {
  if (ResolveEngineKind(property, config) == EngineKind::kCompiled) {
    // ResolveEngineKind's size caps match CompileProperty's, so this cannot
    // assert; compile here (not in the ctor) to keep one compilation.
    std::optional<compiled::Program> program =
        compiled::CompileProperty(property);
    if (program.has_value())
      return std::make_unique<CompiledEngine>(std::move(property),
                                              std::move(*program), config);
  }
  return std::make_unique<MonitorEngine>(std::move(property), config);
}

}  // namespace swmon
