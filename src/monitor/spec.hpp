// Property specifications: the monitor's input language.
//
// A property describes a *violation pattern*: an ordered sequence of
// observation stages that, when completed, witness incorrect behaviour
// (Sec 2: "a sequence of observations that, when completed, witness a
// violation"). The model is distilled from the paper's ten features:
//
//   * Stages match dataplane events (arrival / egress incl. drops /
//     out-of-band link status) via conjunctions of field conditions
//     (Feature 1), may compare against values bound by earlier stages
//     (Feature 2: event history), with equality or inequality (Feature 6:
//     negative match) and tuple-inequality via a `forbidden` group (the NAT
//     property's "destination not equal to A,P").
//   * Completing a stage can bind event fields — or engine builtins like a
//     hash or round-robin expectation — into the instance environment.
//   * A stage may carry a timeout window bounding how long the instance may
//     wait for the *next* stage (Feature 3); windows can be refreshed on
//     re-match (stateful-firewall semantics) or deliberately not
//     (Sec 2.3's ARP subtlety), and can derive their length from a bound
//     field (a DHCP lease time).
//   * A stage may itself be a timeout observation (Feature 7): it matches
//     when the previous stage's window elapses, not when a packet arrives.
//   * While an instance waits for a stage, `abort` patterns describe events
//     that discharge the obligation and kill the instance (Feature 4:
//     "until the connection is closed").
//   * Properties may declare suppressors: once a suppressor pattern is seen
//     for a key, stage-0 matches with that key no longer create instances
//     ("no direct reply if neither pre-loaded nor prior reply seen").
//
// Instance identification variety (Feature 8) — exact, symmetric,
// wandering, multiple — is declared for reporting (Table 1) and derivable
// from stage structure (monitor/features.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "dataplane/switch.hpp"
#include "packet/field.hpp"

namespace swmon {

using VarId = std::uint16_t;

enum class CmpOp : std::uint8_t { kEq, kNe };

/// Right-hand side of a condition: a literal or a bound variable.
struct Term {
  enum class Kind : std::uint8_t { kConst, kVar } kind = Kind::kConst;
  std::uint64_t constant = 0;
  VarId var = 0;

  static Term Const(std::uint64_t v) { return Term{Kind::kConst, v, 0}; }
  static Term Var(VarId v) { return Term{Kind::kVar, 0, v}; }

  bool operator==(const Term&) const = default;
};

struct Condition {
  FieldId field;
  CmpOp op = CmpOp::kEq;
  Term rhs;
  /// TCAM-style mask applied to both sides before comparison. The default
  /// (all ones) is an exact match. Port-knocking uses a masked match to
  /// describe the knock-port region ("any guess") plus an exact Ne for
  /// "not the expected knock".
  std::uint64_t mask = ~std::uint64_t{0};
  /// Result when the event lacks the field entirely. Default false (a
  /// condition on an absent field never holds). Setting it true expresses
  /// e.g. "not a TCP close — or not TCP at all" on a stage that must also
  /// admit non-TCP packets.
  bool allow_absent = false;

  bool operator==(const Condition&) const = default;
};

/// A conjunctive event pattern. `conditions` must all hold; if `forbidden`
/// is non-empty, the pattern additionally requires that NOT all of its
/// conditions hold (tuple-level negative match).
struct Pattern {
  std::optional<DataplaneEventType> event_type;
  std::vector<Condition> conditions;
  std::vector<Condition> forbidden;

  bool operator==(const Pattern&) const = default;
};

/// Capture into the instance environment when a stage completes.
struct Binding {
  enum class Kind : std::uint8_t {
    kField,       // copy an event field
    kHashPort,    // FNV hash of `hash_inputs` event fields, mod `modulus`, +1
    kRoundRobin,  // engine's per-property round-robin counter, mod `modulus`, +1
  };
  VarId var = 0;
  Kind kind = Kind::kField;
  FieldId field = FieldId::kInPort;       // kField
  std::vector<FieldId> hash_inputs;       // kHashPort
  std::uint32_t modulus = 1;              // kHashPort / kRoundRobin
  std::uint32_t base = 1;                 // kHashPort / kRoundRobin offset

  bool operator==(const Binding&) const = default;
};

enum class StageKind : std::uint8_t {
  kEvent,    // matches a dataplane event
  kTimeout,  // matches the expiry of the previous stage's window (Feature 7)
};

struct Stage {
  std::string label;
  StageKind kind = StageKind::kEvent;

  /// For kEvent stages. Conditions may reference variables bound by earlier
  /// stages; evaluation requires those variables to be bound.
  Pattern pattern;

  /// Environment captures applied when this stage completes.
  std::vector<Binding> bindings;

  /// Events that kill an instance *waiting for this stage* (Feature 4).
  std::vector<Pattern> aborts;

  /// Time the instance may wait for the NEXT stage after this one
  /// completes. Zero = unbounded. If the next stage is kEvent, expiry kills
  /// the instance (Feature 3); if the next stage is kTimeout, expiry *is*
  /// that observation (Feature 7).
  Duration window = Duration::Zero();

  /// When set, the window length is `bound value of this field` seconds
  /// captured at this stage (e.g. a DHCP lease time), overriding `window`.
  std::optional<FieldId> window_from_field;

  /// Stage-0 only: when a stage-0 event re-matches an existing instance's
  /// key, re-arm its window instead of ignoring the event (the stateful
  /// firewall resets its per-(A,B) timer on every A->B packet; the ARP
  /// proxy deliberately must NOT reset — Sec 2.3).
  bool refresh_window_on_rematch = false;

  /// EXTENSION beyond the paper's boolean scope (Sec 4): the stage must
  /// match this many events before the instance advances — quantitative
  /// observations like "K SYNs from H within T". Applies to non-initial
  /// event stages; 1 (the default) is the paper's semantics.
  std::uint32_t min_count = 1;

  bool operator==(const Stage&) const = default;
};

/// Table 1's "Inst. ID" column.
enum class InstanceIdMode : std::uint8_t {
  kExact,      // later stages match the same fields stage 0 bound
  kSymmetric,  // later stages match reversed/related fields (5-tuple flip)
  kWandering,  // stages bind and match across different protocols
};

const char* InstanceIdModeName(InstanceIdMode mode);

/// Keyed suppression of instance creation (negated-history preconditions).
struct Suppressor {
  Pattern pattern;
  /// Event fields forming the suppression key when `pattern` matches.
  std::vector<FieldId> key_fields;

  bool operator==(const Suppressor&) const = default;
};

struct Property {
  std::string name;
  std::string description;

  /// Variable names; VarId indexes this vector.
  std::vector<std::string> vars;

  std::vector<Stage> stages;

  InstanceIdMode id_mode = InstanceIdMode::kExact;

  std::vector<Suppressor> suppressors;
  /// Stage-0 event fields forming the key checked against suppressions.
  std::vector<FieldId> suppression_key_fields;

  std::size_t num_vars() const { return vars.size(); }
  std::size_t num_stages() const { return stages.size(); }

  /// Structural sanity checks (stage count, var references in range,
  /// timeout stages preceded by a window, ...). Returns an error message or
  /// empty string when valid.
  std::string Validate() const;

  std::string ToString() const;

  bool operator==(const Property&) const = default;
};

}  // namespace swmon
