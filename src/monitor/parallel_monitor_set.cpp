#include "monitor/parallel_monitor_set.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "monitor/engine.hpp"  // CalibrateShardWeights' throwaway probe

namespace swmon {

std::vector<double> CalibrateShardWeights(
    const std::vector<Property>& properties,
    const std::vector<DataplaneEvent>& sample, MonitorConfig config) {
  std::vector<double> weights;
  weights.reserve(properties.size());
  for (const Property& p : properties) {
    MonitorEngine probe(p, config);
    const EventTypeMask sig = probe.interest_signature();
    for (const DataplaneEvent& ev : sample) {
      if (sig >> static_cast<std::size_t>(ev.type) & 1) {
        probe.ProcessEvent(ev);
      } else {
        probe.AdvanceTime(ev.time);  // mirror the filtered clock-only path
      }
    }
    // candidate_checks counts instances examined across lookups — the
    // dominant per-event cost. +1 keeps never-matching engines schedulable.
    telemetry::Snapshot snap;
    probe.CollectInto(snap, "probe");
    weights.push_back(1.0 + static_cast<double>(snap.counter(
                                "monitor.engine.probe.candidate_checks")));
  }
  return weights;
}

std::vector<std::size_t> GreedyAssignShards(const std::vector<double>& weights,
                                            std::size_t workers) {
  SWMON_ASSERT(workers > 0);
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return weights[a] > weights[b];
  });
  std::vector<double> load(workers, 0.0);
  std::vector<std::size_t> shard(weights.size(), 0);
  for (const std::size_t i : order) {
    const std::size_t lightest = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    shard[i] = lightest;
    load[lightest] += weights[i];
  }
  return shard;
}

ParallelMonitorSet::ParallelMonitorSet(ParallelConfig config)
    : config_(config),
      batcher_(config.batch_capacity ? config.batch_capacity : 1) {
  if (config_.workers == 0) config_.workers = HardwareWorkerCount();
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
}

ParallelMonitorSet::~ParallelMonitorSet() {
  AttachTelemetry(nullptr);
  Stop();
}

PropertyMonitor& ParallelMonitorSet::Add(Property property,
                                         MonitorConfig config, double weight) {
  SWMON_ASSERT_MSG(!started_,
                   "Add() after Start(); use AttachProperty for hot attach");
  return *engines_[AttachProperty(std::move(property), config, weight)];
}

PropertyId ParallelMonitorSet::AttachProperty(Property property,
                                              MonitorConfig config,
                                              double weight) {
  SWMON_ASSERT_MSG(!stopped_, "AttachProperty() after Stop()");
  if (weight <= 0) weight = 1.0;
  const PropertyId id = engines_.size();
  engine_names_.push_back(UniqueEngineName(engine_names_, property.name));
  engines_.push_back(CreatePropertyMonitor(std::move(property), config));
  retired_.emplace_back();
  weights_.push_back(weight);
  if (started_) {
    // Hot attach: the quiesce leaves every worker parked between ring pops,
    // so the producer owns the chosen shard's dispatch table. The mutation
    // is published to the worker by the next batch push (the ring's
    // release/acquire pair), before the worker can touch the table again.
    Quiesce();
    const std::size_t w = static_cast<std::size_t>(
        std::min_element(worker_load_.begin(), worker_load_.end()) -
        worker_load_.begin());
    shard_of_.push_back(w);
    worker_load_[w] += weight;
    workers_[w]->table.Register(engines_[id].get(),
                                static_cast<std::uint32_t>(id));
    workers_[w]->engine_indices.push_back(id);
  }
  return id;
}

std::optional<std::vector<Violation>> ParallelMonitorSet::DetachProperty(
    PropertyId id) {
  if (id >= engines_.size() || engines_[id] == nullptr) return std::nullopt;
  if (started_) Quiesce();
  PropertyMonitor* engine = engines_[id].get();
  std::vector<Violation> drained = engine->TakeViolations();
  // Keep a copy resolvable for merge markers already recorded by workers;
  // DrainViolations clears it.
  retired_[id] = drained;
  if (started_) {
    const std::size_t w = shard_of_[id];
    workers_[w]->table.Unregister(engine);
    auto& indices = workers_[w]->engine_indices;
    indices.erase(std::remove(indices.begin(), indices.end(), id),
                  indices.end());
    worker_load_[w] -= weights_[id];
  }
  engines_[id].reset();
  return drained;
}

std::vector<Violation> ParallelMonitorSet::DrainViolations() {
  Quiesce();
  std::vector<Violation> out = MergeFromMarkers(GatherSortedMarkers());
  for (auto& w : workers_) w->markers.clear();
  advance_markers_.clear();
  for (auto& e : engines_)
    if (e) e->TakeViolations();
  for (auto& r : retired_) r.clear();
  return out;
}

void ParallelMonitorSet::AttachTelemetry(telemetry::MetricsRegistry* registry) {
  if (registry_ != nullptr) registry_->RemoveCollector(collector_token_);
  registry_ = registry;
  collector_token_ = 0;
  if (registry_ != nullptr) {
    collector_token_ = registry_->AddCollector(
        [this](telemetry::Snapshot& snap) { CollectInto(snap); });
  }
}

void ParallelMonitorSet::CollectInto(telemetry::Snapshot& snap) {
  Quiesce();
  std::uint64_t dispatched = 0;
  std::uint64_t filtered = 0;
  for (const auto& w : workers_) {
    dispatched += w->dispatched;
    filtered += w->filtered;
  }
  snap.SetCounter("monitor.set.events_dispatched", dispatched);
  snap.SetCounter("monitor.set.events_filtered", filtered);
  for (std::size_t i = 0; i < engines_.size(); ++i)
    if (engines_[i]) engines_[i]->CollectInto(snap, engine_names_[i]);
}

void ParallelMonitorSet::Start() {
  SWMON_ASSERT_MSG(!started_ && !stopped_, "Start() twice");
  const std::size_t n_workers = std::max<std::size_t>(1, config_.workers);
  // Slots detached before Start weigh nothing and are not registered.
  std::vector<double> effective = weights_;
  for (std::size_t i = 0; i < engines_.size(); ++i)
    if (!engines_[i]) effective[i] = 0.0;
  shard_of_ = GreedyAssignShards(effective, n_workers);
  worker_load_.assign(n_workers, 0.0);
  workers_.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w)
    workers_.push_back(std::make_unique<Worker>(config_.ring_capacity));
  // Register in attach order so each shard's dispatch order (and thus its
  // engines' event interleaving) matches the serial set's.
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (!engines_[i]) continue;
    Worker& w = *workers_[shard_of_[i]];
    w.table.Register(engines_[i].get(), static_cast<std::uint32_t>(i));
    w.engine_indices.push_back(i);
    worker_load_[shard_of_[i]] += weights_[i];
  }
  started_ = true;
  for (std::size_t w = 0; w < n_workers; ++w) {
    workers_[w]->thread =
        std::thread([this, w] { WorkerLoop(*workers_[w], w); });
  }
}

void ParallelMonitorSet::WorkerLoop(Worker& worker, std::size_t worker_index) {
  if (config_.pin_threads) PinCurrentThreadToCpu(worker_index);
  std::shared_ptr<const Batch<DataplaneEvent>> batch;
  while (worker.ring.PopBlocking(batch)) {
    ProcessBatch(worker, *batch);
    batch.reset();  // release the shared buffer before parking
    worker.batches_consumed.value.fetch_add(1, std::memory_order_release);
  }
}

void ParallelMonitorSet::ProcessBatch(Worker& worker,
                                      const Batch<DataplaneEvent>& batch) {
  // Local accumulators; synced into the worker's counters once per batch so
  // the batched path's totals match serial per-event counting exactly.
  std::uint64_t dispatched = 0;
  std::uint64_t filtered = 0;
  for (std::size_t i = 0; i < batch.items.size(); ++i) {
    const DataplaneEvent& ev = batch.items[i];
    const std::uint64_t seq = batch.base_seq + i;
    const DispatchTable::Lists& lists = worker.table.lists(ev.type);
    for (const DispatchTable::Entry& e : lists.interested) {
      const std::size_t before = e.engine->violations().size();
      e.engine->ProcessDispatchedEvent(ev);
      for (std::size_t v = before; v < e.engine->violations().size(); ++v) {
        worker.markers.push_back(
            {seq, e.attach_index, static_cast<std::uint32_t>(v)});
      }
    }
    for (const DispatchTable::Entry& e : lists.filtered) {
      // The clock advance can fire timeout-action windows (Feature 7), so
      // filtered deliveries are violation sources too.
      const std::size_t before = e.engine->violations().size();
      e.engine->NoteFilteredEvent(ev.time);
      for (std::size_t v = before; v < e.engine->violations().size(); ++v) {
        worker.markers.push_back(
            {seq, e.attach_index, static_cast<std::uint32_t>(v)});
      }
    }
    dispatched += lists.interested.size();
    filtered += lists.filtered.size();
  }
  worker.dispatched += dispatched;
  worker.filtered += filtered;
}

void ParallelMonitorSet::OnDataplaneEvent(const DataplaneEvent& event) {
  SWMON_ASSERT_MSG(started_ && !stopped_,
                   "ParallelMonitorSet needs Start() before events");
  if (auto batch = batcher_.Append(event)) PublishBatch(std::move(batch));
}

void ParallelMonitorSet::PublishBatch(
    std::shared_ptr<const Batch<DataplaneEvent>> batch) {
  for (auto& w : workers_) {
    auto copy = batch;  // one refcount per worker; last consumer frees
    w->ring.PushBlocking(std::move(copy));
  }
  ++batches_published_;
}

void ParallelMonitorSet::Quiesce() {
  if (!started_) return;
  if (auto batch = batcher_.TakePartial()) PublishBatch(std::move(batch));
  for (auto& w : workers_) {
    while (w->batches_consumed.value.load(std::memory_order_acquire) <
           batches_published_) {
      std::this_thread::yield();
    }
  }
}

void ParallelMonitorSet::Flush() { Quiesce(); }

void ParallelMonitorSet::AdvanceTime(SimTime now) {
  Quiesce();
  // Post-quiesce the producer owns all engine state (workers are parked on
  // empty rings); advancing serially in attach order matches MonitorSet.
  const std::uint64_t seq = batcher_.next_seq();
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (!engines_[i]) continue;
    PropertyMonitor& e = *engines_[i];
    const std::size_t before = e.violations().size();
    e.AdvanceTime(now);
    for (std::size_t v = before; v < e.violations().size(); ++v) {
      advance_markers_.push_back(
          {seq, static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(v)});
    }
  }
}

void ParallelMonitorSet::Stop() {
  if (!started_ || stopped_) return;
  Quiesce();
  for (auto& w : workers_) w->ring.Close();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  stopped_ = true;
}

std::uint64_t ParallelMonitorSet::events_dispatched() {
  Quiesce();
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->dispatched;
  return total;
}

std::uint64_t ParallelMonitorSet::events_filtered() {
  Quiesce();
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->filtered;
  return total;
}

std::vector<Violation> ParallelMonitorSet::AllViolations() {
  Quiesce();
  std::vector<Violation> out;
  for (const auto& e : engines_) {
    if (!e) continue;
    const auto& v = e->violations();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

const Violation& ParallelMonitorSet::Resolve(const ViolationMarker& m) const {
  const auto& e = engines_[m.engine_index];
  if (e) return e->violations()[m.violation_index];
  return retired_[m.engine_index][m.violation_index];
}

std::vector<Violation> ParallelMonitorSet::MergeFromMarkers(
    const std::vector<ViolationMarker>& markers) const {
  std::vector<Violation> out;
  out.reserve(markers.size());
  for (const ViolationMarker& m : markers) out.push_back(Resolve(m));
  return out;
}

std::vector<ParallelMonitorSet::ViolationMarker>
ParallelMonitorSet::GatherSortedMarkers() const {
  std::vector<ViolationMarker> markers;
  for (const auto& w : workers_)
    markers.insert(markers.end(), w->markers.begin(), w->markers.end());
  markers.insert(markers.end(), advance_markers_.begin(),
                 advance_markers_.end());
  // Stream order with the serial tiebreak: the event that fired it, then
  // engine attach order (serial dispatch order within one event), then the
  // engine's own emission order. Stable under any worker count / schedule.
  std::sort(markers.begin(), markers.end(),
            [](const ViolationMarker& a, const ViolationMarker& b) {
              if (a.seq != b.seq) return a.seq < b.seq;
              if (a.engine_index != b.engine_index)
                return a.engine_index < b.engine_index;
              return a.violation_index < b.violation_index;
            });
  return markers;
}

std::vector<Violation> ParallelMonitorSet::MergedViolations() {
  Quiesce();
  return MergeFromMarkers(GatherSortedMarkers());
}

std::size_t ParallelMonitorSet::TotalViolations() {
  Quiesce();
  std::size_t n = 0;
  for (const auto& e : engines_)
    if (e) n += e->violations().size();
  return n;
}

}  // namespace swmon
