#include "monitor/parallel_monitor_set.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "monitor/engine.hpp"  // CalibrateShardWeights' throwaway probe

namespace swmon {

std::vector<double> CalibrateShardWeights(
    const std::vector<Property>& properties,
    const std::vector<DataplaneEvent>& sample, MonitorConfig config) {
  std::vector<double> weights;
  weights.reserve(properties.size());
  for (const Property& p : properties) {
    MonitorEngine probe(p, config);
    const EventTypeMask sig = probe.interest_signature();
    for (const DataplaneEvent& ev : sample) {
      if (sig >> static_cast<std::size_t>(ev.type) & 1) {
        probe.ProcessEvent(ev);
      } else {
        probe.AdvanceTime(ev.time);  // mirror the filtered clock-only path
      }
    }
    // candidate_checks counts instances examined across lookups — the
    // dominant per-event cost. +1 keeps never-matching engines schedulable.
    telemetry::Snapshot snap;
    probe.CollectInto(snap, "probe");
    weights.push_back(1.0 + static_cast<double>(snap.counter(
                                "monitor.engine.probe.candidate_checks")));
  }
  return weights;
}

std::vector<std::size_t> GreedyAssignShards(const std::vector<double>& weights,
                                            std::size_t workers) {
  SWMON_ASSERT(workers > 0);
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return weights[a] > weights[b];
  });
  std::vector<double> load(workers, 0.0);
  std::vector<std::size_t> shard(weights.size(), 0);
  for (const std::size_t i : order) {
    const std::size_t lightest = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    shard[i] = lightest;
    load[lightest] += weights[i];
  }
  return shard;
}

ParallelMonitorSet::ParallelMonitorSet(ParallelConfig config)
    : config_(config) {
  if (config_.workers == 0) config_.workers = HardwareWorkerCount();
  if (config_.batch_capacity == 0) config_.batch_capacity = 1;
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
}

ParallelMonitorSet::~ParallelMonitorSet() {
  AttachTelemetry(nullptr);
  Stop();
}

bool ParallelMonitorSet::WantInstanceShard(std::size_t live_properties) const {
  switch (config_.shard_mode) {
    case ShardMode::kProperty:
      return false;
    case ShardMode::kInstance:
      return true;
    case ShardMode::kAuto:
      // Property-level sharding already saturates the pool once there are
      // at least as many properties as workers.
      return live_properties < workers_.size();
  }
  return false;
}

void ParallelMonitorSet::MakeSharded(PropertyId id, ShardPlan plan) {
  auto g = std::make_unique<ShardedGroup>();
  g->slot = id;
  g->plan = std::move(plan);
  g->lane_base = route_stride_;
  route_stride_ += g->plan.max_lanes;
  const std::size_t n_workers = workers_.size();
  g->replicas.resize(n_workers);
  g->replicas[0] = engines_[id].get();
  for (std::size_t r = 1; r < n_workers; ++r) {
    g->owned.push_back(
        CreatePropertyMonitor(engines_[id]->property(), configs_[id]));
    g->replicas[r] = g->owned.back().get();
  }
  g->serial_ids.resize(n_workers);
  g->merged_live.assign(n_workers, 0);
  g->logs = std::vector<ShardedGroup::ReplicaLog>(n_workers);
  group_of_slot_[id] = g.get();
  active_groups_.push_back(g.get());
  groups_.push_back(std::move(g));
}

void ParallelMonitorSet::RebuildPool() {
  if (pool_ != nullptr && pool_->route_stride() == route_stride_) return;
  // Only called at quiesce points (every batch consumed and released), so
  // dropping the old pool cannot free a batch a worker still reads.
  SWMON_ASSERT(cur_ == nullptr);
  if (pool_ != nullptr) {
    pool_reused_base_ += pool_->reused();
    pool_allocated_base_ += pool_->allocated();
    pool_exhausted_base_ += pool_->exhausted_waits();
  }
  pool_ = std::make_unique<BatchPool<DataplaneEvent>>(
      config_.batch_capacity, route_stride_, config_.ring_capacity + 2);
}

PropertyMonitor& ParallelMonitorSet::Add(Property property,
                                         MonitorConfig config, double weight) {
  SWMON_ASSERT_MSG(!started_,
                   "Add() after Start(); use AttachProperty for hot attach");
  return *engines_[AttachProperty(std::move(property), config, weight)];
}

PropertyId ParallelMonitorSet::AttachProperty(Property property,
                                              MonitorConfig config,
                                              double weight) {
  SWMON_ASSERT_MSG(!stopped_, "AttachProperty() after Stop()");
  if (weight <= 0) weight = 1.0;
  const PropertyId id = engines_.size();
  engine_names_.push_back(UniqueEngineName(engine_names_, property.name));
  engines_.push_back(CreatePropertyMonitor(std::move(property), config));
  configs_.push_back(config);
  retired_.emplace_back();
  weights_.push_back(weight);
  group_of_slot_.push_back(nullptr);
  if (started_) {
    // Hot attach: the quiesce leaves every worker parked between ring pops,
    // so the producer owns the dispatch tables and the group list. The
    // mutation is published to the workers by the next batch push (the
    // ring's release/acquire pair), before a worker can touch either again.
    Quiesce();
    if (WantInstanceShard(attached_count())) {
      if (auto plan = BuildShardPlan(engines_[id]->property(), configs_[id])) {
        shard_of_.push_back(0);  // placeholder: sharded slots span all workers
        MakeSharded(id, std::move(*plan));
        RebuildPool();
        // Every worker gained a replica; refresh every fused table.
        for (std::size_t w = 0; w < workers_.size(); ++w)
          RebuildWorkerFused(w);
        return id;
      }
    }
    const std::size_t w = static_cast<std::size_t>(
        std::min_element(worker_load_.begin(), worker_load_.end()) -
        worker_load_.begin());
    shard_of_.push_back(w);
    worker_load_[w] += weight;
    workers_[w]->table.Register(engines_[id].get(),
                                static_cast<std::uint32_t>(id));
    workers_[w]->engine_indices.push_back(id);
    RebuildWorkerFused(w);
  }
  return id;
}

std::optional<std::vector<Violation>> ParallelMonitorSet::DetachProperty(
    PropertyId id) {
  if (id >= engines_.size() || engines_[id] == nullptr) return std::nullopt;
  if (started_) Quiesce();
  ShardedGroup* g = group_of_slot_[id];
  if (g != nullptr && !g->detached) {
    // Retire every replica's violations so outstanding markers (and the
    // drained return value) stay resolvable, then tear the replicas down.
    auto& retired = retired_[id];
    retired.resize(g->replicas.size());
    for (std::size_t r = 0; r < g->replicas.size(); ++r)
      retired[r] = g->replicas[r]->TakeViolations();
    g->detached = true;
    g->replicas.clear();
    engines_[id].reset();
    g->owned.clear();
    active_groups_.erase(
        std::remove(active_groups_.begin(), active_groups_.end(), g),
        active_groups_.end());
    // Every worker lost its replica; stale fused-table bindings must go
    // before the next batch.
    for (std::size_t w = 0; w < workers_.size(); ++w) RebuildWorkerFused(w);
    // Serial-order drain: the slot's markers over the retired lists.
    return MaterializeSlot(id);
  }
  PropertyMonitor* engine = engines_[id].get();
  std::vector<Violation> drained = engine->TakeViolations();
  // Keep a copy resolvable for merge markers already recorded by workers;
  // DrainViolations clears it.
  retired_[id].assign(1, drained);
  if (started_) {
    const std::size_t w = shard_of_[id];
    workers_[w]->table.Unregister(engine);
    auto& indices = workers_[w]->engine_indices;
    indices.erase(std::remove(indices.begin(), indices.end(), id),
                  indices.end());
    worker_load_[w] -= weights_[id];
    RebuildWorkerFused(w);
  }
  engines_[id].reset();
  return drained;
}

std::vector<Violation> ParallelMonitorSet::DrainViolations() {
  Quiesce();
  std::vector<Violation> out = MergeFromMarkers(GatherSortedMarkers());
  for (auto& w : workers_) w->markers.clear();
  advance_markers_.clear();
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (!engines_[i]) continue;
    ShardedGroup* g = group_of_slot_[i];
    if (g != nullptr && !g->detached) {
      for (PropertyMonitor* rep : g->replicas) rep->TakeViolations();
    } else {
      engines_[i]->TakeViolations();
    }
  }
  for (auto& r : retired_) r.clear();
  return out;
}

void ParallelMonitorSet::AttachTelemetry(telemetry::MetricsRegistry* registry) {
  if (registry_ != nullptr) registry_->RemoveCollector(collector_token_);
  registry_ = registry;
  collector_token_ = 0;
  if (registry_ != nullptr) {
    collector_token_ = registry_->AddCollector(
        [this](telemetry::Snapshot& snap) { CollectInto(snap); });
  }
}

void ParallelMonitorSet::CollectSharded(const ShardedGroup& g,
                                        const std::string& name,
                                        telemetry::Snapshot& snap) const {
  // Sum the replicas' counters and additive gauges into the property's one
  // logical engine entry; instances are partitioned across replicas and
  // events are count-attributed to exactly one, so the sums equal the
  // serial engine's values.
  telemetry::Snapshot acc;
  for (const PropertyMonitor* rep : g.replicas) {
    telemetry::Snapshot tmp;
    rep->CollectInto(tmp, name);
    for (const auto& [key, s] : tmp.samples()) {
      if (s.kind == telemetry::Sample::Kind::kCounter) {
        acc.AddCounter(key, s.counter);
      } else if (s.kind == telemetry::Sample::Kind::kGauge) {
        acc.SetGauge(key, acc.gauge(key) + s.gauge);
      }
    }
  }
  // peak_live is the one non-additive stat: replica peaks need not line up
  // in time. The merge state reconstructs the exact serial peak from the
  // per-event live logs.
  acc.SetGauge("monitor.engine." + name + ".peak_live", g.merged_peak);
  for (const auto& [key, s] : acc.samples()) {
    if (s.kind == telemetry::Sample::Kind::kCounter) {
      snap.SetCounter(key, s.counter);
    } else {
      snap.SetGauge(key, s.gauge);
    }
  }
}

void ParallelMonitorSet::CollectInto(telemetry::Snapshot& snap) {
  Quiesce();
  std::uint64_t dispatched = 0;
  std::uint64_t filtered = 0;
  for (const auto& w : workers_) {
    dispatched += w->dispatched;
    filtered += w->filtered;
  }
  snap.SetCounter("monitor.set.events_dispatched", dispatched);
  snap.SetCounter("monitor.set.events_filtered", filtered);
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (!engines_[i]) continue;
    const ShardedGroup* g = group_of_slot_[i];
    if (g != nullptr && !g->detached) {
      CollectSharded(*g, engine_names_[i], snap);
    } else {
      engines_[i]->CollectInto(snap, engine_names_[i]);
    }
  }
  if (!started_) return;
  // Parallel-runtime-only metrics (absent from the serial set; parity
  // comparisons filter the monitor.parallel. prefix).
  snap.SetCounter("monitor.parallel.batch_pool.reused",
                  pool_reused_base_ + pool_->reused());
  snap.SetCounter("monitor.parallel.batch_pool.allocated",
                  pool_allocated_base_ + pool_->allocated());
  snap.SetCounter("monitor.parallel.batch_pool.exhausted_waits",
                  pool_exhausted_base_ + pool_->exhausted_waits());
  snap.SetGauge("monitor.parallel.workers",
                static_cast<std::int64_t>(workers_.size()));
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    snap.SetGauge("monitor.parallel.worker." + std::to_string(w) +
                      ".ring_high_water",
                  static_cast<std::int64_t>(workers_[w]->ring_high_water));
  }
  for (const ShardedGroup* g : active_groups_) {
    for (std::size_t r = 0; r < g->replicas.size(); ++r) {
      snap.SetGauge("monitor.parallel.shard." + engine_names_[g->slot] +
                        ".replica." + std::to_string(r) + ".live_instances",
                    static_cast<std::int64_t>(g->replicas[r]->live_instances()));
    }
  }
}

void ParallelMonitorSet::Start() {
  SWMON_ASSERT_MSG(!started_ && !stopped_, "Start() twice");
  const std::size_t n_workers = std::max<std::size_t>(1, config_.workers);
  workers_.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w)
    workers_.push_back(std::make_unique<Worker>(config_.ring_capacity));
  // Instance-shard what the mode and the plan analysis allow; everything
  // else property-shards below.
  if (WantInstanceShard(attached_count())) {
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      if (!engines_[i]) continue;
      if (auto plan = BuildShardPlan(engines_[i]->property(), configs_[i]))
        MakeSharded(i, std::move(*plan));
    }
  }
  // Slots detached before Start (or instance-sharded) weigh nothing and are
  // not registered on any one worker.
  std::vector<double> effective = weights_;
  for (std::size_t i = 0; i < engines_.size(); ++i)
    if (!engines_[i] || group_of_slot_[i] != nullptr) effective[i] = 0.0;
  shard_of_ = GreedyAssignShards(effective, n_workers);
  worker_load_.assign(n_workers, 0.0);
  // Register in attach order so each shard's dispatch order (and thus its
  // engines' event interleaving) matches the serial set's.
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (!engines_[i] || group_of_slot_[i] != nullptr) continue;
    Worker& w = *workers_[shard_of_[i]];
    w.table.Register(engines_[i].get(), static_cast<std::uint32_t>(i));
    w.engine_indices.push_back(i);
    worker_load_[shard_of_[i]] += weights_[i];
  }
  RebuildPool();
  for (std::size_t w = 0; w < n_workers; ++w) RebuildWorkerFused(w);
  started_ = true;
  for (std::size_t w = 0; w < n_workers; ++w) {
    workers_[w]->thread =
        std::thread([this, w] { WorkerLoop(*workers_[w], w); });
  }
}

void ParallelMonitorSet::WorkerLoop(Worker& worker, std::size_t worker_index) {
  if (config_.pin_threads) PinCurrentThreadToCpu(worker_index);
  constexpr std::size_t kRun = 8;
  SlabBatch<DataplaneEvent>* run[kRun];
  for (;;) {
    std::size_t n = worker.ring.TryPopRun(run, kRun);
    if (n == 0) {
      SlabBatch<DataplaneEvent>* b = nullptr;
      if (!worker.ring.PopBlocking(b)) return;
      run[0] = b;
      n = 1;
    }
    for (std::size_t i = 0; i < n; ++i) {
      ProcessBatch(worker, worker_index, *run[i]);
      pool_->Release(run[i]);  // before the consumed add: quiesce implies
                               // every batch is back on the freelist
    }
    worker.batches_consumed.value.fetch_add(n, std::memory_order_release);
  }
}

void ParallelMonitorSet::ProcessBatch(Worker& worker,
                                      std::size_t worker_index,
                                      const SlabBatch<DataplaneEvent>& batch) {
  const std::size_t n = batch.size;
  if (n == 0) return;
  // Batch execution: one fused hash pass over the run for every engine
  // resident on this worker, then each engine consumes the whole run
  // through its batch entry point. Engines are independent state machines,
  // so swapping the scalar loop's event/engine nesting is invisible to each
  // engine's event stream; the per-event observability the scalar loop read
  // inline (violation highwater marks, creation counts, live counts) comes
  // back through the BatchEventResult array and is folded into the same
  // markers and logs the scalar loop produced — bit-identical merges.
  worker.fused_want.assign(worker.fused.tuples(), 0);
  for (const std::size_t idx : worker.engine_indices)
    engines_[idx]->MarkConsumableFusedSlots(worker.fused_want.data());
  for (ShardedGroup* g : active_groups_)
    g->replicas[worker_index]->MarkConsumableFusedSlots(
        worker.fused_want.data());
  worker.fused.ComputeRows(batch.items.data(), n, worker.fused_want.data());
  if (worker.results.size() < n) worker.results.resize(n);
  if (worker.ops.size() < n) worker.ops.resize(n);

  // Local accumulators; synced into the worker's counters once per batch so
  // the batched path's totals match serial per-event counting exactly.
  std::uint64_t dispatched = 0;
  std::uint64_t filtered = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const DispatchTable::Lists& lists = worker.table.lists(batch.items[i].type);
    dispatched += lists.interested.size();
    filtered += lists.filtered.size();
  }

  // Property-sharded residents, in attach (= serial dispatch) order. The
  // engine's own interest test routes each event to ProcessDispatchedEvent
  // or NoteFilteredEvent — the same split the dispatch lists encode.
  for (const std::size_t idx : worker.engine_indices) {
    PropertyMonitor* eng = engines_[idx].get();
    const EventTypeMask sig = eng->interest_signature();
    std::uint32_t prev = static_cast<std::uint32_t>(eng->violations().size());
    eng->ProcessEventBatch(batch.items.data(), n, &worker.fused,
                           worker.results.data());
    const std::uint32_t slot = static_cast<std::uint32_t>(idx);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t after = worker.results[i].violations_after;
      if (after != prev) {
        // Filtered deliveries are violation sources too: the clock advance
        // can fire timeout-action windows (Feature 7) — those merge as
        // phase 0, match-pass violations as phase 1, exactly as the scalar
        // loop recorded them.
        const std::uint8_t phase =
            (sig >> static_cast<std::size_t>(batch.items[i].type)) & 1 ? 1 : 0;
        const std::uint64_t seq = batch.base_seq + i;
        for (std::uint32_t v = prev; v < after; ++v)
          worker.markers.push_back({seq, slot, v, 0, phase});
        prev = after;
      }
    }
  }

  // Instance-sharded groups: derive this worker's per-event op (stage mask
  // from the route lanes it owns, count/filtered attribution) up front,
  // then hand the run to the replica in one call.
  const std::uint64_t n_workers = workers_.size();
  const std::size_t stride = route_stride_;
  for (ShardedGroup* g : active_groups_) {
    PropertyMonitor* rep = g->replicas[worker_index];
    ShardedGroup::ReplicaLog& log = g->logs[worker_index];
    const std::uint32_t slot = static_cast<std::uint32_t>(g->slot);
    const std::uint16_t rep_idx = static_cast<std::uint16_t>(worker_index);
    for (std::uint32_t i = 0; i < n; ++i) {
      const DataplaneEvent& ev = batch.items[i];
      const auto& lanes =
          g->plan.lanes_by_type[static_cast<std::size_t>(ev.type)];
      ShardedBatchOp& op = worker.ops[i];
      if (lanes.empty()) {
        // Outside the property's interest signature: clock only, with the
        // filtered-event count attributed once (worker 0).
        op = ShardedBatchOp{0, false, worker_index == 0};
        if (worker_index == 0) ++filtered;
        continue;
      }
      const std::uint64_t* routes =
          batch.routes.data() + std::size_t{i} * stride;
      std::uint64_t mask = 0;
      bool count = false;
      for (std::size_t j = 0; j < lanes.size(); ++j) {
        if (routes[g->lane_base + j] % n_workers != worker_index) continue;
        const ShardExtraction& ex = g->plan.extractions[lanes[j]];
        mask |= ex.stage_bits;
        count = count || ex.counts;
      }
      op = ShardedBatchOp{mask, count, false};
      if (mask != 0 && count) ++dispatched;
    }
    std::uint32_t prev = static_cast<std::uint32_t>(rep->violations().size());
    rep->ProcessShardedBatch(batch.items.data(), n, worker.ops.data(),
                             &worker.fused, worker.results.data());
    for (std::uint32_t i = 0; i < n; ++i) {
      const BatchEventResult& r = worker.results[i];
      const std::uint64_t seq = batch.base_seq + i;
      // Phase 0: fired by the clock advance (timer expiries order by
      // deadline across replicas); phase 1: by the owned passes.
      for (std::uint32_t v = prev; v < r.violations_clock; ++v)
        worker.markers.push_back({seq, slot, v, rep_idx, 0});
      for (std::uint32_t v = r.violations_clock; v < r.violations_after; ++v)
        worker.markers.push_back({seq, slot, v, rep_idx, 1});
      prev = r.violations_after;
      // Creation / live-count logs feed the quiesce-point merge that
      // renumbers instance ids and reconstructs the exact peak_live.
      for (std::uint64_t c = log.prev_created; c < r.created_after; ++c)
        log.creation_seqs.push_back(seq);
      log.prev_created = r.created_after;
      if (r.live_after != log.prev_live) {
        log.live_log.emplace_back(seq, r.live_after);
        log.prev_live = r.live_after;
      }
    }
  }
  worker.dispatched += dispatched;
  worker.filtered += filtered;
}

void ParallelMonitorSet::RebuildWorkerFused(std::size_t w) {
  Worker& worker = *workers_[w];
  worker.fused.Reset();
  const auto bind = [&worker](PropertyMonitor* eng) {
    std::vector<std::uint32_t> slots;
    for (const ProbeKeyTuple& t : eng->ProbeKeyTuples())
      slots.push_back(worker.fused.Intern(t.fields, t.types, t.filter));
    eng->BindFusedRows(std::move(slots));
  };
  for (const std::size_t idx : worker.engine_indices)
    bind(engines_[idx].get());
  for (ShardedGroup* g : active_groups_) bind(g->replicas[w]);
}

void ParallelMonitorSet::OnDataplaneEvent(const DataplaneEvent& event) {
  SWMON_ASSERT_MSG(started_ && !stopped_,
                   "ParallelMonitorSet needs Start() before events");
  if (cur_ == nullptr) {
    cur_ = pool_->AcquireBlocking();
    cur_->base_seq = next_seq_;
  }
  const std::uint32_t i = cur_->size;
  cur_->items[i] = event;
  if (route_stride_ != 0) {
    std::uint64_t* routes =
        cur_->routes.data() + std::size_t{i} * route_stride_;
    for (const ShardedGroup* g : active_groups_) {
      const auto& lanes =
          g->plan.lanes_by_type[static_cast<std::size_t>(event.type)];
      for (std::size_t j = 0; j < lanes.size(); ++j) {
        routes[g->lane_base + j] =
            ShardHash(event.fields, g->plan.extractions[lanes[j]].fields);
      }
    }
  }
  ++cur_->size;
  ++next_seq_;
  if (cur_->size == pool_->batch_capacity()) PublishCurrent();
}

void ParallelMonitorSet::PublishCurrent() {
  SlabBatch<DataplaneEvent>* b = cur_;
  cur_ = nullptr;
  b->refs.store(static_cast<std::uint32_t>(workers_.size()),
                std::memory_order_relaxed);
  for (auto& w : workers_) {
    w->ring.PushBlocking(b);
    const std::size_t occupancy = w->ring.SizeApprox();
    if (occupancy > w->ring_high_water) w->ring_high_water = occupancy;
  }
  ++batches_published_;
}

void ParallelMonitorSet::MergeGroupLogs(ShardedGroup& g) {
  // Creations, ordered by event sequence: exactly one replica creates per
  // event (the stage-0 owner), so seqs are unique and the sorted order IS
  // the serial creation order — each gets the next serial instance id.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> created;
  for (std::uint32_t r = 0; r < g.logs.size(); ++r)
    for (const std::uint64_t seq : g.logs[r].creation_seqs)
      created.emplace_back(seq, r);
  if (!created.empty()) {
    std::sort(created.begin(), created.end());
    for (const auto& [seq, r] : created)
      g.serial_ids[r].push_back(g.next_serial_id++);
    for (auto& log : g.logs) log.creation_seqs.clear();
  }
  // Live counts: apply every replica's update for an event seq, THEN sample
  // the summed total — the same end-of-event sample points the serial
  // engine's peak_live uses. (tie = per-replica insertion index, so
  // repeated producer-side advances at one seq apply in order.)
  struct Ent {
    std::uint64_t seq;
    std::uint32_t replica;
    std::uint32_t tie;
    std::size_t live;
  };
  std::vector<Ent> ents;
  for (std::uint32_t r = 0; r < g.logs.size(); ++r) {
    const auto& log = g.logs[r].live_log;
    for (std::uint32_t k = 0; k < log.size(); ++k)
      ents.push_back(Ent{log[k].first, r, k, log[k].second});
  }
  if (ents.empty()) return;
  std::sort(ents.begin(), ents.end(), [](const Ent& a, const Ent& b) {
    if (a.seq != b.seq) return a.seq < b.seq;
    if (a.replica != b.replica) return a.replica < b.replica;
    return a.tie < b.tie;
  });
  for (std::size_t k = 0; k < ents.size(); ++k) {
    const Ent& e = ents[k];
    g.merged_total +=
        static_cast<std::int64_t>(e.live) - g.merged_live[e.replica];
    g.merged_live[e.replica] = static_cast<std::int64_t>(e.live);
    if (k + 1 == ents.size() || ents[k + 1].seq != e.seq)
      g.merged_peak = std::max(g.merged_peak, g.merged_total);
  }
  for (auto& log : g.logs) log.live_log.clear();
}

void ParallelMonitorSet::Quiesce() {
  if (!started_) return;
  if (cur_ != nullptr) PublishCurrent();
  for (auto& w : workers_) {
    while (w->batches_consumed.value.load(std::memory_order_acquire) <
           batches_published_) {
      std::this_thread::yield();
    }
  }
  for (ShardedGroup* g : active_groups_) MergeGroupLogs(*g);
}

void ParallelMonitorSet::Flush() { Quiesce(); }

void ParallelMonitorSet::AdvanceTime(SimTime now) {
  Quiesce();
  // Post-quiesce the producer owns all engine state (workers are parked on
  // empty rings); advancing serially in attach order matches MonitorSet.
  const std::uint64_t seq = next_seq_;
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (!engines_[i]) continue;
    ShardedGroup* g = group_of_slot_[i];
    if (g == nullptr || g->detached) {
      PropertyMonitor& e = *engines_[i];
      const std::size_t before = e.violations().size();
      e.AdvanceTime(now);
      for (std::size_t v = before; v < e.violations().size(); ++v) {
        advance_markers_.push_back({seq, static_cast<std::uint32_t>(i),
                                    static_cast<std::uint32_t>(v), 0, 0});
      }
      continue;
    }
    // Every replica's clock advances; expiry violations merge across
    // replicas by (deadline, serial instance id) — the timer heap's order.
    for (std::uint32_t r = 0; r < g->replicas.size(); ++r) {
      PropertyMonitor& e = *g->replicas[r];
      const std::size_t before = e.violations().size();
      e.AdvanceTime(now);
      for (std::size_t v = before; v < e.violations().size(); ++v) {
        advance_markers_.push_back({seq, static_cast<std::uint32_t>(i),
                                    static_cast<std::uint32_t>(v),
                                    static_cast<std::uint16_t>(r), 0});
      }
      ShardedGroup::ReplicaLog& log = g->logs[r];
      const std::size_t live = e.live_instances();
      if (live != log.prev_live) {
        log.live_log.emplace_back(seq, live);
        log.prev_live = live;
      }
    }
  }
}

void ParallelMonitorSet::Stop() {
  if (!started_ || stopped_) return;
  Quiesce();
  for (auto& w : workers_) w->ring.Close();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  stopped_ = true;
}

std::uint64_t ParallelMonitorSet::events_dispatched() {
  Quiesce();
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->dispatched;
  return total;
}

std::uint64_t ParallelMonitorSet::events_filtered() {
  Quiesce();
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->filtered;
  return total;
}

std::vector<Violation> ParallelMonitorSet::AllViolations() {
  Quiesce();
  std::vector<Violation> out;
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (!engines_[i]) continue;
    const ShardedGroup* g = group_of_slot_[i];
    if (g != nullptr && !g->detached) {
      std::vector<Violation> merged = MaterializeSlot(i);
      out.insert(out.end(), std::make_move_iterator(merged.begin()),
                 std::make_move_iterator(merged.end()));
    } else {
      const auto& v = engines_[i]->violations();
      out.insert(out.end(), v.begin(), v.end());
    }
  }
  return out;
}

std::uint64_t ParallelMonitorSet::SerialInstanceId(const ShardedGroup& g,
                                                   std::uint32_t replica,
                                                   std::uint64_t local_id) const {
  SWMON_ASSERT(local_id >= 1 && local_id <= g.serial_ids[replica].size());
  return g.serial_ids[replica][local_id - 1];
}

const Violation& ParallelMonitorSet::Resolve(const ViolationMarker& m) const {
  const ShardedGroup* g = group_of_slot_[m.engine_index];
  if (g != nullptr && !g->detached)
    return g->replicas[m.replica]->violations()[m.violation_index];
  if (g == nullptr && engines_[m.engine_index])
    return engines_[m.engine_index]->violations()[m.violation_index];
  return retired_[m.engine_index][m.replica][m.violation_index];
}

Violation ParallelMonitorSet::Materialize(const ViolationMarker& m) const {
  Violation v = Resolve(m);
  const ShardedGroup* g = group_of_slot_[m.engine_index];
  if (g != nullptr) v.instance_id = SerialInstanceId(*g, m.replica, v.instance_id);
  return v;
}

bool ParallelMonitorSet::MarkerLess(const ViolationMarker& a,
                                    const ViolationMarker& b) const {
  // Stream order with the serial tiebreak: the event that fired it, then
  // engine attach order (serial dispatch order within one event).
  if (a.seq != b.seq) return a.seq < b.seq;
  if (a.engine_index != b.engine_index) return a.engine_index < b.engine_index;
  const ShardedGroup* g = group_of_slot_[a.engine_index];
  if (g == nullptr) {
    // One emitter: the engine's own emission order.
    return a.violation_index < b.violation_index;
  }
  // Instance-sharded: reconstruct the serial engine's within-event order.
  // Phase 0 (clock advance) precedes the match passes; expiries fire in
  // timer-heap order (deadline, then the instance-id ordinal both engines
  // arm with — renumbered to the serial id so replicas compare equal).
  if (a.phase != b.phase) return a.phase < b.phase;
  const Violation& va = Resolve(a);
  const Violation& vb = Resolve(b);
  if (a.phase == 0) {
    if (va.time != vb.time) return va.time < vb.time;
    return SerialInstanceId(*g, a.replica, va.instance_id) <
           SerialInstanceId(*g, b.replica, vb.instance_id);
  }
  // Match passes complete stages highest-first (the serial advance-pass
  // loop); one replica owns any given stage for one event, so within a
  // stage the replica's emission order is the serial order.
  if (va.trigger_stage_index != vb.trigger_stage_index)
    return va.trigger_stage_index > vb.trigger_stage_index;
  if (a.replica != b.replica) return a.replica < b.replica;
  return a.violation_index < b.violation_index;
}

std::vector<Violation> ParallelMonitorSet::MergeFromMarkers(
    const std::vector<ViolationMarker>& markers) const {
  std::vector<Violation> out;
  out.reserve(markers.size());
  for (const ViolationMarker& m : markers) out.push_back(Materialize(m));
  return out;
}

std::vector<ParallelMonitorSet::ViolationMarker>
ParallelMonitorSet::GatherSortedMarkers() const {
  std::vector<ViolationMarker> markers;
  for (const auto& w : workers_)
    markers.insert(markers.end(), w->markers.begin(), w->markers.end());
  markers.insert(markers.end(), advance_markers_.begin(),
                 advance_markers_.end());
  std::sort(markers.begin(), markers.end(),
            [this](const ViolationMarker& a, const ViolationMarker& b) {
              return MarkerLess(a, b);
            });
  return markers;
}

std::vector<Violation> ParallelMonitorSet::MaterializeSlot(
    PropertyId id) const {
  std::vector<ViolationMarker> markers;
  for (const auto& w : workers_)
    for (const ViolationMarker& m : w->markers)
      if (m.engine_index == id) markers.push_back(m);
  for (const ViolationMarker& m : advance_markers_)
    if (m.engine_index == id) markers.push_back(m);
  std::sort(markers.begin(), markers.end(),
            [this](const ViolationMarker& a, const ViolationMarker& b) {
              return MarkerLess(a, b);
            });
  return MergeFromMarkers(markers);
}

std::vector<Violation> ParallelMonitorSet::MergedViolations() {
  Quiesce();
  return MergeFromMarkers(GatherSortedMarkers());
}

std::size_t ParallelMonitorSet::TotalViolations() {
  Quiesce();
  std::size_t n = 0;
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (!engines_[i]) continue;
    const ShardedGroup* g = group_of_slot_[i];
    if (g != nullptr && !g->detached) {
      for (const PropertyMonitor* rep : g->replicas)
        n += rep->violations().size();
    } else {
      n += engines_[i]->violations().size();
    }
  }
  return n;
}

}  // namespace swmon
