// Fluent construction of Property specs.
//
// The catalog (src/properties) reads like the paper's observation diagrams:
//
//   PropertyBuilder b("stateful-firewall", "...");
//   const VarId A = b.Var("A"), B = b.Var("B");
//   b.AddStage("outbound A->B")
//       .Match(PatternBuilder::Arrival()
//                  .Eq(FieldId::kInPort, kInside)
//                  .Build())
//       .Bind(A, FieldId::kIpSrc)
//       .Bind(B, FieldId::kIpDst)
//       .Window(Duration::Seconds(30))
//       .RefreshOnRematch();
//   b.AddStage("return B->A dropped")
//       .Match(PatternBuilder::Egress()
//                  .EqVar(FieldId::kIpSrc, B)
//                  .EqVar(FieldId::kIpDst, A)
//                  .Dropped()
//                  .Build());
//   Property p = std::move(b).Build();  // validated
#pragma once

#include <utility>

#include "common/assert.hpp"
#include "monitor/eviction.hpp"
#include "monitor/spec.hpp"

namespace swmon {

class PatternBuilder {
 public:
  static PatternBuilder Arrival() {
    return PatternBuilder(DataplaneEventType::kArrival);
  }
  static PatternBuilder Egress() {
    return PatternBuilder(DataplaneEventType::kEgress);
  }
  static PatternBuilder LinkStatus() {
    return PatternBuilder(DataplaneEventType::kLinkStatus);
  }
  static PatternBuilder AnyEvent() { return PatternBuilder(std::nullopt); }

  PatternBuilder& Eq(FieldId f, std::uint64_t v) {
    pattern_.conditions.push_back({f, CmpOp::kEq, Term::Const(v)});
    return *this;
  }
  PatternBuilder& Ne(FieldId f, std::uint64_t v) {
    pattern_.conditions.push_back({f, CmpOp::kNe, Term::Const(v)});
    return *this;
  }
  PatternBuilder& EqVar(FieldId f, VarId var) {
    pattern_.conditions.push_back({f, CmpOp::kEq, Term::Var(var)});
    return *this;
  }
  PatternBuilder& NeVar(FieldId f, VarId var) {
    pattern_.conditions.push_back({f, CmpOp::kNe, Term::Var(var)});
    return *this;
  }
  /// Masked (TCAM-style) comparisons; both sides are masked first.
  PatternBuilder& EqMasked(FieldId f, std::uint64_t v, std::uint64_t mask) {
    pattern_.conditions.push_back({f, CmpOp::kEq, Term::Const(v), mask});
    return *this;
  }
  PatternBuilder& NeMasked(FieldId f, std::uint64_t v, std::uint64_t mask) {
    pattern_.conditions.push_back({f, CmpOp::kNe, Term::Const(v), mask});
    return *this;
  }
  /// Like EqMasked, but also satisfied when the field is absent — e.g.
  /// "tcp_flags carry no FIN/RST, or the packet is not TCP at all".
  PatternBuilder& EqMaskedOrAbsent(FieldId f, std::uint64_t v,
                                   std::uint64_t mask) {
    pattern_.conditions.push_back(
        {f, CmpOp::kEq, Term::Const(v), mask, /*allow_absent=*/true});
    return *this;
  }

  /// Adds to the forbidden group: the pattern matches only when NOT all
  /// forbidden conditions hold (tuple negative match, Feature 6).
  PatternBuilder& ForbidEqVar(FieldId f, VarId var) {
    pattern_.forbidden.push_back({f, CmpOp::kEq, Term::Var(var)});
    return *this;
  }
  PatternBuilder& ForbidEq(FieldId f, std::uint64_t v) {
    pattern_.forbidden.push_back({f, CmpOp::kEq, Term::Const(v)});
    return *this;
  }

  // Egress-action shorthands.
  PatternBuilder& Dropped() {
    return Eq(FieldId::kEgressAction,
              static_cast<std::uint64_t>(EgressActionValue::kDrop));
  }
  PatternBuilder& Forwarded() {
    return Eq(FieldId::kEgressAction,
              static_cast<std::uint64_t>(EgressActionValue::kForward));
  }
  PatternBuilder& Flooded() {
    return Eq(FieldId::kEgressAction,
              static_cast<std::uint64_t>(EgressActionValue::kFlood));
  }
  PatternBuilder& NotDropped() {
    return Ne(FieldId::kEgressAction,
              static_cast<std::uint64_t>(EgressActionValue::kDrop));
  }

  Pattern Build() const { return pattern_; }

 private:
  explicit PatternBuilder(std::optional<DataplaneEventType> t) {
    pattern_.event_type = t;
  }
  Pattern pattern_;
};

class PropertyBuilder;

class StageBuilder {
 public:
  StageBuilder& Match(Pattern p) {
    stage().pattern = std::move(p);
    return *this;
  }
  StageBuilder& Bind(VarId var, FieldId field) {
    Binding b;
    b.var = var;
    b.kind = Binding::Kind::kField;
    b.field = field;
    stage().bindings.push_back(std::move(b));
    return *this;
  }
  /// Binds hash(inputs...) % modulus + base — the expected hashed output
  /// port for load-balancer properties (computed identically to the
  /// device's HashFieldsToRange).
  StageBuilder& BindHashPort(VarId var, std::vector<FieldId> inputs,
                             std::uint32_t modulus, std::uint32_t base = 1) {
    Binding b;
    b.var = var;
    b.kind = Binding::Kind::kHashPort;
    b.hash_inputs = std::move(inputs);
    b.modulus = modulus;
    b.base = base;
    stage().bindings.push_back(std::move(b));
    return *this;
  }
  /// Binds the engine's round-robin counter % modulus + base and advances
  /// the counter.
  StageBuilder& BindRoundRobin(VarId var, std::uint32_t modulus,
                               std::uint32_t base = 1) {
    Binding b;
    b.var = var;
    b.kind = Binding::Kind::kRoundRobin;
    b.modulus = modulus;
    b.base = base;
    stage().bindings.push_back(std::move(b));
    return *this;
  }
  StageBuilder& Window(Duration d) {
    stage().window = d;
    return *this;
  }
  /// Window length = value of the (bound) field, in seconds (DHCP lease).
  StageBuilder& WindowFromField(FieldId f) {
    stage().window_from_field = f;
    return *this;
  }
  StageBuilder& RefreshOnRematch() {
    stage().refresh_window_on_rematch = true;
    return *this;
  }
  /// Quantitative extension: the stage completes only after `n` matching
  /// events ("K SYNs within T"). Non-initial event stages only.
  StageBuilder& Count(std::uint32_t n) {
    stage().min_count = n;
    return *this;
  }
  /// Obligation discharge: instances waiting for this stage die when `p`
  /// matches (Feature 4).
  StageBuilder& AbortOn(Pattern p) {
    stage().aborts.push_back(std::move(p));
    return *this;
  }

 private:
  friend class PropertyBuilder;
  StageBuilder(std::vector<Stage>* stages, std::size_t index)
      : stages_(stages), index_(index) {}

  // Indexed access keeps the builder valid even if the property gains more
  // stages (vector reallocation) while this handle is alive.
  Stage& stage() { return (*stages_)[index_]; }

  std::vector<Stage>* stages_;
  std::size_t index_;
};

class PropertyBuilder {
 public:
  PropertyBuilder(std::string name, std::string description) {
    property_.name = std::move(name);
    property_.description = std::move(description);
  }

  VarId Var(std::string name) {
    property_.vars.push_back(std::move(name));
    return static_cast<VarId>(property_.vars.size() - 1);
  }

  StageBuilder AddStage(std::string label) {
    Stage s;
    s.label = std::move(label);
    s.kind = StageKind::kEvent;
    property_.stages.push_back(std::move(s));
    return StageBuilder(&property_.stages, property_.stages.size() - 1);
  }

  /// Feature 7: a stage that fires when the previous stage's window
  /// elapses instead of on a packet.
  StageBuilder AddTimeoutStage(std::string label) {
    Stage s;
    s.label = std::move(label);
    s.kind = StageKind::kTimeout;
    property_.stages.push_back(std::move(s));
    return StageBuilder(&property_.stages, property_.stages.size() - 1);
  }

  PropertyBuilder& IdMode(InstanceIdMode mode) {
    property_.id_mode = mode;
    return *this;
  }

  // --- bounded-memory eviction (attachment-scoped, not part of the spec:
  // read it back with eviction() and pass it into MonitorConfig when
  // attaching). Builder-style mirror of EvictionConfig's With* setters. ---
  PropertyBuilder& EvictionPolicyIs(EvictionPolicy policy) {
    eviction_.policy = policy;
    return *this;
  }
  PropertyBuilder& MaxInstances(std::size_t n) {
    eviction_.max_instances = n;
    return *this;
  }
  PropertyBuilder& MaxStateBytes(std::size_t bytes) {
    eviction_.max_state_bytes = bytes;
    return *this;
  }
  PropertyBuilder& EvictionSeed(std::uint64_t seed) {
    eviction_.seed = seed;
    return *this;
  }
  /// The eviction config accumulated by the setters above; feed it to
  /// MonitorConfig::WithEviction at attach time.
  const EvictionConfig& eviction() const { return eviction_; }

  /// Declares the stage-0 suppression key, then pair with SuppressWhen.
  PropertyBuilder& SuppressionKey(std::vector<FieldId> fields) {
    property_.suppression_key_fields = std::move(fields);
    return *this;
  }
  PropertyBuilder& SuppressWhen(Pattern p, std::vector<FieldId> key_fields) {
    property_.suppressors.push_back(
        Suppressor{std::move(p), std::move(key_fields)});
    return *this;
  }

  /// Validates and returns the property; aborts on structural errors (these
  /// are programming bugs in the catalog, not runtime conditions).
  Property Build() && {
    const std::string err = property_.Validate();
    SWMON_ASSERT_MSG(err.empty(), err.c_str());
    return std::move(property_);
  }

 private:
  Property property_;
  EvictionConfig eviction_;
};

}  // namespace swmon
